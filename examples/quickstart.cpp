//===- examples/quickstart.cpp - Five-minute tour ---------------*- C++ -*-===//
///
/// \file
/// The classic first specialization: power(x, n) with a known exponent.
/// Shows the whole public API surface in one sitting:
///
///   1. build a generating extension (front end + BTA) for a division,
///   2. run it to residual *source* and look at the program,
///   3. run it straight to *object code* (the paper's fused path),
///   4. execute the generated code on the VM.
///
//===----------------------------------------------------------------------===//

#include "compiler/Link.h"
#include "pgg/Pgg.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pecomp;

int main() {
  // Everything runtime-valued lives in one garbage-collected heap.
  vm::Heap Heap;

  // -- 1. The generating extension -------------------------------------------
  // power takes (x n); we declare x dynamic, n static: division "DS".
  auto Gen = pgg::GeneratingExtension::create(
      Heap, workloads::powerProgram(), "power", "DS");
  if (!Gen) {
    fprintf(stderr, "error: %s\n", Gen.error().render().c_str());
    return 1;
  }

  printf("== the two-level (annotated) program the BTA produced ==\n%s\n",
         (*Gen)->annotated().print().c_str());

  // -- 2. Residual source -----------------------------------------------------
  std::optional<vm::Value> Args[] = {std::nullopt, vm::Value::fixnum(5)};
  auto Source = (*Gen)->generateSource(Args);
  if (!Source) {
    fprintf(stderr, "error: %s\n", Source.error().render().c_str());
    return 1;
  }
  printf("== residual source for n = 5 (ANF) ==\n%s\n",
         Source->Residual.print().c_str());

  // -- 3. Object code directly (the fused path) -------------------------------
  vm::CodeStore Store(Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  auto Object = (*Gen)->generateObject(Comp, Args);
  if (!Object) {
    fprintf(stderr, "error: %s\n", Object.error().render().c_str());
    return 1;
  }
  printf("== object code, generated without a residual AST ==\n%s\n",
         Object->Residual.Defs[0].second->disassemble().c_str());

  // -- 4. Run it ---------------------------------------------------------------
  vm::Machine M(Heap);
  compiler::linkProgram(M, Globals, Object->Residual);
  for (int64_t X : {2, 3, 10}) {
    auto R = compiler::callGlobal(M, Globals, Object->Entry,
                                  {{vm::Value::fixnum(X)}});
    if (!R) {
      fprintf(stderr, "error: %s\n", R.error().render().c_str());
      return 1;
    }
    printf("power_5(%ld) = %s\n", static_cast<long>(X),
           vm::valueToString(*R).c_str());
  }
  return 0;
}
