//===- examples/lazy_compiler.cpp - Compiling a lazy language ---*- C++ -*-===//
///
/// \file
/// Semantics-directed compiler generation for a *call-by-name* language:
/// specializing the LAZY interpreter compiles lazy programs to byte code
/// for our strict VM — thunks become residual closures. The example
/// program relies on laziness (its safe-div never evaluates the division
/// when the guard chooses the other branch), and the behaviour survives
/// compilation.
///
//===----------------------------------------------------------------------===//

#include "compiler/Link.h"
#include "pgg/Pgg.h"
#include "sexp/Reader.h"
#include "vm/Convert.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pecomp;

int main() {
  vm::Heap Heap;
  Arena A;
  DatumFactory Datums(A);

  auto ProgramDatum = readDatum(workloads::lazySampleProgram(), Datums);
  vm::Value Program = vm::valueFromDatum(Heap, *ProgramDatum);
  Heap.pin(Program);

  auto Gen = pgg::GeneratingExtension::create(
      Heap, workloads::lazyInterpreter(), "lazy-run", "SD");
  if (!Gen) {
    fprintf(stderr, "error: %s\n", Gen.error().render().c_str());
    return 1;
  }

  // Residual source first, to *see* the thunks (lambdas) in the output.
  std::optional<vm::Value> SpecArgs[] = {Program, std::nullopt};
  auto Source = (*Gen)->generateSource(SpecArgs);
  if (!Source) {
    fprintf(stderr, "error: %s\n", Source.error().render().c_str());
    return 1;
  }
  printf("== residual source: note the (lambda () ...) thunks ==\n%s\n",
         Source->Residual.print().c_str());

  // The fused path: straight to byte code.
  vm::CodeStore Store(Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  auto Object = (*Gen)->generateObject(Comp, SpecArgs);
  if (!Object) {
    fprintf(stderr, "error: %s\n", Object.error().render().c_str());
    return 1;
  }

  vm::Machine M(Heap);
  compiler::linkProgram(M, Globals, Object->Residual);

  // n = 0 exercises laziness: the program contains (quotient 100 n), but
  // the guard routes around it, so no division-by-zero occurs.
  for (int64_t N : {0, 1, 10, -3}) {
    auto R = compiler::callGlobal(M, Globals, Object->Entry,
                                  {{vm::Value::fixnum(N)}});
    if (!R) {
      fprintf(stderr, "main(%ld) failed: %s\n", static_cast<long>(N),
              R.error().render().c_str());
      return 1;
    }
    printf("main(%ld) = %s\n", static_cast<long>(N),
           vm::valueToString(*R).c_str());
  }
  return 0;
}
