//===- examples/rtcg_dotproduct.cpp - Run-time code generation --*- C++ -*-===//
///
/// \file
/// A classic run-time code generation scenario (Sec. 1's "creation and
/// execution of customized code at run time"): a filter kernel whose
/// coefficient vector only becomes known at run time. When it arrives, we
/// generate object code specialized to it — zeros disappear, the loop is
/// unrolled — and apply it immediately to a stream of inputs, amortizing
/// the generation cost.
///
//===----------------------------------------------------------------------===//

#include "compiler/AnfCompiler.h"
#include "frontend/AnfConvert.h"
#include "frontend/Pipeline.h"
#include "pgg/Pgg.h"
#include "sexp/Reader.h"
#include "support/Timer.h"
#include "vm/Convert.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pecomp;

namespace {

vm::Value makeVector(vm::Heap &Heap, const std::vector<int64_t> &Xs) {
  std::vector<vm::Value> Values;
  for (int64_t X : Xs)
    Values.push_back(vm::Value::fixnum(X));
  vm::Value V = Heap.list(Values);
  Heap.pin(V);
  return V;
}

} // namespace

int main() {
  vm::Heap Heap;

  // Ahead of time: the generating extension for dot(xs, ys) with xs
  // static. (This is the "compile-time" part of an RTCG system.)
  auto Gen = pgg::GeneratingExtension::create(
      Heap, workloads::dotProductProgram(), "dot", "SD");
  if (!Gen) {
    fprintf(stderr, "error: %s\n", Gen.error().render().c_str());
    return 1;
  }

  // ... the general version, for comparison:
  Arena A;
  ExprFactory Exprs(A);
  DatumFactory Datums(A);
  auto General =
      frontendProgram(workloads::dotProductProgram(), Exprs, Datums);
  vm::CodeStore Store(Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram GeneralCode =
      AC.compileProgram(anfConvert(*General, Exprs));

  // At run time: the coefficients arrive (sparse — mostly zeros)...
  std::vector<int64_t> Coefficients = {0, 3, 0, 0, -1, 0, 7, 0,
                                       0, 0, 2, 0, 0,  5, 0, 0};
  vm::Value Coeffs = makeVector(Heap, Coefficients);

  // ...and we generate specialized object code on the fly.
  Timer GenTimer;
  std::optional<vm::Value> SpecArgs[] = {Coeffs, std::nullopt};
  auto Object = (*Gen)->generateObject(Comp, SpecArgs);
  if (!Object) {
    fprintf(stderr, "error: %s\n", Object.error().render().c_str());
    return 1;
  }
  double GenSeconds = GenTimer.seconds();
  printf("generated specialized kernel in %.1f us\n", GenSeconds * 1e6);
  printf("== specialized code (zeros folded away, loop unrolled) ==\n%s\n",
         Object->Residual.Defs[0].second->disassemble().c_str());

  vm::Machine M(Heap);
  compiler::linkProgram(M, Globals, Object->Residual);
  compiler::linkProgram(M, Globals, GeneralCode);

  // Apply it to a stream of inputs (built up front, outside the timed
  // region); check against the general version.
  constexpr int Stream = 10000;
  std::vector<vm::Value> Inputs;
  {
    std::vector<int64_t> Input(Coefficients.size());
    for (int I = 0; I != Stream; ++I) {
      for (size_t J = 0; J != Input.size(); ++J)
        Input[J] = (I * 31 + static_cast<int>(J) * 17) % 100;
      Inputs.push_back(makeVector(Heap, Input));
    }
  }

  Timer SpecTimer;
  int64_t SpecSum = 0;
  for (vm::Value In : Inputs) {
    auto R = compiler::callGlobal(M, Globals, Object->Entry, {{In}});
    if (!R) {
      fprintf(stderr, "error: %s\n", R.error().render().c_str());
      return 1;
    }
    SpecSum += R->asFixnum();
  }
  double SpecSeconds = SpecTimer.seconds();

  Timer GeneralTimer;
  int64_t GeneralSum = 0;
  for (vm::Value In : Inputs) {
    auto R = compiler::callGlobal(M, Globals, Symbol::intern("dot"),
                                  {{Coeffs, In}});
    if (!R) {
      fprintf(stderr, "error: %s\n", R.error().render().c_str());
      return 1;
    }
    GeneralSum += R->asFixnum();
  }
  double GeneralSeconds = GeneralTimer.seconds();

  printf("%d applications:\n", Stream);
  printf("  specialized kernel  %.3f ms   (sum %lld)\n", SpecSeconds * 1e3,
         static_cast<long long>(SpecSum));
  printf("  general kernel      %.3f ms   (sum %lld)\n",
         GeneralSeconds * 1e3, static_cast<long long>(GeneralSum));
  printf("  results %s; speedup %.2fx; generation amortized after ~%.0f "
         "calls\n",
         SpecSum == GeneralSum ? "agree" : "MISMATCH",
         GeneralSeconds / SpecSeconds,
         GenSeconds / ((GeneralSeconds - SpecSeconds) / Stream));
  return 0;
}
