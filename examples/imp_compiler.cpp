//===- examples/imp_compiler.cpp - A generated compiler as an object -------===//
///
/// \file
/// The GeneratedCompiler facade: build a compiler for the imperative IMP
/// language from its interpreter (one BTA), then compile several IMP
/// programs to byte code and run them all in one machine — "the automatic
/// construction of true compilers" (paper Sec. 1), packaged the way a
/// library user would want it.
///
//===----------------------------------------------------------------------===//

#include "pgg/CompilerGenerator.h"
#include "sexp/Reader.h"
#include "support/Timer.h"
#include "vm/Convert.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pecomp;

int main() {
  vm::Heap Heap;

  Timer BuildTimer;
  auto CC = pgg::GeneratedCompiler::create(
      Heap, workloads::impInterpreter(), "imp-run");
  if (!CC) {
    fprintf(stderr, "error: %s\n", CC.error().render().c_str());
    return 1;
  }
  printf("built an IMP compiler from its interpreter in %.2f ms\n\n",
         BuildTimer.seconds() * 1e3);

  struct Job {
    const char *Name;
    const char *Program;
    const char *Input;
  };
  Job Jobs[] = {
      {"triangular",
       "((n) (acc)"
       " ((while (op2 > (var n) (const 0))"
       "   ((assign acc (op2 + (var acc) (var n)))"
       "    (assign n (op2 - (var n) (const 1))))))"
       " (var acc))",
       "(100)"},
      {"collatz-steps",
       "((n) (steps)"
       " ((while (op2 > (var n) (const 1))"
       "   ((assign steps (op2 + (var steps) (const 1)))"
       "    (if (op2 = (op2 remainder (var n) (const 2)) (const 0))"
       "        ((assign n (op2 quotient (var n) (const 2))))"
       "        ((assign n (op2 + (op2 * (const 3) (var n)) (const 1))))))))"
       " (var steps))",
       "(27)"},
      {"gcd",
       "((a b) (t)"
       " ((while (op2 > (var b) (const 0))"
       "   ((assign t (op2 remainder (var a) (var b)))"
       "    (assign a (var b))"
       "    (assign b (var t)))))"
       " (var a))",
       "(252 105)"},
  };

  Arena A;
  DatumFactory Datums(A);
  vm::Machine M(Heap);

  for (const Job &J : Jobs) {
    auto ProgramDatum = readDatum(J.Program, Datums);
    if (!ProgramDatum) {
      fprintf(stderr, "read error: %s\n",
              ProgramDatum.error().render().c_str());
      return 1;
    }
    vm::Value Program = vm::valueFromDatum(Heap, *ProgramDatum);
    Heap.pin(Program);

    Timer CompileTimer;
    auto Unit = (*CC)->compile(Program);
    if (!Unit) {
      fprintf(stderr, "compile error: %s\n", Unit.error().render().c_str());
      return 1;
    }
    double CompileMs = CompileTimer.seconds() * 1e3;
    (*CC)->link(M, Unit->Module);

    vm::Value Input = vm::valueFromDatum(Heap, *readDatum(J.Input, Datums));
    Heap.pin(Input);
    auto R = compiler::callGlobal(M, (*CC)->globals(), Unit->Entry,
                                  {{Input}});
    if (!R) {
      fprintf(stderr, "run error: %s\n", R.error().render().c_str());
      return 1;
    }
    printf("%-14s compiled in %6.2f ms (%zu fns)   %s%s = %s\n", J.Name,
           CompileMs, Unit->Module.Defs.size(), J.Name, J.Input,
           vm::valueToString(*R).c_str());
  }
  return 0;
}
