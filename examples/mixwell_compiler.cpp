//===- examples/mixwell_compiler.cpp - Compiler generation ------*- C++ -*-===//
///
/// \file
/// The first Futamura projection, end to end: specializing the MIXWELL
/// interpreter with respect to a MIXWELL program yields a *compiled*
/// MIXWELL program — and on the fused path the output is byte code, so
/// the partial evaluator + compiler composition acts as a MIXWELL
/// compiler ("the automatic construction of true compilers", Sec. 1).
///
/// Also demonstrates memoization structure: the residual program has one
/// function per reachable dynamic conditional of the interpreted program.
///
//===----------------------------------------------------------------------===//

#include "compiler/Link.h"
#include "compiler/StockCompiler.h"
#include "frontend/Pipeline.h"
#include "pgg/Pgg.h"
#include "sexp/Reader.h"
#include "support/Timer.h"
#include "vm/Convert.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace pecomp;

int main() {
  vm::Heap Heap;
  Arena A;
  DatumFactory Datums(A);

  // The "source program" of our generated compiler: a MIXWELL program.
  auto ProgramDatum = readDatum(workloads::mixwellSampleProgram(), Datums);
  if (!ProgramDatum) {
    fprintf(stderr, "error: %s\n", ProgramDatum.error().render().c_str());
    return 1;
  }
  vm::Value Program = vm::valueFromDatum(Heap, *ProgramDatum);
  Heap.pin(Program);

  // Build the generating extension for the interpreter: program static,
  // input dynamic. This is the compiler generator at work.
  Timer BtaTimer;
  auto Gen = pgg::GeneratingExtension::create(
      Heap, workloads::mixwellInterpreter(), "mixwell-run", "SD");
  if (!Gen) {
    fprintf(stderr, "error: %s\n", Gen.error().render().c_str());
    return 1;
  }
  double BtaSeconds = BtaTimer.seconds();

  // Run it: MIXWELL program in, byte code out. No residual source exists.
  vm::CodeStore Store(Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  std::optional<vm::Value> SpecArgs[] = {Program, std::nullopt};
  Timer GenTimer;
  auto Object = (*Gen)->generateObject(Comp, SpecArgs);
  double GenSeconds = GenTimer.seconds();
  if (!Object) {
    fprintf(stderr, "error: %s\n", Object.error().render().c_str());
    return 1;
  }

  printf("compiled the MIXWELL program: %zu residual functions, "
         "%zu code objects\n",
         Object->Residual.Defs.size(), Store.size());
  printf("  BTA (one-time)   %.3f ms\n", BtaSeconds * 1e3);
  printf("  generate         %.3f ms  (%zu calls unfolded, %zu memoized)\n",
         GenSeconds * 1e3, Object->Stats.UnfoldedCalls,
         Object->Stats.MemoizedCalls);

  // Run the generated code against the interpreter for a few inputs.
  vm::Machine M(Heap);
  compiler::linkProgram(M, Globals, Object->Residual);

  Arena A2;
  ExprFactory Exprs(A2);
  DatumFactory Datums2(A2);
  auto Interp =
      frontendProgram(workloads::mixwellInterpreter(), Exprs, Datums2);
  vm::CodeStore IStore(Heap);
  vm::GlobalTable IGlobals;
  compiler::Compilators IComp(IStore, IGlobals);
  compiler::StockCompiler SC(IComp);
  compiler::CompiledProgram InterpCode = SC.compileProgram(*Interp);
  vm::Machine IM(Heap);
  compiler::linkProgram(IM, IGlobals, InterpCode);

  for (const char *Input : {"(3 (5 1))", "(6 (2 9 4))", "(1 ())"}) {
    vm::Value In = vm::valueFromDatum(Heap, *readDatum(Input, Datums));
    Heap.pin(In);

    auto Compiled =
        compiler::callGlobal(M, Globals, Object->Entry, {{In}});
    auto Interpreted = compiler::callGlobal(
        IM, IGlobals, Symbol::intern("mixwell-run"), {{Program, In}});
    if (!Compiled || !Interpreted) {
      fprintf(stderr, "run failed\n");
      return 1;
    }
    printf("input %-14s compiled => %-10s interpreted => %-10s %s\n", Input,
           vm::valueToString(*Compiled).c_str(),
           vm::valueToString(*Interpreted).c_str(),
           vm::valueEquals(*Compiled, *Interpreted) ? "(agree)"
                                                    : "(MISMATCH!)");
  }
  return 0;
}
