//===- fuzz/Differential.cpp - Seven-tier differential executor -----------===//

#include "fuzz/Differential.h"

#include "compiler/Compilators.h"
#include "compiler/Link.h"
#include "compiler/Peephole.h"
#include "eval/Interp.h"
#include "frontend/Pipeline.h"
#include "pgg/DiskStore.h"
#include "pgg/Pgg.h"
#include "pgg/SpecCache.h"
#include "vm/Guard.h"
#include "vm/Machine.h"
#include "vm/Profile.h"

#include <algorithm>
#include <cctype>

namespace pecomp {
namespace fuzz {

namespace {

/// A self-contained heap + AST world for one compilation or execution.
struct Universe {
  Universe() : Datums(AstArena), Exprs(AstArena) {}
  vm::Heap Heap;
  Arena AstArena;
  DatumFactory Datums;
  ExprFactory Exprs;
};

vm::Limits limitsFor(const Perturbation &P, uint64_t FuelAdjust) {
  vm::Limits L;
  L.MaxHeapBytes = P.MaxHeapBytes;
  if (P.MaxStack)
    L.MaxStackDepth = P.MaxStack;
  if (P.MaxFrames)
    L.MaxFrames = P.MaxFrames;
  // A generous default budget keeps even pathological mutants terminating
  // without ever firing on honest generated programs. Sized for fuzzing
  // throughput: a non-terminating mutant burns this on each VM tier.
  uint64_t Fuel = P.Fuel ? P.Fuel : 2'000'000;
  L.Fuel = Fuel > FuelAdjust ? Fuel - FuelAdjust : 1;
  return L;
}

/// Byte sizes of each byte-code instruction (opcode byte + operands),
/// for the injected-bug byte scanner only; the real pipeline decodes
/// through vm/Decode.cpp.
size_t insnByteSize(vm::Op O) {
  using vm::Op;
  switch (O) {
  case Op::Const:
  case Op::LocalRef:
  case Op::FreeRef:
  case Op::GlobalRef:
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
  case Op::Slide:
    return 3;
  case Op::MakeClosure:
    return 5;
  case Op::Call:
  case Op::TailCall:
  case Op::Prim:
    return 2;
  case Op::Return:
  case Op::Halt:
    return 1;
  default:
    return 0; // fused opcodes never appear in byte code
  }
}

/// Flips the polarity of the first conditional branch found in \p P —
/// the shape of a peephole branch-inversion rewrite done wrong. Returns
/// true if a branch was patched.
bool injectBranchPolarityBug(const compiler::CompiledProgram &P) {
  for (const auto &[Name, Code] : P.Defs) {
    auto *C = const_cast<vm::CodeObject *>(Code);
    std::vector<uint8_t> &Bytes = C->mutableCode();
    size_t PC = 0;
    while (PC < Bytes.size()) {
      vm::Op O = static_cast<vm::Op>(Bytes[PC]);
      size_t Sz = insnByteSize(O);
      if (Sz == 0 || PC + Sz > Bytes.size())
        break; // irregular stream; leave this object alone
      if (O == vm::Op::JumpIfFalse || O == vm::Op::JumpIfTrue) {
        Bytes[PC] = static_cast<uint8_t>(O == vm::Op::JumpIfFalse
                                             ? vm::Op::JumpIfTrue
                                             : vm::Op::JumpIfFalse);
        return true;
      }
      PC += Sz;
    }
  }
  return false;
}

/// Runs \p Entry from \p CP (already compiled under \p Globals) on a
/// machine with the requested dispatch strategy, limits, and fault plan.
TierOutcome runVmTier(Universe &W, vm::GlobalTable &Globals,
                      const compiler::CompiledProgram &CP, Symbol Entry,
                      const std::vector<int64_t> &DynArgs,
                      const Perturbation &Perturb, bool Decoded, bool Fusion,
                      bool NativeJit, uint64_t FuelAdjust,
                      bool InstallFaultPlan, support::CoverageMap *Coverage,
                      size_t *NewCoverage) {
  TierOutcome Out;
  Out.Ran = true;

  vm::Machine M(W.Heap);
  M.setDecodedDispatch(Decoded);
  M.setFusion(Fusion);
  // Each tier is exactly what it claims: the interpreted tiers pin the
  // native JIT off (it defaults on), the native tier pins it on.
  M.setNativeJit(NativeJit);
  M.setLimits(limitsFor(Perturb, FuelAdjust));
  vm::Profile Prof;
  M.setProfile(&Prof);

  compiler::LinkOptions LO;
  LO.NativeJit = NativeJit; // don't pay eager block compiles a tier ignores
  if (Result<bool> Linked = compiler::linkProgramVerified(M, Globals, CP, LO);
      !Linked) {
    Out.Ok = false;
    Out.Err = Linked.error().render();
    Out.Kind = vm::trapKindOf(Linked.error());
    return Out;
  }

  if (InstallFaultPlan) {
    vm::FaultPlan Plan;
    Plan.FailAtAllocation = Perturb.FailAtAllocation;
    Plan.FailAboveLiveBytes = Perturb.FailAboveLiveBytes;
    W.Heap.setFaultPlan(Plan);
  }

  std::vector<vm::Value> Args;
  for (int64_t A : DynArgs)
    Args.push_back(vm::Value::fixnum(A));
  Result<vm::Value> R = compiler::callGlobal(M, Globals, Entry, Args);

  if (InstallFaultPlan) {
    W.Heap.setFaultPlan(vm::FaultPlan());
    W.Heap.clearFault();
  }

  Out.Instructions = Prof.instructions();
  if (R.ok()) {
    Out.Ok = true;
    Out.Value = vm::valueToString(*R);
  } else {
    Out.Ok = false;
    Out.Err = R.error().render();
    Out.Kind = vm::trapKindOf(R.error());
    if (const std::optional<vm::Trap> &T = M.lastTrap()) {
      Out.TrapPC = T->PC;
      Out.TrapFn = T->Function;
    }
  }
  if (Coverage) {
    size_t New = Prof.addCoverage(*Coverage);
    New += Coverage->add(support::CovTrapKind, static_cast<uint64_t>(Out.Kind));
    if (NewCoverage)
      *NewCoverage += New;
  }
  return Out;
}

/// Instantiates \p Port into a fresh universe and runs it there.
TierOutcome runSnapshotTier(const compiler::PortableProgram &Port, Symbol Entry,
                            const std::vector<int64_t> &DynArgs,
                            const Perturbation &Perturb, bool Decoded,
                            bool Fusion, bool NativeJit, uint64_t FuelAdjust,
                            support::CoverageMap *Coverage,
                            size_t *NewCoverage) {
  Universe W;
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::CompiledProgram CP = Port.instantiate(Store, Globals);
  return runVmTier(W, Globals, CP, Entry, DynArgs, Perturb, Decoded, Fusion,
                   NativeJit, FuelAdjust, Perturb.heapSensitive(), Coverage,
                   NewCoverage);
}

/// Guarded-dispatch leg: instantiate \p GenericPort (and, for the hit
/// leg, \p VariantPort) into a fresh universe and enter through
/// vm::callGuarded under \p Plan. \p ExpectHit says which way the guard
/// must go — the guard decision is deterministic, so going the other way
/// is itself reported as a failure in Out.Err.
TierOutcome runGuardedTier(const compiler::PortableProgram &GenericPort,
                           Symbol GenericEntry,
                           const compiler::PortableProgram *VariantPort,
                           Symbol VariantEntry, const vm::GuardPlan &PlanProto,
                           const std::vector<int64_t> &DynArgs,
                           const Perturbation &Perturb, bool ExpectHit,
                           support::CoverageMap *Coverage,
                           size_t *NewCoverage) {
  TierOutcome Out;
  Out.Ran = true;

  Universe W;
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::CompiledProgram GenericCP = GenericPort.instantiate(Store, Globals);
  compiler::CompiledProgram VariantCP;
  if (VariantPort)
    VariantCP = VariantPort->instantiate(Store, Globals);

  vm::Machine M(W.Heap);
  M.setDecodedDispatch(true);
  M.setFusion(true);
  // The guarded tier exercises guard dispatch over the *fused* loop; its
  // miss leg is compared insn-for-insn against the bytes tier, so keep
  // the execution substrate the one the tier names.
  M.setNativeJit(false);
  M.setLimits(limitsFor(Perturb, 0));
  vm::Profile Prof;
  M.setProfile(&Prof);

  compiler::LinkOptions LO;
  LO.NativeJit = false;
  auto LinkFail = [&](const Error &E) {
    Out.Ok = false;
    Out.Err = E.render();
    Out.Kind = vm::trapKindOf(E);
    return Out;
  };
  if (Result<bool> L = compiler::linkProgramVerified(M, Globals, GenericCP, LO);
      !L)
    return LinkFail(L.error());
  if (VariantPort)
    if (Result<bool> L =
            compiler::linkProgramVerified(M, Globals, VariantCP, LO);
        !L)
      return LinkFail(L.error());

  std::optional<uint16_t> GenericIdx = Globals.lookup(GenericEntry);
  if (!GenericIdx) {
    Out.Err = "guarded tier: no generic entry global";
    return Out;
  }
  vm::Value Generic = M.getGlobal(*GenericIdx);
  vm::Value Specialized = Generic; // miss leg: never invoked
  if (VariantPort) {
    std::optional<uint16_t> VariantIdx = Globals.lookup(VariantEntry);
    if (!VariantIdx) {
      Out.Err = "guarded tier: no variant entry global";
      return Out;
    }
    Specialized = M.getGlobal(*VariantIdx);
  }

  // Expected guard values are heap-free fixnums, so building the plan
  // after linking perturbs no allocation ordinal.
  vm::GuardPlan Plan = PlanProto;

  if (Perturb.heapSensitive()) {
    vm::FaultPlan FP;
    FP.FailAtAllocation = Perturb.FailAtAllocation;
    FP.FailAboveLiveBytes = Perturb.FailAboveLiveBytes;
    W.Heap.setFaultPlan(FP);
  }

  std::vector<vm::Value> Args;
  for (int64_t A : DynArgs)
    Args.push_back(vm::Value::fixnum(A));
  bool Hit = false;
  Result<vm::Value> R = vm::callGuarded(M, Specialized, Plan, Generic, Args,
                                        &Hit);

  if (Perturb.heapSensitive()) {
    W.Heap.setFaultPlan(vm::FaultPlan());
    W.Heap.clearFault();
  }

  Out.Instructions = Prof.instructions();
  if (Hit != ExpectHit) {
    // The guard itself misbehaved; surface it through Err so the tier
    // comparison flags the case instead of silently comparing the wrong
    // leg.
    Out.Ok = false;
    Out.Err = std::string("guarded tier: guard unexpectedly ") +
              (Hit ? "hit" : "missed");
    return Out;
  }
  if (R.ok()) {
    Out.Ok = true;
    Out.Value = vm::valueToString(*R);
  } else {
    Out.Ok = false;
    Out.Err = R.error().render();
    Out.Kind = vm::trapKindOf(R.error());
    if (const std::optional<vm::Trap> &T = M.lastTrap()) {
      Out.TrapPC = T->PC;
      Out.TrapFn = T->Function;
    }
  }
  if (Coverage) {
    size_t New = Prof.addCoverage(*Coverage);
    New += Coverage->add(support::CovTrapKind, static_cast<uint64_t>(Out.Kind));
    if (NewCoverage)
      *NewCoverage += New;
  }
  return Out;
}

/// Drops a trailing Symbol::fresh ".N" suffix: residual function names
/// are freshened per compile session, so the injected-bug re-compile's
/// "f_1.9" is the same logical function as the cold path's "f_1".
std::string_view stripFreshSuffix(std::string_view Name) {
  size_t Dot = Name.rfind('.');
  if (Dot == std::string_view::npos || Dot + 1 == Name.size())
    return Name;
  for (size_t I = Dot + 1; I != Name.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(Name[I])))
      return Name;
  return Name.substr(0, Dot);
}

/// First divergence between the reference VM tier and \p T, if any.
std::optional<Divergence> compareVmTiers(Tier RefTier, const TierOutcome &Ref,
                                         Tier T, const TierOutcome &O) {
  auto Diverge = [&](const char *Aspect, std::string Detail) {
    return Divergence{RefTier, T, Aspect, std::move(Detail)};
  };
  if (Ref.Ok != O.Ok)
    return Diverge("ok", Ref.Ok ? "value vs " + O.Err : Ref.Err + " vs value");
  if (Ref.Ok) {
    if (Ref.Value != O.Value)
      return Diverge("value", Ref.Value + " vs " + O.Value);
  } else {
    if (Ref.Kind != O.Kind)
      return Diverge("trap-kind", std::string(vm::trapKindName(Ref.Kind)) +
                                      " vs " + vm::trapKindName(O.Kind));
    if (Ref.TrapPC != O.TrapPC)
      return Diverge("trap-pc", std::to_string(Ref.TrapPC) + " vs " +
                                    std::to_string(O.TrapPC) + " [" + Ref.Err +
                                    " vs " + O.Err + "]");
    if (stripFreshSuffix(Ref.TrapFn) != stripFreshSuffix(O.TrapFn))
      return Diverge("trap-fn", Ref.TrapFn + " vs " + O.TrapFn);
  }
  if (Ref.Instructions != O.Instructions)
    return Diverge("insn-count", std::to_string(Ref.Instructions) + " vs " +
                                     std::to_string(O.Instructions));
  return std::nullopt;
}

} // namespace

const char *tierName(Tier T) {
  switch (T) {
  case Tier::Oracle:
    return "oracle";
  case Tier::Bytes:
    return "bytes";
  case Tier::Decoded:
    return "decoded";
  case Tier::Fused:
    return "fused";
  case Tier::Native:
    return "native";
  case Tier::Cached:
    return "cached";
  case Tier::Guarded:
    return "guarded";
  }
  return "?";
}

std::string Divergence::render() const {
  return std::string(tierName(A)) + " vs " + tierName(B) + " on " + Aspect +
         ": " + Detail;
}

/// Specializer guards sized for the fuzzer's ordinary 8 MiB thread. The
/// PGG defaults are calibrated for support/LargeStack.h's big reserve;
/// mutated cases routinely make a static argument drive unbounded
/// unfolding, which must abort as a clean spec-time skip well before the
/// host stack runs out (Specializer.h recommends ~800 there).
static pgg::PggOptions fuzzPggOptions() {
  pgg::PggOptions PO;
  PO.Spec.MaxUnfoldDepth = 800;
  PO.Spec.MaxMemoDepth = 400;
  PO.Spec.MaxResidualFunctions = 2000;
  // Nested dynamic conditionals across unfolded calls explode residual
  // code exponentially without moving any of the depth guards; the step
  // budget keeps such mutants to a bounded (sub-second) spec-time abort.
  PO.Spec.MaxSpecSteps = 2'000'000;
  return PO;
}

DiffResult runCase(const FuzzCase &C, const DiffOptions &Opts) {
  DiffResult R;
  auto Skip = [&](std::string Why) {
    R.Skipped = true;
    R.SkipReason = std::move(Why);
    return R;
  };

  // The front end, the BTA, and the oracle all recurse on the host stack
  // in proportion to expression nesting; an adversarial corpus file a few
  // thousand parens deep segfaults the parser before any governor can
  // fire. The generator never nests past ~15, so a flat cap loses nothing.
  {
    size_t Depth = 0, MaxNest = 0;
    for (char Ch : C.Source) {
      if (Ch == '(')
        MaxNest = std::max(MaxNest, ++Depth);
      else if (Ch == ')' && Depth)
        --Depth;
    }
    if (MaxNest > 600)
      return Skip("source nesting depth " + std::to_string(MaxNest) +
                  " exceeds the harness cap (600)");
  }

  Universe W;
  Result<Program> P = frontendProgram(C.Source, W.Exprs, W.Datums);
  if (!P)
    return Skip("front end: " + P.error().render());
  const Definition *Entry = P->find(Symbol::intern(C.Entry));
  if (!Entry)
    return Skip("no entry definition " + C.Entry);
  size_t Arity = Entry->Fn->params().size();
  if (C.Args.size() != Arity || C.Division.size() != Arity)
    return Skip("arity mismatch: " + std::to_string(Arity) + " parameter(s)");

  auto Gen = pgg::GeneratingExtension::create(W.Heap, C.Source, C.Entry,
                                              C.Division, fuzzPggOptions());
  if (!Gen.ok())
    return Skip("cogen: " + Gen.error().render());

  // The BTA may promote declared-static parameters; the static/dynamic
  // argument split follows the *effective* division, exactly like the
  // residual entry's parameter list does.
  std::vector<bta::BT> Eff = (*Gen)->effectiveDivision();
  std::vector<std::optional<vm::Value>> SpecArgs;
  std::vector<int64_t> DynArgs;
  std::vector<vm::Value> FullArgs;
  for (size_t I = 0; I != Arity; ++I) {
    FullArgs.push_back(vm::Value::fixnum(C.Args[I]));
    if (Eff[I] == bta::BT::Static) {
      SpecArgs.emplace_back(vm::Value::fixnum(C.Args[I]));
    } else {
      SpecArgs.emplace_back(std::nullopt);
      DynArgs.push_back(C.Args[I]);
    }
  }

  // -- Oracle (unperturbed runs only: it has neither byte PCs nor the
  // VM's step/allocation accounting, so resource schedules don't map).
  TierOutcome &Oracle = R.Tiers[static_cast<size_t>(Tier::Oracle)];
  if (!C.Perturb.any()) {
    eval::Interp I(W.Heap, *P);
    I.setFuel(5'000'000);
    // The oracle evaluates non-tail calls on the host C++ stack; a mutant
    // that turns a corpus seed's recursion non-tail would blow the 8 MiB
    // thread stack (and ASan inflates frames further) long before the
    // fuel guard fires. Legitimate generated programs nest tens deep.
    I.setMaxDepth(512);
    Result<vm::Value> OR = I.callFunction(Symbol::intern(C.Entry), FullArgs);
    Oracle.Ran = true;
    if (OR.ok()) {
      Oracle.Ok = true;
      Oracle.Value = vm::valueToString(*OR);
      if (Oracle.Value.find("#<procedure") != std::string::npos)
        // Procedure renderings are name-based and oracle closure names
        // can't match residual code-object names; ok-ness still compares.
        Oracle.Value.clear();
    } else {
      Oracle.Kind = vm::trapKindOf(OR.error());
      Oracle.Err = OR.error().render();
      if (Oracle.Kind == vm::TrapKind::FuelExhausted)
        return Skip("oracle exhausted its safety fuel");
      if (Oracle.Kind == vm::TrapKind::FrameOverflow)
        // The depth cap is a harness artifact (host-stack safety), not a
        // semantic limit; the VM tiers would run the case fine.
        return Skip("oracle exhausted its safety depth");
    }
  }

  // -- Specialize and compile the residual object code (cold path).
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  auto Obj = (*Gen)->generateObject(Comp, SpecArgs);
  if (!Obj.ok())
    // Spec-time traps (a static zero divisor the oracle's control flow
    // never reaches, say) are legitimate offline-PE behavior, not
    // divergences.
    return Skip("specialize: " + Obj.error().render());

  compiler::PeepholeStats PeepStats;
  if (compiler::LinkOptions().Peephole)
    PeepStats = compiler::peepholeProgram(Obj->Residual);

  if (Opts.Coverage) {
    R.NewCoverage += Obj->Stats.addCoverage(*Opts.Coverage);
    R.NewCoverage += PeepStats.addCoverage(*Opts.Coverage);
  }

  // -- Snapshot for the cached tier (and for heap-sensitive runs, where
  // every tier starts from an identical fresh-heap instantiation).
  auto Port = compiler::PortableProgram::capture(Obj->Residual, Globals);
  if (!Port.ok())
    return Skip("capture: " + Port.error().render());

  // Serve the cached tier through a real SpecCache insert/lookup cycle so
  // the differential covers the cache plumbing, not just the snapshot.
  pgg::SpecCache Cache(/*MaxBytes=*/0);
  pgg::SpecKey Key = pgg::makeSpecKey(
      pgg::fingerprintProgram(C.Source, C.Entry, C.Division), SpecArgs);
  {
    auto Cached = std::make_shared<pgg::CachedSpecialization>();
    Cached->Residual = *Port;
    Cached->Entry = Obj->Entry;
    Cached->Stats = Obj->Stats;
    Cache.insert(Key, Cached);
  }
  auto Hit = Cache.lookup(Key);
  if (!Hit)
    return Skip("cache lookup missed its own insert"); // would be a bug
  if (Opts.Coverage)
    R.NewCoverage += Cache.stats().addCoverage(*Opts.Coverage);

  std::shared_ptr<const compiler::PortableProgram> CachedPort = Hit->Residual;
  Symbol CachedEntry = Hit->Entry;
  if (Opts.Inject == InjectedBug::BranchPolarity) {
    // Re-derive the residual in a scratch universe, break one branch the
    // way a wrong peephole inversion would, and capture *that* for the
    // cached tier only.
    Universe W2;
    auto Gen2 = pgg::GeneratingExtension::create(
        W2.Heap, C.Source, C.Entry, C.Division, fuzzPggOptions());
    if (Gen2.ok()) {
      vm::CodeStore Store2(W2.Heap);
      vm::GlobalTable Globals2;
      compiler::Compilators Comp2(Store2, Globals2);
      auto Obj2 = (*Gen2)->generateObject(Comp2, SpecArgs);
      if (Obj2.ok()) {
        if (compiler::LinkOptions().Peephole)
          compiler::peepholeProgram(Obj2->Residual);
        if (injectBranchPolarityBug(Obj2->Residual)) {
          auto Port2 = compiler::PortableProgram::capture(Obj2->Residual,
                                                          Globals2);
          if (Port2.ok()) {
            CachedPort = *Port2;
            // Residual names are freshened per compile; the broken
            // snapshot answers to its own entry symbol.
            CachedEntry = Obj2->Entry;
          }
        }
      }
    }
  }

  // -- Persistence round trip: the cached tier runs its snapshot after a
  // serialize -> deserialize cycle, so the differential also covers the
  // payload codec the disk store persists (pgg/DiskStore). Any loss —
  // a decode rejection of our own encoder's output, or a semantic drift
  // the tier comparison below would catch — is a divergence, not a skip.
  {
    std::vector<uint8_t> Wire = CachedPort->serialize();
    auto Back = compiler::PortableProgram::deserialize(Wire);
    if (!Back.ok()) {
      R.Diverged = Divergence{Tier::Cached, Tier::Cached, "snapshot-roundtrip",
                              Back.error().render()};
      return R;
    }
    CachedPort = *Back;
  }

  // -- Disk-store round trip (optional): hammer the persistence layer the
  // way the perturbation schedules hammer the VM. The caller owns the
  // store and its fault plan; a classified failure anywhere in put/load
  // degrades to the in-memory snapshot exactly as SpecCache's disk tier
  // degrades to cold specialization — only an unclassified error, a
  // crash, or a verified load whose semantics drift counts against us.
  if (Opts.Store) {
    pgg::CachedSpecialization ToStore;
    ToStore.Residual = CachedPort;
    ToStore.Entry = CachedEntry;
    ToStore.Stats = Obj->Stats;
    (void)Opts.Store->put(Key, ToStore); // may fail under the plan
    auto Loaded = Opts.Store->load(Key);
    if (Loaded.ok()) {
      CachedPort = (*Loaded)->Residual;
      CachedEntry = (*Loaded)->Entry;
    } else if (pgg::storeErrorOf(Loaded.error()) == pgg::StoreError::None) {
      R.Diverged = Divergence{Tier::Cached, Tier::Cached, "store-roundtrip",
                              Loaded.error().render()};
      return R;
    }
  }

  const uint64_t CachedFuelAdjust =
      Opts.Inject == InjectedBug::FuelOffByOne ? 1 : 0;

  // -- The five VM tiers.
  TierOutcome &Bytes = R.Tiers[static_cast<size_t>(Tier::Bytes)];
  TierOutcome &Decoded = R.Tiers[static_cast<size_t>(Tier::Decoded)];
  TierOutcome &Fused = R.Tiers[static_cast<size_t>(Tier::Fused)];
  TierOutcome &Native = R.Tiers[static_cast<size_t>(Tier::Native)];
  TierOutcome &Cached = R.Tiers[static_cast<size_t>(Tier::Cached)];
  if (C.Perturb.heapSensitive()) {
    // Allocation ordinals must line up: run every tier from an identical
    // fresh-universe instantiation of the same snapshot.
    Bytes = runSnapshotTier(**Port, Obj->Entry, DynArgs, C.Perturb,
                            /*Decoded=*/false, /*Fusion=*/false,
                            /*NativeJit=*/false, 0, Opts.Coverage,
                            &R.NewCoverage);
    Decoded = runSnapshotTier(**Port, Obj->Entry, DynArgs, C.Perturb,
                              /*Decoded=*/true, /*Fusion=*/false,
                              /*NativeJit=*/false, 0, Opts.Coverage,
                              &R.NewCoverage);
    Fused = runSnapshotTier(**Port, Obj->Entry, DynArgs, C.Perturb,
                            /*Decoded=*/true, /*Fusion=*/true,
                            /*NativeJit=*/false, 0, Opts.Coverage,
                            &R.NewCoverage);
    if (Opts.Native)
      Native = runSnapshotTier(**Port, Obj->Entry, DynArgs, C.Perturb,
                               /*Decoded=*/true, /*Fusion=*/true,
                               /*NativeJit=*/true, 0, Opts.Coverage,
                               &R.NewCoverage);
  } else {
    Bytes = runVmTier(W, Globals, Obj->Residual, Obj->Entry, DynArgs, C.Perturb,
                      /*Decoded=*/false, /*Fusion=*/false, /*NativeJit=*/false,
                      0, false, Opts.Coverage, &R.NewCoverage);
    Decoded = runVmTier(W, Globals, Obj->Residual, Obj->Entry, DynArgs,
                        C.Perturb, /*Decoded=*/true, /*Fusion=*/false,
                        /*NativeJit=*/false, 0, false, Opts.Coverage,
                        &R.NewCoverage);
    Fused = runVmTier(W, Globals, Obj->Residual, Obj->Entry, DynArgs, C.Perturb,
                      /*Decoded=*/true, /*Fusion=*/true, /*NativeJit=*/false,
                      0, false, Opts.Coverage, &R.NewCoverage);
    if (Opts.Native)
      Native = runVmTier(W, Globals, Obj->Residual, Obj->Entry, DynArgs,
                         C.Perturb, /*Decoded=*/true, /*Fusion=*/true,
                         /*NativeJit=*/true, 0, false, Opts.Coverage,
                         &R.NewCoverage);
  }
  Cached = runSnapshotTier(*CachedPort, CachedEntry, DynArgs, C.Perturb,
                           /*Decoded=*/true, /*Fusion=*/true,
                           /*NativeJit=*/false, CachedFuelAdjust,
                           Opts.Coverage, &R.NewCoverage);

  // -- Guarded tier, miss leg: a guard that cannot hold (slot 0 expects a
  // value the argument vector never carries — or lies out of range when
  // there are no dynamic arguments) must deoptimize to the generic code
  // with exactly the outcome of calling it directly, under every
  // perturbation. This is the deopt-parity bar online re-specialization
  // stands on.
  TierOutcome &Guarded = R.Tiers[static_cast<size_t>(Tier::Guarded)];
  if (Opts.Guarded) {
    vm::GuardPlan MissPlan;
    MissPlan.Slots = {0};
    MissPlan.Expected = {
        vm::Value::fixnum(DynArgs.empty() ? 0 : DynArgs[0] ^ 1)};
    Guarded = runGuardedTier(**Port, Obj->Entry, /*VariantPort=*/nullptr,
                             Symbol(), MissPlan, DynArgs, C.Perturb,
                             /*ExpectHit=*/false, Opts.Coverage,
                             &R.NewCoverage);
  }

  // -- Size metric for minimization: the residual entry's decoded length.
  if (const vm::CodeObject *EC = Obj->Residual.find(Obj->Entry)) {
    if (const vm::DecodedStream *DS = EC->decoded())
      R.EntryInsns = DS->Insns.size();
    else
      R.EntryInsns = EC->code().size();
  }

  // -- Cross-check. Bytes is the reference VM tier (seed semantics). The
  // guarded tier's miss leg is held to the same full-aspect bar: a deopt
  // IS a direct generic call, to the instruction.
  for (Tier T : {Tier::Decoded, Tier::Fused, Tier::Native, Tier::Cached,
                 Tier::Guarded}) {
    if (T == Tier::Guarded && !Opts.Guarded)
      continue;
    if (T == Tier::Native && !Opts.Native)
      continue;
    if (auto D = compareVmTiers(Tier::Bytes, Bytes,
                                T, R.Tiers[static_cast<size_t>(T)])) {
      R.Diverged = std::move(D);
      return R;
    }
  }

  // -- Guarded tier, hit leg (unperturbed only): specialize a variant on
  // the case's own dynamic values — the division fully static, exactly
  // what the service's re-specializer does with a stable census — and
  // require the guarded fast path to agree with the reference on
  // ok-ness, value, and trap kind. Variant generation failing is offline
  // PE declining, not a finding; resource perturbations don't map (the
  // variant executes a different instruction stream by design).
  if (Opts.Guarded && !C.Perturb.any() &&
      !(!Bytes.Ok && Bytes.Kind == vm::TrapKind::FuelExhausted)) {
    Universe W3;
    auto Gen3 = pgg::GeneratingExtension::create(
        W3.Heap, C.Source, C.Entry, std::string(Arity, 'S'), fuzzPggOptions());
    if (Gen3.ok()) {
      std::vector<bta::BT> Eff3 = (*Gen3)->effectiveDivision();
      // Map the variant's division onto the generic residual's parameter
      // list: dynamic slot j of the generic entry is guarded iff the
      // variant consumed it statically. A slot static in the generic
      // division but dynamic in the variant's would break the mapping
      // (BTA joins are monotone, so it shouldn't happen — treat it as
      // "variant declined" if it does).
      vm::GuardPlan HitPlan;
      bool MappingOk = Eff3.size() == Arity;
      for (size_t I = 0, Dyn = 0; MappingOk && I != Arity; ++I) {
        if (Eff[I] == bta::BT::Static) {
          MappingOk = Eff3[I] == bta::BT::Static;
          continue;
        }
        if (Eff3[I] == bta::BT::Static) {
          HitPlan.Slots.push_back(static_cast<uint32_t>(Dyn));
          HitPlan.Expected.push_back(vm::Value::fixnum(C.Args[I]));
        }
        ++Dyn;
      }
      std::vector<std::optional<vm::Value>> SpecArgs3;
      for (size_t I = 0; I != Arity; ++I)
        SpecArgs3.emplace_back(Eff3.size() == Arity &&
                                       Eff3[I] == bta::BT::Static
                                   ? std::optional<vm::Value>(
                                         vm::Value::fixnum(C.Args[I]))
                                   : std::nullopt);
      vm::CodeStore Store3(W3.Heap);
      vm::GlobalTable Globals3;
      compiler::Compilators Comp3(Store3, Globals3);
      auto Obj3 = MappingOk ? (*Gen3)->generateObject(Comp3, SpecArgs3)
                            : Result<pgg::ResidualObject>(makeError(
                                  "variant division mapping failed"));
      if (Obj3.ok()) {
        if (compiler::LinkOptions().Peephole)
          compiler::peepholeProgram(Obj3->Residual);
        auto Port3 = compiler::PortableProgram::capture(Obj3->Residual,
                                                        Globals3);
        // Both snapshots link into one machine; freshened residual names
        // should never collide, but if they do the leg is unrunnable,
        // not wrong.
        bool Collision = false;
        if (Port3.ok())
          for (const auto &[N3, Code3] : Obj3->Residual.Defs)
            for (const auto &[N1, Code1] : Obj->Residual.Defs)
              Collision |= N3 == N1;
        if (Port3.ok() && !Collision) {
          TierOutcome HitOut = runGuardedTier(
              **Port, Obj->Entry, &**Port3, Obj3->Entry, HitPlan,
              DynArgs, C.Perturb, /*ExpectHit=*/true, Opts.Coverage,
              &R.NewCoverage);
          // The variant runs different (shorter) code: ok/value/trap-kind
          // must agree, PCs and instruction counts legitimately differ.
          std::optional<Divergence> D;
          if (HitOut.Ok != Bytes.Ok)
            D = Divergence{Tier::Bytes, Tier::Guarded, "ok",
                           (Bytes.Ok ? "value" : Bytes.Err) + " vs " +
                               (HitOut.Ok ? "value" : HitOut.Err)};
          else if (Bytes.Ok && Bytes.Value != HitOut.Value)
            D = Divergence{Tier::Bytes, Tier::Guarded, "value",
                           Bytes.Value + " vs " + HitOut.Value};
          else if (!Bytes.Ok && HitOut.Kind != Bytes.Kind &&
                   HitOut.Kind != vm::TrapKind::FuelExhausted)
            // The variant may trap at a semantically earlier point only
            // for fuel (it executes fewer instructions, never more).
            D = Divergence{Tier::Bytes, Tier::Guarded, "trap-kind",
                           std::string(vm::trapKindName(Bytes.Kind)) +
                               " vs " + vm::trapKindName(HitOut.Kind)};
          if (D) {
            R.Diverged = std::move(D);
            return R;
          }
        }
      }
    }
  }
  // Oracle steps and VM instructions are different units, so when the VM
  // tiers burn their whole *default* budget (a non-terminating mutant; the
  // tiers still agreed with each other above) there is no meaningful
  // oracle comparison — its fuel would bound a different prefix.
  if (Oracle.Ran && !(!Bytes.Ok && Bytes.Kind == vm::TrapKind::FuelExhausted &&
                      !C.Perturb.Fuel)) {
    if (Oracle.Ok != Bytes.Ok) {
      R.Diverged = Divergence{Tier::Oracle, Tier::Bytes, "ok",
                              (Oracle.Ok ? "value" : Oracle.Err) + " vs " +
                                  (Bytes.Ok ? "value" : Bytes.Err)};
    } else if (Oracle.Ok) {
      if (!Oracle.Value.empty() && Oracle.Value != Bytes.Value)
        R.Diverged = Divergence{Tier::Oracle, Tier::Bytes, "value",
                                Oracle.Value + " vs " + Bytes.Value};
    } else if (Oracle.Kind != Bytes.Kind) {
      R.Diverged = Divergence{
          Tier::Oracle, Tier::Bytes, "trap-kind",
          std::string(vm::trapKindName(Oracle.Kind)) + " vs " +
              vm::trapKindName(Bytes.Kind)};
    }
  }
  return R;
}

} // namespace fuzz
} // namespace pecomp
