//===- fuzz/Fuzzer.h - Coverage-guided differential fuzzing loop -*- C++-*-===//
///
/// \file
/// The main loop tying the subsystem together: generate or mutate a case,
/// run the five-tier differential (fuzz/Differential.h), feed the
/// coverage map, keep coverage-novel cases in the corpus as future
/// mutation stock, and minimize any divergence with the delta-debugging
/// reducer. Fully deterministic for a given (seed, options, corpus): all
/// randomness flows from one std::mt19937, so every finding replays.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_FUZZER_H
#define PECOMP_FUZZ_FUZZER_H

#include "fuzz/Corpus.h"
#include "fuzz/Differential.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Reduce.h"

#include <memory>

namespace pecomp {
namespace fuzz {

struct FuzzerOptions {
  uint32_t Seed = 1;
  size_t Iterations = 500;
  /// Fraction knobs are fixed; these gate whole feature classes.
  bool Perturb = true;    ///< include resource-limit / heap-fault schedules
  bool PartialOps = true; ///< quotient/remainder (trap surface) in grammar
  bool Guarded = true;    ///< run the guarded re-specialization tier
  bool Native = true;     ///< run the native template-JIT tier
  InjectedBug Inject = InjectedBug::None;
  bool Minimize = true;
  size_t MaxFindings = 8; ///< stop early after this many distinct findings
  std::string CorpusDir;   ///< seed corpus to load (may be empty/missing)
  std::string FindingsDir; ///< where minimized findings are persisted
  bool SaveNovel = false;  ///< persist coverage-novel cases to CorpusDir
  size_t ReduceMaxAttempts = 2000;
  /// When set, every executed case round-trips its cached snapshot
  /// through a DiskStore at this directory, under a per-case random
  /// StoreFaultPlan (short/failed reads and writes, fsync failure,
  /// corruption-at-offset) — the persistence-layer hammer. Callers
  /// should point this somewhere under TMPDIR; the store grows one
  /// entry per distinct case key.
  std::string StoreDir;
};

struct Finding {
  FuzzCase Case; ///< minimized when FuzzerOptions::Minimize
  Divergence Diverged;
  size_t EntryInsns = 0;      ///< decoded size of the minimized entry
  size_t ReduceAttempts = 0;  ///< differential runs the reducer spent
  std::string SavedPath;      ///< on-disk location, when FindingsDir is set
};

struct FuzzerStats {
  size_t Executed = 0;  ///< cases that reached the differential
  size_t Skipped = 0;   ///< rejected before execution (invalid mutants etc.)
  size_t Generated = 0; ///< fresh grammar-generated cases
  size_t Mutated = 0;   ///< corpus-mutation cases
  size_t CoverageFeatures = 0; ///< distinct features at end of run
  size_t NovelCases = 0;       ///< cases kept for coverage novelty
  size_t Findings = 0;
  std::string json() const; ///< one-line machine-readable summary
};

class Fuzzer {
public:
  explicit Fuzzer(FuzzerOptions Opts);

  /// Runs the configured number of iterations (or until MaxFindings).
  const FuzzerStats &run();

  const FuzzerStats &stats() const { return Stats; }
  const std::vector<Finding> &findings() const { return Found; }
  const Corpus &corpus() const { return Pool; }
  const support::CoverageMap &coverage() const { return Coverage; }

private:
  FuzzCase freshCase();

  FuzzerOptions Opts;
  std::mt19937 Rng;
  GenOptions GOpts;
  std::shared_ptr<pgg::DiskStore> Store; ///< open iff Opts.StoreDir set
  Corpus Pool;
  support::CoverageMap Coverage;
  FuzzerStats Stats;
  std::vector<Finding> Found;
  std::unordered_set<uint64_t> FindingFps; ///< dedup minimized findings
};

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_FUZZER_H
