//===- fuzz/ProgramGen.h - Random Core Scheme program generator -*- C++ -*-===//
///
/// \file
/// The grammar-aware random-program generator shared by the coverage-guided
/// differential fuzzer (fuzz/Fuzzer.h) and the seeded randomized tests
/// (tests/RandomProgramTest.cpp) — one grammar, two consumers.
///
/// Generated programs are integer-valued Core Scheme: non-recursive call
/// DAGs over arithmetic, comparisons, lets, conditionals, and directly
/// applied lambdas. With the default options every operator is total on
/// fixnums, so all engines must produce the *same fixnum*; enabling
/// PartialOps adds quotient/remainder, whose zero divisors make the trap
/// taxonomy (DivideByZero, and under perturbed vm::Limits every resource
/// trap) part of the differential surface as well.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_PROGRAMGEN_H
#define PECOMP_FUZZ_PROGRAMGEN_H

#include "syntax/Expr.h"

#include <random>

namespace pecomp {
namespace fuzz {

/// Generator knobs. The defaults reproduce the grammar the randomized
/// differential tests have always used.
struct GenOptions {
  unsigned MinDefs = 2;   ///< at least this many top-level definitions
  unsigned ExtraDefs = 4; ///< plus Rng() % ExtraDefs more
  unsigned MaxParams = 3; ///< 1..MaxParams parameters per definition
  unsigned Depth = 3;     ///< expression nesting budget
  /// Include quotient/remainder in the binary-operator pool. These are
  /// partial (zero divisors trap), so only the fuzzer — which compares
  /// trap outcomes, not just values — turns them on.
  bool PartialOps = false;
};

/// Generates random integer-valued Core Scheme programs. Bodies may call
/// only *earlier* definitions, so the call graph is a DAG and every
/// generated program terminates on every input.
class ProgramGen {
public:
  ProgramGen(uint32_t Seed, ExprFactory &F, GenOptions Opts = {})
      : Rng(Seed), F(F), Opts(Opts) {}

  /// A whole program; the conventional entry point is the last definition.
  Program generate();

  /// An integer-valued expression of at most \p Depth nesting over the
  /// variables in \p Scope, calling only definitions already in
  /// \p Defined. Public so the mutator can splice fresh subtrees into
  /// existing programs under the exact same grammar.
  const Expr *genExpr(unsigned Depth, const std::vector<Symbol> &Scope,
                      const Program &Defined);

  /// A small argument value for driving a generated entry point.
  int64_t randomArg() { return static_cast<int64_t>(Rng() % 41) - 20; }

  std::mt19937 &rng() { return Rng; }

private:
  const Expr *genLeaf(const std::vector<Symbol> &Scope);
  /// Deterministic gensym: Symbol::fresh draws on the process-global
  /// symbol table, which would make the generated *text* depend on what
  /// ran before — this generator must reproduce byte-identical programs
  /// from a seed alone.
  Symbol freshLocal(const char *Base) {
    return Symbol::intern(std::string(Base) + "_g" +
                          std::to_string(NextLocal++));
  }

  std::mt19937 Rng;
  ExprFactory &F;
  GenOptions Opts;
  unsigned NextLocal = 0;
};

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_PROGRAMGEN_H
