//===- fuzz/Corpus.h - On-disk fuzz-case corpus -----------------*- C++ -*-===//
///
/// \file
/// The persisted population of interesting cases under
/// testdata/fuzz-corpus/: seeds checked into the tree, coverage-novel
/// cases a run decided to keep, and (under regressions/) the minimized
/// witnesses of fixed divergences, replayed as a permanent tier-1 gate.
/// Entries are deduplicated by FuzzCase::fingerprint() and written as
/// self-describing `case-<fingerprint>.scm` files, so corpus merges are
/// just directory merges.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_CORPUS_H
#define PECOMP_FUZZ_CORPUS_H

#include "fuzz/Case.h"

#include <unordered_set>

namespace pecomp {
namespace fuzz {

class Corpus {
public:
  /// In-memory corpus; add() dedups, nothing touches disk.
  Corpus() = default;

  /// Loads every *.scm case file under \p Dir (non-recursive; a missing
  /// directory is just an empty corpus). Returns how many loaded;
  /// unparsable files are counted in skipped() and left alone.
  size_t loadDirectory(const std::string &Dir);

  /// Adds \p C unless an identical case (by fingerprint) is present.
  /// Returns true when the case was new.
  bool add(const FuzzCase &C);

  /// Writes \p C to \p Dir as case-<fingerprint>.scm (creating the
  /// directory as needed) and returns the path, or an error.
  static Result<std::string> saveEntry(const std::string &Dir,
                                       const FuzzCase &C);

  const std::vector<FuzzCase> &cases() const { return Cases; }
  size_t size() const { return Cases.size(); }
  bool empty() const { return Cases.empty(); }
  size_t skipped() const { return Skipped; }

private:
  std::vector<FuzzCase> Cases;
  std::unordered_set<uint64_t> Seen;
  size_t Skipped = 0;
};

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_CORPUS_H
