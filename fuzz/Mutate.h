//===- fuzz/Mutate.h - Grammar-aware fuzz-case mutations --------*- C++ -*-===//
///
/// \file
/// Structured mutations over FuzzCases. Every mutation preserves the
/// invariants the differential relies on: programs stay inside the
/// ProgramGen grammar (splices regenerate a definition body under the same
/// rules, calling only earlier definitions so the call graph stays a DAG),
/// integer literals stay integers, and divisions stay one 'S'/'D' per
/// entry parameter. A mutant may still be *semantically* rejected
/// downstream (a spec-time trap, say) — that is a skip, not a bug.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_MUTATE_H
#define PECOMP_FUZZ_MUTATE_H

#include "fuzz/Case.h"
#include "fuzz/ProgramGen.h"

#include <random>

namespace pecomp {
namespace fuzz {

enum class Mutation : uint8_t {
  SpliceBody,    ///< regenerate one definition's body under the grammar
  TweakConstant, ///< nudge one integer literal in the program text
  FlipDivision,  ///< flip one entry parameter between static and dynamic
  TweakArg,      ///< change one concrete argument value
  PerturbLimits, ///< install or clear a resource-limit / heap-fault schedule
};
inline constexpr size_t NumMutations = 5;
const char *mutationName(Mutation M);

/// Applies \p M to \p C, drawing randomness from \p Rng. Returns the
/// mutated case, or an error when the mutation does not apply (no
/// constants to tweak, un-parsable source, ...) — callers just pick
/// another mutation or another case.
Result<FuzzCase> mutateCase(const FuzzCase &C, Mutation M, std::mt19937 &Rng,
                            const GenOptions &GOpts = {});

/// Applies a randomly chosen applicable mutation (bounded retries).
Result<FuzzCase> mutateCase(const FuzzCase &C, std::mt19937 &Rng,
                            const GenOptions &GOpts = {});

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_MUTATE_H
