//===- fuzz/Reduce.cpp - Delta-debugging reducer for findings -------------===//

#include "fuzz/Reduce.h"

#include "frontend/Parse.h"
#include "sexp/WellKnown.h"
#include "support/Casting.h"

namespace pecomp {
namespace fuzz {

namespace {

/// How a node-rewrite candidate transforms the targeted node. Children
/// are tried one index at a time so (if t a b) can shrink to t, a, or b.
struct NodeEdit {
  enum Kind { ToConst, ToChild } K;
  int64_t Const = 0; ///< ToConst: the replacement literal
  size_t Child = 0;  ///< ToChild: which child to hoist
};

/// Pre-order node count of an expression tree.
size_t countNodes(const Expr *E) {
  size_t N = 1;
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    break;
  case Expr::Kind::Lambda:
    N += countNodes(cast<LambdaExpr>(E)->body());
    break;
  case Expr::Kind::Let:
    N += countNodes(cast<LetExpr>(E)->init());
    N += countNodes(cast<LetExpr>(E)->body());
    break;
  case Expr::Kind::If:
    N += countNodes(cast<IfExpr>(E)->test());
    N += countNodes(cast<IfExpr>(E)->thenBranch());
    N += countNodes(cast<IfExpr>(E)->elseBranch());
    break;
  case Expr::Kind::App:
    N += countNodes(cast<AppExpr>(E)->callee());
    for (const Expr *A : cast<AppExpr>(E)->args())
      N += countNodes(A);
    break;
  case Expr::Kind::PrimApp:
    for (const Expr *A : cast<PrimAppExpr>(E)->args())
      N += countNodes(A);
    break;
  case Expr::Kind::Set:
    N += countNodes(cast<SetExpr>(E)->value());
    break;
  }
  return N;
}

/// The node's direct subexpressions (hoist candidates).
std::vector<const Expr *> childrenOf(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return {};
  case Expr::Kind::Lambda:
    return {cast<LambdaExpr>(E)->body()};
  case Expr::Kind::Let:
    return {cast<LetExpr>(E)->init(), cast<LetExpr>(E)->body()};
  case Expr::Kind::If:
    return {cast<IfExpr>(E)->test(), cast<IfExpr>(E)->thenBranch(),
            cast<IfExpr>(E)->elseBranch()};
  case Expr::Kind::App: {
    std::vector<const Expr *> C{cast<AppExpr>(E)->callee()};
    for (const Expr *A : cast<AppExpr>(E)->args())
      C.push_back(A);
    return C;
  }
  case Expr::Kind::PrimApp: {
    std::vector<const Expr *> C;
    for (const Expr *A : cast<PrimAppExpr>(E)->args())
      C.push_back(A);
    return C;
  }
  case Expr::Kind::Set:
    return {cast<SetExpr>(E)->value()};
  }
  return {};
}

/// Rebuilds \p E with the node at pre-order index \p Target edited per
/// \p Edit. \p Idx threads the pre-order position; \p Ok reports whether
/// the edit applied (a ToChild out of range, or a ToConst of a node that
/// is already that constant, does not).
const Expr *rewrite(const Expr *E, ExprFactory &F, size_t &Idx, size_t Target,
                    const NodeEdit &Edit, bool &Ok) {
  size_t Here = Idx++;
  if (Here == Target) {
    if (Edit.K == NodeEdit::ToChild) {
      std::vector<const Expr *> C = childrenOf(E);
      if (Edit.Child < C.size() && !isa<LambdaExpr>(C[Edit.Child])) {
        Ok = true;
        return C[Edit.Child];
      }
      return E; // nothing hoistable here
    }
    // ToConst applies only to non-constants: every accepted edit then
    // strictly shrinks the tree (or retires a non-constant leaf), so the
    // sweep cannot livelock toggling one literal between values.
    if (isa<ConstExpr>(E))
      return E;
    if (isa<LambdaExpr>(E))
      return E; // a lambda in operator position must stay a lambda
    Ok = true;
    return F.constant(wellknown::fixnum(Edit.Const));
  }
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return E;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    return F.lambda(L->params(), rewrite(L->body(), F, Idx, Target, Edit, Ok));
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    const Expr *Init = rewrite(L->init(), F, Idx, Target, Edit, Ok);
    return F.let(L->name(), Init, rewrite(L->body(), F, Idx, Target, Edit, Ok));
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    const Expr *T = rewrite(I->test(), F, Idx, Target, Edit, Ok);
    const Expr *Th = rewrite(I->thenBranch(), F, Idx, Target, Edit, Ok);
    return F.ifExpr(T, Th, rewrite(I->elseBranch(), F, Idx, Target, Edit, Ok));
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    const Expr *Callee = rewrite(A->callee(), F, Idx, Target, Edit, Ok);
    std::vector<const Expr *> Args;
    for (const Expr *Arg : A->args())
      Args.push_back(rewrite(Arg, F, Idx, Target, Edit, Ok));
    return F.app(Callee, std::move(Args));
  }
  case Expr::Kind::PrimApp: {
    const auto *P = cast<PrimAppExpr>(E);
    std::vector<const Expr *> Args;
    for (const Expr *Arg : P->args())
      Args.push_back(rewrite(Arg, F, Idx, Target, Edit, Ok));
    return F.primApp(P->op(), std::move(Args));
  }
  case Expr::Kind::Set: {
    const auto *S = cast<SetExpr>(E);
    return F.set(S->name(), rewrite(S->value(), F, Idx, Target, Edit, Ok));
  }
  }
  return E;
}

/// Shared reduction state: the current smallest diverging case and the
/// bounded still-diverges predicate.
struct Reducer {
  const DiffOptions &Opts;
  const ReduceOptions &ROpts;
  ReduceOutcome Out;

  bool budget() const { return Out.Attempts < ROpts.MaxAttempts; }

  /// Runs \p Cand; adopts it as the new current case when it still shows
  /// a divergence. Returns whether it was adopted.
  bool tryAdopt(const FuzzCase &Cand) {
    if (!budget())
      return false;
    ++Out.Attempts;
    DiffResult R = runCase(Cand, Opts);
    if (R.Skipped || !R.Diverged)
      return false;
    Out.Minimized = Cand;
    Out.EntryInsns = R.EntryInsns;
    Out.Diverged = R.Diverged;
    return true;
  }
};

/// One sweep of definition drops; true when any candidate was adopted.
bool sweepDropDefs(Reducer &R) {
  bool Progress = false;
  bool Adopted = true;
  while (Adopted && R.budget()) {
    Adopted = false;
    Arena A;
    DatumFactory Datums(A);
    ExprFactory Exprs(A);
    Result<Program> P = parseProgramText(R.Out.Minimized.Source, Exprs, Datums);
    if (!P || P->Defs.size() < 2)
      return Progress;
    for (size_t D = 0; D != P->Defs.size() && R.budget(); ++D) {
      if (P->Defs[D].Name == Symbol::intern(R.Out.Minimized.Entry))
        continue;
      Program Q;
      for (size_t I = 0; I != P->Defs.size(); ++I)
        if (I != D)
          Q.Defs.push_back(P->Defs[I]);
      FuzzCase Cand = R.Out.Minimized;
      Cand.Source = Q.print();
      if (R.tryAdopt(Cand)) {
        Progress = Adopted = true;
        break; // defs shifted; re-parse and restart the sweep
      }
    }
  }
  return Progress;
}

/// One sweep of subexpression rewrites across every definition body.
bool sweepRewriteNodes(Reducer &R) {
  bool Progress = false;
  bool Adopted = true;
  while (Adopted && R.budget()) {
    Adopted = false;
    Arena A;
    DatumFactory Datums(A);
    ExprFactory Exprs(A);
    Result<Program> P = parseProgramText(R.Out.Minimized.Source, Exprs, Datums);
    if (!P)
      return Progress;
    for (size_t D = 0; D != P->Defs.size() && !Adopted; ++D) {
      const LambdaExpr *Fn = P->Defs[D].Fn;
      size_t N = countNodes(Fn->body());
      for (size_t Node = 0; Node != N && !Adopted && R.budget(); ++Node) {
        // Hoisting a child loses more nodes than constant-folding the
        // same target, so try the children first.
        std::vector<NodeEdit> Edits;
        for (size_t C = 0; C != 3; ++C)
          Edits.push_back({NodeEdit::ToChild, 0, C});
        Edits.push_back({NodeEdit::ToConst, 0, 0});
        Edits.push_back({NodeEdit::ToConst, 1, 0});
        for (const NodeEdit &Edit : Edits) {
          if (!R.budget())
            break;
          size_t Idx = 0;
          bool Applied = false;
          const Expr *Body =
              rewrite(Fn->body(), Exprs, Idx, Node, Edit, Applied);
          if (!Applied)
            continue;
          Program Q = *P;
          Q.Defs[D].Fn = Exprs.lambda(Fn->params(), Body);
          FuzzCase Cand = R.Out.Minimized;
          Cand.Source = Q.print();
          if (R.tryAdopt(Cand)) {
            Progress = Adopted = true;
            break; // tree changed; re-parse and restart
          }
        }
      }
    }
  }
  return Progress;
}

/// Division → all-dynamic, arguments → 0, perturbation fields → off.
bool sweepScalars(Reducer &R) {
  bool Progress = false;
  for (size_t I = 0; I != R.Out.Minimized.Division.size() && R.budget(); ++I) {
    if (R.Out.Minimized.Division[I] != 'S')
      continue;
    FuzzCase Cand = R.Out.Minimized;
    Cand.Division[I] = 'D';
    Progress |= R.tryAdopt(Cand);
  }
  for (size_t I = 0; I != R.Out.Minimized.Args.size() && R.budget(); ++I) {
    if (R.Out.Minimized.Args[I] == 0)
      continue;
    FuzzCase Cand = R.Out.Minimized;
    Cand.Args[I] = 0;
    Progress |= R.tryAdopt(Cand);
  }
  const Perturbation Zero;
  if (R.Out.Minimized.Perturb.any() && R.budget()) {
    FuzzCase Cand = R.Out.Minimized;
    Cand.Perturb = Zero;
    if (R.tryAdopt(Cand))
      Progress = true;
    else {
      // Whole-schedule drop failed; retire one field at a time.
      auto TryField = [&](auto Perturbation::*Field) {
        if (R.Out.Minimized.Perturb.*Field == 0 || !R.budget())
          return;
        FuzzCase C2 = R.Out.Minimized;
        C2.Perturb.*Field = 0;
        Progress |= R.tryAdopt(C2);
      };
      TryField(&Perturbation::Fuel);
      TryField(&Perturbation::MaxStack);
      TryField(&Perturbation::MaxFrames);
      TryField(&Perturbation::MaxHeapBytes);
      TryField(&Perturbation::FailAtAllocation);
      TryField(&Perturbation::FailAboveLiveBytes);
    }
  }
  return Progress;
}

} // namespace

ReduceOutcome reduceCase(const FuzzCase &C, const DiffOptions &Opts,
                         const ReduceOptions &ROpts) {
  Reducer R{Opts, ROpts, {}};
  R.Out.Minimized = C;

  // Establish the baseline: no divergence means nothing to reduce.
  ++R.Out.Attempts;
  DiffResult Base = runCase(C, Opts);
  if (Base.Skipped || !Base.Diverged)
    return R.Out;
  R.Out.EntryInsns = Base.EntryInsns;
  R.Out.Diverged = Base.Diverged;

  bool Progress = true;
  while (Progress && R.budget()) {
    Progress = false;
    Progress |= sweepDropDefs(R);
    Progress |= sweepRewriteNodes(R);
    Progress |= sweepScalars(R);
  }
  return R.Out;
}

} // namespace fuzz
} // namespace pecomp
