//===- fuzz/Case.cpp - Fuzz-case serialization ----------------------------===//

#include "fuzz/Case.h"

#include <charconv>
#include <sstream>

namespace pecomp {
namespace fuzz {

namespace {

/// Splits "key v1 v2 ..." after the ";;" marker.
bool parseHeaderLine(std::string_view Line, std::string &Key,
                     std::vector<std::string> &Words) {
  size_t P = Line.find_first_not_of(" \t", 2); // past ";;"
  if (P == std::string_view::npos)
    return false;
  std::istringstream In{std::string(Line.substr(P))};
  if (!(In >> Key))
    return false;
  Words.clear();
  std::string W;
  while (In >> W)
    Words.push_back(W);
  return true;
}

template <typename T> bool parseNum(const std::string &W, T &Out) {
  auto [Ptr, Ec] = std::from_chars(W.data(), W.data() + W.size(), Out);
  return Ec == std::errc() && Ptr == W.data() + W.size();
}

} // namespace

std::string FuzzCase::serialize() const {
  std::string Out = ";; pecomp-fuzz-case v1\n";
  Out += ";; entry " + Entry + "\n";
  Out += ";; division " + (Division.empty() ? "-" : Division) + "\n";
  Out += ";; args";
  for (int64_t A : Args)
    Out += " " + std::to_string(A);
  Out += "\n";
  if (Perturb.any()) {
    Out += ";; limits " + std::to_string(Perturb.Fuel) + " " +
           std::to_string(Perturb.MaxStack) + " " +
           std::to_string(Perturb.MaxFrames) + " " +
           std::to_string(Perturb.MaxHeapBytes) + " " +
           std::to_string(Perturb.FailAtAllocation) + " " +
           std::to_string(Perturb.FailAboveLiveBytes) + "\n";
  }
  Out += Source;
  if (!Source.empty() && Source.back() != '\n')
    Out += "\n";
  return Out;
}

Result<FuzzCase> FuzzCase::deserialize(std::string_view Text) {
  FuzzCase C;
  bool SawMagic = false;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string_view Line =
        Text.substr(Pos, Eol == std::string_view::npos ? Eol : Eol - Pos);
    if (Line.size() < 2 || Line.substr(0, 2) != ";;")
      break; // program text starts here
    Pos = Eol == std::string_view::npos ? Text.size() : Eol + 1;

    std::string Key;
    std::vector<std::string> Words;
    if (!parseHeaderLine(Line, Key, Words))
      continue;
    if (Key == "pecomp-fuzz-case") {
      SawMagic = true;
    } else if (Key == "entry" && !Words.empty()) {
      C.Entry = Words[0];
    } else if (Key == "division" && !Words.empty()) {
      C.Division = Words[0] == "-" ? "" : Words[0];
    } else if (Key == "args") {
      for (const std::string &W : Words) {
        int64_t V;
        if (!parseNum(W, V))
          return Error("fuzz case: bad argument '" + W + "'");
        C.Args.push_back(V);
      }
    } else if (Key == "limits") {
      if (Words.size() != 6)
        return Error("fuzz case: limits header needs 6 fields");
      if (!parseNum(Words[0], C.Perturb.Fuel) ||
          !parseNum(Words[1], C.Perturb.MaxStack) ||
          !parseNum(Words[2], C.Perturb.MaxFrames) ||
          !parseNum(Words[3], C.Perturb.MaxHeapBytes) ||
          !parseNum(Words[4], C.Perturb.FailAtAllocation) ||
          !parseNum(Words[5], C.Perturb.FailAboveLiveBytes))
        return Error("fuzz case: bad limits header");
    } // unknown keys are ignored: forward compatibility
  }
  if (!SawMagic)
    return Error("fuzz case: missing ';; pecomp-fuzz-case v1' header");
  if (C.Entry.empty())
    return Error("fuzz case: missing entry header");
  C.Source = std::string(Text.substr(Pos));
  if (C.Source.find('(') == std::string::npos)
    return Error("fuzz case: no program text after headers");
  return C;
}

uint64_t FuzzCase::fingerprint() const {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  for (char Ch : serialize()) {
    H ^= static_cast<uint8_t>(Ch);
    H *= 1099511628211ull; // FNV prime
  }
  return H;
}

} // namespace fuzz
} // namespace pecomp
