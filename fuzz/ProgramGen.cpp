//===- fuzz/ProgramGen.cpp - Random Core Scheme program generator ---------===//

#include "fuzz/ProgramGen.h"

#include "sexp/WellKnown.h"

#include <array>

namespace pecomp {
namespace fuzz {

Program ProgramGen::generate() {
  Program P;
  size_t NumDefs = Opts.MinDefs + (Opts.ExtraDefs ? Rng() % Opts.ExtraDefs : 0);
  for (size_t I = 0; I != NumDefs; ++I) {
    std::vector<Symbol> Params;
    size_t NumParams = 1 + Rng() % Opts.MaxParams;
    for (size_t J = 0; J != NumParams; ++J)
      Params.push_back(
          Symbol::intern("p" + std::to_string(I) + "_" + std::to_string(J)));
    // Bodies may call only *earlier* definitions: the call graph is a
    // DAG, so everything terminates.
    const Expr *Body = genExpr(Opts.Depth, Params, P);
    Symbol Name = Symbol::intern("fn" + std::to_string(I));
    P.Defs.push_back({Name, F.lambda(Params, Body)});
  }
  return P;
}

const Expr *ProgramGen::genExpr(unsigned Depth,
                                const std::vector<Symbol> &Scope,
                                const Program &Defined) {
  if (Depth == 0)
    return genLeaf(Scope);
  switch (Rng() % 8) {
  case 0:
    return genLeaf(Scope);
  case 1:
  case 2: {
    PrimOp Op;
    if (Opts.PartialOps) {
      Op = std::array{PrimOp::Add,      PrimOp::Sub,
                      PrimOp::Mul,      PrimOp::Quotient,
                      PrimOp::Remainder}[Rng() % 5];
    } else {
      Op = std::array{PrimOp::Add, PrimOp::Sub, PrimOp::Mul}[Rng() % 3];
    }
    return F.primApp(Op, {genExpr(Depth - 1, Scope, Defined),
                          genExpr(Depth - 1, Scope, Defined)});
  }
  case 3: {
    // (if <comparison> e1 e2)
    PrimOp Cmp = std::array{PrimOp::Lt, PrimOp::NumEq, PrimOp::Ge,
                            PrimOp::ZeroP}[Rng() % 4];
    const Expr *Test =
        Cmp == PrimOp::ZeroP
            ? F.primApp(Cmp, {genExpr(Depth - 1, Scope, Defined)})
            : F.primApp(Cmp, {genExpr(Depth - 1, Scope, Defined),
                              genExpr(Depth - 1, Scope, Defined)});
    return F.ifExpr(Test, genExpr(Depth - 1, Scope, Defined),
                    genExpr(Depth - 1, Scope, Defined));
  }
  case 4: {
    // (let (x e1) e2)
    Symbol X = freshLocal("v");
    std::vector<Symbol> Inner = Scope;
    Inner.push_back(X);
    return F.let(X, genExpr(Depth - 1, Scope, Defined),
                 genExpr(Depth - 1, Inner, Defined));
  }
  case 5: {
    // Directly applied lambda.
    size_t N = 1 + Rng() % 2;
    std::vector<Symbol> Params;
    std::vector<const Expr *> Args;
    std::vector<Symbol> Inner = Scope;
    for (size_t I = 0; I != N; ++I) {
      Symbol X = freshLocal("a");
      Params.push_back(X);
      Inner.push_back(X);
      Args.push_back(genExpr(Depth - 1, Scope, Defined));
    }
    return F.app(F.lambda(Params, genExpr(Depth - 1, Inner, Defined)),
                 std::move(Args));
  }
  case 6: {
    // Call an earlier definition, if any.
    if (Defined.Defs.empty())
      return genLeaf(Scope);
    const Definition &Callee = Defined.Defs[Rng() % Defined.Defs.size()];
    std::vector<const Expr *> Args;
    for (size_t I = 0; I != Callee.Fn->params().size(); ++I)
      Args.push_back(genExpr(Depth - 1, Scope, Defined));
    return F.app(F.var(Callee.Name), std::move(Args));
  }
  default:
    return genLeaf(Scope);
  }
}

const Expr *ProgramGen::genLeaf(const std::vector<Symbol> &Scope) {
  if (!Scope.empty() && Rng() % 2)
    return F.var(Scope[Rng() % Scope.size()]);
  return F.constant(wellknown::fixnum(static_cast<int64_t>(Rng() % 21) - 10));
}

} // namespace fuzz
} // namespace pecomp
