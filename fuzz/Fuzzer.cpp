//===- fuzz/Fuzzer.cpp - Coverage-guided differential fuzzing loop --------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Mutate.h"
#include "pgg/DiskStore.h"

#include <cstdio>
#include <cstdlib>

namespace pecomp {
namespace fuzz {

std::string FuzzerStats::json() const {
  char Buf[512];
  snprintf(Buf, sizeof(Buf),
           "{\"executed\": %zu, \"skipped\": %zu, \"generated\": %zu, "
           "\"mutated\": %zu, \"coverage_features\": %zu, "
           "\"novel_cases\": %zu, \"findings\": %zu}",
           Executed, Skipped, Generated, Mutated, CoverageFeatures, NovelCases,
           Findings);
  return Buf;
}

Fuzzer::Fuzzer(FuzzerOptions Opts) : Opts(std::move(Opts)), Rng(this->Opts.Seed) {
  GOpts.PartialOps = this->Opts.PartialOps;
  if (!this->Opts.CorpusDir.empty())
    Pool.loadDirectory(this->Opts.CorpusDir);
  if (!this->Opts.StoreDir.empty()) {
    Result<std::shared_ptr<pgg::DiskStore>> St =
        pgg::DiskStore::open(this->Opts.StoreDir);
    if (St.ok())
      Store = *St;
    else
      // A hammer that cannot open its anvil is a setup error worth
      // surfacing, but not worth aborting the differential run over.
      fprintf(stderr, "fuzzer: store hammer disabled: %s\n",
              St.error().render().c_str());
  }
}

FuzzCase Fuzzer::freshCase() {
  Arena A;
  ExprFactory Exprs(A);
  ProgramGen Gen(Rng(), Exprs, GOpts);
  Program P = Gen.generate();

  FuzzCase C;
  C.Source = P.print();
  const Definition &Entry = P.Defs.back(); // conventional entry: last def
  C.Entry = Entry.Name.str();
  for (size_t I = 0; I != Entry.Fn->params().size(); ++I) {
    C.Division.push_back(Rng() % 2 ? 'S' : 'D');
    C.Args.push_back(Gen.randomArg());
  }
  if (Opts.Perturb && Rng() % 3 == 0) {
    // Start life under a random resource schedule (the PerturbLimits
    // mutation draws one); the other two-thirds stay unperturbed so the
    // oracle participates.
    if (Result<FuzzCase> M =
            mutateCase(C, Mutation::PerturbLimits, Rng, GOpts))
      C = *M;
  }
  return C;
}

const FuzzerStats &Fuzzer::run() {
  DiffOptions DOpts;
  DOpts.Inject = Opts.Inject;
  DOpts.Coverage = &Coverage;
  DOpts.Store = Store.get();
  DOpts.Guarded = Opts.Guarded;
  DOpts.Native = Opts.Native;

  for (size_t Iter = 0; Iter != Opts.Iterations; ++Iter) {
    if (Found.size() >= Opts.MaxFindings)
      break;

    // Mutation stock: ~40% of iterations mutate a corpus case once the
    // corpus has anything to mutate; the rest generate fresh.
    FuzzCase C;
    bool FromMutation = !Pool.empty() && Rng() % 10 < 4;
    if (FromMutation) {
      const FuzzCase &Base = Pool.cases()[Rng() % Pool.size()];
      Result<FuzzCase> M = mutateCase(Base, Rng, GOpts);
      if (M.ok() && (Opts.Perturb || !M->Perturb.any())) {
        C = *M;
        ++Stats.Mutated;
      } else {
        C = freshCase();
        ++Stats.Generated;
        FromMutation = false;
      }
    } else {
      C = freshCase();
      ++Stats.Generated;
    }

    if (Store) {
      // Per-case I/O fault schedule: most cases round-trip clean, the
      // rest exercise one injected failure mode each. Every mode must
      // degrade to the in-memory snapshot — never crash, never serve a
      // corrupted program (the tier comparison below would catch it).
      pgg::StoreFaultPlan P;
      switch (Rng() % 10) {
      case 0:
        P.CorruptAtWrite = 1;
        P.CorruptOffset = Rng() % 4096;
        break;
      case 1: P.FailAtWrite = 1; break;
      case 2: P.ShortWriteAt = 1; break;
      case 3: P.FailAtRead = 1; break;
      case 4: P.ShortReadAt = 1; break;
      case 5: P.FailFsync = true; break;
      default: break; // clean put/load round trip
      }
      Store->setFaultPlan(P);
    }

    if (std::getenv("PECOMP_FUZZ_TRACE"))
      // Dumping before the run means a crashing or wedged case is the
      // last one printed — the point of the hook.
      fprintf(stderr, "--- iter %zu (%s)\n%s", Iter,
              FromMutation ? "mutated" : "generated", C.serialize().c_str());

    DiffResult R = runCase(C, DOpts);
    if (R.Skipped) {
      ++Stats.Skipped;
      continue;
    }
    ++Stats.Executed;

    if (R.NewCoverage) {
      // Coverage novelty earns a place in the mutation stock.
      if (Pool.add(C)) {
        ++Stats.NovelCases;
        if (Opts.SaveNovel && !Opts.CorpusDir.empty())
          (void)Corpus::saveEntry(Opts.CorpusDir, C);
      }
    }

    if (!R.Diverged)
      continue;

    Finding F;
    F.Case = C;
    F.Diverged = *R.Diverged;
    F.EntryInsns = R.EntryInsns;
    if (Opts.Minimize) {
      if (Store)
        // Reduce under a clean store: the reducer needs the divergence to
        // reproduce case-intrinsically, not via a one-shot I/O fault.
        Store->setFaultPlan(pgg::StoreFaultPlan{});
      ReduceOptions ROpts;
      ROpts.MaxAttempts = Opts.ReduceMaxAttempts;
      ReduceOutcome Min = reduceCase(C, DOpts, ROpts);
      F.ReduceAttempts = Min.Attempts;
      if (Min.Diverged) {
        F.Case = Min.Minimized;
        F.Diverged = *Min.Diverged;
        F.EntryInsns = Min.EntryInsns;
      }
    }
    if (!FindingFps.insert(F.Case.fingerprint()).second)
      continue; // same minimized witness as an earlier finding
    if (!Opts.FindingsDir.empty())
      if (Result<std::string> Path = Corpus::saveEntry(Opts.FindingsDir, F.Case))
        F.SavedPath = *Path;
    Found.push_back(std::move(F));
    ++Stats.Findings;
  }

  Stats.CoverageFeatures = Coverage.features();
  return Stats;
}

} // namespace fuzz
} // namespace pecomp
