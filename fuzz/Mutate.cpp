//===- fuzz/Mutate.cpp - Grammar-aware fuzz-case mutations ----------------===//

#include "fuzz/Mutate.h"

#include "frontend/Parse.h"

#include <cctype>

namespace pecomp {
namespace fuzz {

namespace {

/// Regenerates one definition body under the ProgramGen grammar. The
/// replacement may reference the definition's own parameters and call only
/// *earlier* definitions (the prefix program), preserving the DAG call
/// graph and therefore termination.
Result<FuzzCase> spliceBody(const FuzzCase &C, std::mt19937 &Rng,
                            const GenOptions &GOpts) {
  Arena A;
  DatumFactory Datums(A);
  ExprFactory Exprs(A);
  Result<Program> P = parseProgramText(C.Source, Exprs, Datums);
  if (!P)
    return Error("splice: " + P.error().render());
  if (P->Defs.empty())
    return Error("splice: no definitions");

  size_t D = Rng() % P->Defs.size();
  Definition &Def = P->Defs[D];
  Program Prefix;
  Prefix.Defs.assign(P->Defs.begin(), P->Defs.begin() + D);

  ProgramGen Gen(Rng(), Exprs, GOpts);
  const Expr *Body = Gen.genExpr(GOpts.Depth, Def.Fn->params(), Prefix);
  Def.Fn = Exprs.lambda(Def.Fn->params(), Body);

  FuzzCase Out = C;
  Out.Source = P->print();
  return Out;
}

/// Nudges one integer literal in the program text. Token-level: an
/// optionally signed digit run delimited by whitespace or parentheses is
/// an integer literal in this grammar and nothing else.
Result<FuzzCase> tweakConstant(const FuzzCase &C, std::mt19937 &Rng) {
  struct Tok {
    size_t Pos, Len;
  };
  std::vector<Tok> Ints;
  const std::string &S = C.Source;
  for (size_t I = 0; I < S.size();) {
    bool Signed = S[I] == '-' && I + 1 < S.size() && std::isdigit(S[I + 1]);
    if (Signed || std::isdigit(static_cast<unsigned char>(S[I]))) {
      bool Delim = I == 0 || S[I - 1] == '(' || S[I - 1] == ')' ||
                   std::isspace(static_cast<unsigned char>(S[I - 1]));
      size_t J = I + (Signed ? 1 : 0);
      while (J < S.size() && std::isdigit(static_cast<unsigned char>(S[J])))
        ++J;
      bool EndsClean = J == S.size() || S[J] == '(' || S[J] == ')' ||
                       std::isspace(static_cast<unsigned char>(S[J]));
      if (Delim && EndsClean)
        Ints.push_back({I, J - I});
      I = J;
    } else {
      ++I;
    }
  }
  if (Ints.empty())
    return Error("tweak-constant: no integer literals");

  Tok T = Ints[Rng() % Ints.size()];
  int64_t V = std::stoll(S.substr(T.Pos, T.Len));
  // Boundary-seeking nudges: zero (divisors!), sign flips, off-by-ones,
  // and magnitude jumps that stress fixnum arithmetic.
  switch (Rng() % 6) {
  case 0:
    V = 0;
    break;
  case 1:
    V = -V;
    break;
  case 2:
    V += 1;
    break;
  case 3:
    V -= 1;
    break;
  case 4:
    V *= 3;
    break;
  default:
    V = static_cast<int64_t>(Rng() % 41) - 20;
    break;
  }
  FuzzCase Out = C;
  Out.Source = S.substr(0, T.Pos) + std::to_string(V) + S.substr(T.Pos + T.Len);
  return Out;
}

Result<FuzzCase> flipDivision(const FuzzCase &C, std::mt19937 &Rng) {
  if (C.Division.empty())
    return Error("flip-division: empty division");
  FuzzCase Out = C;
  size_t I = Rng() % Out.Division.size();
  Out.Division[I] = Out.Division[I] == 'S' ? 'D' : 'S';
  return Out;
}

Result<FuzzCase> tweakArg(const FuzzCase &C, std::mt19937 &Rng) {
  if (C.Args.empty())
    return Error("tweak-arg: no arguments");
  FuzzCase Out = C;
  size_t I = Rng() % Out.Args.size();
  switch (Rng() % 4) {
  case 0:
    Out.Args[I] = 0;
    break;
  case 1:
    Out.Args[I] = -Out.Args[I];
    break;
  case 2:
    Out.Args[I] += 1;
    break;
  default:
    Out.Args[I] = static_cast<int64_t>(Rng() % 41) - 20;
    break;
  }
  return Out;
}

Result<FuzzCase> perturbLimits(const FuzzCase &C, std::mt19937 &Rng) {
  FuzzCase Out = C;
  Perturbation &P = Out.Perturb;
  switch (Rng() % 6) {
  case 0: // clear: back to the unperturbed differential
    P = Perturbation();
    break;
  case 1: // fuel low enough to starve mid-execution
    P.Fuel = 1 + Rng() % 256;
    break;
  case 2: // value-stack ceiling around realistic evaluation depths
    P.MaxStack = 4 + Rng() % 64;
    break;
  case 3: // call-frame ceiling
    P.MaxFrames = 1 + Rng() % 16;
    break;
  case 4: // heap byte ceiling (tight enough that closures/boxes trip it)
    P.MaxHeapBytes = 256 + Rng() % (64u << 10);
    break;
  default: // injected allocation fault schedule
    if (Rng() % 2)
      P.FailAtAllocation = 1 + Rng() % 512;
    else
      P.FailAboveLiveBytes = 256 + Rng() % (16u << 10);
    break;
  }
  return Out;
}

} // namespace

const char *mutationName(Mutation M) {
  switch (M) {
  case Mutation::SpliceBody:
    return "splice-body";
  case Mutation::TweakConstant:
    return "tweak-constant";
  case Mutation::FlipDivision:
    return "flip-division";
  case Mutation::TweakArg:
    return "tweak-arg";
  case Mutation::PerturbLimits:
    return "perturb-limits";
  }
  return "?";
}

Result<FuzzCase> mutateCase(const FuzzCase &C, Mutation M, std::mt19937 &Rng,
                            const GenOptions &GOpts) {
  switch (M) {
  case Mutation::SpliceBody:
    return spliceBody(C, Rng, GOpts);
  case Mutation::TweakConstant:
    return tweakConstant(C, Rng);
  case Mutation::FlipDivision:
    return flipDivision(C, Rng);
  case Mutation::TweakArg:
    return tweakArg(C, Rng);
  case Mutation::PerturbLimits:
    return perturbLimits(C, Rng);
  }
  return Error("unknown mutation");
}

Result<FuzzCase> mutateCase(const FuzzCase &C, std::mt19937 &Rng,
                            const GenOptions &GOpts) {
  for (int Attempt = 0; Attempt != 8; ++Attempt) {
    auto M = static_cast<Mutation>(Rng() % NumMutations);
    Result<FuzzCase> Out = mutateCase(C, M, Rng, GOpts);
    if (Out.ok())
      return Out;
  }
  return Error("no applicable mutation");
}

} // namespace fuzz
} // namespace pecomp
