//===- fuzz/Corpus.cpp - On-disk fuzz-case corpus -------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pecomp {
namespace fuzz {

size_t Corpus::loadDirectory(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec))
    return 0;
  // Sort paths so corpus iteration order — and with it every seeded run —
  // is independent of directory-entry order.
  std::vector<fs::path> Paths;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec))
    if (E.is_regular_file() && E.path().extension() == ".scm")
      Paths.push_back(E.path());
  std::sort(Paths.begin(), Paths.end());

  size_t Loaded = 0;
  for (const fs::path &P : Paths) {
    std::ifstream In(P);
    std::ostringstream Text;
    Text << In.rdbuf();
    Result<FuzzCase> C = FuzzCase::deserialize(Text.str());
    if (!C.ok()) {
      ++Skipped;
      continue;
    }
    if (add(*C))
      ++Loaded;
  }
  return Loaded;
}

bool Corpus::add(const FuzzCase &C) {
  if (!Seen.insert(C.fingerprint()).second)
    return false;
  Cases.push_back(C);
  return true;
}

Result<std::string> Corpus::saveEntry(const std::string &Dir,
                                      const FuzzCase &C) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return Error("corpus: cannot create " + Dir + ": " + Ec.message());
  char Name[32];
  snprintf(Name, sizeof(Name), "case-%016" PRIx64 ".scm", C.fingerprint());
  std::string Path = (fs::path(Dir) / Name).string();
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return Error("corpus: cannot write " + Path);
  Out << C.serialize();
  Out.close();
  if (!Out)
    return Error("corpus: write failed for " + Path);
  return Path;
}

} // namespace fuzz
} // namespace pecomp
