//===- fuzz/Differential.h - Seven-tier differential executor ---*- C++ -*-===//
///
/// \file
/// Runs one FuzzCase through every execution configuration the RTCG
/// pipeline ships — the oracle interpreter, the byte loop, the decoded
/// computed-goto loop, the fused superinstruction loop, the native
/// per-block template JIT (vm/Jit.h), a cached PortableProgram hit
/// instantiated into a fresh heap, and the guarded re-specialization
/// dispatch (vm/Guard.h) — and compares the outcomes bit-for-bit:
/// result value, trap kind, faulting PC and function, and
/// executed-instruction counts. Any disagreement is a Divergence, the
/// fuzzer's unit of finding.
///
/// Comparison discipline:
///   * The five plain VM tiers must agree exactly, under any
///     Perturbation — fuel, stack, frame, and heap schedules included.
///     Heap-sensitive schedules run every tier from a freshly
///     instantiated snapshot so allocation ordinals line up.
///   * The guarded tier's recorded outcome is its *miss leg*: a
///     deliberately failing argument guard that must deoptimize to the
///     generic code bit-identically to calling it directly — the full
///     aspect set (value, trap kind/PC/function, instruction count), and
///     under every perturbation, because that is exactly the claim a
///     serving system leans on when it deoptimizes. On unperturbed runs
///     a *hit leg* additionally specializes a variant on the case's own
///     argument values and requires the guarded fast path to agree on
///     ok-ness, value, and trap kind (its instruction count is the whole
///     point of the optimization, so it is excluded).
///   * The oracle has no byte PCs and different step/allocation counts,
///     so it participates only on unperturbed runs, where it must agree
///     on ok-ness, value, and trap kind.
///
/// InjectedBug deliberately breaks one tier (a wrong branch-polarity
/// "peephole" rewrite, or an off-by-one fuel budget) to mutation-test the
/// harness itself: a fuzzer that cannot catch a planted bug proves
/// nothing when it reports silence.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_DIFFERENTIAL_H
#define PECOMP_FUZZ_DIFFERENTIAL_H

#include "fuzz/Case.h"
#include "support/CoverageMap.h"
#include "vm/Trap.h"

#include <array>
#include <optional>

namespace pecomp {
namespace pgg {
class DiskStore;
}
namespace fuzz {

enum class Tier : uint8_t {
  Oracle,
  Bytes,
  Decoded,
  Fused,
  Native, ///< fused loop + per-block template JIT (vm::Machine::setNativeJit)
  Cached,
  Guarded
};
inline constexpr size_t NumTiers = 7;
const char *tierName(Tier T);

/// Everything one tier's execution produced.
struct TierOutcome {
  bool Ran = false;
  bool Ok = false;
  std::string Value; ///< canonical rendering (vm::valueToString) when Ok
  vm::TrapKind Kind = vm::TrapKind::None;
  size_t TrapPC = static_cast<size_t>(-1);
  std::string TrapFn;
  std::string Err;           ///< rendered error when !Ok
  uint64_t Instructions = 0; ///< VM tiers only (oracle counts steps, not insns)
};

/// Deliberate single-tier defects for harness mutation testing.
enum class InjectedBug : uint8_t {
  None,
  /// The cached tier's snapshot gets one conditional branch's polarity
  /// flipped after the peephole pass — the exact shape of a wrong
  /// JumpIfFalse-over-Jump inversion.
  BranchPolarity,
  /// The cached tier runs with one unit less fuel than requested.
  FuelOffByOne,
};

struct DiffOptions {
  InjectedBug Inject = InjectedBug::None;
  /// When set, opcode/digram/fused/trap/peephole/spec features observed
  /// during the run are folded in; DiffResult::NewCoverage reports how
  /// many were new.
  support::CoverageMap *Coverage = nullptr;
  /// Run the guarded dispatch tier (on by default). The miss leg runs on
  /// every case; the value-specialized hit leg needs a second generation
  /// per case, so corpus-throughput-sensitive callers can turn the tier
  /// off wholesale.
  bool Guarded = true;
  /// Run the native-JIT tier (on by default). Held to the same exact bar
  /// as the interpreted tiers — values, trap kind/PC/function, and
  /// instruction counts — under every perturbation schedule. On hosts
  /// without the tier (non-x86-64) the machine knob is a no-op, so the
  /// leg degenerates to a second fused run and the comparison is vacuous
  /// but still true.
  bool Native = true;
  /// When set, the cached tier's snapshot additionally round-trips
  /// through this persistent store (put, then verified load), under
  /// whatever StoreFaultPlan the caller installed. Production semantics
  /// hold: a classified store failure silently degrades to the in-memory
  /// snapshot; an unclassified load failure is a "store-roundtrip"
  /// divergence, and a load that *succeeds* with drifted semantics is
  /// caught by the ordinary tier comparison.
  pgg::DiskStore *Store = nullptr;
};

struct Divergence {
  Tier A = Tier::Oracle, B = Tier::Oracle;
  std::string Aspect; ///< "ok", "value", "trap-kind", "trap-pc", "insn-count"
  std::string Detail;
  std::string render() const;
};

struct DiffResult {
  /// True when the case never reached execution (front-end rejection,
  /// arity/division mismatch, spec-time trap on the static inputs). Not a
  /// finding: mutants are allowed to be invalid.
  bool Skipped = false;
  std::string SkipReason;

  std::array<TierOutcome, NumTiers> Tiers;
  std::optional<Divergence> Diverged;

  size_t NewCoverage = 0;
  /// Decoded instruction count of the residual entry's code object — the
  /// size metric minimized findings are measured by.
  size_t EntryInsns = 0;
};

/// Runs \p C through all seven configurations and cross-checks.
DiffResult runCase(const FuzzCase &C, const DiffOptions &Opts = {});

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_DIFFERENTIAL_H
