//===- fuzz/Reduce.h - Delta-debugging reducer for findings -----*- C++ -*-===//
///
/// \file
/// Shrinks a diverging FuzzCase to something a human can read. Greedy
/// delta debugging over the case structure: drop whole definitions,
/// replace subexpressions with constants, hoist children over their
/// parents, simplify the division toward all-dynamic, zero arguments, and
/// drop perturbation fields — adopting any candidate that still diverges
/// under the same DiffOptions, until a full sweep makes no progress or the
/// attempt budget runs out. Every transformation strictly shrinks the
/// case, so the loop terminates well before the budget on real findings.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_REDUCE_H
#define PECOMP_FUZZ_REDUCE_H

#include "fuzz/Differential.h"

namespace pecomp {
namespace fuzz {

struct ReduceOptions {
  /// Ceiling on differential executions (the expensive unit of work).
  size_t MaxAttempts = 2000;
};

struct ReduceOutcome {
  FuzzCase Minimized;
  /// Differential executions spent.
  size_t Attempts = 0;
  /// Decoded size of the minimized residual entry (the "≤ N instructions"
  /// metric findings are reported in).
  size_t EntryInsns = 0;
  /// The divergence the minimized case still exhibits. Disengaged only if
  /// the input never diverged in the first place (nothing to reduce).
  std::optional<Divergence> Diverged;
};

/// Minimizes \p C, which is expected to diverge under \p Opts.
ReduceOutcome reduceCase(const FuzzCase &C, const DiffOptions &Opts,
                         const ReduceOptions &ROpts = {});

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_REDUCE_H
