//===- fuzz/Case.h - One differential-fuzzing input -------------*- C++ -*-===//
///
/// \file
/// A FuzzCase is everything one differential execution needs, in a form
/// that survives the process: program source text (the external boundary
/// the whole pipeline — and the specialization cache key — is defined
/// over), the entry point, the requested binding-time division, concrete
/// fixnum arguments, and a Perturbation (resource-limit / heap-fault
/// schedule). Cases serialize to a small self-describing text format so
/// the corpus under testdata/fuzz-corpus/ is diffable, minimizable by
/// hand, and deterministic to replay.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FUZZ_CASE_H
#define PECOMP_FUZZ_CASE_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pecomp {
namespace fuzz {

/// A randomized vm::Limits / Heap::FaultPlan schedule under which the VM
/// tiers must still agree bit-for-bit (values, traps, trap PCs, fuel).
/// Zero always means "unperturbed".
struct Perturbation {
  uint64_t Fuel = 0;             ///< vm::Limits::Fuel
  size_t MaxStack = 0;           ///< vm::Limits::MaxStackDepth
  size_t MaxFrames = 0;          ///< vm::Limits::MaxFrames
  size_t MaxHeapBytes = 0;       ///< vm::Limits::MaxHeapBytes
  uint64_t FailAtAllocation = 0; ///< vm::FaultPlan::FailAtAllocation
  size_t FailAboveLiveBytes = 0; ///< vm::FaultPlan::FailAboveLiveBytes

  /// True when the schedule depends on heap allocation history — those
  /// runs execute every tier from a freshly instantiated snapshot so the
  /// allocation ordinals line up across tiers.
  bool heapSensitive() const {
    return MaxHeapBytes || FailAtAllocation || FailAboveLiveBytes;
  }
  bool any() const { return Fuel || MaxStack || MaxFrames || heapSensitive(); }
  bool operator==(const Perturbation &O) const = default;
};

struct FuzzCase {
  std::string Source;        ///< whole-program text
  std::string Entry;         ///< entry definition name
  std::string Division;      ///< 'S'/'D' per entry parameter
  std::vector<int64_t> Args; ///< one fixnum per entry parameter
  Perturbation Perturb;

  /// Canonical text form (";; pecomp-fuzz-case v1" header + program).
  std::string serialize() const;
  /// Inverse of serialize(); tolerant of extra whitespace.
  static Result<FuzzCase> deserialize(std::string_view Text);

  /// FNV-1a over the canonical serialization: the corpus dedup key and
  /// the persisted filename stem.
  uint64_t fingerprint() const;
};

} // namespace fuzz
} // namespace pecomp

#endif // PECOMP_FUZZ_CASE_H
