//===- bench/scaling_program_size.cpp - Generation-cost scaling ------------===//
///
/// \file
/// How generation cost scales with the size of the interpreted program:
/// MIXWELL programs with N chained functions (each with one dynamic
/// conditional, hence one residual function) are compiled by
/// specialization on both paths. The per-residual-function cost should be
/// roughly flat — generation is linear in residual size — which is the
/// property that lets RTCG replace a compiler (the paper's Fig. 8 use).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <map>

using namespace pecomp;
using namespace pecomp::bench;

namespace {

/// Builds a MIXWELL program with \p N chained functions:
///   f_i(x) = if x < 1 then i else x + f_{i+1}(x - 1)
std::string chainProgram(int N) {
  std::string P = "((main (x) (call f0 (var x)))";
  for (int I = 0; I != N; ++I) {
    std::string Next = I + 1 == N
                           ? "(const 0)"
                           : "(call f" + std::to_string(I + 1) +
                                 " (op2 - (var x) (const 1)))";
    P += " (f" + std::to_string(I) +
         " (x) (if (op2 < (var x) (const 1)) (const " + std::to_string(I) +
         ") (op2 + (var x) " + Next + ")))";
  }
  P += ")";
  return P;
}

struct ScalingWorkload {
  vm::Heap Heap;
  std::unique_ptr<pgg::GeneratingExtension> Gen;
  vm::Value Program;

  explicit ScalingWorkload(int N) {
    Gen = unwrap(pgg::GeneratingExtension::create(
        Heap, workloads::mixwellInterpreter(), "mixwell-run", "SD"));
    Arena A;
    DatumFactory DF(A);
    Program = vm::valueFromDatum(Heap, unwrap(readDatum(chainProgram(N), DF)));
    Heap.pin(Program);
  }
};

ScalingWorkload &workloadFor(int N) {
  // One prepared workload per size, kept for the whole process.
  static std::map<int, std::unique_ptr<ScalingWorkload>> Cache;
  auto It = Cache.find(N);
  if (It == Cache.end())
    It = Cache.emplace(N, std::make_unique<ScalingWorkload>(N)).first;
  return *It->second;
}

void scalingObjectBody(benchmark::State &State) {
  ScalingWorkload &W = workloadFor(static_cast<int>(State.range(0)));
  std::vector<std::optional<vm::Value>> Args = {W.Program, std::nullopt};
  size_t Defs = 0;
  for (auto _ : State) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    benchmark::DoNotOptimize(Obj.Residual.Defs.data());
    Defs = Obj.Residual.Defs.size();
  }
  State.counters["residual_defs"] = static_cast<double>(Defs);
  State.counters["us_per_def"] = benchmark::Counter(
      static_cast<double>(Defs) * 1e6,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
void BM_Scaling_GenerateObject(benchmark::State &State) {
  onLargeStack([&] { scalingObjectBody(State); });
}
BENCHMARK(BM_Scaling_GenerateObject)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void scalingSourceBody(benchmark::State &State) {
  ScalingWorkload &W = workloadFor(static_cast<int>(State.range(0)));
  std::vector<std::optional<vm::Value>> Args = {W.Program, std::nullopt};
  for (auto _ : State) {
    Arena Scratch;
    ExprFactory Exprs(Scratch);
    DatumFactory Datums(Scratch);
    pgg::ResidualSource Res =
        unwrap(W.Gen->generateSource(Args, Exprs, Datums));
    benchmark::DoNotOptimize(Res.Residual.Defs.data());
  }
}
void BM_Scaling_GenerateSource(benchmark::State &State) {
  onLargeStack([&] { scalingSourceBody(State); });
}
BENCHMARK(BM_Scaling_GenerateSource)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

} // namespace

BENCHMARK_MAIN();
