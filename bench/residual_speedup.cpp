//===- bench/residual_speedup.cpp - Ablation A3 ----------------------------===//
///
/// \file
/// The point of the whole exercise: "often, the residual program is
/// faster than the source program" (Sec. 3). Runs the MIXWELL and LAZY
/// sample programs two ways on the same VM:
///
///   interpreted — the compiled *interpreter* interprets the program
///   specialized — the residual object code from the fused path
///
/// The speedup is the interpretive overhead removed by specialization
/// (dispatch, environment lookup). Also measures the specialized
/// straight-line dot product against its general version.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "frontend/AnfConvert.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

/// Runs the interpreter (compiled by the stock compiler) on the sample
/// program: the "before" side.
void interpretedBody(benchmark::State &State, InterpreterWorkload &W) {
  Arena Scratch;
  ExprFactory Exprs(Scratch);
  DatumFactory Datums(Scratch);
  Program P = unwrap(frontendProgram(W.InterpreterSource, Exprs, Datums));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::StockCompiler SC(Comp);
  compiler::CompiledProgram CP = SC.compileProgram(P);
  vm::Machine M(W.Heap);
  compiler::linkProgram(M, Globals, CP);
  std::vector<vm::Value> Args = {W.StaticProgram, W.DynamicInput};
  for (auto _ : State) {
    vm::Value R = unwrap(
        compiler::callGlobal(M, Globals, Symbol::intern(W.Entry), Args));
    benchmark::DoNotOptimize(R.raw());
  }
}

/// Runs the residual object code: the "after" side.
void specializedBody(benchmark::State &State, InterpreterWorkload &W) {
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  auto SpecArgs = W.specArgs();
  pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, SpecArgs));
  vm::Machine M(W.Heap);
  compiler::linkProgram(M, Globals, Obj.Residual);
  std::vector<vm::Value> Args = {W.DynamicInput};
  for (auto _ : State) {
    vm::Value R =
        unwrap(compiler::callGlobal(M, Globals, Obj.Entry, Args));
    benchmark::DoNotOptimize(R.raw());
  }
}

void BM_A3_Interpreted_MIXWELL(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::mixwell();
  onLargeStack([&] { interpretedBody(State, W); });
}
BENCHMARK(BM_A3_Interpreted_MIXWELL);

void BM_A3_Specialized_MIXWELL(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::mixwell();
  onLargeStack([&] { specializedBody(State, W); });
}
BENCHMARK(BM_A3_Specialized_MIXWELL);

void BM_A3_Interpreted_LAZY(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::lazy();
  onLargeStack([&] { interpretedBody(State, W); });
}
BENCHMARK(BM_A3_Interpreted_LAZY);

void BM_A3_Specialized_LAZY(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::lazy();
  onLargeStack([&] { specializedBody(State, W); });
}
BENCHMARK(BM_A3_Specialized_LAZY);

void BM_A3_Interpreted_IMP(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::imp();
  onLargeStack([&] { interpretedBody(State, W); });
}
BENCHMARK(BM_A3_Interpreted_IMP);

void BM_A3_Specialized_IMP(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::imp();
  onLargeStack([&] { specializedBody(State, W); });
}
BENCHMARK(BM_A3_Specialized_IMP);

// -- Dot product: straight-line residual vs. the general loop --------------

struct DotWorld {
  vm::Heap Heap;
  vm::CodeStore Store{Heap};
  vm::GlobalTable Globals;
  compiler::Compilators Comp{Store, Globals};
  std::unique_ptr<vm::Machine> M;
  Symbol GeneralEntry = Symbol::intern("dot");
  Symbol SpecEntry;
  vm::Value StaticVec, DynVec;

  DotWorld() {
    Arena Scratch;
    ExprFactory Exprs(Scratch);
    DatumFactory Datums(Scratch);
    // A 16-element static vector.
    std::string Vec = "(", Dyn = "(";
    for (int I = 0; I != 16; ++I) {
      Vec += std::to_string(I % 7) + " ";
      Dyn += std::to_string(I * 3 + 1) + " ";
    }
    Vec += ")";
    Dyn += ")";

    auto Gen = unwrap(pgg::GeneratingExtension::create(
        Heap, workloads::dotProductProgram(), "dot", "SD"));
    StaticVec = vm::valueFromDatum(Heap, unwrap(readDatum(Vec, Datums)));
    Heap.pin(StaticVec);
    DynVec = vm::valueFromDatum(Heap, unwrap(readDatum(Dyn, Datums)));
    Heap.pin(DynVec);

    std::vector<std::optional<vm::Value>> Args = {StaticVec, std::nullopt};
    pgg::ResidualObject Obj = unwrap(Gen->generateObject(Comp, Args));
    SpecEntry = Obj.Entry;

    Program P =
        unwrap(frontendProgram(workloads::dotProductProgram(), Exprs, Datums));
    compiler::AnfCompiler AC(Comp);
    compiler::CompiledProgram General =
        AC.compileProgram(anfConvert(P, Exprs));

    M = std::make_unique<vm::Machine>(Heap);
    compiler::linkProgram(*M, Globals, Obj.Residual);
    compiler::linkProgram(*M, Globals, General);
  }
};

void dotGeneralBody(benchmark::State &State, DotWorld &W);
void BM_A3_DotGeneral(benchmark::State &State) {
  static DotWorld W;
  onLargeStack([&] { dotGeneralBody(State, W); });
}
void dotGeneralBody(benchmark::State &State, DotWorld &W) {
  std::vector<vm::Value> Args = {W.StaticVec, W.DynVec};
  for (auto _ : State) {
    vm::Value R =
        unwrap(compiler::callGlobal(*W.M, W.Globals, W.GeneralEntry, Args));
    benchmark::DoNotOptimize(R.raw());
  }
}
BENCHMARK(BM_A3_DotGeneral);

void dotSpecializedBody(benchmark::State &State, DotWorld &W);
void BM_A3_DotSpecialized(benchmark::State &State) {
  static DotWorld W;
  onLargeStack([&] { dotSpecializedBody(State, W); });
}
void dotSpecializedBody(benchmark::State &State, DotWorld &W) {
  std::vector<vm::Value> Args = {W.DynVec};
  for (auto _ : State) {
    vm::Value R =
        unwrap(compiler::callGlobal(*W.M, W.Globals, W.SpecEntry, Args));
    benchmark::DoNotOptimize(R.raw());
  }
}
BENCHMARK(BM_A3_DotSpecialized);

} // namespace

BENCHMARK_MAIN();
