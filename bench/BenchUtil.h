//===- bench/BenchUtil.h - Shared benchmark fixtures ------------*- C++ -*-===//
///
/// \file
/// Shared setup for the experiment harnesses: a workload = a program
/// (interpreter), its entry point, a division, its static input (the
/// interpreted program), and a dynamic input for running generated code.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_BENCH_BENCHUTIL_H
#define PECOMP_BENCH_BENCHUTIL_H

#include "compiler/AnfCompiler.h"
#include "support/LargeStack.h"
#include "compiler/DirectAnfCompiler.h"
#include "compiler/StockCompiler.h"
#include "eval/Interp.h"
#include "frontend/Pipeline.h"
#include "pgg/Pgg.h"
#include "sexp/Reader.h"
#include "vm/Convert.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

namespace pecomp {
namespace bench {

/// Runs a whole benchmark body on the large-stack worker thread: the
/// generator calls inside then run inline (re-entrant), so loop timings
/// carry no cross-thread handoff. Use for any body that calls
/// generateSource/generateObject.
template <typename F> void onLargeStack(F &&Body) {
  runOnLargeStack([&]() -> int {
    Body();
    return 0;
  });
}

/// Aborts the benchmark on error — benches run on known-good inputs.
template <typename T> T unwrap(Result<T> R) {
  if (!R.ok()) {
    fprintf(stderr, "bench setup failed: %s\n", R.error().render().c_str());
    abort();
  }
  return std::move(*R);
}

/// One of the paper's two interpreter workloads, fully prepared: the
/// generating extension exists (BTA already done, as in Fig. 6, which
/// times only generation), and the static program value is pinned.
class InterpreterWorkload {
public:
  static InterpreterWorkload mixwell() {
    return InterpreterWorkload(workloads::mixwellInterpreter(), "mixwell-run",
                               workloads::mixwellSampleProgram(),
                               "(12 (3 41 6 8))");
  }

  static InterpreterWorkload lazy() {
    return InterpreterWorkload(workloads::lazyInterpreter(), "lazy-run",
                               workloads::lazySampleProgram(), "25");
  }

  static InterpreterWorkload imp() {
    return InterpreterWorkload(workloads::impInterpreter(), "imp-run",
                               workloads::impSampleProgram(), "(252 105 9)");
  }

  vm::Heap Heap;
  std::unique_ptr<pgg::GeneratingExtension> Gen;
  vm::Value StaticProgram; // the interpreted program (static input)
  vm::Value DynamicInput;  // argument for running generated code
  std::string_view InterpreterSource;
  const char *Entry;

  std::vector<std::optional<vm::Value>> specArgs() const {
    return {StaticProgram, std::nullopt};
  }

private:
  InterpreterWorkload(std::string_view Source, const char *Entry,
                      std::string_view ProgramText, const char *InputText)
      : InterpreterSource(Source), Entry(Entry) {
    Gen = unwrap(
        pgg::GeneratingExtension::create(Heap, Source, Entry, "SD"));
    Arena A;
    DatumFactory DF(A);
    StaticProgram =
        vm::valueFromDatum(Heap, unwrap(readDatum(ProgramText, DF)));
    Heap.pin(StaticProgram);
    DynamicInput = vm::valueFromDatum(Heap, unwrap(readDatum(InputText, DF)));
    Heap.pin(DynamicInput);
  }
};

} // namespace bench
} // namespace pecomp

#endif // PECOMP_BENCH_BENCHUTIL_H
