//===- bench/ablation_anf_vs_stock.cpp - Ablation A2 -----------------------===//
///
/// \file
/// Ablation for Sec. 6.1's design choice: "ANF already makes control flow
/// explicit ... hence, the propagation of a compile-time continuation is
/// unnecessary, and it is sensible to make do with a drastically cut-down
/// version of the compiler. Removing the compile-time continuation
/// simplifies the compiler, and also speeds up later code generation."
///
/// Compares the stock compiler (compile-time continuation, arbitrary CS)
/// against the ANF compiler on pre-normalized input, over both interpreter
/// workloads. The normalization cost itself is reported separately so the
/// comparison stays honest about where the time goes.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "frontend/AnfConvert.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

struct Subject {
  vm::Heap Heap;
  Arena AstArena;
  std::unique_ptr<ExprFactory> Exprs;
  std::unique_ptr<DatumFactory> Datums;
  Program Cs;  // assignment-free Core Scheme
  Program Anf; // the same program, normalized

  explicit Subject(std::string_view Source) {
    Exprs = std::make_unique<ExprFactory>(AstArena);
    Datums = std::make_unique<DatumFactory>(AstArena);
    Cs = unwrap(frontendProgram(Source, *Exprs, *Datums));
    Anf = anfConvert(Cs, *Exprs);
  }
};

void stockBody(benchmark::State &State, Subject &S) {
  for (auto _ : State) {
    vm::CodeStore Store(S.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::StockCompiler SC(Comp);
    compiler::CompiledProgram CP = SC.compileProgram(S.Cs);
    benchmark::DoNotOptimize(CP.Defs.data());
  }
}

void anfBody(benchmark::State &State, Subject &S) {
  for (auto _ : State) {
    vm::CodeStore Store(S.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::AnfCompiler AC(Comp);
    compiler::CompiledProgram CP = AC.compileProgram(S.Anf);
    benchmark::DoNotOptimize(CP.Defs.data());
  }
}

void normalizeBody(benchmark::State &State, Subject &S) {
  for (auto _ : State) {
    Arena Scratch;
    ExprFactory Exprs(Scratch);
    Program Anf = anfConvert(S.Cs, Exprs);
    benchmark::DoNotOptimize(Anf.Defs.data());
  }
}

void BM_A2_StockCompiler_MIXWELL(benchmark::State &State) {
  static Subject S(workloads::mixwellInterpreter());
  onLargeStack([&] { stockBody(State, S); });
}
BENCHMARK(BM_A2_StockCompiler_MIXWELL);

void BM_A2_AnfCompiler_MIXWELL(benchmark::State &State) {
  static Subject S(workloads::mixwellInterpreter());
  onLargeStack([&] { anfBody(State, S); });
}
BENCHMARK(BM_A2_AnfCompiler_MIXWELL);

void BM_A2_AnfConversion_MIXWELL(benchmark::State &State) {
  static Subject S(workloads::mixwellInterpreter());
  onLargeStack([&] { normalizeBody(State, S); });
}
BENCHMARK(BM_A2_AnfConversion_MIXWELL);

void BM_A2_StockCompiler_LAZY(benchmark::State &State) {
  static Subject S(workloads::lazyInterpreter());
  onLargeStack([&] { stockBody(State, S); });
}
BENCHMARK(BM_A2_StockCompiler_LAZY);

void BM_A2_AnfCompiler_LAZY(benchmark::State &State) {
  static Subject S(workloads::lazyInterpreter());
  onLargeStack([&] { anfBody(State, S); });
}
BENCHMARK(BM_A2_AnfCompiler_LAZY);

void BM_A2_AnfConversion_LAZY(benchmark::State &State) {
  static Subject S(workloads::lazyInterpreter());
  onLargeStack([&] { normalizeBody(State, S); });
}
BENCHMARK(BM_A2_AnfConversion_LAZY);

} // namespace

BENCHMARK_MAIN();
