//===- bench/fig7_compile_residual.cpp - Paper Figure 7 --------------------===//
///
/// \file
/// Regenerates Figure 7, "Compilation times for the specialization
/// output": on the ordinary (source) path, the residual program must be
/// loaded back into the system and compiled before it can run; direct
/// object-code generation avoids that cost entirely. The paper's point:
/// "loading the generated source code back into the Scheme system is by
/// far more expensive than direct object code generation" — the total
/// cost of the source path is Fig. 6(a) + Fig. 7, against Fig. 6(b)
/// alone. (Their Fig. 7 uses their own ANF compiler, not the slower
/// stock compiler; so do we.)
///
/// Shape check: load+compile of residual source is substantial relative
/// to generation, and source-total exceeds the direct path.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

/// Produces the residual source *text* once (this is what would sit in a
/// file between the specializer and the compiler).
std::string residualText(InterpreterWorkload &W) {
  auto Args = W.specArgs();
  pgg::ResidualSource Res = unwrap(W.Gen->generateSource(Args));
  return Res.Residual.print();
}

/// Figure 7 proper: read + front end + ANF compile + link of the residual
/// source ("loading the generated source code back into the system").
void loadAndCompileBody(benchmark::State &State, InterpreterWorkload &W,
                        const std::string &Text) {
  size_t CodeObjects = 0;
  for (auto _ : State) {
    Arena Scratch;
    ExprFactory Exprs(Scratch);
    DatumFactory Datums(Scratch);
    Program P = unwrap(anfProgram(Text, Exprs, Datums));
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::AnfCompiler AC(Comp);
    compiler::CompiledProgram CP = AC.compileProgram(P);
    vm::Machine M(W.Heap);
    compiler::linkProgram(M, Globals, CP);
    benchmark::DoNotOptimize(CP.Defs.data());
    CodeObjects = Store.size();
  }
  State.counters["code_objects"] = static_cast<double>(CodeObjects);
}

/// The comparison column: the direct path's total cost (generation
/// included) — everything the source path needs Fig. 6(a) + Fig. 7 for.
void directTotalBody(benchmark::State &State, InterpreterWorkload &W) {
  auto Args = W.specArgs();
  for (auto _ : State) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    vm::Machine M(W.Heap);
    compiler::linkProgram(M, Globals, Obj.Residual);
    benchmark::DoNotOptimize(Obj.Residual.Defs.data());
  }
}

void BM_Fig7_LoadCompileResidual_MIXWELL(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::mixwell();
  static std::string Text = residualText(W);
  onLargeStack([&] { loadAndCompileBody(State, W, Text); });
}
BENCHMARK(BM_Fig7_LoadCompileResidual_MIXWELL);

void BM_Fig7_LoadCompileResidual_LAZY(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::lazy();
  static std::string Text = residualText(W);
  onLargeStack([&] { loadAndCompileBody(State, W, Text); });
}
BENCHMARK(BM_Fig7_LoadCompileResidual_LAZY);

void BM_Fig7_DirectObjectTotal_MIXWELL(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::mixwell();
  onLargeStack([&] { directTotalBody(State, W); });
}
BENCHMARK(BM_Fig7_DirectObjectTotal_MIXWELL);

void BM_Fig7_DirectObjectTotal_LAZY(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::lazy();
  onLargeStack([&] { directTotalBody(State, W); });
}
BENCHMARK(BM_Fig7_DirectObjectTotal_LAZY);

} // namespace

BENCHMARK_MAIN();
