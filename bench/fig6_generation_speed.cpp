//===- bench/fig6_generation_speed.cpp - Paper Figure 6 --------------------===//
///
/// \file
/// Regenerates Figure 6, "Generation speed": the time for the generating
/// extension to produce (a) residual *source code* and (b) *object code*
/// directly, for compilers generated from the MIXWELL and LAZY
/// interpreters on medium-sized input programs.
///
/// Paper's table (cumulative seconds, Pentium/90):
///
///                source code   object code
///     MIXWELL    3.072         3.770
///     LAZY       1.832         3.451
///
/// i.e. object code generation is up to a factor of 2 slower than source
/// generation, blamed on the higher-order code representation that "still
/// needs to be converted to actual byte codes — that conversion is also
/// part of the timings". Our shape check: object-code generation time is
/// within a small factor (roughly 1x-3x) of source generation; absolute
/// numbers differ (see DESIGN.md, substitution 3).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

void generateSourceBody(benchmark::State &State, InterpreterWorkload &W) {
  auto Args = W.specArgs();
  size_t ResidualDefs = 0;
  for (auto _ : State) {
    // Fresh arena per run: the residual program is the product being timed.
    Arena Scratch;
    ExprFactory Exprs(Scratch);
    DatumFactory Datums(Scratch);
    pgg::ResidualSource Res =
        unwrap(W.Gen->generateSource(Args, Exprs, Datums));
    benchmark::DoNotOptimize(Res.Residual.Defs.data());
    ResidualDefs = Res.Residual.Defs.size();
  }
  State.counters["residual_defs"] = static_cast<double>(ResidualDefs);
}

void generateObjectBody(benchmark::State &State, InterpreterWorkload &W) {
  auto Args = W.specArgs();
  size_t ResidualDefs = 0;
  for (auto _ : State) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    benchmark::DoNotOptimize(Obj.Residual.Defs.data());
    ResidualDefs = Obj.Residual.Defs.size();
  }
  State.counters["residual_defs"] = static_cast<double>(ResidualDefs);
}

void BM_Fig6_SourceCode_MIXWELL(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::mixwell();
  onLargeStack([&] { generateSourceBody(State, W); });
}
BENCHMARK(BM_Fig6_SourceCode_MIXWELL);

void BM_Fig6_ObjectCode_MIXWELL(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::mixwell();
  onLargeStack([&] { generateObjectBody(State, W); });
}
BENCHMARK(BM_Fig6_ObjectCode_MIXWELL);

void BM_Fig6_SourceCode_LAZY(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::lazy();
  onLargeStack([&] { generateSourceBody(State, W); });
}
BENCHMARK(BM_Fig6_SourceCode_LAZY);

void BM_Fig6_ObjectCode_LAZY(benchmark::State &State) {
  static InterpreterWorkload W = InterpreterWorkload::lazy();
  onLargeStack([&] { generateObjectBody(State, W); });
}
BENCHMARK(BM_Fig6_ObjectCode_LAZY);

} // namespace

BENCHMARK_MAIN();
