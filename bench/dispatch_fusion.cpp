//===- bench/dispatch_fusion.cpp - Peephole + superinstruction fusion ------===//
///
/// \file
/// The PR 5 experiment: what the byte-code peephole pass and the decoded
/// loop's profile-guided superinstruction fusion buy on the paper's Run
/// workloads (the stock-compiled interpreter interpreting its sample
/// program — the same body as fig8's Run companions).
///
/// The grid is {Bytes, Decoded, Fused} x {NoPeep, Peep} per workload:
///
///   Bytes    — byte-at-a-time dispatch (the floor)
///   Decoded  — pre-decoded fast loop, one source instruction per
///              dispatch (the PR 3 configuration)
///   Fused    — pre-decoded fast loop dispatching superinstructions
///              (Local+Local+Prim, Const+Prim, Local+Prim,
///              Cmp+JumpIfFalse, Local+Return, Prim+Return)
///   NoPeep   — verified link with the peephole pass disabled
///   Peep     — jump threading, branch inversion, Slide collapsing, dead
///              code removal before pre-decoding
///
/// The headline ratio is Decoded_NoPeep / Fused_Peep — the PR 3 baseline
/// against both layers together (scripts/bench-run.sh derives it into
/// BENCH_pr5.json as dispatch_fusion_speedup).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

struct Engine {
  bool Decoded;
  bool Fused;
};

void fusionRunBody(benchmark::State &State, InterpreterWorkload &W,
                   Engine E, bool Peephole) {
  Arena Scratch;
  ExprFactory Exprs(Scratch);
  DatumFactory Datums(Scratch);
  Program P = unwrap(frontendProgram(W.InterpreterSource, Exprs, Datums));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::StockCompiler SC(Comp);
  compiler::CompiledProgram CP = SC.compileProgram(P);
  vm::Machine M(W.Heap);
  M.setDecodedDispatch(E.Decoded);
  M.setFusion(E.Fused);
  // This experiment measures *interpreted* dispatch; the native tier
  // (default-on) would replace the fused loop entirely and turn the
  // PR 5 ratio into a JIT benchmark (bench/native_tier.cpp owns that).
  M.setNativeJit(false);
  compiler::LinkOptions LO;
  LO.Peephole = Peephole;
  LO.NativeJit = false;
  unwrap(compiler::linkProgramVerified(M, Globals, CP, LO));
  std::vector<vm::Value> Args = {W.StaticProgram, W.DynamicInput};
  for (auto _ : State) {
    vm::Value R = unwrap(
        compiler::callGlobal(M, Globals, Symbol::intern(W.Entry), Args));
    benchmark::DoNotOptimize(R.raw());
  }
}

constexpr Engine BytesEngine{/*Decoded=*/false, /*Fused=*/false};
constexpr Engine DecodedEngine{/*Decoded=*/true, /*Fused=*/false};
constexpr Engine FusedEngine{/*Decoded=*/true, /*Fused=*/true};

#define PECOMP_FUSION_ONE(Eng, Peep, PeepFlag, Lang, Make)                    \
  void BM_DispatchFusion_##Eng##_##Peep##_##Lang(benchmark::State &State) {   \
    static InterpreterWorkload W = InterpreterWorkload::Make();               \
    onLargeStack(                                                             \
        [&] { fusionRunBody(State, W, Eng##Engine, PeepFlag); });             \
  }                                                                           \
  BENCHMARK(BM_DispatchFusion_##Eng##_##Peep##_##Lang);

#define PECOMP_FUSION(Lang, Make)                                             \
  PECOMP_FUSION_ONE(Bytes, NoPeep, false, Lang, Make)                         \
  PECOMP_FUSION_ONE(Bytes, Peep, true, Lang, Make)                            \
  PECOMP_FUSION_ONE(Decoded, NoPeep, false, Lang, Make)                       \
  PECOMP_FUSION_ONE(Decoded, Peep, true, Lang, Make)                          \
  PECOMP_FUSION_ONE(Fused, NoPeep, false, Lang, Make)                         \
  PECOMP_FUSION_ONE(Fused, Peep, true, Lang, Make)

PECOMP_FUSION(MIXWELL, mixwell)
PECOMP_FUSION(LAZY, lazy)
PECOMP_FUSION(IMP, imp)

#undef PECOMP_FUSION
#undef PECOMP_FUSION_ONE

} // namespace

BENCHMARK_MAIN();
