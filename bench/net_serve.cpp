//===- bench/net_serve.cpp - networked serving load generator -------------===//
///
/// \file
/// Drives the real socket path end to end: a NetServer on a loopback
/// ephemeral port, fed by hundreds of concurrent client connections from
/// several threads. Three measured phases:
///
///   cold  — every request forces a fresh specialization (distinct
///           static exponent per request): generation cost through the
///           wire, one request per connection.
///   warm  — the same connections hammer a small pre-warmed key set:
///           cache-hit instantiation through the wire. Per-request
///           latencies are recorded client-side and reported as
///           p50/p95/p99.
///   shed  — a second server with a tiny queue and one worker is
///           flooded with slow fully-dynamic requests; overload must
///           surface as classified Overloaded ProtoErrors, never as
///           protocol desync.
///
/// Output is one JSON document on stdout (schema pecomp-bench-net/v1);
/// scripts/bench-run.sh merges it into BENCH_pr9.json and gates on
/// warm_over_cold >= 3x, shed > 0, desync == 0. Anything unexpected on
/// the wire — a receive error, a wrong value, an unclassified failure —
/// counts as desync.
///
//===----------------------------------------------------------------------===//

#include "pgg/NetClient.h"
#include "pgg/NetServer.h"
#include "pgg/RtcgService.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace pecomp;
using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

namespace {

const char *PowerSrc = "(define (power x n)\n"
                       "  (if (= n 0) 1 (* x (power x (- n 1)))))";

RtcgRequest powerTemplate() {
  RtcgRequest T;
  T.ProgramText = PowerSrc;
  T.Entry = "power";
  T.Division = "DS";
  return T;
}

/// Specialize-and-run request for exponent \p N (base 1, so the value is
/// always "1" regardless of exponent — an exact correctness check).
NetRequest powerReq(int N) {
  NetRequest R;
  R.SpecArgs = {"_", std::to_string(N)};
  R.RunArgs = {"1"};
  return R;
}

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

struct PhaseResult {
  size_t Requests = 0;
  double Seconds = 0;
  size_t Desync = 0;
  std::vector<double> LatUs; ///< per-request latency, microseconds
};

double percentile(std::vector<double> &V, double Q) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(Q * static_cast<double>(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

/// Runs \p PerConn requests on every connection, split across \p Threads
/// client threads; nextN yields the exponent for each request.
template <typename NextN>
PhaseResult drive(std::vector<NetClient> &Conns, size_t Threads,
                  size_t PerConn, NextN nextN) {
  PhaseResult Out;
  Threads = std::max<size_t>(1, std::min(Threads, Conns.size()));
  std::vector<std::thread> Pool;
  std::vector<PhaseResult> Parts(Threads);
  Clock::time_point T0 = Clock::now();
  for (size_t T = 0; T != Threads; ++T) {
    Pool.emplace_back([&, T] {
      PhaseResult &P = Parts[T];
      for (size_t CI = T; CI < Conns.size(); CI += Threads) {
        NetClient &C = Conns[CI];
        for (size_t I = 0; I != PerConn; ++I) {
          Clock::time_point R0 = Clock::now();
          Result<RtcgResponse> Resp = C.call(0, powerReq(nextN()));
          ++P.Requests;
          if (!Resp.ok() || !Resp->Ok || Resp->Value != "1") {
            ++P.Desync;
            continue;
          }
          P.LatUs.push_back(secondsSince(R0) * 1e6);
        }
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
  Out.Seconds = secondsSince(T0);
  for (PhaseResult &P : Parts) {
    Out.Requests += P.Requests;
    Out.Desync += P.Desync;
    Out.LatUs.insert(Out.LatUs.end(), P.LatUs.begin(), P.LatUs.end());
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  size_t Connections = 128, ClientThreads = 8, WarmPerConn = 8, WarmKeys = 16;
  int ColdBase = 2000; ///< cold exponents start here: generation-dominated
  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    auto Num = [&](const char *Name, size_t &Out) {
      size_t L = strlen(Name);
      if (strncmp(A, Name, L) != 0 || A[L] != '=')
        return false;
      Out = strtoull(A + L + 1, nullptr, 10);
      return true;
    };
    if (Num("--connections", Connections) ||
        Num("--client-threads", ClientThreads) ||
        Num("--warm-per-conn", WarmPerConn) || Num("--warm-keys", WarmKeys))
      continue;
    if (strcmp(A, "--quick") == 0) {
      Connections = 16;
      WarmPerConn = 2;
      WarmKeys = 4;
      ColdBase = 200; // smaller residuals: smoke the path, not the budget
      continue;
    }
    fprintf(stderr,
            "usage: net_serve [--connections=N] [--client-threads=N]\n"
            "                 [--warm-per-conn=N] [--warm-keys=N] [--quick]\n");
    return 2;
  }
  Connections = std::max<size_t>(Connections, 1);
  WarmKeys = std::max<size_t>(WarmKeys, 1);

  // -- Serving phases: one service, real sockets --------------------------
  RtcgOptions O;
  O.Threads = std::max(4u, std::thread::hardware_concurrency());
  auto Service = std::make_unique<RtcgService>(O);
  NetServerOptions NO;
  NO.QueueDepth = 4096; // the throughput phases must not shed
  Result<std::unique_ptr<NetServer>> Srv =
      NetServer::create(*Service, powerTemplate(), NO);
  if (!Srv.ok()) {
    fprintf(stderr, "net_serve: %s\n", Srv.error().message().c_str());
    return 1;
  }
  NetServer &S = **Srv;
  std::thread Loop([&S] { S.run(); });

  std::vector<NetClient> Conns;
  for (size_t I = 0; I != Connections; ++I) {
    Result<NetClient> C = NetClient::connect("127.0.0.1", S.port());
    if (!C.ok()) {
      fprintf(stderr, "net_serve: connect: %s\n", C.error().message().c_str());
      return 1;
    }
    Conns.push_back(std::move(*C));
  }
  fprintf(stderr, "net_serve: %zu connection(s), %zu client thread(s), "
                  "server port %u\n",
          Connections, ClientThreads, S.port());

  // Cold: every request is a fresh key (distinct exponent), one per
  // connection — generation through the wire.
  std::atomic<int> ColdN{ColdBase};
  PhaseResult Cold =
      drive(Conns, ClientThreads, 1, [&] { return ColdN.fetch_add(1); });

  // Warm the key set once, then hammer it from every connection.
  {
    Result<NetClient> W = NetClient::connect("127.0.0.1", S.port());
    if (!W.ok()) {
      fprintf(stderr, "net_serve: warm connect failed\n");
      return 1;
    }
    for (size_t K = 0; K != WarmKeys; ++K)
      (void)W->call(0, powerReq(ColdBase - 1 - static_cast<int>(K)));
  }
  std::atomic<size_t> WarmI{0};
  PhaseResult Warm = drive(Conns, ClientThreads, WarmPerConn, [&] {
    return ColdBase - 1 - static_cast<int>(WarmI.fetch_add(1) % WarmKeys);
  });

  Conns.clear(); // close before stopping the loop
  S.requestStop();
  Loop.join();

  // -- Shed phase: tiny queue, one worker, slow fully-dynamic work --------
  RtcgOptions SO;
  SO.Threads = 1;
  auto ShedService = std::make_unique<RtcgService>(SO);
  NetServerOptions SNO;
  SNO.QueueDepth = 4;
  Result<std::unique_ptr<NetServer>> SSrv =
      NetServer::create(*ShedService, powerTemplate(), SNO);
  if (!SSrv.ok()) {
    fprintf(stderr, "net_serve: %s\n", SSrv.error().message().c_str());
    return 1;
  }
  NetServer &SS = **SSrv;
  std::thread ShedLoop([&SS] { SS.run(); });
  size_t ShedSeen = 0, ShedServed = 0, ShedDesync = 0, ShedTotal = 0;
  {
    constexpr size_t ShedConns = 4, PerConn = 16;
    std::vector<NetClient> SC;
    std::vector<std::vector<uint64_t>> Ids(ShedConns);
    for (size_t I = 0; I != ShedConns; ++I) {
      Result<NetClient> C = NetClient::connect("127.0.0.1", SS.port());
      if (!C.ok()) {
        fprintf(stderr, "net_serve: shed connect failed\n");
        return 1;
      }
      SC.push_back(std::move(*C));
    }
    NetRequest Slow;
    Slow.Division = "DD";
    Slow.SpecArgs = {"_", "_"};
    for (size_t I = 0; I != ShedConns; ++I)
      for (size_t J = 0; J != PerConn; ++J) {
        Slow.RunArgs = {"1", std::to_string(100000 + I * PerConn + J)};
        Result<uint64_t> Id = SC[I].send(0, Slow);
        if (Id.ok())
          Ids[I].push_back(*Id);
      }
    const int Overloaded = ServiceErrorCodeBase +
                           static_cast<int>(ServiceError::Overloaded);
    for (size_t I = 0; I != ShedConns; ++I)
      for (uint64_t Id : Ids[I]) {
        ++ShedTotal;
        Result<RtcgResponse> R = SC[I].receive(Id);
        if (!R.ok())
          ++ShedDesync;
        else if (R->Ok)
          ++ShedServed;
        else if (R->ServiceCode == Overloaded)
          ++ShedSeen;
        else
          ++ShedDesync;
      }
  }
  SS.requestStop();
  ShedLoop.join();

  // -- Report -------------------------------------------------------------
  double ColdRps = Cold.Requests / std::max(Cold.Seconds, 1e-9);
  double WarmRps = Warm.Requests / std::max(Warm.Seconds, 1e-9);
  double Ratio = WarmRps / std::max(ColdRps, 1e-9);
  double P50 = percentile(Warm.LatUs, 0.50);
  double P95 = percentile(Warm.LatUs, 0.95);
  double P99 = percentile(Warm.LatUs, 0.99);
  size_t Desync = Cold.Desync + Warm.Desync + ShedDesync;

  fprintf(stderr,
          "net_serve: cold %zu req in %.3fs (%.0f rps); warm %zu req in "
          "%.3fs (%.0f rps, p50 %.0fus p95 %.0fus p99 %.0fus); "
          "warm/cold %.2fx; shed %zu/%zu classified, %zu served; "
          "%zu desync\n",
          Cold.Requests, Cold.Seconds, ColdRps, Warm.Requests, Warm.Seconds,
          WarmRps, P50, P95, P99, Ratio, ShedSeen, ShedTotal, ShedServed,
          Desync);

  printf("{\"schema\": \"pecomp-bench-net/v1\", "
         "\"connections\": %zu, \"client_threads\": %zu, "
         "\"cold\": {\"requests\": %zu, \"seconds\": %.6f, \"rps\": %.2f}, "
         "\"warm\": {\"requests\": %zu, \"seconds\": %.6f, \"rps\": %.2f, "
         "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f}, "
         "\"warm_over_cold\": %.3f, "
         "\"shed\": {\"requests\": %zu, \"shed\": %zu, \"served\": %zu}, "
         "\"desync\": %zu}\n",
         Connections, ClientThreads, Cold.Requests, Cold.Seconds, ColdRps,
         Warm.Requests, Warm.Seconds, WarmRps, P50, P95, P99, Ratio,
         ShedTotal, ShedSeen, ShedServed, Desync);
  return Desync ? 1 : 0;
}
