//===- bench/amortized_generation.cpp - Cache-amortized Fig. 6 -------------===//
///
/// \file
/// The amortized reading of Figure 6: the paper prices one generation;
/// a serving RTCG system pays it once per (program, division, statics)
/// key and then serves every later request from the specialization
/// cache. This harness prices both sides of that trade per workload:
///
///   ColdGeneration — one fused generateObject run (the Fig. 6 "object
///                    code" column, what a cache miss costs), and
///   CacheHit       — the full hit path: key construction (canonical
///                    write of the static program), sharded lookup, and
///                    instantiation of the portable snapshot into a
///                    fresh code store (relocation + literal rebuild).
///
/// The acceptance bar for PR 4 is CacheHit ≥ 5x cheaper than
/// ColdGeneration on MIXWELL, LAZY, and IMP; scripts/bench-run.sh
/// computes the ratios into BENCH_pr4.json (cache_amortization block).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compiler/Link.h"
#include "pgg/SpecCache.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

void coldGenerationBody(benchmark::State &State, InterpreterWorkload &W) {
  auto Args = W.specArgs();
  for (auto _ : State) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    benchmark::DoNotOptimize(Obj.Residual.Defs.data());
  }
}

void cacheHitBody(benchmark::State &State, InterpreterWorkload &W) {
  auto Args = W.specArgs();

  // Populate the cache once — the generation this harness amortizes.
  pgg::SpecCache Cache(/*MaxBytes=*/0);
  uint64_t Fp = pgg::fingerprintProgram(W.InterpreterSource, W.Entry, "SD");
  {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    auto Port =
        unwrap(compiler::PortableProgram::capture(Obj.Residual, Globals));
    auto Entry = std::make_shared<pgg::CachedSpecialization>();
    Entry->Residual = Port;
    Entry->Entry = Obj.Entry;
    Entry->Stats = Obj.Stats;
    Cache.insert(pgg::makeSpecKey(Fp, Args), std::move(Entry));
  }

  size_t Units = 0;
  for (auto _ : State) {
    // The honest hit path: the key is rebuilt from the static values
    // (canonical write of the whole interpreted program included), and
    // the snapshot is instantiated into a fresh store/table as the
    // service does per request.
    pgg::SpecKey Key = pgg::makeSpecKey(Fp, Args);
    auto Hit = Cache.lookup(Key);
    if (!Hit) {
      fprintf(stderr, "bench invariant violated: cache miss on hit path\n");
      abort();
    }
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::CompiledProgram CP = Hit->Residual->instantiate(Store, Globals);
    benchmark::DoNotOptimize(CP.Defs.data());
    Units = Hit->Residual->unitCount();
  }
  State.counters["units"] = static_cast<double>(Units);
}

#define PECOMP_AMORTIZED_BENCH(NAME, FACTORY)                                 \
  void BM_Amortized_ColdGeneration_##NAME(benchmark::State &State) {          \
    static InterpreterWorkload W = InterpreterWorkload::FACTORY();            \
    onLargeStack([&] { coldGenerationBody(State, W); });                      \
  }                                                                           \
  BENCHMARK(BM_Amortized_ColdGeneration_##NAME);                              \
  void BM_Amortized_CacheHit_##NAME(benchmark::State &State) {                \
    static InterpreterWorkload W = InterpreterWorkload::FACTORY();            \
    onLargeStack([&] { cacheHitBody(State, W); });                            \
  }                                                                           \
  BENCHMARK(BM_Amortized_CacheHit_##NAME);

PECOMP_AMORTIZED_BENCH(MIXWELL, mixwell)
PECOMP_AMORTIZED_BENCH(LAZY, lazy)
PECOMP_AMORTIZED_BENCH(IMP, imp)

#undef PECOMP_AMORTIZED_BENCH

} // namespace

BENCHMARK_MAIN();
