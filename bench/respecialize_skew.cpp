//===- bench/respecialize_skew.cpp - Online re-specialization payoff -------===//
///
/// \file
/// The economics of online profile-guided re-specialization: a serving
/// loop whose "dynamic" input is Zipf-skewed (s = 2 over 8 values, so the
/// top value owns ~65% of the draws) re-runs the generating extension on
/// the observed hot value and serves it behind an argument guard. For the
/// three interpreter workloads (MIXWELL, LAZY, IMP) the dynamic slot is
/// the interpreted program's input, so the value-extended residual
/// collapses the entire hot-input run at generation time — the "two for
/// the price of one" claim applied a second time, online.
///
/// Pairs to read:
///   BM_RespecSkew_{Off,On}_<workload>   — the payoff: Off/On time ratio
///     is the re-specialization speedup on the skewed mix (the gate in
///     scripts/bench-run.sh wants >= 1.15x on at least two workloads).
///   BM_RespecUniform_{Off,On}_MIXWELL   — the cost: a uniform mix over
///     the 7 cold values after a variant was force-installed for the hot
///     one; every measured request fails the guard and deoptimizes, so
///     On/Off - 1 bounds the guard-miss overhead (gate: <= 5%).
///
/// Every service here runs 1 worker: the question is per-request
/// economics, not scaling (rtcg_service_scaling.cpp measures that).
/// quiesceRespec() separates the warm-up burst (which triggers and
/// installs the variants) from the measured burst, so the timed loop
/// never includes background generation.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pgg/RtcgService.h"

#include <random>

using namespace pecomp;
using namespace pecomp::bench;

namespace {

/// One interpreter workload: the static program plus 8 candidate dynamic
/// inputs, index 0 the designated hot value.
struct SkewWorkload {
  std::string_view Interp;
  const char *Entry;
  std::string_view Program;
  std::array<const char *, 8> Inputs;
};

// Index 0 is the designated hot value of each input population, and it
// is deliberately the expensive one — MIXWELL's main computes fib(n)
// (exponential), LAZY's sums to n under call-by-name (a thunk per step),
// IMP's runs its while loops n times (the factorial wraps in defined
// unsigned arithmetic; both serving modes compute the same residue). A
// skewed workload whose hot request is also the costly one is exactly
// where collapsing it to a constant pays.
const SkewWorkload Mixwell = {
    {}, // filled by workload() — string_views resolved at first use
    "mixwell-run",
    {},
    {"(24 (3 41 6 8))", "(7 (1 2 3))", "(2 (9 9))", "(5 (4 4 4))",
     "(9 (8 2 7 1))", "(3 (5 6))", "(11 (2 2 2 2))", "(6 (10 20))"}};

const SkewWorkload Lazy = {
    {}, "lazy-run", {}, {"400", "10", "12", "8", "14", "6", "16", "4"}};

const SkewWorkload Imp = {
    {},
    "imp-run",
    {},
    {"(252 105 20000)", "(36 24 5)", "(1000 35 2)", "(81 27 6)", "(64 48 4)",
     "(17 5 7)", "(120 80 3)", "(9 6 8)"}};

enum class Kind { Mixwell, Lazy, Imp };

SkewWorkload workload(Kind K) {
  switch (K) {
  case Kind::Mixwell: {
    SkewWorkload W = Mixwell;
    W.Interp = workloads::mixwellInterpreter();
    W.Program = workloads::mixwellSampleProgram();
    return W;
  }
  case Kind::Lazy: {
    SkewWorkload W = Lazy;
    W.Interp = workloads::lazyInterpreter();
    W.Program = workloads::lazySampleProgram();
    return W;
  }
  case Kind::Imp: {
    SkewWorkload W = Imp;
    W.Interp = workloads::impInterpreter();
    W.Program = workloads::impSampleProgram();
    return W;
  }
  }
  abort();
}

pgg::RtcgRequest makeReq(const SkewWorkload &W, const char *Input) {
  pgg::RtcgRequest R;
  R.ProgramText = std::string(W.Interp);
  R.Entry = W.Entry;
  R.Division = "SD";
  R.SpecArgs = {std::string(W.Program), "_"};
  R.RunArgs = {Input};
  return R;
}

/// A fixed-length request sequence with Zipf(s=2) draws over the 8
/// inputs, deterministic across runs (seeded PRNG).
std::vector<pgg::RtcgRequest> zipfBatch(const SkewWorkload &W, size_t N) {
  std::array<double, 8> Weights;
  for (size_t K = 0; K != 8; ++K)
    Weights[K] = 1.0 / double((K + 1) * (K + 1));
  std::mt19937 Rng(42);
  std::discrete_distribution<size_t> Zipf(Weights.begin(), Weights.end());
  std::vector<pgg::RtcgRequest> Batch;
  Batch.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Batch.push_back(makeReq(W, W.Inputs[Zipf(Rng)]));
  return Batch;
}

/// Uniform rotation over the 7 *cold* inputs only: with a variant
/// installed for input 0, every one of these requests fails the guard,
/// so the On/Off ratio isolates the pure deopt cost (parse the guard
/// expectation, compare, fall through to generic) with no constant-serve
/// wins mixed in.
std::vector<pgg::RtcgRequest> uniformBatch(const SkewWorkload &W, size_t N) {
  std::vector<pgg::RtcgRequest> Batch;
  Batch.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Batch.push_back(makeReq(W, W.Inputs[1 + I % 7]));
  return Batch;
}

constexpr size_t BatchLen = 48;

pgg::RtcgOptions serviceOptions(bool Respec) {
  pgg::RtcgOptions O;
  O.Threads = 1;
  O.Respec.Enabled = Respec;
  O.Respec.HotThreshold = 16;
  return O;
}

void checkBatch(const std::vector<pgg::RtcgResponse> &Rs) {
  for (const pgg::RtcgResponse &R : Rs)
    if (!R.Ok) {
      fprintf(stderr, "respecialize_skew: request failed: %s\n",
              R.ErrorText.c_str());
      abort();
    }
}

/// Skewed mix, respec on or off. Warm-up serves the batch once (fills
/// the generic cache; with respec on, triggers and installs the
/// variant), then the measured loop re-serves it.
void runSkew(benchmark::State &State, Kind K, bool Respec) {
  SkewWorkload W = workload(K);
  std::vector<pgg::RtcgRequest> Batch = zipfBatch(W, BatchLen);
  pgg::RtcgService S(serviceOptions(Respec));
  checkBatch(S.serveAll(Batch));
  S.quiesceRespec();

  pgg::RespecStats Before = S.respecStats();
  for (auto _ : State)
    checkBatch(S.serveAll(Batch));
  pgg::RespecStats After = S.respecStats();

  State.counters["respec_installed"] = double(After.Installed);
  uint64_t Guarded = (After.GuardHits - Before.GuardHits) +
                     (After.GuardMisses - Before.GuardMisses);
  State.counters["guard_miss_rate"] =
      Guarded ? double(After.GuardMisses - Before.GuardMisses) / Guarded : 0.0;
  State.SetItemsProcessed(int64_t(State.iterations()) * BatchLen);
}

/// Cold-inputs-only uniform mix with a variant force-installed for the
/// hot input first: every measured request fails the guard, pricing the
/// deopt path alone.
void runUniform(benchmark::State &State, Kind K, bool Respec) {
  SkewWorkload W = workload(K);
  pgg::RtcgService S(serviceOptions(Respec));
  // Force-install: hammer the hot value past the threshold.
  std::vector<pgg::RtcgRequest> Hot;
  for (size_t I = 0; I != 24; ++I)
    Hot.push_back(makeReq(W, W.Inputs[0]));
  checkBatch(S.serveAll(Hot));
  S.quiesceRespec();

  std::vector<pgg::RtcgRequest> Batch = uniformBatch(W, BatchLen);
  checkBatch(S.serveAll(Batch)); // warm the generic path too
  pgg::RespecStats Before = S.respecStats();
  for (auto _ : State)
    checkBatch(S.serveAll(Batch));
  pgg::RespecStats After = S.respecStats();

  State.counters["respec_installed"] = double(After.Installed);
  uint64_t Guarded = (After.GuardHits - Before.GuardHits) +
                     (After.GuardMisses - Before.GuardMisses);
  State.counters["guard_miss_rate"] =
      Guarded ? double(After.GuardMisses - Before.GuardMisses) / Guarded : 0.0;
  State.SetItemsProcessed(int64_t(State.iterations()) * BatchLen);
}

void BM_RespecSkew_Off_MIXWELL(benchmark::State &State) {
  onLargeStack([&] { runSkew(State, Kind::Mixwell, false); });
}
BENCHMARK(BM_RespecSkew_Off_MIXWELL)->UseRealTime();
void BM_RespecSkew_On_MIXWELL(benchmark::State &State) {
  onLargeStack([&] { runSkew(State, Kind::Mixwell, true); });
}
BENCHMARK(BM_RespecSkew_On_MIXWELL)->UseRealTime();

void BM_RespecSkew_Off_LAZY(benchmark::State &State) {
  onLargeStack([&] { runSkew(State, Kind::Lazy, false); });
}
BENCHMARK(BM_RespecSkew_Off_LAZY)->UseRealTime();
void BM_RespecSkew_On_LAZY(benchmark::State &State) {
  onLargeStack([&] { runSkew(State, Kind::Lazy, true); });
}
BENCHMARK(BM_RespecSkew_On_LAZY)->UseRealTime();

void BM_RespecSkew_Off_IMP(benchmark::State &State) {
  onLargeStack([&] { runSkew(State, Kind::Imp, false); });
}
BENCHMARK(BM_RespecSkew_Off_IMP)->UseRealTime();
void BM_RespecSkew_On_IMP(benchmark::State &State) {
  onLargeStack([&] { runSkew(State, Kind::Imp, true); });
}
BENCHMARK(BM_RespecSkew_On_IMP)->UseRealTime();

void BM_RespecUniform_Off_MIXWELL(benchmark::State &State) {
  onLargeStack([&] { runUniform(State, Kind::Mixwell, false); });
}
BENCHMARK(BM_RespecUniform_Off_MIXWELL)->UseRealTime();
void BM_RespecUniform_On_MIXWELL(benchmark::State &State) {
  onLargeStack([&] { runUniform(State, Kind::Mixwell, true); });
}
BENCHMARK(BM_RespecUniform_On_MIXWELL)->UseRealTime();

} // namespace

BENCHMARK_MAIN();
