//===- bench/ablation_fragment_vs_direct.cpp - Ablation A1 -----------------===//
///
/// \file
/// Ablation for the design choice the paper blames for Fig. 6's slowdown:
/// the higher-order object-code representation ("Scheme 48 uses a
/// higher-order representation for the object code that still needs to be
/// converted to actual byte codes") versus its proposed fix ("a future
/// step would be emitting byte code directly").
///
/// Compares compiling the same ANF programs through Fragments + assembly
/// (AnfCompiler) against direct streaming byte emission with backpatching
/// (DirectAnfCompiler). Both produce byte-identical code objects (tested
/// in CompilerTest); only the representation differs.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

/// The compiled subject: the residual program of the MIXWELL or LAZY
/// specialization (a realistic machine-generated ANF program), or the
/// interpreter itself.
struct Subject {
  vm::Heap Heap;
  Arena AstArena;
  std::unique_ptr<ExprFactory> Exprs;
  std::unique_ptr<DatumFactory> Datums;
  Program Anf;

  explicit Subject(bool UseLazy) {
    Exprs = std::make_unique<ExprFactory>(AstArena);
    Datums = std::make_unique<DatumFactory>(AstArena);
    InterpreterWorkload W = UseLazy ? InterpreterWorkload::lazy()
                                    : InterpreterWorkload::mixwell();
    auto Args = W.specArgs();
    pgg::ResidualSource Res =
        unwrap(W.Gen->generateSource(Args, *Exprs, *Datums));
    // Migrate the residual text into our own heap-independent world.
    std::string Text = Res.Residual.print();
    Anf = unwrap(anfProgram(Text, *Exprs, *Datums));
  }
};

void fragmentBody(benchmark::State &State, Subject &S) {
  size_t Fragments = 0;
  for (auto _ : State) {
    vm::CodeStore Store(S.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::AnfCompiler AC(Comp);
    compiler::CompiledProgram CP = AC.compileProgram(S.Anf);
    benchmark::DoNotOptimize(CP.Defs.data());
    Fragments = Comp.frags().fragmentsCreated();
  }
  State.counters["fragments"] = static_cast<double>(Fragments);
}

void directBody(benchmark::State &State, Subject &S) {
  for (auto _ : State) {
    vm::CodeStore Store(S.Heap);
    vm::GlobalTable Globals;
    compiler::DirectAnfCompiler DC(Store, Globals);
    compiler::CompiledProgram CP = DC.compileProgram(S.Anf);
    benchmark::DoNotOptimize(CP.Defs.data());
  }
}

void BM_A1_FragmentsAndAssembly_MIXWELL(benchmark::State &State) {
  static Subject S(false);
  onLargeStack([&] { fragmentBody(State, S); });
}
BENCHMARK(BM_A1_FragmentsAndAssembly_MIXWELL);

void BM_A1_DirectEmission_MIXWELL(benchmark::State &State) {
  static Subject S(false);
  onLargeStack([&] { directBody(State, S); });
}
BENCHMARK(BM_A1_DirectEmission_MIXWELL);

void BM_A1_FragmentsAndAssembly_LAZY(benchmark::State &State) {
  static Subject S(true);
  onLargeStack([&] { fragmentBody(State, S); });
}
BENCHMARK(BM_A1_FragmentsAndAssembly_LAZY);

void BM_A1_DirectEmission_LAZY(benchmark::State &State) {
  static Subject S(true);
  onLargeStack([&] { directBody(State, S); });
}
BENCHMARK(BM_A1_DirectEmission_LAZY);

} // namespace

BENCHMARK_MAIN();
