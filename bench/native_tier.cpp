//===- bench/native_tier.cpp - Per-block template JIT vs the loops ---------===//
///
/// \file
/// The PR 10 experiment: what the native tier (vm/Jit.h — per-basic-block
/// x86-64 templates under the fused dispatch loop) buys on the paper's
/// Run workloads, measured against every interpreted configuration it
/// stacks on.
///
/// The grid is {Bytes, Decoded, Fused, Native} per workload:
///
///   Bytes    — byte-at-a-time dispatch (the floor)
///   Decoded  — pre-decoded fast loop, one source instruction per dispatch
///   Fused    — pre-decoded loop dispatching superinstructions (the PR 5
///              configuration, and the tier the JIT bails back into)
///   Native   — fused loop + per-block template JIT: straight-line blocks
///              run as compiled x86-64, call-outs for calls/prims/globals,
///              MakeClosure blocks interpreted at block granularity
///
/// All four run the peephole-optimized link (the production default); the
/// eager link-time block compile is inside the setup, not the timed loop,
/// matching how a serving system amortizes it. The headline ratio is
/// Fused / Native per workload — scripts/bench-run.sh derives it into
/// BENCH_pr10.json as native_speedup and gates on >= 1.5x for at least
/// two of the three workloads. On hosts without the tier Native measures
/// the fused loop twice and the gate is skipped (jitAvailable() false).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "vm/Jit.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

struct Engine {
  bool Decoded;
  bool Fused;
  bool Native;
};

void nativeRunBody(benchmark::State &State, InterpreterWorkload &W,
                   Engine E) {
  Arena Scratch;
  ExprFactory Exprs(Scratch);
  DatumFactory Datums(Scratch);
  Program P = unwrap(frontendProgram(W.InterpreterSource, Exprs, Datums));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::StockCompiler SC(Comp);
  compiler::CompiledProgram CP = SC.compileProgram(P);
  vm::Machine M(W.Heap);
  M.setDecodedDispatch(E.Decoded);
  M.setFusion(E.Fused);
  M.setNativeJit(E.Native);
  compiler::LinkOptions LO;
  LO.NativeJit = E.Native; // compile blocks in setup, never in the timed loop
  unwrap(compiler::linkProgramVerified(M, Globals, CP, LO));
  std::vector<vm::Value> Args = {W.StaticProgram, W.DynamicInput};
  for (auto _ : State) {
    vm::Value R = unwrap(
        compiler::callGlobal(M, Globals, Symbol::intern(W.Entry), Args));
    benchmark::DoNotOptimize(R.raw());
  }
}

constexpr Engine BytesEngine{false, false, false};
constexpr Engine DecodedEngine{true, false, false};
constexpr Engine FusedEngine{true, true, false};
constexpr Engine NativeEngine{true, true, true};

#define PECOMP_NATIVE_ONE(Eng, Lang, Make)                                    \
  void BM_NativeTier_##Eng##_##Lang(benchmark::State &State) {                \
    static InterpreterWorkload W = InterpreterWorkload::Make();               \
    onLargeStack([&] { nativeRunBody(State, W, Eng##Engine); });              \
  }                                                                           \
  BENCHMARK(BM_NativeTier_##Eng##_##Lang);

#define PECOMP_NATIVE(Lang, Make)                                             \
  PECOMP_NATIVE_ONE(Bytes, Lang, Make)                                        \
  PECOMP_NATIVE_ONE(Decoded, Lang, Make)                                      \
  PECOMP_NATIVE_ONE(Fused, Lang, Make)                                        \
  PECOMP_NATIVE_ONE(Native, Lang, Make)

PECOMP_NATIVE(MIXWELL, mixwell)
PECOMP_NATIVE(LAZY, lazy)
PECOMP_NATIVE(IMP, imp)

#undef PECOMP_NATIVE
#undef PECOMP_NATIVE_ONE

} // namespace

BENCHMARK_MAIN();
