//===- bench/rtcg_service_scaling.cpp - RTCG service thread scaling --------===//
///
/// \file
/// Throughput of the concurrent RTCG service over worker-thread counts:
/// one fixed batch of specialize-and-run requests (all three interpreter
/// workloads plus the power program, several dynamic inputs each) served
/// by an RtcgService with 1, 2, 4, and 8 workers sharing one
/// specialization cache. The cache is warmed by a first pass, so the
/// measured steady state prices request parsing, cached-unit
/// instantiation, linking, and execution — the serving loop the paper's
/// RTCG story leads to, not generation cost (amortized_generation.cpp
/// prices that).
///
/// Read per-batch real time across the thread counts for the scaling
/// curve; perfect scaling halves it per doubling until the sharded cache
/// locks or the memory bus saturate. On a single-CPU host (the reference
/// container reports num_cpus=1 in the JSON context) the workers
/// timeshare one core and the informative reading flips: the curve must
/// stay *flat*, showing that extra workers, the shared cache's sharded
/// locks, and the queue add no contention overhead.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pgg/RtcgService.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

std::vector<pgg::RtcgRequest> makeBatch() {
  std::vector<pgg::RtcgRequest> Batch;

  auto InterpReq = [](std::string_view Interp, const char *Entry,
                      std::string_view Program, std::string Input) {
    pgg::RtcgRequest R;
    R.ProgramText = std::string(Interp);
    R.Entry = Entry;
    R.Division = "SD";
    R.SpecArgs = {std::string(Program), "_"};
    R.RunArgs = {std::move(Input)};
    return R;
  };
  for (const char *Input : {"(12 (3 41 6 8))", "(7 (1 2 3))", "(2 (9 9))"})
    Batch.push_back(InterpReq(workloads::mixwellInterpreter(), "mixwell-run",
                              workloads::mixwellSampleProgram(), Input));
  for (const char *Input : {"25", "10", "18"})
    Batch.push_back(InterpReq(workloads::lazyInterpreter(), "lazy-run",
                              workloads::lazySampleProgram(), Input));
  for (const char *Input : {"(252 105 9)", "(36 24 5)", "(1000 35 2)"})
    Batch.push_back(InterpReq(workloads::impInterpreter(), "imp-run",
                              workloads::impSampleProgram(), Input));

  for (int N : {3, 7, 11, 15})
    for (int X : {2, 3, 5}) {
      pgg::RtcgRequest R;
      R.ProgramText = std::string(workloads::powerProgram());
      R.Entry = "power";
      R.Division = "DS";
      R.SpecArgs = {"_", std::to_string(N)};
      R.RunArgs = {std::to_string(X)};
      Batch.push_back(std::move(R));
    }

  // CPU-bound requests: a fully dynamic arithmetic loop whose execution
  // dwarfs its (cached) specialization, so the batch has real work to
  // spread — without these, the curve only measures per-request service
  // overhead (queue handoff, parsing, relink).
  for (int I = 0; I != 8; ++I) {
    pgg::RtcgRequest R;
    R.ProgramText =
        "(define (sum-to n acc) (if (= n 0) acc (sum-to (- n 1) (+ acc n))))";
    R.Entry = "sum-to";
    R.Division = "DD";
    R.SpecArgs = {"_", "_"};
    R.RunArgs = {std::to_string(400000 + I), "0"};
    Batch.push_back(std::move(R));
  }
  return Batch;
}

void BM_ServeBatch(benchmark::State &State) {
  pgg::RtcgOptions O;
  O.Threads = static_cast<size_t>(State.range(0));
  pgg::RtcgService Service(O);
  std::vector<pgg::RtcgRequest> Batch = makeBatch();

  // Warm pass: every key generated and cached once, and every response
  // sanity-checked (a bench that silently serves errors measures noise).
  for (const pgg::RtcgResponse &R : Service.serveAll(Batch))
    if (!R.Ok) {
      fprintf(stderr, "bench setup failed: %s\n", R.ErrorText.c_str());
      abort();
    }

  for (auto _ : State) {
    std::vector<pgg::RtcgResponse> Rs = Service.serveAll(Batch);
    benchmark::DoNotOptimize(Rs.data());
  }
  State.counters["requests"] = static_cast<double>(Batch.size());
  State.counters["workers"] = static_cast<double>(Service.threads());
  State.counters["cache_hit_rate"] = Service.cacheStats().hitRate();
}
BENCHMARK(BM_ServeBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
