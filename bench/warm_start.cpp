//===- bench/warm_start.cpp - Persistent-store warm start (PR 7) -----------===//
///
/// \file
/// Prices the first request of a fresh process with and without the
/// persistent code-cache store:
///
///   ColdFirstRequest — what a process with no store pays: one fused
///                      generateObject run, capture of the portable
///                      snapshot, and instantiation (the RtcgService
///                      cold-serve path minus the run itself), and
///   WarmFirstRequest — the same request served by a cold memory cache
///                      backed by a populated DiskStore: key
///                      construction, the disk-tier load (file read,
///                      header/body checksums, deserialization, sandbox
///                      verify-on-load), and instantiation.
///
/// The acceptance bar for PR 7 is WarmFirstRequest >= 5x cheaper than
/// ColdFirstRequest on MIXWELL, LAZY, and IMP; scripts/bench-run.sh
/// computes the ratios into BENCH_pr7.json (warm_start_speedup block).
/// Note the warm path deliberately includes full verify-on-load — the
/// store is adversarial input, so the 5x must survive paying for the
/// checksums and the byte-code verifier on every warm start.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compiler/Link.h"
#include "pgg/DiskStore.h"
#include "pgg/SpecCache.h"

#include <cstdlib>
#include <filesystem>

using namespace pecomp;
using namespace pecomp::bench;

namespace {

/// Scratch store directory under TMPDIR, removed when the harness exits.
struct TempStore {
  std::string Path;
  TempStore() {
    const char *T = getenv("TMPDIR");
    std::string Tpl =
        std::string(T && *T ? T : "/tmp") + "/pecomp-warmstart-XXXXXX";
    std::vector<char> Buf(Tpl.begin(), Tpl.end());
    Buf.push_back('\0');
    if (!mkdtemp(Buf.data())) {
      perror("bench setup: mkdtemp");
      abort();
    }
    Path = Buf.data();
  }
  ~TempStore() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
};

void coldFirstRequestBody(benchmark::State &State, InterpreterWorkload &W) {
  auto Args = W.specArgs();
  for (auto _ : State) {
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    auto Port =
        unwrap(compiler::PortableProgram::capture(Obj.Residual, Globals));
    vm::CodeStore RunStore(W.Heap);
    vm::GlobalTable RunGlobals;
    compiler::CompiledProgram CP = Port->instantiate(RunStore, RunGlobals);
    benchmark::DoNotOptimize(CP.Defs.data());
  }
}

void warmFirstRequestBody(benchmark::State &State, InterpreterWorkload &W,
                          const std::string &StoreDir) {
  auto Args = W.specArgs();
  uint64_t Fp = pgg::fingerprintProgram(W.InterpreterSource, W.Entry, "SD");

  // Populate the store once — the cold generation some earlier process
  // paid for. Everything inside the timed loop is a fresh process's view.
  {
    auto St = unwrap(pgg::DiskStore::open(StoreDir));
    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(W.Gen->generateObject(Comp, Args));
    auto Port =
        unwrap(compiler::PortableProgram::capture(Obj.Residual, Globals));
    auto Entry = std::make_shared<pgg::CachedSpecialization>();
    Entry->Residual = Port;
    Entry->Entry = Obj.Entry;
    Entry->Stats = Obj.Stats;
    if (St->put(pgg::makeSpecKey(Fp, Args), *Entry) !=
        pgg::StoreError::None) {
      fprintf(stderr, "bench setup failed: store put\n");
      abort();
    }
  }

  for (auto _ : State) {
    // A fresh process: empty memory tier, shared disk tier. The honest
    // warm first request rebuilds the key, loads through checksums +
    // deserialize + verify-on-load, and instantiates the snapshot.
    auto St = unwrap(pgg::DiskStore::open(StoreDir));
    pgg::SpecCache Cache(/*MaxBytes=*/0);
    Cache.attachDisk(St);
    pgg::SpecKey Key = pgg::makeSpecKey(Fp, Args);
    pgg::LookupOutcome Tier;
    auto Hit = Cache.lookup(Key, Tier);
    if (!Hit || !Tier.DiskHit) {
      fprintf(stderr, "bench invariant violated: no disk hit on warm path\n");
      abort();
    }
    vm::CodeStore RunStore(W.Heap);
    vm::GlobalTable RunGlobals;
    compiler::CompiledProgram CP = Hit->Residual->instantiate(RunStore,
                                                              RunGlobals);
    benchmark::DoNotOptimize(CP.Defs.data());
  }
}

#define PECOMP_WARMSTART_BENCH(NAME, FACTORY)                                 \
  void BM_WarmStart_ColdFirstRequest_##NAME(benchmark::State &State) {        \
    static InterpreterWorkload W = InterpreterWorkload::FACTORY();            \
    onLargeStack([&] { coldFirstRequestBody(State, W); });                    \
  }                                                                           \
  BENCHMARK(BM_WarmStart_ColdFirstRequest_##NAME);                            \
  void BM_WarmStart_WarmFirstRequest_##NAME(benchmark::State &State) {        \
    static InterpreterWorkload W = InterpreterWorkload::FACTORY();            \
    static TempStore Dir;                                                     \
    onLargeStack([&] {                                                        \
      warmFirstRequestBody(State, W, Dir.Path + "/" #NAME);                   \
    });                                                                       \
  }                                                                           \
  BENCHMARK(BM_WarmStart_WarmFirstRequest_##NAME);

PECOMP_WARMSTART_BENCH(MIXWELL, mixwell)
PECOMP_WARMSTART_BENCH(LAZY, lazy)
PECOMP_WARMSTART_BENCH(IMP, imp)

#undef PECOMP_WARMSTART_BENCH

} // namespace

BENCHMARK_MAIN();
