//===- bench/fig8_rtcg_compilation.cpp - Paper Figure 8 --------------------===//
///
/// \file
/// Regenerates Figure 8, "Using RTCG for normal compilation": make *all*
/// inputs dynamic, so running the generating extension residualizes the
/// program one-to-one — i.e. compiles it. The paper's columns:
///
///             BTA     Load    Generate   Compile
///   MIXWELL   2.730   4.026   0.652      0.964
///   LAZY      2.253   3.217   0.568      0.604
///
///   BTA      — binding-time analysis + creation of the object-code
///              generator (one-time, per program)
///   Load     — loading (and compiling) the object-code generator itself.
///              In the paper the generator is Scheme source that the stock
///              compiler must compile; in this reproduction generating
///              extensions are host-native C++ objects, so the analogous
///              cost is instantiating the code-generation machinery
///              (builder, fragment factory, code store) — near zero. This
///              is exactly the asymmetry the paper's Sec. 9 proposes to
///              fix by "generating the generating extensions as object
///              code themselves". Reported for completeness.
///   Generate — running the generator: object code out
///   Compile  — the stock compiler on the original program (the thing
///              RTCG-based compilation would replace)
///
/// Shape check: Generate is the same order of magnitude as Compile (the
/// paper's Generate is ~0.6-0.7x of Compile), while BTA is a several-fold
/// one-time cost.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace pecomp;
using namespace pecomp::bench;

namespace {

struct Fig8Workload {
  std::string_view Source;
  const char *Entry;
  const char *Division; // all-dynamic
};

Fig8Workload mixwell() {
  return {workloads::mixwellInterpreter(), "mixwell-run", "DD"};
}
Fig8Workload lazy() {
  return {workloads::lazyInterpreter(), "lazy-run", "DD"};
}

/// Column 1: BTA — front end + binding-time analysis for the all-dynamic
/// division (creation of the generator).
void btaBody(benchmark::State &State, const Fig8Workload &W) {
  vm::Heap Heap;
  for (auto _ : State) {
    auto Gen = unwrap(
        pgg::GeneratingExtension::create(Heap, W.Source, W.Entry, W.Division));
    benchmark::DoNotOptimize(Gen.get());
  }
}

/// Column 2: Load — instantiating the code-generation machinery the
/// generator runs against (see the file comment).
void loadBody(benchmark::State &State, const Fig8Workload &W) {
  vm::Heap Heap;
  auto Gen = unwrap(
      pgg::GeneratingExtension::create(Heap, W.Source, W.Entry, W.Division));
  for (auto _ : State) {
    vm::CodeStore Store(Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::CodeGenBuilder Builder(Comp);
    benchmark::DoNotOptimize(&Builder);
  }
}

/// Column 3: Generate — running the generating extension with everything
/// dynamic: the output object code is the compiled program.
void generateBody(benchmark::State &State, const Fig8Workload &W) {
  vm::Heap Heap;
  auto Gen = unwrap(
      pgg::GeneratingExtension::create(Heap, W.Source, W.Entry, W.Division));
  std::vector<std::optional<vm::Value>> Args = {std::nullopt, std::nullopt};
  size_t Defs = 0;
  for (auto _ : State) {
    vm::CodeStore Store(Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    pgg::ResidualObject Obj = unwrap(Gen->generateObject(Comp, Args));
    benchmark::DoNotOptimize(Obj.Residual.Defs.data());
    Defs = Obj.Residual.Defs.size();
  }
  State.counters["residual_defs"] = static_cast<double>(Defs);
}

/// Column 4: Compile — the stock compiler on the original program.
void compileBody(benchmark::State &State, const Fig8Workload &W) {
  vm::Heap Heap;
  for (auto _ : State) {
    Arena Scratch;
    ExprFactory Exprs(Scratch);
    DatumFactory Datums(Scratch);
    Program P = unwrap(frontendProgram(W.Source, Exprs, Datums));
    vm::CodeStore Store(Heap);
    vm::GlobalTable Globals;
    compiler::Compilators Comp(Store, Globals);
    compiler::StockCompiler SC(Comp);
    compiler::CompiledProgram CP = SC.compileProgram(P);
    benchmark::DoNotOptimize(CP.Defs.data());
  }
}

#define PECOMP_FIG8(Lang, Make)                                               \
  void BM_Fig8_BTA_##Lang(benchmark::State &State) {                         \
    onLargeStack([&] { btaBody(State, Make()); });                                                   \
  }                                                                           \
  BENCHMARK(BM_Fig8_BTA_##Lang);                                              \
  void BM_Fig8_Load_##Lang(benchmark::State &State) {                        \
    onLargeStack([&] { loadBody(State, Make()); });                                                  \
  }                                                                           \
  BENCHMARK(BM_Fig8_Load_##Lang);                                             \
  void BM_Fig8_Generate_##Lang(benchmark::State &State) {                    \
    onLargeStack([&] { generateBody(State, Make()); });                                              \
  }                                                                           \
  BENCHMARK(BM_Fig8_Generate_##Lang);                                         \
  void BM_Fig8_Compile_##Lang(benchmark::State &State) {                     \
    onLargeStack([&] { compileBody(State, Make()); });                                               \
  }                                                                           \
  BENCHMARK(BM_Fig8_Compile_##Lang);

PECOMP_FIG8(MIXWELL, mixwell)
PECOMP_FIG8(LAZY, lazy)

// -- Run: executing the compiled interpreter, by dispatch strategy ----------
//
// The paper's Figure 8 measures the compilation pipeline; these companions
// measure what the compiled code *runs on*. Same workload (the compiled
// interpreter interpreting its sample program), same Machine semantics,
// two instruction-fetch strategies: the pre-decoded fast loop (the
// default) against the byte-at-a-time interpreter it replaces. The ratio
// is the dispatch speedup every Figure-8 consumer inherits.

void runBody(benchmark::State &State, InterpreterWorkload &W, bool Decoded) {
  Arena Scratch;
  ExprFactory Exprs(Scratch);
  DatumFactory Datums(Scratch);
  Program P = unwrap(frontendProgram(W.InterpreterSource, Exprs, Datums));
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::StockCompiler SC(Comp);
  compiler::CompiledProgram CP = SC.compileProgram(P);
  vm::Machine M(W.Heap);
  M.setDecodedDispatch(Decoded);
  compiler::linkProgram(M, Globals, CP);
  std::vector<vm::Value> Args = {W.StaticProgram, W.DynamicInput};
  for (auto _ : State) {
    vm::Value R = unwrap(
        compiler::callGlobal(M, Globals, Symbol::intern(W.Entry), Args));
    benchmark::DoNotOptimize(R.raw());
  }
}

#define PECOMP_FIG8_RUN(Lang, Make)                                           \
  void BM_Fig8_Run_Decoded_##Lang(benchmark::State &State) {                  \
    static InterpreterWorkload W = InterpreterWorkload::Make();               \
    onLargeStack([&] { runBody(State, W, /*Decoded=*/true); });               \
  }                                                                           \
  BENCHMARK(BM_Fig8_Run_Decoded_##Lang);                                      \
  void BM_Fig8_Run_Bytes_##Lang(benchmark::State &State) {                    \
    static InterpreterWorkload W = InterpreterWorkload::Make();               \
    onLargeStack([&] { runBody(State, W, /*Decoded=*/false); });              \
  }                                                                           \
  BENCHMARK(BM_Fig8_Run_Bytes_##Lang);

PECOMP_FIG8_RUN(MIXWELL, mixwell)
PECOMP_FIG8_RUN(LAZY, lazy)
PECOMP_FIG8_RUN(IMP, imp)

#undef PECOMP_FIG8_RUN

} // namespace

BENCHMARK_MAIN();
