file(REMOVE_RECURSE
  "CMakeFiles/fig6_generation_speed.dir/fig6_generation_speed.cpp.o"
  "CMakeFiles/fig6_generation_speed.dir/fig6_generation_speed.cpp.o.d"
  "fig6_generation_speed"
  "fig6_generation_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_generation_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
