# Empty compiler generated dependencies file for fig6_generation_speed.
# This may be replaced when dependencies are built.
