# Empty dependencies file for scaling_program_size.
# This may be replaced when dependencies are built.
