file(REMOVE_RECURSE
  "CMakeFiles/scaling_program_size.dir/scaling_program_size.cpp.o"
  "CMakeFiles/scaling_program_size.dir/scaling_program_size.cpp.o.d"
  "scaling_program_size"
  "scaling_program_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_program_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
