# Empty compiler generated dependencies file for residual_speedup.
# This may be replaced when dependencies are built.
