file(REMOVE_RECURSE
  "CMakeFiles/residual_speedup.dir/residual_speedup.cpp.o"
  "CMakeFiles/residual_speedup.dir/residual_speedup.cpp.o.d"
  "residual_speedup"
  "residual_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residual_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
