file(REMOVE_RECURSE
  "CMakeFiles/ablation_anf_vs_stock.dir/ablation_anf_vs_stock.cpp.o"
  "CMakeFiles/ablation_anf_vs_stock.dir/ablation_anf_vs_stock.cpp.o.d"
  "ablation_anf_vs_stock"
  "ablation_anf_vs_stock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anf_vs_stock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
