# Empty compiler generated dependencies file for ablation_anf_vs_stock.
# This may be replaced when dependencies are built.
