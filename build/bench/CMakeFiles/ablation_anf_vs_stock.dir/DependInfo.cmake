
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_anf_vs_stock.cpp" "bench/CMakeFiles/ablation_anf_vs_stock.dir/ablation_anf_vs_stock.cpp.o" "gcc" "bench/CMakeFiles/ablation_anf_vs_stock.dir/ablation_anf_vs_stock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pgg/CMakeFiles/pecomp_pgg.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/pecomp_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/pecomp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pecomp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/bta/CMakeFiles/pecomp_bta.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pecomp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/pecomp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/pecomp_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/pecomp_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pecomp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pecomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
