file(REMOVE_RECURSE
  "CMakeFiles/ablation_fragment_vs_direct.dir/ablation_fragment_vs_direct.cpp.o"
  "CMakeFiles/ablation_fragment_vs_direct.dir/ablation_fragment_vs_direct.cpp.o.d"
  "ablation_fragment_vs_direct"
  "ablation_fragment_vs_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fragment_vs_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
