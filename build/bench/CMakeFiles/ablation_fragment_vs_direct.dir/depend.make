# Empty dependencies file for ablation_fragment_vs_direct.
# This may be replaced when dependencies are built.
