# Empty dependencies file for fig7_compile_residual.
# This may be replaced when dependencies are built.
