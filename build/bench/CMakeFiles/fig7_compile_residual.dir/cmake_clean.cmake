file(REMOVE_RECURSE
  "CMakeFiles/fig7_compile_residual.dir/fig7_compile_residual.cpp.o"
  "CMakeFiles/fig7_compile_residual.dir/fig7_compile_residual.cpp.o.d"
  "fig7_compile_residual"
  "fig7_compile_residual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_compile_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
