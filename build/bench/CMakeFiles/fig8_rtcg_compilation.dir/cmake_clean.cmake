file(REMOVE_RECURSE
  "CMakeFiles/fig8_rtcg_compilation.dir/fig8_rtcg_compilation.cpp.o"
  "CMakeFiles/fig8_rtcg_compilation.dir/fig8_rtcg_compilation.cpp.o.d"
  "fig8_rtcg_compilation"
  "fig8_rtcg_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_rtcg_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
