file(REMOVE_RECURSE
  "CMakeFiles/pecomp_pgg.dir/CompilerGenerator.cpp.o"
  "CMakeFiles/pecomp_pgg.dir/CompilerGenerator.cpp.o.d"
  "CMakeFiles/pecomp_pgg.dir/Pgg.cpp.o"
  "CMakeFiles/pecomp_pgg.dir/Pgg.cpp.o.d"
  "libpecomp_pgg.a"
  "libpecomp_pgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_pgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
