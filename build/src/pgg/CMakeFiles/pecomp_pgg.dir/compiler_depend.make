# Empty compiler generated dependencies file for pecomp_pgg.
# This may be replaced when dependencies are built.
