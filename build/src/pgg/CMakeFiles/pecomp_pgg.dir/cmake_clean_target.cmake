file(REMOVE_RECURSE
  "libpecomp_pgg.a"
)
