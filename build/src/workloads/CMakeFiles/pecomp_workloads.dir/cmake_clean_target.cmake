file(REMOVE_RECURSE
  "libpecomp_workloads.a"
)
