file(REMOVE_RECURSE
  "CMakeFiles/pecomp_workloads.dir/Imp.cpp.o"
  "CMakeFiles/pecomp_workloads.dir/Imp.cpp.o.d"
  "CMakeFiles/pecomp_workloads.dir/Lazy.cpp.o"
  "CMakeFiles/pecomp_workloads.dir/Lazy.cpp.o.d"
  "CMakeFiles/pecomp_workloads.dir/Mixwell.cpp.o"
  "CMakeFiles/pecomp_workloads.dir/Mixwell.cpp.o.d"
  "libpecomp_workloads.a"
  "libpecomp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
