
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Imp.cpp" "src/workloads/CMakeFiles/pecomp_workloads.dir/Imp.cpp.o" "gcc" "src/workloads/CMakeFiles/pecomp_workloads.dir/Imp.cpp.o.d"
  "/root/repo/src/workloads/Lazy.cpp" "src/workloads/CMakeFiles/pecomp_workloads.dir/Lazy.cpp.o" "gcc" "src/workloads/CMakeFiles/pecomp_workloads.dir/Lazy.cpp.o.d"
  "/root/repo/src/workloads/Mixwell.cpp" "src/workloads/CMakeFiles/pecomp_workloads.dir/Mixwell.cpp.o" "gcc" "src/workloads/CMakeFiles/pecomp_workloads.dir/Mixwell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
