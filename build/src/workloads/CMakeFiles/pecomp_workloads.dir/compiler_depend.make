# Empty compiler generated dependencies file for pecomp_workloads.
# This may be replaced when dependencies are built.
