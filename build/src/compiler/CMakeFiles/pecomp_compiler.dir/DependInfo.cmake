
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/AnfCompiler.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/AnfCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/AnfCompiler.cpp.o.d"
  "/root/repo/src/compiler/CodeGenBuilder.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/CodeGenBuilder.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/CodeGenBuilder.cpp.o.d"
  "/root/repo/src/compiler/Compilators.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/Compilators.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/Compilators.cpp.o.d"
  "/root/repo/src/compiler/DirectAnfCompiler.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/DirectAnfCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/DirectAnfCompiler.cpp.o.d"
  "/root/repo/src/compiler/Fragment.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/Fragment.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/Fragment.cpp.o.d"
  "/root/repo/src/compiler/Link.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/Link.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/Link.cpp.o.d"
  "/root/repo/src/compiler/StockCompiler.cpp" "src/compiler/CMakeFiles/pecomp_compiler.dir/StockCompiler.cpp.o" "gcc" "src/compiler/CMakeFiles/pecomp_compiler.dir/StockCompiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/pecomp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/pecomp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/pecomp_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/pecomp_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pecomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
