file(REMOVE_RECURSE
  "libpecomp_compiler.a"
)
