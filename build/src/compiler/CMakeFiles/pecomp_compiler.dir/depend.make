# Empty dependencies file for pecomp_compiler.
# This may be replaced when dependencies are built.
