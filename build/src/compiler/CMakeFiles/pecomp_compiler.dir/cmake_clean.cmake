file(REMOVE_RECURSE
  "CMakeFiles/pecomp_compiler.dir/AnfCompiler.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/AnfCompiler.cpp.o.d"
  "CMakeFiles/pecomp_compiler.dir/CodeGenBuilder.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/CodeGenBuilder.cpp.o.d"
  "CMakeFiles/pecomp_compiler.dir/Compilators.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/Compilators.cpp.o.d"
  "CMakeFiles/pecomp_compiler.dir/DirectAnfCompiler.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/DirectAnfCompiler.cpp.o.d"
  "CMakeFiles/pecomp_compiler.dir/Fragment.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/Fragment.cpp.o.d"
  "CMakeFiles/pecomp_compiler.dir/Link.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/Link.cpp.o.d"
  "CMakeFiles/pecomp_compiler.dir/StockCompiler.cpp.o"
  "CMakeFiles/pecomp_compiler.dir/StockCompiler.cpp.o.d"
  "libpecomp_compiler.a"
  "libpecomp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
