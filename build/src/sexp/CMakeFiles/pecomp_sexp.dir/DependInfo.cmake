
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sexp/Datum.cpp" "src/sexp/CMakeFiles/pecomp_sexp.dir/Datum.cpp.o" "gcc" "src/sexp/CMakeFiles/pecomp_sexp.dir/Datum.cpp.o.d"
  "/root/repo/src/sexp/Reader.cpp" "src/sexp/CMakeFiles/pecomp_sexp.dir/Reader.cpp.o" "gcc" "src/sexp/CMakeFiles/pecomp_sexp.dir/Reader.cpp.o.d"
  "/root/repo/src/sexp/Symbol.cpp" "src/sexp/CMakeFiles/pecomp_sexp.dir/Symbol.cpp.o" "gcc" "src/sexp/CMakeFiles/pecomp_sexp.dir/Symbol.cpp.o.d"
  "/root/repo/src/sexp/WellKnown.cpp" "src/sexp/CMakeFiles/pecomp_sexp.dir/WellKnown.cpp.o" "gcc" "src/sexp/CMakeFiles/pecomp_sexp.dir/WellKnown.cpp.o.d"
  "/root/repo/src/sexp/Writer.cpp" "src/sexp/CMakeFiles/pecomp_sexp.dir/Writer.cpp.o" "gcc" "src/sexp/CMakeFiles/pecomp_sexp.dir/Writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pecomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
