file(REMOVE_RECURSE
  "CMakeFiles/pecomp_sexp.dir/Datum.cpp.o"
  "CMakeFiles/pecomp_sexp.dir/Datum.cpp.o.d"
  "CMakeFiles/pecomp_sexp.dir/Reader.cpp.o"
  "CMakeFiles/pecomp_sexp.dir/Reader.cpp.o.d"
  "CMakeFiles/pecomp_sexp.dir/Symbol.cpp.o"
  "CMakeFiles/pecomp_sexp.dir/Symbol.cpp.o.d"
  "CMakeFiles/pecomp_sexp.dir/WellKnown.cpp.o"
  "CMakeFiles/pecomp_sexp.dir/WellKnown.cpp.o.d"
  "CMakeFiles/pecomp_sexp.dir/Writer.cpp.o"
  "CMakeFiles/pecomp_sexp.dir/Writer.cpp.o.d"
  "libpecomp_sexp.a"
  "libpecomp_sexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_sexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
