# Empty dependencies file for pecomp_sexp.
# This may be replaced when dependencies are built.
