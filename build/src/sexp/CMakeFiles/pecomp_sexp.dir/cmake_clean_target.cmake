file(REMOVE_RECURSE
  "libpecomp_sexp.a"
)
