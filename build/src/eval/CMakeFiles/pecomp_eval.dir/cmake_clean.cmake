file(REMOVE_RECURSE
  "CMakeFiles/pecomp_eval.dir/Interp.cpp.o"
  "CMakeFiles/pecomp_eval.dir/Interp.cpp.o.d"
  "libpecomp_eval.a"
  "libpecomp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
