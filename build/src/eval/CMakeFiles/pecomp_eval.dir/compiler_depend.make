# Empty compiler generated dependencies file for pecomp_eval.
# This may be replaced when dependencies are built.
