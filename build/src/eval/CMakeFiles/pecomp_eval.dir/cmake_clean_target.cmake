file(REMOVE_RECURSE
  "libpecomp_eval.a"
)
