# Empty compiler generated dependencies file for pecomp_syntax.
# This may be replaced when dependencies are built.
