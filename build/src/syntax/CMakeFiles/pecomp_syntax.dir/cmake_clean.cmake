file(REMOVE_RECURSE
  "CMakeFiles/pecomp_syntax.dir/AnfCheck.cpp.o"
  "CMakeFiles/pecomp_syntax.dir/AnfCheck.cpp.o.d"
  "CMakeFiles/pecomp_syntax.dir/Expr.cpp.o"
  "CMakeFiles/pecomp_syntax.dir/Expr.cpp.o.d"
  "CMakeFiles/pecomp_syntax.dir/Primitives.cpp.o"
  "CMakeFiles/pecomp_syntax.dir/Primitives.cpp.o.d"
  "CMakeFiles/pecomp_syntax.dir/Printer.cpp.o"
  "CMakeFiles/pecomp_syntax.dir/Printer.cpp.o.d"
  "libpecomp_syntax.a"
  "libpecomp_syntax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
