file(REMOVE_RECURSE
  "libpecomp_syntax.a"
)
