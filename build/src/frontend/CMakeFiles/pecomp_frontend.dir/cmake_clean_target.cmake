file(REMOVE_RECURSE
  "libpecomp_frontend.a"
)
