
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/Alpha.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/Alpha.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/Alpha.cpp.o.d"
  "/root/repo/src/frontend/AnfConvert.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/AnfConvert.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/AnfConvert.cpp.o.d"
  "/root/repo/src/frontend/AssignElim.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/AssignElim.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/AssignElim.cpp.o.d"
  "/root/repo/src/frontend/FreeVars.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/FreeVars.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/FreeVars.cpp.o.d"
  "/root/repo/src/frontend/LambdaLift.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/LambdaLift.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/LambdaLift.cpp.o.d"
  "/root/repo/src/frontend/Parse.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/Parse.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/Parse.cpp.o.d"
  "/root/repo/src/frontend/Pipeline.cpp" "src/frontend/CMakeFiles/pecomp_frontend.dir/Pipeline.cpp.o" "gcc" "src/frontend/CMakeFiles/pecomp_frontend.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/pecomp_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/pecomp_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pecomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
