file(REMOVE_RECURSE
  "CMakeFiles/pecomp_frontend.dir/Alpha.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/Alpha.cpp.o.d"
  "CMakeFiles/pecomp_frontend.dir/AnfConvert.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/AnfConvert.cpp.o.d"
  "CMakeFiles/pecomp_frontend.dir/AssignElim.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/AssignElim.cpp.o.d"
  "CMakeFiles/pecomp_frontend.dir/FreeVars.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/FreeVars.cpp.o.d"
  "CMakeFiles/pecomp_frontend.dir/LambdaLift.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/LambdaLift.cpp.o.d"
  "CMakeFiles/pecomp_frontend.dir/Parse.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/Parse.cpp.o.d"
  "CMakeFiles/pecomp_frontend.dir/Pipeline.cpp.o"
  "CMakeFiles/pecomp_frontend.dir/Pipeline.cpp.o.d"
  "libpecomp_frontend.a"
  "libpecomp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
