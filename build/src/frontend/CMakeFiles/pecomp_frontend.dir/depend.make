# Empty dependencies file for pecomp_frontend.
# This may be replaced when dependencies are built.
