# Empty compiler generated dependencies file for pecomp_support.
# This may be replaced when dependencies are built.
