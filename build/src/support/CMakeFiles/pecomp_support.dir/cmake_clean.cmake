file(REMOVE_RECURSE
  "CMakeFiles/pecomp_support.dir/LargeStack.cpp.o"
  "CMakeFiles/pecomp_support.dir/LargeStack.cpp.o.d"
  "libpecomp_support.a"
  "libpecomp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
