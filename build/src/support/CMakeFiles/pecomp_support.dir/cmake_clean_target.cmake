file(REMOVE_RECURSE
  "libpecomp_support.a"
)
