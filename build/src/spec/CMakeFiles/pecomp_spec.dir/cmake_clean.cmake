file(REMOVE_RECURSE
  "CMakeFiles/pecomp_spec.dir/SyntaxBuilder.cpp.o"
  "CMakeFiles/pecomp_spec.dir/SyntaxBuilder.cpp.o.d"
  "libpecomp_spec.a"
  "libpecomp_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
