# Empty compiler generated dependencies file for pecomp_spec.
# This may be replaced when dependencies are built.
