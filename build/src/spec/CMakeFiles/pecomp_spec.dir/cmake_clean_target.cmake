file(REMOVE_RECURSE
  "libpecomp_spec.a"
)
