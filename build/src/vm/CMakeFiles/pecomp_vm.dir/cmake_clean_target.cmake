file(REMOVE_RECURSE
  "libpecomp_vm.a"
)
