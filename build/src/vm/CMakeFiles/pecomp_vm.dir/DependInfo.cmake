
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Code.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Code.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Code.cpp.o.d"
  "/root/repo/src/vm/Convert.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Convert.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Convert.cpp.o.d"
  "/root/repo/src/vm/Heap.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Heap.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Heap.cpp.o.d"
  "/root/repo/src/vm/Machine.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Machine.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Machine.cpp.o.d"
  "/root/repo/src/vm/Prims.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Prims.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Prims.cpp.o.d"
  "/root/repo/src/vm/Value.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Value.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Value.cpp.o.d"
  "/root/repo/src/vm/Verify.cpp" "src/vm/CMakeFiles/pecomp_vm.dir/Verify.cpp.o" "gcc" "src/vm/CMakeFiles/pecomp_vm.dir/Verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/pecomp_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/pecomp_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pecomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
