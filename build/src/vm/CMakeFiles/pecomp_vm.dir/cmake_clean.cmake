file(REMOVE_RECURSE
  "CMakeFiles/pecomp_vm.dir/Code.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Code.cpp.o.d"
  "CMakeFiles/pecomp_vm.dir/Convert.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Convert.cpp.o.d"
  "CMakeFiles/pecomp_vm.dir/Heap.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Heap.cpp.o.d"
  "CMakeFiles/pecomp_vm.dir/Machine.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Machine.cpp.o.d"
  "CMakeFiles/pecomp_vm.dir/Prims.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Prims.cpp.o.d"
  "CMakeFiles/pecomp_vm.dir/Value.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Value.cpp.o.d"
  "CMakeFiles/pecomp_vm.dir/Verify.cpp.o"
  "CMakeFiles/pecomp_vm.dir/Verify.cpp.o.d"
  "libpecomp_vm.a"
  "libpecomp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
