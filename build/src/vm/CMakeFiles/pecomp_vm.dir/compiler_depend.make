# Empty compiler generated dependencies file for pecomp_vm.
# This may be replaced when dependencies are built.
