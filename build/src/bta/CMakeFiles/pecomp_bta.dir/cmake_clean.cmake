file(REMOVE_RECURSE
  "CMakeFiles/pecomp_bta.dir/AnnPrint.cpp.o"
  "CMakeFiles/pecomp_bta.dir/AnnPrint.cpp.o.d"
  "CMakeFiles/pecomp_bta.dir/Bta.cpp.o"
  "CMakeFiles/pecomp_bta.dir/Bta.cpp.o.d"
  "libpecomp_bta.a"
  "libpecomp_bta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecomp_bta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
