# Empty dependencies file for pecomp_bta.
# This may be replaced when dependencies are built.
