file(REMOVE_RECURSE
  "libpecomp_bta.a"
)
