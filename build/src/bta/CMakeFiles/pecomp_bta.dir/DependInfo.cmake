
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bta/AnnPrint.cpp" "src/bta/CMakeFiles/pecomp_bta.dir/AnnPrint.cpp.o" "gcc" "src/bta/CMakeFiles/pecomp_bta.dir/AnnPrint.cpp.o.d"
  "/root/repo/src/bta/Bta.cpp" "src/bta/CMakeFiles/pecomp_bta.dir/Bta.cpp.o" "gcc" "src/bta/CMakeFiles/pecomp_bta.dir/Bta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/pecomp_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/pecomp_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pecomp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
