file(REMOVE_RECURSE
  "CMakeFiles/pecompc.dir/pecompc.cpp.o"
  "CMakeFiles/pecompc.dir/pecompc.cpp.o.d"
  "pecompc"
  "pecompc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pecompc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
