# Empty dependencies file for pecompc.
# This may be replaced when dependencies are built.
