# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_run "/root/repo/build/tools/pecompc" "run" "/root/repo/testdata/power.scm" "power" "2" "10")
set_tests_properties(cli_run PROPERTIES  PASS_REGULAR_EXPRESSION "^1024" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_lists "/root/repo/build/tools/pecompc" "run" "/root/repo/testdata/sumlist.scm" "main" "(1 2 3 4)")
set_tests_properties(cli_run_lists PROPERTIES  PASS_REGULAR_EXPRESSION "\\(10 4 3 2 1\\)" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_spec "/root/repo/build/tools/pecompc" "spec" "/root/repo/testdata/power.scm" "power" "DS" "_" "3")
set_tests_properties(cli_spec PROPERTIES  PASS_REGULAR_EXPRESSION "residual entry: power_1" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_specrun "/root/repo/build/tools/pecompc" "specrun" "/root/repo/testdata/power.scm" "power" "DS" "_" "4" "--" "3")
set_tests_properties(cli_specrun PROPERTIES  PASS_REGULAR_EXPRESSION "^81" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bta "/root/repo/build/tools/pecompc" "bta" "/root/repo/testdata/power.scm" "power" "DS")
set_tests_properties(cli_bta PROPERTIES  PASS_REGULAR_EXPRESSION "unfold power" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compile "/root/repo/build/tools/pecompc" "compile" "/root/repo/testdata/power.scm" "--direct")
set_tests_properties(cli_compile PROPERTIES  PASS_REGULAR_EXPRESSION "call 2" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_anf "/root/repo/build/tools/pecompc" "anf" "/root/repo/testdata/sumlist.scm")
set_tests_properties(cli_anf PROPERTIES  PASS_REGULAR_EXPRESSION "define \\(main" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_file "/root/repo/build/tools/pecompc" "run" "/nonexistent.scm" "f")
set_tests_properties(cli_bad_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/pecompc")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
