# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/PipelineSmokeTest[1]_include.cmake")
include("/root/repo/build/tests/SpecTest[1]_include.cmake")
include("/root/repo/build/tests/FusionTest[1]_include.cmake")
include("/root/repo/build/tests/SexpTest[1]_include.cmake")
include("/root/repo/build/tests/VmTest[1]_include.cmake")
include("/root/repo/build/tests/FrontendTest[1]_include.cmake")
include("/root/repo/build/tests/BtaTest[1]_include.cmake")
include("/root/repo/build/tests/CompilerTest[1]_include.cmake")
include("/root/repo/build/tests/GcStressTest[1]_include.cmake")
include("/root/repo/build/tests/FutamuraTest[1]_include.cmake")
include("/root/repo/build/tests/SpecPropertyTest[1]_include.cmake")
include("/root/repo/build/tests/LambdaLiftTest[1]_include.cmake")
include("/root/repo/build/tests/MatcherTest[1]_include.cmake")
include("/root/repo/build/tests/EvalTest[1]_include.cmake")
include("/root/repo/build/tests/SyntaxTest[1]_include.cmake")
include("/root/repo/build/tests/RandomProgramTest[1]_include.cmake")
include("/root/repo/build/tests/MachineOpsTest[1]_include.cmake")
include("/root/repo/build/tests/MultiStageTest[1]_include.cmake")
include("/root/repo/build/tests/ImpTest[1]_include.cmake")
include("/root/repo/build/tests/PrimsTest[1]_include.cmake")
include("/root/repo/build/tests/VerifyTest[1]_include.cmake")
