file(REMOVE_RECURSE
  "CMakeFiles/MachineOpsTest.dir/MachineOpsTest.cpp.o"
  "CMakeFiles/MachineOpsTest.dir/MachineOpsTest.cpp.o.d"
  "MachineOpsTest"
  "MachineOpsTest.pdb"
  "MachineOpsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MachineOpsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
