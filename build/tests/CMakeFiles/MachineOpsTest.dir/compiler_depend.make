# Empty compiler generated dependencies file for MachineOpsTest.
# This may be replaced when dependencies are built.
