# Empty dependencies file for LambdaLiftTest.
# This may be replaced when dependencies are built.
