file(REMOVE_RECURSE
  "CMakeFiles/LambdaLiftTest.dir/LambdaLiftTest.cpp.o"
  "CMakeFiles/LambdaLiftTest.dir/LambdaLiftTest.cpp.o.d"
  "LambdaLiftTest"
  "LambdaLiftTest.pdb"
  "LambdaLiftTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LambdaLiftTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
