file(REMOVE_RECURSE
  "CMakeFiles/EvalTest.dir/EvalTest.cpp.o"
  "CMakeFiles/EvalTest.dir/EvalTest.cpp.o.d"
  "EvalTest"
  "EvalTest.pdb"
  "EvalTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EvalTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
