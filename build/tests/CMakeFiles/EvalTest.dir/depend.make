# Empty dependencies file for EvalTest.
# This may be replaced when dependencies are built.
