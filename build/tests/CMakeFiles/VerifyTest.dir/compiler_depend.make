# Empty compiler generated dependencies file for VerifyTest.
# This may be replaced when dependencies are built.
