file(REMOVE_RECURSE
  "CMakeFiles/VerifyTest.dir/VerifyTest.cpp.o"
  "CMakeFiles/VerifyTest.dir/VerifyTest.cpp.o.d"
  "VerifyTest"
  "VerifyTest.pdb"
  "VerifyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/VerifyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
