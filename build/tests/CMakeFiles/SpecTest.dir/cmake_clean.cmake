file(REMOVE_RECURSE
  "CMakeFiles/SpecTest.dir/SpecTest.cpp.o"
  "CMakeFiles/SpecTest.dir/SpecTest.cpp.o.d"
  "SpecTest"
  "SpecTest.pdb"
  "SpecTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SpecTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
