# Empty dependencies file for SpecTest.
# This may be replaced when dependencies are built.
