file(REMOVE_RECURSE
  "CMakeFiles/SpecPropertyTest.dir/SpecPropertyTest.cpp.o"
  "CMakeFiles/SpecPropertyTest.dir/SpecPropertyTest.cpp.o.d"
  "SpecPropertyTest"
  "SpecPropertyTest.pdb"
  "SpecPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SpecPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
