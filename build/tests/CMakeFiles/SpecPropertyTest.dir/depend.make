# Empty dependencies file for SpecPropertyTest.
# This may be replaced when dependencies are built.
