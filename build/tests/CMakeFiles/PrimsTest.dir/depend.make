# Empty dependencies file for PrimsTest.
# This may be replaced when dependencies are built.
