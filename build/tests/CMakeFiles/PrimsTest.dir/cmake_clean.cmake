file(REMOVE_RECURSE
  "CMakeFiles/PrimsTest.dir/PrimsTest.cpp.o"
  "CMakeFiles/PrimsTest.dir/PrimsTest.cpp.o.d"
  "PrimsTest"
  "PrimsTest.pdb"
  "PrimsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/PrimsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
