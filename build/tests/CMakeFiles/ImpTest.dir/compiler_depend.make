# Empty compiler generated dependencies file for ImpTest.
# This may be replaced when dependencies are built.
