file(REMOVE_RECURSE
  "CMakeFiles/ImpTest.dir/ImpTest.cpp.o"
  "CMakeFiles/ImpTest.dir/ImpTest.cpp.o.d"
  "ImpTest"
  "ImpTest.pdb"
  "ImpTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ImpTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
