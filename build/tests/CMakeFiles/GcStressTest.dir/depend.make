# Empty dependencies file for GcStressTest.
# This may be replaced when dependencies are built.
