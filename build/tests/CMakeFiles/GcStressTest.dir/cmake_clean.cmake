file(REMOVE_RECURSE
  "CMakeFiles/GcStressTest.dir/GcStressTest.cpp.o"
  "CMakeFiles/GcStressTest.dir/GcStressTest.cpp.o.d"
  "GcStressTest"
  "GcStressTest.pdb"
  "GcStressTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GcStressTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
