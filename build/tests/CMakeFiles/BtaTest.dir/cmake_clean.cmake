file(REMOVE_RECURSE
  "BtaTest"
  "BtaTest.pdb"
  "BtaTest[1]_tests.cmake"
  "CMakeFiles/BtaTest.dir/BtaTest.cpp.o"
  "CMakeFiles/BtaTest.dir/BtaTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BtaTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
