# Empty compiler generated dependencies file for BtaTest.
# This may be replaced when dependencies are built.
