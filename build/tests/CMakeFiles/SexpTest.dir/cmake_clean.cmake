file(REMOVE_RECURSE
  "CMakeFiles/SexpTest.dir/SexpTest.cpp.o"
  "CMakeFiles/SexpTest.dir/SexpTest.cpp.o.d"
  "SexpTest"
  "SexpTest.pdb"
  "SexpTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SexpTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
