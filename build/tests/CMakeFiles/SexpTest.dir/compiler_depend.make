# Empty compiler generated dependencies file for SexpTest.
# This may be replaced when dependencies are built.
