file(REMOVE_RECURSE
  "CMakeFiles/FusionTest.dir/FusionTest.cpp.o"
  "CMakeFiles/FusionTest.dir/FusionTest.cpp.o.d"
  "FusionTest"
  "FusionTest.pdb"
  "FusionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FusionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
