# Empty compiler generated dependencies file for MultiStageTest.
# This may be replaced when dependencies are built.
