file(REMOVE_RECURSE
  "CMakeFiles/MultiStageTest.dir/MultiStageTest.cpp.o"
  "CMakeFiles/MultiStageTest.dir/MultiStageTest.cpp.o.d"
  "MultiStageTest"
  "MultiStageTest.pdb"
  "MultiStageTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/MultiStageTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
