file(REMOVE_RECURSE
  "CMakeFiles/SyntaxTest.dir/SyntaxTest.cpp.o"
  "CMakeFiles/SyntaxTest.dir/SyntaxTest.cpp.o.d"
  "SyntaxTest"
  "SyntaxTest.pdb"
  "SyntaxTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SyntaxTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
