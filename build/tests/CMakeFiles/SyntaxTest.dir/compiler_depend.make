# Empty compiler generated dependencies file for SyntaxTest.
# This may be replaced when dependencies are built.
