file(REMOVE_RECURSE
  "CMakeFiles/FutamuraTest.dir/FutamuraTest.cpp.o"
  "CMakeFiles/FutamuraTest.dir/FutamuraTest.cpp.o.d"
  "FutamuraTest"
  "FutamuraTest.pdb"
  "FutamuraTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FutamuraTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
