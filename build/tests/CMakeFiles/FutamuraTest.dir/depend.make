# Empty dependencies file for FutamuraTest.
# This may be replaced when dependencies are built.
