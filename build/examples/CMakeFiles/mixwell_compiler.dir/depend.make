# Empty dependencies file for mixwell_compiler.
# This may be replaced when dependencies are built.
