file(REMOVE_RECURSE
  "CMakeFiles/mixwell_compiler.dir/mixwell_compiler.cpp.o"
  "CMakeFiles/mixwell_compiler.dir/mixwell_compiler.cpp.o.d"
  "mixwell_compiler"
  "mixwell_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixwell_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
