file(REMOVE_RECURSE
  "CMakeFiles/imp_compiler.dir/imp_compiler.cpp.o"
  "CMakeFiles/imp_compiler.dir/imp_compiler.cpp.o.d"
  "imp_compiler"
  "imp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
