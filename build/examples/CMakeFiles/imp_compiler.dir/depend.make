# Empty dependencies file for imp_compiler.
# This may be replaced when dependencies are built.
