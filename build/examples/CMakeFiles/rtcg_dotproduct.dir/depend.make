# Empty dependencies file for rtcg_dotproduct.
# This may be replaced when dependencies are built.
