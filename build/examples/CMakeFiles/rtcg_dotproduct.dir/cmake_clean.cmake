file(REMOVE_RECURSE
  "CMakeFiles/rtcg_dotproduct.dir/rtcg_dotproduct.cpp.o"
  "CMakeFiles/rtcg_dotproduct.dir/rtcg_dotproduct.cpp.o.d"
  "rtcg_dotproduct"
  "rtcg_dotproduct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtcg_dotproduct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
