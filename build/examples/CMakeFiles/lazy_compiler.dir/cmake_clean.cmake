file(REMOVE_RECURSE
  "CMakeFiles/lazy_compiler.dir/lazy_compiler.cpp.o"
  "CMakeFiles/lazy_compiler.dir/lazy_compiler.cpp.o.d"
  "lazy_compiler"
  "lazy_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazy_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
