# Empty dependencies file for lazy_compiler.
# This may be replaced when dependencies are built.
