# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "power_5\\(10\\) = 100000" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mixwell_compiler "/root/repo/build/examples/mixwell_compiler")
set_tests_properties(example_mixwell_compiler PROPERTIES  FAIL_REGULAR_EXPRESSION "MISMATCH" PASS_REGULAR_EXPRESSION "\\(agree\\)" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lazy_compiler "/root/repo/build/examples/lazy_compiler")
set_tests_properties(example_lazy_compiler PROPERTIES  PASS_REGULAR_EXPRESSION "main\\(10\\) = 65" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_imp_compiler "/root/repo/build/examples/imp_compiler")
set_tests_properties(example_imp_compiler PROPERTIES  PASS_REGULAR_EXPRESSION "gcd\\(252 105\\) = 21" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rtcg_dotproduct "/root/repo/build/examples/rtcg_dotproduct")
set_tests_properties(example_rtcg_dotproduct PROPERTIES  FAIL_REGULAR_EXPRESSION "MISMATCH" PASS_REGULAR_EXPRESSION "results agree" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
