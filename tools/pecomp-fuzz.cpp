//===- tools/pecomp-fuzz.cpp - Differential fuzzer driver -----------------===//
///
/// \file
/// Command-line front end for the fuzz/ subsystem. Four modes:
///
///   pecomp-fuzz [options]            coverage-guided fuzzing run
///   pecomp-fuzz --replay PATH...     re-run saved cases (files or dirs)
///   pecomp-fuzz --net-frames [...]   hammer the wire-protocol decoder
///   pecomp-fuzz --net-connect [...]  hammer a live server over sockets
///
/// Fuzzing exits nonzero when a divergence is found — unless
/// --expect-finding inverts the contract (the injected-bug self-test:
/// the run *must* find the planted bug, minimized under the instruction
/// bound, or the harness itself is broken). Replay exits nonzero when any
/// saved case diverges, which is how the regression corpus gates CI.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "pgg/NetClient.h"
#include "pgg/NetServer.h"
#include "pgg/RtcgService.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

using namespace pecomp;
using namespace pecomp::fuzz;

namespace {

int usage() {
  fprintf(stderr,
          "usage: pecomp-fuzz [options]\n"
          "       pecomp-fuzz [options] --replay PATH...\n"
          "\n"
          "fuzzing options:\n"
          "  --seed=N                 PRNG seed (default 1)\n"
          "  --iters=N                iterations (default 500)\n"
          "  --corpus=DIR             seed corpus to load and mutate\n"
          "  --findings=DIR           persist minimized findings here\n"
          "  --save-novel             persist coverage-novel cases to corpus\n"
          "  --max-findings=N         stop after N distinct findings\n"
          "  --no-minimize            report raw findings unreduced\n"
          "  --no-perturb             skip resource-limit/heap-fault schedules\n"
          "  --no-partial-ops         exclude quotient/remainder from grammar\n"
          "  --no-guarded             skip the guarded-dispatch tier\n"
          "  --no-native              skip the native template-JIT tier\n"
          "  --inject-bug=KIND        plant a bug: branch-flip | fuel\n"
          "  --store-hammer           round-trip every case's cached\n"
          "                           snapshot through a DiskStore in a\n"
          "                           TMPDIR scratch dir, under random\n"
          "                           injected I/O faults (removed at exit)\n"
          "  --store-dir=DIR          like --store-hammer, but at DIR\n"
          "                           (kept; for post-mortem cache-fsck)\n"
          "  --expect-finding         exit 0 iff the run found a divergence\n"
          "  --max-minimized-insns=N  with --expect-finding: require the\n"
          "                           minimized entry to be <= N instructions\n"
          "  --json                   print a JSON summary line to stdout\n"
          "\n"
          "network modes (use --seed/--iters/--json):\n"
          "  --net-frames             feed the frame decoder garbage,\n"
          "                           mutated frames, torn and pipelined\n"
          "                           streams; any crash, hang, or broken\n"
          "                           poisoning invariant is a finding\n"
          "  --net-connect            run a real server on a loopback\n"
          "                           socket and hammer it with garbage\n"
          "                           connections, mutated frames, and\n"
          "                           aborted streams interleaved with\n"
          "                           valid requests that must still get\n"
          "                           exact answers\n");
  return 2;
}

bool parseSizeOpt(const char *Arg, const char *Name, size_t &Out) {
  size_t Len = strlen(Name);
  if (strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return false;
  Out = strtoull(Arg + Len + 1, nullptr, 10);
  return true;
}

/// Collects case files from a path that may be a file or a directory.
std::vector<std::string> casePaths(const std::string &Path) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  std::error_code Ec;
  if (fs::is_directory(Path, Ec)) {
    for (const fs::directory_entry &E : fs::directory_iterator(Path, Ec))
      if (E.is_regular_file() && E.path().extension() == ".scm")
        Out.push_back(E.path().string());
    std::sort(Out.begin(), Out.end());
  } else {
    Out.push_back(Path);
  }
  return Out;
}

int replay(const std::vector<std::string> &Paths, bool Json) {
  size_t Ran = 0, Diverged = 0, Skipped = 0, Bad = 0;
  for (const std::string &Root : Paths) {
    for (const std::string &File : casePaths(Root)) {
      std::ifstream In(File);
      if (!In) {
        fprintf(stderr, "pecomp-fuzz: cannot read %s\n", File.c_str());
        ++Bad;
        continue;
      }
      std::ostringstream Text;
      Text << In.rdbuf();
      Result<FuzzCase> C = FuzzCase::deserialize(Text.str());
      if (!C.ok()) {
        fprintf(stderr, "pecomp-fuzz: %s: %s\n", File.c_str(),
                C.error().render().c_str());
        ++Bad;
        continue;
      }
      DiffResult R = runCase(*C);
      ++Ran;
      if (R.Skipped) {
        // A replayed case must still exercise the pipeline: a skip means
        // the corpus entry rotted (grammar drift, renamed entry, ...).
        fprintf(stderr, "pecomp-fuzz: %s: skipped: %s\n", File.c_str(),
                R.SkipReason.c_str());
        ++Skipped;
      } else if (R.Diverged) {
        fprintf(stderr, "pecomp-fuzz: %s: DIVERGENCE: %s\n", File.c_str(),
                R.Diverged->render().c_str());
        ++Diverged;
      }
    }
  }
  if (Json)
    printf("{\"replayed\": %zu, \"diverged\": %zu, \"skipped\": %zu, "
           "\"unreadable\": %zu}\n",
           Ran, Diverged, Skipped, Bad);
  else
    printf("replayed %zu case(s): %zu divergence(s), %zu skip(s), "
           "%zu unreadable\n",
           Ran, Diverged, Skipped, Bad);
  return (Diverged || Skipped || Bad || Ran == 0) ? 1 : 0;
}

// -- Network fuzzing ------------------------------------------------------

namespace netfuzz {

using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

/// Builds a structurally valid random frame of a random client-side type.
std::vector<uint8_t> randomFrame(std::mt19937_64 &R) {
  auto Text = [&](size_t MaxLen) {
    std::string S(R() % (MaxLen + 1), '\0');
    for (char &C : S)
      C = static_cast<char>('a' + R() % 26);
    return S;
  };
  switch (R() % 3) {
  case 0:
    return encodeHello(static_cast<uint8_t>(R() % 4),
                       static_cast<uint8_t>(R() % 4));
  case 1: {
    NetRequest Q;
    if (R() % 2)
      Q.Division = Text(4);
    for (size_t I = 0, N = R() % 4; I != N; ++I)
      Q.SpecArgs.push_back(R() % 3 ? Text(8) : "_");
    for (size_t I = 0, N = R() % 4; I != N; ++I)
      Q.RunArgs.push_back(Text(8));
    return encodeRequest(static_cast<uint32_t>(R() % 5),
                         R() % 1000, Q);
  }
  default:
    return encodeProtoError(static_cast<uint32_t>(R() % 5), R() % 1000,
                            static_cast<uint32_t>(R() % 300), Text(32));
  }
}

/// Drives a decoder over \p Bytes delivered in random-size chunks;
/// returns false (with a message on stderr) on an invariant violation.
bool driveDecoder(std::mt19937_64 &R, const std::vector<uint8_t> &Bytes,
                  size_t MaxFrame, size_t &Ready, size_t &Failed) {
  FrameDecoder D(MaxFrame);
  bool Poisoned = false;
  size_t Off = 0;
  for (;;) {
    if (Off < Bytes.size()) {
      size_t Chunk = 1 + R() % 64;
      Chunk = std::min(Chunk, Bytes.size() - Off);
      D.feed(Bytes.data() + Off, Chunk);
      Off += Chunk;
    }
    for (;;) {
      Frame F;
      FrameDecoder::Status St = D.next(F);
      if (St == FrameDecoder::Status::NeedMore)
        break;
      if (St == FrameDecoder::Status::Failed) {
        if (D.error().message().empty()) {
          fprintf(stderr, "net-frames: Failed with an empty error\n");
          return false;
        }
        Poisoned = true;
        ++Failed;
        break;
      }
      if (Poisoned) {
        fprintf(stderr, "net-frames: frame decoded after poisoning\n");
        return false;
      }
      if (F.Header.PayloadLen > MaxFrame ||
          F.Payload.size() != F.Header.PayloadLen) {
        fprintf(stderr, "net-frames: payload bound violated\n");
        return false;
      }
      ++Ready;
      // Whatever framed must payload-decode or fail cleanly — every
      // decoder is bounds-checked, never trusting the length fields.
      (void)decodeRequestPayload(F.Payload);
      (void)decodeResponsePayload(F.Payload);
      (void)decodeProtoErrorPayload(F.Payload);
      (void)decodeHelloPayload(F.Header.Type, F.Payload);
    }
    if (Off >= Bytes.size())
      break;
  }
  return true;
}

int netFrames(uint32_t Seed, size_t Iters, bool Json) {
  std::mt19937_64 R(Seed ? Seed : 1);
  constexpr size_t MaxFrame = 1 << 20;
  size_t Ready = 0, Failed = 0;
  for (size_t I = 0; I != Iters; ++I) {
    std::vector<uint8_t> Bytes;
    switch (R() % 4) {
    case 0: { // pure garbage
      Bytes.resize(R() % 256);
      for (uint8_t &B : Bytes)
        B = static_cast<uint8_t>(R());
      break;
    }
    case 1: { // valid frame, a few bytes flipped
      Bytes = randomFrame(R);
      for (size_t N = 1 + R() % 4; N; --N)
        if (!Bytes.empty())
          Bytes[R() % Bytes.size()] ^= static_cast<uint8_t>(1 + R() % 255);
      break;
    }
    case 2: { // pipelined valid frames, possibly truncated mid-frame
      for (size_t N = 1 + R() % 4; N; --N) {
        std::vector<uint8_t> F = randomFrame(R);
        Bytes.insert(Bytes.end(), F.begin(), F.end());
      }
      if (R() % 2)
        Bytes.resize(R() % (Bytes.size() + 1));
      break;
    }
    default: { // valid frames with garbage spliced between them
      std::vector<uint8_t> F = randomFrame(R);
      Bytes.insert(Bytes.end(), F.begin(), F.end());
      for (size_t N = R() % 16; N; --N)
        Bytes.push_back(static_cast<uint8_t>(R()));
      F = randomFrame(R);
      Bytes.insert(Bytes.end(), F.begin(), F.end());
      break;
    }
    }
    if (!driveDecoder(R, Bytes, MaxFrame, Ready, Failed))
      return 1;
  }
  if (Json)
    printf("{\"mode\": \"net-frames\", \"iters\": %zu, \"frames\": %zu, "
           "\"poisoned\": %zu}\n",
           Iters, Ready, Failed);
  else
    printf("net-frames: %zu stream(s): %zu frame(s) decoded, %zu "
           "poisoning(s), 0 invariant violations\n",
           Iters, Ready, Failed);
  return 0;
}

long long ipow(long long X, long long N) {
  long long V = 1;
  while (N--)
    V *= X;
  return V;
}

int netConnect(uint32_t Seed, size_t Iters, bool Json) {
  RtcgOptions O;
  O.Threads = 2;
  auto Service = std::make_unique<RtcgService>(O);
  RtcgRequest Template;
  Template.ProgramText = "(define (power x n)\n"
                         "  (if (= n 0) 1 (* x (power x (- n 1)))))";
  Template.Entry = "power";
  Template.Division = "DS";
  NetServerOptions NO;
  Result<std::unique_ptr<NetServer>> Srv =
      NetServer::create(*Service, Template, NO);
  if (!Srv.ok()) {
    fprintf(stderr, "net-connect: %s\n", Srv.error().message().c_str());
    return 2;
  }
  NetServer &S = **Srv;
  std::thread Loop([&S] { S.run(); });

  auto Connect = [&]() -> Result<NetClient> {
    Result<NetClient> C = NetClient::connect("127.0.0.1", S.port());
    if (C.ok()) {
      // A hung server must fail the run, not wedge it.
      timeval Tv{10, 0};
      ::setsockopt(C->fd(), SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof Tv);
    }
    return C;
  };
  auto Fail = [&](const char *What, const std::string &Detail) {
    fprintf(stderr, "net-connect: %s: %s\n", What, Detail.c_str());
    S.requestStop();
    Loop.join();
    return 1;
  };

  std::mt19937_64 R(Seed ? Seed : 1);
  size_t Exact = 0, Garbage = 0, Mutated = 0, Aborted = 0;
  for (size_t I = 0; I != Iters; ++I) {
    Result<NetClient> C = Connect();
    if (!C.ok())
      return Fail("connect", C.error().message());
    switch (R() % 4) {
    case 0: { // a valid request must get the exact right answer
      int N = static_cast<int>(R() % 9), X = 2 + static_cast<int>(R() % 3);
      NetRequest Q;
      Q.SpecArgs = {"_", std::to_string(N)};
      Q.RunArgs = {std::to_string(X)};
      Result<RtcgResponse> Resp =
          C->call(static_cast<uint32_t>(R() % 3), Q);
      if (!Resp.ok())
        return Fail("call", Resp.error().message());
      if (!Resp->Ok || Resp->Value != std::to_string(ipow(X, N)))
        return Fail("wrong answer", Resp->Ok ? Resp->Value : Resp->ErrorText);
      ++Exact;
      break;
    }
    case 1: { // garbage stream: server must answer or close, promptly
      std::vector<uint8_t> B(4 + R() % 124);
      for (uint8_t &V : B)
        V = static_cast<uint8_t>(R());
      if (Result<bool> W = C->sendRaw(B.data(), B.size()); !W.ok())
        break; // early RST: the server already cut us off
      // Half-close so a truncated stream reads as EOF server-side; the
      // receive then sees the ProtoError or a prompt close — a timeout
      // means the server wedged.
      ::shutdown(C->fd(), SHUT_WR);
      (void)C->receiveFrame();
      ++Garbage;
      break;
    }
    case 2: { // mutated valid frame: any classified outcome, no wedge
      NetRequest Q;
      Q.SpecArgs = {"_", "3"};
      Q.RunArgs = {"2"};
      std::vector<uint8_t> B = encodeRequest(0, 1, Q);
      for (size_t N = 1 + R() % 3; N; --N)
        B[R() % B.size()] ^= static_cast<uint8_t>(1 + R() % 255);
      if (Result<bool> W = C->sendRaw(B.data(), B.size()); !W.ok())
        break;
      ::shutdown(C->fd(), SHUT_WR);
      (void)C->receiveFrame();
      ++Mutated;
      break;
    }
    default: { // abort mid-frame: the connection just dies
      NetRequest Q;
      Q.SpecArgs = {"_", "2"};
      Q.RunArgs = {"2"};
      std::vector<uint8_t> B = encodeRequest(0, 1, Q);
      B.resize(R() % B.size());
      (void)C->sendRaw(B.data(), B.size());
      ++Aborted;
      break;
    }
    }
  }

  // After the abuse, a fresh connection still gets exact service.
  Result<NetClient> C = Connect();
  if (!C.ok())
    return Fail("final connect", C.error().message());
  NetRequest Q;
  Q.SpecArgs = {"_", "10"};
  Q.RunArgs = {"2"};
  Result<RtcgResponse> Resp = C->call(0, Q);
  if (!Resp.ok())
    return Fail("final call", Resp.error().message());
  if (!Resp->Ok || Resp->Value != "1024")
    return Fail("final answer", Resp->Ok ? Resp->Value : Resp->ErrorText);

  S.requestStop();
  Loop.join();
  NetServerStats St = S.stats();
  if (Json)
    printf("{\"mode\": \"net-connect\", \"iters\": %zu, \"exact\": %zu, "
           "\"garbage\": %zu, \"mutated\": %zu, \"aborted\": %zu, "
           "\"server_bad_frames\": %llu}\n",
           Iters, Exact, Garbage, Mutated, Aborted,
           static_cast<unsigned long long>(St.BadFrames));
  else
    printf("net-connect: %zu connection(s): %zu exact, %zu garbage, %zu "
           "mutated, %zu aborted; server classified %llu bad frame(s) "
           "and never wedged\n",
           Iters, Exact, Garbage, Mutated, Aborted,
           static_cast<unsigned long long>(St.BadFrames));
  return 0;
}

} // namespace netfuzz

} // namespace

int main(int argc, char **argv) {
  FuzzerOptions Opts;
  bool ExpectFinding = false, Json = false, Replay = false;
  bool StoreHammer = false, NetFrames = false, NetConnect = false;
  size_t MaxMinimizedInsns = 0;
  std::vector<std::string> ReplayPaths;

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    size_t N;
    if (Replay) {
      ReplayPaths.push_back(A);
    } else if (parseSizeOpt(A, "--seed", N)) {
      Opts.Seed = static_cast<uint32_t>(N);
    } else if (parseSizeOpt(A, "--iters", N)) {
      Opts.Iterations = N;
    } else if (parseSizeOpt(A, "--max-findings", N)) {
      Opts.MaxFindings = N;
    } else if (parseSizeOpt(A, "--max-minimized-insns", N)) {
      MaxMinimizedInsns = N;
    } else if (strncmp(A, "--corpus=", 9) == 0) {
      Opts.CorpusDir = A + 9;
    } else if (strncmp(A, "--findings=", 11) == 0) {
      Opts.FindingsDir = A + 11;
    } else if (strcmp(A, "--save-novel") == 0) {
      Opts.SaveNovel = true;
    } else if (strcmp(A, "--no-minimize") == 0) {
      Opts.Minimize = false;
    } else if (strcmp(A, "--no-perturb") == 0) {
      Opts.Perturb = false;
    } else if (strcmp(A, "--no-partial-ops") == 0) {
      Opts.PartialOps = false;
    } else if (strcmp(A, "--no-guarded") == 0) {
      Opts.Guarded = false;
    } else if (strcmp(A, "--no-native") == 0) {
      Opts.Native = false;
    } else if (strcmp(A, "--store-hammer") == 0) {
      StoreHammer = true;
    } else if (strcmp(A, "--net-frames") == 0) {
      NetFrames = true;
    } else if (strcmp(A, "--net-connect") == 0) {
      NetConnect = true;
    } else if (strncmp(A, "--store-dir=", 12) == 0) {
      Opts.StoreDir = A + 12;
    } else if (strcmp(A, "--inject-bug=branch-flip") == 0) {
      Opts.Inject = InjectedBug::BranchPolarity;
    } else if (strcmp(A, "--inject-bug=fuel") == 0) {
      Opts.Inject = InjectedBug::FuelOffByOne;
    } else if (strcmp(A, "--expect-finding") == 0) {
      ExpectFinding = true;
    } else if (strcmp(A, "--json") == 0) {
      Json = true;
    } else if (strcmp(A, "--replay") == 0) {
      Replay = true;
    } else {
      return usage();
    }
  }

  if (Replay) {
    if (ReplayPaths.empty())
      return usage();
    return replay(ReplayPaths, Json);
  }
  if (NetFrames)
    return netfuzz::netFrames(Opts.Seed, Opts.Iterations, Json);
  if (NetConnect)
    return netfuzz::netConnect(Opts.Seed, Opts.Iterations, Json);

  // --store-hammer: a throwaway store under TMPDIR — never inside the
  // source tree — removed when the run ends. --store-dir keeps its store
  // for a post-mortem `pecompc cache-fsck`.
  std::string ScratchStore;
  if (StoreHammer && Opts.StoreDir.empty()) {
    const char *T = getenv("TMPDIR");
    std::string Tpl =
        std::string(T && *T ? T : "/tmp") + "/pecomp-fuzz-store-XXXXXX";
    std::vector<char> Buf(Tpl.begin(), Tpl.end());
    Buf.push_back('\0');
    if (!mkdtemp(Buf.data())) {
      fprintf(stderr, "pecomp-fuzz: mkdtemp failed for --store-hammer\n");
      return 2;
    }
    ScratchStore = Buf.data();
    Opts.StoreDir = ScratchStore;
  }

  Fuzzer F(Opts);
  const FuzzerStats &Stats = F.run();

  if (!ScratchStore.empty()) {
    std::error_code Ec;
    std::filesystem::remove_all(ScratchStore, Ec);
  }

  for (const Finding &Fi : F.findings()) {
    fprintf(stderr, "-- finding: %s\n", Fi.Diverged.render().c_str());
    fprintf(stderr, "   minimized entry: %zu insn(s), reducer spent %zu "
                    "attempt(s)%s%s\n",
            Fi.EntryInsns, Fi.ReduceAttempts,
            Fi.SavedPath.empty() ? "" : ", saved to ",
            Fi.SavedPath.c_str());
    fputs(Fi.Case.serialize().c_str(), stderr);
  }

  if (Json) {
    std::string S = Stats.json();
    S.pop_back(); // reopen the object for the findings array
    S += ", \"minimized_insns\": [";
    for (size_t I = 0; I != F.findings().size(); ++I)
      S += (I ? ", " : "") + std::to_string(F.findings()[I].EntryInsns);
    S += "]}";
    printf("%s\n", S.c_str());
  } else {
    printf("%zu executed, %zu skipped, %zu coverage feature(s), "
           "%zu finding(s)\n",
           Stats.Executed, Stats.Skipped, Stats.CoverageFeatures,
           Stats.Findings);
  }

  if (ExpectFinding) {
    if (F.findings().empty()) {
      fprintf(stderr, "pecomp-fuzz: expected a finding, found none -- the "
                      "harness failed its self-test\n");
      return 1;
    }
    if (MaxMinimizedInsns) {
      size_t Best = static_cast<size_t>(-1);
      for (const Finding &Fi : F.findings())
        Best = std::min(Best, Fi.EntryInsns);
      if (Best > MaxMinimizedInsns) {
        fprintf(stderr,
                "pecomp-fuzz: best minimized entry is %zu insns, wanted "
                "<= %zu -- the reducer failed its self-test\n",
                Best, MaxMinimizedInsns);
        return 1;
      }
    }
    return 0;
  }
  return F.findings().empty() ? 0 : 1;
}
