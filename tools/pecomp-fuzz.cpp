//===- tools/pecomp-fuzz.cpp - Differential fuzzer driver -----------------===//
///
/// \file
/// Command-line front end for the fuzz/ subsystem. Two modes:
///
///   pecomp-fuzz [options]            coverage-guided fuzzing run
///   pecomp-fuzz --replay PATH...     re-run saved cases (files or dirs)
///
/// Fuzzing exits nonzero when a divergence is found — unless
/// --expect-finding inverts the contract (the injected-bug self-test:
/// the run *must* find the planted bug, minimized under the instruction
/// bound, or the harness itself is broken). Replay exits nonzero when any
/// saved case diverges, which is how the regression corpus gates CI.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pecomp;
using namespace pecomp::fuzz;

namespace {

int usage() {
  fprintf(stderr,
          "usage: pecomp-fuzz [options]\n"
          "       pecomp-fuzz [options] --replay PATH...\n"
          "\n"
          "fuzzing options:\n"
          "  --seed=N                 PRNG seed (default 1)\n"
          "  --iters=N                iterations (default 500)\n"
          "  --corpus=DIR             seed corpus to load and mutate\n"
          "  --findings=DIR           persist minimized findings here\n"
          "  --save-novel             persist coverage-novel cases to corpus\n"
          "  --max-findings=N         stop after N distinct findings\n"
          "  --no-minimize            report raw findings unreduced\n"
          "  --no-perturb             skip resource-limit/heap-fault schedules\n"
          "  --no-partial-ops         exclude quotient/remainder from grammar\n"
          "  --no-guarded             skip the guarded-dispatch tier\n"
          "  --inject-bug=KIND        plant a bug: branch-flip | fuel\n"
          "  --store-hammer           round-trip every case's cached\n"
          "                           snapshot through a DiskStore in a\n"
          "                           TMPDIR scratch dir, under random\n"
          "                           injected I/O faults (removed at exit)\n"
          "  --store-dir=DIR          like --store-hammer, but at DIR\n"
          "                           (kept; for post-mortem cache-fsck)\n"
          "  --expect-finding         exit 0 iff the run found a divergence\n"
          "  --max-minimized-insns=N  with --expect-finding: require the\n"
          "                           minimized entry to be <= N instructions\n"
          "  --json                   print a JSON summary line to stdout\n");
  return 2;
}

bool parseSizeOpt(const char *Arg, const char *Name, size_t &Out) {
  size_t Len = strlen(Name);
  if (strncmp(Arg, Name, Len) != 0 || Arg[Len] != '=')
    return false;
  Out = strtoull(Arg + Len + 1, nullptr, 10);
  return true;
}

/// Collects case files from a path that may be a file or a directory.
std::vector<std::string> casePaths(const std::string &Path) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  std::error_code Ec;
  if (fs::is_directory(Path, Ec)) {
    for (const fs::directory_entry &E : fs::directory_iterator(Path, Ec))
      if (E.is_regular_file() && E.path().extension() == ".scm")
        Out.push_back(E.path().string());
    std::sort(Out.begin(), Out.end());
  } else {
    Out.push_back(Path);
  }
  return Out;
}

int replay(const std::vector<std::string> &Paths, bool Json) {
  size_t Ran = 0, Diverged = 0, Skipped = 0, Bad = 0;
  for (const std::string &Root : Paths) {
    for (const std::string &File : casePaths(Root)) {
      std::ifstream In(File);
      if (!In) {
        fprintf(stderr, "pecomp-fuzz: cannot read %s\n", File.c_str());
        ++Bad;
        continue;
      }
      std::ostringstream Text;
      Text << In.rdbuf();
      Result<FuzzCase> C = FuzzCase::deserialize(Text.str());
      if (!C.ok()) {
        fprintf(stderr, "pecomp-fuzz: %s: %s\n", File.c_str(),
                C.error().render().c_str());
        ++Bad;
        continue;
      }
      DiffResult R = runCase(*C);
      ++Ran;
      if (R.Skipped) {
        // A replayed case must still exercise the pipeline: a skip means
        // the corpus entry rotted (grammar drift, renamed entry, ...).
        fprintf(stderr, "pecomp-fuzz: %s: skipped: %s\n", File.c_str(),
                R.SkipReason.c_str());
        ++Skipped;
      } else if (R.Diverged) {
        fprintf(stderr, "pecomp-fuzz: %s: DIVERGENCE: %s\n", File.c_str(),
                R.Diverged->render().c_str());
        ++Diverged;
      }
    }
  }
  if (Json)
    printf("{\"replayed\": %zu, \"diverged\": %zu, \"skipped\": %zu, "
           "\"unreadable\": %zu}\n",
           Ran, Diverged, Skipped, Bad);
  else
    printf("replayed %zu case(s): %zu divergence(s), %zu skip(s), "
           "%zu unreadable\n",
           Ran, Diverged, Skipped, Bad);
  return (Diverged || Skipped || Bad || Ran == 0) ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  FuzzerOptions Opts;
  bool ExpectFinding = false, Json = false, Replay = false;
  bool StoreHammer = false;
  size_t MaxMinimizedInsns = 0;
  std::vector<std::string> ReplayPaths;

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    size_t N;
    if (Replay) {
      ReplayPaths.push_back(A);
    } else if (parseSizeOpt(A, "--seed", N)) {
      Opts.Seed = static_cast<uint32_t>(N);
    } else if (parseSizeOpt(A, "--iters", N)) {
      Opts.Iterations = N;
    } else if (parseSizeOpt(A, "--max-findings", N)) {
      Opts.MaxFindings = N;
    } else if (parseSizeOpt(A, "--max-minimized-insns", N)) {
      MaxMinimizedInsns = N;
    } else if (strncmp(A, "--corpus=", 9) == 0) {
      Opts.CorpusDir = A + 9;
    } else if (strncmp(A, "--findings=", 11) == 0) {
      Opts.FindingsDir = A + 11;
    } else if (strcmp(A, "--save-novel") == 0) {
      Opts.SaveNovel = true;
    } else if (strcmp(A, "--no-minimize") == 0) {
      Opts.Minimize = false;
    } else if (strcmp(A, "--no-perturb") == 0) {
      Opts.Perturb = false;
    } else if (strcmp(A, "--no-partial-ops") == 0) {
      Opts.PartialOps = false;
    } else if (strcmp(A, "--no-guarded") == 0) {
      Opts.Guarded = false;
    } else if (strcmp(A, "--store-hammer") == 0) {
      StoreHammer = true;
    } else if (strncmp(A, "--store-dir=", 12) == 0) {
      Opts.StoreDir = A + 12;
    } else if (strcmp(A, "--inject-bug=branch-flip") == 0) {
      Opts.Inject = InjectedBug::BranchPolarity;
    } else if (strcmp(A, "--inject-bug=fuel") == 0) {
      Opts.Inject = InjectedBug::FuelOffByOne;
    } else if (strcmp(A, "--expect-finding") == 0) {
      ExpectFinding = true;
    } else if (strcmp(A, "--json") == 0) {
      Json = true;
    } else if (strcmp(A, "--replay") == 0) {
      Replay = true;
    } else {
      return usage();
    }
  }

  if (Replay) {
    if (ReplayPaths.empty())
      return usage();
    return replay(ReplayPaths, Json);
  }

  // --store-hammer: a throwaway store under TMPDIR — never inside the
  // source tree — removed when the run ends. --store-dir keeps its store
  // for a post-mortem `pecompc cache-fsck`.
  std::string ScratchStore;
  if (StoreHammer && Opts.StoreDir.empty()) {
    const char *T = getenv("TMPDIR");
    std::string Tpl =
        std::string(T && *T ? T : "/tmp") + "/pecomp-fuzz-store-XXXXXX";
    std::vector<char> Buf(Tpl.begin(), Tpl.end());
    Buf.push_back('\0');
    if (!mkdtemp(Buf.data())) {
      fprintf(stderr, "pecomp-fuzz: mkdtemp failed for --store-hammer\n");
      return 2;
    }
    ScratchStore = Buf.data();
    Opts.StoreDir = ScratchStore;
  }

  Fuzzer F(Opts);
  const FuzzerStats &Stats = F.run();

  if (!ScratchStore.empty()) {
    std::error_code Ec;
    std::filesystem::remove_all(ScratchStore, Ec);
  }

  for (const Finding &Fi : F.findings()) {
    fprintf(stderr, "-- finding: %s\n", Fi.Diverged.render().c_str());
    fprintf(stderr, "   minimized entry: %zu insn(s), reducer spent %zu "
                    "attempt(s)%s%s\n",
            Fi.EntryInsns, Fi.ReduceAttempts,
            Fi.SavedPath.empty() ? "" : ", saved to ",
            Fi.SavedPath.c_str());
    fputs(Fi.Case.serialize().c_str(), stderr);
  }

  if (Json) {
    std::string S = Stats.json();
    S.pop_back(); // reopen the object for the findings array
    S += ", \"minimized_insns\": [";
    for (size_t I = 0; I != F.findings().size(); ++I)
      S += (I ? ", " : "") + std::to_string(F.findings()[I].EntryInsns);
    S += "]}";
    printf("%s\n", S.c_str());
  } else {
    printf("%zu executed, %zu skipped, %zu coverage feature(s), "
           "%zu finding(s)\n",
           Stats.Executed, Stats.Skipped, Stats.CoverageFeatures,
           Stats.Findings);
  }

  if (ExpectFinding) {
    if (F.findings().empty()) {
      fprintf(stderr, "pecomp-fuzz: expected a finding, found none -- the "
                      "harness failed its self-test\n");
      return 1;
    }
    if (MaxMinimizedInsns) {
      size_t Best = static_cast<size_t>(-1);
      for (const Finding &Fi : F.findings())
        Best = std::min(Best, Fi.EntryInsns);
      if (Best > MaxMinimizedInsns) {
        fprintf(stderr,
                "pecomp-fuzz: best minimized entry is %zu insns, wanted "
                "<= %zu -- the reducer failed its self-test\n",
                Best, MaxMinimizedInsns);
        return 1;
      }
    }
    return 0;
  }
  return F.findings().empty() ? 0 : 1;
}
