//===- tools/pecompc.cpp - Command-line driver ------------------*- C++ -*-===//
///
/// \file
/// File-based driver over the whole system:
///
///   pecompc run <file> <entry> [datum...]
///       compile (ANF path) and call entry on the given arguments
///   pecompc compile <file> [--stock|--anf|--direct]
///       print the disassembly of every definition
///   pecompc anf <file>
///       print the A-normal-form conversion
///   pecompc bta <file> <entry> <division>
///       print the two-level (binding-time annotated) program
///   pecompc spec <file> <entry> <division> [datum|_ ...]
///       specialize; '_' marks dynamic parameters; prints residual source
///   pecompc specrun <file> <entry> <division> [datum|_ ...] -- [datum...]
///       fused path: generate object code directly and run it on the
///       arguments after '--'
///   pecompc serve <file> <entry> <division>
///       RTCG service mode: read one request per line from stdin
///       ("static... -- dynamic...", '_' for dynamic slots) and serve
///       them over a worker pool sharing the specialization cache
///   pecompc cache-fsck <store>
///       classify every entry of a persistent store directory; exits
///       nonzero when any committed entry is corrupt
///   pecompc cache-ls <store>
///       list the committed entries of a persistent store directory
///
/// Divisions are strings over {S, D}, one letter per entry parameter.
///
//===----------------------------------------------------------------------===//

#include "compiler/AnfCompiler.h"
#include "compiler/DirectAnfCompiler.h"
#include "compiler/Peephole.h"
#include "compiler/StockCompiler.h"
#include "frontend/AnfConvert.h"
#include "frontend/Pipeline.h"
#include "pgg/DiskStore.h"
#include "pgg/NetServer.h"
#include "pgg/Pgg.h"
#include "pgg/RtcgService.h"
#include "pgg/TenantTable.h"
#include "sexp/Reader.h"
#include "vm/Convert.h"
#include "vm/Profile.h"
#include "vm/Trap.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace pecomp;

namespace {

int usageTo(FILE *Out) {
  fprintf(Out,
          "usage: pecompc [--fuel=N] [--max-heap=BYTES] <command> ...\n"
          "\n"
          "  pecompc run <file> <entry> [datum...]\n"
          "  pecompc compile <file> [--stock|--anf|--direct]\n"
          "  pecompc anf <file>\n"
          "  pecompc bta <file> <entry> <division>\n"
          "  pecompc spec <file> <entry> <division> [datum|_ ...]\n"
          "  pecompc specrun <file> <entry> <division> [datum|_ ...] -- "
          "[datum...]\n"
          "  pecompc serve <file> <entry> <division>   (requests on stdin,\n"
          "                                             or TCP with --listen)\n"
          "  pecompc cache-fsck <store>   (nonzero exit on corruption)\n"
          "  pecompc cache-ls <store>\n"
          "\n"
          "  --fuel=N       cap executed VM instructions (0 = unlimited)\n"
          "  --max-heap=N   cap live heap bytes (0 = unlimited)\n"
          "  --profile      print per-opcode execution counters and phase\n"
          "                 timings to stderr after run/specrun\n"
          "  --no-decode    force the byte-at-a-time dispatch loop (the\n"
          "                 pre-decoded fast loop is the default)\n"
          "  --no-fuse      dispatch the decoded stream one source\n"
          "                 instruction at a time (superinstruction fusion\n"
          "                 is the default)\n"
          "  --jit          enter straight-line blocks through the native\n"
          "                 per-block template JIT (the default on x86-64;\n"
          "                 a no-op elsewhere)\n"
          "  --no-jit       keep every block on the interpreted dispatch\n"
          "                 loops\n"
          "  --no-peephole  skip the byte-code peephole pass at link time\n"
          "  --cache[=N]    memoize specializations (specrun/serve) under\n"
          "                 an N-byte LRU budget (default 64 MiB, 0 = "
          "unlimited)\n"
          "  --cache-stats  print cache hit/miss/eviction counters (and\n"
          "                 disk-tier counters with --store) to stderr\n"
          "                 after specrun/serve\n"
          "  --store=PATH   persistent cache tier (implies --cache):\n"
          "                 specializations are written to the PATH\n"
          "                 directory and warm-started from it; every\n"
          "                 loaded entry is checksummed and re-verified,\n"
          "                 corrupt entries degrade to cold generation\n"
          "  --threads=M    serve worker threads (default 4)\n"
          "  --respecialize[=N]\n"
          "                 online profile-guided re-specialization\n"
          "                 (serve): sample dynamic-argument values, and\n"
          "                 once a request key is N calls hot (default 16)\n"
          "                 with a stable value mix, generate a variant\n"
          "                 specialized on the observed values behind an\n"
          "                 argument guard (mismatches fall back to the\n"
          "                 generic code)\n"
          "  --listen=[HOST:]PORT\n"
          "                 serve over TCP instead of stdin: an epoll loop\n"
          "                 accepts any number of connections speaking the\n"
          "                 PEC1 frame protocol (docs/SERVING.md) and feeds\n"
          "                 the worker pool; port 0 picks an ephemeral\n"
          "                 port (printed as 'listening on HOST:PORT')\n"
          "  --tenants=SPEC per-tenant quotas and cache partitions for\n"
          "                 networked serving, e.g.\n"
          "                 '1:fuel=100000,cache=65536;2:heap=1048576;strict'\n"
          "                 (keys: fuel, heap, stack, frames, cache, name;\n"
          "                 'strict' rejects unlisted tenant ids)\n"
          "  --queue-depth=N\n"
          "                 shed requests (classified Overloaded) once N\n"
          "                 are in flight in networked serve (default 256)\n");
  return Out == stdout ? 0 : 2;
}

int usage() { return usageTo(stderr); }

int fail(const Error &E) {
  // Classified faults (vm/Trap.h) print their trap kind so scripts can
  // distinguish resource exhaustion from ordinary user errors.
  if (vm::TrapKind K = vm::trapKindOf(E); K != vm::TrapKind::None)
    fprintf(stderr, "pecompc: trap[%s]: %s\n", vm::trapKindName(K),
            E.render().c_str());
  else
    fprintf(stderr, "pecompc: error: %s\n", E.render().c_str());
  return 1;
}

Result<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return makeError("cannot open '" + Path + "'");
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Shared state of one invocation.
struct Session {
  vm::Heap Heap;
  Arena AstArena;
  DatumFactory Datums{AstArena};
  ExprFactory Exprs{AstArena};
  vm::Limits Lim; ///< applied to every machine this invocation creates
  bool Profiling = false;
  bool DecodedDispatch = true;
#ifdef PECOMP_NO_FUSE
  bool Fusion = false;
#else
  bool Fusion = true;
#endif
  bool Peephole = compiler::LinkOptions{}.Peephole;
  bool NativeJit = compiler::LinkOptions{}.NativeJit;
  vm::Profile Prof;
  bool CacheEnabled = false;
  bool CacheStatsWanted = false;
  size_t CacheBytes = 64u << 20;
  size_t Threads = 4;
  bool Respec = false;            ///< --respecialize
  uint64_t RespecThreshold = 16;  ///< --respecialize=N
  std::string Listen;     ///< --listen=[HOST:]PORT (empty = stdin serve)
  std::string TenantSpec; ///< --tenants=SPEC
  size_t QueueDepth = 256; ///< --queue-depth=N (networked serve shed mark)
  std::string StorePath; ///< --store=PATH (empty = memory tier only)
  std::shared_ptr<pgg::DiskStore> Store; ///< opened once, up front
  std::optional<pgg::SpecCache> Cache;

  /// The invocation-wide specialization cache, or null when --cache was
  /// not given. The persistent tier (--store) is attached on first use.
  pgg::SpecCache *cache() {
    if (!CacheEnabled)
      return nullptr;
    if (!Cache) {
      Cache.emplace(CacheBytes);
      if (Store)
        Cache->attachDisk(Store);
    }
    return &*Cache;
  }

  /// Prints a classified store failure to stderr (stdout stays the
  /// result protocol; a store failure never fails the request).
  void reportStoreNote(int StoreCode, const std::string &Note) const {
    if (StoreCode)
      fprintf(stderr, "pecompc: store[%s]: %s\n",
              pgg::storeErrorName(static_cast<pgg::StoreError>(
                  StoreCode - pgg::StoreErrorCodeBase)),
              Note.c_str());
  }

  void reportCacheStats(const pgg::CacheStats &CS) const {
    if (CacheStatsWanted)
      fprintf(stderr, "%s", CS.report().c_str());
  }

  /// Applies the session's machine-wide settings.
  void configure(vm::Machine &M) {
    M.setLimits(Lim);
    M.setDecodedDispatch(DecodedDispatch);
    M.setFusion(Fusion);
    M.setNativeJit(NativeJit);
    if (Profiling)
      M.setProfile(&Prof);
  }

  /// The session's link-pipeline knobs.
  compiler::LinkOptions linkOptions() const {
    compiler::LinkOptions O;
    O.Peephole = Peephole;
    O.NativeJit = NativeJit;
    return O;
  }

  /// Prints the accumulated profile to stderr (after the result, so
  /// stdout stays parseable).
  void reportProfile() const {
    if (Profiling)
      fprintf(stderr, "%s", Prof.report().c_str());
  }

  Result<vm::Value> parseValue(const std::string &Text) {
    Result<const Datum *> D = readDatum(Text, Datums);
    if (!D)
      return D.takeError();
    vm::Value V = vm::valueFromDatum(Heap, *D);
    Heap.pin(V);
    return V;
  }

  Result<std::vector<vm::Value>> parseValues(const std::vector<std::string> &
                                                 Texts) {
    std::vector<vm::Value> Out;
    for (const std::string &T : Texts) {
      Result<vm::Value> V = parseValue(T);
      if (!V)
        return V.takeError();
      Out.push_back(*V);
    }
    return Out;
  }
};

int cmdRun(Session &S, const std::string &File, const std::string &Entry,
           const std::vector<std::string> &ArgTexts) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());
  Result<Program> P = anfProgram(*Text, S.Exprs, S.Datums);
  if (!P)
    return fail(P.error());
  Result<std::vector<vm::Value>> Args = S.parseValues(ArgTexts);
  if (!Args)
    return fail(Args.error());

  vm::CodeStore Store(S.Heap);
  vm::GlobalTable Globals;
  compiler::Compilators Comp(Store, Globals);
  compiler::AnfCompiler AC(Comp);
  compiler::CompiledProgram CP = AC.compileProgram(*P);
  vm::Machine M(S.Heap);
  S.configure(M);
  Result<bool> Linked =
      compiler::linkProgramVerified(M, Globals, CP, S.linkOptions());
  if (!Linked)
    return fail(Linked.error());
  Result<vm::Value> R =
      compiler::callGlobal(M, Globals, Symbol::intern(Entry), *Args);
  if (!R) {
    S.reportProfile();
    return fail(R.error());
  }
  printf("%s\n", vm::valueToString(*R).c_str());
  S.reportProfile();
  return 0;
}

int cmdCompile(Session &S, const std::string &File,
               const std::string &Flavor) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());

  vm::CodeStore Store(S.Heap);
  vm::GlobalTable Globals;
  compiler::CompiledProgram CP;
  if (Flavor == "--stock") {
    Result<Program> P = frontendProgram(*Text, S.Exprs, S.Datums);
    if (!P)
      return fail(P.error());
    compiler::Compilators Comp(Store, Globals);
    compiler::StockCompiler SC(Comp);
    CP = SC.compileProgram(*P);
  } else {
    Result<Program> P = anfProgram(*Text, S.Exprs, S.Datums);
    if (!P)
      return fail(P.error());
    if (Flavor == "--direct") {
      compiler::DirectAnfCompiler DC(Store, Globals);
      CP = DC.compileProgram(*P);
    } else {
      compiler::Compilators Comp(Store, Globals);
      compiler::AnfCompiler AC(Comp);
      CP = AC.compileProgram(*P);
    }
  }
  for (const auto &[Name, Code] : CP.Defs)
    printf("%s", Code->disassemble().c_str());
  return 0;
}

int cmdAnf(Session &S, const std::string &File) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());
  Result<Program> P = anfProgram(*Text, S.Exprs, S.Datums);
  if (!P)
    return fail(P.error());
  printf("%s", P->print().c_str());
  return 0;
}

int cmdBta(Session &S, const std::string &File, const std::string &Entry,
           const std::string &Division) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());
  auto Gen =
      pgg::GeneratingExtension::create(S.Heap, *Text, Entry, Division);
  if (!Gen)
    return fail(Gen.error());
  printf("%s", (*Gen)->annotated().print().c_str());
  return 0;
}

Result<std::vector<std::optional<vm::Value>>>
parseSpecArgs(Session &S, const std::vector<std::string> &Texts) {
  std::vector<std::optional<vm::Value>> Out;
  for (const std::string &T : Texts) {
    if (T == "_") {
      Out.push_back(std::nullopt);
      continue;
    }
    Result<vm::Value> V = S.parseValue(T);
    if (!V)
      return V.takeError();
    Out.push_back(*V);
  }
  return Out;
}

int cmdSpec(Session &S, const std::string &File, const std::string &Entry,
            const std::string &Division,
            const std::vector<std::string> &ArgTexts) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());
  auto Gen =
      pgg::GeneratingExtension::create(S.Heap, *Text, Entry, Division);
  if (!Gen)
    return fail(Gen.error());
  auto Args = parseSpecArgs(S, ArgTexts);
  if (!Args)
    return fail(Args.error());
  Result<pgg::ResidualSource> Res = (*Gen)->generateSource(*Args);
  if (!Res)
    return fail(Res.error());
  printf(";; residual entry: %s\n%s", Res->Entry.str().c_str(),
         Res->Residual.print().c_str());
  return 0;
}

int cmdSpecRun(Session &S, const std::string &File, const std::string &Entry,
               const std::string &Division,
               const std::vector<std::string> &StaticTexts,
               const std::vector<std::string> &DynTexts) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());
  auto Args = parseSpecArgs(S, StaticTexts);
  if (!Args)
    return fail(Args.error());

  vm::CodeStore Store(S.Heap);
  vm::GlobalTable Globals;
  compiler::CompiledProgram CP;
  Symbol ResEntry;

  // With --cache, the (program, division, statics) key may short-circuit
  // generation entirely; the cached unit relinks into this invocation's
  // store and global table.
  pgg::SpecKey Key;
  if (S.cache())
    Key = pgg::makeSpecKey(
        pgg::fingerprintProgram(*Text, Entry, Division), *Args);
  pgg::LookupOutcome Tier;
  std::shared_ptr<const pgg::CachedSpecialization> Hit =
      S.cache() ? S.cache()->lookup(Key, Tier) : nullptr;
  S.reportStoreNote(Tier.DiskError, Tier.DiskDetail);
  if (Hit) {
    CP = Hit->Residual->instantiate(Store, Globals);
    ResEntry = Hit->Entry;
  } else {
    auto Gen =
        pgg::GeneratingExtension::create(S.Heap, *Text, Entry, Division);
    if (!Gen)
      return fail(Gen.error());
    compiler::Compilators Comp(Store, Globals);
    Result<pgg::ResidualObject> Obj = (*Gen)->generateObject(Comp, *Args);
    if (!Obj)
      return fail(Obj.error());
    CP = std::move(Obj->Residual);
    ResEntry = Obj->Entry;
    // Optimize before capture so the snapshot stores peepholed bytes:
    // cache hits then instantiate optimized code with no per-hit pass.
    if (S.Peephole)
      compiler::peepholeProgram(CP);
    if (S.cache()) {
      if (auto Port = compiler::PortableProgram::capture(CP, Globals)) {
        auto Cached = std::make_shared<pgg::CachedSpecialization>();
        Cached->Residual = *Port;
        Cached->Entry = ResEntry;
        Cached->Stats = Obj->Stats;
        S.cache()->insert(Key, std::move(Cached));
      }
    }
  }

  Result<std::vector<vm::Value>> DynArgs = S.parseValues(DynTexts);
  if (!DynArgs)
    return fail(DynArgs.error());
  vm::Machine M(S.Heap);
  S.configure(M);
  Result<bool> Linked =
      compiler::linkProgramVerified(M, Globals, CP, S.linkOptions());
  if (!Linked)
    return fail(Linked.error());
  Result<vm::Value> R =
      compiler::callGlobal(M, Globals, ResEntry, *DynArgs);
  if (!R) {
    S.reportProfile();
    return fail(R.error());
  }
  printf("%s\n", vm::valueToString(*R).c_str());
  S.reportProfile();
  if (S.cache())
    S.reportCacheStats(S.cache()->stats());
  return 0;
}

/// The serve-mode service configuration both the stdin and the networked
/// front ends share. serve always caches (sharing specializations across
/// requests is the point of the service); --cache=N only adjusts the
/// budget, and --tenants partitions it.
Result<pgg::RtcgOptions> serveOptions(Session &S) {
  pgg::RtcgOptions O;
  O.Threads = S.Threads;
  O.CacheBytes = S.CacheBytes;
  O.Limits = S.Lim;
  O.Fusion = S.Fusion;
  O.NativeJit = S.NativeJit;
  O.Peephole = S.Peephole;
  O.Store = S.Store;
  O.Respec.Enabled = S.Respec;
  O.Respec.HotThreshold = S.RespecThreshold;
  if (!S.TenantSpec.empty()) {
    Result<pgg::TenantTable> T = pgg::TenantTable::parse(S.TenantSpec, S.Lim);
    if (!T)
      return T.takeError();
    O.Tenants = std::make_shared<const pgg::TenantTable>(std::move(*T));
  }
  return O;
}

/// The running networked server, for the signal handlers. requestStop()
/// is one eventfd write, which is async-signal-safe.
pgg::net::NetServer *volatile GServer = nullptr;

extern "C" void serveSignalHandler(int) {
  if (pgg::net::NetServer *S = GServer)
    S->requestStop();
}

/// serve --listen: bind, print the bound address, and run the epoll loop
/// until SIGINT/SIGTERM. Every connection speaks the PEC1 frame protocol
/// against this one program/entry (docs/SERVING.md).
int cmdServeListen(Session &S, const std::string &File,
                   const std::string &Entry, const std::string &Division) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());

  Result<pgg::RtcgOptions> O = serveOptions(S);
  if (!O)
    return fail(O.error());

  pgg::net::NetServerOptions NO;
  NO.QueueDepth = S.QueueDepth;
  std::string PortText = S.Listen;
  if (size_t Colon = S.Listen.rfind(':'); Colon != std::string::npos) {
    NO.Host = S.Listen.substr(0, Colon);
    PortText = S.Listen.substr(Colon + 1);
  }
  errno = 0;
  char *End = nullptr;
  unsigned long Port = strtoul(PortText.c_str(), &End, 10);
  if (PortText.empty() || errno || *End != '\0' || Port > 65535)
    return usage();
  NO.Port = static_cast<uint16_t>(Port);

  pgg::RtcgService Service(*O);
  pgg::RtcgRequest Template;
  Template.ProgramText = *Text;
  Template.Entry = Entry;
  Template.Division = Division;
  Result<std::unique_ptr<pgg::net::NetServer>> Srv =
      pgg::net::NetServer::create(Service, std::move(Template), NO);
  if (!Srv)
    return fail(Srv.error());

  GServer = Srv->get();
  std::signal(SIGINT, serveSignalHandler);
  std::signal(SIGTERM, serveSignalHandler);
  printf("listening on %s:%u\n", NO.Host.c_str(), (*Srv)->port());
  fflush(stdout);
  (*Srv)->run();
  GServer = nullptr;

  const pgg::net::NetServerStats &NS = (*Srv)->stats();
  fprintf(stderr,
          "pecompc: serve: %llu connections, %llu requests, %llu responses, "
          "%llu shed, %llu bad frames, %llu version rejections, "
          "%llu read pauses\n",
          static_cast<unsigned long long>(NS.Accepted),
          static_cast<unsigned long long>(NS.Requests),
          static_cast<unsigned long long>(NS.Responses),
          static_cast<unsigned long long>(NS.Shed),
          static_cast<unsigned long long>(NS.BadFrames),
          static_cast<unsigned long long>(NS.BadVersions),
          static_cast<unsigned long long>(NS.ReadPauses));
  S.reportCacheStats(Service.cacheStats());
  return 0;
}

/// serve: one request per stdin line, "static... -- dynamic..." in the
/// entry's parameter order ('_' marks a dynamic slot; blank and ;-comment
/// lines are skipped). Results print in request order, one line each:
/// the value, or "!trap[KIND]: message" / "!error: message".
int cmdServe(Session &S, const std::string &File, const std::string &Entry,
             const std::string &Division) {
  Result<std::string> Text = readFile(File);
  if (!Text)
    return fail(Text.error());

  std::vector<pgg::RtcgRequest> Reqs;
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(std::cin, Line)) {
    ++LineNo;
    // The reader tokenizes the request line, so datums with internal
    // whitespace ("(1 2)") work; '_' and '--' read as symbols.
    Result<std::vector<const Datum *>> Ds = readAll(Line, S.Datums);
    if (!Ds)
      return fail(Error("stdin:" + std::to_string(LineNo) + ": " +
                        Ds.error().render()));
    if (Ds->empty())
      continue;
    pgg::RtcgRequest R;
    R.ProgramText = *Text;
    R.Entry = Entry;
    R.Division = Division;
    bool Dynamic = false;
    for (const Datum *D : *Ds) {
      std::string W = D->write();
      if (W == "--") {
        Dynamic = true;
        continue;
      }
      (Dynamic ? R.RunArgs : R.SpecArgs).push_back(std::move(W));
    }
    Reqs.push_back(std::move(R));
  }

  Result<pgg::RtcgOptions> O = serveOptions(S);
  if (!O)
    return fail(O.error());
  pgg::RtcgService Service(*O);
  int Failures = 0;
  for (const pgg::RtcgResponse &R : Service.serveAll(std::move(Reqs))) {
    S.reportStoreNote(R.StoreCode, R.StoreNote);
    if (R.Ok) {
      printf("%s\n", R.Value.c_str());
    } else {
      ++Failures;
      if (R.TrapCode)
        printf("!trap[%s]: %s\n",
               vm::trapKindName(static_cast<vm::TrapKind>(R.TrapCode)),
               R.ErrorText.c_str());
      else
        printf("!error: %s\n", R.ErrorText.c_str());
    }
  }
  if (S.Respec) {
    // Let in-flight background jobs settle so the counters describe a
    // finished serve, not a race with it.
    Service.quiesceRespec();
    if (S.CacheStatsWanted) {
      pgg::RespecStats RS = Service.respecStats();
      fprintf(stderr,
              "respecialize: %llu sites, %llu jobs, %llu installed, "
              "%llu failed, %llu abandoned, %llu guard hits, "
              "%llu guard misses\n",
              static_cast<unsigned long long>(RS.SitesObserved),
              static_cast<unsigned long long>(RS.JobsQueued),
              static_cast<unsigned long long>(RS.Installed),
              static_cast<unsigned long long>(RS.Failed),
              static_cast<unsigned long long>(RS.Abandoned),
              static_cast<unsigned long long>(RS.GuardHits),
              static_cast<unsigned long long>(RS.GuardMisses));
    }
  }
  S.reportCacheStats(Service.cacheStats());
  return Failures ? 1 : 0;
}

/// cache-fsck / cache-ls: offline store inspection. fsck walks deep
/// (checksums, payload decode, byte-code verifier) and exits nonzero when
/// any committed entry is bad; torn .tmp debris from a crashed writer is
/// reported but does not fail the check — loads never look at it, so the
/// store is still fully serviceable. ls walks shallow and lists what a
/// warm start would see.
int cmdCacheWalk(const std::string &Dir, bool Fsck) {
  Result<std::vector<pgg::StoreEntryInfo>> Entries =
      pgg::DiskStore::walk(Dir, /*Deep=*/Fsck);
  if (!Entries)
    return fail(Entries.error());
  size_t Ok = 0, Torn = 0, Corrupt = 0;
  for (const pgg::StoreEntryInfo &E : *Entries) {
    if (E.Status == pgg::StoreError::None) {
      ++Ok;
      printf("%s: ok entry=%s fp=%016llx bt=%s payload=%zuB file=%zuB "
             "age=%llds\n",
             E.File.c_str(), E.EntryName.c_str(),
             static_cast<unsigned long long>(E.ProgramFp), E.BtSig.c_str(),
             E.PayloadBytes, E.FileBytes,
             static_cast<long long>(E.AgeSeconds));
    } else if (E.Status == pgg::StoreError::TornWrite) {
      ++Torn;
      printf("%s: torn (ignored by loads): %s\n", E.File.c_str(),
             E.Detail.c_str());
    } else {
      ++Corrupt;
      printf("%s: CORRUPT[%s]: %s\n", E.File.c_str(),
             pgg::storeErrorName(E.Status), E.Detail.c_str());
    }
  }
  printf("%s: %zu entries ok, %zu corrupt, %zu torn\n",
         Fsck ? "cache-fsck" : "cache-ls", Ok, Corrupt, Torn);
  return Fsck && Corrupt ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  Session S;

  // Resource-governor options precede the command.
  while (!Args.empty() && Args[0].rfind("--", 0) == 0) {
    const std::string &Opt = Args[0];
    auto NumberAfter = [&](size_t Prefix) -> std::optional<uint64_t> {
      errno = 0;
      char *End = nullptr;
      unsigned long long N = strtoull(Opt.c_str() + Prefix, &End, 10);
      if (errno || *End != '\0' || End == Opt.c_str() + Prefix)
        return std::nullopt;
      return N;
    };
    if (Opt.rfind("--fuel=", 0) == 0) {
      auto N = NumberAfter(7);
      if (!N)
        return usage();
      S.Lim.Fuel = *N;
    } else if (Opt.rfind("--max-heap=", 0) == 0) {
      auto N = NumberAfter(11);
      if (!N)
        return usage();
      S.Lim.MaxHeapBytes = static_cast<size_t>(*N);
      // Applies to the whole invocation, including code generation
      // phases that run before any machine exists.
      S.Heap.setMaxBytes(S.Lim.MaxHeapBytes);
    } else if (Opt == "--profile") {
      S.Profiling = true;
    } else if (Opt == "--no-decode") {
      S.DecodedDispatch = false;
    } else if (Opt == "--no-fuse") {
      S.Fusion = false;
    } else if (Opt == "--jit") {
      S.NativeJit = true;
    } else if (Opt == "--no-jit") {
      S.NativeJit = false;
    } else if (Opt == "--no-peephole") {
      S.Peephole = false;
    } else if (Opt == "--cache") {
      S.CacheEnabled = true;
    } else if (Opt.rfind("--cache=", 0) == 0) {
      auto N = NumberAfter(8);
      if (!N)
        return usage();
      S.CacheEnabled = true;
      S.CacheBytes = static_cast<size_t>(*N);
    } else if (Opt == "--cache-stats") {
      S.CacheStatsWanted = true;
    } else if (Opt.rfind("--store=", 0) == 0) {
      S.StorePath = Opt.substr(8);
      if (S.StorePath.empty())
        return usage();
      S.CacheEnabled = true; // the disk tier rides under the memory tier
    } else if (Opt.rfind("--threads=", 0) == 0) {
      auto N = NumberAfter(10);
      if (!N || *N == 0)
        return usage();
      S.Threads = static_cast<size_t>(*N);
    } else if (Opt == "--respecialize") {
      S.Respec = true;
    } else if (Opt.rfind("--respecialize=", 0) == 0) {
      auto N = NumberAfter(15);
      if (!N || *N == 0)
        return usage();
      S.Respec = true;
      S.RespecThreshold = *N;
    } else if (Opt.rfind("--listen=", 0) == 0) {
      S.Listen = Opt.substr(9);
      if (S.Listen.empty())
        return usage();
    } else if (Opt.rfind("--tenants=", 0) == 0) {
      S.TenantSpec = Opt.substr(10);
      if (S.TenantSpec.empty())
        return usage();
    } else if (Opt.rfind("--queue-depth=", 0) == 0) {
      auto N = NumberAfter(14);
      if (!N || *N == 0)
        return usage();
      S.QueueDepth = static_cast<size_t>(*N);
    } else if (Opt == "--help") {
      return usageTo(stdout);
    } else {
      return usage();
    }
    Args.erase(Args.begin());
  }

  if (Args.empty())
    return usage();
  const std::string &Cmd = Args[0];

  // Open the persistent store up front so an unusable path is a reported
  // error, not a silent degradation halfway through serving.
  if (!S.StorePath.empty()) {
    Result<std::shared_ptr<pgg::DiskStore>> St =
        pgg::DiskStore::open(S.StorePath);
    if (!St)
      return fail(St.error());
    S.Store = *St;
  }

  if (Cmd == "cache-fsck" && Args.size() == 2)
    return cmdCacheWalk(Args[1], /*Fsck=*/true);
  if (Cmd == "cache-ls" && Args.size() == 2)
    return cmdCacheWalk(Args[1], /*Fsck=*/false);

  if (Cmd == "run" && Args.size() >= 3)
    return cmdRun(S, Args[1], Args[2],
                  std::vector<std::string>(Args.begin() + 3, Args.end()));
  if (Cmd == "compile" && (Args.size() == 2 || Args.size() == 3))
    return cmdCompile(S, Args[1], Args.size() == 3 ? Args[2] : "--anf");
  if (Cmd == "anf" && Args.size() == 2)
    return cmdAnf(S, Args[1]);
  if (Cmd == "bta" && Args.size() == 4)
    return cmdBta(S, Args[1], Args[2], Args[3]);
  if (Cmd == "spec" && Args.size() >= 4)
    return cmdSpec(S, Args[1], Args[2], Args[3],
                   std::vector<std::string>(Args.begin() + 4, Args.end()));
  if (Cmd == "specrun" && Args.size() >= 4) {
    auto Sep = std::find(Args.begin() + 4, Args.end(), "--");
    std::vector<std::string> Statics(Args.begin() + 4, Sep);
    std::vector<std::string> Dyns(Sep == Args.end() ? Args.end() : Sep + 1,
                                  Args.end());
    return cmdSpecRun(S, Args[1], Args[2], Args[3], Statics, Dyns);
  }
  if (Cmd == "serve" && Args.size() == 4)
    return S.Listen.empty() ? cmdServe(S, Args[1], Args[2], Args[3])
                            : cmdServeListen(S, Args[1], Args[2], Args[3]);
  return usage();
}
