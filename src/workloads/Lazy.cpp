//===- workloads/Lazy.cpp - The LAZY interpreter ---------------------------===//
///
/// \file
/// LAZY: a small call-by-name functional language (Sec. 7's second
/// workload). The expression language matches MIXWELL's, but arguments
/// are passed as thunks and forced at variable references, so unused
/// arguments are never evaluated. Under specialization the thunks become
/// residual closures — the generated code is a lazy program running on
/// the strict VM.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace pecomp;

std::string_view workloads::lazyInterpreter() {
  return R"scheme(
(define (lz-cadr x) (car (cdr x)))
(define (lz-caddr x) (car (cdr (cdr x))))
(define (lz-cadddr x) (car (cdr (cdr (cdr x)))))
(define (lz-cddr x) (cdr (cdr x)))

(define (lazy-run program a)
  (lz-apply program (car program) (cons (lambda () a) '())))

(define (lz-lookup-fun program f)
  (if (null? program)
      '()
      (if (eq? f (car (car program)))
          (car program)
          (lz-lookup-fun (cdr program) f))))

(define (lz-apply program fdef thunks)
  (lz-eval program (lz-cadr fdef) thunks (lz-caddr fdef)))

(define (lz-eval program names thunks e)
  (let ((tag (car e)))
    (cond
      ((eq? tag 'const) (lz-cadr e))
      ((eq? tag 'var) ((lz-lookup names thunks (lz-cadr e))))
      ((eq? tag 'if)
       (lz-eval-if program names thunks
                   (lz-cadr e) (lz-caddr e) (lz-cadddr e)))
      ((eq? tag 'call)
       (lz-apply program
                 (lz-lookup-fun program (lz-cadr e))
                 (lz-thunkify program names thunks (lz-cddr e))))
      ((eq? tag 'op1)
       (lz-prim1 (lz-cadr e) (lz-eval program names thunks (lz-caddr e))))
      ((eq? tag 'op2)
       (lz-prim2 (lz-cadr e)
                 (lz-eval program names thunks (lz-caddr e))
                 (lz-eval program names thunks (lz-cadddr e))))
      (else (error "lazy: unknown expression")))))

(define (lz-eval-if program names thunks e1 e2 e3)
  (if (lz-eval program names thunks e1)
      (lz-eval program names thunks e2)
      (lz-eval program names thunks e3)))

(define (lz-thunkify program names thunks es)
  (if (null? es)
      '()
      (cons (lambda () (lz-eval program names thunks (car es)))
            (lz-thunkify program names thunks (cdr es)))))

(define (lz-lookup names thunks x)
  (if (null? names)
      (error "lazy: unbound variable")
      (if (eq? x (car names))
          (car thunks)
          (lz-lookup (cdr names) (cdr thunks) x))))

(define (lz-prim1 p a)
  (cond
    ((eq? p 'car) (car a))
    ((eq? p 'cdr) (cdr a))
    ((eq? p 'null?) (null? a))
    ((eq? p 'not) (not a))
    ((eq? p 'zero?) (zero? a))
    ((eq? p 'pair?) (pair? a))
    (else (error "lazy: unknown unary operator"))))

(define (lz-prim2 p a b)
  (cond
    ((eq? p '+) (+ a b))
    ((eq? p '-) (- a b))
    ((eq? p '*) (* a b))
    ((eq? p 'quotient) (quotient a b))
    ((eq? p 'remainder) (remainder a b))
    ((eq? p '=) (= a b))
    ((eq? p '<) (< a b))
    ((eq? p '>) (> a b))
    ((eq? p 'cons) (cons a b))
    ((eq? p 'eq?) (eq? a b))
    ((eq? p 'equal?) (equal? a b))
    (else (error "lazy: unknown binary operator"))))
)scheme";
}

std::string_view workloads::lazySampleProgram() {
  // A LAZY program in the size class of the paper's 26-line input. Uses
  // call-by-name in an essential way: choose only forces the selected
  // branch, so safe-div never divides by zero and main's unused
  // alternative is never computed. Entry: (main n).
  return R"scheme(
((main (n)
   (call plus (call sum-to (call clamp (var n)))
              (call safe-div (const 100) (var n))))
 (plus (a b) (op2 + (var a) (var b)))
 (clamp (n)
   (call choose (op2 < (var n) (const 0)) (const 0) (var n)))
 (choose (c a b)
   (if (var c) (var a) (var b)))
 (safe-div (a b)
   (call choose (op2 = (var b) (const 0))
         (const 0)
         (op2 quotient (var a) (var b))))
 (sum-to (n)
   (if (op2 = (var n) (const 0))
       (const 0)
       (op2 + (var n) (call sum-to (op2 - (var n) (const 1)))))))
)scheme";
}
