//===- workloads/Workloads.h - Benchmark workloads --------------*- C++ -*-===//
///
/// \file
/// The paper's Sec. 7 workloads, rebuilt: an interpreter for MIXWELL (a
/// small first-order strict functional language) and one for LAZY (a
/// small call-by-name functional language), both written in the Scheme
/// subset this system processes, plus medium-sized input programs in each
/// language. (The originals ship with the Similix distribution, which is
/// not available; see DESIGN.md, substitution 4.)
///
/// Both interpreters follow the structure that makes compilation by
/// partial evaluation work: the program and the variable-name lists are
/// static; the value (or thunk) lists are dynamic; the dynamic conditional
/// lives in a dedicated eval-if function, which becomes the memoization
/// point, so residual programs break exactly at conditionals.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_WORKLOADS_WORKLOADS_H
#define PECOMP_WORKLOADS_WORKLOADS_H

#include <string_view>

namespace pecomp {
namespace workloads {

/// The MIXWELL interpreter (Scheme source). Entry: (mixwell-run program
/// args), program static, args dynamic.
std::string_view mixwellInterpreter();

/// A medium-sized MIXWELL input program (an s-expression datum): list
/// utilities, arithmetic, and a small sort — exercises calls,
/// conditionals, recursion, and primitives. First function is the entry:
/// (main n xs).
std::string_view mixwellSampleProgram();

/// The LAZY interpreter (Scheme source). Entry: (lazy-run program args),
/// program static, args dynamic. Arguments and calls are call-by-name
/// (thunks).
std::string_view lazyInterpreter();

/// A LAZY input program (an s-expression datum) in the 26-line class of
/// the paper's input. First function is the entry: (main n).
std::string_view lazySampleProgram();

/// The IMP interpreter (Scheme source): a small imperative while-language
/// (programs: ((param...) (local...) (stmt...) result)). Entry:
/// (imp-run program args), program static, args dynamic.
std::string_view impInterpreter();

/// An IMP program exercising while loops, branches, and assignments:
/// gcd(a,b) * n! + sum of even numbers up to n. Entry args: (a b n).
std::string_view impSampleProgram();

/// Classic specialization subjects used by the examples and tests.
std::string_view powerProgram();      ///< (power x n), specialize on n
std::string_view dotProductProgram(); ///< (dot xs ys), specialize on xs
std::string_view matcherProgram();    ///< (match pat text), specialize on pat

} // namespace workloads
} // namespace pecomp

#endif // PECOMP_WORKLOADS_WORKLOADS_H
