//===- workloads/Mixwell.cpp - The MIXWELL interpreter ---------------------===//
///
/// \file
/// MIXWELL: a small first-order strict functional language (the classic
/// compilation-by-PE subject, Sec. 7). Programs are s-expression data:
///
///   program ::= ((fname (param ...) body) ...)        first fn is main
///   expr    ::= (const c) | (var x) | (if e1 e2 e3)
///             | (call f e ...) | (op1 p e) | (op2 p e1 e2)
///
/// The interpreter is written so the binding-time division works out:
/// program and name lists static, value lists dynamic; the dynamic
/// conditional is isolated in mw-eval-if, which the BTA memoizes, so the
/// generated code breaks exactly at conditionals — each interpreted
/// function body becomes straight-line residual code.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace pecomp;

std::string_view workloads::mixwellInterpreter() {
  return R"scheme(
(define (cadr x) (car (cdr x)))
(define (caddr x) (car (cdr (cdr x))))
(define (cadddr x) (car (cdr (cdr (cdr x)))))
(define (cddr x) (cdr (cdr x)))

(define (mixwell-run program args)
  (mw-apply program (car program) args))

(define (mw-lookup-fun program f)
  (if (null? program)
      '()
      (if (eq? f (car (car program)))
          (car program)
          (mw-lookup-fun (cdr program) f))))

(define (mw-apply program fdef args)
  (mw-eval program (cadr fdef) args (caddr fdef)))

(define (mw-eval program names vals e)
  (let ((tag (car e)))
    (cond
      ((eq? tag 'const) (cadr e))
      ((eq? tag 'var) (mw-lookup names vals (cadr e)))
      ((eq? tag 'if)
       (mw-eval-if program names vals (cadr e) (caddr e) (cadddr e)))
      ((eq? tag 'call)
       (mw-apply program
                 (mw-lookup-fun program (cadr e))
                 (mw-evlist program names vals (cddr e))))
      ((eq? tag 'op1)
       (mw-prim1 (cadr e) (mw-eval program names vals (caddr e))))
      ((eq? tag 'op2)
       (mw-prim2 (cadr e)
                 (mw-eval program names vals (caddr e))
                 (mw-eval program names vals (cadddr e))))
      (else (error "mixwell: unknown expression")))))

(define (mw-eval-if program names vals e1 e2 e3)
  (if (mw-eval program names vals e1)
      (mw-eval program names vals e2)
      (mw-eval program names vals e3)))

(define (mw-evlist program names vals es)
  (if (null? es)
      '()
      (cons (mw-eval program names vals (car es))
            (mw-evlist program names vals (cdr es)))))

(define (mw-lookup names vals x)
  (if (null? names)
      (error "mixwell: unbound variable")
      (if (eq? x (car names))
          (car vals)
          (mw-lookup (cdr names) (cdr vals) x))))

(define (mw-prim1 p a)
  (cond
    ((eq? p 'car) (car a))
    ((eq? p 'cdr) (cdr a))
    ((eq? p 'null?) (null? a))
    ((eq? p 'not) (not a))
    ((eq? p 'zero?) (zero? a))
    ((eq? p 'pair?) (pair? a))
    (else (error "mixwell: unknown unary operator"))))

(define (mw-prim2 p a b)
  (cond
    ((eq? p '+) (+ a b))
    ((eq? p '-) (- a b))
    ((eq? p '*) (* a b))
    ((eq? p 'quotient) (quotient a b))
    ((eq? p 'remainder) (remainder a b))
    ((eq? p '=) (= a b))
    ((eq? p '<) (< a b))
    ((eq? p '>) (> a b))
    ((eq? p 'cons) (cons a b))
    ((eq? p 'eq?) (eq? a b))
    ((eq? p 'equal?) (equal? a b))
    (else (error "mixwell: unknown binary operator"))))
)scheme";
}

std::string_view workloads::mixwellSampleProgram() {
  // A medium-sized MIXWELL program in the size class of the paper's
  // 62-line input: list utilities, an insertion sort, and Fibonacci,
  // combined by main. Entry: (main n xs).
  return R"scheme(
((main (n xs)
   (call pair (call sum-list (call sort (call append (call iota (var n))
                                                     (call double-all (var xs)))))
              (call fib (var n))))
 (pair (a b)
   (op2 cons (var a) (op2 cons (var b) (const ()))))
 (iota (n)
   (if (op2 = (var n) (const 0))
       (const ())
       (op2 cons (var n) (call iota (op2 - (var n) (const 1))))))
 (append (xs ys)
   (if (op1 null? (var xs))
       (var ys)
       (op2 cons (op1 car (var xs))
                 (call append (op1 cdr (var xs)) (var ys)))))
 (double-all (xs)
   (if (op1 null? (var xs))
       (const ())
       (op2 cons (op2 * (const 2) (op1 car (var xs)))
                 (call double-all (op1 cdr (var xs))))))
 (sum-list (xs)
   (if (op1 null? (var xs))
       (const 0)
       (op2 + (op1 car (var xs)) (call sum-list (op1 cdr (var xs))))))
 (sort (xs)
   (if (op1 null? (var xs))
       (const ())
       (call insert (op1 car (var xs)) (call sort (op1 cdr (var xs))))))
 (insert (x ys)
   (if (op1 null? (var ys))
       (op2 cons (var x) (const ()))
       (if (op2 < (var x) (op1 car (var ys)))
           (op2 cons (var x) (var ys))
           (op2 cons (op1 car (var ys))
                     (call insert (var x) (op1 cdr (var ys)))))))
 (fib (n)
   (if (op2 < (var n) (const 2))
       (var n)
       (op2 + (call fib (op2 - (var n) (const 1)))
              (call fib (op2 - (var n) (const 2)))))))
)scheme";
}

std::string_view workloads::powerProgram() {
  return R"scheme(
(define (power x n)
  (if (zero? n)
      1
      (* x (power x (- n 1)))))
)scheme";
}

std::string_view workloads::dotProductProgram() {
  return R"scheme(
(define (dot xs ys)
  (if (null? xs)
      0
      (+ (* (car xs) (car ys))
         (dot (cdr xs) (cdr ys)))))
)scheme";
}

std::string_view workloads::matcherProgram() {
  // The classic string-matcher subject: with the pattern static, prefix?
  // is memoized per pattern *suffix*, so the residual matcher hard-codes
  // the pattern's elements into a cascade of comparisons. (Full
  // KMP-by-specialization needs positive-information propagation beyond
  // this monovariant BTA; see README caveats.) Lists of symbols stand in
  // for strings; returns the first match index or -1.
  //
  // Note the classic *binding-time improvement* in match: the position
  // counter must be dynamic — as a congruent static value it would evolve
  // under dynamic control (0, 1, 2, ...), giving every memo key a new
  // static part and infinitely many specializations. match-dyn0
  // manufactures a dynamic zero from the text. (Equivalently, BtaOptions::
  // ForceDynamic can generalize the parameter without touching the code;
  // see BtaTest.ForceDynamicGeneralizesEvolvingCounters.)
  return R"scheme(
(define (match pat text)
  (match-search pat text (match-dyn0 text)))

(define (match-dyn0 text)
  (if (null? text) 0 0))

(define (match-search pat text i)
  (if (match-prefix? pat text)
      i
      (if (null? text)
          (- 0 1)
          (match-search pat (cdr text) (+ i 1)))))

(define (match-prefix? pat text)
  (if (null? pat)
      #t
      (if (null? text)
          #f
          (if (eq? (car pat) (car text))
              (match-prefix? (cdr pat) (cdr text))
              #f))))
)scheme";
}
