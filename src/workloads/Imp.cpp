//===- workloads/Imp.cpp - The IMP interpreter ------------------*- C++ -*-===//
///
/// \file
/// IMP: a small imperative while-language, the other classic
/// compilation-by-PE subject (alongside the functional MIXWELL). Programs
/// are s-expression data:
///
///   program ::= ((param ...) (local ...) (stmt ...) result-expr)
///   stmt    ::= (assign x e) | (if e (stmt ...) (stmt ...))
///             | (while e (stmt ...))
///   expr    ::= (const c) | (var x) | (op1 p e) | (op2 p e1 e2)
///
/// The store is a pair of parallel lists: names (static) and values
/// (dynamic), so assignment rebuilds the value list at a statically known
/// position. Loops live in imp-while, whose dynamic test makes it the
/// memoization point: each source while-loop becomes one residual
/// function looping over the store.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace pecomp;

std::string_view workloads::impInterpreter() {
  return R"scheme(
(define (imp-cadr x) (car (cdr x)))
(define (imp-caddr x) (car (cdr (cdr x))))
(define (imp-cadddr x) (car (cdr (cdr (cdr x)))))

(define (imp-run program args)
  (imp-eval (imp-names program)
            (imp-exec (imp-names program)
                      (imp-init-store (imp-cadr program) args)
                      (imp-caddr program))
            (imp-cadddr program)))

;; The store's name list: locals first (statically prepended), then the
;; parameters (whose values arrive in the dynamic args list).
(define (imp-names program)
  (imp-append (imp-cadr program) (car program)))

(define (imp-append xs ys)
  (if (null? xs) ys (cons (car xs) (imp-append (cdr xs) ys))))

;; Locals start at 0, consed statically onto the dynamic argument list.
(define (imp-init-store locals args)
  (if (null? locals)
      args
      (cons 0 (imp-init-store (cdr locals) args))))

;; Statement lists thread the store.
(define (imp-exec names vals stmts)
  (if (null? stmts)
      vals
      (imp-exec names (imp-stmt names vals (car stmts)) (cdr stmts))))

(define (imp-stmt names vals s)
  (let ((tag (car s)))
    (cond
      ((eq? tag 'assign)
       (imp-update names vals (imp-cadr s)
                   (imp-eval names vals (imp-caddr s))))
      ((eq? tag 'if)
       (imp-branch names vals (imp-cadr s) (imp-caddr s) (imp-cadddr s)))
      ((eq? tag 'while)
       (imp-while names vals (imp-cadr s) (imp-caddr s)))
      (else (error "imp: unknown statement")))))

;; Dynamic control points: both are memoized by the BTA (recursive, with
;; a dynamic conditional), so they shape the residual program.
(define (imp-branch names vals e thens elses)
  (if (imp-eval names vals e)
      (imp-exec names vals thens)
      (imp-exec names vals elses)))

(define (imp-while names vals e body)
  (if (imp-eval names vals e)
      (imp-while names (imp-exec names vals body) e body)
      vals))

;; Store update at a statically known position.
(define (imp-update names vals x v)
  (if (null? names)
      (error "imp: assignment to undeclared variable")
      (if (eq? x (car names))
          (cons v (cdr vals))
          (cons (car vals) (imp-update (cdr names) (cdr vals) x v)))))

(define (imp-lookup names vals x)
  (if (null? names)
      (error "imp: unbound variable")
      (if (eq? x (car names))
          (car vals)
          (imp-lookup (cdr names) (cdr vals) x))))

(define (imp-eval names vals e)
  (let ((tag (car e)))
    (cond
      ((eq? tag 'const) (imp-cadr e))
      ((eq? tag 'var) (imp-lookup names vals (imp-cadr e)))
      ((eq? tag 'op1)
       (imp-prim1 (imp-cadr e) (imp-eval names vals (imp-caddr e))))
      ((eq? tag 'op2)
       (imp-prim2 (imp-cadr e)
                  (imp-eval names vals (imp-caddr e))
                  (imp-eval names vals (imp-cadddr e))))
      (else (error "imp: unknown expression")))))

(define (imp-prim1 p a)
  (cond
    ((eq? p 'zero?) (zero? a))
    ((eq? p 'not) (not a))
    (else (error "imp: unknown unary operator"))))

(define (imp-prim2 p a b)
  (cond
    ((eq? p '+) (+ a b))
    ((eq? p '-) (- a b))
    ((eq? p '*) (* a b))
    ((eq? p 'quotient) (quotient a b))
    ((eq? p 'remainder) (remainder a b))
    ((eq? p '=) (= a b))
    ((eq? p '<) (< a b))
    ((eq? p '>) (> a b))
    (else (error "imp: unknown binary operator"))))
)scheme";
}

std::string_view workloads::impSampleProgram() {
  // gcd(a, b) * factorial(n) + sum of 1..n via three while loops.
  // Entry store: params (a b n), locals (acc i t res).
  return R"scheme(
((a b n)
 (acc i t res)
 ((while (op2 > (var b) (const 0))
    ((assign t (op2 remainder (var a) (var b)))
     (assign a (var b))
     (assign b (var t))))
  (assign acc (const 1))
  (assign i (const 0))
  (while (op2 < (var i) (var n))
    ((assign i (op2 + (var i) (const 1)))
     (assign acc (op2 * (var acc) (var i)))))
  (assign res (op2 * (var a) (var acc)))
  (assign i (const 0))
  (assign t (const 0))
  (while (op2 < (var i) (var n))
    ((assign i (op2 + (var i) (const 1)))
     (if (op2 = (op2 remainder (var i) (const 2)) (const 0))
         ((assign t (op2 + (var t) (var i))))
         ())))
  (assign res (op2 + (var res) (var t))))
 (var res))
)scheme";
}
