//===- spec/Specializer.h - Continuation-based specializer ------*- C++ -*-===//
///
/// \file
/// The specialization phase of the offline partial evaluator, following
/// the paper's Fig. 3: a continuation-based specializer over annotated
/// Core Scheme that emits residual code in A-normal form. Every serious
/// residual computation (call or primitive) is let-bound to a fresh
/// variable before the continuation proceeds — the let insertion that
/// makes ANF "the natural target language of the PGG" (Sec. 4).
///
/// The specializer is a catamorphism parameterized over a residual-code
/// builder B (Sec. 5's parameterized ev-X family):
///
///   - spec::SyntaxBuilder      residual ANF source (ordinary PE)
///   - compiler::CodeGenBuilder object code directly (the fused system)
///
/// Memoization (Sec. 4 calls it standard and omits it): calls annotated
/// Memo are specialization points. The callee is specialized with respect
/// to the values of its static-signature arguments, memoized on
/// (function, static values) so each variant is generated once; recursive
/// encounters of a pending key emit a residual call to the (not yet
/// finished) residual function, which is what makes loops in the residual
/// program.
///
/// Dynamic conditionals duplicate the continuation into both branches,
/// exactly as in Fig. 3's ev-dif rule.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SPEC_SPECIALIZER_H
#define PECOMP_SPEC_SPECIALIZER_H

#include "bta/AnnExpr.h"
#include "support/Casting.h"
#include "support/CoverageMap.h"
#include "support/Error.h"
#include "vm/Convert.h"
#include "vm/Prims.h"
#include "vm/Trap.h"

#include <functional>
#include <unordered_map>

namespace pecomp {
namespace spec {

/// Statistics exposed for the experiment harnesses.
struct SpecStats {
  size_t UnfoldedCalls = 0;
  size_t MemoizedCalls = 0;
  size_t ResidualFunctions = 0;
  size_t StaticPrims = 0;
  size_t ResidualPrims = 0;

  /// Folds this generation's statistics into \p M as graded CovSpecEvent
  /// features: each counter contributes one feature per magnitude bucket
  /// it reaches, so a program that makes the specializer unfold, memoize,
  /// or residualize an order of magnitude more than anything before it
  /// counts as new coverage. Returns how many features were new.
  size_t addCoverage(support::CoverageMap &M) const {
    const size_t Counters[] = {UnfoldedCalls, MemoizedCalls, ResidualFunctions,
                               StaticPrims, ResidualPrims};
    size_t New = 0;
    for (size_t C = 0; C != sizeof(Counters) / sizeof(Counters[0]); ++C)
      New += M.add(support::CovSpecEvent,
                   C * 64 + support::coverageBucket(Counters[C]));
    return New;
  }
};

struct SpecOptions {
  /// Maximum nesting of unfolded calls; exceeding it aborts specialization
  /// (the classic PE-termination safety net). Each unfolding level
  /// occupies several host stack frames (the specializer is written in
  /// continuation-passing style); the default is calibrated against the
  /// large specializer stack the PGG driver provides
  /// (support/LargeStack.h). Callers invoking the Specializer directly on
  /// an ordinary 8 MiB thread should lower this to ~800.
  uint32_t MaxUnfoldDepth = 50000;
  /// Maximum number of residual functions; exceeding it aborts — the
  /// other face of PE nontermination, where a static value evolves under
  /// dynamic control and every memo key is new.
  size_t MaxResidualFunctions = 20000;
  /// Maximum nesting of in-progress memo specializations (they occupy the
  /// host stack while their bodies specialize; same calibration as
  /// MaxUnfoldDepth).
  uint32_t MaxMemoDepth = 10000;
  /// Total specialization-step budget (0 = unlimited); exceeding it
  /// aborts. This is the guard the depth/count limits cannot provide:
  /// residualizing a dynamic conditional duplicates the continuation into
  /// both arms, so nested dynamic tests across unfolded calls can blow up
  /// residual code exponentially while unfold depth, memo nesting, and
  /// the residual function count all stay small.
  uint64_t MaxSpecSteps = 50'000'000;
};

template <typename B> class Specializer {
public:
  using Code = typename B::Code;

  Specializer(B &Builder, const bta::AnnProgram &P, vm::Heap &H,
              SpecOptions Opts = {})
      : Builder(Builder), P(P), H(H), Opts(Opts), Roots(H) {}

  /// Specializes the entry function. \p Args has one entry per parameter:
  /// an engaged value makes the parameter static, nullopt leaves it
  /// dynamic (a parameter of the residual function). Parameters the BTA
  /// classified static must receive values. Returns the residual entry
  /// function's name; the builder holds the residual program.
  Result<Symbol> specializeEntry(std::span<const std::optional<vm::Value>> Args) {
    const bta::AnnDefinition *Entry = P.find(P.Entry);
    assert(Entry && "BTA guaranteed the entry exists");
    if (Args.size() != Entry->Params.size())
      return makeError("expected " + std::to_string(Entry->Params.size()) +
                       " entry argument slot(s), got " +
                       std::to_string(Args.size()));

    // The common case — static values exactly for the static signature —
    // goes through the memo table, so recursive calls back to the entry
    // share this very specialization.
    bool MatchesSignature = true;
    for (size_t I = 0; I != Args.size(); ++I) {
      bool WantStatic = Entry->ParamBTs[I] == bta::BT::Static;
      if (WantStatic && !Args[I])
        return makeError("parameter '" + Entry->Params[I].str() +
                         "' is static in the division but no value was "
                         "supplied");
      if (!WantStatic && Args[I])
        MatchesSignature = false; // promotion of a dynamic parameter
    }

    Symbol Name;
    if (MatchesSignature) {
      std::vector<vm::Value> StaticVals;
      for (const auto &Arg : Args)
        if (Arg)
          StaticVals.push_back(Roots.protect(*Arg));
      Name = memoFunction(Entry, std::move(StaticVals));
    } else {
      Name = freshName(Entry->Name);
      Env E = nullptr;
      std::vector<Symbol> DynParams;
      for (size_t I = 0; I != Args.size(); ++I) {
        if (Args[I]) {
          E = bind(E, Entry->Params[I], staticValue(Roots.protect(*Args[I])));
        } else {
          Symbol Fresh = Symbol::fresh(Entry->Params[I].str());
          DynParams.push_back(Fresh);
          E = bind(E, Entry->Params[I], dynValue(Builder.variable(Fresh)));
        }
      }
      Code Body = specTail(Entry->Body, E);
      if (!Err)
        Builder.define(Name, DynParams, Body);
      ++Stats.ResidualFunctions;
    }

    if (Err)
      return *Err;
    return Name;
  }

  const SpecStats &stats() const { return Stats; }

private:
  // -- Specialization-time values ---------------------------------------------

  /// A value at specialization time: a static (ordinary runtime) value or
  /// a piece of residual code. Dynamic codes held here are always trivial
  /// (a variable, constant, or lambda) because serious residual code is
  /// let-bound on creation.
  struct SValue {
    bool IsStatic;
    vm::Value S;
    Code D;
  };

  static SValue staticValue(vm::Value V) { return {true, V, Code()}; }
  static SValue dynValue(Code C) { return {false, vm::Value(), std::move(C)}; }

  /// Coerces to residual code, lifting static values. The paper's `lift`
  /// is explicit in the annotations; this also covers values that became
  /// static through entry-parameter promotion.
  Code toCode(const SValue &V) {
    if (!V.IsStatic)
      return V.D;
    if (V.S.isObject() && (isa<vm::ClosureObject>(V.S.asObject()) ||
                           isa<vm::InterpClosureObject>(V.S.asObject()) ||
                           isa<vm::BoxObject>(V.S.asObject()))) {
      fail("cannot lift a procedure or box into residual code");
      return Builder.constant(vm::Value::nil());
    }
    return Builder.constant(V.S);
  }

  // -- Environments (persistent) -----------------------------------------------

  struct EnvNode {
    Symbol Name;
    SValue V;
    const EnvNode *Parent;
  };
  using Env = const EnvNode *;

  Env bind(Env E, Symbol Name, SValue V) {
    return EnvArena.create<EnvNode>(EnvNode{Name, std::move(V), E});
  }

  const SValue *lookup(Env E, Symbol Name) const {
    for (; E; E = E->Parent)
      if (E->Name == Name)
        return &E->V;
    return nullptr;
  }

  // -- Error handling -----------------------------------------------------------

  Code fail(std::string Message) {
    if (!Err)
      Err = Error(std::move(Message));
    return Builder.constant(vm::Value::nil());
  }

  // -- The specializer proper ----------------------------------------------------

  using K = std::function<Code(const SValue &)>;

  /// Final continuation: the expression's value becomes the residual body.
  Code specTail(const bta::AnnExpr *E, Env Rho) {
    return spec(E, Rho, [this](const SValue &V) { return toCode(V); });
  }

  Code spec(const bta::AnnExpr *E, Env Rho, const K &Kont) {
    // The heap governor's fault flag is sticky (vm/Heap.h): allocation
    // never physically fails, so a breached ceiling surfaces here, at the
    // next specialization step, and unwinds as a coded error.
    if (!Err && H.faulted())
      Err = vm::trapError(vm::TrapKind::HeapExhausted,
                          "heap exhausted during specialization: " +
                              H.faultMessage());
    if (Err)
      return Builder.constant(vm::Value::nil());
    if (Opts.MaxSpecSteps && ++StepsTaken > Opts.MaxSpecSteps)
      return fail("specialization step budget exceeded; probable residual "
                  "code explosion (dynamic conditionals duplicating their "
                  "continuation)");

    using bta::AnnExpr;
    switch (E->kind()) {
    case AnnExpr::Kind::Const: {
      vm::Value V =
          Roots.protect(vm::valueFromDatum(H, cast<bta::AConst>(E)->value()));
      return Kont(staticValue(V));
    }
    case AnnExpr::Kind::Var: {
      Symbol Name = cast<bta::AVar>(E)->name();
      const SValue *V = lookup(Rho, Name);
      if (!V)
        return fail("internal: unbound variable '" + Name.str() +
                    "' during specialization");
      return Kont(*V);
    }
    case AnnExpr::Kind::Lift:
      return spec(cast<bta::ALift>(E)->body(), Rho,
                  [this, &Kont](const SValue &V) {
                    return Kont(dynValue(toCode(V)));
                  });
    case AnnExpr::Kind::DLambda: {
      const auto *L = cast<bta::ADLambda>(E);
      std::vector<Symbol> Fresh;
      Env Inner = Rho;
      for (Symbol Param : L->params()) {
        Symbol FreshParam = Symbol::fresh(Param.str());
        Fresh.push_back(FreshParam);
        Inner = bind(Inner, Param, dynValue(Builder.variable(FreshParam)));
      }
      Code Body = specTail(L->body(), Inner);
      return Kont(dynValue(Builder.lambda(std::move(Fresh), Body)));
    }
    case AnnExpr::Kind::SLet:
    case AnnExpr::Kind::DLet: {
      // Fig. 3: S[(let (x E1) E2)] = λk. S[E1](λy. S[E2]ρ[y/x] k).
      // Serious dynamic initializers were already let-bound by the time y
      // arrives, so no residual let is needed here.
      const auto *L = cast<bta::ALetBase>(E);
      return spec(L->init(), Rho, [this, L, Rho, &Kont](const SValue &V) {
        return spec(L->body(), bind(Rho, L->name(), V), Kont);
      });
    }
    case AnnExpr::Kind::SIf: {
      const auto *I = cast<bta::ASIf>(E);
      return spec(I->test(), Rho, [this, I, Rho, &Kont](const SValue &V) {
        if (!V.IsStatic)
          return fail("internal: dynamic value in a static conditional");
        return V.S.isTruthy() ? spec(I->thenBranch(), Rho, Kont)
                              : spec(I->elseBranch(), Rho, Kont);
      });
    }
    case AnnExpr::Kind::DIf: {
      // ev-dif: the continuation is duplicated into both branches.
      const auto *I = cast<bta::ADIf>(E);
      return spec(I->test(), Rho, [this, I, Rho, &Kont](const SValue &V) {
        Code Test = toCode(V);
        Code Then = spec(I->thenBranch(), Rho, Kont);
        Code Else = spec(I->elseBranch(), Rho, Kont);
        return Builder.ifExpr(std::move(Test), std::move(Then),
                              std::move(Else));
      });
    }
    case AnnExpr::Kind::Beta: {
      const auto *Beta = cast<bta::ABeta>(E);
      return specArgs(Beta->args(), Rho, [this, Beta, Rho, &Kont](
                                             std::vector<SValue> Args) {
        Env Inner = Rho;
        for (size_t I = 0; I != Args.size(); ++I)
          Inner = bind(Inner, Beta->params()[I], std::move(Args[I]));
        return spec(Beta->body(), Inner, Kont);
      });
    }
    case AnnExpr::Kind::Unfold: {
      const auto *Call = cast<bta::AUnfold>(E);
      const bta::AnnDefinition *Callee = P.find(Call->callee());
      assert(Callee && "BTA resolved the callee");
      return specArgs(Call->args(), Rho, [this, Callee, &Kont](
                                             std::vector<SValue> Args) {
        if (Depth >= Opts.MaxUnfoldDepth)
          return fail("unfolding depth limit exceeded in '" +
                      Callee->Name.str() +
                      "'; probable static loop — mark the function as a "
                      "specialization point (ForceMemo)");
        ++Stats.UnfoldedCalls;
        ++Depth;
        Env Inner = nullptr; // function bodies see only their parameters
        for (size_t I = 0; I != Args.size(); ++I)
          Inner = bind(Inner, Callee->Params[I], std::move(Args[I]));
        Code Out = spec(Callee->Body, Inner, Kont);
        --Depth;
        return Out;
      });
    }
    case AnnExpr::Kind::Memo: {
      const auto *Call = cast<bta::AMemo>(E);
      const bta::AnnDefinition *Callee = P.find(Call->callee());
      assert(Callee && "BTA resolved the callee");
      return specArgs(Call->args(), Rho, [this, Callee, &Kont](
                                             std::vector<SValue> Args) {
        ++Stats.MemoizedCalls;
        std::vector<vm::Value> StaticVals;
        std::vector<Code> DynArgs;
        for (size_t I = 0; I != Args.size(); ++I) {
          if (Callee->ParamBTs[I] == bta::BT::Static) {
            if (!Args[I].IsStatic)
              return fail("internal: dynamic argument for static parameter "
                          "of '" +
                          Callee->Name.str() + "'");
            StaticVals.push_back(Args[I].S);
          } else {
            DynArgs.push_back(toCode(Args[I]));
          }
        }
        Symbol Target = memoFunction(Callee, std::move(StaticVals));
        return seriousBind(
            Builder.call(Builder.variable(Target), std::move(DynArgs)),
            Kont);
      });
    }
    case AnnExpr::Kind::DApp: {
      const auto *App = cast<bta::ADApp>(E);
      return spec(App->callee(), Rho, [this, App, Rho, &Kont](
                                          const SValue &CalleeV) {
        Code Callee = toCode(CalleeV);
        return specArgs(App->args(), Rho,
                        [this, Callee = std::move(Callee),
                         &Kont](std::vector<SValue> Args) {
                          std::vector<Code> ArgCodes;
                          for (SValue &Arg : Args)
                            ArgCodes.push_back(toCode(Arg));
                          return seriousBind(
                              Builder.call(Callee, std::move(ArgCodes)),
                              Kont);
                        });
      });
    }
    case AnnExpr::Kind::SPrim: {
      const auto *Prim = cast<bta::ASPrim>(E);
      return specArgs(Prim->args(), Rho, [this, Prim, &Kont](
                                             std::vector<SValue> Args) {
        std::vector<vm::Value> Vals;
        for (const SValue &Arg : Args) {
          if (!Arg.IsStatic)
            return fail("internal: dynamic argument to a static primitive");
          Vals.push_back(Arg.S);
        }
        Result<vm::Value> R = vm::applyPrim(Prim->op(), H, Vals);
        if (!R)
          return fail("specialization-time primitive failed: " +
                      R.error().message());
        ++Stats.StaticPrims;
        return Kont(staticValue(Roots.protect(*R)));
      });
    }
    case AnnExpr::Kind::DPrim: {
      const auto *Prim = cast<bta::ADPrim>(E);
      return specArgs(Prim->args(), Rho, [this, Prim, &Kont](
                                             std::vector<SValue> Args) {
        std::vector<Code> ArgCodes;
        for (SValue &Arg : Args)
          ArgCodes.push_back(toCode(Arg));
        ++Stats.ResidualPrims;
        return seriousBind(Builder.primApp(Prim->op(), std::move(ArgCodes)),
                           Kont);
      });
    }
    }
    return fail("internal: unknown annotated expression");
  }

  /// The let insertion of Fig. 3: wraps serious residual code in a let
  /// binding a fresh variable, which is what the continuation sees. (The
  /// builders collapse (let (t I) t) back to I in tail position.)
  Code seriousBind(Code Serious, const K &Kont) {
    Symbol T = Symbol::fresh("t");
    Code Rest = Kont(dynValue(Builder.variable(T)));
    return Builder.let(T, std::move(Serious), std::move(Rest));
  }

  /// CPS left-to-right evaluation of argument lists.
  Code specArgs(const std::vector<const bta::AnnExpr *> &Args, Env Rho,
                const std::function<Code(std::vector<SValue>)> &Done) {
    std::vector<SValue> Acc;
    return specArgsFrom(Args, 0, Rho, std::move(Acc), Done);
  }

  Code specArgsFrom(const std::vector<const bta::AnnExpr *> &Args,
                    size_t Index, Env Rho, std::vector<SValue> Acc,
                    const std::function<Code(std::vector<SValue>)> &Done) {
    if (Index == Args.size())
      return Done(std::move(Acc));
    // NOTE: continuations must be re-runnable — a dynamic conditional in
    // Args[Index] invokes this continuation once per branch — so the
    // accumulator is copied, never moved out of the closure.
    return spec(Args[Index], Rho,
                [this, &Args, Index, Rho, Acc = std::move(Acc),
                 &Done](const SValue &V) {
                  std::vector<SValue> Next = Acc;
                  Next.push_back(V);
                  return specArgsFrom(Args, Index + 1, Rho, std::move(Next),
                                      Done);
                });
  }

  // -- Memoization -----------------------------------------------------------

  struct MemoKey {
    Symbol Fn;
    std::vector<vm::Value> StaticArgs;

    bool operator==(const MemoKey &O) const {
      if (Fn != O.Fn || StaticArgs.size() != O.StaticArgs.size())
        return false;
      for (size_t I = 0; I != StaticArgs.size(); ++I)
        if (!vm::valueEquals(StaticArgs[I], O.StaticArgs[I]))
          return false;
      return true;
    }
  };

  /// Hashes memo keys. Static values are immutable, so structural hashes
  /// are cached by object identity: without this, every memo call re-walks
  /// the entire static input (e.g. the whole interpreted program), making
  /// specialization quadratic in program size.
  struct MemoKeyHash {
    Specializer *S;
    size_t operator()(const MemoKey &K) const {
      uint64_t H = K.Fn.id() * 0x9e3779b97f4a7c15ull;
      for (vm::Value V : K.StaticArgs)
        H = (H ^ S->cachedHash(V)) * 0x100000001b3ull;
      return static_cast<size_t>(H);
    }
  };

  uint64_t cachedHash(vm::Value V) {
    if (!V.isObject())
      return vm::valueHash(V);
    auto It = HashCache.find(V.raw());
    if (It != HashCache.end())
      return It->second;
    uint64_t H = vm::valueHash(V);
    HashCache.emplace(V.raw(), H);
    return H;
  }

  /// Names a residual function. Globally fresh so that several
  /// specializations (e.g. a generated compiler run on many programs) can
  /// be linked into one machine without global-name collisions; code
  /// equality across builder runs depends only on the order of global
  /// slot allocation, never on the names.
  Symbol freshName(Symbol Base) {
    return Symbol::fresh(Base.str() + "_" + std::to_string(++NameCounter));
  }

  /// Returns the residual function for (Fn, StaticVals), specializing the
  /// body the first time the key is seen. Registering the name before
  /// specializing the body ties recursive knots.
  Symbol memoFunction(const bta::AnnDefinition *D,
                      std::vector<vm::Value> StaticVals) {
    MemoKey Key{D->Name, std::move(StaticVals)};
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;

    if (Memo.size() >= Opts.MaxResidualFunctions) {
      fail("residual function limit exceeded while specializing '" +
           D->Name.str() +
           "'; probable unbounded static data under dynamic control");
      return Symbol::intern("$aborted");
    }
    if (MemoDepth >= Opts.MaxMemoDepth) {
      fail("memo nesting limit exceeded while specializing '" +
           D->Name.str() +
           "'; probable unbounded static data under dynamic control");
      return Symbol::intern("$aborted");
    }

    Symbol Name = freshName(D->Name);
    Memo.emplace(Key, Name);
    ++MemoDepth;

    Env E = nullptr;
    std::vector<Symbol> DynParams;
    size_t StaticIndex = 0;
    for (size_t I = 0; I != D->Params.size(); ++I) {
      if (D->ParamBTs[I] == bta::BT::Static) {
        E = bind(E, D->Params[I], staticValue(Key.StaticArgs[StaticIndex++]));
      } else {
        Symbol Fresh = Symbol::fresh(D->Params[I].str());
        DynParams.push_back(Fresh);
        E = bind(E, D->Params[I], dynValue(Builder.variable(Fresh)));
      }
    }
    Code Body = specTail(D->Body, E);
    --MemoDepth;
    if (!Err)
      Builder.define(Name, std::move(DynParams), std::move(Body));
    ++Stats.ResidualFunctions;
    return Name;
  }

  B &Builder;
  const bta::AnnProgram &P;
  vm::Heap &H;
  SpecOptions Opts;
  vm::RootScope Roots;
  Arena EnvArena;
  std::unordered_map<uint64_t, uint64_t> HashCache;
  std::unordered_map<MemoKey, Symbol, MemoKeyHash> Memo{
      0, MemoKeyHash{this}};
  SpecStats Stats;
  std::optional<Error> Err;
  uint32_t Depth = 0;
  uint32_t MemoDepth = 0;
  uint64_t StepsTaken = 0; ///< spec() invocations, against MaxSpecSteps
  uint64_t NameCounter = 0;
};

} // namespace spec
} // namespace pecomp

#endif // PECOMP_SPEC_SPECIALIZER_H
