//===- spec/SyntaxBuilder.cpp - Residual source builder --------------------===//

#include "spec/SyntaxBuilder.h"

#include "support/Casting.h"
#include "vm/Convert.h"

using namespace pecomp;
using namespace pecomp::spec;

SyntaxBuilder::Code SyntaxBuilder::constant(vm::Value V) {
  const Datum *D = vm::datumFromValue(DF, V);
  assert(D && "lifted a value with no external representation");
  return F.constant(D);
}

SyntaxBuilder::Code SyntaxBuilder::let(Symbol Var, Code Init, Code Body) {
  // Same peephole as CodeGenBuilder::let — (let (t I) t) collapses to I —
  // so the residual source compiles to exactly the fused builder's code.
  if (const auto *V = dyn_cast<VarExpr>(Body))
    if (V->name() == Var)
      return Init;
  return F.let(Var, Init, Body);
}

void SyntaxBuilder::define(Symbol Name, std::vector<Symbol> Params,
                           Code Body) {
  Out.Defs.push_back({Name, F.lambda(std::move(Params), Body)});
}
