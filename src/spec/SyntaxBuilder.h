//===- spec/SyntaxBuilder.h - Residual source builder -----------*- C++ -*-===//
///
/// \file
/// The ordinary residual-code builder: constructs residual *syntax* (ANF
/// Core Scheme), which can be printed, reloaded, and compiled separately —
/// the source-to-source partial evaluator of the paper's Fig. 3. The
/// specializer is a catamorphism parameterized over a builder; swapping
/// this builder for compiler::CodeGenBuilder is the paper's fusion.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SPEC_SYNTAXBUILDER_H
#define PECOMP_SPEC_SYNTAXBUILDER_H

#include "syntax/Expr.h"
#include "vm/Value.h"

namespace pecomp {
namespace spec {

class SyntaxBuilder {
public:
  using Code = const Expr *;

  /// Residual syntax is allocated in \p F's arena; lifted constants become
  /// datums in \p DF's arena.
  SyntaxBuilder(ExprFactory &F, DatumFactory &DF) : F(F), DF(DF) {}

  Code constant(vm::Value V);
  Code variable(Symbol Name) { return F.var(Name); }
  Code lambda(std::vector<Symbol> Params, Code Body) {
    return F.lambda(std::move(Params), Body);
  }
  Code let(Symbol Var, Code Init, Code Body);
  Code ifExpr(Code Test, Code Then, Code Else) {
    return F.ifExpr(Test, Then, Else);
  }
  Code call(Code Callee, std::vector<Code> Args) {
    return F.app(Callee, std::move(Args));
  }
  Code primApp(PrimOp Op, std::vector<Code> Args) {
    return F.primApp(Op, std::move(Args));
  }
  void define(Symbol Name, std::vector<Symbol> Params, Code Body);

  /// The finished residual program (ANF source).
  Program takeProgram() { return std::move(Out); }

private:
  ExprFactory &F;
  DatumFactory &DF;
  Program Out;
};

} // namespace spec
} // namespace pecomp

#endif // PECOMP_SPEC_SYNTAXBUILDER_H
