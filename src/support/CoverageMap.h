//===- support/CoverageMap.h - Feature-coverage accumulator -----*- C++ -*-===//
///
/// \file
/// A cheap coverage signal for the differential fuzzer: a set of 64-bit
/// *features*, each tagged with a small domain id so independent producers
/// (VM opcode/digram profiles, peephole rule counters, specializer
/// statistics, cache events, trap kinds) can share one map without key
/// collisions. The only question the fuzzer asks is "did this execution
/// light up anything new?" — add() answers it per feature, and a producer
/// returns how many of its features were new, which is the steering signal
/// for corpus retention and mutation scheduling.
///
/// Deliberately not instrumentation: producers derive features from
/// counters they already maintain (vm::Profile, compiler::PeepholeStats,
/// spec::SpecStats, pgg::CacheStats), so attaching a CoverageMap costs
/// nothing on the hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_COVERAGEMAP_H
#define PECOMP_SUPPORT_COVERAGEMAP_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace pecomp {
namespace support {

/// Feature domains. Values are stable (features may be persisted alongside
/// a corpus); add new domains at the end.
enum CoverageDomain : uint32_t {
  CovOpcode = 1,       ///< a byte opcode executed at least once
  CovDigram = 2,       ///< an opcode pair executed consecutively
  CovFusedOp = 3,      ///< a superinstruction's fast path executed
  CovTrapKind = 4,     ///< a trap class observed
  CovPeepholeRule = 5, ///< a peephole rewrite rule fired
  CovSpecEvent = 6,    ///< a specializer statistic reached a new magnitude
  CovCacheEvent = 7,   ///< a specialization-cache behavior occurred
  CovCustom = 15,      ///< consumer-defined features
};

/// log2-style magnitude bucket: 0 for 0, else 1 + floor(log2 N). Graded
/// counters (unfold depth, residual size) map each new order of magnitude
/// to a new feature, so "the specializer worked much harder than ever
/// before" counts as coverage.
inline uint32_t coverageBucket(uint64_t N) {
  uint32_t B = 0;
  while (N) {
    ++B;
    N >>= 1;
  }
  return B;
}

class CoverageMap {
public:
  /// Packs a domain tag and a key into one feature id.
  static constexpr uint64_t feature(uint32_t Domain, uint64_t Key) {
    return (static_cast<uint64_t>(Domain) << 56) ^
           (Key & ((uint64_t(1) << 56) - 1));
  }

  /// Records a feature; true iff it was not present before.
  bool add(uint64_t Feature) {
    ++Probes;
    return Set.insert(Feature).second;
  }
  bool add(uint32_t Domain, uint64_t Key) { return add(feature(Domain, Key)); }

  bool contains(uint32_t Domain, uint64_t Key) const {
    return Set.count(feature(Domain, Key)) != 0;
  }

  /// Distinct features seen so far.
  size_t features() const { return Set.size(); }
  /// Total add() calls (distinct or not).
  uint64_t probes() const { return Probes; }

  void clear() {
    Set.clear();
    Probes = 0;
  }

private:
  std::unordered_set<uint64_t> Set;
  uint64_t Probes = 0;
};

} // namespace support
} // namespace pecomp

#endif // PECOMP_SUPPORT_COVERAGEMAP_H
