//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
///
/// \file
/// A bump-pointer arena for AST nodes and other objects whose lifetime is
/// "the whole pipeline run". Objects allocated with create<T>() have their
/// destructors run when the arena is destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_ARENA_H
#define PECOMP_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace pecomp {

/// Chunked bump allocator. Not thread safe.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  ~Arena() {
    for (auto It = Dtors.rbegin(), E = Dtors.rend(); It != E; ++It)
      It->Destroy(It->Object);
  }

  /// Allocates raw storage with the given size and alignment.
  void *allocate(size_t Size, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t P = reinterpret_cast<uintptr_t>(Cursor);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      newChunk(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cursor);
      Aligned = (P + Align - 1) & ~(Align - 1);
    }
    Cursor = reinterpret_cast<char *>(Aligned + Size);
    BytesUsed += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in the arena; its destructor runs at arena teardown.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(CtorArgs)...);
    if constexpr (!std::is_trivially_destructible_v<T>)
      Dtors.push_back({Obj, [](void *P) { static_cast<T *>(P)->~T(); }});
    return Obj;
  }

  size_t bytesUsed() const { return BytesUsed; }

private:
  void newChunk(size_t AtLeast) {
    size_t Size = ChunkSize;
    while (Size < AtLeast)
      Size *= 2;
    Chunks.push_back(std::make_unique<char[]>(Size));
    Cursor = Chunks.back().get();
    End = Cursor + Size;
    ChunkSize = Size * 2 <= MaxChunkSize ? Size * 2 : MaxChunkSize;
  }

  struct DtorRecord {
    void *Object;
    void (*Destroy)(void *);
  };

  static constexpr size_t MaxChunkSize = 1 << 20;

  std::vector<std::unique_ptr<char[]>> Chunks;
  std::vector<DtorRecord> Dtors;
  char *Cursor = nullptr;
  char *End = nullptr;
  size_t ChunkSize = 4096;
  size_t BytesUsed = 0;
};

} // namespace pecomp

#endif // PECOMP_SUPPORT_ARENA_H
