//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
///
/// \file
/// A minimal reimplementation of LLVM's checked-cast templates. A class
/// hierarchy opts in by exposing a discriminator (typically a Kind enum via
/// getKind()) and providing a static classof(const Base *) predicate on each
/// derived class. This avoids C++ RTTI while keeping downcasts checked.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_CASTING_H
#define PECOMP_SUPPORT_CASTING_H

#include <cassert>

namespace pecomp {

/// Returns true if \p Val is an instance of To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(Val && "cast<> used on a null pointer");
  assert(To::classof(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return (Val && To::classof(Val)) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return (Val && To::classof(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace pecomp

#endif // PECOMP_SUPPORT_CASTING_H
