//===- support/LargeStack.h - Run work on a big-stack thread ----*- C++ -*-===//
///
/// \file
/// Runs a callable on a thread with a large stack. The specializer is
/// written in continuation-passing style, so its host-stack use grows
/// with unfolding depth and with chains of nested memo specializations;
/// legitimate workloads (compiling large interpreted programs) need far
/// more than the default 8 MiB thread stack. The depth guards in
/// spec::SpecOptions are calibrated against this stack size.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_LARGESTACK_H
#define PECOMP_SUPPORT_LARGESTACK_H

#include <functional>

namespace pecomp {

#ifndef __has_feature
#define __has_feature(x) 0
#endif

/// The stack size used by runOnLargeStack (virtual reserve; pages are
/// only committed as used). AddressSanitizer redzones inflate frame
/// sizes several-fold, so the reserve scales with instrumentation to
/// keep the depth guards' calibration valid.
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
constexpr size_t LargeStackBytes = size_t(2048) << 20;
#else
constexpr size_t LargeStackBytes = 512u << 20;
#endif

/// Invokes \p Work on a dedicated large-stack thread and waits for it.
/// Concurrent callers are serialized through one shared worker; services
/// that need parallel specialization run each of their workers as a
/// LargeStackThread instead.
void runOnLargeStackImpl(std::function<void()> Work);

/// A joinable thread whose stack is LargeStackBytes. The body counts as
/// being "on the large stack": nested runOnLargeStack calls (the PGG's
/// generators) run inline rather than bouncing to the shared worker, so
/// threads created this way can specialize in parallel.
class LargeStackThread {
public:
  /// Starts the thread; falls back to a plain default-stack thread if the
  /// large reserve cannot be set up (nested runOnLargeStack still runs
  /// inline — callers must size their depth guards accordingly there).
  explicit LargeStackThread(std::function<void()> Body);
  ~LargeStackThread() { join(); }
  LargeStackThread(const LargeStackThread &) = delete;
  LargeStackThread &operator=(const LargeStackThread &) = delete;

  /// Waits for the body to return. Idempotent.
  void join();

private:
  struct State;
  State *S = nullptr; // owned until join
};

/// Typed wrapper: returns Work()'s result.
template <typename F> auto runOnLargeStack(F &&Work) {
  using R = decltype(Work());
  alignas(R) unsigned char Storage[sizeof(R)];
  R *Slot = reinterpret_cast<R *>(Storage);
  runOnLargeStackImpl([&] { new (Slot) R(Work()); });
  R Out = std::move(*Slot);
  Slot->~R();
  return Out;
}

} // namespace pecomp

#endif // PECOMP_SUPPORT_LARGESTACK_H
