//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
///
/// \file
/// A 1-based line/column source position; line 0 means "no location".
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_SOURCELOC_H
#define PECOMP_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace pecomp {

struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }
};

} // namespace pecomp

#endif // PECOMP_SUPPORT_SOURCELOC_H
