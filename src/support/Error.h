//===- support/Error.h - Recoverable error handling -------------*- C++ -*-===//
///
/// \file
/// Exception-free recoverable error handling. Library code that can fail on
/// user input (the reader, the front end, the BTA) returns Result<T>; code
/// that can only fail on programmer error asserts instead.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_ERROR_H
#define PECOMP_SUPPORT_ERROR_H

#include "support/SourceLoc.h"

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pecomp {

/// A diagnostic attached to an optional source location.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message) : Message(std::move(Message)) {}
  Error(std::string Message, SourceLoc Loc)
      : Message(std::move(Message)), Loc(Loc) {}

  const std::string &message() const { return Message; }
  SourceLoc loc() const { return Loc; }

  /// Machine-readable error class. 0 means "unclassified"; the VM stores
  /// its vm::TrapKind here and the reference evaluator mirrors it, so
  /// differential tests can assert that both engines fail the same way
  /// without parsing messages.
  int code() const { return Code; }
  Error &setCode(int C) {
    Code = C;
    return *this;
  }

  /// Renders "line:col: message" (or just the message without a location).
  std::string render() const {
    if (!Loc.isValid())
      return Message;
    return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column) + ": " +
           Message;
  }

private:
  std::string Message;
  SourceLoc Loc;
  int Code = 0;
};

/// Either a value or an Error. Callers must check ok() (or operator bool)
/// before dereferencing.
template <typename T> class Result {
public:
  Result(T Value) : Storage(std::move(Value)) {}
  Result(Error E) : Storage(std::move(E)) {}

  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(ok() && "Result::value() on error");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(ok() && "Result::value() on error");
    return std::get<T>(Storage);
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  const Error &error() const {
    assert(!ok() && "Result::error() on success");
    return std::get<Error>(Storage);
  }
  Error takeError() {
    assert(!ok() && "Result::takeError() on success");
    return std::move(std::get<Error>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Convenience constructor mirroring createStringError.
inline Error makeError(std::string Message, SourceLoc Loc = SourceLoc()) {
  return Error(std::move(Message), Loc);
}

} // namespace pecomp

#endif // PECOMP_SUPPORT_ERROR_H
