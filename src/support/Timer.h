//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
///
/// \file
/// Minimal wall-clock timer used by the PGG driver and the experiment
/// harnesses to report per-phase times (BTA / Load / Generate / Compile,
/// matching the columns of the paper's Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SUPPORT_TIMER_H
#define PECOMP_SUPPORT_TIMER_H

#include <chrono>

namespace pecomp {

class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace pecomp

#endif // PECOMP_SUPPORT_TIMER_H
