//===- support/LargeStack.cpp - Run work on a big-stack thread ------------===//

#include "support/LargeStack.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <pthread.h>

using namespace pecomp;

namespace {

/// True while executing on the large-stack worker; nested uses run
/// inline (the PGG's generators may be invoked from code that is already
/// on the worker, e.g. a benchmark loop timing many generator runs).
thread_local bool OnWorkerThread = false;

/// One persistent worker with a large stack: thread creation is paid once
/// per process, so per-specialization overhead is a mutex round trip (the
/// experiment harnesses time individual generator runs). Tasks run
/// strictly one at a time. The state is intentionally leaked so the
/// detached worker never races static destruction at exit.
struct Worker {
  std::mutex M;
  std::condition_variable Cv;
  std::function<void()> *Task = nullptr; // null = idle
  bool Done = false;

  static void *loop(void *Arg) {
    auto *W = static_cast<Worker *>(Arg);
    OnWorkerThread = true;
    std::unique_lock<std::mutex> Lock(W->M);
    for (;;) {
      W->Cv.wait(Lock, [&] { return W->Task != nullptr; });
      (*W->Task)();
      W->Task = nullptr;
      W->Done = true;
      W->Cv.notify_all();
    }
    return nullptr;
  }

  /// Starts the worker; null on failure (caller falls back to its own
  /// stack, where the conservative guards still apply).
  static Worker *start() {
    pthread_attr_t Attr;
    if (pthread_attr_init(&Attr) != 0)
      return nullptr;
    if (pthread_attr_setstacksize(&Attr, LargeStackBytes) != 0) {
      pthread_attr_destroy(&Attr);
      return nullptr;
    }
    auto *W = new Worker;
    pthread_t Thread;
    if (pthread_create(&Thread, &Attr, loop, W) != 0) {
      pthread_attr_destroy(&Attr);
      delete W;
      return nullptr;
    }
    pthread_detach(Thread);
    pthread_attr_destroy(&Attr);
    return W;
  }

  void run(std::function<void()> &Work) {
    // One caller at a time: without this, a second caller could overwrite
    // Task while the first waits for Done, and both would then observe the
    // second task's completion — the first task silently never runs.
    std::lock_guard<std::mutex> Serial(CallerM);
    std::unique_lock<std::mutex> Lock(M);
    Task = &Work;
    Done = false;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Done; });
  }

private:
  std::mutex CallerM;
};

} // namespace

void pecomp::runOnLargeStackImpl(std::function<void()> Work) {
  if (OnWorkerThread) {
    Work();
    return;
  }
  static Worker *W = Worker::start();
  if (!W) {
    Work();
    return;
  }
  W->run(Work);
}

struct LargeStackThread::State {
  std::function<void()> Body;
  pthread_t Thread;

  static void *entry(void *Arg) {
    auto *S = static_cast<State *>(Arg);
    OnWorkerThread = true; // nested runOnLargeStack runs inline
    S->Body();
    return nullptr;
  }
};

LargeStackThread::LargeStackThread(std::function<void()> Body) {
  auto *St = new State{std::move(Body), {}};
  pthread_attr_t Attr;
  bool HaveAttr = pthread_attr_init(&Attr) == 0;
  if (HaveAttr)
    (void)pthread_attr_setstacksize(&Attr, LargeStackBytes);
  int Rc = pthread_create(&St->Thread, HaveAttr ? &Attr : nullptr,
                          State::entry, St);
  if (HaveAttr)
    pthread_attr_destroy(&Attr);
  if (Rc != 0) {
    // Could not start even a default thread; run the body synchronously
    // so the caller's control flow still happens exactly once.
    St->Body();
    delete St;
    return;
  }
  S = St;
}

void LargeStackThread::join() {
  if (!S)
    return;
  pthread_join(S->Thread, nullptr);
  delete S;
  S = nullptr;
}
