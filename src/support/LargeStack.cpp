//===- support/LargeStack.cpp - Run work on a big-stack thread ------------===//

#include "support/LargeStack.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <pthread.h>

using namespace pecomp;

namespace {

/// True while executing on the large-stack worker; nested uses run
/// inline (the PGG's generators may be invoked from code that is already
/// on the worker, e.g. a benchmark loop timing many generator runs).
thread_local bool OnWorkerThread = false;

/// One persistent worker with a large stack: thread creation is paid once
/// per process, so per-specialization overhead is a mutex round trip (the
/// experiment harnesses time individual generator runs). Tasks run
/// strictly one at a time. The state is intentionally leaked so the
/// detached worker never races static destruction at exit.
struct Worker {
  std::mutex M;
  std::condition_variable Cv;
  std::function<void()> *Task = nullptr; // null = idle
  bool Done = false;

  static void *loop(void *Arg) {
    auto *W = static_cast<Worker *>(Arg);
    OnWorkerThread = true;
    std::unique_lock<std::mutex> Lock(W->M);
    for (;;) {
      W->Cv.wait(Lock, [&] { return W->Task != nullptr; });
      (*W->Task)();
      W->Task = nullptr;
      W->Done = true;
      W->Cv.notify_all();
    }
    return nullptr;
  }

  /// Starts the worker; null on failure (caller falls back to its own
  /// stack, where the conservative guards still apply).
  static Worker *start() {
    pthread_attr_t Attr;
    if (pthread_attr_init(&Attr) != 0)
      return nullptr;
    if (pthread_attr_setstacksize(&Attr, LargeStackBytes) != 0) {
      pthread_attr_destroy(&Attr);
      return nullptr;
    }
    auto *W = new Worker;
    pthread_t Thread;
    if (pthread_create(&Thread, &Attr, loop, W) != 0) {
      pthread_attr_destroy(&Attr);
      delete W;
      return nullptr;
    }
    pthread_detach(Thread);
    pthread_attr_destroy(&Attr);
    return W;
  }

  void run(std::function<void()> &Work) {
    std::unique_lock<std::mutex> Lock(M);
    Task = &Work;
    Done = false;
    Cv.notify_all();
    Cv.wait(Lock, [&] { return Done; });
  }
};

} // namespace

void pecomp::runOnLargeStackImpl(std::function<void()> Work) {
  if (OnWorkerThread) {
    Work();
    return;
  }
  static Worker *W = Worker::start();
  if (!W) {
    Work();
    return;
  }
  W->run(Work);
}
