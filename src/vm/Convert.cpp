//===- vm/Convert.cpp - Datum/value conversion ----------------------------===//

#include "vm/Convert.h"

#include "support/Casting.h"

using namespace pecomp;
using namespace pecomp::vm;

Value vm::valueFromDatum(Heap &H, const Datum *D) {
  switch (D->kind()) {
  case Datum::Kind::Fixnum:
    return Value::fixnum(cast<FixnumDatum>(D)->value());
  case Datum::Kind::Boolean:
    return Value::boolean(cast<BooleanDatum>(D)->value());
  case Datum::Kind::Symbol:
    return Value::symbol(cast<SymbolDatum>(D)->symbol());
  case Datum::Kind::String:
    return H.string(cast<StringDatum>(D)->value());
  case Datum::Kind::Char:
    return Value::character(cast<CharDatum>(D)->value());
  case Datum::Kind::Nil:
    return Value::nil();
  case Datum::Kind::Pair: {
    const auto *P = cast<PairDatum>(D);
    RootScope Scope(H);
    Value &Car = Scope.protect(valueFromDatum(H, P->car()));
    Value Cdr = valueFromDatum(H, P->cdr());
    return H.pair(Car, Cdr);
  }
  }
  return Value::unspecified();
}

const Datum *vm::datumFromValue(DatumFactory &F, Value V) {
  if (V.isFixnum())
    return F.fixnum(V.asFixnum());
  if (V.isBoolean())
    return F.boolean(V.asBoolean());
  if (V.isSymbol())
    return F.symbol(V.asSymbol());
  if (V.isChar())
    return F.charDatum(V.asChar());
  if (V.isNil())
    return F.nil();
  if (V.isObject()) {
    HeapObject *O = V.asObject();
    if (auto *S = dyn_cast<StringObject>(O))
      return F.string(S->Text);
    if (auto *P = dyn_cast<PairObject>(O)) {
      const Datum *Car = datumFromValue(F, P->Car);
      const Datum *Cdr = datumFromValue(F, P->Cdr);
      if (!Car || !Cdr)
        return nullptr;
      return F.pair(Car, Cdr);
    }
  }
  return nullptr;
}
