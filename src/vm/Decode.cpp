//===- vm/Decode.cpp - Pre-decoding byte code into fixed-width insns ------===//
///
/// \file
/// Builds the DecodedStream cache the fast dispatch loop runs on. The
/// decoder is deliberately strict: any irregularity that the byte
/// interpreter would (or might) turn into a trap — unknown opcode,
/// truncated operands, a jump into the middle of an instruction, a
/// static index past its table, control flow that can fall off the end —
/// makes the whole code object a Fallback, and the machine keeps running
/// it through the original byte loop so trap kind, faulting PC, and
/// opcode stay byte-for-byte identical to the seed interpreter.
///
/// Fuel/profile audit of the tier seams (bytes ↔ decoded ↔ native). The
/// accounting invariant across every hand-off is "charge exactly once,
/// at the loop that actually executes the instruction":
///
///  - byte ↔ decoded: a Fallback object never has a DecodedStream, so a
///    frame is owned by exactly one loop for its whole lifetime; the
///    bounce in Machine::run() transfers at call/return boundaries where
///    the departing loop has fully charged its last instruction and the
///    arriving loop starts at a fresh PC. No instruction is visible to
///    both loops.
///  - decoded/fused ↔ native: the JIT charges fuel, ES.Executed, and the
///    per-opcode profile row together, per *source* instruction, as each
///    one retires. The only mid-block exits are trapping call-outs
///    (which charged the trapping instruction exactly as the decoded
///    loop would have) and the block-entry fuel check, which bails
///    *before executing anything* with nothing charged (JitExit::Bail in
///    Jit.cpp). The bailed block is re-run by the decoded loop from its
///    leader under the JitSkipOnce latch, charging fuel and OpCount per
///    instruction up to the exact fuel trap — so a bailout can neither
///    double-charge fuel for instructions the native block "almost ran"
///    nor skip the profile counter for the re-executed ones. JitTest's
///    fuel sweeps pin this down instruction-by-instruction.
///
//===----------------------------------------------------------------------===//

#include "vm/Code.h"
#include "vm/Prims.h"

using namespace pecomp;
using namespace pecomp::vm;

const char *pecomp::vm::opMnemonic(Op O) {
  switch (O) {
  case Op::Const:
    return "Const";
  case Op::LocalRef:
    return "LocalRef";
  case Op::FreeRef:
    return "FreeRef";
  case Op::GlobalRef:
    return "GlobalRef";
  case Op::MakeClosure:
    return "MakeClosure";
  case Op::Call:
    return "Call";
  case Op::TailCall:
    return "TailCall";
  case Op::Return:
    return "Return";
  case Op::Jump:
    return "Jump";
  case Op::JumpIfFalse:
    return "JumpIfFalse";
  case Op::Prim:
    return "Prim";
  case Op::Slide:
    return "Slide";
  case Op::Halt:
    return "Halt";
  case Op::JumpIfTrue:
    return "JumpIfTrue";
  case Op::FuseLocalLocalPrim:
    return "Local+Local+Prim";
  case Op::FuseConstPrim:
    return "Const+Prim";
  case Op::FuseLocalPrim:
    return "Local+Prim";
  case Op::FuseCmpJumpIfFalse:
    return "Prim+JumpIfFalse";
  case Op::FuseLocalReturn:
    return "Local+Return";
  case Op::FusePrimReturn:
    return "Prim+Return";
  }
  return "?";
}

namespace {

/// Whether control never falls through to the next byte offset.
bool isTerminator(Op O) {
  return O == Op::Jump || O == Op::Return || O == Op::TailCall ||
         O == Op::Halt;
}

/// Prims whose Prim+JumpIfFalse sequences fuse: pure predicates that
/// cannot allocate, so the fused handler's fault surface matches the
/// unfused pair exactly (the check is kept anyway, but the restriction
/// keeps the fusion aligned with the "compare feeding a branch" idiom).
bool isPredicatePrim(PrimOp P) {
  switch (P) {
  case PrimOp::NumEq:
  case PrimOp::Lt:
  case PrimOp::Gt:
  case PrimOp::Le:
  case PrimOp::Ge:
  case PrimOp::EqP:
  case PrimOp::EqualP:
  case PrimOp::ZeroP:
  case PrimOp::NullP:
  case PrimOp::PairP:
  case PrimOp::Not:
  case PrimOp::NumberP:
  case PrimOp::SymbolP:
  case PrimOp::BooleanP:
  case PrimOp::ProcedureP:
    return true;
  default:
    return false;
  }
}

/// Builds DS.Fused: a greedy left-to-right scan over the decoded stream
/// patching superinstruction opcodes over the heads of recognized idioms.
/// A fusion is taken only when every non-head constituent stays inside
/// the head's basic block — no jump target and no call-return resume
/// point may land mid-fusion (conservative: constituents keep their
/// original entries, but the rule keeps every entry point a sequence
/// head). Widest pattern wins at each position; fusions never overlap.
void selectFusions(DecodedStream &DS) {
  const size_t N = DS.Insns.size();

  // Entry points: the function start, every jump target, and every Call's
  // fall-through (a Return resumes there).
  std::vector<bool> IsEntry(N, false);
  if (N)
    IsEntry[0] = true;
  for (const DecodedInsn &I : DS.Insns) {
    if (I.Target >= 0)
      IsEntry[static_cast<size_t>(I.Target)] = true;
    if (I.Opcode == Op::Call)
      IsEntry[DS.indexOf(I.NextPC)] = true;
  }

  auto OpAt = [&](size_t I) { return DS.Insns[I].Opcode; };
  bool Any = false;
  std::vector<Op> Head(N, Op::Halt);
  std::vector<bool> HasHead(N, false);
  size_t I = 0;
  while (I < N) {
    size_t Width = 1;
    Op F = Op::Halt;
    if (OpAt(I) == Op::LocalRef) {
      if (I + 2 < N && OpAt(I + 1) == Op::LocalRef &&
          OpAt(I + 2) == Op::Prim && DS.Insns[I + 2].B == 2 &&
          !IsEntry[I + 1] && !IsEntry[I + 2]) {
        F = Op::FuseLocalLocalPrim;
        Width = 3;
      } else if (I + 1 < N && OpAt(I + 1) == Op::Prim &&
                 DS.Insns[I + 1].B <= 2 && !IsEntry[I + 1]) {
        F = Op::FuseLocalPrim;
        Width = 2;
      } else if (I + 1 < N && OpAt(I + 1) == Op::Return && !IsEntry[I + 1]) {
        F = Op::FuseLocalReturn;
        Width = 2;
      }
    } else if (OpAt(I) == Op::Const) {
      if (I + 1 < N && OpAt(I + 1) == Op::Prim &&
          DS.Insns[I + 1].B <= 2 && !IsEntry[I + 1]) {
        F = Op::FuseConstPrim;
        Width = 2;
      }
    } else if (OpAt(I) == Op::Prim) {
      if (I + 1 < N && OpAt(I + 1) == Op::JumpIfFalse && !IsEntry[I + 1] &&
          isPredicatePrim(static_cast<PrimOp>(DS.Insns[I].C))) {
        F = Op::FuseCmpJumpIfFalse;
        Width = 2;
      } else if (I + 1 < N && OpAt(I + 1) == Op::Return && !IsEntry[I + 1]) {
        F = Op::FusePrimReturn;
        Width = 2;
      }
    }
    if (Width > 1) {
      Head[I] = F;
      HasHead[I] = true;
      Any = true;
    }
    I += Width;
  }

  if (!Any)
    return; // Fused stays empty; the machine runs Insns either way

  DS.Fused = DS.Insns;
  for (size_t K = 0; K != N; ++K)
    if (HasHead[K])
      DS.Fused[K].Opcode = Head[K]; // SrcOp keeps the source opcode
}

/// One linear decoding pass; returns null on any irregularity.
std::unique_ptr<DecodedStream> decodeLinear(const CodeObject &C) {
  const std::vector<uint8_t> &Code = C.code();
  // The empty code object traps PcOutOfRange on its first dispatch.
  if (Code.empty())
    return nullptr;

  auto DS = std::make_unique<DecodedStream>();
  DS->ByteToIndex.assign(Code.size() + 1, -1);

  size_t PC = 0;
  while (PC < Code.size()) {
    Op O = static_cast<Op>(Code[PC]);
    DecodedInsn I;
    I.Opcode = O;
    I.SrcOp = O;
    I.PC = static_cast<uint32_t>(PC);

    size_t OperandBytes;
    switch (O) {
    case Op::Const:
    case Op::LocalRef:
    case Op::FreeRef:
    case Op::GlobalRef:
    case Op::Slide:
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      OperandBytes = 2;
      break;
    case Op::MakeClosure:
      OperandBytes = 4;
      break;
    case Op::Call:
    case Op::TailCall:
    case Op::Prim:
      OperandBytes = 1;
      break;
    case Op::Return:
    case Op::Halt:
      OperandBytes = 0;
      break;
    default:
      return nullptr; // unknown opcode
    }
    if (PC + 1 + OperandBytes > Code.size())
      return nullptr; // truncated operands

    auto U16At = [&](size_t Off) {
      return static_cast<uint16_t>(Code[Off] | (Code[Off + 1] << 8));
    };
    switch (OperandBytes) {
    case 1:
      I.C = Code[PC + 1];
      break;
    case 2:
      I.A = U16At(PC + 1);
      break;
    case 4:
      I.A = U16At(PC + 1);
      I.B = U16At(PC + 3);
      break;
    default:
      break;
    }

    // Validate the static indices the byte loop checks per execution, so
    // the fast loop can index the tables unchecked.
    switch (O) {
    case Op::Const:
      if (I.A >= C.literals().size())
        return nullptr;
      break;
    case Op::MakeClosure:
      if (I.A >= C.children().size())
        return nullptr;
      break;
    case Op::Prim:
      if (I.C >= NumPrimOps)
        return nullptr;
      I.B = static_cast<uint16_t>(primArity(static_cast<PrimOp>(I.C)));
      break;
    default:
      break;
    }

    PC += 1 + OperandBytes;
    I.NextPC = static_cast<uint32_t>(PC);
    // Falling off the end is a PcOutOfRange trap at the next dispatch in
    // the byte loop; the fast loop has no pc-range check, so such code
    // stays on the byte interpreter.
    if (!isTerminator(O) && I.NextPC >= Code.size())
      return nullptr;

    DS->ByteToIndex[I.PC] = static_cast<int32_t>(DS->Insns.size());
    DS->Insns.push_back(I);
  }

  // Resolve jump targets now that every instruction boundary is known.
  for (DecodedInsn &I : DS->Insns) {
    if (I.Opcode != Op::Jump && I.Opcode != Op::JumpIfFalse &&
        I.Opcode != Op::JumpIfTrue)
      continue;
    int64_t Target = static_cast<int64_t>(I.NextPC) +
                     static_cast<int16_t>(I.A);
    if (Target < 0 || Target >= static_cast<int64_t>(Code.size()))
      return nullptr; // wild jump: byte loop traps PcOutOfRange
    int32_t Index = DS->ByteToIndex[static_cast<size_t>(Target)];
    if (Index < 0)
      return nullptr; // mid-instruction target: only the byte loop can run it
    I.Target = Index;
  }

  selectFusions(*DS);
  return DS;
}

} // namespace

const DecodedStream *CodeObject::decoded() const {
  if (DState == DecodeState::Unknown) {
    Decoded = decodeLinear(*this);
    DState = Decoded ? DecodeState::Ready : DecodeState::Fallback;
  }
  return Decoded.get();
}
