//===- vm/Code.cpp - Byte code objects ------------------------------------===//

#include "vm/Code.h"

#include "syntax/Primitives.h"

using namespace pecomp;
using namespace pecomp::vm;

namespace {

uint16_t readU16(const std::vector<uint8_t> &Code, size_t &PC) {
  uint16_t V = static_cast<uint16_t>(Code[PC] | (Code[PC + 1] << 8));
  PC += 2;
  return V;
}

int16_t readI16(const std::vector<uint8_t> &Code, size_t &PC) {
  return static_cast<int16_t>(readU16(Code, PC));
}

void disassembleInto(const CodeObject *C, std::string &Out,
                     const std::string &Label) {
  Out += Label + " " + (C->name().empty() ? "<anonymous>" : C->name()) +
         " (arity " + std::to_string(C->arity()) + ")\n";
  const std::vector<uint8_t> &Code = C->code();
  size_t PC = 0;
  while (PC < Code.size()) {
    size_t At = PC;
    Op O = static_cast<Op>(Code[PC++]);
    Out += "  " + std::to_string(At) + ": ";
    switch (O) {
    case Op::Const: {
      uint16_t I = readU16(Code, PC);
      Out += "const " + std::to_string(I) + " ; " +
             valueToString(C->literals()[I]);
      break;
    }
    case Op::LocalRef:
      Out += "local " + std::to_string(readU16(Code, PC));
      break;
    case Op::FreeRef:
      Out += "free " + std::to_string(readU16(Code, PC));
      break;
    case Op::GlobalRef:
      Out += "global " + std::to_string(readU16(Code, PC));
      break;
    case Op::MakeClosure: {
      uint16_t Child = readU16(Code, PC);
      uint16_t N = readU16(Code, PC);
      Out += "closure child=" + std::to_string(Child) +
             " captures=" + std::to_string(N);
      break;
    }
    case Op::Call:
      Out += "call " + std::to_string(Code[PC++]);
      break;
    case Op::TailCall:
      Out += "tail-call " + std::to_string(Code[PC++]);
      break;
    case Op::Return:
      Out += "return";
      break;
    case Op::Jump: {
      int16_t Off = readI16(Code, PC);
      Out += "jump " + std::to_string(static_cast<long>(PC) + Off);
      break;
    }
    case Op::JumpIfFalse: {
      int16_t Off = readI16(Code, PC);
      Out += "jump-if-false " + std::to_string(static_cast<long>(PC) + Off);
      break;
    }
    case Op::JumpIfTrue: {
      int16_t Off = readI16(Code, PC);
      Out += "jump-if-true " + std::to_string(static_cast<long>(PC) + Off);
      break;
    }
    case Op::Prim:
      Out += std::string("prim ") + primName(static_cast<PrimOp>(Code[PC++]));
      break;
    case Op::Slide:
      Out += "slide " + std::to_string(readU16(Code, PC));
      break;
    case Op::Halt:
      Out += "halt";
      break;
    default:
      // Not a byte opcode (fused superinstructions live only in decoded
      // streams); stop rather than misread operand bytes.
      Out += "??? " + std::to_string(static_cast<unsigned>(O)) + "\n";
      return;
    }
    Out.push_back('\n');
  }
  for (size_t I = 0; I != C->children().size(); ++I)
    disassembleInto(C->children()[I], Out,
                    Label + "." + std::to_string(I));
}

} // namespace

std::string CodeObject::disassemble() const {
  std::string Out;
  disassembleInto(this, Out, "code");
  return Out;
}

bool vm::codeEquals(const CodeObject *A, const CodeObject *B) {
  if (A == B)
    return true;
  if (A->arity() != B->arity() || A->code() != B->code() ||
      A->literals().size() != B->literals().size() ||
      A->children().size() != B->children().size())
    return false;
  for (size_t I = 0, E = A->literals().size(); I != E; ++I)
    if (!valueEquals(A->literals()[I], B->literals()[I]))
      return false;
  for (size_t I = 0, E = A->children().size(); I != E; ++I)
    if (!codeEquals(A->children()[I], B->children()[I]))
      return false;
  return true;
}
