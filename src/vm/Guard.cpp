//===- vm/Guard.cpp - Guarded dispatch to specialized variants ------------===//

#include "vm/Guard.h"

#include "vm/Profile.h"

using namespace pecomp;
using namespace pecomp::vm;

bool pecomp::vm::guardsHold(const GuardPlan &P, std::span<const Value> Args) {
  for (size_t I = 0; I != P.Slots.size(); ++I) {
    if (P.Slots[I] >= Args.size())
      return false;
    if (!valueEquals(Args[P.Slots[I]], P.Expected[I]))
      return false;
  }
  return true;
}

std::vector<Value> pecomp::vm::residualArgs(const GuardPlan &P,
                                            std::span<const Value> Args) {
  std::vector<Value> Out;
  Out.reserve(Args.size() - std::min(Args.size(), P.Slots.size()));
  size_t Next = 0; // next guarded-slot cursor (Slots is sorted)
  for (size_t I = 0; I != Args.size(); ++I) {
    if (Next < P.Slots.size() && P.Slots[Next] == I) {
      ++Next;
      continue;
    }
    Out.push_back(Args[I]);
  }
  return Out;
}

Result<Value> pecomp::vm::callGuarded(Machine &M, Value Specialized,
                                      const GuardPlan &P, Value Generic,
                                      std::span<const Value> Args, bool *Hit) {
  const bool Held = guardsHold(P, Args);
  if (Hit)
    *Hit = Held;
  if (Profile *Prof = M.profile())
    satInc(Held ? Prof->GuardHits : Prof->GuardMisses);
  if (!Held)
    return M.call(Generic, Args);
  std::vector<Value> Rest = residualArgs(P, Args);
  return M.call(Specialized, Rest);
}
