//===- vm/Profile.h - VM execution profiling --------------------*- C++ -*-===//
///
/// \file
/// A cheap observability surface for the machine: per-opcode execution
/// counters and per-phase wall-clock attribution (decode vs. run). In the
/// vocabulary of the paper's Figure 8, Decode is part of our "Compile"
/// column (done once per code object, at link time or first execution)
/// and Exec is the run of the compiled program — the profile makes the
/// "two for the price of one" claim measurable at the instruction level:
/// which opcodes the residual program actually spends its dispatches on.
///
/// Profiling is opt-in (Machine::setProfile) and pay-as-you-go: with no
/// profile attached the fast loop instantiates a counter-free template,
/// so the default configuration spends zero cycles on it.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_PROFILE_H
#define PECOMP_VM_PROFILE_H

#include "support/CoverageMap.h"
#include "vm/Code.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pecomp {
namespace vm {

struct Profile {
  /// Row index of PairCount for "no previous opcode" (start of a dispatch
  /// run: call entry, or resuming after a bounce between loops).
  static constexpr size_t PairStart = NumOpcodes;

  /// Executed-instruction count per opcode (fast and byte loop alike).
  /// Fused superinstructions are attributed to their *source* opcodes, so
  /// the counts are dispatch-strategy independent.
  std::array<uint64_t, NumOpcodes> OpCount{};
  /// Opcode-pair (digram) counters over consecutively executed source
  /// opcodes: PairCount[prev * NumOpcodes + cur]. Row PairStart counts
  /// first-of-run opcodes. The digram profile is what justifies (and
  /// tunes) the superinstruction set — see topPairs().
  std::array<uint64_t, (NumOpcodes + 1) * NumOpcodes> PairCount{};
  /// Executions of each fused superinstruction's fast path, indexed by
  /// Op value minus NumOpcodes (escapes to the unfused path — fuel
  /// boundary — are not counted here; their constituents still land in
  /// OpCount/PairCount either way).
  std::array<uint64_t, NumFusedOps> FusedCount{};
  /// Completed Machine::call invocations, and how many of them trapped.
  uint64_t Calls = 0;
  uint64_t Traps = 0;
  /// Wall-clock attribution: building DecodedStreams vs. running code.
  uint64_t DecodeNanos = 0;
  uint64_t ExecNanos = 0;

  uint64_t instructions() const {
    uint64_t N = 0;
    for (uint64_t C : OpCount)
      N += C;
    return N;
  }

  uint64_t fusedExecutions() const {
    uint64_t N = 0;
    for (uint64_t C : FusedCount)
      N += C;
    return N;
  }

  /// One executed-digram row: Prev -> Cur happened Count times.
  struct OpPair {
    Op Prev;
    Op Cur;
    uint64_t Count;
  };

  /// The \p N most frequent executed opcode pairs, descending (ties in
  /// row-major order); start-of-run sentinel rows excluded. Fewer than
  /// \p N entries when fewer distinct pairs executed.
  std::vector<OpPair> topPairs(size_t N) const;

  void reset() { *this = Profile(); }

  /// Folds this profile's hit bitmaps into \p M: one CovOpcode feature per
  /// executed opcode, one CovDigram feature per executed opcode pair
  /// (start-of-run sentinel rows included — "op X opened a dispatch run"
  /// is a path of its own), one CovFusedOp feature per dispatched
  /// superinstruction. Returns how many features were new — the fuzzer's
  /// coverage-feedback signal.
  size_t addCoverage(support::CoverageMap &M) const;

  /// Multi-line human-readable report: one row per executed opcode
  /// (descending by count), the hottest opcode pairs, fused-dispatch
  /// counts, then the call/trap and timing summary.
  std::string report() const;
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_PROFILE_H
