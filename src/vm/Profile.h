//===- vm/Profile.h - VM execution profiling --------------------*- C++ -*-===//
///
/// \file
/// A cheap observability surface for the machine: per-opcode execution
/// counters and per-phase wall-clock attribution (decode vs. run). In the
/// vocabulary of the paper's Figure 8, Decode is part of our "Compile"
/// column (done once per code object, at link time or first execution)
/// and Exec is the run of the compiled program — the profile makes the
/// "two for the price of one" claim measurable at the instruction level:
/// which opcodes the residual program actually spends its dispatches on.
///
/// Profiling is opt-in (Machine::setProfile) and pay-as-you-go: with no
/// profile attached the fast loop instantiates a counter-free template,
/// so the default configuration spends zero cycles on it.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_PROFILE_H
#define PECOMP_VM_PROFILE_H

#include "support/CoverageMap.h"
#include "vm/Code.h"
#include "vm/Value.h"

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pecomp {
namespace vm {

/// Saturating counter bump: profile counters must never wrap. A uint64
/// opcode counter takes centuries to saturate on one machine, but worker
/// profiles are merged (accumulate()) across requests and workers, where
/// two near-ceiling rows can legitimately meet; a wrapped row would turn
/// the hottest digram into the coldest and invert every policy decision
/// built on it.
inline void satInc(uint64_t &C, uint64_t By = 1) {
  C = (C > UINT64_MAX - By) ? UINT64_MAX : C + By;
}

/// Bounded census of the values one argument slot has been observed to
/// carry: at most MaxDistinct distinct canonical renderings are tracked,
/// anything beyond lands in Overflow. This is the evidence base for
/// online re-specialization (pgg/RtcgService): a "dynamic" slot whose top
/// rendering owns a large share of the observations is stable in
/// practice and worth specializing on behind a guard.
struct ArgCensus {
  /// Distinct renderings tracked per slot. Small on purpose: a slot with
  /// more live values than this is not stable, and the overflow share
  /// already proves it.
  static constexpr size_t MaxDistinct = 8;

  struct ValueCount {
    std::string Text; ///< canonical rendering (vm::valueToString)
    uint64_t Count = 0;
  };
  std::vector<ValueCount> Values;
  uint64_t Overflow = 0; ///< observations of untracked renderings
  /// False once the slot carried a value with no injective external
  /// rendering (a closure, say) — such a slot can never be guarded.
  bool Sampleable = true;

  void observe(std::string_view Text);
  uint64_t total() const;
  /// The most-observed tracked rendering, or null when nothing sampled.
  const ValueCount *top() const;
  /// top()->Count / total(), 0 when empty or not Sampleable. Overflow
  /// counts against the share: untracked values are by definition not
  /// the stable one.
  double topShare() const;
  /// Fold \p O into this census (saturating; Sampleable is sticky-false).
  void merge(const ArgCensus &O);
};

/// Everything sampled about one call site (keyed by callee name): how
/// often it was entered and the per-slot argument censuses.
struct CallSiteSample {
  uint64_t Calls = 0;
  std::vector<ArgCensus> Slots;

  void merge(const CallSiteSample &O);
};

struct Profile {
  /// Row index of PairCount for "no previous opcode" (start of a dispatch
  /// run: call entry, or resuming after a bounce between loops).
  static constexpr size_t PairStart = NumOpcodes;

  /// Executed-instruction count per opcode (fast and byte loop alike).
  /// Fused superinstructions are attributed to their *source* opcodes, so
  /// the counts are dispatch-strategy independent.
  std::array<uint64_t, NumOpcodes> OpCount{};
  /// Opcode-pair (digram) counters over consecutively executed source
  /// opcodes: PairCount[prev * NumOpcodes + cur]. Row PairStart counts
  /// first-of-run opcodes. The digram profile is what justifies (and
  /// tunes) the superinstruction set — see topPairs().
  std::array<uint64_t, (NumOpcodes + 1) * NumOpcodes> PairCount{};
  /// Executions of each fused superinstruction's fast path, indexed by
  /// Op value minus NumOpcodes (escapes to the unfused path — fuel
  /// boundary — are not counted here; their constituents still land in
  /// OpCount/PairCount either way).
  std::array<uint64_t, NumFusedOps> FusedCount{};
  /// Completed Machine::call invocations, and how many of them trapped.
  uint64_t Calls = 0;
  uint64_t Traps = 0;
  /// Wall-clock attribution: building DecodedStreams vs. running code.
  uint64_t DecodeNanos = 0;
  uint64_t ExecNanos = 0;

  /// Guarded-dispatch outcomes (vm/Guard.h): entries whose argument
  /// guards all held (specialized variant ran) vs. fell through to the
  /// generic code.
  uint64_t GuardHits = 0;
  uint64_t GuardMisses = 0;

  /// Native-tier outcomes (vm/Jit.h). JitEnters counts transitions from
  /// the outer dispatcher into native code; JitBails counts fuel bails
  /// (block-entry budget checks that handed the block to the decoded
  /// loop, charging nothing); JitFallbacks counts the other native
  /// exits into the interpreter (edges into uncompiled blocks and frame
  /// switches into uncompiled code). JitNanos attributes first-compile
  /// latency, mirroring DecodeNanos.
  uint64_t JitEnters = 0;
  uint64_t JitBails = 0;
  uint64_t JitFallbacks = 0;
  uint64_t JitNanos = 0;

  /// Per-call-site argument-value sampling, keyed by callee name. Opt-in
  /// on top of profiling itself (SampleArgs): rendering every argument
  /// has a real cost, so only consumers that feed a re-specialization
  /// policy (pgg/RtcgService) turn it on. Machine::call records the
  /// entry arguments of each top-level call; at most MaxSampledSites
  /// distinct callees are tracked (beyond that, samples are dropped —
  /// never resized mid-serve).
  static constexpr size_t MaxSampledSites = 64;
  bool SampleArgs = false;
  std::unordered_map<std::string, CallSiteSample> CallSites;

  /// Records one observed entry into \p Callee. Non-datum-like values
  /// (no injective external rendering) mark their slot unsampleable.
  void sampleCall(std::string_view Callee, std::span<const Value> Args);

  /// Extracts and erases the census for \p Callee (empty sample when the
  /// site was never observed). This is the delta-handoff a serving loop
  /// uses to fold worker-local samples into a shared policy without ever
  /// double-counting: observations live in exactly one place.
  CallSiteSample takeCallSite(const std::string &Callee);

  uint64_t instructions() const {
    uint64_t N = 0;
    for (uint64_t C : OpCount)
      N += C;
    return N;
  }

  uint64_t fusedExecutions() const {
    uint64_t N = 0;
    for (uint64_t C : FusedCount)
      N += C;
    return N;
  }

  /// One executed-digram row: Prev -> Cur happened Count times.
  struct OpPair {
    Op Prev;
    Op Cur;
    uint64_t Count;
  };

  /// The \p N most frequent executed opcode pairs, descending (ties in
  /// row-major order); start-of-run sentinel rows excluded. Fewer than
  /// \p N entries when fewer distinct pairs executed.
  std::vector<OpPair> topPairs(size_t N) const;

  /// Drops everything, argument samples included.
  void reset() { *this = Profile(); }

  /// Drops the per-dispatch counters (opcodes, digrams, fused counts,
  /// calls/traps, phase timers, guard outcomes) but keeps the argument
  /// samples. This is the between-requests reset a serving worker needs:
  /// dispatch counters describe one request's execution and must not
  /// bleed into the next request's numbers, while the value censuses are
  /// exactly the cross-request evidence re-specialization feeds on.
  void resetDispatch() {
    OpCount.fill(0);
    PairCount.fill(0);
    FusedCount.fill(0);
    Calls = Traps = 0;
    DecodeNanos = ExecNanos = 0;
    GuardHits = GuardMisses = 0;
    JitEnters = JitBails = JitFallbacks = 0;
    JitNanos = 0;
  }

  /// Folds \p O into this profile, saturating every counter (two merged
  /// near-ceiling rows must pin at UINT64_MAX, not wrap to zero) and
  /// merging argument censuses per site.
  void accumulate(const Profile &O);

  /// Folds this profile's hit bitmaps into \p M: one CovOpcode feature per
  /// executed opcode, one CovDigram feature per executed opcode pair
  /// (start-of-run sentinel rows included — "op X opened a dispatch run"
  /// is a path of its own), one CovFusedOp feature per dispatched
  /// superinstruction. Returns how many features were new — the fuzzer's
  /// coverage-feedback signal.
  size_t addCoverage(support::CoverageMap &M) const;

  /// Multi-line human-readable report: one row per executed opcode
  /// (descending by count), the hottest opcode pairs, fused-dispatch
  /// counts, then the call/trap and timing summary.
  std::string report() const;
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_PROFILE_H
