//===- vm/Profile.h - VM execution profiling --------------------*- C++ -*-===//
///
/// \file
/// A cheap observability surface for the machine: per-opcode execution
/// counters and per-phase wall-clock attribution (decode vs. run). In the
/// vocabulary of the paper's Figure 8, Decode is part of our "Compile"
/// column (done once per code object, at link time or first execution)
/// and Exec is the run of the compiled program — the profile makes the
/// "two for the price of one" claim measurable at the instruction level:
/// which opcodes the residual program actually spends its dispatches on.
///
/// Profiling is opt-in (Machine::setProfile) and pay-as-you-go: with no
/// profile attached the fast loop instantiates a counter-free template,
/// so the default configuration spends zero cycles on it.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_PROFILE_H
#define PECOMP_VM_PROFILE_H

#include "vm/Code.h"

#include <array>
#include <cstdint>
#include <string>

namespace pecomp {
namespace vm {

struct Profile {
  /// Executed-instruction count per opcode (fast and byte loop alike).
  std::array<uint64_t, NumOpcodes> OpCount{};
  /// Completed Machine::call invocations, and how many of them trapped.
  uint64_t Calls = 0;
  uint64_t Traps = 0;
  /// Wall-clock attribution: building DecodedStreams vs. running code.
  uint64_t DecodeNanos = 0;
  uint64_t ExecNanos = 0;

  uint64_t instructions() const {
    uint64_t N = 0;
    for (uint64_t C : OpCount)
      N += C;
    return N;
  }

  void reset() { *this = Profile(); }

  /// Multi-line human-readable report: one row per executed opcode
  /// (descending by count), then the call/trap and timing summary.
  std::string report() const;
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_PROFILE_H
