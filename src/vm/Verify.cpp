//===- vm/Verify.cpp - Byte-code verifier ----------------------------------===//

#include "vm/Verify.h"

#include "syntax/Primitives.h"

#include <map>
#include <vector>

using namespace pecomp;
using namespace pecomp::vm;

namespace {

/// Decoded form of one instruction.
struct Decoded {
  Op Opcode;
  uint32_t A = 0; // first operand
  uint32_t B = 0; // second operand
  size_t Next = 0;    // offset of the following instruction
  long JumpTarget = -1; // absolute target for Jump/JumpIfFalse
};

class Verifier {
public:
  Verifier(const CodeObject *Code, size_t NumFree, size_t MaxDepth)
      : Code(Code), NumFree(NumFree), MaxDepth(MaxDepth),
        Bytes(Code->code()) {}

  std::optional<std::string> run() {
    if (Bytes.empty())
      return fail(0, "empty code object");

    if (MaxDepth && Code->arity() > MaxDepth)
      return fail(0, "arity exceeds the stack depth limit");

    // Worklist over (offset, stack depth). Parameters occupy the frame's
    // first slots, so execution starts at depth = arity.
    Work.push_back({0, Code->arity()});
    while (!Work.empty()) {
      auto [Offset, Depth] = Work.back();
      Work.pop_back();
      if (auto Err = visit(Offset, Depth))
        return Err;
    }

    // Children are valid for the capture counts their MakeClosure sites
    // promise them.
    for (const auto &[Child, Captures] : ChildUses)
      if (auto Err = verifyCode(Child, Captures, MaxDepth))
        return Err;
    return std::nullopt;
  }

private:
  std::optional<std::string> fail(size_t Offset, const std::string &What) {
    return "verify " +
           (Code->name().empty() ? std::string("<anonymous>")
                                 : Code->name()) +
           " @" + std::to_string(Offset) + ": " + What;
  }

  /// Reads and bounds-checks one instruction at \p Offset.
  std::optional<std::string> decode(size_t Offset, Decoded &Out) {
    size_t PC = Offset;
    auto NeedBytes = [&](size_t N) { return PC + N <= Bytes.size(); };
    auto ReadU16 = [&]() {
      uint16_t V = static_cast<uint16_t>(Bytes[PC] | (Bytes[PC + 1] << 8));
      PC += 2;
      return V;
    };

    if (!NeedBytes(1))
      return fail(Offset, "truncated opcode");
    Out.Opcode = static_cast<Op>(Bytes[PC++]);
    switch (Out.Opcode) {
    case Op::Const:
    case Op::LocalRef:
    case Op::FreeRef:
    case Op::GlobalRef:
    case Op::Slide:
      if (!NeedBytes(2))
        return fail(Offset, "truncated u16 operand");
      Out.A = ReadU16();
      break;
    case Op::MakeClosure:
      if (!NeedBytes(4))
        return fail(Offset, "truncated MakeClosure operands");
      Out.A = ReadU16();
      Out.B = ReadU16();
      break;
    case Op::Call:
    case Op::TailCall:
    case Op::Prim:
      if (!NeedBytes(1))
        return fail(Offset, "truncated u8 operand");
      Out.A = Bytes[PC++];
      break;
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue: {
      if (!NeedBytes(2))
        return fail(Offset, "truncated jump offset");
      int16_t Rel = static_cast<int16_t>(ReadU16());
      Out.JumpTarget = static_cast<long>(PC) + Rel;
      break;
    }
    case Op::Return:
    case Op::Halt:
      break;
    default:
      return fail(Offset, "unknown opcode " +
                              std::to_string(static_cast<unsigned>(
                                  Out.Opcode)));
    }
    Out.Next = PC;
    return std::nullopt;
  }

  /// Records that control reaches \p Offset with \p Depth, queueing it if
  /// new; errors if a previous visit saw a different depth.
  std::optional<std::string> flow(size_t From, long Offset, size_t Depth) {
    if (Offset < 0 || static_cast<size_t>(Offset) > Bytes.size())
      return fail(From, "jump target " + std::to_string(Offset) +
                            " out of range");
    if (static_cast<size_t>(Offset) == Bytes.size())
      return fail(From, "control flows off the end of the code");
    if (MaxDepth && Depth > MaxDepth)
      return fail(From, "stack depth " + std::to_string(Depth) +
                            " exceeds the limit of " +
                            std::to_string(MaxDepth));
    auto [It, New] = DepthAt.emplace(static_cast<size_t>(Offset), Depth);
    if (!New && It->second != Depth)
      return fail(From, "inconsistent stack depth at " +
                            std::to_string(Offset) + ": " +
                            std::to_string(It->second) + " vs " +
                            std::to_string(Depth));
    if (New)
      Work.push_back({static_cast<size_t>(Offset), Depth});
    return std::nullopt;
  }

  std::optional<std::string> visit(size_t Offset, size_t Depth) {
    // Follow straight-line flow until a terminator; branches re-enter via
    // the worklist.
    for (;;) {
      DepthAt.emplace(Offset, Depth); // self-consistent by construction
      Decoded I;
      if (auto Err = decode(Offset, I))
        return Err;

      auto Pop = [&](size_t N, const char *What) -> std::optional<std::string> {
        if (Depth < N)
          return fail(Offset, std::string("stack underflow in ") + What +
                                  " (depth " + std::to_string(Depth) +
                                  ", needs " + std::to_string(N) + ")");
        Depth -= N;
        return std::nullopt;
      };

      switch (I.Opcode) {
      case Op::Const:
        if (I.A >= Code->literals().size())
          return fail(Offset, "literal index out of range");
        ++Depth;
        break;
      case Op::LocalRef:
        if (I.A >= Depth)
          return fail(Offset, "local slot " + std::to_string(I.A) +
                                  " beyond stack depth " +
                                  std::to_string(Depth));
        ++Depth;
        break;
      case Op::FreeRef:
        if (I.A >= NumFree)
          return fail(Offset, "free index " + std::to_string(I.A) +
                                  " beyond capture count " +
                                  std::to_string(NumFree));
        ++Depth;
        break;
      case Op::GlobalRef:
        // Global slots are bound at link time; any index is well formed
        // (the machine checks definedness at run time).
        ++Depth;
        break;
      case Op::MakeClosure: {
        if (I.A >= Code->children().size())
          return fail(Offset, "child index out of range");
        if (auto Err = Pop(I.B, "MakeClosure"))
          return Err;
        const CodeObject *Child = Code->children()[I.A];
        auto [It, New] = ChildUses.emplace(Child, I.B);
        if (!New && It->second != I.B)
          return fail(Offset, "child used with differing capture counts");
        ++Depth;
        break;
      }
      case Op::Call:
        if (auto Err = Pop(I.A + 1, "Call"))
          return Err;
        ++Depth; // the result
        break;
      case Op::TailCall:
        if (auto Err = Pop(I.A + 1, "TailCall"))
          return Err;
        return std::nullopt; // terminal
      case Op::Return:
        if (auto Err = Pop(1, "Return"))
          return Err;
        return std::nullopt; // terminal
      case Op::Jump:
        return flow(Offset, I.JumpTarget, Depth); // terminal fallthrough
      case Op::JumpIfFalse: {
        if (auto Err = Pop(1, "JumpIfFalse"))
          return Err;
        if (auto Err = flow(Offset, I.JumpTarget, Depth))
          return Err;
        break; // fall through to the consequent
      }
      case Op::JumpIfTrue: {
        if (auto Err = Pop(1, "JumpIfTrue"))
          return Err;
        if (auto Err = flow(Offset, I.JumpTarget, Depth))
          return Err;
        break; // fall through to the alternative
      }
      case Op::Prim: {
        if (I.A >= NumPrimOps)
          return fail(Offset, "unknown primitive number");
        if (auto Err = Pop(primArity(static_cast<PrimOp>(I.A)), "Prim"))
          return Err;
        ++Depth;
        break;
      }
      case Op::Slide:
        // Keeps the top value, drops A beneath it.
        if (auto Err = Pop(I.A + 1, "Slide"))
          return Err;
        ++Depth;
        break;
      case Op::Halt:
        if (auto Err = Pop(1, "Halt"))
          return Err;
        return std::nullopt; // terminal
      default: // fused pseudo-opcodes: rejected by decode() already
        return fail(Offset, "unknown opcode");
      }

      if (auto Err = flow(Offset, static_cast<long>(I.Next), Depth))
        return Err;
      // flow() queued it; but for straight-line speed, continue directly
      // when we are the first visitor.
      if (!Work.empty() && Work.back().first == I.Next &&
          Work.back().second == Depth) {
        Work.pop_back();
        Offset = I.Next;
        continue;
      }
      return std::nullopt;
    }
  }

  const CodeObject *Code;
  size_t NumFree;
  size_t MaxDepth;
  const std::vector<uint8_t> &Bytes;
  std::map<size_t, size_t> DepthAt;
  std::vector<std::pair<size_t, size_t>> Work;
  std::map<const CodeObject *, uint32_t> ChildUses;
};

} // namespace

std::optional<std::string> vm::verifyCode(const CodeObject *Code,
                                          size_t NumFree,
                                          size_t MaxStackDepth) {
  Verifier V(Code, NumFree, MaxStackDepth);
  return V.run();
}
