//===- vm/Value.cpp - Runtime values --------------------------------------===//

#include "vm/Value.h"

#include "support/Casting.h"
#include "vm/Code.h"

using namespace pecomp;
using namespace pecomp::vm;

Symbol Value::asSymbol() const {
  assert(isSymbol() && "not a symbol");
  return Symbol::fromId(static_cast<uint32_t>(Bits >> 4));
}

const char *vm::valueTypeName(Value V) {
  if (!V.isValid())
    return "undefined";
  if (V.isFixnum())
    return "fixnum";
  if (V.isBoolean())
    return "boolean";
  if (V.isNil())
    return "nil";
  if (V.isUnspecified())
    return "unspecified";
  if (V.isSymbol())
    return "symbol";
  if (V.isChar())
    return "character";
  switch (V.asObject()->Kind) {
  case ObjectKind::Pair:
    return "pair";
  case ObjectKind::String:
    return "string";
  case ObjectKind::Closure:
    return "closure";
  case ObjectKind::InterpClosure:
    return "closure";
  case ObjectKind::Box:
    return "box";
  }
  return "object";
}

bool vm::valueEquals(Value A, Value B) {
  if (A == B)
    return true;
  if (!A.isObject() || !B.isObject())
    return false;
  HeapObject *OA = A.asObject(), *OB = B.asObject();
  if (OA->Kind != OB->Kind)
    return false;
  switch (OA->Kind) {
  case ObjectKind::Pair: {
    auto *PA = static_cast<PairObject *>(OA);
    auto *PB = static_cast<PairObject *>(OB);
    return valueEquals(PA->Car, PB->Car) && valueEquals(PA->Cdr, PB->Cdr);
  }
  case ObjectKind::String:
    return static_cast<StringObject *>(OA)->Text ==
           static_cast<StringObject *>(OB)->Text;
  case ObjectKind::Closure:
  case ObjectKind::InterpClosure:
  case ObjectKind::Box:
    return false; // identity only
  }
  return false;
}

uint64_t vm::valueHash(Value V) {
  constexpr uint64_t Mix = 0x9e3779b97f4a7c15ull;
  if (!V.isObject())
    return V.raw() * Mix;
  HeapObject *O = V.asObject();
  switch (O->Kind) {
  case ObjectKind::Pair: {
    auto *P = static_cast<PairObject *>(O);
    uint64_t H = valueHash(P->Car);
    H = (H ^ valueHash(P->Cdr)) * Mix + 0x2545F4914F6CDD1Dull;
    return H;
  }
  case ObjectKind::String: {
    uint64_t H = 1469598103934665603ull;
    for (char C : static_cast<StringObject *>(O)->Text)
      H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
    return H;
  }
  case ObjectKind::Closure:
  case ObjectKind::InterpClosure:
  case ObjectKind::Box:
    return reinterpret_cast<uint64_t>(O) * Mix;
  }
  return 0;
}

namespace {

void writeValue(Value V, std::string &Out) {
  if (V.isFixnum()) {
    Out += std::to_string(V.asFixnum());
    return;
  }
  if (V.isBoolean()) {
    Out += V.asBoolean() ? "#t" : "#f";
    return;
  }
  if (V.isNil()) {
    Out += "()";
    return;
  }
  if (V.isUnspecified()) {
    Out += "#<unspecified>";
    return;
  }
  if (V.isSymbol()) {
    Out += V.asSymbol().str();
    return;
  }
  if (V.isChar()) {
    char C = V.asChar();
    Out += "#\\";
    if (C == ' ')
      Out += "space";
    else if (C == '\n')
      Out += "newline";
    else
      Out.push_back(C);
    return;
  }
  if (!V.isValid()) {
    Out += "#<invalid>";
    return;
  }
  HeapObject *O = V.asObject();
  switch (O->Kind) {
  case ObjectKind::Pair: {
    Out.push_back('(');
    Value Cursor = V;
    bool First = true;
    while (Cursor.isObject() &&
           Cursor.asObject()->Kind == ObjectKind::Pair) {
      if (!First)
        Out.push_back(' ');
      First = false;
      auto *P = static_cast<PairObject *>(Cursor.asObject());
      writeValue(P->Car, Out);
      Cursor = P->Cdr;
    }
    if (!Cursor.isNil()) {
      Out += " . ";
      writeValue(Cursor, Out);
    }
    Out.push_back(')');
    return;
  }
  case ObjectKind::String: {
    Out.push_back('"');
    Out += static_cast<StringObject *>(O)->Text;
    Out.push_back('"');
    return;
  }
  case ObjectKind::Closure: {
    auto *C = static_cast<ClosureObject *>(O);
    Out += "#<procedure";
    if (C->Code && !C->Code->name().empty()) {
      Out.push_back(' ');
      Out += C->Code->name();
    }
    Out.push_back('>');
    return;
  }
  case ObjectKind::InterpClosure:
    Out += "#<procedure>";
    return;
  case ObjectKind::Box:
    Out += "#<box ";
    writeValue(static_cast<BoxObject *>(O)->Contents, Out);
    Out.push_back('>');
    return;
  }
}

} // namespace

std::string vm::valueToString(Value V) {
  std::string Out;
  writeValue(V, Out);
  return Out;
}
