//===- vm/Trap.h - Structured VM fault model --------------------*- C++ -*-===//
///
/// \file
/// The VM's fault model. Generating extensions emit object code that runs
/// immediately with no human in the loop (the RTCG trust problem the
/// byte-code verifier exists for), so every runtime invariant violation
/// must become a structured, recoverable value instead of an assert that
/// compiles away under NDEBUG and turns into undefined behavior.
///
/// A Trap records what went wrong (TrapKind), where (code object name,
/// byte offset of the faulting instruction, raw opcode), and a
/// human-readable detail string. Traps travel through the ordinary
/// Result<T> machinery: Trap::toError() renders the context into the
/// message and stores the kind in Error::code(), so callers that only
/// understand Error keep working while tests and serving loops can
/// classify the failure without parsing text. The reference evaluator
/// (src/eval) tags its errors with the same kinds, which is what makes
/// trap *parity* differentially testable.
///
/// Limits is the resource governor enforced by Machine (value stack,
/// frames, fuel) and Heap (bytes). After any trap, Machine::call restores
/// the machine to a reusable empty state — one bad specialized program
/// cannot poison the next request.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_TRAP_H
#define PECOMP_VM_TRAP_H

#include "support/Error.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace pecomp {
namespace vm {

/// Classes of runtime fault. Stable numeric values: they are carried in
/// Error::code() (0 is reserved for "not a trap" / user-level errors such
/// as the `error` primitive).
enum class TrapKind : uint8_t {
  None = 0,           ///< not a trap
  UndefinedGlobal,    ///< GlobalRef of an unbound slot / unbound variable
  PcOutOfRange,       ///< pc escaped the code object (also truncated operands)
  StackOverflow,      ///< value stack exceeded Limits::MaxStackDepth
  StackUnderflow,     ///< malformed code popped more than it pushed
  FrameOverflow,      ///< call depth exceeded Limits::MaxFrames
  HeapExhausted,      ///< heap byte ceiling or injected allocation fault
  TypeError,          ///< operand of the wrong runtime type
  ArityMismatch,      ///< call/prim with the wrong argument count
  DivideByZero,       ///< quotient/remainder by zero
  FuelExhausted,      ///< instruction budget exceeded
  ReentrantCall,      ///< Machine::call while a call is already running
  IllegalInstruction, ///< unknown opcode or out-of-range encoded index
};

/// Human-readable kind name ("UndefinedGlobal", ...).
const char *trapKindName(TrapKind K);

/// Resource ceilings for one Machine (and, via MaxHeapBytes, its Heap).
/// Zero always means "unlimited". The defaults are deliberately generous —
/// they exist to keep a runaway residual program from taking down the
/// process, not to constrain well-behaved ones.
struct Limits {
  /// Live-heap ceiling in bytes, enforced by Heap on every allocation
  /// (after attempting a collection). 0 = unlimited.
  size_t MaxHeapBytes = 0;
  /// Value-stack ceiling in slots, checked once per instruction (each
  /// instruction grows the stack by at most one slot). The default admits
  /// the deep non-tail recursion the VM is specifically built to support
  /// (frames live on the heap-allocated value stack, not the C++ stack).
  size_t MaxStackDepth = 4u << 20;
  /// Call-frame ceiling, checked at every non-tail call.
  size_t MaxFrames = 1u << 20;
  /// Instruction budget. 0 = unlimited.
  uint64_t Fuel = 0;

  static Limits unlimited() { return Limits{0, 0, 0, 0}; }
};

/// A structured runtime fault with its execution context.
struct Trap {
  static constexpr size_t NoPC = static_cast<size_t>(-1);

  TrapKind Kind = TrapKind::None;
  std::string Detail;   ///< what happened, human-readable
  std::string Function; ///< name of the faulting code object, if any
  size_t PC = NoPC;     ///< byte offset of the faulting instruction
  int Opcode = -1;      ///< raw opcode byte, -1 when not executing

  /// "[trap Kind] detail (in fn @pc N, op name)".
  std::string render() const;

  /// Converts to an Error carrying the kind in code().
  Error toError() const {
    Error E(render());
    E.setCode(static_cast<int>(Kind));
    return E;
  }
};

/// The trap class of \p E (TrapKind::None for unclassified errors).
inline TrapKind trapKindOf(const Error &E) {
  int C = E.code();
  if (C < 0 || C > static_cast<int>(TrapKind::IllegalInstruction))
    return TrapKind::None;
  return static_cast<TrapKind>(C);
}

/// Builds a context-free trap error (for faults raised outside the
/// dispatch loop: the evaluator, the specializer, the linker).
inline Error trapError(TrapKind K, std::string Message) {
  Error E(std::move(Message));
  E.setCode(static_cast<int>(K));
  return E;
}

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_TRAP_H
