//===- vm/Convert.h - Datum/value conversion --------------------*- C++ -*-===//
///
/// \file
/// Converts between syntax-level Datums (quoted constants, test inputs)
/// and runtime Values.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_CONVERT_H
#define PECOMP_VM_CONVERT_H

#include "sexp/Datum.h"
#include "vm/Heap.h"

namespace pecomp {
namespace vm {

/// Builds the runtime value denoted by \p D.
Value valueFromDatum(Heap &H, const Datum *D);

/// Reads a runtime value back as a datum. Closures and boxes cannot be
/// converted and yield nullptr.
const Datum *datumFromValue(DatumFactory &F, Value V);

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_CONVERT_H
