//===- vm/Prims.h - Primitive execution -------------------------*- C++ -*-===//
///
/// \file
/// Executes a primitive operation over runtime values. One implementation,
/// shared by the byte-code machine, the reference interpreter, and the
/// specializer (which runs static primitives at specialization time).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_PRIMS_H
#define PECOMP_VM_PRIMS_H

#include "support/Error.h"
#include "syntax/Primitives.h"
#include "vm/Heap.h"

#include <span>

namespace pecomp {
namespace vm {

/// Applies \p Op to \p Args (whose size must equal primArity(Op)).
/// Allocating primitives (cons, make-box) use \p H. Type errors and the
/// error primitive produce an Error result.
Result<Value> applyPrim(PrimOp Op, Heap &H, std::span<const Value> Args);

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_PRIMS_H
