//===- vm/Prims.h - Primitive execution -------------------------*- C++ -*-===//
///
/// \file
/// Executes a primitive operation over runtime values. One implementation,
/// shared by the byte-code machine, the reference interpreter, and the
/// specializer (which runs static primitives at specialization time).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_PRIMS_H
#define PECOMP_VM_PRIMS_H

#include "support/Error.h"
#include "syntax/Primitives.h"
#include "vm/Heap.h"

#include <span>

namespace pecomp {
namespace vm {

/// Applies \p Op to \p Args (whose size must equal primArity(Op)).
/// Allocating primitives (cons, make-box) use \p H. Type errors and the
/// error primitive produce an Error result.
Result<Value> applyPrim(PrimOp Op, Heap &H, std::span<const Value> Args);

/// Truncating division with the same wraparound convention Add/Sub/Mul
/// use: the one overflowing pair, INT64_MIN / -1, yields the wrapped
/// INT64_MIN instead of undefined behavior. \p B must be nonzero (the
/// caller traps DivideByZero first).
inline int64_t fixnumWrapQuotient(int64_t A, int64_t B) {
  if (B == -1)
    return static_cast<int64_t>(-static_cast<uint64_t>(A));
  return A / B;
}

/// Remainder counterpart: INT64_MIN % -1 is mathematically 0 but still
/// undefined behavior on x86 (the paired idiv traps), so it is special-
/// cased. \p B must be nonzero.
inline int64_t fixnumWrapRemainder(int64_t A, int64_t B) {
  if (B == -1)
    return 0;
  return A % B;
}

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_PRIMS_H
