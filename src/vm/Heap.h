//===- vm/Heap.h - Mark-sweep garbage-collected heap ------------*- C++ -*-===//
///
/// \file
/// The runtime heap. Allocation may trigger a mark-sweep collection;
/// arguments to the allocation functions themselves are protected for the
/// duration of the call. Everything else must be reachable from a
/// registered RootProvider or a Rooted handle.
///
/// A stress mode (collect on every allocation) exists for the GC-safety
/// property tests.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_HEAP_H
#define PECOMP_VM_HEAP_H

#include "vm/Value.h"

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace pecomp {
namespace vm {

/// Marking callback handed to root providers during collection.
class RootVisitor {
public:
  explicit RootVisitor(class Heap &H) : H(H) {}
  void visit(Value V);

private:
  Heap &H;
};

/// Anything holding Values that must survive collection implements this and
/// registers with the heap.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  virtual void traceRoots(RootVisitor &Visitor) = 0;
};

class Heap {
public:
  Heap() = default;
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;
  ~Heap();

  // -- Allocation -------------------------------------------------------------

  Value pair(Value Car, Value Cdr);
  Value string(std::string Text);
  Value closure(const CodeObject *Code, std::span<const Value> Free);
  Value interpClosure(const LambdaExpr *Fn, Value Env);
  Value box(Value Contents);

  /// Builds a proper list from \p Elements.
  Value list(std::span<const Value> Elements);

  // -- Roots ------------------------------------------------------------------

  void addRootProvider(RootProvider *Provider);
  void removeRootProvider(RootProvider *Provider);

  /// Pins a value forever (literal tables, interned constants).
  void pin(Value V) { Pinned.push_back(V); }

  // -- Collection --------------------------------------------------------------

  /// Forces a full collection now.
  void collect();

  /// Collect on every allocation (GC stress testing).
  void setStressMode(bool Enabled) { Stress = Enabled; }

  size_t liveObjects() const { return NumObjects; }
  size_t totalCollections() const { return NumCollections; }

private:
  friend class RootVisitor;

  void maybeCollect();
  HeapObject *track(HeapObject *O);
  void mark(Value V);
  void sweep();
  static void destroy(HeapObject *O);

  HeapObject *Objects = nullptr;
  size_t NumObjects = 0;
  size_t NumCollections = 0;
  size_t NextGcThreshold = 4096;
  bool Stress = false;

  std::vector<RootProvider *> Providers;
  std::vector<Value> Pinned;

  // Arguments of an in-flight allocation, protected during maybeCollect.
  std::vector<Value> TempRoots;
};

/// RAII root for a handful of values held in C++ locals across allocations.
class RootScope : public RootProvider {
public:
  explicit RootScope(Heap &H) : H(H) { H.addRootProvider(this); }
  ~RootScope() override { H.removeRootProvider(this); }

  /// Registers a value and returns a stable reference to its slot.
  Value &protect(Value V) {
    Slots.push_back(V);
    return Slots.back();
  }

  void traceRoots(RootVisitor &Visitor) override {
    for (Value V : Slots)
      Visitor.visit(V);
  }

private:
  Heap &H;
  std::deque<Value> Slots; // deque: protect() hands out stable references
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_HEAP_H
