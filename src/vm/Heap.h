//===- vm/Heap.h - Mark-sweep garbage-collected heap ------------*- C++ -*-===//
///
/// \file
/// The runtime heap. Allocation may trigger a mark-sweep collection;
/// arguments to the allocation functions themselves are protected for the
/// duration of the call. Everything else must be reachable from a
/// registered RootProvider or a Rooted handle.
///
/// Resource governance: the heap tracks live bytes and can enforce a byte
/// ceiling (setMaxBytes). Exceeding the ceiling — after attempting a
/// collection — does NOT fail the allocation (callers hold raw Values, so
/// a null would be undefined behavior downstream); instead the heap goes
/// into a sticky *faulted* state. Memory is still physically allocated,
/// so every outstanding Value stays valid, and the machine, evaluator,
/// and specializer check faulted() at their loop heads and unwind with a
/// HeapExhausted trap within a bounded number of allocations. clearFault()
/// plus a collection makes the heap reusable.
///
/// A FaultPlan supports deterministic fault injection for tests: fail the
/// Nth allocation, fail above a live-byte watermark, or collect on every
/// allocation (the GC-safety stress mode).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_HEAP_H
#define PECOMP_VM_HEAP_H

#include "vm/Value.h"

#include <cstddef>
#include <deque>
#include <span>
#include <string>
#include <vector>

namespace pecomp {
namespace vm {

/// Deterministic allocation-fault injection (tests). All triggers leave
/// the heap in the same sticky faulted state a real ceiling breach does.
struct FaultPlan {
  /// Fault when the running allocation count reaches this 1-based ordinal.
  /// One-shot by construction (the count only passes it once). 0 = never.
  uint64_t FailAtAllocation = 0;
  /// Fault any allocation performed while live bytes exceed this. 0 = off.
  size_t FailAboveLiveBytes = 0;
  /// Collect on every allocation (GC stress testing).
  bool CollectEveryAlloc = false;
};

/// Marking callback handed to root providers during collection.
class RootVisitor {
public:
  explicit RootVisitor(class Heap &H) : H(H) {}
  void visit(Value V);

private:
  Heap &H;
};

/// Anything holding Values that must survive collection implements this and
/// registers with the heap.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  virtual void traceRoots(RootVisitor &Visitor) = 0;
};

class Heap {
public:
  Heap() = default;
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;
  ~Heap();

  // -- Allocation -------------------------------------------------------------

  Value pair(Value Car, Value Cdr);
  Value string(std::string Text);
  Value closure(const CodeObject *Code, std::span<const Value> Free);
  Value interpClosure(const LambdaExpr *Fn, Value Env);
  Value box(Value Contents);

  /// Builds a proper list from \p Elements.
  Value list(std::span<const Value> Elements);

  // -- Roots ------------------------------------------------------------------

  void addRootProvider(RootProvider *Provider);
  void removeRootProvider(RootProvider *Provider);

  /// Pins a value forever (literal tables, interned constants).
  void pin(Value V) { Pinned.push_back(V); }

  // -- Collection --------------------------------------------------------------

  /// Forces a full collection now.
  void collect();

  /// Collect on every allocation (GC stress testing).
  void setStressMode(bool Enabled) { Plan.CollectEveryAlloc = Enabled; }

  // -- Resource governance -----------------------------------------------------

  /// Caps live heap bytes. An allocation that would exceed the cap first
  /// collects; if still over, the heap enters the sticky faulted state
  /// (the allocation itself still succeeds — see the file comment).
  /// 0 = unlimited.
  void setMaxBytes(size_t Max) { MaxBytes = Max; }
  size_t maxBytes() const { return MaxBytes; }

  /// Installs a deterministic fault-injection plan.
  void setFaultPlan(const FaultPlan &P) { Plan = P; }

  /// True once an allocation breached the ceiling or tripped the fault
  /// plan. Sticky until clearFault().
  bool faulted() const { return Faulted; }
  const std::string &faultMessage() const { return FaultMessage; }
  void clearFault() {
    Faulted = false;
    FaultMessage.clear();
  }

  size_t liveObjects() const { return NumObjects; }
  size_t liveBytes() const { return LiveBytes; }
  uint64_t totalAllocations() const { return NumAllocations; }
  size_t totalCollections() const { return NumCollections; }

private:
  friend class RootVisitor;

  void maybeCollect();
  void setFault(std::string Why);
  HeapObject *track(HeapObject *O);
  static size_t objectSize(const HeapObject *O);
  void mark(Value V);
  void sweep();
  static void destroy(HeapObject *O);

  HeapObject *Objects = nullptr;
  size_t NumObjects = 0;
  size_t LiveBytes = 0;
  uint64_t NumAllocations = 0;
  size_t NumCollections = 0;
  size_t NextGcThreshold = 4096;
  size_t MaxBytes = 0;
  FaultPlan Plan;
  bool Faulted = false;
  std::string FaultMessage;

  std::vector<RootProvider *> Providers;
  std::vector<Value> Pinned;

  // Arguments of an in-flight allocation, protected during maybeCollect.
  std::vector<Value> TempRoots;
};

/// RAII root for a handful of values held in C++ locals across allocations.
class RootScope : public RootProvider {
public:
  explicit RootScope(Heap &H) : H(H) { H.addRootProvider(this); }
  ~RootScope() override { H.removeRootProvider(this); }

  /// Registers a value and returns a stable reference to its slot.
  Value &protect(Value V) {
    Slots.push_back(V);
    return Slots.back();
  }

  void traceRoots(RootVisitor &Visitor) override {
    for (Value V : Slots)
      Visitor.visit(V);
  }

private:
  Heap &H;
  std::deque<Value> Slots; // deque: protect() hands out stable references
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_HEAP_H
