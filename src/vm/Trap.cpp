//===- vm/Trap.cpp - Structured VM fault model ----------------------------===//

#include "vm/Trap.h"

#include "vm/Code.h"

using namespace pecomp;
using namespace pecomp::vm;

const char *vm::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "None";
  case TrapKind::UndefinedGlobal:
    return "UndefinedGlobal";
  case TrapKind::PcOutOfRange:
    return "PcOutOfRange";
  case TrapKind::StackOverflow:
    return "StackOverflow";
  case TrapKind::StackUnderflow:
    return "StackUnderflow";
  case TrapKind::FrameOverflow:
    return "FrameOverflow";
  case TrapKind::HeapExhausted:
    return "HeapExhausted";
  case TrapKind::TypeError:
    return "TypeError";
  case TrapKind::ArityMismatch:
    return "ArityMismatch";
  case TrapKind::DivideByZero:
    return "DivideByZero";
  case TrapKind::FuelExhausted:
    return "FuelExhausted";
  case TrapKind::ReentrantCall:
    return "ReentrantCall";
  case TrapKind::IllegalInstruction:
    return "IllegalInstruction";
  }
  return "Unknown";
}

namespace {

/// Mnemonic for a raw opcode byte; mirrors the disassembler's vocabulary.
const char *opcodeName(int Raw) {
  switch (static_cast<Op>(Raw)) {
  case Op::Const:
    return "const";
  case Op::LocalRef:
    return "local";
  case Op::FreeRef:
    return "free";
  case Op::GlobalRef:
    return "global";
  case Op::MakeClosure:
    return "closure";
  case Op::Call:
    return "call";
  case Op::TailCall:
    return "tail-call";
  case Op::Return:
    return "return";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jump-if-false";
  case Op::Prim:
    return "prim";
  case Op::Slide:
    return "slide";
  case Op::Halt:
    return "halt";
  case Op::JumpIfTrue:
    return "jump-if-true";
  default: // fused pseudo-opcodes never reach trap context (SrcOp only)
    break;
  }
  return "<bad-op>";
}

} // namespace

std::string Trap::render() const {
  std::string Out = "[trap ";
  Out += trapKindName(Kind);
  Out += "] ";
  Out += Detail;
  if (!Function.empty() || PC != NoPC || Opcode >= 0) {
    Out += " (";
    bool First = true;
    if (!Function.empty()) {
      Out += "in " + Function;
      First = false;
    }
    if (PC != NoPC) {
      Out += (First ? "" : ", ");
      Out += "@pc " + std::to_string(PC);
      First = false;
    }
    if (Opcode >= 0) {
      Out += (First ? "" : ", ");
      Out += "op ";
      Out += opcodeName(Opcode);
    }
    Out += ")";
  }
  return Out;
}
