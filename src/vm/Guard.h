//===- vm/Guard.h - Guarded dispatch to specialized variants ----*- C++ -*-===//
///
/// \file
/// The deoptimization half of online re-specialization. A specialized
/// variant produced from *observed* (not declared) argument values is
/// only valid for those values, so every entry must be guarded: compare
/// the guarded argument slots against the expected values and either run
/// the variant on the remaining arguments (hit) or fall through to the
/// generic code on the full argument vector (miss).
///
/// The shim is deliberately outside the dispatch loops. Guards compare
/// top-level call arguments, which exist before any frame is pushed, so
/// the check costs no fuel, touches no VM state, and cannot trap — which
/// is exactly what makes the parity contract provable: a guard miss is
/// *bit-identical* to having called the generic code directly (same
/// value, same TrapKind, same trap PC/function, same executed-instruction
/// count), and the six-tier differential fuzzer holds it to that.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_GUARD_H
#define PECOMP_VM_GUARD_H

#include "vm/Machine.h"
#include "vm/Value.h"

#include <cstdint>
#include <span>
#include <vector>

namespace pecomp {
namespace vm {

/// Which argument slots of the *generic* entry are guarded, and the value
/// each must carry for the specialized variant to be applicable. Slots
/// and Expected are parallel; slot indices are strictly increasing.
struct GuardPlan {
  std::vector<uint32_t> Slots;
  std::vector<Value> Expected;

  bool empty() const { return Slots.empty(); }
};

/// True iff every guarded slot of \p Args structurally equals its
/// expected value. Out-of-range slots fail the guard (never trap): a
/// stale plan must degrade to the generic path, not crash.
bool guardsHold(const GuardPlan &P, std::span<const Value> Args);

/// The argument vector the specialized variant takes: \p Args with the
/// guarded slots removed, in order. (Specialization consumed those — they
/// are compiled into the residual code.)
std::vector<Value> residualArgs(const GuardPlan &P, std::span<const Value> Args);

/// Guarded call: check \p P against \p Args; on hit call \p Specialized
/// with the residual arguments, on miss call \p Generic with \p Args
/// unchanged. Guard-outcome counters land in the machine's attached
/// Profile (if any); \p Hit (optional) reports which leg ran. The miss
/// leg performs exactly one Machine::call on the generic closure — no
/// extra fuel, no extra instructions, no trap-context perturbation.
Result<Value> callGuarded(Machine &M, Value Specialized, const GuardPlan &P,
                          Value Generic, std::span<const Value> Args,
                          bool *Hit = nullptr);

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_GUARD_H
