//===- vm/Prims.cpp - Primitive execution ---------------------------------===//

#include "vm/Prims.h"

#include "support/Casting.h"
#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::vm;

namespace {

Error typeError(PrimOp Op, const char *Expected, Value Got) {
  return trapError(TrapKind::TypeError,
                   std::string(primName(Op)) + ": expected " + Expected +
                       ", got " + valueTypeName(Got) + " " +
                       valueToString(Got));
}

Result<int64_t> wantFixnum(PrimOp Op, Value V) {
  if (!V.isFixnum())
    return typeError(Op, "a number", V);
  return V.asFixnum();
}

Result<PairObject *> wantPair(PrimOp Op, Value V) {
  if (V.isObject())
    if (auto *P = dyn_cast<PairObject>(V.asObject()))
      return P;
  return typeError(Op, "a pair", V);
}

Result<BoxObject *> wantBox(PrimOp Op, Value V) {
  if (V.isObject())
    if (auto *B = dyn_cast<BoxObject>(V.asObject()))
      return B;
  return typeError(Op, "a box", V);
}

} // namespace

Result<Value> vm::applyPrim(PrimOp Op, Heap &H, std::span<const Value> Args) {
  // The arity of compiled prim calls comes from generated code, so a
  // mismatch is a runtime fault of that code, not a programmer error.
  if (Args.size() != primArity(Op))
    return trapError(TrapKind::ArityMismatch,
                     std::string(primName(Op)) + ": expects " +
                         std::to_string(primArity(Op)) +
                         " argument(s), got " +
                         std::to_string(Args.size()));
  switch (Op) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Quotient:
  case PrimOp::Remainder: {
    Result<int64_t> A = wantFixnum(Op, Args[0]);
    if (!A)
      return A.takeError();
    Result<int64_t> B = wantFixnum(Op, Args[1]);
    if (!B)
      return B.takeError();
    // Fixnum arithmetic wraps (two's complement over the 63-bit payload);
    // computing in uint64_t keeps the wraparound well-defined C++.
    switch (Op) {
    case PrimOp::Add:
      return Value::fixnum(static_cast<int64_t>(static_cast<uint64_t>(*A) +
                                                static_cast<uint64_t>(*B)));
    case PrimOp::Sub:
      return Value::fixnum(static_cast<int64_t>(static_cast<uint64_t>(*A) -
                                                static_cast<uint64_t>(*B)));
    case PrimOp::Mul:
      return Value::fixnum(static_cast<int64_t>(static_cast<uint64_t>(*A) *
                                                static_cast<uint64_t>(*B)));
    case PrimOp::Quotient:
      if (*B == 0)
        return trapError(TrapKind::DivideByZero,
                         "quotient: division by zero");
      return Value::fixnum(fixnumWrapQuotient(*A, *B));
    case PrimOp::Remainder:
      if (*B == 0)
        return trapError(TrapKind::DivideByZero,
                         "remainder: division by zero");
      return Value::fixnum(fixnumWrapRemainder(*A, *B));
    default:
      break;
    }
    break;
  }
  case PrimOp::NumEq:
  case PrimOp::Lt:
  case PrimOp::Gt:
  case PrimOp::Le:
  case PrimOp::Ge: {
    Result<int64_t> A = wantFixnum(Op, Args[0]);
    if (!A)
      return A.takeError();
    Result<int64_t> B = wantFixnum(Op, Args[1]);
    if (!B)
      return B.takeError();
    bool R = false;
    switch (Op) {
    case PrimOp::NumEq:
      R = *A == *B;
      break;
    case PrimOp::Lt:
      R = *A < *B;
      break;
    case PrimOp::Gt:
      R = *A > *B;
      break;
    case PrimOp::Le:
      R = *A <= *B;
      break;
    case PrimOp::Ge:
      R = *A >= *B;
      break;
    default:
      break;
    }
    return Value::boolean(R);
  }
  case PrimOp::EqP:
    return Value::boolean(Args[0] == Args[1]);
  case PrimOp::EqualP:
    return Value::boolean(valueEquals(Args[0], Args[1]));
  case PrimOp::Cons:
    return H.pair(Args[0], Args[1]);
  case PrimOp::Car: {
    Result<PairObject *> P = wantPair(Op, Args[0]);
    if (!P)
      return P.takeError();
    return (*P)->Car;
  }
  case PrimOp::Cdr: {
    Result<PairObject *> P = wantPair(Op, Args[0]);
    if (!P)
      return P.takeError();
    return (*P)->Cdr;
  }
  case PrimOp::NullP:
    return Value::boolean(Args[0].isNil());
  case PrimOp::PairP:
    return Value::boolean(Args[0].isObject() &&
                          isa<PairObject>(Args[0].asObject()));
  case PrimOp::ZeroP: {
    Result<int64_t> A = wantFixnum(Op, Args[0]);
    if (!A)
      return A.takeError();
    return Value::boolean(*A == 0);
  }
  case PrimOp::Not:
    return Value::boolean(!Args[0].isTruthy());
  case PrimOp::NumberP:
    return Value::boolean(Args[0].isFixnum());
  case PrimOp::SymbolP:
    return Value::boolean(Args[0].isSymbol());
  case PrimOp::BooleanP:
    return Value::boolean(Args[0].isBoolean());
  case PrimOp::ProcedureP:
    return Value::boolean(
        Args[0].isObject() && (isa<ClosureObject>(Args[0].asObject()) ||
                               isa<InterpClosureObject>(Args[0].asObject())));
  case PrimOp::Error:
    return Error("error: " + valueToString(Args[0]));
  case PrimOp::MakeBox:
    return H.box(Args[0]);
  case PrimOp::BoxRef: {
    Result<BoxObject *> B = wantBox(Op, Args[0]);
    if (!B)
      return B.takeError();
    return (*B)->Contents;
  }
  case PrimOp::BoxSet: {
    Result<BoxObject *> B = wantBox(Op, Args[0]);
    if (!B)
      return B.takeError();
    (*B)->Contents = Args[1];
    return Value::unspecified();
  }
  }
  return trapError(TrapKind::IllegalInstruction, "unknown primitive");
}
