//===- vm/Jit.cpp - Per-block template JIT --------------------------------===//
//
// The native tier: x86-64 templates stitched per basic block over the
// pre-decoded instruction stream, with the interpreter's exact charging
// and trap discipline compiled in.
//
// Register plan (SysV callee-saved, so C++ call-outs preserve it):
//
//   rbx = ExecState*            r14 = current frame base (slots)
//   r12 = ExecState.Stack.Data  r15 = ExecState.OpCount (profile or sink)
//   r13 = ExecState.Stack.Size
//
// Every source instruction's template begins with three memory
// increments — FuelUsed, Executed, OpCount[src opcode] — so the meters
// are exact at any call-out or trap, by construction (satellite: a
// bail/deopt can then never double-charge, because the decoded loop
// re-runs only instructions that charged nothing). Fuel is pre-checked
// per block: entry compares FuelUsed + blocklen against the ceiling and
// bails to the decoded loop charging nothing when the budget cannot
// cover the block (the same escape discipline as the fused handlers), so
// the per-template increments themselves can never overrun the ceiling
// and the fuel trap always fires in the interpreter at the exact source
// instruction.
//
// Stack discipline: r13 is authoritative while native code runs and is
// flushed to ExecState.Stack.Size before every call-out and exit; call
// helpers that can reallocate or reshape the stack are followed by
// reloads of r12/r13 (and r14 after frame switches). Block entries
// pre-reserve capacity for the block's inline pushes (Const/LocalRef)
// via a grow call-out, so the templates themselves never bounds-check
// capacity; ceiling checks (the *logical* stack limit) still run after
// every inline push, exactly like the interpreter's push probe.
//
// Control flow: branches inside compiled code patch to block entries;
// edges into uncompiled blocks exit with JitExit::Branch and the decoded
// index. Call/TailCall/Return are C++ call-outs that mutate the frame
// stack exactly as the interpreter does and return the next native
// entry (possibly in another JitCode's buffer — cross-code transfers
// are indirect jumps, never patched) or null with a status. The VM's
// frames never consume native stack: one enter() activation jumps
// between blocks and code objects until something exits.
//
// W^X: code is assembled into a std::vector, copied into an anonymous
// PROT_READ|PROT_WRITE mapping, and the mapping is flipped to
// PROT_READ|PROT_EXEC before JitCode::compile returns. No mapping is
// ever writable and executable at once, and failure to flip is a clean
// "no native code" result, never a fallback to RWX.
//
//===----------------------------------------------------------------------===//

#include "vm/Jit.h"

#include "support/Casting.h"
#include "support/Timer.h"
#include "vm/Machine.h"
#include "vm/Prims.h"

#include <cassert>
#include <cstddef>
#include <cstring>

#if defined(__x86_64__) && defined(__linux__)
#define PECOMP_JIT_HOST 1
#include <sys/mman.h>
#else
#define PECOMP_JIT_HOST 0
#endif

using namespace pecomp;
using namespace pecomp::vm;

bool pecomp::vm::jitAvailable() { return PECOMP_JIT_HOST != 0; }

// Out-of-line pieces that must see JitCode complete (Code.h keeps it
// forward-declared so every holder of a CodeObject does not pull in the
// JIT surface).
CodeObject::CodeObject(std::string Name, uint32_t Arity)
    : Name(std::move(Name)), Arity(Arity) {}
CodeObject::~CodeObject() = default;

const JitCode *CodeObject::jit() const {
  if (JState == JitState::Unknown) {
    Jitted = JitCode::compile(*this);
    JState = Jitted ? JitState::Ready : JitState::None;
  }
  return Jitted.get();
}

JitCode::~JitCode() {
#if PECOMP_JIT_HOST
  if (Mem)
    ::munmap(Mem, Size);
#endif
}

const JitCode *Machine::jitFor(const CodeObject &C) {
  if (Prof && !C.jitAttempted()) {
    Timer T;
    const JitCode *J = C.jit();
    satInc(Prof->JitNanos, static_cast<uint64_t>(T.seconds() * 1e9));
    return J;
  }
  return C.jit();
}

//===----------------------------------------------------------------------===//
// Runtime call-out helpers
//===----------------------------------------------------------------------===//
//
// Two calling classes, both taking (ExecState*, decoded index):
//  - continue-or-trap: return 1 to fall through to the next template, 0
//    after recording a trap (emitted code then exits via the epilogue);
//  - control-transfer: return the next native entry point, or null with
//    ExecState.Status set (Done / Trap / Switch).
// Each helper replays its opcode's interpreter checks verbatim — same
// TrapKind, same message, same faulting PC/opcode — so the four dispatch
// modes are indistinguishable through the trap surface.

namespace pecomp {
namespace vm {

class Jit {
public:
  static uint64_t prim(ExecState *ES, uint64_t Idx);
  static uint64_t globalRef(ExecState *ES, uint64_t Idx);
  static uint64_t freeRef(ExecState *ES, uint64_t Idx);
  static const void *call(ExecState *ES, uint64_t Idx);
  static const void *tailCall(ExecState *ES, uint64_t Idx);
  static const void *ret(ExecState *ES, uint64_t Idx);
  static void grow(ExecState *ES, uint64_t Need);
  static void stackTrap(ExecState *ES, uint64_t Idx);
  static void localTrap(ExecState *ES, uint64_t Idx);
  static void underflow(ExecState *ES, uint64_t Idx, uint64_t Need,
                        uint64_t What);

private:
  /// The instruction being executed: native code always runs the code of
  /// the *top* frame, and the caller passes its plain-stream index.
  static const DecodedInsn &insnAt(Machine &M, uint64_t Idx) {
    return M.Frames.back().Code->decoded()->Insns[Idx];
  }
  static Error underflowErr(Machine &M, size_t Need, const char *What) {
    return M.trap(TrapKind::StackUnderflow,
                  std::string("stack underflow in ") + What + " (have " +
                      std::to_string(M.ES.Stack.size()) + ", need " +
                      std::to_string(Need) + ")");
  }
  static Error overflowErr(Machine &M) {
    return M.trap(TrapKind::StackOverflow,
                  "value stack overflow (depth " +
                      std::to_string(M.ES.Stack.size()) + ", limit " +
                      std::to_string(M.Lim.MaxStackDepth) + ")");
  }
  /// Resolves where execution continues after a frame switch: the native
  /// entry for \p BytePC in \p C, or null + Switch when that code (or
  /// that block) is not native — the outer dispatcher picks the right
  /// loop from the already-consistent frame stack.
  static const void *continueAt(Machine &M, ExecState *ES,
                                const CodeObject &C, size_t BytePC);
};

} // namespace vm
} // namespace pecomp

const void *Jit::continueAt(Machine &M, ExecState *ES, const CodeObject &C,
                            size_t BytePC) {
  const DecodedStream *DS = M.decodedFor(C);
  if (DS && M.UseJit) {
    if (const JitCode *JC = M.jitFor(C))
      if (const void *E = JC->blockEntry(DS->indexOf(BytePC))) {
        // Execution stays native in the (possibly new) top frame:
        // refresh the captures view the inline FreeRef template reads.
        const Machine::Frame &F = M.Frames.back();
        ES->Frees = F.Closure ? F.Closure->Free.data() : nullptr;
        ES->NumFrees = F.Closure ? F.Closure->Free.size() : 0;
        return E;
      }
  }
  ES->Status = static_cast<uint64_t>(JitExit::Switch);
  return nullptr;
}

uint64_t Jit::prim(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  const PrimOp P = static_cast<PrimOp>(I.C);
  const size_t N = I.B; // arity cached at decode
  auto &St = ES->Stack;
  if (St.size() < N) {
    M.JitErr = underflowErr(M, N, "Prim");
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  std::span<const Value> Args(St.data() + St.size() - N, N);
  Result<Value> R = applyPrim(P, M.H, Args);
  if (!R) {
    M.JitErr = M.primError(R.takeError());
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  St.resize(St.size() - N);
  St.push_back(*R);
  if (M.H.faulted()) {
    M.TrapPC = I.NextPC;
    M.TrapOp = -1;
    M.JitErr = M.trap(TrapKind::HeapExhausted, M.H.faultMessage());
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  if (St.size() > ES->StackCeiling) {
    M.TrapPC = I.NextPC;
    M.TrapOp = -1;
    M.JitErr = overflowErr(M);
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  return 1;
}

uint64_t Jit::globalRef(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  if (I.A >= M.Globals.size() || !M.Globals[I.A].isValid()) {
    M.JitErr = M.trap(TrapKind::UndefinedGlobal,
                      "undefined global #" + std::to_string(I.A));
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  ES->Stack.push_back(M.Globals[I.A]);
  if (ES->Stack.size() > ES->StackCeiling) {
    M.TrapPC = I.NextPC;
    M.TrapOp = -1;
    M.JitErr = overflowErr(M);
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  return 1;
}

uint64_t Jit::freeRef(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  Machine::Frame &F = M.Frames.back();
  if (!F.Closure || I.A >= F.Closure->Free.size()) {
    M.JitErr = M.trap(TrapKind::IllegalInstruction,
                      "free index " + std::to_string(I.A) +
                          " beyond the closure's captures");
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  ES->Stack.push_back(F.Closure->Free[I.A]);
  if (ES->Stack.size() > ES->StackCeiling) {
    M.TrapPC = I.NextPC;
    M.TrapOp = -1;
    M.JitErr = overflowErr(M);
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return 0;
  }
  return 1;
}

const void *Jit::call(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  auto &St = ES->Stack;
  const size_t N = I.C;
  ES->Status = static_cast<uint64_t>(JitExit::Trap); // default for nulls below
  if (St.size() < N + 1) {
    M.JitErr = underflowErr(M, N + 1, "Call");
    return nullptr;
  }
  Value Callee = St[St.size() - N - 1];
  if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject())) {
    M.JitErr = M.trap(TrapKind::TypeError,
                      "call: not a procedure: " + valueToString(Callee));
    return nullptr;
  }
  auto *Clo = cast<ClosureObject>(Callee.asObject());
  if (Clo->Code->arity() != N) {
    M.JitErr = M.trap(TrapKind::ArityMismatch,
                      "call: " + Clo->Code->name() + " expects " +
                          std::to_string(Clo->Code->arity()) +
                          " argument(s), got " + std::to_string(N));
    return nullptr;
  }
  if (M.Lim.MaxFrames && M.Frames.size() >= M.Lim.MaxFrames) {
    M.JitErr = M.trap(TrapKind::FrameOverflow,
                      "call depth exceeds the frame limit of " +
                          std::to_string(M.Lim.MaxFrames));
    return nullptr;
  }
  M.Frames.back().PC = I.NextPC; // resume point (byte offset, as always)
  M.Frames.push_back(Machine::Frame{Clo->Code, 0, St.size() - N, Clo});
  ES->Base = St.size() - N;
  return continueAt(M, ES, *Clo->Code, 0);
}

const void *Jit::tailCall(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  auto &St = ES->Stack;
  const size_t N = I.C;
  ES->Status = static_cast<uint64_t>(JitExit::Trap);
  if (St.size() < N + 1) {
    M.JitErr = underflowErr(M, N + 1, "TailCall");
    return nullptr;
  }
  Value Callee = St[St.size() - N - 1];
  if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject())) {
    M.JitErr = M.trap(TrapKind::TypeError,
                      "call: not a procedure: " + valueToString(Callee));
    return nullptr;
  }
  auto *Clo = cast<ClosureObject>(Callee.asObject());
  if (Clo->Code->arity() != N) {
    M.JitErr = M.trap(TrapKind::ArityMismatch,
                      "call: " + Clo->Code->name() + " expects " +
                          std::to_string(Clo->Code->arity()) +
                          " argument(s), got " + std::to_string(N));
    return nullptr;
  }
  Machine::Frame &F = M.Frames.back();
  // Slide callee + args down over the current frame.
  size_t Src = St.size() - N - 1;
  size_t Dst = F.Base - 1;
  for (size_t K = 0; K <= N; ++K)
    St[Dst + K] = St[Src + K];
  St.resize(Dst + N + 1);
  F.Code = Clo->Code;
  F.PC = 0;
  F.Closure = Clo;
  // F.Base (and so ES->Base) unchanged.
  return continueAt(M, ES, *Clo->Code, 0);
}

const void *Jit::ret(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  auto &St = ES->Stack;
  Machine::Frame &F = M.Frames.back();
  if (St.size() < F.Base || St.empty()) {
    M.JitErr = underflowErr(M, 1, "Return");
    ES->Status = static_cast<uint64_t>(JitExit::Trap);
    return nullptr;
  }
  Value R = St.back();
  St.resize(F.Base - 1);
  St.push_back(R);
  M.Frames.pop_back();
  if (M.Frames.empty()) {
    ES->Ret = R;
    ES->Status = static_cast<uint64_t>(JitExit::Done);
    return nullptr;
  }
  Machine::Frame &F2 = M.Frames.back();
  ES->Base = F2.Base;
  return continueAt(M, ES, *F2.Code, F2.PC);
}

void Jit::grow(ExecState *ES, uint64_t Need) { ES->Stack.reserve(Need); }

void Jit::stackTrap(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.NextPC; // the push probe reports the *next* pc, no opcode
  M.TrapOp = -1;
  M.JitErr = overflowErr(M);
  ES->Status = static_cast<uint64_t>(JitExit::Trap);
}

void Jit::localTrap(ExecState *ES, uint64_t Idx) {
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  M.JitErr = M.trap(TrapKind::StackUnderflow,
                    "local slot " + std::to_string(I.A) +
                        " beyond the live stack");
  ES->Status = static_cast<uint64_t>(JitExit::Trap);
}

void Jit::underflow(ExecState *ES, uint64_t Idx, uint64_t Need,
                    uint64_t What) {
  static const char *const Names[] = {"Slide", "JumpIfFalse", "JumpIfTrue",
                                      "Halt"};
  Machine &M = *ES->M;
  const DecodedInsn &I = insnAt(M, Idx);
  M.TrapPC = I.PC;
  M.TrapOp = static_cast<int>(I.SrcOp);
  M.JitErr = underflowErr(M, Need, Names[What]);
  ES->Status = static_cast<uint64_t>(JitExit::Trap);
}

//===----------------------------------------------------------------------===//
// The compiler (host-gated)
//===----------------------------------------------------------------------===//

#if PECOMP_JIT_HOST

namespace {

// ExecState field offsets baked into the templates. The static_asserts
// are the whole safety story: if the struct moves, this file stops
// compiling instead of emitting wild loads.
constexpr int32_t OffData = 0;
constexpr int32_t OffSize = 8;
constexpr int32_t OffCap = 16;
constexpr int32_t OffBase = 24;
constexpr int32_t OffFuel = 32;
constexpr int32_t OffExec = 40;
constexpr int32_t OffFuelCeil = 48;
constexpr int32_t OffStackCeil = 56;
constexpr int32_t OffOpCount = 64;
constexpr int32_t OffExitIP = 80;
constexpr int32_t OffRet = 88;
constexpr int32_t OffStatus = 96;
constexpr int32_t OffGlobals = 104;
constexpr int32_t OffNumGlobals = 112;
constexpr int32_t OffFrees = 120;
constexpr int32_t OffNumFrees = 128;

static_assert(offsetof(ValueStack, Data) == OffData &&
                  offsetof(ValueStack, Size) == OffSize &&
                  offsetof(ValueStack, Cap) == OffCap,
              "ValueStack layout is part of the native ABI");
static_assert(offsetof(ExecState, Stack) == 0 &&
                  offsetof(ExecState, Base) == OffBase &&
                  offsetof(ExecState, FuelUsed) == OffFuel &&
                  offsetof(ExecState, Executed) == OffExec &&
                  offsetof(ExecState, FuelCeiling) == OffFuelCeil &&
                  offsetof(ExecState, StackCeiling) == OffStackCeil &&
                  offsetof(ExecState, OpCount) == OffOpCount &&
                  offsetof(ExecState, ExitIP) == OffExitIP &&
                  offsetof(ExecState, Ret) == OffRet &&
                  offsetof(ExecState, Status) == OffStatus &&
                  offsetof(ExecState, Globals) == OffGlobals &&
                  offsetof(ExecState, NumGlobals) == OffNumGlobals &&
                  offsetof(ExecState, Frees) == OffFrees &&
                  offsetof(ExecState, NumFrees) == OffNumFrees,
              "ExecState layout is part of the native ABI");
static_assert(sizeof(Value) == 8 && std::is_trivially_copyable_v<Value>,
              "stack slots are raw 8-byte moves in native code");
static_assert(static_cast<uint8_t>(ObjectKind::Pair) == 0,
              "Car/Cdr templates test the kind byte against zero");
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
static_assert(offsetof(PairObject, Car) == 16 &&
                  offsetof(PairObject, Cdr) == 24,
              "Car/Cdr templates load fixed offsets");
#pragma GCC diagnostic pop

enum Reg : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition codes (the tttn field of Jcc/CMOVcc).
constexpr uint8_t CcB = 0x2;
constexpr uint8_t CcAE = 0x3;
constexpr uint8_t CcE = 0x4;
constexpr uint8_t CcNE = 0x5;
constexpr uint8_t CcBE = 0x6;
constexpr uint8_t CcA = 0x7;
constexpr uint8_t CcL = 0xC;
constexpr uint8_t CcGE = 0xD;
constexpr uint8_t CcLE = 0xE;
constexpr uint8_t CcG = 0xF;
constexpr uint8_t CcZ = CcE;
constexpr uint8_t CcNZ = CcNE;

/// Minimal x86-64 assembler over a byte vector: exactly the encodings the
/// templates need, all 64-bit operations REX.W-prefixed, memory operands
/// always mod=10 (disp32) so rbp/r13-as-base quirks never arise, SIB
/// emitted whenever the base register requires it.
struct Asm {
  std::vector<uint8_t> B;

  size_t pos() const { return B.size(); }
  void u8(uint8_t X) { B.push_back(X); }
  void u32(uint32_t X) {
    for (int I = 0; I < 4; ++I)
      u8(static_cast<uint8_t>(X >> (8 * I)));
  }
  void u64(uint64_t X) {
    for (int I = 0; I < 8; ++I)
      u8(static_cast<uint8_t>(X >> (8 * I)));
  }
  void patch32(size_t Pos, uint32_t X) {
    for (int I = 0; I < 4; ++I)
      B[Pos + I] = static_cast<uint8_t>(X >> (8 * I));
  }

  void rexW(unsigned R, unsigned X, unsigned Base) {
    u8(static_cast<uint8_t>(0x48 | ((R >> 3) << 2) | ((X >> 3) << 1) |
                            (Base >> 3)));
  }
  static uint8_t modrm(unsigned Mod, unsigned R, unsigned Rm) {
    return static_cast<uint8_t>((Mod << 6) | ((R & 7) << 3) | (Rm & 7));
  }
  /// [Base + Disp] operand for the /R field.
  void memBD(unsigned R, unsigned Base, int32_t Disp) {
    u8(modrm(2, R, Base));
    if ((Base & 7) == 4)
      u8(0x24); // SIB: base only
    u32(static_cast<uint32_t>(Disp));
  }
  /// [Base + Index*8 + Disp] operand for the /R field.
  void memBIS8(unsigned R, unsigned Base, unsigned Index, int32_t Disp) {
    u8(modrm(2, R, 4));
    u8(static_cast<uint8_t>((3u << 6) | ((Index & 7) << 3) | (Base & 7)));
    u32(static_cast<uint32_t>(Disp));
  }

  void pushR(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(static_cast<uint8_t>(0x50 + (R & 7)));
  }
  void popR(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(static_cast<uint8_t>(0x58 + (R & 7)));
  }
  void movRI64(unsigned R, uint64_t Imm) {
    rexW(0, 0, R);
    u8(static_cast<uint8_t>(0xB8 + (R & 7)));
    u64(Imm);
  }
  void movRI32(unsigned R, uint32_t Imm) { // 32-bit move, zero-extends
    if (R >= 8)
      u8(0x41);
    u8(static_cast<uint8_t>(0xB8 + (R & 7)));
    u32(Imm);
  }
  void movRR(unsigned Dst, unsigned Src) {
    rexW(Src, 0, Dst);
    u8(0x89);
    u8(modrm(3, Src, Dst));
  }
  void loadRM(unsigned Dst, unsigned Base, int32_t D) {
    rexW(Dst, 0, Base);
    u8(0x8B);
    memBD(Dst, Base, D);
  }
  void storeMR(unsigned Base, int32_t D, unsigned Src) {
    rexW(Src, 0, Base);
    u8(0x89);
    memBD(Src, Base, D);
  }
  void loadRMI8(unsigned Dst, unsigned Base, unsigned Index, int32_t D) {
    rexW(Dst, Index, Base);
    u8(0x8B);
    memBIS8(Dst, Base, Index, D);
  }
  void storeMI8R(unsigned Base, unsigned Index, int32_t D, unsigned Src) {
    rexW(Src, Index, Base);
    u8(0x89);
    memBIS8(Src, Base, Index, D);
  }
  void addRI32(unsigned R, int32_t Imm) {
    rexW(0, 0, R);
    u8(0x81);
    u8(modrm(3, 0, R));
    u32(static_cast<uint32_t>(Imm));
  }
  void subRI32(unsigned R, int32_t Imm) {
    rexW(0, 0, R);
    u8(0x81);
    u8(modrm(3, 5, R));
    u32(static_cast<uint32_t>(Imm));
  }
  void cmpRI32(unsigned R, int32_t Imm) {
    rexW(0, 0, R);
    u8(0x81);
    u8(modrm(3, 7, R));
    u32(static_cast<uint32_t>(Imm));
  }
  void cmpRI8(unsigned R, int8_t Imm) {
    rexW(0, 0, R);
    u8(0x83);
    u8(modrm(3, 7, R));
    u8(static_cast<uint8_t>(Imm));
  }
  /// add qword [Base+D], Imm8 — the charging increment.
  void addMI8(unsigned Base, int32_t D, int8_t Imm) {
    rexW(0, 0, Base);
    u8(0x83);
    memBD(0, Base, D);
    u8(static_cast<uint8_t>(Imm));
  }
  void cmpRM(unsigned R, unsigned Base, int32_t D) {
    rexW(R, 0, Base);
    u8(0x3B);
    memBD(R, Base, D);
  }
  void cmpRR(unsigned A, unsigned Bb) { // flags = A - Bb
    rexW(Bb, 0, A);
    u8(0x39);
    u8(modrm(3, Bb, A));
  }
  void testRR(unsigned A, unsigned Bb) {
    rexW(Bb, 0, A);
    u8(0x85);
    u8(modrm(3, Bb, A));
  }
  void testEaxEax() {
    u8(0x85);
    u8(0xC0);
  }
  void testAlImm(uint8_t Imm) {
    u8(0xA8);
    u8(Imm);
  }
  void testClImm(uint8_t Imm) {
    u8(0xF6);
    u8(0xC1);
    u8(Imm);
  }
  void testDlImm(uint8_t Imm) {
    u8(0xF6);
    u8(0xC2);
    u8(Imm);
  }
  void andRR(unsigned Dst, unsigned Src) {
    rexW(Src, 0, Dst);
    u8(0x21);
    u8(modrm(3, Src, Dst));
  }
  void subRR(unsigned Dst, unsigned Src) {
    rexW(Src, 0, Dst);
    u8(0x29);
    u8(modrm(3, Src, Dst));
  }
  void leaRM(unsigned Dst, unsigned Base, int32_t D) {
    rexW(Dst, 0, Base);
    u8(0x8D);
    memBD(Dst, Base, D);
  }
  void leaRBI1(unsigned Dst, unsigned Base, unsigned Index, int32_t D) {
    rexW(Dst, Index, Base);
    u8(0x8D);
    u8(modrm(2, Dst, 4));
    u8(static_cast<uint8_t>(((Index & 7) << 3) | (Base & 7))); // scale 1
    u32(static_cast<uint32_t>(D));
  }
  void incR(unsigned R) {
    rexW(0, 0, R);
    u8(0xFF);
    u8(modrm(3, 0, R));
  }
  void decR(unsigned R) {
    rexW(0, 0, R);
    u8(0xFF);
    u8(modrm(3, 1, R));
  }
  void sarR1(unsigned R) {
    rexW(0, 0, R);
    u8(0xD1);
    u8(modrm(3, 7, R));
  }
  void imulRR(unsigned Dst, unsigned Src) {
    rexW(Dst, 0, Src);
    u8(0x0F);
    u8(0xAF);
    u8(modrm(3, Dst, Src));
  }
  void cmovRR(uint8_t CC, unsigned Dst, unsigned Src) {
    rexW(Dst, 0, Src);
    u8(0x0F);
    u8(static_cast<uint8_t>(0x40 + CC));
    u8(modrm(3, Dst, Src));
  }
  /// cmp byte [Base], Imm (Base must not need a SIB — RAX here).
  void cmpM8I(unsigned Base, uint8_t Imm) {
    assert((Base & 7) != 4 && (Base & 7) != 5 && Base < 8);
    u8(0x80);
    u8(modrm(0, 7, Base));
    u8(Imm);
  }
  void movMI32(unsigned Base, int32_t D, int32_t Imm) {
    rexW(0, 0, Base);
    u8(0xC7);
    memBD(0, Base, D);
    u32(static_cast<uint32_t>(Imm));
  }
  void callR(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(0xFF);
    u8(modrm(3, 2, R));
  }
  void jmpR(unsigned R) {
    if (R >= 8)
      u8(0x41);
    u8(0xFF);
    u8(modrm(3, 4, R));
  }
  /// Forward jump: returns the rel32 fixup position.
  size_t jcc(uint8_t CC) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 + CC));
    size_t P = pos();
    u32(0);
    return P;
  }
  size_t jmp() {
    u8(0xE9);
    size_t P = pos();
    u32(0);
    return P;
  }
  /// Backward/known-target jumps.
  void jmpTo(size_t Target) {
    u8(0xE9);
    u32(static_cast<uint32_t>(static_cast<int64_t>(Target) -
                              (static_cast<int64_t>(pos()) + 4)));
  }
  void jccTo(uint8_t CC, size_t Target) {
    u8(0x0F);
    u8(static_cast<uint8_t>(0x80 + CC));
    u32(static_cast<uint32_t>(static_cast<int64_t>(Target) -
                              (static_cast<int64_t>(pos()) + 4)));
  }
  void bind(size_t FixPos) { bindTo(FixPos, pos()); }
  void bindTo(size_t FixPos, size_t Target) {
    patch32(FixPos, static_cast<uint32_t>(static_cast<int64_t>(Target) -
                                          (static_cast<int64_t>(FixPos) + 4)));
  }
  void subRspI8(int8_t Imm) {
    u8(0x48);
    u8(0x83);
    u8(0xEC);
    u8(static_cast<uint8_t>(Imm));
  }
  void addRspI8(int8_t Imm) {
    u8(0x48);
    u8(0x83);
    u8(0xC4);
    u8(static_cast<uint8_t>(Imm));
  }
  void ret() { u8(0xC3); }
};

template <typename Fn> uint64_t fnAddr(Fn *F) {
  return reinterpret_cast<uint64_t>(F);
}

enum class StubKind : uint8_t { Bail, BranchExit, StackTrap, LocalTrap,
                                Underflow };

/// A jcc in a template whose out-of-line body is emitted after all
/// blocks (cold paths off the straight line).
struct StubReq {
  size_t JccPos;
  StubKind K;
  uint64_t A = 0; ///< decoded index (traps) or exit index (bail/branch)
  uint64_t Need = 0;
  uint64_t What = 0;
};

// Indices into Jit::underflow's name table.
constexpr uint64_t WhatSlide = 0;
constexpr uint64_t WhatJumpIfFalse = 1;
constexpr uint64_t WhatJumpIfTrue = 2;
constexpr uint64_t WhatHalt = 3;

/// The whole per-code-object compilation: block discovery + emission.
struct Compiler {
  const CodeObject &CO;
  const std::vector<DecodedInsn> &In;
  Asm A;
  size_t Epi = 0;
  std::vector<int64_t> EntryOff;
  std::vector<StubReq> Stubs;
  struct BlockFix {
    size_t Pos;
    size_t Target;
  };
  std::vector<BlockFix> BFix;
  // Value representation constants (Value keeps them private; the public
  // constructors are the supported way to obtain them).
  const uint64_t FalseRaw = Value::boolean(false).raw();
  const uint64_t TrueRaw = Value::boolean(true).raw();
  const uint64_t NilRaw = Value::nil().raw();
  const uint64_t FixnumZeroRaw = Value::fixnum(0).raw();

  Compiler(const CodeObject &CO, const std::vector<DecodedInsn> &In)
      : CO(CO), In(In) {}

  static bool supported(Op O) {
    // MakeClosure is the one source opcode left to the interpreter: it
    // allocates and captures, gains nothing from a template wrapping the
    // same C++ call, and (deliberately) keeps the block-granularity
    // fallback path exercised by every closure-creating program.
    return O != Op::MakeClosure;
  }
  static bool terminator(Op O) {
    switch (O) {
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
    case Op::Call:
    case Op::TailCall:
    case Op::Return:
    case Op::Halt:
      return true;
    default:
      return false;
    }
  }
  /// Ops after which control cannot fall through to the next template in
  /// this block's straight line.
  static bool noFallThrough(Op O) {
    switch (O) {
    case Op::Jump:
    case Op::Call:
    case Op::TailCall:
    case Op::Return:
    case Op::Halt:
      return true;
    default:
      return false;
    }
  }

  void emitCharge(Op SrcOp) {
    A.addMI8(RBX, OffFuel, 1);
    A.addMI8(RBX, OffExec, 1);
    A.addMI8(R15, 8 * static_cast<int32_t>(SrcOp), 1);
  }

  /// Status/ExitIP exit used for fuel bails and edges into uncompiled
  /// blocks: flush the stack pointer and leave through the epilogue.
  void emitFlagExit(JitExit S, uint64_t ExitIP) {
    A.movMI32(RBX, OffStatus, static_cast<int32_t>(S));
    A.movMI32(RBX, OffExitIP, static_cast<int32_t>(ExitIP));
    A.storeMR(RBX, OffSize, R13);
    A.jmpTo(Epi);
  }

  /// continue-or-trap call-out: on 0, the helper has set Status/JitErr
  /// and we exit; on 1, reload the (possibly reallocated/resized) stack.
  void emitContinueCall(uint64_t Fn, uint64_t Idx) {
    A.storeMR(RBX, OffSize, R13);
    A.movRR(RDI, RBX);
    A.movRI32(RSI, static_cast<uint32_t>(Idx));
    A.movRI64(RAX, Fn);
    A.callR(RAX);
    A.testEaxEax();
    A.jccTo(CcZ, Epi);
    A.loadRM(R12, RBX, OffData);
    A.loadRM(R13, RBX, OffSize);
  }

  /// control-transfer call-out: null return exits (status already set);
  /// otherwise reload the full register plan and jump to the next block,
  /// possibly in a different JitCode's buffer.
  void emitControlCall(uint64_t Fn, uint64_t Idx) {
    A.storeMR(RBX, OffSize, R13);
    A.movRR(RDI, RBX);
    A.movRI32(RSI, static_cast<uint32_t>(Idx));
    A.movRI64(RAX, Fn);
    A.callR(RAX);
    A.testRR(RAX, RAX);
    A.jccTo(CcZ, Epi);
    A.loadRM(R12, RBX, OffData);
    A.loadRM(R13, RBX, OffSize);
    A.loadRM(R14, RBX, OffBase);
    A.jmpR(RAX);
  }

  /// Inline templates for the hot prims, each guarded so that any case
  /// the template cannot reproduce bit-for-bit (wrong types, underflow)
  /// branches to the generic Jit::prim call-out, which replays the
  /// interpreter's checks in the interpreter's order.
  void emitPrim(const DecodedInsn &I, size_t Idx) {
    std::vector<size_t> Slow;
    auto ToSlow = [&](uint8_t CC) { Slow.push_back(A.jcc(CC)); };
    const PrimOp P = static_cast<PrimOp>(I.C);
    bool Fast = true;
    switch (P) {
    case PrimOp::Add:
    case PrimOp::Sub:
    case PrimOp::Mul:
    case PrimOp::NumEq:
    case PrimOp::Lt:
    case PrimOp::Gt:
    case PrimOp::Le:
    case PrimOp::Ge: {
      // Two fixnums. Tagged arithmetic identities (t(x) = 2x+1, all
      // mod 2^64, exactly applyPrim's wrapping uint64 arithmetic):
      //   add: t(x)+t(y)-1   sub: t(x)-t(y)+1   mul: (t(x)-1)*(t(y)>>1)+1
      // Ordered compares act on the raw words: t is strictly monotone in
      // the signed payload, so signed comparison of tags == comparison
      // of payloads.
      A.cmpRI8(R13, 2);
      ToSlow(CcB);
      A.loadRMI8(RAX, R12, R13, -16);
      A.loadRMI8(RCX, R12, R13, -8);
      A.movRR(RDX, RAX);
      A.andRR(RDX, RCX);
      A.testDlImm(1);
      ToSlow(CcZ);
      switch (P) {
      case PrimOp::Add:
        A.leaRBI1(RAX, RAX, RCX, -1);
        break;
      case PrimOp::Sub:
        A.subRR(RAX, RCX);
        A.incR(RAX);
        break;
      case PrimOp::Mul:
        A.decR(RAX);
        A.sarR1(RCX);
        A.imulRR(RAX, RCX);
        A.incR(RAX);
        break;
      default: {
        A.cmpRR(RAX, RCX);
        A.movRI32(RAX, static_cast<uint32_t>(FalseRaw));
        A.movRI32(RDX, static_cast<uint32_t>(TrueRaw));
        const uint8_t CC = P == PrimOp::NumEq ? CcE
                           : P == PrimOp::Lt  ? CcL
                           : P == PrimOp::Gt  ? CcG
                           : P == PrimOp::Le  ? CcLE
                                              : CcGE;
        A.cmovRR(CC, RAX, RDX);
        break;
      }
      }
      A.storeMI8R(R12, R13, -16, RAX);
      A.decR(R13);
      break;
    }
    case PrimOp::EqP: {
      A.cmpRI8(R13, 2);
      ToSlow(CcB);
      A.loadRMI8(RAX, R12, R13, -16);
      A.loadRMI8(RCX, R12, R13, -8);
      A.cmpRR(RAX, RCX); // eq? is raw-word identity for every value kind
      A.movRI32(RAX, static_cast<uint32_t>(FalseRaw));
      A.movRI32(RDX, static_cast<uint32_t>(TrueRaw));
      A.cmovRR(CcE, RAX, RDX);
      A.storeMI8R(R12, R13, -16, RAX);
      A.decR(R13);
      break;
    }
    case PrimOp::NullP:
    case PrimOp::Not:
    case PrimOp::NumberP: {
      A.cmpRI8(R13, 1);
      ToSlow(CcB);
      A.loadRMI8(RCX, R12, R13, -8);
      if (P == PrimOp::NumberP)
        A.testClImm(1); // fixnums are the only numbers, tagged xxx1
      else
        A.cmpRI8(RCX, static_cast<int8_t>(P == PrimOp::NullP ? NilRaw
                                                             : FalseRaw));
      A.movRI32(RAX, static_cast<uint32_t>(FalseRaw));
      A.movRI32(RDX, static_cast<uint32_t>(TrueRaw));
      A.cmovRR(P == PrimOp::NumberP ? CcNZ : CcE, RAX, RDX);
      A.storeMI8R(R12, R13, -8, RAX); // pop 1 push 1: replace in place
      break;
    }
    case PrimOp::ZeroP: {
      A.cmpRI8(R13, 1);
      ToSlow(CcB);
      A.loadRMI8(RCX, R12, R13, -8);
      A.testClImm(1);
      ToSlow(CcZ); // non-number: the call-out reports the type error
      A.cmpRI8(RCX, static_cast<int8_t>(FixnumZeroRaw));
      A.movRI32(RAX, static_cast<uint32_t>(FalseRaw));
      A.movRI32(RDX, static_cast<uint32_t>(TrueRaw));
      A.cmovRR(CcE, RAX, RDX);
      A.storeMI8R(R12, R13, -8, RAX);
      break;
    }
    case PrimOp::Car:
    case PrimOp::Cdr: {
      A.cmpRI8(R13, 1);
      ToSlow(CcB);
      A.loadRMI8(RAX, R12, R13, -8);
      A.testRR(RAX, RAX);
      ToSlow(CcZ); // invalid value: never a pair
      A.testAlImm(7);
      ToSlow(CcNZ); // not a heap pointer
      A.cmpM8I(RAX, 0); // ObjectKind::Pair
      ToSlow(CcNE);
      A.loadRM(RAX, RAX, P == PrimOp::Car ? 16 : 24);
      A.storeMI8R(R12, R13, -8, RAX);
      break;
    }
    default:
      Fast = false;
      break;
    }
    if (Fast) {
      size_t Done = A.jmp();
      for (size_t F : Slow)
        A.bind(F);
      emitContinueCall(fnAddr(&Jit::prim), Idx);
      A.bind(Done);
    } else {
      emitContinueCall(fnAddr(&Jit::prim), Idx);
    }
  }

  /// One source instruction's template. Every path charges exactly once
  /// (emitCharge) before any effect or trap branch.
  void emitInsn(const DecodedInsn &I, size_t Idx,
                const std::vector<uint8_t> &Compiles) {
    emitCharge(I.SrcOp);
    switch (I.Opcode) {
    case Op::Const: {
      // The heap is non-moving and the owning CodeStore roots every
      // literal, so the value's raw bits are a valid immediate forever.
      A.movRI64(RAX, CO.literals()[I.A].raw());
      A.storeMI8R(R12, R13, 0, RAX);
      A.incR(R13);
      A.cmpRM(R13, RBX, OffStackCeil);
      Stubs.push_back({A.jcc(CcA), StubKind::StackTrap, Idx});
      break;
    }
    case Op::LocalRef: {
      A.leaRM(RCX, R14, static_cast<int32_t>(I.A));
      A.cmpRR(RCX, R13);
      Stubs.push_back({A.jcc(CcAE), StubKind::LocalTrap, Idx});
      A.loadRMI8(RAX, R12, RCX, 0);
      A.storeMI8R(R12, R13, 0, RAX);
      A.incR(R13);
      A.cmpRM(R13, RBX, OffStackCeil);
      Stubs.push_back({A.jcc(CcA), StubKind::StackTrap, Idx});
      break;
    }
    case Op::FreeRef: {
      // Captures view from ExecState (refreshed at every frame switch
      // that stays native). NumFrees is 0 for a closure-less frame, so
      // one unsigned bound check covers both trap shapes; the call-out
      // replays the checks for the trap message and context.
      A.loadRM(RAX, RBX, OffNumFrees);
      A.cmpRI32(RAX, static_cast<int32_t>(I.A));
      size_t SlowF = A.jcc(CcBE); // NumFrees <= A: trap in the call-out
      A.loadRM(RAX, RBX, OffFrees);
      A.loadRM(RAX, RAX, static_cast<int32_t>(8 * I.A));
      A.storeMI8R(R12, R13, 0, RAX);
      A.incR(R13);
      A.cmpRM(R13, RBX, OffStackCeil);
      Stubs.push_back({A.jcc(CcA), StubKind::StackTrap, Idx});
      size_t DoneF = A.jmp();
      A.bind(SlowF);
      emitContinueCall(fnAddr(&Jit::freeRef), Idx);
      A.bind(DoneF);
      break;
    }
    case Op::GlobalRef: {
      // Globals are immutable while the machine runs (no opcode writes
      // one), so the flat view loaded per native entry stays valid. An
      // invalid (never-defined) slot is raw zero — compile() asserts it.
      A.loadRM(RAX, RBX, OffNumGlobals);
      A.cmpRI32(RAX, static_cast<int32_t>(I.A));
      size_t SlowG1 = A.jcc(CcBE); // NumGlobals <= A: trap in the call-out
      A.loadRM(RAX, RBX, OffGlobals);
      A.loadRM(RAX, RAX, static_cast<int32_t>(8 * I.A));
      A.testRR(RAX, RAX);
      size_t SlowG2 = A.jcc(CcZ); // undefined global: trap in the call-out
      A.storeMI8R(R12, R13, 0, RAX);
      A.incR(R13);
      A.cmpRM(R13, RBX, OffStackCeil);
      Stubs.push_back({A.jcc(CcA), StubKind::StackTrap, Idx});
      size_t DoneG = A.jmp();
      A.bind(SlowG1);
      A.bind(SlowG2);
      emitContinueCall(fnAddr(&Jit::globalRef), Idx);
      A.bind(DoneG);
      break;
    }
    case Op::Prim:
      emitPrim(I, Idx);
      break;
    case Op::Slide: {
      const uint32_t N = I.A;
      A.cmpRI32(R13, static_cast<int32_t>(N + 1));
      Stubs.push_back({A.jcc(CcB), StubKind::Underflow, Idx, N + 1,
                       WhatSlide});
      A.loadRMI8(RAX, R12, R13, -8);
      if (N)
        A.subRI32(R13, static_cast<int32_t>(N));
      A.storeMI8R(R12, R13, -8, RAX);
      break;
    }
    case Op::Jump: {
      const size_t T = static_cast<size_t>(I.Target);
      if (Compiles[T])
        BFix.push_back({A.jmp(), T});
      else
        emitFlagExit(JitExit::Branch, T);
      break;
    }
    case Op::JumpIfFalse:
    case Op::JumpIfTrue: {
      const size_t T = static_cast<size_t>(I.Target);
      A.testRR(R13, R13);
      Stubs.push_back({A.jcc(CcZ), StubKind::Underflow, Idx, 1,
                       I.Opcode == Op::JumpIfFalse ? WhatJumpIfFalse
                                                   : WhatJumpIfTrue});
      A.decR(R13);
      A.loadRMI8(RAX, R12, R13, 0);
      A.cmpRI8(RAX, static_cast<int8_t>(FalseRaw)); // isTruthy == != #f
      const uint8_t CC = I.Opcode == Op::JumpIfFalse ? CcE : CcNE;
      if (Compiles[T])
        BFix.push_back({A.jcc(CC), T});
      else
        Stubs.push_back({A.jcc(CC), StubKind::BranchExit, T});
      break; // fall-through edge handled at block end
    }
    case Op::Halt: {
      A.testRR(R13, R13);
      Stubs.push_back({A.jcc(CcZ), StubKind::Underflow, Idx, 1, WhatHalt});
      A.loadRMI8(RAX, R12, R13, -8);
      A.storeMR(RBX, OffRet, RAX);
      A.movMI32(RBX, OffStatus, static_cast<int32_t>(JitExit::Done));
      A.storeMR(RBX, OffSize, R13);
      A.jmpTo(Epi);
      break;
    }
    case Op::Call:
      emitControlCall(fnAddr(&Jit::call), Idx);
      break;
    case Op::TailCall:
      emitControlCall(fnAddr(&Jit::tailCall), Idx);
      break;
    case Op::Return:
      emitControlCall(fnAddr(&Jit::ret), Idx);
      break;
    default:
      assert(false && "unsupported opcode reached emission");
      break;
    }
  }
};

} // namespace

std::unique_ptr<JitCode> JitCode::compile(const CodeObject &CO) {
  // The GlobalRef template detects a never-defined slot with one
  // test-for-zero; that is only sound while the invalid Value is raw 0.
  assert(!Value().isValid() && Value().raw() == 0 &&
         "GlobalRef template assumes the invalid Value is raw zero");
  const DecodedStream *DS = CO.decoded();
  if (!DS || DS->Insns.empty())
    return nullptr;
  const std::vector<DecodedInsn> &In = DS->Insns;
  const size_t N = In.size();

  // Basic-block discovery over the plain (unfused) stream: leaders are
  // index 0, every jump target, and every successor of an instruction
  // that transfers or may transfer control.
  std::vector<uint8_t> Leader(N, 0);
  Leader[0] = 1;
  for (size_t I = 0; I < N; ++I) {
    if (!Compiler::terminator(In[I].Opcode))
      continue;
    if (In[I].Target >= 0 && static_cast<size_t>(In[I].Target) < N)
      Leader[static_cast<size_t>(In[I].Target)] = 1;
    if (I + 1 < N)
      Leader[I + 1] = 1;
  }

  // Block extents, compilability, and the stack headroom each block's
  // entry must pre-reserve: the maximum prefix growth of the stack over
  // the block, so every inline push (Const/LocalRef store through the
  // raw Data pointer) lands inside capacity no matter how the helper
  // call-outs (which push safely via push_back but still consume the
  // headroom) interleave with it.
  std::vector<int32_t> BlockEnd(N, -1);
  std::vector<uint8_t> Compiles(N, 0);
  std::vector<uint32_t> InlinePush(N, 0);
  size_t NumBlocks = 0, NumInsns = 0;
  for (size_t L = 0; L < N; ++L) {
    if (!Leader[L])
      continue;
    size_t E = L;
    bool Ok = true;
    int64_t Delta = 0, MaxExcursion = 0;
    while (E < N) {
      const Op O = In[E].Opcode;
      if (!Compiler::supported(O))
        Ok = false;
      switch (O) {
      case Op::Const:
      case Op::LocalRef:
      case Op::GlobalRef:
      case Op::FreeRef:
        ++Delta;
        break;
      case Op::Prim: // pops arity (cached in B), pushes the result
        Delta += 1 - static_cast<int64_t>(In[E].B);
        break;
      case Op::Slide:
        Delta -= static_cast<int64_t>(In[E].A);
        break;
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        --Delta;
        break;
      default: // terminators and MakeClosure: no inline push after them
        break;
      }
      if (Delta > MaxExcursion)
        MaxExcursion = Delta;
      const bool Term = Compiler::terminator(O);
      ++E;
      if (Term || (E < N && Leader[E]))
        break;
    }
    const uint32_t Pushes = static_cast<uint32_t>(MaxExcursion);
    // decode() guarantees control cannot run off the end, but stay
    // defensive: a block that could is simply not compiled.
    if (E == N && !Compiler::terminator(In[E - 1].Opcode))
      Ok = false;
    BlockEnd[L] = static_cast<int32_t>(E);
    Compiles[L] = Ok;
    InlinePush[L] = Pushes;
    if (Ok) {
      ++NumBlocks;
      NumInsns += E - L;
    }
  }
  if (!NumBlocks)
    return nullptr;

  Compiler C(CO, In);
  Asm &A = C.A;

  // Entry thunk at offset 0: (ExecState*, block entry) -> run.
  A.pushR(RBP);
  A.pushR(RBX);
  A.pushR(R12);
  A.pushR(R13);
  A.pushR(R14);
  A.pushR(R15);
  A.subRspI8(8); // 16-byte alignment at the emitted call sites
  A.movRR(RBX, RDI);
  A.loadRM(R12, RBX, OffData);
  A.loadRM(R13, RBX, OffSize);
  A.loadRM(R14, RBX, OffBase);
  A.loadRM(R15, RBX, OffOpCount);
  A.jmpR(RSI);

  // Shared epilogue every exit path jumps to.
  C.Epi = A.pos();
  A.addRspI8(8);
  A.popR(R15);
  A.popR(R14);
  A.popR(R13);
  A.popR(R12);
  A.popR(RBX);
  A.popR(RBP);
  A.ret();

  C.EntryOff.assign(N, -1);
  for (size_t L = 0; L < N; ++L) {
    if (!Leader[L] || !Compiles[L])
      continue;
    const size_t E = static_cast<size_t>(BlockEnd[L]);
    C.EntryOff[L] = static_cast<int64_t>(A.pos());

    // Block-entry fuel check: can the budget cover the whole block? If
    // not, exit with nothing charged; the decoded loop re-runs from this
    // leader, charging per instruction, and reports the fuel trap at the
    // exact source instruction (runNative sets JitSkipOnce so the
    // decoded loop gets one uninterrupted pass at the block).
    A.loadRM(RAX, RBX, OffFuel);
    A.addRI32(RAX, static_cast<int32_t>(E - L));
    A.cmpRM(RAX, RBX, OffFuelCeil);
    C.Stubs.push_back({A.jcc(CcA), StubKind::Bail, L});

    // Capacity headroom for the block's inline pushes (a grow call-out,
    // not a trap: the logical stack ceiling is checked per push).
    if (InlinePush[L]) {
      A.leaRM(RAX, R13, static_cast<int32_t>(InlinePush[L]));
      A.cmpRM(RAX, RBX, OffCap);
      size_t Skip = A.jcc(CcBE);
      A.storeMR(RBX, OffSize, R13);
      A.movRR(RDI, RBX);
      A.movRR(RSI, RAX);
      A.movRI64(RAX, fnAddr(&Jit::grow));
      A.callR(RAX);
      A.loadRM(R12, RBX, OffData);
      A.bind(Skip);
    }

    for (size_t I = L; I < E; ++I)
      C.emitInsn(In[I], I, Compiles);

    // Fall-through edge out of the block (branch-not-taken or a plain
    // leader cut): the successor block, if compiled, is emitted
    // immediately after us (leaders are emitted in ascending order), so
    // control falls into its entry check; otherwise exit to the decoded
    // loop at the successor.
    if (!Compiler::noFallThrough(In[E - 1].Opcode)) {
      if (!(E < N && Compiles[E]))
        C.emitFlagExit(JitExit::Branch, E);
    }
  }

  // Cold stubs, off the straight-line paths.
  for (const StubReq &S : C.Stubs) {
    A.bind(S.JccPos);
    switch (S.K) {
    case StubKind::Bail:
      C.emitFlagExit(JitExit::Bail, S.A);
      break;
    case StubKind::BranchExit:
      C.emitFlagExit(JitExit::Branch, S.A);
      break;
    case StubKind::StackTrap:
    case StubKind::LocalTrap: {
      A.storeMR(RBX, OffSize, R13);
      A.movRR(RDI, RBX);
      A.movRI32(RSI, static_cast<uint32_t>(S.A));
      A.movRI64(RAX, S.K == StubKind::StackTrap ? fnAddr(&Jit::stackTrap)
                                                : fnAddr(&Jit::localTrap));
      A.callR(RAX);
      A.jmpTo(C.Epi);
      break;
    }
    case StubKind::Underflow: {
      A.storeMR(RBX, OffSize, R13);
      A.movRR(RDI, RBX);
      A.movRI32(RSI, static_cast<uint32_t>(S.A));
      A.movRI32(RDX, static_cast<uint32_t>(S.Need));
      A.movRI32(RCX, static_cast<uint32_t>(S.What));
      A.movRI64(RAX, fnAddr(&Jit::underflow));
      A.callR(RAX);
      A.jmpTo(C.Epi);
      break;
    }
    }
  }

  // Patch intra-buffer block-to-block edges.
  for (const Compiler::BlockFix &F : C.BFix) {
    assert(C.EntryOff[F.Target] >= 0 && "branch into uncompiled block");
    A.bindTo(F.Pos, static_cast<size_t>(C.EntryOff[F.Target]));
  }

  // W^X finalize: RW map, copy, flip to RX. Any failure is "no native
  // code", never an RWX mapping.
  const size_t Sz = A.B.size();
  void *Mem = ::mmap(nullptr, Sz, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (Mem == MAP_FAILED)
    return nullptr;
  std::memcpy(Mem, A.B.data(), Sz);
  if (::mprotect(Mem, Sz, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(Mem, Sz);
    return nullptr;
  }

  std::unique_ptr<JitCode> JC(new JitCode());
  JC->Mem = static_cast<uint8_t *>(Mem);
  JC->Size = Sz;
  JC->Entries.assign(N, nullptr);
  for (size_t L = 0; L < N; ++L)
    if (C.EntryOff[L] >= 0)
      JC->Entries[L] = JC->Mem + C.EntryOff[L];
  JC->NumBlocks = NumBlocks;
  JC->NumInsns = NumInsns;
  return JC;
}

//===----------------------------------------------------------------------===//
// Machine::runNative — the driver around one native activation
//===----------------------------------------------------------------------===//

std::optional<Result<Value>> Machine::runNative(const JitCode &JC,
                                                const DecodedStream &DS) {
  const DecodedInsn *In = DS.Insns.data();
  const size_t IP = DS.indexOf(Frames.back().PC);
  const void *Entry = JC.blockEntry(IP);
  assert(Entry && "runNative caller must check blockEntry");

  // Entry governance, mirroring runDecoded: a pre-existing heap fault or
  // overdeep stack is reported before any instruction runs, with the
  // context the interpreter's first dispatch would attach.
  if (H.faulted()) {
    TrapPC = In[IP].PC;
    TrapOp = -1;
    return trap(TrapKind::HeapExhausted, H.faultMessage());
  }
  const uint64_t StackCeil = Lim.MaxStackDepth ? Lim.MaxStackDepth : UINT64_MAX;
  if (ES.Stack.size() > StackCeil) {
    TrapPC = In[IP].PC;
    TrapOp = -1;
    return trap(TrapKind::StackOverflow,
                "value stack overflow (depth " +
                    std::to_string(ES.Stack.size()) + ", limit " +
                    std::to_string(Lim.MaxStackDepth) + ")");
  }

  ES.FuelCeiling = Lim.Fuel ? Lim.Fuel : UINT64_MAX;
  ES.StackCeiling = StackCeil;
  ES.Base = Frames.back().Base;
  ES.M = this;
  ES.OpCount = Prof ? Prof->OpCount.data() : OpCountSink.data();
  ES.ExitIP = 0;
  ES.Status = 0;
  ES.Globals = Globals.data();
  ES.NumGlobals = Globals.size();
  const Machine::Frame &TopF = Frames.back();
  ES.Frees = TopF.Closure ? TopF.Closure->Free.data() : nullptr;
  ES.NumFrees = TopF.Closure ? TopF.Closure->Free.size() : 0;
  if (Prof)
    satInc(Prof->JitEnters);

  JC.enter(&ES, Entry);

  switch (static_cast<JitExit>(ES.Status)) {
  case JitExit::Done: {
    Value R = ES.Ret;
    ES.Ret = Value();
    return R;
  }
  case JitExit::Trap: {
    assert(JitErr && "native trap exit without a pending error");
    Error E = std::move(*JitErr);
    JitErr.reset();
    return Result<Value>(std::move(E));
  }
  case JitExit::Bail: {
    if (Prof)
      satInc(Prof->JitBails);
    // Nothing was charged for the bailed block; park the frame on its
    // leader and let the decoded loop run it once (JitSkipOnce), charging
    // per instruction up to the fuel trap — or past it, if a non-fuel
    // trap strikes first.
    Frame &F = Frames.back();
    F.PC = F.Code->decoded()->Insns[ES.ExitIP].PC;
    JitSkipOnce = true;
    return std::nullopt;
  }
  case JitExit::Branch: {
    if (Prof)
      satInc(Prof->JitFallbacks);
    // An edge inside the current frame reached an uncompiled block: park
    // the frame there; the decoded loop takes over and hands control
    // back at the next compiled block boundary (PECOMP_JIT_RESUME).
    Frame &F = Frames.back();
    F.PC = F.Code->decoded()->Insns[ES.ExitIP].PC;
    return std::nullopt;
  }
  case JitExit::Switch:
    if (Prof)
      satInc(Prof->JitFallbacks);
    // Frame switch into code (or a block) with no native entry; the
    // helper left frames/PCs consistent for the outer dispatcher.
    return std::nullopt;
  }
  assert(false && "native code exited without a status");
  return std::nullopt;
}

#else // !PECOMP_JIT_HOST

std::unique_ptr<JitCode> JitCode::compile(const CodeObject &) {
  return nullptr;
}

std::optional<Result<Value>> Machine::runNative(const JitCode &,
                                                const DecodedStream &) {
  // Unreachable: jitFor() never produces a JitCode on hosts without the
  // tier, so run() never selects the native path.
  return std::nullopt;
}

#endif // PECOMP_JIT_HOST
