//===- vm/Profile.cpp - VM execution profiling ----------------------------===//

#include "vm/Profile.h"

#include <algorithm>
#include <cstdio>

using namespace pecomp;
using namespace pecomp::vm;

std::string Profile::report() const {
  const uint64_t Total = instructions();

  // Opcodes sorted by execution count, zero rows omitted.
  std::array<size_t, NumOpcodes> Order;
  for (size_t I = 0; I < NumOpcodes; ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return OpCount[A] > OpCount[B]; });

  std::string Out = "vm profile:\n";
  char Line[128];
  for (size_t I : Order) {
    if (!OpCount[I])
      continue;
    double Pct = Total ? 100.0 * static_cast<double>(OpCount[I]) /
                             static_cast<double>(Total)
                       : 0.0;
    snprintf(Line, sizeof(Line), "  %-12s %12llu  %5.1f%%\n",
             opMnemonic(static_cast<Op>(I)),
             static_cast<unsigned long long>(OpCount[I]), Pct);
    Out += Line;
  }
  snprintf(Line, sizeof(Line),
           "  total        %12llu instruction(s)\n",
           static_cast<unsigned long long>(Total));
  Out += Line;
  snprintf(Line, sizeof(Line), "  calls %llu, traps %llu\n",
           static_cast<unsigned long long>(Calls),
           static_cast<unsigned long long>(Traps));
  Out += Line;
  snprintf(Line, sizeof(Line), "  decode %.3f ms, exec %.3f ms\n",
           static_cast<double>(DecodeNanos) / 1e6,
           static_cast<double>(ExecNanos) / 1e6);
  Out += Line;
  return Out;
}
