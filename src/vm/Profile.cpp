//===- vm/Profile.cpp - VM execution profiling ----------------------------===//

#include "vm/Profile.h"

#include <algorithm>
#include <cstdio>

using namespace pecomp;
using namespace pecomp::vm;

std::vector<Profile::OpPair> Profile::topPairs(size_t N) const {
  std::vector<OpPair> Pairs;
  for (size_t Prev = 0; Prev < NumOpcodes; ++Prev)
    for (size_t Cur = 0; Cur < NumOpcodes; ++Cur)
      if (uint64_t C = PairCount[Prev * NumOpcodes + Cur])
        Pairs.push_back({static_cast<Op>(Prev), static_cast<Op>(Cur), C});
  std::stable_sort(Pairs.begin(), Pairs.end(),
                   [](const OpPair &A, const OpPair &B) {
                     return A.Count > B.Count;
                   });
  if (Pairs.size() > N)
    Pairs.resize(N);
  return Pairs;
}

size_t Profile::addCoverage(support::CoverageMap &M) const {
  size_t New = 0;
  for (size_t I = 0; I < NumOpcodes; ++I)
    if (OpCount[I])
      New += M.add(support::CovOpcode, I);
  for (size_t Row = 0; Row <= NumOpcodes; ++Row)
    for (size_t Cur = 0; Cur < NumOpcodes; ++Cur)
      if (PairCount[Row * NumOpcodes + Cur])
        New += M.add(support::CovDigram, Row * NumOpcodes + Cur);
  for (size_t I = 0; I < NumFusedOps; ++I)
    if (FusedCount[I])
      New += M.add(support::CovFusedOp, I);
  return New;
}

std::string Profile::report() const {
  const uint64_t Total = instructions();

  // Opcodes sorted by execution count, zero rows omitted.
  std::array<size_t, NumOpcodes> Order;
  for (size_t I = 0; I < NumOpcodes; ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return OpCount[A] > OpCount[B]; });

  std::string Out = "vm profile:\n";
  char Line[128];
  for (size_t I : Order) {
    if (!OpCount[I])
      continue;
    double Pct = Total ? 100.0 * static_cast<double>(OpCount[I]) /
                             static_cast<double>(Total)
                       : 0.0;
    snprintf(Line, sizeof(Line), "  %-12s %12llu  %5.1f%%\n",
             opMnemonic(static_cast<Op>(I)),
             static_cast<unsigned long long>(OpCount[I]), Pct);
    Out += Line;
  }
  snprintf(Line, sizeof(Line),
           "  total        %12llu instruction(s)\n",
           static_cast<unsigned long long>(Total));
  Out += Line;
  std::vector<OpPair> Pairs = topPairs(8);
  if (!Pairs.empty()) {
    Out += "  hottest opcode pairs:\n";
    for (const OpPair &P : Pairs) {
      std::string Name =
          std::string(opMnemonic(P.Prev)) + "+" + opMnemonic(P.Cur);
      snprintf(Line, sizeof(Line), "    %-24s %12llu\n", Name.c_str(),
               static_cast<unsigned long long>(P.Count));
      Out += Line;
    }
  }
  if (fusedExecutions()) {
    Out += "  fused dispatches:\n";
    for (size_t I = 0; I < NumFusedOps; ++I) {
      if (!FusedCount[I])
        continue;
      snprintf(Line, sizeof(Line), "    %-24s %12llu\n",
               opMnemonic(static_cast<Op>(NumOpcodes + I)),
               static_cast<unsigned long long>(FusedCount[I]));
      Out += Line;
    }
  }
  snprintf(Line, sizeof(Line), "  calls %llu, traps %llu\n",
           static_cast<unsigned long long>(Calls),
           static_cast<unsigned long long>(Traps));
  Out += Line;
  snprintf(Line, sizeof(Line), "  decode %.3f ms, exec %.3f ms\n",
           static_cast<double>(DecodeNanos) / 1e6,
           static_cast<double>(ExecNanos) / 1e6);
  Out += Line;
  return Out;
}
