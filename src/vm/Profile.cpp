//===- vm/Profile.cpp - VM execution profiling ----------------------------===//

#include "vm/Profile.h"

#include <algorithm>
#include <cstdio>

using namespace pecomp;
using namespace pecomp::vm;

void ArgCensus::observe(std::string_view Text) {
  // Values without an injective external rendering (closures, boxes —
  // anything printed as "#<...>") can never key a cache entry or be
  // guard-compared across requests, so one of them poisons the slot.
  if (Text.find("#<") != std::string_view::npos) {
    Sampleable = false;
    return;
  }
  for (ValueCount &V : Values)
    if (V.Text == Text) {
      satInc(V.Count);
      return;
    }
  if (Values.size() < MaxDistinct) {
    Values.push_back({std::string(Text), 1});
    return;
  }
  satInc(Overflow);
}

uint64_t ArgCensus::total() const {
  uint64_t N = Overflow;
  for (const ValueCount &V : Values)
    N = (N > UINT64_MAX - V.Count) ? UINT64_MAX : N + V.Count;
  return N;
}

const ArgCensus::ValueCount *ArgCensus::top() const {
  const ValueCount *Best = nullptr;
  for (const ValueCount &V : Values)
    if (!Best || V.Count > Best->Count)
      Best = &V;
  return Best;
}

double ArgCensus::topShare() const {
  if (!Sampleable)
    return 0;
  const ValueCount *Best = top();
  uint64_t Total = total();
  if (!Best || !Total)
    return 0;
  return static_cast<double>(Best->Count) / static_cast<double>(Total);
}

void ArgCensus::merge(const ArgCensus &O) {
  if (!O.Sampleable)
    Sampleable = false;
  satInc(Overflow, O.Overflow);
  for (const ValueCount &V : O.Values) {
    bool Found = false;
    for (ValueCount &Mine : Values)
      if (Mine.Text == V.Text) {
        satInc(Mine.Count, V.Count);
        Found = true;
        break;
      }
    if (!Found) {
      if (Values.size() < MaxDistinct)
        Values.push_back(V);
      else
        satInc(Overflow, V.Count);
    }
  }
}

void CallSiteSample::merge(const CallSiteSample &O) {
  satInc(Calls, O.Calls);
  if (Slots.size() < O.Slots.size())
    Slots.resize(O.Slots.size());
  for (size_t I = 0; I != O.Slots.size(); ++I)
    Slots[I].merge(O.Slots[I]);
}

void Profile::sampleCall(std::string_view Callee, std::span<const Value> Args) {
  auto It = CallSites.find(std::string(Callee));
  if (It == CallSites.end()) {
    if (CallSites.size() >= MaxSampledSites)
      return; // site table full: drop, never grow unboundedly
    It = CallSites.emplace(std::string(Callee), CallSiteSample{}).first;
  }
  CallSiteSample &S = It->second;
  satInc(S.Calls);
  if (S.Slots.size() < Args.size())
    S.Slots.resize(Args.size());
  for (size_t I = 0; I != Args.size(); ++I)
    S.Slots[I].observe(valueToString(Args[I]));
}

CallSiteSample Profile::takeCallSite(const std::string &Callee) {
  auto It = CallSites.find(Callee);
  if (It == CallSites.end())
    return {};
  CallSiteSample Out = std::move(It->second);
  CallSites.erase(It);
  return Out;
}

void Profile::accumulate(const Profile &O) {
  for (size_t I = 0; I != NumOpcodes; ++I)
    satInc(OpCount[I], O.OpCount[I]);
  for (size_t I = 0; I != PairCount.size(); ++I)
    satInc(PairCount[I], O.PairCount[I]);
  for (size_t I = 0; I != NumFusedOps; ++I)
    satInc(FusedCount[I], O.FusedCount[I]);
  satInc(Calls, O.Calls);
  satInc(Traps, O.Traps);
  satInc(DecodeNanos, O.DecodeNanos);
  satInc(ExecNanos, O.ExecNanos);
  satInc(GuardHits, O.GuardHits);
  satInc(GuardMisses, O.GuardMisses);
  satInc(JitEnters, O.JitEnters);
  satInc(JitBails, O.JitBails);
  satInc(JitFallbacks, O.JitFallbacks);
  satInc(JitNanos, O.JitNanos);
  for (const auto &[Name, Site] : O.CallSites) {
    auto It = CallSites.find(Name);
    if (It == CallSites.end()) {
      if (CallSites.size() < MaxSampledSites)
        CallSites.emplace(Name, Site);
      continue;
    }
    It->second.merge(Site);
  }
}

std::vector<Profile::OpPair> Profile::topPairs(size_t N) const {
  std::vector<OpPair> Pairs;
  for (size_t Prev = 0; Prev < NumOpcodes; ++Prev)
    for (size_t Cur = 0; Cur < NumOpcodes; ++Cur)
      if (uint64_t C = PairCount[Prev * NumOpcodes + Cur])
        Pairs.push_back({static_cast<Op>(Prev), static_cast<Op>(Cur), C});
  std::stable_sort(Pairs.begin(), Pairs.end(),
                   [](const OpPair &A, const OpPair &B) {
                     return A.Count > B.Count;
                   });
  if (Pairs.size() > N)
    Pairs.resize(N);
  return Pairs;
}

size_t Profile::addCoverage(support::CoverageMap &M) const {
  size_t New = 0;
  for (size_t I = 0; I < NumOpcodes; ++I)
    if (OpCount[I])
      New += M.add(support::CovOpcode, I);
  for (size_t Row = 0; Row <= NumOpcodes; ++Row)
    for (size_t Cur = 0; Cur < NumOpcodes; ++Cur)
      if (PairCount[Row * NumOpcodes + Cur])
        New += M.add(support::CovDigram, Row * NumOpcodes + Cur);
  for (size_t I = 0; I < NumFusedOps; ++I)
    if (FusedCount[I])
      New += M.add(support::CovFusedOp, I);
  return New;
}

std::string Profile::report() const {
  const uint64_t Total = instructions();

  // Opcodes sorted by execution count, zero rows omitted.
  std::array<size_t, NumOpcodes> Order;
  for (size_t I = 0; I < NumOpcodes; ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return OpCount[A] > OpCount[B]; });

  std::string Out = "vm profile:\n";
  char Line[128];
  for (size_t I : Order) {
    if (!OpCount[I])
      continue;
    double Pct = Total ? 100.0 * static_cast<double>(OpCount[I]) /
                             static_cast<double>(Total)
                       : 0.0;
    snprintf(Line, sizeof(Line), "  %-12s %12llu  %5.1f%%\n",
             opMnemonic(static_cast<Op>(I)),
             static_cast<unsigned long long>(OpCount[I]), Pct);
    Out += Line;
  }
  snprintf(Line, sizeof(Line),
           "  total        %12llu instruction(s)\n",
           static_cast<unsigned long long>(Total));
  Out += Line;
  std::vector<OpPair> Pairs = topPairs(8);
  if (!Pairs.empty()) {
    Out += "  hottest opcode pairs:\n";
    for (const OpPair &P : Pairs) {
      std::string Name =
          std::string(opMnemonic(P.Prev)) + "+" + opMnemonic(P.Cur);
      snprintf(Line, sizeof(Line), "    %-24s %12llu\n", Name.c_str(),
               static_cast<unsigned long long>(P.Count));
      Out += Line;
    }
  }
  if (fusedExecutions()) {
    Out += "  fused dispatches:\n";
    for (size_t I = 0; I < NumFusedOps; ++I) {
      if (!FusedCount[I])
        continue;
      snprintf(Line, sizeof(Line), "    %-24s %12llu\n",
               opMnemonic(static_cast<Op>(NumOpcodes + I)),
               static_cast<unsigned long long>(FusedCount[I]));
      Out += Line;
    }
  }
  snprintf(Line, sizeof(Line), "  calls %llu, traps %llu\n",
           static_cast<unsigned long long>(Calls),
           static_cast<unsigned long long>(Traps));
  Out += Line;
  snprintf(Line, sizeof(Line), "  decode %.3f ms, exec %.3f ms\n",
           static_cast<double>(DecodeNanos) / 1e6,
           static_cast<double>(ExecNanos) / 1e6);
  Out += Line;
  if (GuardHits || GuardMisses) {
    const uint64_t G = GuardHits + GuardMisses;
    snprintf(Line, sizeof(Line),
             "  guarded dispatches: %llu hits, %llu misses (%.1f%% hit rate)\n",
             static_cast<unsigned long long>(GuardHits),
             static_cast<unsigned long long>(GuardMisses),
             G ? 100.0 * static_cast<double>(GuardHits) /
                     static_cast<double>(G)
               : 0.0);
    Out += Line;
  }
  if (JitEnters || JitNanos) {
    snprintf(Line, sizeof(Line),
             "  native tier: %llu entries, %llu fuel bails, %llu fallbacks, "
             "compile %.3f ms\n",
             static_cast<unsigned long long>(JitEnters),
             static_cast<unsigned long long>(JitBails),
             static_cast<unsigned long long>(JitFallbacks),
             static_cast<double>(JitNanos) / 1e6);
    Out += Line;
  }
  if (!CallSites.empty()) {
    // Deterministic order (unordered_map iteration is not).
    std::vector<const std::pair<const std::string, CallSiteSample> *> Sites;
    for (const auto &KV : CallSites)
      Sites.push_back(&KV);
    std::stable_sort(Sites.begin(), Sites.end(), [](auto *A, auto *B) {
      if (A->second.Calls != B->second.Calls)
        return A->second.Calls > B->second.Calls;
      return A->first < B->first;
    });
    Out += "  sampled call sites:\n";
    for (const auto *KV : Sites) {
      const CallSiteSample &S = KV->second;
      snprintf(Line, sizeof(Line), "    %-24s %12llu call(s)\n",
               KV->first.empty() ? "<anonymous>" : KV->first.c_str(),
               static_cast<unsigned long long>(S.Calls));
      Out += Line;
      for (size_t I = 0; I != S.Slots.size(); ++I) {
        const ArgCensus &C = S.Slots[I];
        if (!C.Sampleable) {
          snprintf(Line, sizeof(Line), "      arg %zu: unsampleable\n", I);
          Out += Line;
          continue;
        }
        const ArgCensus::ValueCount *Top = C.top();
        if (!Top)
          continue;
        snprintf(Line, sizeof(Line),
                 "      arg %zu: top %.24s (%.1f%% of %llu)\n", I,
                 Top->Text.c_str(), 100.0 * C.topShare(),
                 static_cast<unsigned long long>(C.total()));
        Out += Line;
      }
    }
  }
  return Out;
}
