//===- vm/Machine.h - Byte-code virtual machine -----------------*- C++ -*-===//
///
/// \file
/// The byte-code interpreter: a stack machine with flat closures, proper
/// tail calls, and a global vector for top-level definitions. This is the
/// substrate standing in for the Scheme 48 VM of the paper (see DESIGN.md,
/// substitution 1).
///
/// A Machine registers itself as a GC root provider: its value stack,
/// frames, and globals survive collections triggered by allocating
/// primitives.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_MACHINE_H
#define PECOMP_VM_MACHINE_H

#include "support/Error.h"
#include "vm/Code.h"

namespace pecomp {
namespace vm {

class Machine : public RootProvider {
public:
  explicit Machine(Heap &H) : H(H) { H.addRootProvider(this); }
  ~Machine() override { H.removeRootProvider(this); }
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  /// Defines global \p Index (growing the global vector as needed).
  void setGlobal(uint16_t Index, Value V);
  Value getGlobal(uint16_t Index) const;

  /// Instantiates a zero-capture closure for \p Code.
  Value makeProcedure(const CodeObject *Code);

  /// Applies \p Callee (a closure) to \p Args and runs to completion.
  Result<Value> call(Value Callee, std::span<const Value> Args);

  /// Caps the number of executed instructions (for tests on possibly
  /// divergent inputs). 0 means unlimited.
  void setFuel(uint64_t MaxInstructions) { Fuel = MaxInstructions; }

  uint64_t instructionsExecuted() const { return Executed; }

  void traceRoots(RootVisitor &Visitor) override;

  Heap &heap() { return H; }

private:
  struct Frame {
    const CodeObject *Code;
    size_t PC;
    size_t Base;
    ClosureObject *Closure; // null for zero-capture procedures
  };

  Result<Value> run();
  Error runtimeError(std::string Message) const;

  Heap &H;
  std::vector<Value> Globals;
  std::vector<Value> Stack;
  std::vector<Frame> Frames;
  uint64_t Fuel = 0;
  uint64_t Executed = 0;
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_MACHINE_H
