//===- vm/Machine.h - Byte-code virtual machine -----------------*- C++ -*-===//
///
/// \file
/// The byte-code interpreter: a stack machine with flat closures, proper
/// tail calls, and a global vector for top-level definitions. This is the
/// substrate standing in for the Scheme 48 VM of the paper (see DESIGN.md,
/// substitution 1).
///
/// A Machine registers itself as a GC root provider: its value stack,
/// frames, and globals survive collections triggered by allocating
/// primitives.
///
/// Fault model (vm/Trap.h): every runtime invariant — operand decoding,
/// stack shape, resource ceilings, heap state — is checked in the dispatch
/// loop and violations return a structured Trap through Result, in every
/// build configuration. After any trap, call() leaves the machine in a
/// reusable empty state (and un-faults the heap), so a serving loop can
/// run the next program on the same instance.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_MACHINE_H
#define PECOMP_VM_MACHINE_H

#include "support/Error.h"
#include "vm/Code.h"
#include "vm/Profile.h"
#include "vm/Trap.h"

#include <array>
#include <cstdlib>
#include <optional>
#include <type_traits>

namespace pecomp {
namespace vm {

class Machine;

/// The value stack as a raw standard-layout triple. Functionally the
/// std::vector subset the dispatch loops use, but with a fixed field
/// layout so native code (vm/Jit) can address Data/Size directly: a
/// native frame pushes by storing through Data and bumping Size, and a
/// GC triggered from one of its call-outs traces exactly the slots it
/// has pushed, because the interpreter, the collector, and the emitted
/// code all read the same three words. Value is trivially copyable, so
/// growth is a realloc and shrinking is a size store.
struct ValueStack {
  Value *Data = nullptr;
  uint64_t Size = 0;
  uint64_t Cap = 0;

  ValueStack() = default;
  ValueStack(const ValueStack &) = delete;
  ValueStack &operator=(const ValueStack &) = delete;
  ~ValueStack() { std::free(Data); }

  void push_back(Value V) {
    if (Size == Cap)
      grow(Size + 1);
    Data[Size++] = V;
  }
  void pop_back() { --Size; }
  Value &back() { return Data[Size - 1]; }
  Value &operator[](uint64_t I) { return Data[I]; }
  Value operator[](uint64_t I) const { return Data[I]; }
  uint64_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  Value *data() { return Data; }
  const Value *data() const { return Data; }
  Value *begin() { return Data; }
  Value *end() { return Data + Size; }
  void clear() { Size = 0; }
  void reserve(uint64_t N) {
    if (N > Cap)
      grow(N);
  }
  void resize(uint64_t N) {
    if (N > Cap)
      grow(N);
    for (uint64_t I = Size; I < N; ++I)
      Data[I] = Value();
    Size = N;
  }

private:
  void grow(uint64_t Need) {
    uint64_t NewCap = Cap ? Cap * 2 : 64;
    if (NewCap < Need)
      NewCap = Need;
    void *P = std::realloc(Data, NewCap * sizeof(Value));
    if (!P)
      abort(); // host allocator exhausted: not a recoverable VM trap
    Data = static_cast<Value *>(P);
    Cap = NewCap;
  }
};

/// Machine execution state split into one standard-layout struct shared
/// by the byte loop, the decoded loop, and native frames (vm/Jit emits
/// x86-64 that reads and writes these fields by offset — see the
/// static_asserts in Jit.cpp). The interpreter fields (Stack, FuelUsed,
/// Executed) are live at all times; the remaining fields are the native
/// calling convention, refreshed by Machine::runNative per entry and by
/// the call-out helpers at every boundary where they can change.
struct ExecState {
  ValueStack Stack;
  uint64_t Base = 0;       ///< current frame base while native code runs
  uint64_t FuelUsed = 0;   ///< instructions charged to the current call()
  uint64_t Executed = 0;   ///< cumulative across the machine's lifetime
  uint64_t FuelCeiling = UINT64_MAX;  ///< resolved: 0 limits -> UINT64_MAX
  uint64_t StackCeiling = UINT64_MAX; ///< resolved: 0 limits -> UINT64_MAX
  uint64_t *OpCount = nullptr; ///< per-opcode counters (profile or sink)
  Machine *M = nullptr;        ///< back pointer for native call-outs
  uint64_t ExitIP = 0;         ///< decoded index at a native-code exit
  Value Ret;                   ///< result slot for completing exits
  uint64_t Status = 0;         ///< vm::JitExit value at a native exit
  /// Flat views for the inline GlobalRef/FreeRef templates. The globals
  /// vector only changes between runs (no opcode writes a global), so
  /// runNative refreshes the pair once per entry; the captures view
  /// changes with the frame's closure, so Jit::continueAt refreshes it
  /// at every frame switch that stays native. NumFrees is 0 for a
  /// closure-less frame, letting one unsigned bound check cover both
  /// "no closure" and "index beyond captures".
  const Value *Globals = nullptr;
  uint64_t NumGlobals = 0;
  const Value *Frees = nullptr;
  uint64_t NumFrees = 0;
};
static_assert(std::is_standard_layout_v<ExecState>,
              "native code addresses ExecState fields by offset");

class JitCode;

class Machine : public RootProvider {
public:
  explicit Machine(Heap &H) : H(H) { H.addRootProvider(this); }
  ~Machine() override { H.removeRootProvider(this); }
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  /// Defines global \p Index (growing the global vector as needed).
  void setGlobal(uint16_t Index, Value V);

  /// The value of global \p Index, or the invalid Value for a slot that
  /// was never allocated (call() traps on invalid callees).
  Value getGlobal(uint16_t Index) const;

  /// Instantiates a zero-capture closure for \p Code.
  Value makeProcedure(const CodeObject *Code);

  /// Drops every global binding. A serving loop that relinks a fresh
  /// program per request calls this after each one, so stale globals
  /// neither root the previous request's values nor outlive the
  /// per-request CodeStore their procedures point into.
  void resetGlobals() { Globals.clear(); }

  /// Applies \p Callee (a closure) to \p Args and runs to completion.
  /// On failure the returned Error carries the TrapKind in code() and
  /// lastTrap() holds the structured context; the machine is reset to a
  /// reusable empty state either way.
  Result<Value> call(Value Callee, std::span<const Value> Args);

  /// Installs resource ceilings. MaxHeapBytes is forwarded to the heap
  /// (which may be shared between machines).
  void setLimits(const Limits &L) {
    Lim = L;
    H.setMaxBytes(L.MaxHeapBytes);
  }
  const Limits &limits() const { return Lim; }

  /// Caps the number of executed instructions (for tests on possibly
  /// divergent inputs). 0 means unlimited. Shorthand for Limits::Fuel.
  /// The budget is per call(): a fuel trap does not starve later calls.
  void setFuel(uint64_t MaxInstructions) { Lim.Fuel = MaxInstructions; }

  /// Cumulative across the machine's lifetime.
  uint64_t instructionsExecuted() const { return ES.Executed; }

  /// Selects the dispatch strategy. On (the default), frames whose code
  /// pre-decodes cleanly run on the fixed-width fast loop; anything else
  /// falls back to the byte interpreter per code object. Off reproduces
  /// the original byte-at-a-time loop for every frame (the seed baseline
  /// the benchmarks compare against). Both paths report identical traps.
  void setDecodedDispatch(bool On) { UseDecoded = On; }
  bool decodedDispatch() const { return UseDecoded; }

  /// Selects the superinstruction view of decoded streams: on, the fast
  /// loop runs each stream's fused instruction array (when the decoder
  /// found any fusable idiom), dispatching multi-instruction idioms in one
  /// step; off, it runs the plain one-to-one array. Either way traps,
  /// fuel accounting, and profiles are byte-for-byte identical to the
  /// unfused decoded loop. No effect on byte-loop frames.
  void setFusion(bool On) { UseFusion = On; }
  bool fusion() const { return UseFusion; }

  /// Selects the native tier (vm/Jit): frames whose code compiled to
  /// native blocks execute them, falling back to the decoded/fused loop
  /// at block granularity (and re-entering native code at the next
  /// compiled block). Traps, fuel accounting, and instruction counts are
  /// byte-for-byte identical either way. On by default (PECOMP_NO_JIT
  /// pins the default off); a no-op under setDecodedDispatch(false) and
  /// on hosts without the tier (jitAvailable() false), where every frame
  /// simply keeps interpreting.
  void setNativeJit(bool On) { UseJit = On; }
  bool nativeJit() const { return UseJit; }

  /// Attaches (or detaches, with null) an execution profile. The pointer
  /// must outlive the machine or a later setProfile(nullptr). Counters
  /// accumulate across calls; the caller resets them.
  void setProfile(Profile *P) { Prof = P; }
  Profile *profile() const { return Prof; }

  /// The structured context of the most recent trap, cleared at the start
  /// of every call().
  const std::optional<Trap> &lastTrap() const { return LastTrap; }

  void traceRoots(RootVisitor &Visitor) override;

  Heap &heap() { return H; }

private:
  struct Frame {
    const CodeObject *Code;
    size_t PC;
    size_t Base;
    ClosureObject *Closure; // null for zero-capture procedures
  };

  /// Outer dispatcher: picks the loop matching the top frame's decode
  /// state and bounces between them at frame switches.
  Result<Value> run();

  /// The original byte-at-a-time interpreter (exact seed semantics).
  /// Returns nullopt when the top frame switched to pre-decoded code and
  /// decoded dispatch is on (the dispatcher re-enters the fast loop).
  std::optional<Result<Value>> runBytes();

  /// The fast loop over pre-decoded instructions; Profiling selects a
  /// counter-updating instantiation so the default build pays nothing.
  /// Returns nullopt when the top frame switched to fallback code.
  template <bool Profiling> std::optional<Result<Value>> runDecoded();

  /// Runs native code (vm/Jit.cpp) from the top frame's PC, which must
  /// start a compiled block of \p JC. Returns nullopt when control left
  /// native code for the interpreter (fuel bail, uncompiled block, or a
  /// frame switch into uncompiled code) with frames/PCs already parked at
  /// the resume point.
  std::optional<Result<Value>> runNative(const JitCode &JC,
                                         const DecodedStream &DS);

  /// CodeObject::jit() with first-compile latency attributed to the
  /// profile when one is attached (mirrors decodedFor()).
  const JitCode *jitFor(const CodeObject &C);

  /// CodeObject::decoded() with first-decode latency attributed to the
  /// profile when one is attached.
  const DecodedStream *decodedFor(const CodeObject &C);

  /// Records \p K with the current execution context (function, pc of the
  /// faulting instruction, opcode) in LastTrap and returns it as an Error.
  Error trap(TrapKind K, std::string Detail);

  /// Wraps a primitive's Error with execution context, preserving its
  /// trap class (TypeError, DivideByZero, ...); unclassified errors (the
  /// `error` primitive) pass through with context appended.
  Error primError(Error E);

  Heap &H;
  Limits Lim;
  std::vector<Value> Globals;
  ExecState ES; ///< value stack + fuel/instruction meters (see ExecState)
  std::vector<Frame> Frames;
  std::optional<Trap> LastTrap;
  size_t TrapPC = Trap::NoPC; ///< pc of the instruction being executed
  int TrapOp = -1;            ///< its raw opcode byte, -1 before decode
  bool UseDecoded = true;     ///< dispatch strategy (see setDecodedDispatch)
#ifdef PECOMP_NO_FUSE
  bool UseFusion = false;     ///< build-pinned default (see setFusion)
#else
  bool UseFusion = true;      ///< superinstruction view (see setFusion)
#endif
#ifdef PECOMP_NO_JIT
  bool UseJit = false;        ///< build-pinned default (see setNativeJit)
#else
  bool UseJit = true;         ///< native tier (see setNativeJit)
#endif
  /// One-bounce latch set by a native fuel bail: the decoded loop must
  /// run the bailed block itself (charging per instruction up to the
  /// fuel trap) instead of re-entering native code at the same block.
  bool JitSkipOnce = false;
  /// The pending Error of a native-code trap, built by a call-out helper
  /// (with LastTrap context) and returned by runNative.
  std::optional<Error> JitErr;
  /// Sink for the emitted per-opcode counter increments when no profile
  /// is attached: native code always bumps ExecState::OpCount[op] so the
  /// templates are profile-oblivious; pointing the slot here makes the
  /// unprofiled configuration pay three blind stores instead of a branch.
  std::array<uint64_t, NumOpcodes> OpCountSink{};

  /// Native call-out helpers (vm/Jit.cpp) mutate frames, globals, and
  /// trap context exactly as the interpreter loops do.
  friend class Jit;
  Profile *Prof = nullptr;    ///< optional counters, not owned
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_MACHINE_H
