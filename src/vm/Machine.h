//===- vm/Machine.h - Byte-code virtual machine -----------------*- C++ -*-===//
///
/// \file
/// The byte-code interpreter: a stack machine with flat closures, proper
/// tail calls, and a global vector for top-level definitions. This is the
/// substrate standing in for the Scheme 48 VM of the paper (see DESIGN.md,
/// substitution 1).
///
/// A Machine registers itself as a GC root provider: its value stack,
/// frames, and globals survive collections triggered by allocating
/// primitives.
///
/// Fault model (vm/Trap.h): every runtime invariant — operand decoding,
/// stack shape, resource ceilings, heap state — is checked in the dispatch
/// loop and violations return a structured Trap through Result, in every
/// build configuration. After any trap, call() leaves the machine in a
/// reusable empty state (and un-faults the heap), so a serving loop can
/// run the next program on the same instance.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_MACHINE_H
#define PECOMP_VM_MACHINE_H

#include "support/Error.h"
#include "vm/Code.h"
#include "vm/Profile.h"
#include "vm/Trap.h"

#include <optional>

namespace pecomp {
namespace vm {

class Machine : public RootProvider {
public:
  explicit Machine(Heap &H) : H(H) { H.addRootProvider(this); }
  ~Machine() override { H.removeRootProvider(this); }
  Machine(const Machine &) = delete;
  Machine &operator=(const Machine &) = delete;

  /// Defines global \p Index (growing the global vector as needed).
  void setGlobal(uint16_t Index, Value V);

  /// The value of global \p Index, or the invalid Value for a slot that
  /// was never allocated (call() traps on invalid callees).
  Value getGlobal(uint16_t Index) const;

  /// Instantiates a zero-capture closure for \p Code.
  Value makeProcedure(const CodeObject *Code);

  /// Drops every global binding. A serving loop that relinks a fresh
  /// program per request calls this after each one, so stale globals
  /// neither root the previous request's values nor outlive the
  /// per-request CodeStore their procedures point into.
  void resetGlobals() { Globals.clear(); }

  /// Applies \p Callee (a closure) to \p Args and runs to completion.
  /// On failure the returned Error carries the TrapKind in code() and
  /// lastTrap() holds the structured context; the machine is reset to a
  /// reusable empty state either way.
  Result<Value> call(Value Callee, std::span<const Value> Args);

  /// Installs resource ceilings. MaxHeapBytes is forwarded to the heap
  /// (which may be shared between machines).
  void setLimits(const Limits &L) {
    Lim = L;
    H.setMaxBytes(L.MaxHeapBytes);
  }
  const Limits &limits() const { return Lim; }

  /// Caps the number of executed instructions (for tests on possibly
  /// divergent inputs). 0 means unlimited. Shorthand for Limits::Fuel.
  /// The budget is per call(): a fuel trap does not starve later calls.
  void setFuel(uint64_t MaxInstructions) { Lim.Fuel = MaxInstructions; }

  /// Cumulative across the machine's lifetime.
  uint64_t instructionsExecuted() const { return Executed; }

  /// Selects the dispatch strategy. On (the default), frames whose code
  /// pre-decodes cleanly run on the fixed-width fast loop; anything else
  /// falls back to the byte interpreter per code object. Off reproduces
  /// the original byte-at-a-time loop for every frame (the seed baseline
  /// the benchmarks compare against). Both paths report identical traps.
  void setDecodedDispatch(bool On) { UseDecoded = On; }
  bool decodedDispatch() const { return UseDecoded; }

  /// Selects the superinstruction view of decoded streams: on, the fast
  /// loop runs each stream's fused instruction array (when the decoder
  /// found any fusable idiom), dispatching multi-instruction idioms in one
  /// step; off, it runs the plain one-to-one array. Either way traps,
  /// fuel accounting, and profiles are byte-for-byte identical to the
  /// unfused decoded loop. No effect on byte-loop frames.
  void setFusion(bool On) { UseFusion = On; }
  bool fusion() const { return UseFusion; }

  /// Attaches (or detaches, with null) an execution profile. The pointer
  /// must outlive the machine or a later setProfile(nullptr). Counters
  /// accumulate across calls; the caller resets them.
  void setProfile(Profile *P) { Prof = P; }
  Profile *profile() const { return Prof; }

  /// The structured context of the most recent trap, cleared at the start
  /// of every call().
  const std::optional<Trap> &lastTrap() const { return LastTrap; }

  void traceRoots(RootVisitor &Visitor) override;

  Heap &heap() { return H; }

private:
  struct Frame {
    const CodeObject *Code;
    size_t PC;
    size_t Base;
    ClosureObject *Closure; // null for zero-capture procedures
  };

  /// Outer dispatcher: picks the loop matching the top frame's decode
  /// state and bounces between them at frame switches.
  Result<Value> run();

  /// The original byte-at-a-time interpreter (exact seed semantics).
  /// Returns nullopt when the top frame switched to pre-decoded code and
  /// decoded dispatch is on (the dispatcher re-enters the fast loop).
  std::optional<Result<Value>> runBytes();

  /// The fast loop over pre-decoded instructions; Profiling selects a
  /// counter-updating instantiation so the default build pays nothing.
  /// Returns nullopt when the top frame switched to fallback code.
  template <bool Profiling> std::optional<Result<Value>> runDecoded();

  /// CodeObject::decoded() with first-decode latency attributed to the
  /// profile when one is attached.
  const DecodedStream *decodedFor(const CodeObject &C);

  /// Records \p K with the current execution context (function, pc of the
  /// faulting instruction, opcode) in LastTrap and returns it as an Error.
  Error trap(TrapKind K, std::string Detail);

  /// Wraps a primitive's Error with execution context, preserving its
  /// trap class (TypeError, DivideByZero, ...); unclassified errors (the
  /// `error` primitive) pass through with context appended.
  Error primError(Error E);

  Heap &H;
  Limits Lim;
  std::vector<Value> Globals;
  std::vector<Value> Stack;
  std::vector<Frame> Frames;
  uint64_t Executed = 0;
  uint64_t FuelUsed = 0; ///< instructions charged to the current call()
  std::optional<Trap> LastTrap;
  size_t TrapPC = Trap::NoPC; ///< pc of the instruction being executed
  int TrapOp = -1;            ///< its raw opcode byte, -1 before decode
  bool UseDecoded = true;     ///< dispatch strategy (see setDecodedDispatch)
#ifdef PECOMP_NO_FUSE
  bool UseFusion = false;     ///< build-pinned default (see setFusion)
#else
  bool UseFusion = true;      ///< superinstruction view (see setFusion)
#endif
  Profile *Prof = nullptr;    ///< optional counters, not owned
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_MACHINE_H
