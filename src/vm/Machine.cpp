//===- vm/Machine.cpp - Byte-code virtual machine -------------------------===//
//
// Two dispatch loops over the same semantics:
//
//  * runDecoded<Profiling> — the fast path. Runs the pre-decoded
//    fixed-width instruction stream (vm/Decode.cpp) with computed-goto
//    dispatch under GCC/Clang (portable switch otherwise), operand reads
//    reduced to struct-field loads, and the heap-fault/stack-ceiling
//    probes hoisted out of the dispatch prologue to the few opcodes that
//    can actually trip them (allocating and pushing ones). Fuel stays
//    charged per instruction so back-edges can never skip the meter.
//
//  * runBytes — the original byte-at-a-time interpreter, kept verbatim as
//    the semantic reference and as the fallback for code objects that do
//    not pre-decode cleanly (Decode.cpp lists the irregularities). It is
//    also the seed baseline the benchmarks compare against
//    (setDecodedDispatch(false)).
//
// run() bounces between the two at frame switches, so a decoded caller
// can call a fallback callee and vice versa. Both loops report identical
// traps: same TrapKind, same faulting byte PC, same opcode. Frame::PC is
// always a byte offset; the fast loop keeps its own decoded index and
// converts at frame boundaries only.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "support/Casting.h"
#include "support/Timer.h"
#include "vm/Jit.h"
#include "vm/Prims.h"

#include <climits>
#include <cstdint>

using namespace pecomp;
using namespace pecomp::vm;

// Computed goto is a GNU extension; PECOMP_FORCE_SWITCH_DISPATCH (CMake
// option of the same name) pins the portable switch loop so sanitizer and
// portability runs cover it too.
#if defined(PECOMP_FORCE_SWITCH_DISPATCH)
#define PECOMP_COMPUTED_GOTO 0
#elif defined(__GNUC__) || defined(__clang__)
#define PECOMP_COMPUTED_GOTO 1
#else
#define PECOMP_COMPUTED_GOTO 0
#endif

void Machine::setGlobal(uint16_t Index, Value V) {
  // Gaps are filled with the invalid value so that referencing a global
  // that was allocated a slot but never defined reports "undefined
  // global" rather than yielding #<unspecified>.
  if (Globals.size() <= Index)
    Globals.resize(Index + 1, Value());
  Globals[Index] = V;
}

Value Machine::getGlobal(uint16_t Index) const {
  if (Index >= Globals.size())
    return Value();
  return Globals[Index];
}

Value Machine::makeProcedure(const CodeObject *Code) {
  return H.closure(Code, {});
}

void Machine::traceRoots(RootVisitor &Visitor) {
  for (Value V : Globals)
    Visitor.visit(V);
  for (Value V : ES.Stack)
    Visitor.visit(V);
  for (const Frame &F : Frames)
    if (F.Closure)
      Visitor.visit(Value::object(F.Closure));
}

Error Machine::trap(TrapKind K, std::string Detail) {
  Trap T;
  T.Kind = K;
  T.Detail = std::move(Detail);
  if (!Frames.empty())
    T.Function = Frames.back().Code->name();
  T.PC = TrapPC;
  T.Opcode = TrapOp;
  LastTrap = T;
  return T.toError();
}

Error Machine::primError(Error E) {
  TrapKind K = trapKindOf(E);
  if (K != TrapKind::None)
    return trap(K, E.message());
  // User-level error (the `error` primitive): unclassified, but still
  // report where it happened.
  std::string Msg = E.message();
  if (!Frames.empty() && !Frames.back().Code->name().empty())
    Msg += " (in " + Frames.back().Code->name() + ")";
  return Error(std::move(Msg));
}

const DecodedStream *Machine::decodedFor(const CodeObject &C) {
  if (Prof && !C.decodeAttempted()) {
    Timer T;
    const DecodedStream *DS = C.decoded();
    satInc(Prof->DecodeNanos, static_cast<uint64_t>(T.seconds() * 1e9));
    return DS;
  }
  return C.decoded();
}

Result<Value> Machine::call(Value Callee, std::span<const Value> Args) {
  // Reentrancy is an API-misuse fault, not an assert: compiled prim calls
  // or embedders could reach here while a call is running, and the outer
  // call's state must not be destroyed.
  if (!Frames.empty())
    return trap(TrapKind::ReentrantCall,
                "Machine::call while a call is already running");

  ES.Stack.clear();
  LastTrap.reset();
  TrapPC = Trap::NoPC;
  TrapOp = -1;
  ES.FuelUsed = 0;
  JitSkipOnce = false;
  JitErr.reset();

  auto Reset = [this] {
    Frames.clear();
    ES.Stack.clear();
    TrapPC = Trap::NoPC;
    TrapOp = -1;
    if (H.faulted()) {
      // Drop the dead program's garbage and un-poison the heap so the
      // next request starts clean (graceful degradation for a serving
      // loop). The byte ceiling itself stays in force.
      H.collect();
      H.clearFault();
    }
  };

  if (!Callee.isValid()) {
    Error E = trap(TrapKind::UndefinedGlobal, "call: undefined global value");
    Reset();
    return E;
  }
  if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject())) {
    Error E = trap(TrapKind::TypeError,
                   "call: not a procedure: " + valueToString(Callee));
    Reset();
    return E;
  }
  auto *Clo = cast<ClosureObject>(Callee.asObject());
  if (Clo->Code->arity() != Args.size()) {
    Error E = trap(TrapKind::ArityMismatch,
                   "call: " + Clo->Code->name() + " expects " +
                       std::to_string(Clo->Code->arity()) +
                       " argument(s), got " + std::to_string(Args.size()));
    Reset();
    return E;
  }

  // Sample entry arguments before any of them can be consumed: the census
  // must reflect what the caller passed, not what survived the run.
  if (Prof && Prof->SampleArgs)
    Prof->sampleCall(Clo->Code->name(), Args);

  ES.Stack.push_back(Callee);
  for (Value A : Args)
    ES.Stack.push_back(A);
  Frames.push_back(Frame{Clo->Code, 0, ES.Stack.size() - Args.size(), Clo});

  std::optional<Timer> ExecTimer;
  if (Prof)
    ExecTimer.emplace();
  Result<Value> R = run();
  if (Prof) {
    satInc(Prof->ExecNanos, static_cast<uint64_t>(ExecTimer->seconds() * 1e9));
    satInc(Prof->Calls);
    if (!R.ok())
      satInc(Prof->Traps);
  }
  Reset();
  return R;
}

Result<Value> Machine::run() {
  // Bounce loop: each inner loop runs until it produces a result or the
  // top frame's code switched dispatch mode (nullopt). The native tier
  // sits on top of decoded dispatch: when the top frame's PC starts a
  // compiled block, run it natively; otherwise the decoded loop
  // interprets until its instruction pointer lands on one
  // (PECOMP_JIT_RESUME below). A fuel bail latches JitSkipOnce so the
  // decoded loop gets the bailed block (and its fuel trap) to itself.
  for (;;) {
    std::optional<Result<Value>> R;
    const DecodedStream *DS =
        UseDecoded ? decodedFor(*Frames.back().Code) : nullptr;
    if (DS) {
      const JitCode *JC = nullptr;
      if (UseJit && !JitSkipOnce)
        if (const JitCode *J = jitFor(*Frames.back().Code))
          if (J->blockEntry(DS->indexOf(Frames.back().PC)))
            JC = J;
      JitSkipOnce = false;
      R = JC ? runNative(*JC, *DS)
             : (Prof ? runDecoded<true>() : runDecoded<false>());
    } else {
      R = runBytes();
    }
    if (R)
      return std::move(*R);
  }
}

//===----------------------------------------------------------------------===//
// Fast loop over the pre-decoded stream
//===----------------------------------------------------------------------===//

template <bool Profiling>
std::optional<Result<Value>> Machine::runDecoded() {
  // Ceilings folded to constants so the hoisted probes are one unsigned
  // compare with no "is the limit configured?" branch.
  const uint64_t FuelCeiling = Lim.Fuel ? Lim.Fuel : UINT64_MAX;
  const size_t StackCeiling = Lim.MaxStackDepth ? Lim.MaxStackDepth : SIZE_MAX;

  Frame *F = &Frames.back();
  const DecodedStream *DS = F->Code->decoded(); // cached: run() ensured Ready
  // Native hand-back: whenever a control transfer lands the instruction
  // pointer on a compiled block of the current code object, park the
  // frame and let run() re-enter the native tier (null when the tier is
  // off, the host has none, or this code compiled no block). Straight-
  // line flow never checks: a compiled block reachable only by fall-
  // through keeps interpreting until the next transfer, which is correct
  // (the tiers are semantically identical) just not native.
  const JitCode *JC = UseJit ? jitFor(*F->Code) : nullptr;
  // The superinstruction view shares indices, byte offsets, and jump
  // targets with the plain array, so every IP/resume computation below is
  // oblivious to which one is active.
  auto ActiveInsns = [this](const DecodedStream *S) {
    return (UseFusion && !S->Fused.empty()) ? S->Fused.data()
                                            : S->Insns.data();
  };
  const DecodedInsn *Insns = ActiveInsns(DS);
  const Value *Lits = F->Code->literals().data();
  size_t IP = DS->indexOf(F->PC);
  const DecodedInsn *I = nullptr;

  auto Underflow = [&](size_t Need, const char *What) {
    return trap(TrapKind::StackUnderflow,
                std::string("stack underflow in ") + What + " (have " +
                    std::to_string(ES.Stack.size()) + ", need " +
                    std::to_string(Need) + ")");
  };
  auto StackTrap = [&]() {
    return trap(TrapKind::StackOverflow,
                "value stack overflow (depth " + std::to_string(ES.Stack.size()) +
                    ", limit " + std::to_string(Lim.MaxStackDepth) + ")");
  };
  // Re-resolves the cached frame pointers after a frame switch; null
  // means the new top frame is byte-loop-only and we must bounce.
  auto EnterTop = [&]() -> const DecodedStream * {
    F = &Frames.back();
    const DecodedStream *NDS = decodedFor(*F->Code);
    if (NDS) {
      DS = NDS;
      Insns = ActiveInsns(DS);
      Lits = F->Code->literals().data();
      JC = UseJit ? jitFor(*F->Code) : nullptr;
    }
    return NDS;
  };

  // Profiling digram state: the previously executed source opcode, seeded
  // with the start-of-run sentinel row.
  [[maybe_unused]] size_t PrevOp = Profile::PairStart;
  // Charges one fused constituent exactly as its unfused dispatch
  // prologue would have: fuel (pre-cleared by the handler's escape
  // check, so it can never trap here), the executed-instruction count,
  // and the profile counters.
  auto Charge = [&](const DecodedInsn *C) {
    ++ES.Executed;
    ++ES.FuelUsed;
    if constexpr (Profiling) {
      const size_t CurOp = static_cast<size_t>(C->SrcOp);
      satInc(Prof->OpCount[CurOp]);
      satInc(Prof->PairCount[PrevOp * NumOpcodes + CurOp]);
      PrevOp = CurOp;
    }
  };

  // Entry governance. The byte loop probes the heap and the stack ceiling
  // at every dispatch; in this loop those states change only at the
  // allocation/push opcodes (probed there), leaving loop entry as the one
  // other point where a pre-existing fault or overdeep stack must be
  // reported — with the same context the byte loop's first dispatch would
  // attach.
  if (H.faulted()) {
    TrapPC = Insns[IP].PC;
    TrapOp = -1;
    return trap(TrapKind::HeapExhausted, H.faultMessage());
  }
  if (ES.Stack.size() > StackCeiling) {
    TrapPC = Insns[IP].PC;
    TrapOp = -1;
    return StackTrap();
  }

// Per-dispatch prologue: trap context, fuel, optional counters. Fuel is
// deliberately NOT hoisted to back-edges — per-instruction charging is
// what makes the "same faulting PC" guarantee hold (see DESIGN.md).
// Context and counters key on SrcOp, the source byte opcode, so a fused
// superinstruction head reports and profiles exactly like its first
// constituent (SrcOp == Opcode everywhere else).
#define PECOMP_PROLOGUE()                                                      \
  I = &Insns[IP];                                                              \
  TrapPC = I->PC;                                                              \
  TrapOp = static_cast<int>(I->SrcOp);                                         \
  ++ES.Executed;                                                                  \
  if (++ES.FuelUsed > FuelCeiling)                                                \
    goto fuel_trap;                                                            \
  if constexpr (Profiling) {                                                   \
    const size_t CurOp = static_cast<size_t>(I->SrcOp);                        \
    satInc(Prof->OpCount[CurOp]);                                              \
    satInc(Prof->PairCount[PrevOp * NumOpcodes + CurOp]);                      \
    PrevOp = CurOp;                                                            \
  }

// Post-push probe shared by every opcode that can grow the value stack:
// the byte loop bounds the overshoot to one slot by probing each
// dispatch; probing after each push-ing opcode is the same bound.
#define PECOMP_PUSH_CHECK()                                                    \
  do {                                                                         \
    if (ES.Stack.size() > StackCeiling)                                           \
      goto stack_trap_next;                                                    \
    ++IP;                                                                      \
  } while (0)

// Hand control back to the native tier when a control transfer landed on
// a compiled block (run() re-enters it from the parked byte PC). Placed
// after every IP update that is a jump, call, or return — i.e. a block
// boundary of the native tier; plain fall-through (++IP) never re-enters.
// Safe against the bail latch: JitSkipOnce is consumed by run() before
// this loop starts, and a bailed block re-runs here wholesale (it fuel-
// traps before its terminating transfer could resume native code).
#define PECOMP_JIT_RESUME()                                                    \
  do {                                                                         \
    if (JC && JC->blockEntry(IP)) {                                            \
      F->PC = Insns[IP].PC;                                                    \
      return std::nullopt;                                                     \
    }                                                                          \
  } while (0)

#if PECOMP_COMPUTED_GOTO
  static const void *const OpTable[NumDecodedOps] = {
      &&Lbl_Const,    &&Lbl_LocalRef, &&Lbl_FreeRef,     &&Lbl_GlobalRef,
      &&Lbl_MakeClosure, &&Lbl_Call,  &&Lbl_TailCall,    &&Lbl_Return,
      &&Lbl_Jump,     &&Lbl_JumpIfFalse, &&Lbl_Prim,     &&Lbl_Slide,
      &&Lbl_Halt,     &&Lbl_JumpIfTrue,
      &&Lbl_FuseLocalLocalPrim, &&Lbl_FuseConstPrim, &&Lbl_FuseLocalPrim,
      &&Lbl_FuseCmpJumpIfFalse, &&Lbl_FuseLocalReturn, &&Lbl_FusePrimReturn};
#define PECOMP_DISPATCH()                                                      \
  do {                                                                         \
    PECOMP_PROLOGUE();                                                         \
    goto *OpTable[static_cast<size_t>(I->Opcode)];                             \
  } while (0)
#define PECOMP_OP(Name) Lbl_##Name

  PECOMP_DISPATCH();

#else // portable switch dispatch
#define PECOMP_DISPATCH() continue
#define PECOMP_OP(Name) case Op::Name

  for (;;) {
    PECOMP_PROLOGUE();
    switch (I->Opcode) {
#endif

  // The unfused_* labels let a fused handler bail out to its head's
  // one-instruction handler when the fuel budget cannot cover the whole
  // idiom: the head runs alone (already charged by the prologue) and the
  // next dispatch lands on the constituent's untouched entry, so the fuel
  // trap fires at exactly the source instruction it would have unfused.
  PECOMP_OP(Const) : {
  unfused_Const:
    ES.Stack.push_back(Lits[I->A]); // index pre-validated by the decoder
    PECOMP_PUSH_CHECK();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(LocalRef) : {
  unfused_LocalRef:
    if (F->Base + I->A >= ES.Stack.size())
      return trap(TrapKind::StackUnderflow,
                  "local slot " + std::to_string(I->A) +
                      " beyond the live stack");
    ES.Stack.push_back(ES.Stack[F->Base + I->A]);
    PECOMP_PUSH_CHECK();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(FreeRef) : {
    if (!F->Closure || I->A >= F->Closure->Free.size())
      return trap(TrapKind::IllegalInstruction,
                  "free index " + std::to_string(I->A) +
                      " beyond the closure's captures");
    ES.Stack.push_back(F->Closure->Free[I->A]);
    PECOMP_PUSH_CHECK();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(GlobalRef) : {
    if (I->A >= Globals.size() || !Globals[I->A].isValid())
      return trap(TrapKind::UndefinedGlobal,
                  "undefined global #" + std::to_string(I->A));
    ES.Stack.push_back(Globals[I->A]);
    PECOMP_PUSH_CHECK();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(MakeClosure) : {
    const uint16_t N = I->B;
    if (N > ES.Stack.size())
      return Underflow(N, "MakeClosure");
    const CodeObject *Target = F->Code->children()[I->A]; // pre-validated
    std::span<const Value> Captured(ES.Stack.data() + ES.Stack.size() - N, N);
    Value Clo = H.closure(Target, Captured);
    ES.Stack.resize(ES.Stack.size() - N);
    ES.Stack.push_back(Clo);
    if (H.faulted())
      goto alloc_trap;
    PECOMP_PUSH_CHECK();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(Call) : {
    const size_t N = I->C;
    if (ES.Stack.size() < N + 1)
      return Underflow(N + 1, "Call");
    Value Callee = ES.Stack[ES.Stack.size() - N - 1];
    if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
      return trap(TrapKind::TypeError,
                  "call: not a procedure: " + valueToString(Callee));
    auto *Clo = cast<ClosureObject>(Callee.asObject());
    if (Clo->Code->arity() != N)
      return trap(TrapKind::ArityMismatch,
                  "call: " + Clo->Code->name() + " expects " +
                      std::to_string(Clo->Code->arity()) +
                      " argument(s), got " + std::to_string(N));
    if (Lim.MaxFrames && Frames.size() >= Lim.MaxFrames)
      return trap(TrapKind::FrameOverflow,
                  "call depth exceeds the frame limit of " +
                      std::to_string(Lim.MaxFrames));
    F->PC = I->NextPC; // resume point (byte offset, as always)
    Frames.push_back(Frame{Clo->Code, 0, ES.Stack.size() - N, Clo});
    if (!EnterTop())
      return std::nullopt;
    IP = 0;
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(TailCall) : {
    const size_t N = I->C;
    if (ES.Stack.size() < N + 1)
      return Underflow(N + 1, "TailCall");
    Value Callee = ES.Stack[ES.Stack.size() - N - 1];
    if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
      return trap(TrapKind::TypeError,
                  "call: not a procedure: " + valueToString(Callee));
    auto *Clo = cast<ClosureObject>(Callee.asObject());
    if (Clo->Code->arity() != N)
      return trap(TrapKind::ArityMismatch,
                  "call: " + Clo->Code->name() + " expects " +
                      std::to_string(Clo->Code->arity()) +
                      " argument(s), got " + std::to_string(N));
    // Slide callee + args down over the current frame.
    size_t Src = ES.Stack.size() - N - 1;
    size_t Dst = F->Base - 1;
    for (size_t K = 0; K <= N; ++K)
      ES.Stack[Dst + K] = ES.Stack[Src + K];
    ES.Stack.resize(Dst + N + 1);
    F->Code = Clo->Code;
    F->PC = 0;
    F->Closure = Clo;
    // F->Base unchanged.
    if (!EnterTop())
      return std::nullopt;
    IP = 0;
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(Return) : {
    if (ES.Stack.size() < F->Base || ES.Stack.empty())
      return Underflow(1, "Return");
    Value Ret = ES.Stack.back();
    ES.Stack.resize(F->Base - 1);
    ES.Stack.push_back(Ret);
    Frames.pop_back();
    if (Frames.empty())
      return Ret;
    if (!EnterTop())
      return std::nullopt;
    IP = DS->indexOf(F->PC);
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(Jump) : {
    IP = static_cast<size_t>(I->Target); // target pre-validated
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(JumpIfFalse) : {
    if (ES.Stack.empty())
      return Underflow(1, "JumpIfFalse");
    Value Test = ES.Stack.back();
    ES.Stack.pop_back();
    IP = Test.isTruthy() ? IP + 1 : static_cast<size_t>(I->Target);
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(Prim) : {
  unfused_Prim:
    const PrimOp P = static_cast<PrimOp>(I->C); // number pre-validated
    const size_t N = I->B;                      // arity cached at decode
    if (ES.Stack.size() < N)
      return Underflow(N, "Prim");
    std::span<const Value> Args(ES.Stack.data() + ES.Stack.size() - N, N);
    Result<Value> R = applyPrim(P, H, Args);
    if (!R)
      return primError(R.takeError());
    ES.Stack.resize(ES.Stack.size() - N);
    ES.Stack.push_back(*R);
    if (H.faulted())
      goto alloc_trap;
    PECOMP_PUSH_CHECK();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(Slide) : {
    const size_t N = I->A;
    if (ES.Stack.size() < N + 1)
      return Underflow(N + 1, "Slide");
    Value Top = ES.Stack.back();
    ES.Stack.resize(ES.Stack.size() - N - 1);
    ES.Stack.push_back(Top);
    ++IP; // net shrink: no push probe needed
    PECOMP_DISPATCH();
  }
  PECOMP_OP(Halt) : {
    if (ES.Stack.empty())
      return Underflow(1, "Halt");
    return ES.Stack.back();
  }
  PECOMP_OP(JumpIfTrue) : {
    if (ES.Stack.empty())
      return Underflow(1, "JumpIfTrue");
    Value Test = ES.Stack.back();
    ES.Stack.pop_back();
    IP = Test.isTruthy() ? static_cast<size_t>(I->Target) : IP + 1;
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }

  // -- Fused superinstructions ----------------------------------------------
  //
  // Each handler replays its idiom's unfused checks in the unfused order,
  // with each probe repointed at the constituent whose dispatch (or
  // push-probe) would have fired it — so TrapKind, faulting byte PC,
  // opcode, message, and executed-instruction count are bit-for-bit what
  // the unfused loop reports. Values the unfused sequence would have
  // pushed between constituents stay in locals ("virtual pushes"); on a
  // trap path they are materialized first, so even the overflow message's
  // depth matches. The GC never moves objects, and every virtual value is
  // a copy of one still rooted through the stack or a literal table, so
  // holding them in locals across an allocating primitive is safe.

  PECOMP_OP(FuseLocalLocalPrim) : { // LocalRef a; LocalRef b; Prim(2)
    if (ES.FuelUsed + 2 > FuelCeiling)
      goto unfused_LocalRef;
    if (F->Base + I->A >= ES.Stack.size())
      return trap(TrapKind::StackUnderflow,
                  "local slot " + std::to_string(I->A) +
                      " beyond the live stack");
    const size_t S = ES.Stack.size();
    Value V1 = ES.Stack[F->Base + I->A];
    if (S + 1 > StackCeiling) {
      ES.Stack.push_back(V1);
      goto stack_trap_next;
    }
    const DecodedInsn *I1 = I + 1;
    Charge(I1);
    // The second LocalRef sees the stack with V1 (virtually) pushed; slot
    // S names that push itself.
    const size_t Idx2 = F->Base + I1->A;
    if (Idx2 >= S + 1) {
      TrapPC = I1->PC;
      TrapOp = static_cast<int>(Op::LocalRef);
      return trap(TrapKind::StackUnderflow,
                  "local slot " + std::to_string(I1->A) +
                      " beyond the live stack");
    }
    Value V2 = Idx2 == S ? V1 : ES.Stack[Idx2];
    if (S + 2 > StackCeiling) {
      ES.Stack.push_back(V1);
      ES.Stack.push_back(V2);
      I = I1;
      goto stack_trap_next;
    }
    const DecodedInsn *I2 = I1 + 1;
    Charge(I2);
    Value Tmp[2] = {V1, V2};
    Result<Value> R = applyPrim(static_cast<PrimOp>(I2->C), H, {Tmp, 2});
    if (!R) {
      TrapPC = I2->PC;
      TrapOp = static_cast<int>(Op::Prim);
      return primError(R.takeError());
    }
    ES.Stack.push_back(*R);
    if (H.faulted()) {
      I = I2;
      goto alloc_trap;
    }
    // Final depth S+1 was probed above; no push check needed.
    if constexpr (Profiling)
      satInc(Prof->FusedCount[static_cast<size_t>(Op::FuseLocalLocalPrim) -
                              NumOpcodes]);
    IP += 3;
    PECOMP_DISPATCH();
  }
  PECOMP_OP(FuseConstPrim) : { // Const i; Prim(1|2)
    if (ES.FuelUsed + 1 > FuelCeiling)
      goto unfused_Const;
    Value V = Lits[I->A];
    const size_t S = ES.Stack.size();
    if (S + 1 > StackCeiling) {
      ES.Stack.push_back(V);
      goto stack_trap_next;
    }
    const DecodedInsn *I1 = I + 1;
    Charge(I1);
    const size_t N = I1->B;
    if (S + 1 < N) { // unverified raw code: binary prim on an empty stack
      TrapPC = I1->PC;
      TrapOp = static_cast<int>(Op::Prim);
      return trap(TrapKind::StackUnderflow,
                  "stack underflow in Prim (have " + std::to_string(S + 1) +
                      ", need " + std::to_string(N) + ")");
    }
    Value Tmp[2];
    Tmp[0] = N == 2 ? ES.Stack[S - 1] : V;
    Tmp[1] = V;
    Result<Value> R = applyPrim(static_cast<PrimOp>(I1->C), H, {Tmp, N});
    if (!R) {
      TrapPC = I1->PC;
      TrapOp = static_cast<int>(Op::Prim);
      return primError(R.takeError());
    }
    if (N == 2)
      ES.Stack.pop_back();
    ES.Stack.push_back(*R);
    if (H.faulted()) {
      I = I1;
      goto alloc_trap;
    }
    if constexpr (Profiling)
      satInc(Prof->FusedCount[static_cast<size_t>(Op::FuseConstPrim) -
                              NumOpcodes]);
    IP += 2;
    PECOMP_DISPATCH();
  }
  PECOMP_OP(FuseLocalPrim) : { // LocalRef a; Prim(1|2)
    if (ES.FuelUsed + 1 > FuelCeiling)
      goto unfused_LocalRef;
    if (F->Base + I->A >= ES.Stack.size())
      return trap(TrapKind::StackUnderflow,
                  "local slot " + std::to_string(I->A) +
                      " beyond the live stack");
    Value V = ES.Stack[F->Base + I->A];
    const size_t S = ES.Stack.size();
    if (S + 1 > StackCeiling) {
      ES.Stack.push_back(V);
      goto stack_trap_next;
    }
    const DecodedInsn *I1 = I + 1;
    Charge(I1);
    // No Prim underflow check: the LocalRef bounds check implies S >= 1,
    // so the virtual depth S+1 covers any arity <= 2.
    const size_t N = I1->B;
    Value Tmp[2];
    Tmp[0] = N == 2 ? ES.Stack[S - 1] : V;
    Tmp[1] = V;
    Result<Value> R = applyPrim(static_cast<PrimOp>(I1->C), H, {Tmp, N});
    if (!R) {
      TrapPC = I1->PC;
      TrapOp = static_cast<int>(Op::Prim);
      return primError(R.takeError());
    }
    if (N == 2)
      ES.Stack.pop_back();
    ES.Stack.push_back(*R);
    if (H.faulted()) {
      I = I1;
      goto alloc_trap;
    }
    if constexpr (Profiling)
      satInc(Prof->FusedCount[static_cast<size_t>(Op::FuseLocalPrim) -
                              NumOpcodes]);
    IP += 2;
    PECOMP_DISPATCH();
  }
  PECOMP_OP(FuseCmpJumpIfFalse) : { // Prim(predicate); JumpIfFalse off
    if (ES.FuelUsed + 1 > FuelCeiling)
      goto unfused_Prim;
    const size_t N = I->B;
    if (ES.Stack.size() < N)
      return Underflow(N, "Prim");
    std::span<const Value> Args(ES.Stack.data() + ES.Stack.size() - N, N);
    Result<Value> R = applyPrim(static_cast<PrimOp>(I->C), H, Args);
    if (!R)
      return primError(R.takeError());
    ES.Stack.resize(ES.Stack.size() - N);
    if (H.faulted()) {
      ES.Stack.push_back(*R);
      goto alloc_trap;
    }
    if (ES.Stack.size() + 1 > StackCeiling) {
      ES.Stack.push_back(*R);
      goto stack_trap_next;
    }
    Charge(I + 1);
    // The branch consumes the result without it ever touching the stack.
    if constexpr (Profiling)
      satInc(Prof->FusedCount[static_cast<size_t>(Op::FuseCmpJumpIfFalse) -
                              NumOpcodes]);
    IP = R->isTruthy() ? IP + 2 : static_cast<size_t>((I + 1)->Target);
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(FuseLocalReturn) : { // LocalRef a; Return
    if (ES.FuelUsed + 1 > FuelCeiling)
      goto unfused_LocalRef;
    if (F->Base + I->A >= ES.Stack.size())
      return trap(TrapKind::StackUnderflow,
                  "local slot " + std::to_string(I->A) +
                      " beyond the live stack");
    Value Ret = ES.Stack[F->Base + I->A];
    if (ES.Stack.size() + 1 > StackCeiling) {
      ES.Stack.push_back(Ret);
      goto stack_trap_next;
    }
    Charge(I + 1);
    // No Return underflow check: the bounds check implies depth > Base.
    if constexpr (Profiling)
      satInc(Prof->FusedCount[static_cast<size_t>(Op::FuseLocalReturn) -
                              NumOpcodes]);
    ES.Stack.resize(F->Base - 1);
    ES.Stack.push_back(Ret);
    Frames.pop_back();
    if (Frames.empty())
      return Ret;
    if (!EnterTop())
      return std::nullopt;
    IP = DS->indexOf(F->PC);
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }
  PECOMP_OP(FusePrimReturn) : { // Prim p; Return
    if (ES.FuelUsed + 1 > FuelCeiling)
      goto unfused_Prim;
    const size_t N = I->B;
    if (ES.Stack.size() < N)
      return Underflow(N, "Prim");
    std::span<const Value> Args(ES.Stack.data() + ES.Stack.size() - N, N);
    Result<Value> R = applyPrim(static_cast<PrimOp>(I->C), H, Args);
    if (!R)
      return primError(R.takeError());
    ES.Stack.resize(ES.Stack.size() - N);
    if (H.faulted()) {
      ES.Stack.push_back(*R);
      goto alloc_trap;
    }
    if (ES.Stack.size() + 1 > StackCeiling) {
      ES.Stack.push_back(*R);
      goto stack_trap_next;
    }
    const DecodedInsn *I1 = I + 1;
    Charge(I1);
    if (ES.Stack.size() + 1 < F->Base) { // unverified raw code only
      TrapPC = I1->PC;
      TrapOp = static_cast<int>(Op::Return);
      return trap(TrapKind::StackUnderflow,
                  "stack underflow in Return (have " +
                      std::to_string(ES.Stack.size() + 1) + ", need 1)");
    }
    if constexpr (Profiling)
      satInc(Prof->FusedCount[static_cast<size_t>(Op::FusePrimReturn) -
                              NumOpcodes]);
    Value Ret = *R;
    ES.Stack.resize(F->Base - 1);
    ES.Stack.push_back(Ret);
    Frames.pop_back();
    if (Frames.empty())
      return Ret;
    if (!EnterTop())
      return std::nullopt;
    IP = DS->indexOf(F->PC);
    PECOMP_JIT_RESUME();
    PECOMP_DISPATCH();
  }

#if !PECOMP_COMPUTED_GOTO
    default: // unreachable: the decoder rejects unknown opcodes
      return trap(TrapKind::IllegalInstruction,
                  "unknown opcode in decoded stream");
    }
  }
#endif

  // Shared trap tails (reached only by goto). The byte loop reports all
  // three from its dispatch prologue, i.e. with the pc of the *next*
  // instruction and no opcode; fuel traps fire before decode, so the pc
  // is the instruction that would have run.
fuel_trap:
  TrapOp = -1;
  return trap(TrapKind::FuelExhausted,
              "fuel exhausted after " + std::to_string(Lim.Fuel) +
                  " instructions");
alloc_trap:
  TrapPC = I->NextPC;
  TrapOp = -1;
  return trap(TrapKind::HeapExhausted, H.faultMessage());
stack_trap_next:
  TrapPC = I->NextPC;
  TrapOp = -1;
  return StackTrap();

#undef PECOMP_PROLOGUE
#undef PECOMP_PUSH_CHECK
#undef PECOMP_JIT_RESUME
#undef PECOMP_DISPATCH
#undef PECOMP_OP
}

//===----------------------------------------------------------------------===//
// Byte-at-a-time fallback loop (the seed interpreter, semantics frozen)
//===----------------------------------------------------------------------===//

std::optional<Result<Value>> Machine::runBytes() {
  // Digram chain for the profile; each entry into the loop starts a fresh
  // run from the sentinel (matching the decoded loop's convention at
  // bounce boundaries).
  size_t PrevOp = Profile::PairStart;
  for (;;) {
    Frame &F = Frames.back();
    const std::vector<uint8_t> &Code = F.Code->code();

    TrapPC = F.PC;
    TrapOp = -1;

    // -- Per-instruction governance ------------------------------------------
    if (F.PC >= Code.size())
      return trap(TrapKind::PcOutOfRange,
                  "pc " + std::to_string(F.PC) + " outside code of size " +
                      std::to_string(Code.size()));
    if (H.faulted())
      return trap(TrapKind::HeapExhausted, H.faultMessage());
    // Each instruction grows the value stack by at most one slot, so a
    // single check per dispatch bounds the overshoot to one.
    if (Lim.MaxStackDepth && ES.Stack.size() > Lim.MaxStackDepth)
      return trap(TrapKind::StackOverflow,
                  "value stack overflow (depth " +
                      std::to_string(ES.Stack.size()) + ", limit " +
                      std::to_string(Lim.MaxStackDepth) + ")");
    ++ES.Executed;
    if (Lim.Fuel && ++ES.FuelUsed > Lim.Fuel)
      return trap(TrapKind::FuelExhausted,
                  "fuel exhausted after " + std::to_string(Lim.Fuel) +
                      " instructions");

    Op O = static_cast<Op>(Code[F.PC++]);
    TrapOp = static_cast<int>(O);

    // Operand widths; decoding past the end of the code object is a trap,
    // not a read of adjacent memory.
    size_t OperandBytes;
    switch (O) {
    case Op::Const:
    case Op::LocalRef:
    case Op::FreeRef:
    case Op::GlobalRef:
    case Op::Slide:
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      OperandBytes = 2;
      break;
    case Op::MakeClosure:
      OperandBytes = 4;
      break;
    case Op::Call:
    case Op::TailCall:
    case Op::Prim:
      OperandBytes = 1;
      break;
    case Op::Return:
    case Op::Halt:
      OperandBytes = 0;
      break;
    default:
      return trap(TrapKind::IllegalInstruction,
                  "unknown opcode " +
                      std::to_string(static_cast<unsigned>(O)));
    }
    if (Prof) {
      satInc(Prof->OpCount[static_cast<size_t>(O)]);
      satInc(Prof->PairCount[PrevOp * NumOpcodes + static_cast<size_t>(O)]);
      PrevOp = static_cast<size_t>(O);
    }
    if (F.PC + OperandBytes > Code.size())
      return trap(TrapKind::PcOutOfRange, "truncated operands");

    auto ReadU16 = [&]() {
      uint16_t V = static_cast<uint16_t>(Code[F.PC] | (Code[F.PC + 1] << 8));
      F.PC += 2;
      return V;
    };
    /// Live slots of the current frame above any containing frames.
    auto Underflow = [&](size_t Need, const char *What) {
      return trap(TrapKind::StackUnderflow,
                  std::string("stack underflow in ") + What + " (have " +
                      std::to_string(ES.Stack.size()) + ", need " +
                      std::to_string(Need) + ")");
    };

    switch (O) {
    case Op::Const: {
      uint16_t I = ReadU16();
      if (I >= F.Code->literals().size())
        return trap(TrapKind::IllegalInstruction,
                    "literal index " + std::to_string(I) + " out of range");
      ES.Stack.push_back(F.Code->literals()[I]);
      break;
    }
    case Op::LocalRef: {
      uint16_t I = ReadU16();
      if (F.Base + I >= ES.Stack.size())
        return trap(TrapKind::StackUnderflow,
                    "local slot " + std::to_string(I) +
                        " beyond the live stack");
      ES.Stack.push_back(ES.Stack[F.Base + I]);
      break;
    }
    case Op::FreeRef: {
      uint16_t I = ReadU16();
      if (!F.Closure || I >= F.Closure->Free.size())
        return trap(TrapKind::IllegalInstruction,
                    "free index " + std::to_string(I) +
                        " beyond the closure's captures");
      ES.Stack.push_back(F.Closure->Free[I]);
      break;
    }
    case Op::GlobalRef: {
      uint16_t I = ReadU16();
      if (I >= Globals.size() || !Globals[I].isValid())
        return trap(TrapKind::UndefinedGlobal,
                    "undefined global #" + std::to_string(I));
      ES.Stack.push_back(Globals[I]);
      break;
    }
    case Op::MakeClosure: {
      uint16_t Child = ReadU16();
      uint16_t N = ReadU16();
      if (Child >= F.Code->children().size())
        return trap(TrapKind::IllegalInstruction,
                    "child index " + std::to_string(Child) +
                        " out of range");
      if (N > ES.Stack.size())
        return Underflow(N, "MakeClosure");
      const CodeObject *Target = F.Code->children()[Child];
      std::span<const Value> Captured(ES.Stack.data() + ES.Stack.size() - N, N);
      Value Clo = H.closure(Target, Captured);
      ES.Stack.resize(ES.Stack.size() - N);
      ES.Stack.push_back(Clo);
      break;
    }
    case Op::Call: {
      uint8_t N = Code[F.PC++];
      if (ES.Stack.size() < static_cast<size_t>(N) + 1)
        return Underflow(N + 1, "Call");
      Value Callee = ES.Stack[ES.Stack.size() - N - 1];
      if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
        return trap(TrapKind::TypeError,
                    "call: not a procedure: " + valueToString(Callee));
      auto *Clo = cast<ClosureObject>(Callee.asObject());
      if (Clo->Code->arity() != N)
        return trap(TrapKind::ArityMismatch,
                    "call: " + Clo->Code->name() + " expects " +
                        std::to_string(Clo->Code->arity()) +
                        " argument(s), got " + std::to_string(N));
      if (Lim.MaxFrames && Frames.size() >= Lim.MaxFrames)
        return trap(TrapKind::FrameOverflow,
                    "call depth exceeds the frame limit of " +
                        std::to_string(Lim.MaxFrames));
      Frames.push_back(Frame{Clo->Code, 0, ES.Stack.size() - N, Clo});
      // The callee may be decodable even though the caller was not.
      if (UseDecoded && decodedFor(*Frames.back().Code))
        return std::nullopt;
      break;
    }
    case Op::TailCall: {
      uint8_t N = Code[F.PC++];
      if (ES.Stack.size() < static_cast<size_t>(N) + 1)
        return Underflow(N + 1, "TailCall");
      Value Callee = ES.Stack[ES.Stack.size() - N - 1];
      if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
        return trap(TrapKind::TypeError,
                    "call: not a procedure: " + valueToString(Callee));
      auto *Clo = cast<ClosureObject>(Callee.asObject());
      if (Clo->Code->arity() != N)
        return trap(TrapKind::ArityMismatch,
                    "call: " + Clo->Code->name() + " expects " +
                        std::to_string(Clo->Code->arity()) +
                        " argument(s), got " + std::to_string(N));
      // Slide callee + args down over the current frame.
      size_t Src = ES.Stack.size() - N - 1;
      size_t Dst = F.Base - 1;
      for (size_t I = 0; I <= N; ++I)
        ES.Stack[Dst + I] = ES.Stack[Src + I];
      ES.Stack.resize(Dst + N + 1);
      F.Code = Clo->Code;
      F.PC = 0;
      F.Closure = Clo;
      // F.Base unchanged.
      if (UseDecoded && decodedFor(*F.Code))
        return std::nullopt;
      break;
    }
    case Op::Return: {
      if (ES.Stack.size() < F.Base || ES.Stack.empty())
        return Underflow(1, "Return");
      Value Result = ES.Stack.back();
      ES.Stack.resize(F.Base - 1);
      ES.Stack.push_back(Result);
      Frames.pop_back();
      if (Frames.empty())
        return Result;
      if (UseDecoded && decodedFor(*Frames.back().Code))
        return std::nullopt;
      break;
    }
    case Op::Jump: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      // A wild target is caught by the pc range check at the next dispatch.
      break;
    }
    case Op::JumpIfFalse: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      if (ES.Stack.empty())
        return Underflow(1, "JumpIfFalse");
      Value Test = ES.Stack.back();
      ES.Stack.pop_back();
      if (!Test.isTruthy())
        F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      break;
    }
    case Op::JumpIfTrue: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      if (ES.Stack.empty())
        return Underflow(1, "JumpIfTrue");
      Value Test = ES.Stack.back();
      ES.Stack.pop_back();
      if (Test.isTruthy())
        F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      break;
    }
    case Op::Prim: {
      uint8_t Raw = Code[F.PC++];
      if (Raw >= NumPrimOps)
        return trap(TrapKind::IllegalInstruction,
                    "unknown primitive number " + std::to_string(Raw));
      PrimOp P = static_cast<PrimOp>(Raw);
      unsigned N = primArity(P);
      if (ES.Stack.size() < N)
        return Underflow(N, "Prim");
      std::span<const Value> Args(ES.Stack.data() + ES.Stack.size() - N, N);
      Result<Value> R = applyPrim(P, H, Args);
      if (!R)
        return primError(R.takeError());
      ES.Stack.resize(ES.Stack.size() - N);
      ES.Stack.push_back(*R);
      break;
    }
    case Op::Slide: {
      uint16_t N = ReadU16();
      if (ES.Stack.size() < static_cast<size_t>(N) + 1)
        return Underflow(N + 1, "Slide");
      Value Top = ES.Stack.back();
      ES.Stack.resize(ES.Stack.size() - N - 1);
      ES.Stack.push_back(Top);
      break;
    }
    case Op::Halt:
      if (ES.Stack.empty())
        return Underflow(1, "Halt");
      return ES.Stack.back();
    default: // fused pseudo-opcodes: the width switch above rejected them
      return trap(TrapKind::IllegalInstruction,
                  "unknown opcode " +
                      std::to_string(static_cast<unsigned>(O)));
    }
  }
}
