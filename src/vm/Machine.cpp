//===- vm/Machine.cpp - Byte-code virtual machine -------------------------===//

#include "vm/Machine.h"

#include "support/Casting.h"
#include "vm/Prims.h"

using namespace pecomp;
using namespace pecomp::vm;

void Machine::setGlobal(uint16_t Index, Value V) {
  // Gaps are filled with the invalid value so that referencing a global
  // that was allocated a slot but never defined reports "undefined
  // global" rather than yielding #<unspecified>.
  if (Globals.size() <= Index)
    Globals.resize(Index + 1, Value());
  Globals[Index] = V;
}

Value Machine::getGlobal(uint16_t Index) const {
  assert(Index < Globals.size() && "undefined global");
  return Globals[Index];
}

Value Machine::makeProcedure(const CodeObject *Code) {
  return H.closure(Code, {});
}

void Machine::traceRoots(RootVisitor &Visitor) {
  for (Value V : Globals)
    Visitor.visit(V);
  for (Value V : Stack)
    Visitor.visit(V);
  for (const Frame &F : Frames)
    if (F.Closure)
      Visitor.visit(Value::object(F.Closure));
}

Error Machine::runtimeError(std::string Message) const {
  if (!Frames.empty() && !Frames.back().Code->name().empty())
    Message += " (in " + Frames.back().Code->name() + ")";
  return Error(std::move(Message));
}

Result<Value> Machine::call(Value Callee, std::span<const Value> Args) {
  assert(Frames.empty() && "Machine::call is not reentrant");
  Stack.clear();

  if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
    return Error("call: not a procedure: " + valueToString(Callee));
  auto *Clo = cast<ClosureObject>(Callee.asObject());
  if (Clo->Code->arity() != Args.size())
    return Error("call: " + Clo->Code->name() + " expects " +
                 std::to_string(Clo->Code->arity()) + " argument(s), got " +
                 std::to_string(Args.size()));

  Stack.push_back(Callee);
  for (Value A : Args)
    Stack.push_back(A);
  Frames.push_back(Frame{Clo->Code, 0, Stack.size() - Args.size(), Clo});

  Result<Value> R = run();
  Frames.clear();
  Stack.clear();
  return R;
}

Result<Value> Machine::run() {
  for (;;) {
    Frame &F = Frames.back();
    const std::vector<uint8_t> &Code = F.Code->code();
    assert(F.PC < Code.size() && "ran off the end of a code object");

    if (Fuel && ++Executed > Fuel)
      return runtimeError("fuel exhausted");
    if (!Fuel)
      ++Executed;

    Op O = static_cast<Op>(Code[F.PC++]);
    auto ReadU16 = [&]() {
      uint16_t V = static_cast<uint16_t>(Code[F.PC] | (Code[F.PC + 1] << 8));
      F.PC += 2;
      return V;
    };

    switch (O) {
    case Op::Const:
      Stack.push_back(F.Code->literals()[ReadU16()]);
      break;
    case Op::LocalRef:
      Stack.push_back(Stack[F.Base + ReadU16()]);
      break;
    case Op::FreeRef: {
      assert(F.Closure && "FreeRef without a closure");
      Stack.push_back(F.Closure->Free[ReadU16()]);
      break;
    }
    case Op::GlobalRef: {
      uint16_t I = ReadU16();
      if (I >= Globals.size() || !Globals[I].isValid())
        return runtimeError("undefined global #" + std::to_string(I));
      Stack.push_back(Globals[I]);
      break;
    }
    case Op::MakeClosure: {
      uint16_t Child = ReadU16();
      uint16_t N = ReadU16();
      const CodeObject *Target = F.Code->children()[Child];
      std::span<const Value> Captured(Stack.data() + Stack.size() - N, N);
      Value Clo = H.closure(Target, Captured);
      Stack.resize(Stack.size() - N);
      Stack.push_back(Clo);
      break;
    }
    case Op::Call: {
      uint8_t N = Code[F.PC++];
      Value Callee = Stack[Stack.size() - N - 1];
      if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
        return runtimeError("call: not a procedure: " +
                            valueToString(Callee));
      auto *Clo = cast<ClosureObject>(Callee.asObject());
      if (Clo->Code->arity() != N)
        return runtimeError("call: " + Clo->Code->name() + " expects " +
                            std::to_string(Clo->Code->arity()) +
                            " argument(s), got " + std::to_string(N));
      Frames.push_back(Frame{Clo->Code, 0, Stack.size() - N, Clo});
      break;
    }
    case Op::TailCall: {
      uint8_t N = Code[F.PC++];
      Value Callee = Stack[Stack.size() - N - 1];
      if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
        return runtimeError("call: not a procedure: " +
                            valueToString(Callee));
      auto *Clo = cast<ClosureObject>(Callee.asObject());
      if (Clo->Code->arity() != N)
        return runtimeError("call: " + Clo->Code->name() + " expects " +
                            std::to_string(Clo->Code->arity()) +
                            " argument(s), got " + std::to_string(N));
      // Slide callee + args down over the current frame.
      size_t Src = Stack.size() - N - 1;
      size_t Dst = F.Base - 1;
      for (size_t I = 0; I <= N; ++I)
        Stack[Dst + I] = Stack[Src + I];
      Stack.resize(Dst + N + 1);
      F.Code = Clo->Code;
      F.PC = 0;
      F.Closure = Clo;
      // F.Base unchanged.
      break;
    }
    case Op::Return: {
      Value Result = Stack.back();
      Stack.resize(Frames.back().Base - 1);
      Stack.push_back(Result);
      Frames.pop_back();
      if (Frames.empty())
        return Result;
      break;
    }
    case Op::Jump: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      break;
    }
    case Op::JumpIfFalse: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      Value Test = Stack.back();
      Stack.pop_back();
      if (!Test.isTruthy())
        F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      break;
    }
    case Op::Prim: {
      PrimOp P = static_cast<PrimOp>(Code[F.PC++]);
      unsigned N = primArity(P);
      std::span<const Value> Args(Stack.data() + Stack.size() - N, N);
      Result<Value> R = applyPrim(P, H, Args);
      if (!R)
        return runtimeError(R.error().message());
      Stack.resize(Stack.size() - N);
      Stack.push_back(*R);
      break;
    }
    case Op::Slide: {
      uint16_t N = ReadU16();
      Value Top = Stack.back();
      Stack.resize(Stack.size() - N - 1);
      Stack.push_back(Top);
      break;
    }
    case Op::Halt:
      return Stack.back();
    }
  }
}
