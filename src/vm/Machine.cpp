//===- vm/Machine.cpp - Byte-code virtual machine -------------------------===//

#include "vm/Machine.h"

#include "support/Casting.h"
#include "vm/Prims.h"

using namespace pecomp;
using namespace pecomp::vm;

void Machine::setGlobal(uint16_t Index, Value V) {
  // Gaps are filled with the invalid value so that referencing a global
  // that was allocated a slot but never defined reports "undefined
  // global" rather than yielding #<unspecified>.
  if (Globals.size() <= Index)
    Globals.resize(Index + 1, Value());
  Globals[Index] = V;
}

Value Machine::getGlobal(uint16_t Index) const {
  if (Index >= Globals.size())
    return Value();
  return Globals[Index];
}

Value Machine::makeProcedure(const CodeObject *Code) {
  return H.closure(Code, {});
}

void Machine::traceRoots(RootVisitor &Visitor) {
  for (Value V : Globals)
    Visitor.visit(V);
  for (Value V : Stack)
    Visitor.visit(V);
  for (const Frame &F : Frames)
    if (F.Closure)
      Visitor.visit(Value::object(F.Closure));
}

Error Machine::trap(TrapKind K, std::string Detail) {
  Trap T;
  T.Kind = K;
  T.Detail = std::move(Detail);
  if (!Frames.empty())
    T.Function = Frames.back().Code->name();
  T.PC = TrapPC;
  T.Opcode = TrapOp;
  LastTrap = T;
  return T.toError();
}

Error Machine::primError(Error E) {
  TrapKind K = trapKindOf(E);
  if (K != TrapKind::None)
    return trap(K, E.message());
  // User-level error (the `error` primitive): unclassified, but still
  // report where it happened.
  std::string Msg = E.message();
  if (!Frames.empty() && !Frames.back().Code->name().empty())
    Msg += " (in " + Frames.back().Code->name() + ")";
  return Error(std::move(Msg));
}

Result<Value> Machine::call(Value Callee, std::span<const Value> Args) {
  // Reentrancy is an API-misuse fault, not an assert: compiled prim calls
  // or embedders could reach here while a call is running, and the outer
  // call's state must not be destroyed.
  if (!Frames.empty())
    return trap(TrapKind::ReentrantCall,
                "Machine::call while a call is already running");

  Stack.clear();
  LastTrap.reset();
  TrapPC = Trap::NoPC;
  TrapOp = -1;
  FuelUsed = 0;

  auto Reset = [this] {
    Frames.clear();
    Stack.clear();
    TrapPC = Trap::NoPC;
    TrapOp = -1;
    if (H.faulted()) {
      // Drop the dead program's garbage and un-poison the heap so the
      // next request starts clean (graceful degradation for a serving
      // loop). The byte ceiling itself stays in force.
      H.collect();
      H.clearFault();
    }
  };

  if (!Callee.isValid()) {
    Error E = trap(TrapKind::UndefinedGlobal, "call: undefined global value");
    Reset();
    return E;
  }
  if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject())) {
    Error E = trap(TrapKind::TypeError,
                   "call: not a procedure: " + valueToString(Callee));
    Reset();
    return E;
  }
  auto *Clo = cast<ClosureObject>(Callee.asObject());
  if (Clo->Code->arity() != Args.size()) {
    Error E = trap(TrapKind::ArityMismatch,
                   "call: " + Clo->Code->name() + " expects " +
                       std::to_string(Clo->Code->arity()) +
                       " argument(s), got " + std::to_string(Args.size()));
    Reset();
    return E;
  }

  Stack.push_back(Callee);
  for (Value A : Args)
    Stack.push_back(A);
  Frames.push_back(Frame{Clo->Code, 0, Stack.size() - Args.size(), Clo});

  Result<Value> R = run();
  Reset();
  return R;
}

Result<Value> Machine::run() {
  for (;;) {
    Frame &F = Frames.back();
    const std::vector<uint8_t> &Code = F.Code->code();

    TrapPC = F.PC;
    TrapOp = -1;

    // -- Per-instruction governance ------------------------------------------
    if (F.PC >= Code.size())
      return trap(TrapKind::PcOutOfRange,
                  "pc " + std::to_string(F.PC) + " outside code of size " +
                      std::to_string(Code.size()));
    if (H.faulted())
      return trap(TrapKind::HeapExhausted, H.faultMessage());
    // Each instruction grows the value stack by at most one slot, so a
    // single check per dispatch bounds the overshoot to one.
    if (Lim.MaxStackDepth && Stack.size() > Lim.MaxStackDepth)
      return trap(TrapKind::StackOverflow,
                  "value stack overflow (depth " +
                      std::to_string(Stack.size()) + ", limit " +
                      std::to_string(Lim.MaxStackDepth) + ")");
    ++Executed;
    if (Lim.Fuel && ++FuelUsed > Lim.Fuel)
      return trap(TrapKind::FuelExhausted,
                  "fuel exhausted after " + std::to_string(Lim.Fuel) +
                      " instructions");

    Op O = static_cast<Op>(Code[F.PC++]);
    TrapOp = static_cast<int>(O);

    // Operand widths; decoding past the end of the code object is a trap,
    // not a read of adjacent memory.
    size_t OperandBytes;
    switch (O) {
    case Op::Const:
    case Op::LocalRef:
    case Op::FreeRef:
    case Op::GlobalRef:
    case Op::Slide:
    case Op::Jump:
    case Op::JumpIfFalse:
      OperandBytes = 2;
      break;
    case Op::MakeClosure:
      OperandBytes = 4;
      break;
    case Op::Call:
    case Op::TailCall:
    case Op::Prim:
      OperandBytes = 1;
      break;
    case Op::Return:
    case Op::Halt:
      OperandBytes = 0;
      break;
    default:
      return trap(TrapKind::IllegalInstruction,
                  "unknown opcode " +
                      std::to_string(static_cast<unsigned>(O)));
    }
    if (F.PC + OperandBytes > Code.size())
      return trap(TrapKind::PcOutOfRange, "truncated operands");

    auto ReadU16 = [&]() {
      uint16_t V = static_cast<uint16_t>(Code[F.PC] | (Code[F.PC + 1] << 8));
      F.PC += 2;
      return V;
    };
    /// Live slots of the current frame above any containing frames.
    auto Underflow = [&](size_t Need, const char *What) {
      return trap(TrapKind::StackUnderflow,
                  std::string("stack underflow in ") + What + " (have " +
                      std::to_string(Stack.size()) + ", need " +
                      std::to_string(Need) + ")");
    };

    switch (O) {
    case Op::Const: {
      uint16_t I = ReadU16();
      if (I >= F.Code->literals().size())
        return trap(TrapKind::IllegalInstruction,
                    "literal index " + std::to_string(I) + " out of range");
      Stack.push_back(F.Code->literals()[I]);
      break;
    }
    case Op::LocalRef: {
      uint16_t I = ReadU16();
      if (F.Base + I >= Stack.size())
        return trap(TrapKind::StackUnderflow,
                    "local slot " + std::to_string(I) +
                        " beyond the live stack");
      Stack.push_back(Stack[F.Base + I]);
      break;
    }
    case Op::FreeRef: {
      uint16_t I = ReadU16();
      if (!F.Closure || I >= F.Closure->Free.size())
        return trap(TrapKind::IllegalInstruction,
                    "free index " + std::to_string(I) +
                        " beyond the closure's captures");
      Stack.push_back(F.Closure->Free[I]);
      break;
    }
    case Op::GlobalRef: {
      uint16_t I = ReadU16();
      if (I >= Globals.size() || !Globals[I].isValid())
        return trap(TrapKind::UndefinedGlobal,
                    "undefined global #" + std::to_string(I));
      Stack.push_back(Globals[I]);
      break;
    }
    case Op::MakeClosure: {
      uint16_t Child = ReadU16();
      uint16_t N = ReadU16();
      if (Child >= F.Code->children().size())
        return trap(TrapKind::IllegalInstruction,
                    "child index " + std::to_string(Child) +
                        " out of range");
      if (N > Stack.size())
        return Underflow(N, "MakeClosure");
      const CodeObject *Target = F.Code->children()[Child];
      std::span<const Value> Captured(Stack.data() + Stack.size() - N, N);
      Value Clo = H.closure(Target, Captured);
      Stack.resize(Stack.size() - N);
      Stack.push_back(Clo);
      break;
    }
    case Op::Call: {
      uint8_t N = Code[F.PC++];
      if (Stack.size() < static_cast<size_t>(N) + 1)
        return Underflow(N + 1, "Call");
      Value Callee = Stack[Stack.size() - N - 1];
      if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
        return trap(TrapKind::TypeError,
                    "call: not a procedure: " + valueToString(Callee));
      auto *Clo = cast<ClosureObject>(Callee.asObject());
      if (Clo->Code->arity() != N)
        return trap(TrapKind::ArityMismatch,
                    "call: " + Clo->Code->name() + " expects " +
                        std::to_string(Clo->Code->arity()) +
                        " argument(s), got " + std::to_string(N));
      if (Lim.MaxFrames && Frames.size() >= Lim.MaxFrames)
        return trap(TrapKind::FrameOverflow,
                    "call depth exceeds the frame limit of " +
                        std::to_string(Lim.MaxFrames));
      Frames.push_back(Frame{Clo->Code, 0, Stack.size() - N, Clo});
      break;
    }
    case Op::TailCall: {
      uint8_t N = Code[F.PC++];
      if (Stack.size() < static_cast<size_t>(N) + 1)
        return Underflow(N + 1, "TailCall");
      Value Callee = Stack[Stack.size() - N - 1];
      if (!Callee.isObject() || !isa<ClosureObject>(Callee.asObject()))
        return trap(TrapKind::TypeError,
                    "call: not a procedure: " + valueToString(Callee));
      auto *Clo = cast<ClosureObject>(Callee.asObject());
      if (Clo->Code->arity() != N)
        return trap(TrapKind::ArityMismatch,
                    "call: " + Clo->Code->name() + " expects " +
                        std::to_string(Clo->Code->arity()) +
                        " argument(s), got " + std::to_string(N));
      // Slide callee + args down over the current frame.
      size_t Src = Stack.size() - N - 1;
      size_t Dst = F.Base - 1;
      for (size_t I = 0; I <= N; ++I)
        Stack[Dst + I] = Stack[Src + I];
      Stack.resize(Dst + N + 1);
      F.Code = Clo->Code;
      F.PC = 0;
      F.Closure = Clo;
      // F.Base unchanged.
      break;
    }
    case Op::Return: {
      if (Stack.size() < F.Base || Stack.empty())
        return Underflow(1, "Return");
      Value Result = Stack.back();
      Stack.resize(F.Base - 1);
      Stack.push_back(Result);
      Frames.pop_back();
      if (Frames.empty())
        return Result;
      break;
    }
    case Op::Jump: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      // A wild target is caught by the pc range check at the next dispatch.
      break;
    }
    case Op::JumpIfFalse: {
      int16_t Off = static_cast<int16_t>(ReadU16());
      if (Stack.empty())
        return Underflow(1, "JumpIfFalse");
      Value Test = Stack.back();
      Stack.pop_back();
      if (!Test.isTruthy())
        F.PC = static_cast<size_t>(static_cast<long>(F.PC) + Off);
      break;
    }
    case Op::Prim: {
      uint8_t Raw = Code[F.PC++];
      if (Raw >= NumPrimOps)
        return trap(TrapKind::IllegalInstruction,
                    "unknown primitive number " + std::to_string(Raw));
      PrimOp P = static_cast<PrimOp>(Raw);
      unsigned N = primArity(P);
      if (Stack.size() < N)
        return Underflow(N, "Prim");
      std::span<const Value> Args(Stack.data() + Stack.size() - N, N);
      Result<Value> R = applyPrim(P, H, Args);
      if (!R)
        return primError(R.takeError());
      Stack.resize(Stack.size() - N);
      Stack.push_back(*R);
      break;
    }
    case Op::Slide: {
      uint16_t N = ReadU16();
      if (Stack.size() < static_cast<size_t>(N) + 1)
        return Underflow(N + 1, "Slide");
      Value Top = Stack.back();
      Stack.resize(Stack.size() - N - 1);
      Stack.push_back(Top);
      break;
    }
    case Op::Halt:
      if (Stack.empty())
        return Underflow(1, "Halt");
      return Stack.back();
    }
  }
}
