//===- vm/Verify.h - Byte-code verifier -------------------------*- C++ -*-===//
///
/// \file
/// Static verification of code objects before execution: every operand
/// index in range, every jump landing on an instruction boundary, and a
/// consistent stack depth at every program point (abstract interpretation
/// over the one thing the type-free VM can check — the shape of the
/// stack). The machine itself omits these checks from its hot loop; the
/// verifier makes "generated code cannot crash the VM" a checkable
/// property, and the test suite runs it over everything the compilers and
/// the fused generating extensions emit.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_VERIFY_H
#define PECOMP_VM_VERIFY_H

#include "vm/Code.h"

#include <optional>
#include <string>

namespace pecomp {
namespace vm {

/// Verifies \p Code and, recursively, its children (each child is checked
/// against the capture count its MakeClosure sites supply). \p NumFree is
/// the number of captured values the running closure will carry (0 for
/// top-level procedures). \p MaxStackDepth, when nonzero, additionally
/// rejects code whose abstract stack depth exceeds it at any program
/// point — proving up front that the per-frame stack use respects
/// Limits::MaxStackDepth (total use still depends on call depth, which
/// the machine governs at run time). Returns std::nullopt on success, or
/// a description of the first problem found.
std::optional<std::string> verifyCode(const CodeObject *Code,
                                      size_t NumFree = 0,
                                      size_t MaxStackDepth = 0);

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_VERIFY_H
