//===- vm/Heap.cpp - Mark-sweep garbage-collected heap --------------------===//

#include "vm/Heap.h"

#include "support/Casting.h"

#include <algorithm>

using namespace pecomp;
using namespace pecomp::vm;

void RootVisitor::visit(Value V) { H.mark(V); }

Heap::~Heap() {
  HeapObject *O = Objects;
  while (O) {
    HeapObject *Next = O->Next;
    destroy(O);
    O = Next;
  }
}

HeapObject *Heap::track(HeapObject *O) {
  O->Next = Objects;
  Objects = O;
  ++NumObjects;
  return O;
}

Value Heap::pair(Value Car, Value Cdr) {
  TempRoots.assign({Car, Cdr});
  maybeCollect();
  TempRoots.clear();
  return Value::object(track(new PairObject(Car, Cdr)));
}

Value Heap::string(std::string Text) {
  maybeCollect();
  return Value::object(track(new StringObject(std::move(Text))));
}

Value Heap::closure(const CodeObject *Code, std::span<const Value> Free) {
  TempRoots.assign(Free.begin(), Free.end());
  maybeCollect();
  TempRoots.clear();
  return Value::object(
      track(new ClosureObject(Code, std::vector<Value>(Free.begin(),
                                                       Free.end()))));
}

Value Heap::interpClosure(const LambdaExpr *Fn, Value Env) {
  TempRoots.assign({Env});
  maybeCollect();
  TempRoots.clear();
  return Value::object(track(new InterpClosureObject(Fn, Env)));
}

Value Heap::box(Value Contents) {
  TempRoots.assign({Contents});
  maybeCollect();
  TempRoots.clear();
  return Value::object(track(new BoxObject(Contents)));
}

Value Heap::list(std::span<const Value> Elements) {
  // Build back to front; the accumulator must survive the next allocation.
  RootScope Scope(*this);
  Value &Acc = Scope.protect(Value::nil());
  for (size_t I = Elements.size(); I-- > 0;)
    Acc = pair(Elements[I], Acc);
  return Acc;
}

void Heap::addRootProvider(RootProvider *Provider) {
  Providers.push_back(Provider);
}

void Heap::removeRootProvider(RootProvider *Provider) {
  auto It = std::find(Providers.rbegin(), Providers.rend(), Provider);
  assert(It != Providers.rend() && "provider was not registered");
  Providers.erase(std::next(It).base());
}

void Heap::maybeCollect() {
  if (Stress || NumObjects >= NextGcThreshold)
    collect();
}

void Heap::collect() {
  ++NumCollections;
  RootVisitor Visitor(*this);
  for (RootProvider *P : Providers)
    P->traceRoots(Visitor);
  for (Value V : Pinned)
    mark(V);
  for (Value V : TempRoots)
    mark(V);
  sweep();
  NextGcThreshold = std::max<size_t>(4096, NumObjects * 2);
}

void Heap::mark(Value V) {
  if (!V.isObject())
    return;
  // Iterative marking with an explicit worklist; recursion would overflow
  // on long lists.
  std::vector<HeapObject *> Worklist;
  auto Push = [&Worklist](Value W) {
    if (W.isObject() && !W.asObject()->Marked) {
      W.asObject()->Marked = true;
      Worklist.push_back(W.asObject());
    }
  };
  Push(V);
  while (!Worklist.empty()) {
    HeapObject *O = Worklist.back();
    Worklist.pop_back();
    switch (O->Kind) {
    case ObjectKind::Pair: {
      auto *P = static_cast<PairObject *>(O);
      Push(P->Car);
      Push(P->Cdr);
      break;
    }
    case ObjectKind::String:
      break;
    case ObjectKind::Closure:
      for (Value F : static_cast<ClosureObject *>(O)->Free)
        Push(F);
      break;
    case ObjectKind::InterpClosure:
      Push(static_cast<InterpClosureObject *>(O)->Env);
      break;
    case ObjectKind::Box:
      Push(static_cast<BoxObject *>(O)->Contents);
      break;
    }
  }
}

void Heap::sweep() {
  HeapObject **Link = &Objects;
  while (*Link) {
    HeapObject *O = *Link;
    if (O->Marked) {
      O->Marked = false;
      Link = &O->Next;
    } else {
      *Link = O->Next;
      destroy(O);
      --NumObjects;
    }
  }
}

void Heap::destroy(HeapObject *O) {
  switch (O->Kind) {
  case ObjectKind::Pair:
    delete static_cast<PairObject *>(O);
    return;
  case ObjectKind::String:
    delete static_cast<StringObject *>(O);
    return;
  case ObjectKind::Closure:
    delete static_cast<ClosureObject *>(O);
    return;
  case ObjectKind::InterpClosure:
    delete static_cast<InterpClosureObject *>(O);
    return;
  case ObjectKind::Box:
    delete static_cast<BoxObject *>(O);
    return;
  }
}
