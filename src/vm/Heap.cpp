//===- vm/Heap.cpp - Mark-sweep garbage-collected heap --------------------===//

#include "vm/Heap.h"

#include "support/Casting.h"

#include <algorithm>

using namespace pecomp;
using namespace pecomp::vm;

void RootVisitor::visit(Value V) { H.mark(V); }

Heap::~Heap() {
  HeapObject *O = Objects;
  while (O) {
    HeapObject *Next = O->Next;
    destroy(O);
    O = Next;
  }
}

size_t Heap::objectSize(const HeapObject *O) {
  // Payload sizes are fixed at construction (strings and closure capture
  // vectors are never grown), so one measurement at track() time stays
  // correct until the sweep that reclaims the object.
  switch (O->Kind) {
  case ObjectKind::Pair:
    return sizeof(PairObject);
  case ObjectKind::String:
    return sizeof(StringObject) +
           static_cast<const StringObject *>(O)->Text.capacity();
  case ObjectKind::Closure:
    return sizeof(ClosureObject) +
           static_cast<const ClosureObject *>(O)->Free.capacity() *
               sizeof(Value);
  case ObjectKind::InterpClosure:
    return sizeof(InterpClosureObject);
  case ObjectKind::Box:
    return sizeof(BoxObject);
  }
  return sizeof(HeapObject);
}

HeapObject *Heap::track(HeapObject *O) {
  O->Next = Objects;
  Objects = O;
  ++NumObjects;
  LiveBytes += objectSize(O);
  return O;
}

void Heap::setFault(std::string Why) {
  Faulted = true;
  FaultMessage = std::move(Why);
}

Value Heap::pair(Value Car, Value Cdr) {
  TempRoots.assign({Car, Cdr});
  maybeCollect();
  TempRoots.clear();
  return Value::object(track(new PairObject(Car, Cdr)));
}

Value Heap::string(std::string Text) {
  maybeCollect();
  return Value::object(track(new StringObject(std::move(Text))));
}

Value Heap::closure(const CodeObject *Code, std::span<const Value> Free) {
  TempRoots.assign(Free.begin(), Free.end());
  maybeCollect();
  TempRoots.clear();
  return Value::object(
      track(new ClosureObject(Code, std::vector<Value>(Free.begin(),
                                                       Free.end()))));
}

Value Heap::interpClosure(const LambdaExpr *Fn, Value Env) {
  TempRoots.assign({Env});
  maybeCollect();
  TempRoots.clear();
  return Value::object(track(new InterpClosureObject(Fn, Env)));
}

Value Heap::box(Value Contents) {
  TempRoots.assign({Contents});
  maybeCollect();
  TempRoots.clear();
  return Value::object(track(new BoxObject(Contents)));
}

Value Heap::list(std::span<const Value> Elements) {
  // Build back to front; the accumulator must survive the next allocation.
  RootScope Scope(*this);
  Value &Acc = Scope.protect(Value::nil());
  for (size_t I = Elements.size(); I-- > 0;)
    Acc = pair(Elements[I], Acc);
  return Acc;
}

void Heap::addRootProvider(RootProvider *Provider) {
  Providers.push_back(Provider);
}

void Heap::removeRootProvider(RootProvider *Provider) {
  auto It = std::find(Providers.rbegin(), Providers.rend(), Provider);
  assert(It != Providers.rend() && "provider was not registered");
  Providers.erase(std::next(It).base());
}

void Heap::maybeCollect() {
  // Runs before the object is constructed (TempRoots protect the
  // allocation's arguments), so collecting here can never reclaim the
  // value being allocated.
  ++NumAllocations;
  if (Plan.CollectEveryAlloc || NumObjects >= NextGcThreshold)
    collect();
  if (Faulted)
    return; // already poisoned; checkpoints will unwind shortly
  if (Plan.FailAtAllocation && NumAllocations == Plan.FailAtAllocation) {
    setFault("fault plan: allocation #" +
             std::to_string(Plan.FailAtAllocation) + " failed");
    return;
  }
  if (Plan.FailAboveLiveBytes && LiveBytes > Plan.FailAboveLiveBytes) {
    setFault("fault plan: live bytes " + std::to_string(LiveBytes) +
             " above watermark " + std::to_string(Plan.FailAboveLiveBytes));
    return;
  }
  if (MaxBytes && LiveBytes >= MaxBytes) {
    collect();
    if (LiveBytes >= MaxBytes)
      setFault("heap limit of " + std::to_string(MaxBytes) +
               " bytes exceeded (" + std::to_string(LiveBytes) +
               " live after collection)");
  }
}

void Heap::collect() {
  ++NumCollections;
  RootVisitor Visitor(*this);
  for (RootProvider *P : Providers)
    P->traceRoots(Visitor);
  for (Value V : Pinned)
    mark(V);
  for (Value V : TempRoots)
    mark(V);
  sweep();
  NextGcThreshold = std::max<size_t>(4096, NumObjects * 2);
}

void Heap::mark(Value V) {
  if (!V.isObject())
    return;
  // Iterative marking with an explicit worklist; recursion would overflow
  // on long lists.
  std::vector<HeapObject *> Worklist;
  auto Push = [&Worklist](Value W) {
    if (W.isObject() && !W.asObject()->Marked) {
      W.asObject()->Marked = true;
      Worklist.push_back(W.asObject());
    }
  };
  Push(V);
  while (!Worklist.empty()) {
    HeapObject *O = Worklist.back();
    Worklist.pop_back();
    switch (O->Kind) {
    case ObjectKind::Pair: {
      auto *P = static_cast<PairObject *>(O);
      Push(P->Car);
      Push(P->Cdr);
      break;
    }
    case ObjectKind::String:
      break;
    case ObjectKind::Closure:
      for (Value F : static_cast<ClosureObject *>(O)->Free)
        Push(F);
      break;
    case ObjectKind::InterpClosure:
      Push(static_cast<InterpClosureObject *>(O)->Env);
      break;
    case ObjectKind::Box:
      Push(static_cast<BoxObject *>(O)->Contents);
      break;
    }
  }
}

void Heap::sweep() {
  HeapObject **Link = &Objects;
  while (*Link) {
    HeapObject *O = *Link;
    if (O->Marked) {
      O->Marked = false;
      Link = &O->Next;
    } else {
      *Link = O->Next;
      --NumObjects;
      LiveBytes -= objectSize(O);
      destroy(O);
    }
  }
}

void Heap::destroy(HeapObject *O) {
  switch (O->Kind) {
  case ObjectKind::Pair:
    delete static_cast<PairObject *>(O);
    return;
  case ObjectKind::String:
    delete static_cast<StringObject *>(O);
    return;
  case ObjectKind::Closure:
    delete static_cast<ClosureObject *>(O);
    return;
  case ObjectKind::InterpClosure:
    delete static_cast<InterpClosureObject *>(O);
    return;
  case ObjectKind::Box:
    delete static_cast<BoxObject *>(O);
    return;
  }
}
