//===- vm/Value.h - Runtime values ------------------------------*- C++ -*-===//
///
/// \file
/// The runtime value representation shared by the virtual machine, the
/// reference interpreter, and the specializer (whose static data are
/// ordinary runtime values). A Value is one 64-bit word:
///
///   ...xxx1  fixnum (63-bit, two's complement)
///   ...0000  heap object pointer (8-byte aligned), or 0 = invalid
///   ...0010  immediate: false/true/nil/unspecified
///   ...0100  symbol (intern id in the upper bits)
///   ...0110  character
///
/// Heap objects (pairs, strings, closures, boxes) live in vm::Heap and are
/// reclaimed by its mark-sweep collector.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_VALUE_H
#define PECOMP_VM_VALUE_H

#include "sexp/Symbol.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pecomp {

class LambdaExpr;

namespace vm {

class CodeObject;
struct HeapObject;

class Value {
public:
  Value() = default;

  // -- Constructors ---------------------------------------------------------

  static Value fixnum(int64_t N) {
    return Value((static_cast<uint64_t>(N) << 1) | 1);
  }
  static Value boolean(bool B) { return Value(B ? TrueBits : FalseBits); }
  static Value nil() { return Value(NilBits); }
  static Value unspecified() { return Value(UnspecifiedBits); }
  static Value symbol(Symbol S) {
    return Value((static_cast<uint64_t>(S.id()) << 4) | SymbolTag);
  }
  static Value character(char C) {
    return Value((static_cast<uint64_t>(static_cast<unsigned char>(C)) << 4) |
                 CharTag);
  }
  static Value object(HeapObject *O) {
    assert((reinterpret_cast<uint64_t>(O) & 7) == 0 && "unaligned object");
    return Value(reinterpret_cast<uint64_t>(O));
  }

  // -- Predicates -------------------------------------------------------------

  bool isValid() const { return Bits != 0; }
  bool isFixnum() const { return Bits & 1; }
  bool isBoolean() const { return Bits == TrueBits || Bits == FalseBits; }
  bool isNil() const { return Bits == NilBits; }
  bool isUnspecified() const { return Bits == UnspecifiedBits; }
  bool isSymbol() const { return (Bits & 15) == SymbolTag; }
  bool isChar() const { return (Bits & 15) == CharTag; }
  bool isObject() const { return Bits != 0 && (Bits & 7) == 0; }

  /// Scheme truth: everything except #f is true.
  bool isTruthy() const { return Bits != FalseBits; }

  // -- Accessors --------------------------------------------------------------

  int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    return static_cast<int64_t>(Bits) >> 1;
  }
  bool asBoolean() const {
    assert(isBoolean() && "not a boolean");
    return Bits == TrueBits;
  }
  Symbol asSymbol() const;
  char asChar() const {
    assert(isChar() && "not a character");
    return static_cast<char>(Bits >> 4);
  }
  HeapObject *asObject() const {
    assert(isObject() && "not a heap object");
    return reinterpret_cast<HeapObject *>(Bits);
  }

  /// Identity (Scheme eq?): same bits.
  friend bool operator==(Value A, Value B) { return A.Bits == B.Bits; }
  friend bool operator!=(Value A, Value B) { return A.Bits != B.Bits; }

  uint64_t raw() const { return Bits; }

private:
  explicit Value(uint64_t Bits) : Bits(Bits) {}

  static constexpr uint64_t FalseBits = 0x02;       // 0 << 4 | 0010
  static constexpr uint64_t TrueBits = 0x12;        // 1 << 4 | 0010
  static constexpr uint64_t NilBits = 0x22;         // 2 << 4 | 0010
  static constexpr uint64_t UnspecifiedBits = 0x32; // 3 << 4 | 0010
  static constexpr uint64_t SymbolTag = 0x4;
  static constexpr uint64_t CharTag = 0x6;

  uint64_t Bits = 0;
};

/// Heap object kinds.
enum class ObjectKind : uint8_t {
  Pair,
  String,
  Closure,       ///< compiled: code object + captured values
  InterpClosure, ///< interpreted: lambda expression + environment
  Box,
};

/// Common header of all heap objects. Objects form an intrusive list for
/// the sweep phase.
struct HeapObject {
  ObjectKind Kind;
  bool Marked = false;
  HeapObject *Next = nullptr;

  explicit HeapObject(ObjectKind Kind) : Kind(Kind) {}
};

struct PairObject : HeapObject {
  Value Car, Cdr;
  PairObject(Value Car, Value Cdr)
      : HeapObject(ObjectKind::Pair), Car(Car), Cdr(Cdr) {}
  static bool classof(const HeapObject *O) {
    return O->Kind == ObjectKind::Pair;
  }
};

struct StringObject : HeapObject {
  std::string Text;
  explicit StringObject(std::string Text)
      : HeapObject(ObjectKind::String), Text(std::move(Text)) {}
  static bool classof(const HeapObject *O) {
    return O->Kind == ObjectKind::String;
  }
};

struct ClosureObject : HeapObject {
  const CodeObject *Code;
  std::vector<Value> Free;
  ClosureObject(const CodeObject *Code, std::vector<Value> Free)
      : HeapObject(ObjectKind::Closure), Code(Code), Free(std::move(Free)) {}
  static bool classof(const HeapObject *O) {
    return O->Kind == ObjectKind::Closure;
  }
};

/// A closure of the reference interpreter (src/eval): the lambda's syntax
/// plus the captured environment, which is itself a runtime value (an
/// association list), so the collector traces it like any other data.
struct InterpClosureObject : HeapObject {
  const LambdaExpr *Fn;
  Value Env;
  InterpClosureObject(const LambdaExpr *Fn, Value Env)
      : HeapObject(ObjectKind::InterpClosure), Fn(Fn), Env(Env) {}
  static bool classof(const HeapObject *O) {
    return O->Kind == ObjectKind::InterpClosure;
  }
};

struct BoxObject : HeapObject {
  Value Contents;
  explicit BoxObject(Value Contents)
      : HeapObject(ObjectKind::Box), Contents(Contents) {}
  static bool classof(const HeapObject *O) {
    return O->Kind == ObjectKind::Box;
  }
};

/// Structural equality (Scheme equal?): recursive over pairs and strings,
/// identity elsewhere.
bool valueEquals(Value A, Value B);

/// Structural hash consistent with valueEquals. Used as the specializer's
/// memoization key over static argument values.
uint64_t valueHash(Value V);

/// Renders the external representation of \p V (Scheme write).
std::string valueToString(Value V);

/// Human-readable runtime type name ("fixnum", "pair", "closure", ...),
/// for trap diagnostics.
const char *valueTypeName(Value V);

/// Hash-map key wrapper comparing values structurally (valueEquals /
/// valueHash). Used by the literal-interning tables so repeated equal
/// constants share one literal slot regardless of identity.
struct StructuralValueKey {
  Value V;
  bool operator==(const StructuralValueKey &O) const {
    return valueEquals(V, O.V);
  }
};

struct StructuralValueHash {
  size_t operator()(const StructuralValueKey &K) const {
    return static_cast<size_t>(valueHash(K.V));
  }
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_VALUE_H
