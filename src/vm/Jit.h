//===- vm/Jit.h - Per-block template JIT ------------------------*- C++ -*-===//
///
/// \file
/// The native tier under the decoded/fused dispatch loops: a per-basic-block
/// template JIT over the pre-decoded instruction stream (DecodedInsn). Each
/// straight-line block whose opcodes are all in the supported subset is
/// compiled by stitching fixed x86-64 templates — fixnum arithmetic and
/// compares, local loads, constants, branches, Slide, Halt — plus runtime
/// call-outs into the Machine for everything that allocates, traps, or
/// switches frames (prims, globals, Call/TailCall/Return). Blocks containing
/// an unsupported opcode (MakeClosure) are left to the decoded loop; native
/// execution re-enters at the next compiled block boundary, and the decoded
/// loop symmetrically hands control back whenever its instruction pointer
/// lands on a compiled block (see PECOMP_JIT_RESUME in Machine.cpp).
///
/// Parity contract (the whole point): byte-accurate trap PCs, per-source-
/// instruction fuel accounting, and identical executed-instruction counts
/// with the byte, decoded, and fused loops. Emitted code charges fuel, the
/// executed counter, and the per-opcode profile counter before each source
/// instruction's template (three memory increments), and every block entry
/// re-checks the fuel ceiling for the whole block — bailing to the decoded
/// loop with *nothing* charged when the budget cannot cover it, the same
/// trick the fused handlers use, so the fuel trap always fires on exactly
/// the source instruction it would have interpreted. Opcode digrams
/// (Profile::PairCount) are the one counter the native tier does not
/// maintain: they exist to tune the superinstruction set, which native
/// blocks bypass entirely.
///
/// Code buffers are W^X: templates are assembled into an anonymous RW
/// mapping which is flipped to RX (mprotect) before the first execution;
/// the buffer is never writable and executable at the same time.
///
/// The tier exists only on x86-64 Linux hosts (jitAvailable()); elsewhere
/// compile() returns null and every machine runs exactly as before.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_JIT_H
#define PECOMP_VM_JIT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pecomp {
namespace vm {

class CodeObject;
struct ExecState;

/// Why a native frame handed control back to Machine::runNative
/// (ExecState::Status at exit; 0 only while native code is running).
enum class JitExit : uint64_t {
  Done = 1,   ///< Halt, or Return from the last frame: ExecState::Ret holds
              ///< the result and the stack is exactly as the interpreter
              ///< would have left it
  Trap = 2,   ///< a trap was recorded (Machine::JitErr + LastTrap context)
  Bail = 3,   ///< a block-entry fuel check could not cover the block:
              ///< nothing was charged; the decoded loop re-runs the block
              ///< from ExitIP and reports the fuel trap at the exact source
              ///< instruction
  Switch = 4, ///< a frame switch (Call/TailCall/Return) reached code with
              ///< no native block at the resume point; frames and PCs are
              ///< already consistent for the outer dispatch loop
  Branch = 5, ///< a branch or fall-through inside the current frame reached
              ///< an uncompiled block: ExitIP is its decoded index and the
              ///< driver parks the frame PC there for the decoded loop
};

/// The compiled native form of one CodeObject: one RX buffer holding an
/// entry thunk (register prologue) plus the stitched templates of every
/// compiled basic block, and a per-decoded-index table of block entry
/// points. Immutable after compile(); lifetime is owned by the CodeObject
/// it was compiled from (the buffer embeds literal values and assumes the
/// non-moving heap keeps them rooted via the owning CodeStore).
class JitCode {
public:
  /// Signature of the entry thunk at buffer offset 0: saves the callee-
  /// saved registers, loads the ExecState register plan, and jumps to a
  /// block entry obtained from blockEntry().
  using EnterFn = void (*)(ExecState *, const void *);

  /// Compiles \p CO's decoded stream, or returns null when the host has no
  /// native tier, the code object has no decoded form, or no block
  /// compiled (every block contains an unsupported opcode).
  static std::unique_ptr<JitCode> compile(const CodeObject &CO);

  ~JitCode();
  JitCode(const JitCode &) = delete;
  JitCode &operator=(const JitCode &) = delete;

  /// Native entry for the block whose leader is decoded index \p Idx, or
  /// null when \p Idx does not start a compiled block (mid-block indices
  /// and fallback blocks alike) — the caller then stays interpreted.
  const void *blockEntry(size_t Idx) const {
    return Idx < Entries.size() ? Entries[Idx] : nullptr;
  }

  /// Runs native code starting at \p Entry (a blockEntry() result) until
  /// it exits; ExecState::Status then holds a JitExit.
  void enter(ExecState *ES, const void *Entry) const {
    reinterpret_cast<EnterFn>(Mem)(ES, Entry);
  }

  size_t compiledBlocks() const { return NumBlocks; }
  size_t compiledInsns() const { return NumInsns; }
  size_t codeBytes() const { return Size; }

private:
  JitCode() = default;

  uint8_t *Mem = nullptr; ///< RX mapping (W^X: writable only pre-flip)
  size_t Size = 0;
  std::vector<const void *> Entries; ///< per decoded index; null = no block
  size_t NumBlocks = 0;
  size_t NumInsns = 0;
};

/// Whether this build/host has the native tier at all (x86-64 Linux).
/// When false, JitCode::compile() always returns null and every JIT knob
/// is a no-op — tier-1 behavior is unchanged on any other host.
bool jitAvailable();

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_JIT_H
