//===- vm/Code.h - Byte code objects ----------------------------*- C++ -*-===//
///
/// \file
/// The object-code representation executed by the virtual machine: compiled
/// code objects (byte code + literal table + child code objects for nested
/// lambdas) and the global table linking top-level names to indices.
///
/// The instruction set is a compact stack-machine design in the spirit of
/// the Scheme 48 VM the paper builds on: direct support for closures,
/// proper tail calls, and stack-relative local addressing (the compiler
/// threads a stack depth, exactly as described in Sec. 4/6.1).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_VM_CODE_H
#define PECOMP_VM_CODE_H

#include "vm/Heap.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pecomp {
namespace vm {

/// Byte-code opcodes. Operands are little-endian u16 unless noted.
enum class Op : uint8_t {
  Const,       ///< u16 literal index; pushes literals[i]
  LocalRef,    ///< u16 slot; pushes stack[base + slot]
  FreeRef,     ///< u16 index; pushes current closure's captured value
  GlobalRef,   ///< u16 global index; pushes globals[i]
  MakeClosure, ///< u16 child code index, u16 n: pops n captures, pushes
               ///< a closure over children[i]
  Call,        ///< u8 n: stack holds callee a1..an; pushes a frame
  TailCall,    ///< u8 n: like Call but replaces the current frame
  Return,      ///< pops the result, discards the frame, pushes the result
  Jump,        ///< i16 offset relative to the next instruction
  JumpIfFalse, ///< i16 offset; pops the test
  Prim,        ///< u8 primop; pops its arity, pushes the result
  Slide,       ///< u16 n: stack[top-n] = stack[top], pop n (stock compiler
               ///< cleanup of expression temporaries)
  Halt,        ///< stops execution; top of stack is the result
  JumpIfTrue,  ///< i16 offset; pops the test (emitted only by the peephole
               ///< pass, for JumpIfFalse-over-Jump branch inversion)

  // -- Decoded-only superinstructions --------------------------------------
  // The opcodes below never appear in byte code (the byte interpreter and
  // the verifier reject them); they exist only in a DecodedStream's fused
  // instruction array, where the decoder patches them over the *first*
  // instruction of a recognized straight-line idiom. The constituent
  // instructions keep their original entries at the same indices, so jump
  // targets, byte-offset maps, fuel escapes, and trap PCs are unaffected.
  FuseLocalLocalPrim, ///< LocalRef a; LocalRef b; Prim p (arity 2)
  FuseConstPrim,      ///< Const i; Prim p
  FuseLocalPrim,      ///< LocalRef a; Prim p
  FuseCmpJumpIfFalse, ///< Prim p (predicate); JumpIfFalse off
  FuseLocalReturn,    ///< LocalRef a; Return
  FusePrimReturn,     ///< Prim p; Return
};

/// Number of *byte-code* opcodes (Profile counter array size, operand
/// tables, verifier): everything a byte stream may legally contain.
inline constexpr size_t NumOpcodes = static_cast<size_t>(Op::JumpIfTrue) + 1;

/// Number of opcodes the decoded dispatch loop can see — byte opcodes plus
/// the fused superinstructions (dispatch-table size of the fast loop).
inline constexpr size_t NumDecodedOps =
    static_cast<size_t>(Op::FusePrimReturn) + 1;

/// How many fused superinstruction forms exist (Profile::FusedCount size).
inline constexpr size_t NumFusedOps = NumDecodedOps - NumOpcodes;

/// The opcode's mnemonic ("Const", "Jump", ...), or "?" out of range.
const char *opMnemonic(Op O);

/// One pre-decoded instruction: the opcode plus its fully-extracted
/// operands in fixed-width slots, so the hot loop never re-derives operand
/// widths or re-reads little-endian bytes. Byte offsets are kept alongside
/// so traps report the same faulting PC the byte interpreter would.
struct DecodedInsn {
  Op Opcode;
  Op SrcOp;            ///< the byte opcode at PC. Equal to Opcode except in
                       ///< the fused array, where a fusion head's Opcode is
                       ///< the superinstruction and SrcOp the idiom's first
                       ///< source opcode (trap/profile context stays
                       ///< source-accurate)
  uint8_t C = 0;       ///< u8 operand (Call/TailCall argc, Prim number)
  uint16_t A = 0;      ///< first u16 operand (index / slot / count)
  uint16_t B = 0;      ///< second u16 operand (MakeClosure capture count);
                       ///< for Prim, the pre-looked-up arity
  uint32_t PC = 0;     ///< byte offset of this instruction's opcode
  uint32_t NextPC = 0; ///< byte offset of the fall-through successor
  int32_t Target = -1; ///< decoded index of the jump target
                       ///< (Jump/JumpIfFalse/JumpIfTrue)
};

/// The pre-decoded form of one CodeObject: a dense instruction array plus
/// the byte-offset -> instruction-index map used to resume a frame whose
/// saved PC is (by design) always a byte offset.
class DecodedStream {
public:
  std::vector<DecodedInsn> Insns;
  /// The superinstruction view: a copy of Insns in which the head of each
  /// fused idiom carries the fused Opcode (constituents are untouched, so
  /// the two arrays index identically and share ByteToIndex/Target).
  /// Empty when the stream contains no fusable idiom — the machine then
  /// runs Insns regardless of its fusion setting.
  std::vector<DecodedInsn> Fused;
  /// ByteToIndex[pc] is the decoded index of the instruction starting at
  /// byte pc, or -1 for mid-instruction offsets. One extra slot maps
  /// code.size() (a frame parked exactly at the end) to -1.
  std::vector<int32_t> ByteToIndex;

  /// Decoded index for a byte offset known to be an instruction start
  /// (frame PCs only ever hold 0, a Call fall-through, or a jump target,
  /// all of which decode() verified).
  size_t indexOf(size_t BytePC) const {
    assert(BytePC < ByteToIndex.size() && ByteToIndex[BytePC] >= 0 &&
           "frame pc does not start an instruction");
    return static_cast<size_t>(ByteToIndex[BytePC]);
  }
};

class JitCode;

/// A compiled procedure body.
class CodeObject {
public:
  /// Out of line (vm/Jit.cpp): JitCode is incomplete here, and both the
  /// destructor and the constructor's exception-cleanup path need the
  /// native cache's deleter.
  CodeObject(std::string Name, uint32_t Arity);
  ~CodeObject();
  CodeObject(const CodeObject &) = delete;
  CodeObject &operator=(const CodeObject &) = delete;

  const std::string &name() const { return Name; }
  uint32_t arity() const { return Arity; }

  const std::vector<uint8_t> &code() const { return Code; }
  const std::vector<Value> &literals() const { return Literals; }
  const std::vector<const CodeObject *> &children() const { return Children; }

  /// Mutation is confined to assembly time (the compiler backends): the
  /// machine caches a pre-decoded form on first execution, so bytes must
  /// not change after the object has run (linkProgramVerified pre-decodes
  /// eagerly, making late mutation an assertion failure in decode order).
  std::vector<uint8_t> &mutableCode() { return Code; }

  /// The pre-decoded instruction stream, built and cached on first use.
  /// Returns null when the byte stream does not decode cleanly as one
  /// linear instruction sequence (unknown opcode, truncated operands,
  /// mid-instruction jump target, out-of-range static index, or control
  /// flow that can run off the end): such code objects permanently run on
  /// the byte interpreter, which reproduces the seed trap for them.
  const DecodedStream *decoded() const;

  /// Whether decoded() has been computed yet (used by the machine to
  /// attribute first-decode latency to Profile::DecodeNanos).
  bool decodeAttempted() const { return DState != DecodeState::Unknown; }

  /// The native-code form (vm/Jit), built from the decoded stream and
  /// cached on first use like decoded(). Null when the host has no native
  /// tier, the bytes do not decode, or no basic block compiled — such
  /// objects permanently run on the interpreter loops. Defined in
  /// vm/Jit.cpp.
  const JitCode *jit() const;

  /// Whether jit() has been computed yet (used by the machine to
  /// attribute first-compile latency to Profile::JitNanos).
  bool jitAttempted() const { return JState != JitState::Unknown; }

  /// Whether the byte-code peephole pass (compiler/Peephole.h) has already
  /// processed this object. Set by the pass itself and by
  /// PortableProgram::instantiate for snapshots captured after the pass,
  /// so cache hits pay no re-optimization cost and repeated links are
  /// idempotent.
  bool peepholed() const { return PeepholeDone; }
  void markPeepholed() { PeepholeDone = true; }
  uint16_t addLiteral(Value V) {
    checkLimit(Literals.size(), "literal table");
    Literals.push_back(V);
    return static_cast<uint16_t>(Literals.size() - 1);
  }
  uint16_t addChild(const CodeObject *Child) {
    checkLimit(Children.size(), "child table");
    Children.push_back(Child);
    return static_cast<uint16_t>(Children.size() - 1);
  }

  /// Human-readable disassembly (recursive over children).
  std::string disassemble() const;

private:
  /// Encoding limits are hard errors in every build configuration:
  /// truncating an index would produce silently wrong code.
  void checkLimit(size_t Size, const char *What) {
    if (Size >= 65535) {
      fprintf(stderr, "pecomp: %s overflow in code object '%s'\n", What,
              Name.c_str());
      abort();
    }
  }

  std::string Name;
  uint32_t Arity;
  std::vector<uint8_t> Code;
  std::vector<Value> Literals;
  std::vector<const CodeObject *> Children;

  /// Decode cache. Logically const: the decoded form is a pure function
  /// of the (assembly-frozen) bytes above.
  enum class DecodeState : uint8_t { Unknown, Ready, Fallback };
  mutable DecodeState DState = DecodeState::Unknown;
  mutable std::unique_ptr<DecodedStream> Decoded;

  /// Native-code cache, same discipline as the decode cache above (and
  /// the same thread-safety caveat: first use races are the caller's to
  /// prevent — RtcgService machines each own their code objects).
  enum class JitState : uint8_t { Unknown, Ready, None };
  mutable JitState JState = JitState::Unknown;
  mutable std::unique_ptr<JitCode> Jitted;
  bool PeepholeDone = false;
};

/// Byte-for-byte structural equality of code objects (code bytes, literals
/// by valueEquals, children recursively). This is the strong form of the
/// paper's fusion theorem checked in the tests: the fused generating
/// extension must produce exactly the code that compiling the residual
/// source produces.
bool codeEquals(const CodeObject *A, const CodeObject *B);

/// Owns code objects and keeps their literal tables alive across GCs.
class CodeStore : public RootProvider {
public:
  explicit CodeStore(Heap &H) : H(H) { H.addRootProvider(this); }
  ~CodeStore() override { H.removeRootProvider(this); }
  CodeStore(const CodeStore &) = delete;
  CodeStore &operator=(const CodeStore &) = delete;

  CodeObject *create(std::string Name, uint32_t Arity) {
    Store.push_back(std::make_unique<CodeObject>(std::move(Name), Arity));
    return Store.back().get();
  }

  void traceRoots(RootVisitor &Visitor) override {
    for (const auto &Code : Store)
      for (Value V : Code->literals())
        Visitor.visit(V);
  }

  size_t size() const { return Store.size(); }
  Heap &heap() { return H; }

private:
  Heap &H;
  std::vector<std::unique_ptr<CodeObject>> Store;
};

/// Maps top-level definition names to global slots. Shared vocabulary
/// between compile time (emitting GlobalRef) and run time (the machine's
/// global vector).
class GlobalTable {
public:
  uint16_t lookupOrAdd(Symbol Name) {
    auto It = Index.find(Name);
    if (It != Index.end())
      return It->second;
    Names.push_back(Name);
    uint16_t I = static_cast<uint16_t>(Names.size() - 1);
    Index.emplace(Name, I);
    return I;
  }

  std::optional<uint16_t> lookup(Symbol Name) const {
    auto It = Index.find(Name);
    if (It == Index.end())
      return std::nullopt;
    return It->second;
  }

  size_t size() const { return Names.size(); }
  Symbol name(uint16_t I) const { return Names[I]; }

private:
  std::vector<Symbol> Names;
  std::unordered_map<Symbol, uint16_t> Index;
};

} // namespace vm
} // namespace pecomp

#endif // PECOMP_VM_CODE_H
