//===- pgg/NetServer.h - epoll front end for the RTCG service ---*- C++ -*-===//
///
/// \file
/// The networked serving front end (`pecompc serve --listen=PORT`): a
/// single-threaded epoll event loop that speaks the NetProtocol frame
/// format on any number of concurrent connections and feeds the
/// RtcgService worker pool through its callback submit path. The paper's
/// Sec. 7 cost model says generation cost is amortized across the runs
/// that reuse a specialization; a network front end is how runs from
/// *many clients* land on one SpecCache, which is the strongest form of
/// that amortization.
///
/// Threading model: exactly one thread runs the event loop (run()). It
/// never executes tenant code — requests are handed to RtcgService
/// workers, whose completion callbacks encode the response bytes on the
/// worker thread and post them to a completion queue; an eventfd wakes
/// the loop to flush them out. requestStop() is the only other
/// thread-safe (and async-signal-safe) entry point.
///
/// Flow control, two mechanisms with different scopes:
///  - Backpressure (per connection): when a connection's buffered
///    response bytes exceed WriteHighWater, the loop stops *reading*
///    that connection (EPOLLIN off) until the buffer drains below half
///    the mark — a slow reader throttles only itself; its unread
///    requests wait in its socket, not in server memory.
///  - Load shedding (global): when accepted-but-unanswered requests
///    reach QueueDepth, new requests are answered immediately with a
///    classified ServiceError::Overloaded ProtoError frame and never
///    enqueued — the client sees a fast, classified rejection instead of
///    unbounded queueing.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_NETSERVER_H
#define PECOMP_PGG_NETSERVER_H

#include "pgg/NetProtocol.h"
#include "pgg/RtcgService.h"

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace pecomp {
namespace pgg {
namespace net {

struct NetServerOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0; ///< 0 = ephemeral; the bound port is port()
  /// Global shed threshold: accepted-but-unanswered requests beyond this
  /// are refused with a classified Overloaded ProtoError.
  size_t QueueDepth = 256;
  /// Per-connection backpressure: stop reading a connection whose
  /// buffered response bytes exceed this; resume below half of it.
  size_t WriteHighWater = 1u << 20;
  size_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// When nonzero, clamp SO_SNDBUF on accepted sockets. Bounds kernel
  /// memory per connection and disables sndbuf autotuning, so slow
  /// readers hit the user-space WriteHighWater (and thus backpressure)
  /// instead of ballooning kernel buffers. 0 = leave the kernel default.
  int SndBufBytes = 0;
};

/// Counters the loop keeps; snapshot with stats() (same thread as run(),
/// or after run() returned).
struct NetServerStats {
  uint64_t Accepted = 0;     ///< connections accepted
  uint64_t Requests = 0;     ///< well-framed Request frames admitted
  uint64_t Responses = 0;    ///< Response frames queued for write
  uint64_t Shed = 0;         ///< requests refused Overloaded
  uint64_t BadFrames = 0;    ///< framing/payload errors (BadFrame)
  uint64_t BadVersions = 0;  ///< version-skew rejections
  uint64_t ReadPauses = 0;   ///< backpressure engagements
};

/// One server bound to one program: every Request frame specializes/runs
/// the template's ProgramText+Entry (the frame carries division override,
/// static values, run arguments, and the tenant id).
class NetServer {
public:
  /// Binds and listens; fails with a rendered errno message when the
  /// address is unusable. \p Template supplies ProgramText, Entry, and
  /// the default Division for requests that send an empty one.
  static Result<std::unique_ptr<NetServer>>
  create(RtcgService &Service, RtcgRequest Template, NetServerOptions Opts);

  ~NetServer();
  NetServer(const NetServer &) = delete;
  NetServer &operator=(const NetServer &) = delete;

  /// The bound port (after create(); meaningful with Opts.Port == 0).
  uint16_t port() const { return BoundPort; }

  /// Runs the event loop until requestStop(); stats() has the counters
  /// afterwards. Call from exactly one thread.
  void run();

  /// Wakes the loop and makes run() return promptly; responses still in
  /// flight with workers are dropped (their connections are closing
  /// anyway). Safe from any thread and from signal handlers (one
  /// eventfd write).
  void requestStop();

  const NetServerStats &stats() const { return Stats; }

private:
  NetServer() = default;

  struct Conn;
  /// Completion queue shared with worker callbacks; shared_ptr-owned so
  /// a callback that outlives the server finds a poisoned box, not a
  /// dangling one.
  struct CompletionBox;

  void acceptReady();
  void drainCompletions();
  void connReadable(uint64_t Id);
  void connWritable(uint64_t Id);
  void handleFrame(Conn &C, const Frame &F);
  void sendBytes(Conn &C, std::vector<uint8_t> Bytes);
  void flush(Conn &C);
  /// Re-derives the connection's epoll interest set from its buffer
  /// state (EPOLLOUT while output is pending, EPOLLIN unless paused or
  /// closing) and applies backpressure transitions.
  void updateInterest(Conn &C);
  void closeConn(uint64_t Id);

  int EpollFd = -1;
  int ListenFd = -1;
  int StopFd = -1; ///< eventfd; requestStop() writes, the loop exits
  uint16_t BoundPort = 0;
  bool Stopping = false;

  RtcgService *Service = nullptr;
  RtcgRequest Template;
  NetServerOptions Opts;
  NetServerStats Stats;

  std::shared_ptr<CompletionBox> Box;
  /// Live connections by id. Ids are never reused (monotone counter), so
  /// a completion for a closed connection simply finds nothing — the fd
  /// number may already belong to a new connection, the id cannot.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 16; ///< ids 0..15 reserved for loop fds
  /// Accepted-but-unanswered requests across all connections (the shed
  /// counter compared against Opts.QueueDepth).
  size_t Pending = 0;
};

} // namespace net
} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_NETSERVER_H
