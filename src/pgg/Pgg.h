//===- pgg/Pgg.h - Program-generator generator driver -----------*- C++ -*-===//
///
/// \file
/// The user-facing PGG: builds generating extensions and runs them.
///
/// A GeneratingExtension packages the result of the "cogen" phase — front
/// end + binding-time analysis of a program for one entry division (the
/// BTA column of the paper's Fig. 8). Running it with static values
/// produces the residual program, on either of the paper's two paths:
///
///   generateSource  — residual ANF *source* (the ordinary PGG),
///   generateObject  — *object code* directly, via the fused
///                     specializer × compiler (the paper's contribution).
///
/// Typical use (see examples/quickstart.cpp):
///
/// \code
///   vm::Heap Heap;
///   auto Gen = pgg::GeneratingExtension::create(Heap, Source, "power", "DS");
///   auto Obj = (*Gen)->generateObject(Comp, {{std::nullopt,
///                                             vm::Value::fixnum(5)}});
///   // link Obj->Residual, call Obj->Entry with the dynamic arguments
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_PGG_H
#define PECOMP_PGG_PGG_H

#include "bta/Bta.h"
#include "compiler/CodeGenBuilder.h"
#include "spec/Specializer.h"
#include "spec/SyntaxBuilder.h"

#include <memory>

namespace pecomp {
namespace pgg {

struct PggOptions {
  bta::BtaOptions Bta;
  spec::SpecOptions Spec;
};

/// Parses "SD..."-style divisions: 'S'/'s' static, 'D'/'d' dynamic.
Result<std::vector<bta::BT>> parseDivision(std::string_view Mask);

/// Residual program in source form.
struct ResidualSource {
  Program Residual;
  Symbol Entry;
  spec::SpecStats Stats;
};

/// Residual program in object-code form.
struct ResidualObject {
  compiler::CompiledProgram Residual;
  Symbol Entry;
  spec::SpecStats Stats;
};

class GeneratingExtension {
public:
  /// Runs the front end and the BTA on \p ProgramText for \p Entry under
  /// \p Division ("S"/"D" per parameter). \p H hosts all static values and
  /// must outlive the extension and anything it generates.
  static Result<std::unique_ptr<GeneratingExtension>>
  create(vm::Heap &H, std::string_view ProgramText, std::string_view Entry,
         std::string_view Division, PggOptions Opts = {});

  /// Produces residual ANF source. \p Args: one slot per entry parameter;
  /// engaged = static value, nullopt = stays a parameter.
  Result<ResidualSource>
  generateSource(std::span<const std::optional<vm::Value>> Args);

  /// As above, but allocating residual syntax through caller-supplied
  /// factories (benchmarks scope the residual program's memory per run).
  Result<ResidualSource>
  generateSource(std::span<const std::optional<vm::Value>> Args,
                 ExprFactory &OutExprs, DatumFactory &OutDatums);

  /// Produces object code directly through the fused builder, emitting
  /// into \p Comp's code store / global table.
  Result<ResidualObject>
  generateObject(compiler::Compilators &Comp,
                 std::span<const std::optional<vm::Value>> Args);

  /// The analyzed two-level program (for inspection and tests).
  const bta::AnnProgram &annotated() const { return Ann; }
  /// The front-end output the BTA ran on.
  const Program &source() const { return Source; }
  /// The effective division of the entry parameters after analysis (the
  /// BTA may promote declared-static parameters to dynamic via joins).
  std::vector<bta::BT> effectiveDivision() const;

  vm::Heap &heap() { return H; }

private:
  GeneratingExtension(vm::Heap &H) : H(H), Exprs(AstArena), Datums(AstArena) {}

  vm::Heap &H;
  Arena AstArena;
  ExprFactory Exprs;
  DatumFactory Datums;
  Program Source;
  bta::AnnProgram Ann;
  PggOptions Opts;
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_PGG_H
