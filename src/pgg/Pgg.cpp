//===- pgg/Pgg.cpp - Program-generator generator driver --------------------===//

#include "pgg/Pgg.h"

#include "frontend/Pipeline.h"
#include "support/LargeStack.h"
#include "syntax/AnfCheck.h"
#include "vm/Trap.h"

using namespace pecomp;
using namespace pecomp::pgg;

Result<std::vector<bta::BT>> pgg::parseDivision(std::string_view Mask) {
  std::vector<bta::BT> Out;
  for (char C : Mask) {
    if (C == 'S' || C == 's')
      Out.push_back(bta::BT::Static);
    else if (C == 'D' || C == 'd')
      Out.push_back(bta::BT::Dynamic);
    else
      return makeError(std::string("division must be over {S, D}, got '") +
                       C + "'");
  }
  return Out;
}

Result<std::unique_ptr<GeneratingExtension>>
GeneratingExtension::create(vm::Heap &H, std::string_view ProgramText,
                            std::string_view Entry,
                            std::string_view Division, PggOptions Opts) {
  Result<std::vector<bta::BT>> Mask = parseDivision(Division);
  if (!Mask)
    return Mask.takeError();

  std::unique_ptr<GeneratingExtension> G(new GeneratingExtension(H));
  G->Opts = std::move(Opts);

  Result<Program> Source = frontendProgram(ProgramText, G->Exprs, G->Datums);
  if (!Source)
    return Source.takeError();
  G->Source = std::move(*Source);

  Result<bta::AnnProgram> Ann =
      bta::analyze(G->Source, Symbol::intern(Entry), *Mask, G->AstArena,
                   G->Opts.Bta);
  if (!Ann)
    return Ann.takeError();
  G->Ann = std::move(*Ann);
  return G;
}

std::vector<bta::BT> GeneratingExtension::effectiveDivision() const {
  const bta::AnnDefinition *Entry = Ann.find(Ann.Entry);
  assert(Entry && "entry disappeared from the annotated program");
  return Entry->ParamBTs;
}

Result<ResidualSource> GeneratingExtension::generateSource(
    std::span<const std::optional<vm::Value>> Args) {
  return generateSource(Args, Exprs, Datums);
}

Result<ResidualSource> GeneratingExtension::generateSource(
    std::span<const std::optional<vm::Value>> Args, ExprFactory &OutExprs,
    DatumFactory &OutDatums) {
  // The CPS specializer's host-stack use grows with unfolding depth; run
  // it on a dedicated large-stack thread (support/LargeStack.h).
  return runOnLargeStack([&]() -> Result<ResidualSource> {
    spec::SyntaxBuilder Builder(OutExprs, OutDatums);
    spec::Specializer<spec::SyntaxBuilder> S(Builder, Ann, H, Opts.Spec);
    Result<Symbol> Entry = S.specializeEntry(Args);
    if (!Entry)
      return Entry.takeError();
    // A ceiling breached on the very last allocation is only observable
    // here; never hand out a residual program built over a faulted heap.
    if (H.faulted())
      return vm::trapError(vm::TrapKind::HeapExhausted,
                           "heap exhausted during specialization: " +
                               H.faultMessage());
    ResidualSource Out{Builder.takeProgram(), *Entry, S.stats()};
    assert(!checkAnf(Out.Residual) &&
           "the specializer must produce ANF residual programs");
    return Out;
  });
}

Result<ResidualObject> GeneratingExtension::generateObject(
    compiler::Compilators &Comp,
    std::span<const std::optional<vm::Value>> Args) {
  return runOnLargeStack([&]() -> Result<ResidualObject> {
    compiler::CodeGenBuilder Builder(Comp);
    spec::Specializer<compiler::CodeGenBuilder> S(Builder, Ann, H,
                                                  Opts.Spec);
    Result<Symbol> Entry = S.specializeEntry(Args);
    if (!Entry)
      return Entry.takeError();
    if (H.faulted())
      return vm::trapError(vm::TrapKind::HeapExhausted,
                           "heap exhausted during specialization: " +
                               H.faultMessage());
    if (!Comp.overflowedFunction().empty())
      return makeError("residual function '" + Comp.overflowedFunction() +
                       "' outgrew the i16 jump range; the residual program "
                       "is too large for the byte-code encoding");
    return ResidualObject{Builder.takeProgram(), *Entry, S.stats()};
  });
}
