//===- pgg/TenantTable.cpp - Per-tenant quota configuration ---------------===//

#include "pgg/TenantTable.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

using namespace pecomp;
using namespace pecomp::pgg;

namespace {

std::vector<std::string_view> splitOn(std::string_view S, char Sep) {
  std::vector<std::string_view> Out;
  while (!S.empty()) {
    size_t P = S.find(Sep);
    Out.push_back(S.substr(0, P));
    if (P == std::string_view::npos)
      break;
    S.remove_prefix(P + 1);
  }
  return Out;
}

Result<uint64_t> parseNumber(std::string_view Text, std::string_view What) {
  std::string Buf(Text);
  errno = 0;
  char *End = nullptr;
  unsigned long long N = strtoull(Buf.c_str(), &End, 10);
  if (Buf.empty() || errno || *End != '\0')
    return makeError("tenant spec: bad " + std::string(What) + " value '" +
                     Buf + "'");
  return static_cast<uint64_t>(N);
}

} // namespace

Result<TenantTable> TenantTable::parse(std::string_view Spec,
                                       const vm::Limits &Defaults) {
  TenantTable T;
  for (std::string_view Item : splitOn(Spec, ';')) {
    if (Item.empty())
      continue;
    if (Item == "strict") {
      T.setStrict(true);
      continue;
    }
    size_t Colon = Item.find(':');
    Result<uint64_t> Id = parseNumber(Item.substr(0, Colon), "tenant id");
    if (!Id)
      return Id.takeError();
    TenantConfig C;
    C.Id = static_cast<uint32_t>(*Id);
    C.Limits = Defaults;
    if (Colon != std::string_view::npos) {
      for (std::string_view Kv : splitOn(Item.substr(Colon + 1), ',')) {
        size_t Eq = Kv.find('=');
        if (Eq == std::string_view::npos)
          return makeError("tenant spec: expected key=value, got '" +
                           std::string(Kv) + "'");
        std::string_view Key = Kv.substr(0, Eq);
        std::string_view Val = Kv.substr(Eq + 1);
        if (Key == "name") {
          C.Name = std::string(Val);
          continue;
        }
        Result<uint64_t> N = parseNumber(Val, Key);
        if (!N)
          return N.takeError();
        if (Key == "fuel")
          C.Limits.Fuel = *N;
        else if (Key == "heap")
          C.Limits.MaxHeapBytes = static_cast<size_t>(*N);
        else if (Key == "stack")
          C.Limits.MaxStackDepth = static_cast<size_t>(*N);
        else if (Key == "frames")
          C.Limits.MaxFrames = static_cast<size_t>(*N);
        else if (Key == "cache")
          C.CacheBytes = static_cast<size_t>(*N);
        else
          return makeError("tenant spec: unknown key '" + std::string(Key) +
                           "' (fuel, heap, stack, frames, cache, name)");
      }
    }
    T.add(std::move(C));
  }
  return T;
}
