//===- pgg/RtcgService.h - Concurrent specialize-and-run service -*- C++ -*-===//
///
/// \file
/// The serving loop the north star asks for: N specialize-and-run
/// requests over M worker threads. Each worker owns a full execution
/// universe — its own vm::Heap, vm::Machine (reused across requests, with
/// vm::Limits in force), and per-program generating extensions — so
/// workers share *no* mutable runtime state; the one shared structure is
/// the SpecCache, whose entries are immutable PortableProgram snapshots
/// under sharded locks.
///
/// A request is fully self-contained text (program, entry, division,
/// datum arguments), exactly what `pecompc serve` reads per line: the
/// service parses into the worker's heap, consults the cache, either
/// relinks the cached unit or runs the generating extension (and
/// publishes the capture), executes, and renders the result — one cached
/// specialization serving many executions across many threads.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_RTCGSERVICE_H
#define PECOMP_PGG_RTCGSERVICE_H

#include "pgg/Pgg.h"
#include "pgg/SpecCache.h"
#include "pgg/TenantTable.h"
#include "vm/Profile.h"

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pecomp {

class LargeStackThread;

namespace pgg {

/// Classified service-lifecycle failures, carried in Error::code() offset
/// by ServiceErrorCodeBase — a third code space next to vm::TrapKind
/// (low values) and pgg::StoreError (base 100). A request failed this way
/// never reached a worker universe at all, which is precisely what the
/// classification certifies: at shutdown the workers' heaps and machines
/// are being (or have been) destroyed, and the one safe way to fail the
/// outstanding futures is from the outside, without touching them.
enum class ServiceError : uint8_t {
  None = 0,
  Stopped,  ///< service shut down before the request was served
  Rejected, ///< submitted after shutdown began
  /// The serving queue hit its high-water mark and the request was shed
  /// without being enqueued (networked serving backpressure).
  Overloaded,
  BadFrame,      ///< malformed wire frame or payload (networked serving)
  BadVersion,    ///< client spoke an unsupported protocol version
  UnknownTenant, ///< tenant id not in a strict TenantTable
};

/// Human-readable class name ("Stopped", ...).
const char *serviceErrorName(ServiceError E);

/// Error::code() base for service errors (vm::TrapKind owns the low
/// values, StoreError base 100).
constexpr int ServiceErrorCodeBase = 200;

/// Builds a classified service Error.
inline Error serviceError(ServiceError K, std::string Message) {
  Error E(std::move(Message));
  E.setCode(ServiceErrorCodeBase + static_cast<int>(K));
  return E;
}

/// The service class of \p E (ServiceError::None for other errors).
inline ServiceError serviceErrorOf(const Error &E) {
  int C = E.code() - ServiceErrorCodeBase;
  if (C <= 0 || C > static_cast<int>(ServiceError::UnknownTenant))
    return ServiceError::None;
  return static_cast<ServiceError>(C);
}

/// One specialize-and-run request, all in external (text) form.
struct RtcgRequest {
  std::string ProgramText;
  std::string Entry;
  std::string Division; ///< "S"/"D" per entry parameter
  /// One slot per entry parameter: a datum text (static value) or "_"
  /// (stays a parameter of the residual program).
  std::vector<std::string> SpecArgs;
  /// Datum texts for the residual entry's (dynamic) parameters.
  std::vector<std::string> RunArgs;
  /// Originating tenant. 0 (the default) is the anonymous single-tenant
  /// id: it runs under the service-wide limits and the shared cache key
  /// space, so embedders that never configure tenants see no change.
  /// Nonzero ids resolve through RtcgOptions::Tenants for per-request
  /// vm::Limits and a tenant-partitioned slice of the SpecCache.
  uint32_t Tenant = 0;
};

struct RtcgResponse {
  bool Ok = false;
  std::string Value;     ///< external representation of the result
  std::string ErrorText; ///< when !Ok
  int TrapCode = 0;      ///< vm::TrapKind of the failure (0 = none)
  bool CacheHit = false; ///< specialization served from the cache
  bool DiskHit = false;  ///< ... specifically from the persistent store
  /// Classified store failure observed while serving this request
  /// (StoreErrorCodeBase + pgg::StoreError; 0 = none). Deliberately a
  /// separate channel from TrapCode: a corrupt/unloadable store entry
  /// degrades to cold specialization and the request still succeeds, so
  /// StoreCode can be nonzero while Ok is true and TrapCode is 0.
  int StoreCode = 0;
  std::string StoreNote; ///< description of the store failure
  /// Classified service-lifecycle failure (ServiceErrorCodeBase +
  /// pgg::ServiceError; 0 = none). Nonzero means the request never
  /// entered a worker universe (shutdown raced it), so TrapCode and
  /// StoreCode are meaningless and Worker is unset.
  int ServiceCode = 0;
  /// Served by an online re-specialized variant (guards held and the
  /// value-extended entry ran).
  bool Respecialized = false;
  /// A variant was installed for this request's key but its argument
  /// guards failed — the request deoptimized to the generic code.
  bool GuardMiss = false;
  spec::SpecStats Gen; ///< generation stats (the cached ones on a hit)
  size_t Worker = 0;   ///< index of the worker that served it
};

/// Online re-specialization policy knobs (the `--respecialize` flag).
struct RespecOptions {
  bool Enabled = false;
  /// Observed calls of one (program, entry, division, static-args) key
  /// before its censuses are consulted.
  uint64_t HotThreshold = 16;
  /// Minimum share the top rendering of a dynamic slot must own for the
  /// slot to be stabilized (guards on a flakier value miss too often to
  /// pay).
  double MinStability = 0.5;
};

/// Counters for the online re-specialization loop, snapshotted by
/// RtcgService::respecStats().
struct RespecStats {
  uint64_t SitesObserved = 0; ///< distinct keys with census data
  uint64_t JobsQueued = 0;    ///< background re-specializations started
  uint64_t Installed = 0;     ///< variants live behind a guard
  uint64_t Failed = 0;        ///< jobs that could not produce a variant
  uint64_t Abandoned = 0;     ///< jobs orphaned by shutdown
  uint64_t GuardHits = 0;     ///< requests served by a variant
  uint64_t GuardMisses = 0;   ///< requests that deoptimized to generic
};

struct RtcgOptions {
  size_t Threads = 4;
  size_t CacheBytes = 64u << 20; ///< 0 = unlimited
  size_t CacheShards = 8;
  vm::Limits Limits;             ///< per-worker machine/heap ceilings
  /// Superinstruction fusion in each worker's decoded dispatch loop
  /// (vm::Machine::setFusion); build option PECOMP_NO_FUSE pins the
  /// default off.
#ifdef PECOMP_NO_FUSE
  bool Fusion = false;
#else
  bool Fusion = true;
#endif
  /// Native tier: per-block template JIT under the decoded loop
  /// (vm::Machine::setNativeJit). Workers both *use* native code and
  /// compile residual programs' blocks eagerly at link time
  /// (compiler::LinkOptions::NativeJit), so cached variants serve hot
  /// requests from native blocks. Harmless no-op on non-x86-64 hosts;
  /// build option PECOMP_NO_JIT pins the default off.
#ifdef PECOMP_NO_JIT
  bool NativeJit = false;
#else
  bool NativeJit = true;
#endif
  /// Peephole-optimize residual code before capture/link, so cached
  /// snapshots store optimized bytes and hits pay no per-hit pass.
#ifdef PECOMP_NO_PEEPHOLE
  bool Peephole = false;
#else
  bool Peephole = true;
#endif
  /// Persistent cache tier (pgg/DiskStore.h), attached to the service's
  /// SpecCache when non-null. The caller opens the store so an open
  /// failure is reportable up front rather than silently degrading.
  std::shared_ptr<DiskStore> Store;
  /// Online profile-guided re-specialization with guarded deopt.
  RespecOptions Respec;
  /// Per-tenant quotas and cache partitions (pgg/TenantTable.h). Null
  /// means single-tenant: every request runs under Limits and the shared
  /// cache. With a table, a request's tenant id picks its vm::Limits and
  /// its SpecCache partition budget; a strict table rejects unlisted ids
  /// with a classified ServiceError::UnknownTenant.
  std::shared_ptr<const TenantTable> Tenants;
  PggOptions Pgg;
};

/// Thread-pool driver. submit() never blocks on the work itself; the
/// destructor drains nothing — outstanding futures are failed with
/// "service stopped" and workers are joined.
class RtcgService {
public:
  explicit RtcgService(RtcgOptions Opts = {});
  ~RtcgService();
  RtcgService(const RtcgService &) = delete;
  RtcgService &operator=(const RtcgService &) = delete;

  std::future<RtcgResponse> submit(RtcgRequest Req);

  /// Callback form for event-loop callers (the network server): \p Done
  /// runs exactly once, on the serving worker's thread — or inline when
  /// the request is rejected after shutdown, or on the stopping thread
  /// for requests still queued at stop(). The callback must not block
  /// (post to your own queue and return).
  void submit(RtcgRequest Req, std::function<void(RtcgResponse)> Done);

  /// Queued jobs not yet picked up by a worker plus jobs currently being
  /// served; the network front end sheds above its high-water mark on
  /// this number.
  size_t inFlight() const;

  /// Begins shutdown: fails every queued request with a classified
  /// ServiceError::Stopped, accounts queued re-specialization jobs as
  /// abandoned, and makes all further submit() calls fail with
  /// ServiceError::Rejected. Idempotent; the destructor calls it and
  /// then joins the workers (which finish their in-flight request).
  void stop();

  /// Submits every request and waits; responses are in request order.
  std::vector<RtcgResponse> serveAll(std::vector<RtcgRequest> Reqs);

  SpecCache &cache() { return Cache; }
  CacheStats cacheStats() const { return Cache.stats(); }
  RespecStats respecStats() const;
  size_t threads() const { return Workers.size(); }

  /// Blocks until no background re-specialization job is queued or
  /// running. Deterministic tests and benches call this between the
  /// warm-up burst (which triggers the jobs) and the measured burst
  /// (which should hit the installed variants).
  void quiesceRespec();

private:
  /// An installed re-specialized variant for one generic key: the
  /// value-extended cache key plus the guard the serving path must check
  /// (RunArgs slot indices and the expected datum texts, canonical
  /// renderings).
  struct Variant {
    SpecKey ExtKey;
    std::vector<uint32_t> GuardSlots;
    std::vector<std::string> GuardTexts;
  };
  /// Per-generic-key re-specialization state machine. Failed is terminal:
  /// a key whose variant could not be generated is not retried (the
  /// inputs are deterministic, so neither would the retry be different).
  enum class SiteState : uint8_t { Observing, Queued, Installed, Failed };
  struct SiteInfo {
    SiteState State = SiteState::Observing;
    vm::CallSiteSample Census;
    std::shared_ptr<const Variant> Live; ///< set when State == Installed
  };

  struct Job {
    RtcgRequest Req;
    std::promise<RtcgResponse> Promise;
    /// When set, delivery goes through the callback instead of Promise
    /// (the callback-form submit()).
    std::function<void(RtcgResponse)> Done;
    /// Background re-specialization job: Req is the synthesized
    /// value-extended request (generate-only, no RunArgs), Promise is
    /// unused, and the fields below carry the installation target.
    bool Respec = false;
    uint64_t GenericHash = 0;
    std::vector<uint32_t> GuardSlots;
    std::vector<std::string> GuardTexts;
  };
  struct WorkerState; // worker-owned universe, defined in the .cpp

  void workerLoop(size_t Index);
  RtcgResponse process(WorkerState &W, const RtcgRequest &Req);
  void processRespec(WorkerState &W, Job &J);
  /// Folds the worker's fresh argument censuses into the site keyed by
  /// \p GenericHash and queues a re-specialization job if the site just
  /// crossed the policy thresholds.
  void observeAndMaybeRespec(WorkerState &W, const RtcgRequest &Req,
                             uint64_t GenericHash);
  std::shared_ptr<const Variant> installedVariant(uint64_t GenericHash) const;
  void finishRespecJob();

  RtcgOptions Opts;
  SpecCache Cache;

  mutable std::mutex QueueM;
  std::condition_variable QueueCv;
  std::deque<Job> Queue;
  bool Stopping = false;
  /// Client requests accepted but not yet delivered (queued + serving);
  /// excludes background re-specialization jobs. See inFlight().
  size_t InFlightCount = 0;

  /// Re-specialization controller state: site table, counters, and the
  /// in-flight job count quiesceRespec() waits on.
  mutable std::mutex RespecM;
  std::condition_variable RespecCv;
  std::unordered_map<uint64_t, SiteInfo> Sites;
  RespecStats RStats;
  size_t RespecInFlight = 0;

  std::vector<std::unique_ptr<LargeStackThread>> Workers;
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_RTCGSERVICE_H
