//===- pgg/RtcgService.h - Concurrent specialize-and-run service -*- C++ -*-===//
///
/// \file
/// The serving loop the north star asks for: N specialize-and-run
/// requests over M worker threads. Each worker owns a full execution
/// universe — its own vm::Heap, vm::Machine (reused across requests, with
/// vm::Limits in force), and per-program generating extensions — so
/// workers share *no* mutable runtime state; the one shared structure is
/// the SpecCache, whose entries are immutable PortableProgram snapshots
/// under sharded locks.
///
/// A request is fully self-contained text (program, entry, division,
/// datum arguments), exactly what `pecompc serve` reads per line: the
/// service parses into the worker's heap, consults the cache, either
/// relinks the cached unit or runs the generating extension (and
/// publishes the capture), executes, and renders the result — one cached
/// specialization serving many executions across many threads.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_RTCGSERVICE_H
#define PECOMP_PGG_RTCGSERVICE_H

#include "pgg/Pgg.h"
#include "pgg/SpecCache.h"

#include <deque>
#include <future>
#include <memory>
#include <vector>

namespace pecomp {

class LargeStackThread;

namespace pgg {

/// One specialize-and-run request, all in external (text) form.
struct RtcgRequest {
  std::string ProgramText;
  std::string Entry;
  std::string Division; ///< "S"/"D" per entry parameter
  /// One slot per entry parameter: a datum text (static value) or "_"
  /// (stays a parameter of the residual program).
  std::vector<std::string> SpecArgs;
  /// Datum texts for the residual entry's (dynamic) parameters.
  std::vector<std::string> RunArgs;
};

struct RtcgResponse {
  bool Ok = false;
  std::string Value;     ///< external representation of the result
  std::string ErrorText; ///< when !Ok
  int TrapCode = 0;      ///< vm::TrapKind of the failure (0 = none)
  bool CacheHit = false; ///< specialization served from the cache
  bool DiskHit = false;  ///< ... specifically from the persistent store
  /// Classified store failure observed while serving this request
  /// (StoreErrorCodeBase + pgg::StoreError; 0 = none). Deliberately a
  /// separate channel from TrapCode: a corrupt/unloadable store entry
  /// degrades to cold specialization and the request still succeeds, so
  /// StoreCode can be nonzero while Ok is true and TrapCode is 0.
  int StoreCode = 0;
  std::string StoreNote; ///< description of the store failure
  spec::SpecStats Gen;   ///< generation stats (the cached ones on a hit)
  size_t Worker = 0;     ///< index of the worker that served it
};

struct RtcgOptions {
  size_t Threads = 4;
  size_t CacheBytes = 64u << 20; ///< 0 = unlimited
  size_t CacheShards = 8;
  vm::Limits Limits;             ///< per-worker machine/heap ceilings
  /// Superinstruction fusion in each worker's decoded dispatch loop
  /// (vm::Machine::setFusion); build option PECOMP_NO_FUSE pins the
  /// default off.
#ifdef PECOMP_NO_FUSE
  bool Fusion = false;
#else
  bool Fusion = true;
#endif
  /// Peephole-optimize residual code before capture/link, so cached
  /// snapshots store optimized bytes and hits pay no per-hit pass.
#ifdef PECOMP_NO_PEEPHOLE
  bool Peephole = false;
#else
  bool Peephole = true;
#endif
  /// Persistent cache tier (pgg/DiskStore.h), attached to the service's
  /// SpecCache when non-null. The caller opens the store so an open
  /// failure is reportable up front rather than silently degrading.
  std::shared_ptr<DiskStore> Store;
  PggOptions Pgg;
};

/// Thread-pool driver. submit() never blocks on the work itself; the
/// destructor drains nothing — outstanding futures are failed with
/// "service stopped" and workers are joined.
class RtcgService {
public:
  explicit RtcgService(RtcgOptions Opts = {});
  ~RtcgService();
  RtcgService(const RtcgService &) = delete;
  RtcgService &operator=(const RtcgService &) = delete;

  std::future<RtcgResponse> submit(RtcgRequest Req);

  /// Submits every request and waits; responses are in request order.
  std::vector<RtcgResponse> serveAll(std::vector<RtcgRequest> Reqs);

  SpecCache &cache() { return Cache; }
  CacheStats cacheStats() const { return Cache.stats(); }
  size_t threads() const { return Workers.size(); }

private:
  struct Job {
    RtcgRequest Req;
    std::promise<RtcgResponse> Promise;
  };
  struct WorkerState; // worker-owned universe, defined in the .cpp

  void workerLoop(size_t Index);
  RtcgResponse process(WorkerState &W, const RtcgRequest &Req);

  RtcgOptions Opts;
  SpecCache Cache;

  std::mutex QueueM;
  std::condition_variable QueueCv;
  std::deque<Job> Queue;
  bool Stopping = false;

  std::vector<std::unique_ptr<LargeStackThread>> Workers;
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_RTCGSERVICE_H
