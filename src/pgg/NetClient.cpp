//===- pgg/NetClient.cpp - blocking client for the RTCG server ------------===//

#include "pgg/NetClient.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pecomp;
using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

namespace {

Error sysError(const std::string &What) {
  return makeError(What + ": " + std::strerror(errno));
}

} // namespace

NetClient::~NetClient() {
  if (Fd >= 0)
    ::close(Fd);
}

Result<NetClient> NetClient::connect(const std::string &Host, uint16_t Port,
                                     int RcvBufBytes) {
  NetClient C;
  C.Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (C.Fd < 0)
    return sysError("socket");
  int One = 1;
  ::setsockopt(C.Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
  if (RcvBufBytes > 0)
    ::setsockopt(C.Fd, SOL_SOCKET, SO_RCVBUF, &RcvBufBytes, sizeof RcvBufBytes);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return makeError("bad address '" + Host + "'");
  if (::connect(C.Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0)
    return sysError("connect " + Host + ":" + std::to_string(Port));
  return C;
}

Result<bool> NetClient::sendRaw(const uint8_t *Data, size_t N) {
  size_t Off = 0;
  while (Off < N) {
    ssize_t W = ::send(Fd, Data + Off, N - Off, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return sysError("send");
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

Result<Frame> NetClient::receiveFrame() {
  if (!Stash.empty()) {
    Frame F = std::move(Stash.front());
    Stash.erase(Stash.begin());
    return F;
  }
  return readFrame();
}

Result<Frame> NetClient::readFrame() {
  Frame F;
  for (;;) {
    FrameDecoder::Status St = Decoder.next(F);
    if (St == FrameDecoder::Status::Ready)
      return F;
    if (St == FrameDecoder::Status::Failed)
      return Decoder.error();
    uint8_t Buf[64 * 1024];
    ssize_t N = ::read(Fd, Buf, sizeof Buf);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return sysError("read");
    }
    if (N == 0)
      return makeError("connection closed by server");
    Decoder.feed(Buf, static_cast<size_t>(N));
  }
}

Result<uint8_t> NetClient::hello(uint8_t MinVersion, uint8_t MaxVersion) {
  std::vector<uint8_t> B = encodeHello(MinVersion, MaxVersion);
  if (Result<bool> S = sendRaw(B.data(), B.size()); !S)
    return S.takeError();
  Result<Frame> F = receiveFrame();
  if (!F)
    return F.takeError();
  if (F->Header.Type == FrameType::ProtoError) {
    Result<NetResponse> E = decodeProtoErrorPayload(F->Payload);
    if (!E)
      return E.takeError();
    Error Err(E->Value);
    Err.setCode(static_cast<int>(E->Code));
    return Err;
  }
  if (F->Header.Type != FrameType::HelloAck)
    return makeError("expected HelloAck, got frame type " +
                     std::to_string(static_cast<int>(F->Header.Type)));
  Result<std::pair<uint8_t, uint8_t>> V =
      decodeHelloPayload(FrameType::HelloAck, F->Payload);
  if (!V)
    return V.takeError();
  return V->first;
}

Result<uint64_t> NetClient::send(uint32_t Tenant, const NetRequest &R) {
  uint64_t Id = NextId++;
  std::vector<uint8_t> B = encodeRequest(Tenant, Id, R);
  if (Result<bool> S = sendRaw(B.data(), B.size()); !S)
    return S.takeError();
  return Id;
}

Result<RtcgResponse> NetClient::receive(uint64_t RequestId) {
  auto Decode = [](Frame &F) -> Result<RtcgResponse> {
    Result<NetResponse> R = F.Header.Type == FrameType::Response
                                ? decodeResponsePayload(F.Payload)
                                : decodeProtoErrorPayload(F.Payload);
    if (!R)
      return R.takeError();
    return toRtcgResponse(F.Header, *R);
  };
  // First check frames already set aside by earlier receives.
  for (size_t I = 0; I != Stash.size(); ++I) {
    if (Stash[I].Header.RequestId != RequestId)
      continue;
    Frame F = std::move(Stash[I]);
    Stash.erase(Stash.begin() + static_cast<ptrdiff_t>(I));
    return Decode(F);
  }
  // Otherwise read fresh frames, stashing out-of-order completions of
  // pipelined siblings for the receive() that wants them.
  for (;;) {
    Result<Frame> F = readFrame();
    if (!F)
      return F.takeError();
    if (F->Header.Type != FrameType::Response &&
        F->Header.Type != FrameType::ProtoError)
      continue; // stray HelloAck (pipelined hello); not a response
    if (F->Header.RequestId != RequestId) {
      Stash.push_back(std::move(*F));
      continue;
    }
    return Decode(*F);
  }
}

Result<RtcgResponse> NetClient::call(uint32_t Tenant, const NetRequest &R) {
  Result<uint64_t> Id = send(Tenant, R);
  if (!Id)
    return Id.takeError();
  return receive(*Id);
}
