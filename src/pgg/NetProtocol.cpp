//===- pgg/NetProtocol.cpp - RTCG serving wire protocol -------------------===//
//
// Hand-rolled little-endian codec. Writers append to a byte vector and
// backpatch the payload length; readers carry an explicit cursor and
// bounds-check every read against the payload span, so a malicious
// length field inside a payload can at worst fail that one request with
// a classified BadFrame — never read out of bounds, never desync the
// stream (framing is the header's job, and the header length was already
// validated against the frame ceiling by the decoder).
//
//===----------------------------------------------------------------------===//

#include "pgg/NetProtocol.h"

#include <cstring>

using namespace pecomp;
using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

namespace {

void putU8(std::vector<uint8_t> &B, uint8_t V) { B.push_back(V); }

void putU16(std::vector<uint8_t> &B, uint16_t V) {
  B.push_back(static_cast<uint8_t>(V));
  B.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    B.push_back(static_cast<uint8_t>(V >> Shift));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    B.push_back(static_cast<uint8_t>(V >> Shift));
}

void putText(std::vector<uint8_t> &B, std::string_view S) {
  putU32(B, static_cast<uint32_t>(S.size()));
  B.insert(B.end(), S.begin(), S.end());
}

/// Emits the 24-byte header with a zero payload length; the length is
/// backpatched once the payload has been appended.
void putHeader(std::vector<uint8_t> &B, FrameType Type, uint16_t Flags,
               uint32_t Tenant, uint64_t RequestId) {
  putU32(B, FrameMagic);
  putU8(B, ProtocolVersion);
  putU8(B, static_cast<uint8_t>(Type));
  putU16(B, Flags);
  putU32(B, Tenant);
  putU64(B, RequestId);
  putU32(B, 0); // payload length, backpatched by sealFrame
}

void sealFrame(std::vector<uint8_t> &B) {
  uint32_t Len = static_cast<uint32_t>(B.size() - FrameHeaderBytes);
  for (int I = 0; I != 4; ++I)
    B[20 + I] = static_cast<uint8_t>(Len >> (8 * I));
}

/// Bounds-checked payload reader.
struct Cursor {
  std::span<const uint8_t> P;
  size_t Pos = 0;
  bool Ok = true;

  bool need(size_t N) {
    if (P.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return P[Pos++];
  }
  uint16_t u16() {
    if (!need(2))
      return 0;
    uint16_t V = static_cast<uint16_t>(P[Pos] | (P[Pos + 1] << 8));
    Pos += 2;
    return V;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(P[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  std::string text() {
    uint32_t N = u32();
    if (!Ok || !need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(P.data() + Pos), N);
    Pos += N;
    return S;
  }
};

Error badFrame(std::string What) {
  return serviceError(ServiceError::BadFrame, std::move(What));
}

} // namespace

std::vector<uint8_t> net::encodeHello(uint8_t MinVersion, uint8_t MaxVersion) {
  std::vector<uint8_t> B;
  putHeader(B, FrameType::Hello, 0, 0, 0);
  putU8(B, MinVersion);
  putU8(B, MaxVersion);
  sealFrame(B);
  return B;
}

std::vector<uint8_t> net::encodeHelloAck(uint8_t ChosenVersion) {
  std::vector<uint8_t> B;
  putHeader(B, FrameType::HelloAck, 0, 0, 0);
  putU8(B, ChosenVersion);
  sealFrame(B);
  return B;
}

std::vector<uint8_t> net::encodeRequest(uint32_t Tenant, uint64_t RequestId,
                                        const NetRequest &R) {
  std::vector<uint8_t> B;
  putHeader(B, FrameType::Request, 0, Tenant, RequestId);
  putU16(B, static_cast<uint16_t>(R.Division.size()));
  B.insert(B.end(), R.Division.begin(), R.Division.end());
  putU16(B, static_cast<uint16_t>(R.SpecArgs.size()));
  for (const std::string &A : R.SpecArgs)
    putText(B, A);
  putU16(B, static_cast<uint16_t>(R.RunArgs.size()));
  for (const std::string &A : R.RunArgs)
    putText(B, A);
  sealFrame(B);
  return B;
}

std::vector<uint8_t> net::encodeResponse(uint32_t Tenant, uint64_t RequestId,
                                         const RtcgResponse &R) {
  uint16_t Flags = 0;
  if (R.CacheHit)
    Flags |= RespCacheHit;
  if (R.DiskHit)
    Flags |= RespDiskHit;
  if (R.Respecialized)
    Flags |= RespRespecialized;
  if (R.GuardMiss)
    Flags |= RespGuardMiss;

  uint8_t Status = R.Ok ? 0 : (R.TrapCode ? 1 : 2);
  uint32_t Code = 0;
  if (!R.Ok)
    Code = static_cast<uint32_t>(R.TrapCode     ? R.TrapCode
                                 : R.ServiceCode ? R.ServiceCode
                                 : R.StoreCode   ? R.StoreCode
                                                 : 0);

  std::vector<uint8_t> B;
  putHeader(B, FrameType::Response, Flags, Tenant, RequestId);
  putU8(B, Status);
  putU32(B, Code);
  putU32(B, static_cast<uint32_t>(R.StoreCode));
  putText(B, R.Ok ? R.Value : R.ErrorText);
  putText(B, R.StoreNote);
  sealFrame(B);
  return B;
}

std::vector<uint8_t> net::encodeProtoError(uint32_t Tenant, uint64_t RequestId,
                                           uint32_t Code,
                                           std::string_view Text) {
  std::vector<uint8_t> B;
  putHeader(B, FrameType::ProtoError, 0, Tenant, RequestId);
  putU32(B, Code);
  putText(B, Text);
  sealFrame(B);
  return B;
}

Result<NetRequest> net::decodeRequestPayload(std::span<const uint8_t> Payload) {
  Cursor C{Payload};
  NetRequest R;
  uint16_t DivLen = C.u16();
  if (!C.Ok || !C.need(DivLen))
    return badFrame("request frame: truncated division");
  R.Division.assign(reinterpret_cast<const char *>(Payload.data() + C.Pos),
                    DivLen);
  C.Pos += DivLen;
  uint16_t NSpec = C.u16();
  for (uint16_t I = 0; C.Ok && I != NSpec; ++I)
    R.SpecArgs.push_back(C.text());
  uint16_t NRun = C.u16();
  for (uint16_t I = 0; C.Ok && I != NRun; ++I)
    R.RunArgs.push_back(C.text());
  if (!C.Ok)
    return badFrame("request frame: truncated argument list");
  if (C.Pos != Payload.size())
    return badFrame("request frame: " +
                    std::to_string(Payload.size() - C.Pos) +
                    " trailing bytes after the last argument");
  return R;
}

Result<NetResponse>
net::decodeResponsePayload(std::span<const uint8_t> Payload) {
  Cursor C{Payload};
  NetResponse R;
  R.Status = C.u8();
  R.Code = C.u32();
  R.StoreCode = C.u32();
  R.Value = C.text();
  R.StoreNote = C.text();
  if (!C.Ok)
    return badFrame("response frame: truncated payload");
  if (C.Pos != Payload.size())
    return badFrame("response frame: trailing bytes");
  return R;
}

Result<NetResponse>
net::decodeProtoErrorPayload(std::span<const uint8_t> Payload) {
  Cursor C{Payload};
  NetResponse R;
  R.Status = 2;
  R.Code = C.u32();
  R.Value = C.text();
  if (!C.Ok)
    return badFrame("proto-error frame: truncated payload");
  if (C.Pos != Payload.size())
    return badFrame("proto-error frame: trailing bytes");
  return R;
}

Result<std::pair<uint8_t, uint8_t>>
net::decodeHelloPayload(FrameType Type, std::span<const uint8_t> Payload) {
  Cursor C{Payload};
  if (Type == FrameType::HelloAck) {
    uint8_t V = C.u8();
    if (!C.Ok || C.Pos != Payload.size())
      return badFrame("hello-ack frame: expected exactly one version byte");
    return std::pair<uint8_t, uint8_t>{V, V};
  }
  uint8_t Min = C.u8();
  uint8_t Max = C.u8();
  if (!C.Ok || C.Pos != Payload.size())
    return badFrame("hello frame: expected exactly two version bytes");
  return std::pair<uint8_t, uint8_t>{Min, Max};
}

RtcgResponse net::toRtcgResponse(const FrameHeader &H, const NetResponse &R) {
  RtcgResponse Out;
  Out.Ok = R.Status == 0;
  if (Out.Ok) {
    Out.Value = R.Value;
  } else {
    Out.ErrorText = R.Value;
    if (R.Status == 1)
      Out.TrapCode = static_cast<int>(R.Code);
    else if (R.Code >= static_cast<uint32_t>(ServiceErrorCodeBase))
      Out.ServiceCode = static_cast<int>(R.Code);
  }
  Out.StoreCode = static_cast<int>(R.StoreCode);
  Out.StoreNote = R.StoreNote;
  Out.CacheHit = H.Flags & RespCacheHit;
  Out.DiskHit = H.Flags & RespDiskHit;
  Out.Respecialized = H.Flags & RespRespecialized;
  Out.GuardMiss = H.Flags & RespGuardMiss;
  return Out;
}

void FrameDecoder::feed(const uint8_t *Data, size_t N) {
  if (Poisoned)
    return; // a poisoned stream never yields another frame
  // Compact consumed bytes before appending, so the buffer stays bounded
  // by one partial frame plus whatever feed() batch arrived.
  if (Pos) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + N);
}

FrameDecoder::Status FrameDecoder::next(Frame &Out) {
  if (Poisoned)
    return Status::Failed;

  const uint8_t *H = Buf.data() + Pos;
  auto RdU32 = [&](size_t Off) {
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(H[Off + I]) << (8 * I);
    return V;
  };

  // Check the magic as soon as four bytes are in hand: a desynchronized
  // (or plain non-protocol) peer gets failed fast instead of being
  // strung along until a full header accumulates.
  if (Buf.size() - Pos >= 4 && RdU32(0) != FrameMagic) {
    Err = serviceError(ServiceError::BadFrame,
                       "bad frame magic (stream desynchronized)");
    Poisoned = true;
    return Status::Failed;
  }
  if (Buf.size() - Pos < FrameHeaderBytes)
    return Status::NeedMore;
  uint32_t PayloadLen = RdU32(20);
  if (PayloadLen > MaxFrame) {
    Err = serviceError(ServiceError::BadFrame,
                       "frame payload of " + std::to_string(PayloadLen) +
                           " bytes exceeds the " + std::to_string(MaxFrame) +
                           "-byte ceiling");
    Poisoned = true;
    return Status::Failed;
  }
  if (Buf.size() - Pos < FrameHeaderBytes + PayloadLen)
    return Status::NeedMore;

  Out.Header.Version = H[4];
  Out.Header.Type = static_cast<FrameType>(H[5]);
  Out.Header.Flags = static_cast<uint16_t>(H[6] | (H[7] << 8));
  Out.Header.Tenant = RdU32(8);
  Out.Header.RequestId = 0;
  for (int I = 0; I != 8; ++I)
    Out.Header.RequestId |= static_cast<uint64_t>(H[12 + I]) << (8 * I);
  Out.Header.PayloadLen = PayloadLen;
  Out.Payload.assign(H + FrameHeaderBytes, H + FrameHeaderBytes + PayloadLen);
  Pos += FrameHeaderBytes + PayloadLen;
  return Status::Ready;
}
