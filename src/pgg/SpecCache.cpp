//===- pgg/SpecCache.cpp - Cross-run specialization code cache ------------===//

#include "pgg/SpecCache.h"

#include "pgg/DiskStore.h"

#include <cstdio>

using namespace pecomp;
using namespace pecomp::pgg;

namespace {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t H, std::string_view Bytes) {
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnv1aByte(uint64_t H, uint8_t B) {
  H ^= B;
  H *= FnvPrime;
  return H;
}

} // namespace

uint64_t pgg::fingerprintProgram(std::string_view ProgramText,
                                 std::string_view Entry,
                                 std::string_view Division) {
  uint64_t H = FnvOffset;
  H = fnv1a(H, ProgramText);
  H = fnv1aByte(H, 0); // unambiguous field separators
  H = fnv1a(H, Entry);
  H = fnv1aByte(H, 0);
  H = fnv1a(H, Division);
  return H;
}

uint64_t pgg::tenantFingerprint(uint64_t ProgramFp, uint32_t Tenant) {
  if (Tenant == 0)
    return ProgramFp; // identity: single-tenant keys (and stores) unchanged
  uint64_t H = ProgramFp;
  for (int Shift = 0; Shift < 32; Shift += 8)
    H = fnv1aByte(H * FnvPrime, static_cast<uint8_t>(Tenant >> Shift));
  return H;
}

SpecKey pgg::makeSpecKey(uint64_t ProgramFp,
                         std::span<const std::optional<vm::Value>> Args) {
  SpecKey K;
  K.ProgramFp = ProgramFp;
  K.BtSig.reserve(Args.size());
  for (const std::optional<vm::Value> &A : Args) {
    K.BtSig.push_back(A ? 'S' : 'D');
    if (A) {
      K.StaticSig += vm::valueToString(*A);
      K.StaticSig.push_back('\n'); // writes never contain a raw newline
    }
  }
  K.Hash = specKeyHash(ProgramFp, K.BtSig, K.StaticSig);
  return K;
}

uint64_t pgg::specKeyHash(uint64_t ProgramFp, std::string_view BtSig,
                          std::string_view StaticSig) {
  uint64_t H = FnvOffset;
  for (int Shift = 0; Shift < 64; Shift += 8)
    H = fnv1aByte(H, static_cast<uint8_t>(ProgramFp >> Shift));
  H = fnv1a(H, BtSig);
  H = fnv1aByte(H, 0);
  H = fnv1a(H, StaticSig);
  return H;
}

size_t CacheStats::addCoverage(support::CoverageMap &M) const {
  const uint64_t Events[] = {Hits, Misses, Insertions, Evictions};
  size_t New = 0;
  for (size_t E = 0; E != sizeof(Events) / sizeof(Events[0]); ++E)
    if (Events[E])
      New += M.add(support::CovCacheEvent, E);
  return New;
}

std::string CacheStats::report() const {
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "spec-cache: %llu lookups, %llu hits, %llu misses "
           "(%.1f%% hit rate), %llu insertions (%llu promoted), "
           "%llu evictions, %zu entries, %zu/%zu bytes\n",
           static_cast<unsigned long long>(Lookups),
           static_cast<unsigned long long>(Hits),
           static_cast<unsigned long long>(Misses), hitRate() * 100.0,
           static_cast<unsigned long long>(Insertions),
           static_cast<unsigned long long>(Promotions),
           static_cast<unsigned long long>(Evictions), Entries, Bytes,
           MaxBytes);
  std::string Out = Buf;
  // Per-tenant lines only for genuinely multi-tenant caches: a lone
  // tenant 0 with no partition budget is the legacy single-tenant case
  // and keeps its historical one-line report.
  bool MultiTenant = false;
  for (const auto &[Id, T] : Tenants)
    MultiTenant |= Id != 0 || T.MaxBytes != 0;
  if (MultiTenant) {
    for (const auto &[Id, T] : Tenants) {
      snprintf(Buf, sizeof(Buf),
               "  tenant %u: %llu hits, %llu misses, %llu insertions, "
               "%llu evictions, %zu entries, %zu/%zu bytes\n",
               Id, static_cast<unsigned long long>(T.Hits),
               static_cast<unsigned long long>(T.Misses),
               static_cast<unsigned long long>(T.Insertions),
               static_cast<unsigned long long>(T.Evictions), T.Entries,
               T.Bytes, T.MaxBytes);
      Out += Buf;
    }
  }
  if (HasDisk) {
    snprintf(Buf, sizeof(Buf),
             "disk-store: %llu hits, %llu misses, %llu rejects "
             "(%llu verify), %llu writes (%llu failed), "
             "%llu entries / %llu bytes on disk\n",
             static_cast<unsigned long long>(DiskHits),
             static_cast<unsigned long long>(DiskMisses),
             static_cast<unsigned long long>(DiskRejects),
             static_cast<unsigned long long>(DiskVerifyRejects),
             static_cast<unsigned long long>(DiskWrites),
             static_cast<unsigned long long>(DiskWriteFailures),
             static_cast<unsigned long long>(DiskEntriesOnDisk),
             static_cast<unsigned long long>(DiskBytesOnDisk));
    Out += Buf;
  }
  return Out;
}

SpecCache::SpecCache(size_t MaxBytes, size_t NumShards) : MaxBytes(MaxBytes) {
  if (NumShards == 0)
    NumShards = 1;
  ShardBudget = MaxBytes ? std::max<size_t>(MaxBytes / NumShards, 1) : 0;
  for (size_t I = 0; I != NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const CachedSpecialization>
SpecCache::lookup(const SpecKey &Key, uint32_t Tenant) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  ++S.Lookups; // outcome recorded below, same critical section
  TenantShardStats &T = S.Tenants[Tenant];
  auto It = S.Map.find(Key);
  if (It == S.Map.end()) {
    ++S.Misses;
    ++T.Misses;
    return nullptr;
  }
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second); // refresh recency
  ++S.Hits;
  ++T.Hits;
  return It->second->Value;
}

std::shared_ptr<const CachedSpecialization>
SpecCache::lookup(const SpecKey &Key, LookupOutcome &Out, uint32_t Tenant) {
  if (std::shared_ptr<const CachedSpecialization> V = lookup(Key, Tenant)) {
    Out.MemoryHit = true;
    return V;
  }
  if (!Disk)
    return nullptr;
  Result<std::shared_ptr<const CachedSpecialization>> R = Disk->load(Key);
  if (R) {
    Out.DiskHit = true;
    insertMemory(Key, *R, /*Promotion=*/true, Tenant); // no disk write-back
    return *R;
  }
  // A plain miss is the expected cold-store answer; everything else is a
  // classified failure worth surfacing (the lookup still degrades to a
  // miss either way).
  if (storeErrorOf(R.error()) != StoreError::NotFound) {
    Out.DiskError = R.error().code();
    Out.DiskDetail = R.error().message();
  }
  return nullptr;
}

void SpecCache::attachDisk(std::shared_ptr<DiskStore> Store) {
  Disk = std::move(Store);
}

void SpecCache::setTenantBudget(uint32_t Tenant, size_t Bytes) {
  size_t PerShard =
      Bytes ? std::max<size_t>(Bytes / Shards.size(), 1) : 0;
  TenantBudgets[Tenant] = {Bytes, PerShard};
}

void SpecCache::insert(const SpecKey &Key,
                       std::shared_ptr<const CachedSpecialization> Value,
                       uint32_t Tenant) {
  if (Disk && !Disk->readOnly() && Value)
    Disk->put(Key, *Value); // failures tallied in the store's counters
  insertMemory(Key, std::move(Value), /*Promotion=*/false, Tenant);
}

void SpecCache::insertMemory(const SpecKey &Key,
                             std::shared_ptr<const CachedSpecialization> Value,
                             bool Promotion, uint32_t Tenant) {
  size_t Bytes = Value ? Value->byteSize() : 0;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  TenantShardStats &T = S.Tenants[Tenant];
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    // Replacement (two threads raced on the same miss): keep the newer
    // unit, it is the one the inserting thread will run.
    S.Bytes -= It->second->Bytes;
    TenantShardStats &Old = S.Tenants[It->second->Tenant];
    Old.Bytes -= It->second->Bytes;
    --Old.Entries;
    It->second->Value = std::move(Value);
    It->second->Bytes = Bytes;
    It->second->Tenant = Tenant;
    S.Bytes += Bytes;
    T.Bytes += Bytes;
    ++T.Entries;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  } else {
    S.Lru.push_front(Entry{Key, std::move(Value), Bytes, Tenant});
    S.Map.emplace(Key, S.Lru.begin());
    S.Bytes += Bytes;
    T.Bytes += Bytes;
    ++T.Entries;
  }
  ++S.Insertions;
  ++T.Insertions;
  if (Promotion)
    ++S.Promotions;
  evictTenantOverBudgetLocked(S, Tenant);
  evictOverBudgetLocked(S);
}

void SpecCache::removeEntryLocked(Shard &S, std::list<Entry>::iterator It) {
  TenantShardStats &T = S.Tenants[It->Tenant];
  S.Bytes -= It->Bytes;
  T.Bytes -= It->Bytes;
  --T.Entries;
  ++S.Evictions;
  ++T.Evictions;
  S.Map.erase(It->Key);
  S.Lru.erase(It);
}

void SpecCache::evictOverBudgetLocked(Shard &S) {
  if (!ShardBudget)
    return;
  while (S.Bytes > ShardBudget && !S.Lru.empty())
    removeEntryLocked(S, std::prev(S.Lru.end()));
}

/// Confined eviction: walks the shard's LRU from the cold end evicting
/// only \p Tenant's entries until the tenant is back under its per-shard
/// slice. Other tenants' entries are never touched, however hot or cold —
/// that is the isolation property the partition exists for.
void SpecCache::evictTenantOverBudgetLocked(Shard &S, uint32_t Tenant) {
  auto BudgetIt = TenantBudgets.find(Tenant);
  if (BudgetIt == TenantBudgets.end() || BudgetIt->second.second == 0)
    return;
  size_t Budget = BudgetIt->second.second;
  auto TenIt = S.Tenants.find(Tenant);
  if (TenIt == S.Tenants.end())
    return;
  auto It = S.Lru.end();
  while (TenIt->second.Bytes > Budget && It != S.Lru.begin()) {
    --It;
    if (It->Tenant != Tenant)
      continue;
    auto Victim = It++;
    removeEntryLocked(S, Victim);
  }
}

void SpecCache::clear() {
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    S->Lru.clear();
    S->Map.clear();
    S->Bytes = 0;
    for (auto &[Id, T] : S->Tenants) {
      T.Bytes = 0;
      T.Entries = 0;
    }
  }
}

CacheStats SpecCache::stats() const {
  CacheStats Out;
  Out.MaxBytes = MaxBytes;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->M);
    Out.Lookups += S->Lookups;
    Out.Hits += S->Hits;
    Out.Misses += S->Misses;
    Out.Insertions += S->Insertions;
    Out.Promotions += S->Promotions;
    Out.Evictions += S->Evictions;
    Out.Bytes += S->Bytes;
    Out.Entries += S->Lru.size();
    for (const auto &[Id, T] : S->Tenants) {
      TenantCacheStats &Agg = Out.Tenants[Id];
      Agg.Hits += T.Hits;
      Agg.Misses += T.Misses;
      Agg.Insertions += T.Insertions;
      Agg.Evictions += T.Evictions;
      Agg.Bytes += T.Bytes;
      Agg.Entries += T.Entries;
    }
  }
  for (const auto &[Id, Budget] : TenantBudgets)
    Out.Tenants[Id].MaxBytes = Budget.first;
  if (Disk) {
    DiskStoreStats D = Disk->stats();
    Out.HasDisk = true;
    Out.DiskHits = D.Hits;
    Out.DiskMisses = D.Misses;
    Out.DiskRejects = D.Rejects;
    Out.DiskVerifyRejects = D.VerifyRejects;
    Out.DiskWrites = D.Writes;
    Out.DiskWriteFailures = D.WriteFailures;
    Out.DiskBytesOnDisk = D.BytesOnDisk;
    Out.DiskEntriesOnDisk = D.EntriesOnDisk;
  }
  return Out;
}
