//===- pgg/DiskStore.h - Crash-safe persistent code-cache store -*- C++ -*-===//
///
/// \file
/// The on-disk tier of the specialization cache: a directory of
/// checksummed entry blobs, one per (program fingerprint, BT signature,
/// static-value rendering) cache key, each holding a serialized
/// compiler::PortableProgram plus its entry symbol and generation stats.
/// This is what turns the cache's 65–314x cold-vs-hit amortization into a
/// cross-run, cross-process property: a fresh `pecompc serve --store=DIR`
/// warm-starts from specializations earlier processes paid for.
///
/// Trust boundary — the store is ADVERSARIAL input. A file on disk may be
/// truncated, bit-flipped, version-skewed, torn by a crashed writer, or
/// outright forged; none of that may ever crash the VM or execute
/// unverified code. The defense is layered:
///
///   1. Every entry file carries a fixed header (magic, format version,
///      field lengths, payload length) protected by its own checksum, and
///      a body checksum over every remaining byte — any single-byte
///      corruption anywhere in the file is detected before a length field
///      is trusted.
///   2. The payload decodes through PortableProgram::deserialize, which
///      bounds-checks every length, index, and relocation offset and
///      re-establishes the structural invariants instantiate() needs.
///   3. The decoded snapshot is instantiated into a throwaway sandbox
///      (its own Heap/CodeStore, never a Machine) and re-run through the
///      byte-code verifier; only a snapshot that proves out is handed to
///      the cache. Load paths additionally re-verify at link time, as
///      they always have.
///
/// Every failure mode is a classified StoreError; callers fall back to
/// cold specialization and the failure shows up in the disk-tier
/// counters, never as a request failure.
///
/// Crash safety: writes go to a per-process .tmp file, are fsync'd, and
/// reach their final name by rename(2) — readers either see a complete,
/// checksummed entry or no entry. Writers serialize on an flock'd LOCK
/// file (single writer, any number of lock-free readers, across both
/// threads and processes). A StoreFaultPlan mirrors vm::Heap::FaultPlan:
/// deterministic injection of failed/short reads and writes, fsync
/// failure, and corruption-at-offset, so tests and the fuzzer can hammer
/// the persistence layer the way PR 6 hammered the VM tiers.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_DISKSTORE_H
#define PECOMP_PGG_DISKSTORE_H

#include "pgg/SpecCache.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pecomp {
namespace pgg {

/// Classified store failure modes. Stable numeric values: they are
/// carried in Error::code() offset by StoreErrorCodeBase (disjoint from
/// vm::TrapKind, so trapKindOf() still reports None for store errors and
/// service responses can classify the two independently).
enum class StoreError : uint8_t {
  None = 0,
  IoError,          ///< open/read/stat failed (or injected read fault)
  NotFound,         ///< no committed entry for the key
  Truncated,        ///< file shorter than its header or declared lengths
  BadMagic,         ///< not a store entry at all
  BadVersion,       ///< entry written by an incompatible format version
  HeaderCorrupt,    ///< header checksum mismatch (lengths untrustworthy)
  BodyCorrupt,      ///< body checksum mismatch (payload untrustworthy)
  KeyMismatch,      ///< checksums fine but the stored key is not ours
  MalformedPayload, ///< PortableProgram::deserialize rejected the payload
  VerifyRejected,   ///< byte-code verifier rejected the loaded snapshot
  TornWrite,        ///< leftover .tmp debris from a crashed writer
  WriteFailed,      ///< put() could not commit (I/O error, fsync, RO store)
};

/// Human-readable class name ("BodyCorrupt", ...).
const char *storeErrorName(StoreError E);

/// Error::code() base for store errors; vm::TrapKind owns the low values.
constexpr int StoreErrorCodeBase = 100;

/// Builds a classified store Error.
inline Error storeError(StoreError K, std::string Message) {
  Error E(std::move(Message));
  E.setCode(StoreErrorCodeBase + static_cast<int>(K));
  return E;
}

/// The store class of \p E (StoreError::None for non-store errors).
inline StoreError storeErrorOf(const Error &E) {
  int C = E.code() - StoreErrorCodeBase;
  if (C <= 0 || C > static_cast<int>(StoreError::WriteFailed))
    return StoreError::None;
  return static_cast<StoreError>(C);
}

/// Deterministic I/O fault injection, mirroring vm::Heap::FaultPlan.
/// Ordinals are 1-based and count the store's read()/write() syscalls
/// since the plan was installed; 0 = never.
struct StoreFaultPlan {
  uint64_t FailAtWrite = 0;  ///< this write reports EIO (clean failure)
  uint64_t ShortWriteAt = 0; ///< this write persists only half its bytes
                             ///< and then "crashes" (tmp debris remains)
  uint64_t FailAtRead = 0;   ///< this read reports EIO
  uint64_t ShortReadAt = 0;  ///< this read returns only half the file
  bool FailFsync = false;    ///< every fsync reports EIO
  uint64_t CorruptAtWrite = 0; ///< this write commits with one byte flipped
  size_t CorruptOffset = 0;    ///< offset of the flipped byte (mod size)
};

/// Disk-tier counters, surfaced through CacheStats/--cache-stats.
struct DiskStoreStats {
  uint64_t Hits = 0;          ///< entries loaded, verified, and served
  uint64_t Misses = 0;        ///< keys with no committed entry
  uint64_t Rejects = 0;       ///< classified load rejections (all kinds)
  uint64_t VerifyRejects = 0; ///< the verify-on-load subset of Rejects
  uint64_t Writes = 0;        ///< entries committed
  uint64_t WriteFailures = 0; ///< puts that could not commit
  uint64_t BytesWritten = 0;  ///< committed entry bytes
  uint64_t BytesOnDisk = 0;   ///< committed entry bytes currently resident
  uint64_t EntriesOnDisk = 0; ///< committed entries currently resident

  /// One-line human-readable rendering (appended to CacheStats::report).
  std::string report() const;
};

/// One entry's offline status, as reported by walk() (cache-fsck/ls).
struct StoreEntryInfo {
  std::string File;  ///< basename within the store directory
  StoreError Status = StoreError::None;
  std::string Detail;     ///< failure description when Status != None
  uint64_t ProgramFp = 0; ///< key fields, valid when the header verified
  std::string BtSig;
  std::string EntryName;
  size_t FileBytes = 0;
  size_t PayloadBytes = 0;
  int64_t AgeSeconds = -1; ///< mtime age, -1 when unknown
};

/// A shared, crash-safe store directory. Thread safe: loads are lock-free
/// (rename atomicity), puts serialize on the flock'd LOCK file.
class DiskStore {
public:
  /// Opens (creating, unless \p ReadOnly) the store directory. Fails with
  /// a classified error when the directory cannot be created/accessed.
  static Result<std::shared_ptr<DiskStore>> open(std::string Dir,
                                                 bool ReadOnly = false);
  ~DiskStore();
  DiskStore(const DiskStore &) = delete;
  DiskStore &operator=(const DiskStore &) = delete;

  /// Loads, checks, and verifies the entry for \p Key. On success the
  /// returned specialization has survived checksums, deserialization, and
  /// the byte-code verifier. Every failure is a classified storeError();
  /// callers treat any failure as a cache miss.
  Result<std::shared_ptr<const CachedSpecialization>> load(const SpecKey &Key);

  /// Atomically commits \p Value under \p Key (tmp + fsync + rename under
  /// the writer lock). Returns the failure class; never throws away the
  /// in-memory entry — a failed put only costs future processes the warm
  /// start.
  StoreError put(const SpecKey &Key, const CachedSpecialization &Value);

  /// Walks a store directory offline, classifying every entry (committed
  /// and torn). \p Deep additionally deserializes and verifies payloads —
  /// the cache-fsck mode; shallow stops at the checksums — cache-ls.
  /// Fails only when the directory itself cannot be read.
  static Result<std::vector<StoreEntryInfo>> walk(const std::string &Dir,
                                                  bool Deep);

  DiskStoreStats stats() const;
  /// Installs \p P and restarts the fault ordinals at zero, so plans
  /// compose deterministically across test phases.
  void setFaultPlan(const StoreFaultPlan &P) {
    Plan = P;
    ReadOrdinal.store(0, std::memory_order_relaxed);
    WriteOrdinal.store(0, std::memory_order_relaxed);
  }
  const std::string &dir() const { return Dir; }
  bool readOnly() const { return ReadOnly; }

private:
  DiskStore(std::string Dir, bool ReadOnly)
      : Dir(std::move(Dir)), ReadOnly(ReadOnly) {}

  Result<std::vector<uint8_t>> readWholeFile(const std::string &Path);

  std::string Dir;
  bool ReadOnly;
  StoreFaultPlan Plan;
  std::atomic<uint64_t> ReadOrdinal{0}, WriteOrdinal{0};
  mutable std::atomic<uint64_t> Hits{0}, Misses{0}, Rejects{0},
      VerifyRejects{0}, Writes{0}, WriteFailures{0}, BytesWritten{0};
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_DISKSTORE_H
