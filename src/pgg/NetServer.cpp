//===- pgg/NetServer.cpp - epoll front end for the RTCG service -----------===//
//
// Event-loop mechanics. The invariants the loop maintains:
//
//  - A connection's epoll interest set is a pure function of its buffer
//    state (updateInterest): EPOLLOUT iff output is pending, EPOLLIN iff
//    it is neither paused by backpressure nor draining toward close.
//  - Pending counts every admitted request until its completion is
//    drained, whether or not the connection that sent it still exists —
//    the shed threshold must see work queued behind dead connections
//    too, because the workers still have to do it.
//  - Connection ids are never reused. Worker completions address
//    connections by id, so a completion racing a close finds nothing
//    (and drops the response) rather than writing into an unrelated
//    connection that inherited the fd number.
//  - Worker callbacks touch only the CompletionBox, which they co-own
//    through a shared_ptr: a callback firing after the server (or the
//    loop thread) is gone finds Alive == false under the box lock and
//    returns. The box owns the completion eventfd, so the fd outlives
//    every possible writer.
//
//===----------------------------------------------------------------------===//

#include "pgg/NetServer.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace pecomp;
using namespace pecomp::pgg;
using namespace pecomp::pgg::net;

namespace {

constexpr uint64_t ListenTag = 0;
constexpr uint64_t StopTag = 1;
constexpr uint64_t CompletionTag = 2;

Error sysError(const std::string &What) {
  return makeError(What + ": " + std::strerror(errno));
}

} // namespace

struct NetServer::CompletionBox {
  std::mutex M;
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> Done;
  int Efd = -1;
  bool Alive = true;

  ~CompletionBox() {
    if (Efd >= 0)
      ::close(Efd);
  }
};

struct NetServer::Conn {
  int Fd = -1;
  uint64_t Id = 0;
  FrameDecoder Decoder;
  std::vector<uint8_t> Out; ///< pending output; [OutPos, size) unwritten
  size_t OutPos = 0;
  uint32_t Interest = 0; ///< epoll events currently registered
  bool Paused = false;   ///< reading suspended by backpressure
  bool CloseAfterFlush = false;
  bool Dead = false; ///< unrecoverable I/O fault; reaped by the caller

  Conn(int Fd, uint64_t Id, size_t MaxFrame)
      : Fd(Fd), Id(Id), Decoder(MaxFrame) {}
  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
  size_t buffered() const { return Out.size() - OutPos; }
};

Result<std::unique_ptr<NetServer>> NetServer::create(RtcgService &Service,
                                                     RtcgRequest Template,
                                                     NetServerOptions Opts) {
  std::unique_ptr<NetServer> S(new NetServer());
  S->Service = &Service;
  S->Template = std::move(Template);
  S->Opts = std::move(Opts);

  S->ListenFd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (S->ListenFd < 0)
    return sysError("socket");
  int One = 1;
  ::setsockopt(S->ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(S->Opts.Port);
  if (::inet_pton(AF_INET, S->Opts.Host.c_str(), &Addr.sin_addr) != 1)
    return makeError("bad listen address '" + S->Opts.Host + "'");
  if (::bind(S->ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) <
      0)
    return sysError("bind " + S->Opts.Host + ":" +
                    std::to_string(S->Opts.Port));
  if (::listen(S->ListenFd, SOMAXCONN) < 0)
    return sysError("listen");

  socklen_t Len = sizeof Addr;
  if (::getsockname(S->ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len) <
      0)
    return sysError("getsockname");
  S->BoundPort = ntohs(Addr.sin_port);

  S->EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  S->StopFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  S->Box = std::make_shared<CompletionBox>();
  S->Box->Efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (S->EpollFd < 0 || S->StopFd < 0 || S->Box->Efd < 0)
    return sysError("epoll/eventfd setup");

  auto Watch = [&](int Fd, uint64_t Tag) {
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.u64 = Tag;
    return ::epoll_ctl(S->EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
  };
  if (Watch(S->ListenFd, ListenTag) < 0 || Watch(S->StopFd, StopTag) < 0 ||
      Watch(S->Box->Efd, CompletionTag) < 0)
    return sysError("epoll_ctl");
  return S;
}

NetServer::~NetServer() {
  if (Box) {
    std::lock_guard<std::mutex> Lock(Box->M);
    Box->Alive = false; // callbacks still holding the box now no-op
  }
  Conns.clear(); // closes every connection fd
  if (ListenFd >= 0)
    ::close(ListenFd);
  if (StopFd >= 0)
    ::close(StopFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
  // Box->Efd closes when the last worker callback releases the box.
}

void NetServer::requestStop() {
  uint64_t OneV = 1;
  [[maybe_unused]] ssize_t W = ::write(StopFd, &OneV, sizeof OneV);
}

void NetServer::run() {
  epoll_event Events[64];
  while (!Stopping) {
    int N = ::epoll_wait(EpollFd, Events, 64, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break; // epoll itself failed; nothing sane left to do
    }
    for (int I = 0; I != N && !Stopping; ++I) {
      uint64_t Tag = Events[I].data.u64;
      uint32_t Ev = Events[I].events;
      if (Tag == StopTag) {
        Stopping = true;
      } else if (Tag == ListenTag) {
        acceptReady();
      } else if (Tag == CompletionTag) {
        drainCompletions();
      } else {
        // The connection may have been closed by an earlier event in
        // this same batch; a stale tag finds nothing.
        if (Ev & (EPOLLHUP | EPOLLERR)) {
          closeConn(Tag);
          continue;
        }
        if (Ev & EPOLLOUT)
          connWritable(Tag);
        if (Ev & EPOLLIN)
          connReadable(Tag);
      }
    }
  }
}

void NetServer::acceptReady() {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN (or a transient accept error): wait for epoll
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof One);
    if (Opts.SndBufBytes > 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Opts.SndBufBytes,
                   sizeof Opts.SndBufBytes);
    uint64_t Id = NextConnId++;
    auto C = std::make_unique<Conn>(Fd, Id, Opts.MaxFrameBytes);
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.u64 = Id;
    if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) < 0)
      continue; // Conn dtor closes the fd
    C->Interest = EPOLLIN;
    Conns.emplace(Id, std::move(C));
    ++Stats.Accepted;
  }
}

void NetServer::drainCompletions() {
  uint64_t Count = 0;
  [[maybe_unused]] ssize_t R = ::read(Box->Efd, &Count, sizeof Count);
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> Done;
  {
    std::lock_guard<std::mutex> Lock(Box->M);
    Done.swap(Box->Done);
  }
  for (auto &[Id, Bytes] : Done) {
    --Pending; // admitted work is done whether or not anyone is listening
    ++Stats.Responses;
    auto It = Conns.find(Id);
    if (It == Conns.end())
      continue; // connection closed while the request was in flight
    sendBytes(*It->second, std::move(Bytes));
    if (It->second->Dead ||
        (It->second->CloseAfterFlush && It->second->buffered() == 0))
      closeConn(Id);
  }
}

void NetServer::connReadable(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = *It->second;

  uint8_t Buf[64 * 1024];
  bool PeerClosed = false;
  for (;;) {
    ssize_t N = ::read(C.Fd, Buf, sizeof Buf);
    if (N > 0) {
      C.Decoder.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N == 0) {
      PeerClosed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    if (errno == EINTR)
      continue;
    C.Dead = true;
    break;
  }

  Frame F;
  while (!C.Dead && !C.CloseAfterFlush) {
    FrameDecoder::Status St = C.Decoder.next(F);
    if (St == FrameDecoder::Status::NeedMore)
      break;
    if (St == FrameDecoder::Status::Failed) {
      // Framing is gone; tell the client why (best effort) and close.
      // RequestId 0: there is no trustworthy request to attribute it to.
      ++Stats.BadFrames;
      sendBytes(C, encodeProtoError(
                       0, 0,
                       static_cast<uint32_t>(ServiceErrorCodeBase) +
                           static_cast<uint32_t>(ServiceError::BadFrame),
                       C.Decoder.error().message()));
      C.CloseAfterFlush = true;
      break;
    }
    handleFrame(C, F);
  }

  if (PeerClosed) {
    // Half-close: the peer is done sending but may still read the
    // responses already owed to it.
    C.CloseAfterFlush = true;
  }
  if (C.Dead || (C.CloseAfterFlush && C.buffered() == 0)) {
    closeConn(Id);
    return;
  }
  updateInterest(C);
}

void NetServer::connWritable(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = *It->second;
  flush(C);
  if (C.Dead || (C.CloseAfterFlush && C.buffered() == 0)) {
    closeConn(Id);
    return;
  }
  updateInterest(C);
}

void NetServer::handleFrame(Conn &C, const Frame &F) {
  auto ProtoErr = [&](ServiceError K, const std::string &Msg, bool Close) {
    sendBytes(C, encodeProtoError(F.Header.Tenant, F.Header.RequestId,
                                  static_cast<uint32_t>(ServiceErrorCodeBase) +
                                      static_cast<uint32_t>(K),
                                  Msg));
    if (Close)
      C.CloseAfterFlush = true;
  };

  // The header's version field is authoritative per frame: a client that
  // skipped Hello and speaks a future version is told so and cut off
  // before any payload of unknown layout is interpreted.
  if (F.Header.Version != ProtocolVersion) {
    ++Stats.BadVersions;
    ProtoErr(ServiceError::BadVersion,
             "protocol version " + std::to_string(F.Header.Version) +
                 " not supported (server speaks " +
                 std::to_string(ProtocolVersion) + ")",
             /*Close=*/true);
    return;
  }

  switch (F.Header.Type) {
  case FrameType::Hello: {
    Result<std::pair<uint8_t, uint8_t>> Range =
        decodeHelloPayload(FrameType::Hello, F.Payload);
    if (!Range) {
      ++Stats.BadFrames;
      ProtoErr(ServiceError::BadFrame, Range.error().message(),
               /*Close=*/true);
      return;
    }
    if (Range->first > ProtocolVersion || Range->second < ProtocolVersion) {
      ++Stats.BadVersions;
      ProtoErr(ServiceError::BadVersion,
               "no common protocol version (client speaks " +
                   std::to_string(Range->first) + ".." +
                   std::to_string(Range->second) + ", server " +
                   std::to_string(ProtocolVersion) + ")",
               /*Close=*/true);
      return;
    }
    sendBytes(C, encodeHelloAck(ProtocolVersion));
    return;
  }
  case FrameType::Request: {
    if (Pending >= Opts.QueueDepth) {
      // Shed, classified, without enqueueing; the connection stays up.
      ++Stats.Shed;
      ProtoErr(ServiceError::Overloaded,
               "server overloaded (" + std::to_string(Pending) +
                   " requests in flight)",
               /*Close=*/false);
      return;
    }
    Result<NetRequest> NR = decodeRequestPayload(F.Payload);
    if (!NR) {
      // Well-framed but malformed payload: fail this request only.
      ++Stats.BadFrames;
      ProtoErr(ServiceError::BadFrame, NR.error().message(), /*Close=*/false);
      return;
    }
    RtcgRequest R;
    R.ProgramText = Template.ProgramText;
    R.Entry = Template.Entry;
    R.Division = NR->Division.empty() ? Template.Division : NR->Division;
    R.SpecArgs = std::move(NR->SpecArgs);
    R.RunArgs = std::move(NR->RunArgs);
    R.Tenant = F.Header.Tenant;

    ++Pending;
    ++Stats.Requests;
    std::shared_ptr<CompletionBox> B = Box;
    uint64_t Id = C.Id;
    uint32_t Tenant = F.Header.Tenant;
    uint64_t ReqId = F.Header.RequestId;
    // Runs on the serving worker's thread: encode there (the codec is
    // pure), post bytes, wake the loop. Never touches Conn state.
    Service->submit(std::move(R), [B, Id, Tenant, ReqId](RtcgResponse Resp) {
      std::vector<uint8_t> Bytes = encodeResponse(Tenant, ReqId, Resp);
      {
        std::lock_guard<std::mutex> Lock(B->M);
        if (!B->Alive)
          return;
        B->Done.emplace_back(Id, std::move(Bytes));
      }
      uint64_t OneV = 1;
      [[maybe_unused]] ssize_t W = ::write(B->Efd, &OneV, sizeof OneV);
    });
    return;
  }
  default:
    // HelloAck/Response/ProtoError are server-to-client only; anything
    // else is an unknown type. Either way the client is confused.
    ++Stats.BadFrames;
    ProtoErr(ServiceError::BadFrame,
             "unexpected frame type " +
                 std::to_string(static_cast<int>(F.Header.Type)) +
                 " from client",
             /*Close=*/true);
    return;
  }
}

void NetServer::sendBytes(Conn &C, std::vector<uint8_t> Bytes) {
  if (C.Out.empty()) {
    C.Out = std::move(Bytes);
    C.OutPos = 0;
  } else {
    C.Out.insert(C.Out.end(), Bytes.begin(), Bytes.end());
  }
  flush(C);
  updateInterest(C);
}

void NetServer::flush(Conn &C) {
  while (C.OutPos < C.Out.size()) {
    ssize_t N = ::send(C.Fd, C.Out.data() + C.OutPos, C.Out.size() - C.OutPos,
                       MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    C.Dead = true;
    return;
  }
  if (C.OutPos == C.Out.size()) {
    C.Out.clear();
    C.OutPos = 0;
  } else if (C.OutPos > (64u << 10) && C.OutPos > C.Out.size() / 2) {
    // Compact so the buffer tracks unsent bytes, not session history.
    C.Out.erase(C.Out.begin(), C.Out.begin() + static_cast<ptrdiff_t>(C.OutPos));
    C.OutPos = 0;
  }
}

void NetServer::updateInterest(Conn &C) {
  if (C.Dead)
    return;
  // Backpressure transitions: pause reading above the high-water mark,
  // resume below half of it (hysteresis so a boundary-riding connection
  // does not thrash the interest set).
  size_t Buffered = C.buffered();
  if (!C.Paused && Opts.WriteHighWater && Buffered > Opts.WriteHighWater) {
    C.Paused = true;
    ++Stats.ReadPauses;
  } else if (C.Paused && Buffered < Opts.WriteHighWater / 2) {
    C.Paused = false;
  }

  uint32_t Want = 0;
  if (Buffered)
    Want |= EPOLLOUT;
  if (!C.Paused && !C.CloseAfterFlush)
    Want |= EPOLLIN;
  if (Want == C.Interest)
    return;
  epoll_event Ev{};
  Ev.events = Want;
  Ev.data.u64 = C.Id;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_MOD, C.Fd, &Ev) == 0)
    C.Interest = Want;
}

void NetServer::closeConn(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, It->second->Fd, nullptr);
  Conns.erase(It); // Conn dtor closes the fd
}
