//===- pgg/CompilerGenerator.cpp - Generated compilers ---------------------===//

#include "pgg/CompilerGenerator.h"

using namespace pecomp;
using namespace pecomp::pgg;

Result<std::unique_ptr<GeneratedCompiler>>
GeneratedCompiler::create(vm::Heap &H, std::string_view InterpreterSource,
                          std::string_view Entry, PggOptions Opts) {
  Result<std::unique_ptr<GeneratingExtension>> Gen =
      GeneratingExtension::create(H, InterpreterSource, Entry, "SD",
                                  std::move(Opts));
  if (!Gen)
    return Gen.takeError();
  return std::unique_ptr<GeneratedCompiler>(
      new GeneratedCompiler(std::move(*Gen), H));
}

Result<GeneratedCompiler::Unit> GeneratedCompiler::compile(vm::Value Program) {
  std::optional<vm::Value> Args[] = {Program, std::nullopt};
  Result<ResidualObject> Obj = Gen->generateObject(Comp, Args);
  if (!Obj)
    return Obj.takeError();
  return Unit{std::move(Obj->Residual), Obj->Entry, Obj->Stats};
}
