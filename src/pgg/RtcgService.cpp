//===- pgg/RtcgService.cpp - Concurrent specialize-and-run service --------===//

#include "pgg/RtcgService.h"

#include "compiler/Compilators.h"
#include "compiler/Peephole.h"
#include "sexp/Reader.h"
#include "support/LargeStack.h"
#include "vm/Convert.h"
#include "vm/Trap.h"

#include <unordered_map>

using namespace pecomp;
using namespace pecomp::pgg;

namespace {

RtcgResponse failResponse(const Error &E, size_t Worker) {
  RtcgResponse R;
  R.ErrorText = E.render();
  R.TrapCode = static_cast<int>(vm::trapKindOf(E));
  R.Worker = Worker;
  return R;
}

} // namespace

/// Everything one worker thread owns. Created on the worker's own thread
/// so the Heap, the Machine registered on it, and the generating
/// extensions it hosts never cross a thread boundary; only portable
/// snapshots do, through the shared cache.
struct RtcgService::WorkerState {
  explicit WorkerState(size_t Index) : Index(Index) {}

  size_t Index;
  vm::Heap Heap;
  vm::Machine Machine{Heap};
  /// Cogen results (front end + BTA) reused across this worker's requests
  /// for the same (program, entry, division); keyed by the same
  /// fingerprint the shared cache uses. Bounded by the number of distinct
  /// programs the worker sees.
  std::unordered_map<uint64_t, std::unique_ptr<GeneratingExtension>> Gens;
};

RtcgService::RtcgService(RtcgOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheBytes, Opts.CacheShards) {
  if (Opts.Store)
    Cache.attachDisk(Opts.Store);
  size_t N = std::max<size_t>(Opts.Threads, 1);
  Workers.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Workers.push_back(
        std::make_unique<LargeStackThread>([this, I] { workerLoop(I); }));
}

RtcgService::~RtcgService() {
  std::deque<Job> Orphans;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Stopping = true;
    Orphans.swap(Queue);
  }
  QueueCv.notify_all();
  for (Job &J : Orphans)
    J.Promise.set_value(failResponse(makeError("service stopped"), 0));
  for (auto &W : Workers)
    W->join();
}

std::future<RtcgResponse> RtcgService::submit(RtcgRequest Req) {
  Job J;
  J.Req = std::move(Req);
  std::future<RtcgResponse> F = J.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Queue.push_back(std::move(J));
  }
  QueueCv.notify_one();
  return F;
}

std::vector<RtcgResponse> RtcgService::serveAll(std::vector<RtcgRequest> Reqs) {
  std::vector<std::future<RtcgResponse>> Futures;
  Futures.reserve(Reqs.size());
  for (RtcgRequest &R : Reqs)
    Futures.push_back(submit(std::move(R)));
  std::vector<RtcgResponse> Out;
  Out.reserve(Futures.size());
  for (std::future<RtcgResponse> &F : Futures)
    Out.push_back(F.get());
  return Out;
}

void RtcgService::workerLoop(size_t Index) {
  WorkerState W(Index);
  W.Machine.setLimits(Opts.Limits);
  W.Machine.setFusion(Opts.Fusion);
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and nothing left to serve
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    J.Promise.set_value(process(W, J.Req));
  }
}

RtcgResponse RtcgService::process(WorkerState &W, const RtcgRequest &Req) {
  RtcgResponse Resp;
  Resp.Worker = W.Index;

  // Per-request parse arena; the worker's heap persists across requests,
  // so request values are rooted only for the request's duration.
  Arena RequestArena;
  DatumFactory Datums(RequestArena);
  vm::RootScope Roots(W.Heap);

  auto ParseValue = [&](const std::string &Text) -> Result<vm::Value> {
    Result<const Datum *> D = readDatum(Text, Datums);
    if (!D)
      return D.takeError();
    return Roots.protect(vm::valueFromDatum(W.Heap, *D));
  };

  std::vector<std::optional<vm::Value>> SpecArgs;
  SpecArgs.reserve(Req.SpecArgs.size());
  for (const std::string &T : Req.SpecArgs) {
    if (T == "_") {
      SpecArgs.emplace_back(std::nullopt);
      continue;
    }
    Result<vm::Value> V = ParseValue(T);
    if (!V)
      return failResponse(V.error(), W.Index);
    SpecArgs.emplace_back(*V);
  }

  uint64_t Fp = fingerprintProgram(Req.ProgramText, Req.Entry, Req.Division);
  SpecKey Key = makeSpecKey(Fp, SpecArgs);

  // The request's own code universe: a fresh store and global table, torn
  // down with the request. The machine's global vector is cleared on
  // every exit path so nothing outlives the store it points into.
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  struct GlobalsReset {
    vm::Machine &M;
    ~GlobalsReset() { M.resetGlobals(); }
  } ResetG{W.Machine};

  compiler::CompiledProgram CP;
  Symbol Entry;
  LookupOutcome Tier;
  std::shared_ptr<const CachedSpecialization> Hit = Cache.lookup(Key, Tier);
  // A classified store failure (corrupt entry, verifier rejection, I/O
  // fault) degrades to cold specialization; it is reported on its own
  // channel, never as a request trap.
  Resp.StoreCode = Tier.DiskError;
  Resp.StoreNote = Tier.DiskDetail;
  if (Hit) {
    CP = Hit->Residual->instantiate(Store, Globals);
    Entry = Hit->Entry;
    Resp.CacheHit = true;
    Resp.DiskHit = Tier.DiskHit;
    Resp.Gen = Hit->Stats;
  } else {
    GeneratingExtension *Gen;
    if (auto It = W.Gens.find(Fp); It != W.Gens.end()) {
      Gen = It->second.get();
    } else {
      Result<std::unique_ptr<GeneratingExtension>> G =
          GeneratingExtension::create(W.Heap, Req.ProgramText, Req.Entry,
                                      Req.Division, Opts.Pgg);
      if (!G)
        return failResponse(G.error(), W.Index);
      Gen = (W.Gens[Fp] = std::move(*G)).get();
    }

    compiler::Compilators Comp(Store, Globals);
    Result<ResidualObject> Obj = Gen->generateObject(Comp, SpecArgs);
    if (!Obj) {
      // A specialization-time heap fault is sticky; restore the worker's
      // heap so the failure stays confined to this request.
      if (W.Heap.faulted()) {
        W.Heap.clearFault();
        W.Heap.collect();
      }
      return failResponse(Obj.error(), W.Index);
    }
    Entry = Obj->Entry;
    Resp.Gen = Obj->Stats;
    CP = std::move(Obj->Residual);

    // Optimize before capture so the published snapshot stores peepholed
    // bytes; every worker's hits then skip the pass entirely.
    if (Opts.Peephole)
      compiler::peepholeProgram(CP);

    // Publish for every worker (and later requests). A program that does
    // not capture — non-datum literal, irregular code — is simply served
    // uncached each time.
    if (Result<std::shared_ptr<const compiler::PortableProgram>> Port =
            compiler::PortableProgram::capture(CP, Globals)) {
      auto Cached = std::make_shared<CachedSpecialization>();
      Cached->Residual = *Port;
      Cached->Entry = Entry;
      Cached->Stats = Obj->Stats;
      Cache.insert(Key, std::move(Cached));
    }
  }

  compiler::LinkOptions LO;
  LO.Peephole = Opts.Peephole;
  if (Result<bool> Linked =
          compiler::linkProgramVerified(W.Machine, Globals, CP, LO);
      !Linked)
    return failResponse(Linked.error(), W.Index);

  std::vector<vm::Value> RunArgs;
  RunArgs.reserve(Req.RunArgs.size());
  for (const std::string &T : Req.RunArgs) {
    Result<vm::Value> V = ParseValue(T);
    if (!V)
      return failResponse(V.error(), W.Index);
    RunArgs.push_back(*V);
  }

  Result<vm::Value> R = compiler::callGlobal(W.Machine, Globals, Entry,
                                             RunArgs);
  if (!R)
    return failResponse(R.error(), W.Index);
  Resp.Ok = true;
  Resp.Value = vm::valueToString(*R);
  return Resp;
}
