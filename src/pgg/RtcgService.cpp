//===- pgg/RtcgService.cpp - Concurrent specialize-and-run service --------===//
//
// Serving plus the online re-specialization loop. The offline pipeline
// can only specialize on arguments the request *declared* static; the
// loop closes the gap for arguments that are declared dynamic but stable
// in practice: workers sample the entry-argument values of every generic
// serve (vm::Profile::sampleCall), the per-key censuses are folded into a
// shared site table, and a key that crosses the policy thresholds gets a
// background job — an ordinary generation request over the value-extended
// division (observed-stable 'D' slots flipped to 'S' with the observed
// values as static arguments) running on the same worker pool and
// publishing into the same SpecCache under the value-extended key.
//
// Once a variant is installed, serving that key checks an argument guard
// (vm/Guard.h): hold → the variant runs on the residual arguments;
// miss → the request deoptimizes to the generic code, bit-identically to
// a service without re-specialization. Nothing about the variant is
// trusted beyond the guard: a variant evicted from the cache, or a
// request whose values moved on, just serves generically.
//
//===----------------------------------------------------------------------===//

#include "pgg/RtcgService.h"

#include "compiler/Compilators.h"
#include "compiler/Peephole.h"
#include "sexp/Reader.h"
#include "support/LargeStack.h"
#include "vm/Convert.h"
#include "vm/Guard.h"
#include "vm/Trap.h"

#include <algorithm>
#include <unordered_map>

using namespace pecomp;
using namespace pecomp::pgg;

const char *pgg::serviceErrorName(ServiceError E) {
  switch (E) {
  case ServiceError::None:
    return "None";
  case ServiceError::Stopped:
    return "Stopped";
  case ServiceError::Rejected:
    return "Rejected";
  case ServiceError::Overloaded:
    return "Overloaded";
  case ServiceError::BadFrame:
    return "BadFrame";
  case ServiceError::BadVersion:
    return "BadVersion";
  case ServiceError::UnknownTenant:
    return "UnknownTenant";
  }
  return "Unknown";
}

namespace {

RtcgResponse failResponse(const Error &E, size_t Worker) {
  RtcgResponse R;
  R.ErrorText = E.render();
  R.TrapCode = static_cast<int>(vm::trapKindOf(E));
  R.ServiceCode = serviceErrorOf(E) != ServiceError::None ? E.code() : 0;
  R.Worker = Worker;
  return R;
}

/// The number of residual ('_') parameter slots of a request.
size_t dynamicSlots(const RtcgRequest &Req) {
  size_t N = 0;
  for (const std::string &T : Req.SpecArgs)
    if (T == "_")
      ++N;
  return N;
}

} // namespace

/// Everything one worker thread owns. Created on the worker's own thread
/// so the Heap, the Machine registered on it, and the generating
/// extensions it hosts never cross a thread boundary; only portable
/// snapshots do, through the shared cache.
struct RtcgService::WorkerState {
  explicit WorkerState(size_t Index) : Index(Index) {}

  size_t Index;
  vm::Heap Heap;
  vm::Machine Machine{Heap};
  /// Attached to the machine only when re-specialization is on: argument
  /// sampling is the loop's evidence base, and an unattached profile is
  /// the zero-cost default otherwise. Dispatch counters are reset per
  /// request (Profile::resetDispatch) so one request's execution never
  /// bleeds into the next one's numbers; the argument censuses survive
  /// the reset and are drained into the shared site table instead.
  vm::Profile Prof;
  /// Cogen results (front end + BTA) reused across this worker's requests
  /// for the same (program, entry, division); keyed by the same
  /// fingerprint the shared cache uses. Bounded by the number of distinct
  /// programs the worker sees.
  std::unordered_map<uint64_t, std::unique_ptr<GeneratingExtension>> Gens;
};

RtcgService::RtcgService(RtcgOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheBytes, Opts.CacheShards) {
  if (Opts.Store)
    Cache.attachDisk(Opts.Store);
  if (Opts.Tenants)
    for (const auto &[Id, C] : Opts.Tenants->tenants())
      if (C.CacheBytes)
        Cache.setTenantBudget(Id, C.CacheBytes);
  size_t N = std::max<size_t>(Opts.Threads, 1);
  Workers.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Workers.push_back(
        std::make_unique<LargeStackThread>([this, I] { workerLoop(I); }));
}

void RtcgService::stop() {
  std::deque<Job> Orphans;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    Stopping = true;
    Orphans.swap(Queue);
    for (const Job &J : Orphans)
      if (!J.Respec)
        --InFlightCount;
  }
  QueueCv.notify_all();
  // Fail the orphans from the outside, before (and without) touching any
  // worker universe: the classified code tells the caller the request
  // died of shutdown, not of anything it did.
  for (Job &J : Orphans) {
    if (J.Respec) {
      {
        std::lock_guard<std::mutex> Lock(RespecM);
        ++RStats.Abandoned;
      }
      finishRespecJob();
      continue;
    }
    RtcgResponse R = failResponse(
        serviceError(ServiceError::Stopped,
                     "service stopped before the request was served"),
        0);
    if (J.Done)
      J.Done(std::move(R));
    else
      J.Promise.set_value(std::move(R));
  }
}

RtcgService::~RtcgService() {
  stop();
  for (auto &W : Workers)
    W->join();
}

std::future<RtcgResponse> RtcgService::submit(RtcgRequest Req) {
  Job J;
  J.Req = std::move(Req);
  std::future<RtcgResponse> F = J.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Stopping) {
      // Shutdown has begun: the queue has been (or is being) drained and
      // no worker will ever see this job. Fail it classified, here.
      J.Promise.set_value(failResponse(
          serviceError(ServiceError::Rejected,
                       "request submitted after service shutdown"),
          0));
      return F;
    }
    Queue.push_back(std::move(J));
    ++InFlightCount;
  }
  QueueCv.notify_one();
  return F;
}

void RtcgService::submit(RtcgRequest Req,
                         std::function<void(RtcgResponse)> Done) {
  bool Rejected = false;
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (Stopping) {
      Rejected = true;
    } else {
      Job J;
      J.Req = std::move(Req);
      J.Done = std::move(Done);
      Queue.push_back(std::move(J));
      ++InFlightCount;
    }
  }
  if (Rejected) {
    // Deliver outside QueueM: the callback may re-enter the service
    // (inFlight(), another submit) and must not deadlock.
    Done(failResponse(serviceError(ServiceError::Rejected,
                                   "request submitted after service shutdown"),
                      0));
    return;
  }
  QueueCv.notify_one();
}

size_t RtcgService::inFlight() const {
  std::lock_guard<std::mutex> Lock(QueueM);
  return InFlightCount;
}

std::vector<RtcgResponse> RtcgService::serveAll(std::vector<RtcgRequest> Reqs) {
  std::vector<std::future<RtcgResponse>> Futures;
  Futures.reserve(Reqs.size());
  for (RtcgRequest &R : Reqs)
    Futures.push_back(submit(std::move(R)));
  std::vector<RtcgResponse> Out;
  Out.reserve(Futures.size());
  for (std::future<RtcgResponse> &F : Futures)
    Out.push_back(F.get());
  return Out;
}

RespecStats RtcgService::respecStats() const {
  std::lock_guard<std::mutex> Lock(RespecM);
  RespecStats Out = RStats;
  Out.SitesObserved = Sites.size();
  return Out;
}

void RtcgService::quiesceRespec() {
  std::unique_lock<std::mutex> Lock(RespecM);
  RespecCv.wait(Lock, [&] { return RespecInFlight == 0; });
}

void RtcgService::finishRespecJob() {
  {
    std::lock_guard<std::mutex> Lock(RespecM);
    --RespecInFlight;
  }
  RespecCv.notify_all();
}

std::shared_ptr<const RtcgService::Variant>
RtcgService::installedVariant(uint64_t GenericHash) const {
  std::lock_guard<std::mutex> Lock(RespecM);
  auto It = Sites.find(GenericHash);
  if (It == Sites.end() || It->second.State != SiteState::Installed)
    return nullptr;
  return It->second.Live;
}

void RtcgService::workerLoop(size_t Index) {
  WorkerState W(Index);
  W.Machine.setLimits(Opts.Limits);
  W.Machine.setFusion(Opts.Fusion);
  W.Machine.setNativeJit(Opts.NativeJit);
  if (Opts.Respec.Enabled) {
    W.Prof.SampleArgs = true;
    W.Machine.setProfile(&W.Prof);
  }
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueM);
      QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and nothing left to serve
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    if (J.Respec) {
      processRespec(W, J);
      continue;
    }
    RtcgResponse R = process(W, J.Req);
    if (J.Done)
      J.Done(std::move(R));
    else
      J.Promise.set_value(std::move(R));
    {
      std::lock_guard<std::mutex> Lock(QueueM);
      --InFlightCount;
    }
  }
}

RtcgResponse RtcgService::process(WorkerState &W, const RtcgRequest &Req) {
  RtcgResponse Resp;
  Resp.Worker = W.Index;
  if (Opts.Respec.Enabled)
    W.Prof.resetDispatch(); // fresh per-request counters, censuses kept

  // Tenant isolation envelope: install the request's per-tenant ceilings
  // on this worker's machine for the request's duration. Without a table
  // the worker keeps the service-wide limits it was born with; with one,
  // every request sets limits (a tenant-0 request restores the defaults
  // after a quota'd tenant's request on the same worker).
  if (Opts.Tenants) {
    const TenantConfig *TC = Opts.Tenants->find(Req.Tenant);
    if (!TC && Opts.Tenants->strict())
      return failResponse(
          serviceError(ServiceError::UnknownTenant,
                       "unknown tenant " + std::to_string(Req.Tenant) +
                           " (strict tenant table)"),
          W.Index);
    W.Machine.setLimits(TC ? TC->Limits : Opts.Limits);
  }

  // Per-request parse arena; the worker's heap persists across requests,
  // so request values are rooted only for the request's duration.
  Arena RequestArena;
  DatumFactory Datums(RequestArena);
  vm::RootScope Roots(W.Heap);

  auto ParseValue = [&](const std::string &Text) -> Result<vm::Value> {
    Result<const Datum *> D = readDatum(Text, Datums);
    if (!D)
      return D.takeError();
    return Roots.protect(vm::valueFromDatum(W.Heap, *D));
  };

  std::vector<std::optional<vm::Value>> SpecArgs;
  SpecArgs.reserve(Req.SpecArgs.size());
  for (const std::string &T : Req.SpecArgs) {
    if (T == "_") {
      SpecArgs.emplace_back(std::nullopt);
      continue;
    }
    Result<vm::Value> V = ParseValue(T);
    if (!V)
      return failResponse(V.error(), W.Index);
    SpecArgs.emplace_back(*V);
  }

  // Run arguments are parsed up front (not after linking, as a plain
  // serve could): the guard decision needs their values before any code
  // is chosen, and a parse failure should cost neither a lookup nor a
  // link either way.
  std::vector<vm::Value> RunArgs;
  RunArgs.reserve(Req.RunArgs.size());
  for (const std::string &T : Req.RunArgs) {
    Result<vm::Value> V = ParseValue(T);
    if (!V)
      return failResponse(V.error(), W.Index);
    RunArgs.push_back(*V);
  }

  // Cache keys mix the tenant id into the program fingerprint (identity
  // for tenant 0), so tenants never share cache entries — the partition
  // accounting relies on every key being single-homed. The cogen memo
  // stays keyed by the unmixed fingerprint: a generating extension is a
  // pure function of the program text, safely shared across tenants.
  uint64_t BaseFp =
      fingerprintProgram(Req.ProgramText, Req.Entry, Req.Division);
  uint64_t Fp = tenantFingerprint(BaseFp, Req.Tenant);
  SpecKey Key = makeSpecKey(Fp, SpecArgs);

  // The request's own code universe: a fresh store and global table, torn
  // down with the request. The machine's global vector is cleared on
  // every exit path so nothing outlives the store it points into.
  vm::CodeStore Store(W.Heap);
  vm::GlobalTable Globals;
  struct GlobalsReset {
    vm::Machine &M;
    ~GlobalsReset() { M.resetGlobals(); }
  } ResetG{W.Machine};

  compiler::LinkOptions LO;
  LO.Peephole = Opts.Peephole;
  LO.NativeJit = Opts.NativeJit;

  // Guarded serve: if a re-specialized variant is installed for this key,
  // decide hit/miss on the raw argument texts before instantiating
  // anything — a hit links *only* the variant, a miss links *only* the
  // generic code, so neither path pays for the other.
  //
  // Restores the worker's sampling flag on every exit path: once a site
  // is terminal its census is dead weight, so the guarded serve (hit or
  // miss) suppresses per-call argument sampling — rendering every
  // argument to text for evidence nobody will read is most of the deopt
  // cost otherwise.
  struct SampleArgsRestore {
    vm::Profile &P;
    bool Saved;
    ~SampleArgsRestore() { P.SampleArgs = Saved; }
  } SampleRestore{W.Prof, W.Prof.SampleArgs};
  if (Opts.Respec.Enabled) {
    if (std::shared_ptr<const Variant> V = installedVariant(Key.Hash)) {
      W.Prof.SampleArgs = false;
      // The census that selected this variant counts values by their
      // canonical rendering (vm::valueToString), so comparing the
      // incoming argument texts against the stored renderings is exactly
      // as strong as the evidence — and it makes the miss leg one string
      // compare instead of a datum parse plus heap allocation per
      // request. A non-canonical spelling of the hot value misses and
      // deoptimizes, which is always safe; out-of-range slots likewise.
      bool Held = true;
      for (size_t J = 0; J != V->GuardSlots.size(); ++J) {
        uint32_t Slot = V->GuardSlots[J];
        if (Slot >= Req.RunArgs.size() ||
            Req.RunArgs[Slot] != V->GuardTexts[J]) {
          Held = false;
          break;
        }
      }
      vm::satInc(Held ? W.Prof.GuardHits : W.Prof.GuardMisses);
      {
        std::lock_guard<std::mutex> Lock(RespecM);
        ++(Held ? RStats.GuardHits : RStats.GuardMisses);
      }
      if (Held) {
        LookupOutcome Tier;
        if (std::shared_ptr<const CachedSpecialization> Hit =
                Cache.lookup(V->ExtKey, Tier, Req.Tenant)) {
          compiler::CompiledProgram CP =
              Hit->Residual->instantiate(Store, Globals);
          if (Result<bool> Linked =
                  compiler::linkProgramVerified(W.Machine, Globals, CP, LO);
              !Linked)
            return failResponse(Linked.error(), W.Index);
          std::vector<vm::Value> Rest;
          Rest.reserve(RunArgs.size());
          for (size_t I = 0; I != RunArgs.size(); ++I) {
            bool Guarded = false;
            for (uint32_t Slot : V->GuardSlots)
              Guarded |= Slot == I;
            if (!Guarded)
              Rest.push_back(RunArgs[I]);
          }
          Result<vm::Value> R =
              compiler::callGlobal(W.Machine, Globals, Hit->Entry, Rest);
          // The variant call sampled *residual-of-variant* slots; those
          // censuses must never be mistaken for generic-entry evidence.
          W.Prof.CallSites.clear();
          if (!R)
            return failResponse(R.error(), W.Index);
          Resp.Ok = true;
          Resp.Value = vm::valueToString(*R);
          Resp.CacheHit = true;
          Resp.DiskHit = Tier.DiskHit;
          Resp.Respecialized = true;
          Resp.Gen = Hit->Stats;
          Resp.StoreCode = Tier.DiskError;
          Resp.StoreNote = Tier.DiskDetail;
          return Resp;
        }
        // Variant evicted from both tiers: serve generically. The
        // write-through on install usually repopulates via the store, so
        // no re-generation is forced here.
        Resp.StoreCode = Tier.DiskError;
        Resp.StoreNote = Tier.DiskDetail;
      } else {
        Resp.GuardMiss = true; // deoptimized: generic code, full args
      }
    }
  }

  compiler::CompiledProgram CP;
  Symbol Entry;
  LookupOutcome Tier;
  std::shared_ptr<const CachedSpecialization> Hit =
      Cache.lookup(Key, Tier, Req.Tenant);
  // A classified store failure (corrupt entry, verifier rejection, I/O
  // fault) degrades to cold specialization; it is reported on its own
  // channel, never as a request trap.
  if (Tier.DiskError) {
    Resp.StoreCode = Tier.DiskError;
    Resp.StoreNote = Tier.DiskDetail;
  }
  if (Hit) {
    CP = Hit->Residual->instantiate(Store, Globals);
    Entry = Hit->Entry;
    Resp.CacheHit = true;
    Resp.DiskHit = Tier.DiskHit;
    Resp.Gen = Hit->Stats;
  } else {
    GeneratingExtension *Gen;
    if (auto It = W.Gens.find(BaseFp); It != W.Gens.end()) {
      Gen = It->second.get();
    } else {
      Result<std::unique_ptr<GeneratingExtension>> G =
          GeneratingExtension::create(W.Heap, Req.ProgramText, Req.Entry,
                                      Req.Division, Opts.Pgg);
      if (!G)
        return failResponse(G.error(), W.Index);
      Gen = (W.Gens[BaseFp] = std::move(*G)).get();
    }

    compiler::Compilators Comp(Store, Globals);
    Result<ResidualObject> Obj = Gen->generateObject(Comp, SpecArgs);
    if (!Obj) {
      // A specialization-time heap fault is sticky; restore the worker's
      // heap so the failure stays confined to this request.
      if (W.Heap.faulted()) {
        W.Heap.clearFault();
        W.Heap.collect();
      }
      return failResponse(Obj.error(), W.Index);
    }
    Entry = Obj->Entry;
    Resp.Gen = Obj->Stats;
    CP = std::move(Obj->Residual);

    // Optimize before capture so the published snapshot stores peepholed
    // bytes; every worker's hits then skip the pass entirely.
    if (Opts.Peephole)
      compiler::peepholeProgram(CP);

    // Publish for every worker (and later requests). A program that does
    // not capture — non-datum literal, irregular code — is simply served
    // uncached each time.
    if (Result<std::shared_ptr<const compiler::PortableProgram>> Port =
            compiler::PortableProgram::capture(CP, Globals)) {
      auto Cached = std::make_shared<CachedSpecialization>();
      Cached->Residual = *Port;
      Cached->Entry = Entry;
      Cached->Stats = Obj->Stats;
      Cache.insert(Key, std::move(Cached), Req.Tenant);
    }
  }

  if (Result<bool> Linked =
          compiler::linkProgramVerified(W.Machine, Globals, CP, LO);
      !Linked)
    return failResponse(Linked.error(), W.Index);

  // Only the top-level run's samples may reach the site table: anything a
  // generation step ran through the machine above is not entry evidence.
  if (Opts.Respec.Enabled)
    W.Prof.CallSites.clear();
  Result<vm::Value> R = compiler::callGlobal(W.Machine, Globals, Entry,
                                             RunArgs);
  if (!R) {
    if (Opts.Respec.Enabled)
      W.Prof.CallSites.clear(); // trapped run: census is suspect, drop it
    return failResponse(R.error(), W.Index);
  }
  Resp.Ok = true;
  Resp.Value = vm::valueToString(*R);

  if (Opts.Respec.Enabled)
    observeAndMaybeRespec(W, Req, Key.Hash);
  return Resp;
}

void RtcgService::observeAndMaybeRespec(WorkerState &W, const RtcgRequest &Req,
                                        uint64_t GenericHash) {
  // Drain every census the request's top-level call recorded. Normally
  // that is exactly one site (Machine::call samples only the outermost
  // entry), but the site name is the residual entry's freshened name —
  // not worth matching; the per-request drain is what keeps the counts
  // single-homed.
  vm::CallSiteSample Fresh;
  for (auto &[Name, Site] : W.Prof.CallSites)
    Fresh.merge(Site);
  W.Prof.CallSites.clear();
  if (!Fresh.Calls)
    return;

  // The censuses index *residual* parameter slots. That mapping is only
  // trustworthy when the residual arity equals the request's declared
  // dynamic slots — BTA may promote a declared-static parameter to
  // dynamic (effective division), and then slot j is no longer the j-th
  // "_" of SpecArgs. Such requests simply do not feed the loop.
  if (Fresh.Slots.size() != dynamicSlots(Req) ||
      Req.Division.size() != Req.SpecArgs.size())
    return;

  std::optional<Job> NewJob;
  {
    std::lock_guard<std::mutex> Lock(RespecM);
    SiteInfo &Site = Sites[GenericHash];
    Site.Census.merge(Fresh);
    if (Site.State != SiteState::Observing ||
        Site.Census.Calls < Opts.Respec.HotThreshold)
      return;

    // Stabilize every dynamic slot whose top value clears the bar.
    std::vector<uint32_t> Slots;
    std::vector<std::string> Texts;
    for (size_t I = 0; I != Site.Census.Slots.size(); ++I) {
      const vm::ArgCensus &C = Site.Census.Slots[I];
      const vm::ArgCensus::ValueCount *Top = C.top();
      if (!C.Sampleable || !Top || C.topShare() < Opts.Respec.MinStability)
        continue;
      Slots.push_back(static_cast<uint32_t>(I));
      Texts.push_back(Top->Text);
    }
    if (Slots.empty())
      return; // keep observing; the mix may still settle

    // Synthesize the value-extended request: the j-th dynamic slot is the
    // j-th "_" of SpecArgs; flip its division letter to 'S' and put the
    // observed value in its place. RunArgs stay empty — the job only
    // generates and installs.
    Job J;
    J.Respec = true;
    J.GenericHash = GenericHash;
    J.GuardSlots = Slots;
    J.GuardTexts = Texts;
    J.Req.ProgramText = Req.ProgramText;
    J.Req.Entry = Req.Entry;
    J.Req.Division = Req.Division;
    J.Req.SpecArgs = Req.SpecArgs;
    J.Req.Tenant = Req.Tenant; // the variant lives in the tenant's partition
    size_t Dyn = 0, Next = 0;
    for (size_t I = 0; I != J.Req.SpecArgs.size(); ++I) {
      if (J.Req.SpecArgs[I] != "_")
        continue;
      if (Next < Slots.size() && Slots[Next] == Dyn) {
        J.Req.SpecArgs[I] = Texts[Next];
        J.Req.Division[I] = 'S';
        ++Next;
      }
      ++Dyn;
    }

    Site.State = SiteState::Queued;
    ++RStats.JobsQueued;
    ++RespecInFlight;
    NewJob.emplace(std::move(J));
  }

  // Enqueue outside RespecM (lock order: QueueM alone). If shutdown beat
  // us to the queue, account the job as abandoned right here — the
  // destructor has already drained its orphans.
  {
    std::lock_guard<std::mutex> Lock(QueueM);
    if (!Stopping) {
      // Front of the queue, not the back: every user request served
      // before the variant exists is a hit the loop already paid the
      // sampling for and didn't get. One generation's head start costs
      // one request's latency and buys the whole rest of the burst.
      Queue.push_front(std::move(*NewJob));
      NewJob.reset();
    }
  }
  if (NewJob) {
    {
      std::lock_guard<std::mutex> Lock(RespecM);
      ++RStats.Abandoned;
    }
    finishRespecJob();
  } else {
    QueueCv.notify_one();
  }
}

void RtcgService::processRespec(WorkerState &W, Job &J) {
  const RtcgRequest &Req = J.Req;
  bool Installed = false;
  // The memoizing run below executes tenant code; it must burn the
  // tenant's fuel, not whatever the previous request left installed.
  if (Opts.Tenants) {
    const TenantConfig *TC = Opts.Tenants->find(Req.Tenant);
    W.Machine.setLimits(TC ? TC->Limits : Opts.Limits);
  }
  // Everything below is the generic cold path minus the run step,
  // executed in this worker's own universe; failure of any stage just
  // marks the site Failed (the generic code keeps serving).
  do {
    Arena RequestArena;
    DatumFactory Datums(RequestArena);
    vm::RootScope Roots(W.Heap);

    std::vector<std::optional<vm::Value>> SpecArgs;
    bool ParseOk = true;
    SpecArgs.reserve(Req.SpecArgs.size());
    for (const std::string &T : Req.SpecArgs) {
      if (T == "_") {
        SpecArgs.emplace_back(std::nullopt);
        continue;
      }
      Result<const Datum *> D = readDatum(T, Datums);
      if (!D) {
        ParseOk = false;
        break;
      }
      SpecArgs.emplace_back(Roots.protect(vm::valueFromDatum(W.Heap, *D)));
    }
    if (!ParseOk)
      break;

    uint64_t BaseFp =
        fingerprintProgram(Req.ProgramText, Req.Entry, Req.Division);
    SpecKey ExtKey = makeSpecKey(tenantFingerprint(BaseFp, Req.Tenant),
                                 SpecArgs);

    GeneratingExtension *Gen;
    if (auto It = W.Gens.find(BaseFp); It != W.Gens.end()) {
      Gen = It->second.get();
    } else {
      Result<std::unique_ptr<GeneratingExtension>> G =
          GeneratingExtension::create(W.Heap, Req.ProgramText, Req.Entry,
                                      Req.Division, Opts.Pgg);
      if (!G)
        break;
      Gen = (W.Gens[BaseFp] = std::move(*G)).get();
    }

    // The guard plan assumes every stabilized slot really was consumed by
    // specialization. If BTA's joins demoted one back to dynamic, the
    // residual entry would still expect that argument and the hit path's
    // argument skipping would misalign — refuse the variant instead.
    std::vector<bta::BT> Eff = Gen->effectiveDivision();
    bool DivisionHeld = Eff.size() == Req.Division.size();
    for (size_t I = 0; DivisionHeld && I != Eff.size(); ++I) {
      char Want = Req.Division[I];
      char Got = Eff[I] == bta::BT::Static ? 'S' : 'D';
      DivisionHeld = Want == Got;
    }
    if (!DivisionHeld)
      break;

    vm::CodeStore Store(W.Heap);
    vm::GlobalTable Globals;
    struct GlobalsReset {
      vm::Machine &M;
      ~GlobalsReset() { M.resetGlobals(); }
    } ResetG{W.Machine};

    compiler::Compilators Comp(Store, Globals);
    Result<ResidualObject> Obj = Gen->generateObject(Comp, SpecArgs);
    if (!Obj) {
      if (W.Heap.faulted()) {
        W.Heap.clearFault();
        W.Heap.collect();
      }
      break;
    }
    if (Opts.Peephole)
      compiler::peepholeProgram(Obj->Residual);

    // Fully-stabilized fast path. When every declared-dynamic slot
    // pinned, the extended division has no 'D' left and the residual
    // entry is a zero-argument thunk over a closed program:
    // specialization with all inputs static is evaluation. The thunk as
    // generated would still recompute the whole run on every guard hit —
    // the interpreter workloads' error branches lift their results to
    // dynamic, so BTA's fold stops at the environment lookup — so run it
    // once here, in this worker's machine under the service limits, and
    // publish a constant-returning residual in its place. A trapped run
    // or an unrenderable result refuses the variant (site goes Failed;
    // the generic code keeps serving, untouched).
    vm::CodeStore MemoStore(W.Heap);
    vm::GlobalTable MemoGlobals;
    std::optional<ResidualObject> Memo;
    if (Req.Division.find('D') == std::string::npos) {
      compiler::LinkOptions LO;
      LO.Peephole = Opts.Peephole;
      LO.NativeJit = Opts.NativeJit;
      if (Result<bool> Linked = compiler::linkProgramVerified(
              W.Machine, Globals, Obj->Residual, LO);
          !Linked)
        break;
      Result<vm::Value> R =
          compiler::callGlobal(W.Machine, Globals, Obj->Entry, {});
      if (!R) {
        if (W.Heap.faulted()) {
          W.Heap.clearFault();
          W.Heap.collect();
        }
        break;
      }
      std::string Text = vm::valueToString(*R);
      if (Text.find("#<") != std::string::npos)
        break; // closures and the like have no datum form to re-quote
      std::string MemoSrc = "(define (respec-memo) (quote " + Text + "))";
      Result<std::unique_ptr<GeneratingExtension>> MG =
          GeneratingExtension::create(W.Heap, MemoSrc, "respec-memo", "",
                                      Opts.Pgg);
      if (!MG)
        break;
      compiler::Compilators MemoComp(MemoStore, MemoGlobals);
      Result<ResidualObject> MO = (*MG)->generateObject(MemoComp, {});
      if (!MO)
        break;
      if (Opts.Peephole)
        compiler::peepholeProgram(MO->Residual);
      Memo.emplace(std::move(*MO));
    }

    compiler::CompiledProgram &PubCP = Memo ? Memo->Residual : Obj->Residual;
    vm::GlobalTable &PubGlobals = Memo ? MemoGlobals : Globals;
    Result<std::shared_ptr<const compiler::PortableProgram>> Port =
        compiler::PortableProgram::capture(PubCP, PubGlobals);
    if (!Port)
      break; // uncapturable residual cannot be shared; no variant

    auto Cached = std::make_shared<CachedSpecialization>();
    Cached->Residual = *Port;
    Cached->Entry = Memo ? Memo->Entry : Obj->Entry;
    Cached->Stats = Obj->Stats; // generation cost of the real extension
    Cache.insert(ExtKey, std::move(Cached), Req.Tenant);

    auto V = std::make_shared<Variant>();
    V->ExtKey = ExtKey;
    V->GuardSlots = J.GuardSlots;
    V->GuardTexts = J.GuardTexts;
    {
      std::lock_guard<std::mutex> Lock(RespecM);
      SiteInfo &Site = Sites[J.GenericHash];
      Site.State = SiteState::Installed;
      Site.Live = std::move(V);
      ++RStats.Installed;
    }
    Installed = true;
  } while (false);

  if (!Installed) {
    std::lock_guard<std::mutex> Lock(RespecM);
    Sites[J.GenericHash].State = SiteState::Failed;
    ++RStats.Failed;
  }
  W.Prof.CallSites.clear(); // generation-time machine activity, not evidence
  finishRespecJob();
}
