//===- pgg/TenantTable.h - Per-tenant quota configuration -------*- C++ -*-===//
///
/// \file
/// Multi-tenant isolation policy for the networked RTCG service: a small
/// immutable table mapping a tenant id to the resource ceilings its
/// requests run under (vm::Limits — fuel, heap, stack, frames) and the
/// byte budget of its SpecCache partition. The paper's amortization
/// argument only works when many clients share one specializer; sharing
/// is only operable when one tenant's pathological programs cannot burn
/// another tenant's fuel or evict another tenant's cached
/// specializations, which is exactly what this table configures.
///
/// The table is built once (from `pecompc --tenants=SPEC` or directly by
/// embedders), then shared read-only by every worker and by the network
/// front end — no locking, no mutation after construction.
///
/// Spec grammar (the `--tenants` flag):
///
///   spec   := item (';' item)*
///   item   := "strict" | id | id ':' kv (',' kv)*
///   kv     := "fuel" '=' N | "heap" '=' N | "stack" '=' N
///           | "frames" '=' N | "cache" '=' N | "name" '=' WORD
///
/// `strict` makes unknown tenant ids a classified UnknownTenant error
/// instead of falling back to the service-default limits. Numeric values
/// follow vm::Limits conventions (0 = unlimited; cache=0 = no private
/// partition, the tenant shares the global budget only).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_TENANTTABLE_H
#define PECOMP_PGG_TENANTTABLE_H

#include "support/Error.h"
#include "vm/Trap.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace pecomp {
namespace pgg {

/// One tenant's isolation envelope. Limits apply per request (installed
/// on the serving worker's machine for the request's duration);
/// CacheBytes is the byte budget of the tenant's SpecCache partition.
struct TenantConfig {
  uint32_t Id = 0;
  std::string Name;  ///< optional operator label (shows in stats reports)
  vm::Limits Limits; ///< per-request ceilings (0 fields = unlimited)
  /// SpecCache partition budget in bytes. Eviction under this budget is
  /// confined to the tenant's own entries; 0 means the tenant has no
  /// private ceiling and is bounded only by the cache-wide budget.
  size_t CacheBytes = 0;
};

/// Immutable after construction; shared by const reference/pointer.
class TenantTable {
public:
  /// Parses the `--tenants` spec. Every tenant's Limits start from
  /// \p Defaults (the service-wide `--fuel`/`--max-heap` settings) and
  /// the spec overrides individual fields.
  static Result<TenantTable> parse(std::string_view Spec,
                                   const vm::Limits &Defaults);

  /// Adds (or replaces) one tenant entry.
  void add(TenantConfig C) { Table[C.Id] = std::move(C); }

  /// The tenant's config, or null when the id is not in the table.
  const TenantConfig *find(uint32_t Id) const {
    auto It = Table.find(Id);
    return It == Table.end() ? nullptr : &It->second;
  }

  /// Strict tables reject requests from unlisted tenant ids with a
  /// classified ServiceError::UnknownTenant instead of serving them
  /// under the default limits.
  bool strict() const { return Strict; }
  void setStrict(bool S) { Strict = S; }

  size_t size() const { return Table.size(); }
  const std::map<uint32_t, TenantConfig> &tenants() const { return Table; }

private:
  std::map<uint32_t, TenantConfig> Table;
  bool Strict = false;
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_TENANTTABLE_H
