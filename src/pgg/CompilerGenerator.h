//===- pgg/CompilerGenerator.h - Generated compilers ------------*- C++ -*-===//
///
/// \file
/// The paper's headline application (Sec. 1): "the automatic construction
/// of true compilers: it maps a language description (an interpreter) to
/// a compiler that directly generates low-level object code." This is the
/// first Futamura projection packaged as an object: construct a
/// GeneratedCompiler from an interpreter once (front end + BTA), then
/// compile any number of programs of the interpreted language straight to
/// byte code, all linkable into one machine.
///
/// \code
///   auto CC = pgg::GeneratedCompiler::create(
///       Heap, workloads::mixwellInterpreter(), "mixwell-run");
///   auto Unit = (*CC)->compile(mixwellProgramValue);
///   vm::Machine M(Heap);
///   (*CC)->link(M, Unit->Module);
///   auto R = compiler::callGlobal(M, (*CC)->globals(), Unit->Entry, {input});
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_COMPILERGENERATOR_H
#define PECOMP_PGG_COMPILERGENERATOR_H

#include "pgg/Pgg.h"

namespace pecomp {
namespace pgg {

/// A compiler generated from an interpreter. The interpreter's entry must
/// take (program input): the program becomes static, the input dynamic.
class GeneratedCompiler {
public:
  /// One compiled program of the interpreted language.
  struct Unit {
    compiler::CompiledProgram Module;
    Symbol Entry; ///< takes the interpreter's dynamic input
    spec::SpecStats Stats;
  };

  /// Builds the compiler: front end + BTA of \p InterpreterSource for
  /// entry \p Entry under the division "SD".
  static Result<std::unique_ptr<GeneratedCompiler>>
  create(vm::Heap &H, std::string_view InterpreterSource,
         std::string_view Entry, PggOptions Opts = {});

  /// Compiles \p Program (a value of the interpreted language's program
  /// representation) to byte code. May be called repeatedly; residual
  /// names are globally fresh, so all units share this compiler's global
  /// table and may be linked into one machine.
  Result<Unit> compile(vm::Value Program);

  /// Installs a unit's definitions into \p M.
  void link(vm::Machine &M, const compiler::CompiledProgram &Module) {
    compiler::linkProgram(M, Globals, Module);
  }

  vm::GlobalTable &globals() { return Globals; }
  vm::Heap &heap() { return Gen->heap(); }

private:
  GeneratedCompiler(std::unique_ptr<GeneratingExtension> Gen, vm::Heap &H)
      : Gen(std::move(Gen)), Store(H), Comp(Store, Globals) {}

  std::unique_ptr<GeneratingExtension> Gen;
  vm::CodeStore Store;
  vm::GlobalTable Globals;
  compiler::Compilators Comp;
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_COMPILERGENERATOR_H
