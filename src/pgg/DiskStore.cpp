//===- pgg/DiskStore.cpp - Crash-safe persistent code-cache store ---------===//

#include "pgg/DiskStore.h"

#include "vm/Verify.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pecomp;
using namespace pecomp::pgg;

namespace {

//===----------------------------------------------------------------------===//
// Entry file format
//
//   offset size  field
//        0    4  magic "PPCS"
//        4    4  format version (currently 1)
//        8    8  program fingerprint        |
//       16    4  BT-signature length        |  key fields
//       20    4  static-signature length    |
//       24    4  entry-name length
//       28    4  payload length
//       32    8  body checksum  (FNV-1a over every byte after the header)
//       40    8  header checksum (FNV-1a over bytes [0, 40))
//       48    …  BtSig | StaticSig | EntryName | 5×u64 SpecStats | payload
//
// Every byte of the file is covered by exactly one of the two checksums
// (the header checksum's own bytes are validated by recomputation), so
// any single-byte corruption anywhere is detected before a length field
// or payload byte is trusted.
//===----------------------------------------------------------------------===//

constexpr uint32_t StoreMagic = 0x53435050; // "PPCS" little-endian
constexpr uint32_t StoreVersion = 1;
constexpr size_t HeaderSize = 48;
constexpr size_t StatsSize = 5 * 8;
/// Per-field and whole-file sanity ceilings: a corrupt length that slips
/// past its checksum (it cannot, but defense in depth is the point here)
/// may never drive a multi-gigabyte allocation.
constexpr uint64_t MaxFieldLen = 1u << 30;

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

uint64_t fnv1a(const uint8_t *P, size_t N, uint64_t H = FnvOffset) {
  for (size_t I = 0; I != N; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

void putU32(std::vector<uint8_t> &B, uint32_t V) {
  for (int S = 0; S < 32; S += 8)
    B.push_back(static_cast<uint8_t>(V >> S));
}

void putU64(std::vector<uint8_t> &B, uint64_t V) {
  for (int S = 0; S < 64; S += 8)
    B.push_back(static_cast<uint8_t>(V >> S));
}

uint32_t getU32(const uint8_t *P) {
  uint32_t V = 0;
  for (int S = 0; S < 32; S += 8)
    V |= static_cast<uint32_t>(*P++) << S;
  return V;
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int S = 0; S < 64; S += 8)
    V |= static_cast<uint64_t>(*P++) << S;
  return V;
}

std::string entryFileName(uint64_t KeyHash) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%016llx.ppc",
           static_cast<unsigned long long>(KeyHash));
  return Buf;
}

/// Everything a structurally valid entry file contains.
struct ParsedEntry {
  uint64_t ProgramFp = 0;
  std::string BtSig, StaticSig, EntryName;
  spec::SpecStats Stats;
  std::span<const uint8_t> Payload;
};

/// Validates \p Bytes as one entry file, in strictly escalating trust:
/// size, magic, version, header checksum, declared lengths, body
/// checksum. Only then are the key fields and payload span handed out.
StoreError parseEntry(std::span<const uint8_t> Bytes, ParsedEntry &Out,
                      std::string &Detail) {
  const uint8_t *P = Bytes.data();
  if (Bytes.size() < HeaderSize) {
    Detail = "file shorter than the " + std::to_string(HeaderSize) +
             "-byte header (" + std::to_string(Bytes.size()) + " bytes)";
    return StoreError::Truncated;
  }
  if (getU32(P) != StoreMagic) {
    Detail = "bad magic";
    return StoreError::BadMagic;
  }
  uint32_t Version = getU32(P + 4);
  if (Version != StoreVersion) {
    Detail = "format version " + std::to_string(Version) + ", expected " +
             std::to_string(StoreVersion);
    return StoreError::BadVersion;
  }
  if (getU64(P + 40) != fnv1a(P, 40)) {
    Detail = "header checksum mismatch";
    return StoreError::HeaderCorrupt;
  }
  // Lengths are now checksum-trusted; cross-check them against the file.
  uint64_t BtLen = getU32(P + 16), StaticLen = getU32(P + 20),
           EntryLen = getU32(P + 24), PayloadLen = getU32(P + 28);
  if (BtLen > MaxFieldLen || StaticLen > MaxFieldLen ||
      EntryLen > MaxFieldLen || PayloadLen > MaxFieldLen) {
    Detail = "implausible field length";
    return StoreError::HeaderCorrupt;
  }
  uint64_t Expect = HeaderSize + BtLen + StaticLen + EntryLen + StatsSize +
                    PayloadLen;
  if (Bytes.size() < Expect) {
    Detail = "file holds " + std::to_string(Bytes.size()) +
             " bytes, header declares " + std::to_string(Expect);
    return StoreError::Truncated;
  }
  if (Bytes.size() > Expect) {
    Detail = std::to_string(Bytes.size() - Expect) + " trailing bytes";
    return StoreError::HeaderCorrupt;
  }
  if (getU64(P + 32) != fnv1a(P + HeaderSize, Bytes.size() - HeaderSize)) {
    Detail = "body checksum mismatch";
    return StoreError::BodyCorrupt;
  }

  const uint8_t *Q = P + HeaderSize;
  Out.ProgramFp = getU64(P + 8);
  Out.BtSig.assign(reinterpret_cast<const char *>(Q), BtLen);
  Q += BtLen;
  Out.StaticSig.assign(reinterpret_cast<const char *>(Q), StaticLen);
  Q += StaticLen;
  Out.EntryName.assign(reinterpret_cast<const char *>(Q), EntryLen);
  Q += EntryLen;
  Out.Stats.UnfoldedCalls = static_cast<size_t>(getU64(Q));
  Out.Stats.MemoizedCalls = static_cast<size_t>(getU64(Q + 8));
  Out.Stats.ResidualFunctions = static_cast<size_t>(getU64(Q + 16));
  Out.Stats.StaticPrims = static_cast<size_t>(getU64(Q + 24));
  Out.Stats.ResidualPrims = static_cast<size_t>(getU64(Q + 32));
  Q += StatsSize;
  Out.Payload = Bytes.subspan(static_cast<size_t>(Q - P),
                              static_cast<size_t>(PayloadLen));
  return StoreError::None;
}

/// The verify-on-load sandbox: instantiate the snapshot into a throwaway
/// heap/code store (no Machine anywhere near it) and re-run the byte-code
/// verifier over every definition. A forged payload that survived the
/// checksums and the structural decoder dies here — before the snapshot
/// is published to any cache tier.
std::optional<std::string> verifySnapshot(const compiler::PortableProgram &P,
                                          Symbol Entry) {
  vm::Heap Sandbox;
  vm::CodeStore Store(Sandbox);
  vm::GlobalTable Globals;
  compiler::CompiledProgram CP = P.instantiate(Store, Globals);
  if (!CP.find(Entry))
    return "entry '" + Entry.str() + "' is not defined by the snapshot";
  for (const auto &[Name, Code] : CP.Defs)
    if (auto Err = vm::verifyCode(Code, 0, 0))
      return Err;
  return std::nullopt;
}

/// RAII fd with flock release-on-close semantics.
struct Fd {
  int Handle = -1;
  ~Fd() {
    if (Handle >= 0)
      close(Handle);
  }
};

bool isEntryName(const std::string &Name) {
  return Name.size() == 20 && Name.rfind(".ppc") == 16;
}

bool isTornName(const std::string &Name) {
  return Name.find(".tmp") != std::string::npos;
}

} // namespace

const char *pgg::storeErrorName(StoreError E) {
  switch (E) {
  case StoreError::None:
    return "None";
  case StoreError::IoError:
    return "IoError";
  case StoreError::NotFound:
    return "NotFound";
  case StoreError::Truncated:
    return "Truncated";
  case StoreError::BadMagic:
    return "BadMagic";
  case StoreError::BadVersion:
    return "BadVersion";
  case StoreError::HeaderCorrupt:
    return "HeaderCorrupt";
  case StoreError::BodyCorrupt:
    return "BodyCorrupt";
  case StoreError::KeyMismatch:
    return "KeyMismatch";
  case StoreError::MalformedPayload:
    return "MalformedPayload";
  case StoreError::VerifyRejected:
    return "VerifyRejected";
  case StoreError::TornWrite:
    return "TornWrite";
  case StoreError::WriteFailed:
    return "WriteFailed";
  }
  return "Unknown";
}

std::string DiskStoreStats::report() const {
  char Buf[256];
  snprintf(Buf, sizeof(Buf),
           "disk-store: %llu hits, %llu misses, %llu rejects "
           "(%llu verify), %llu writes (%llu failed), %llu bytes written, "
           "%llu entries / %llu bytes on disk\n",
           static_cast<unsigned long long>(Hits),
           static_cast<unsigned long long>(Misses),
           static_cast<unsigned long long>(Rejects),
           static_cast<unsigned long long>(VerifyRejects),
           static_cast<unsigned long long>(Writes),
           static_cast<unsigned long long>(WriteFailures),
           static_cast<unsigned long long>(BytesWritten),
           static_cast<unsigned long long>(EntriesOnDisk),
           static_cast<unsigned long long>(BytesOnDisk));
  return Buf;
}

Result<std::shared_ptr<DiskStore>> DiskStore::open(std::string Dir,
                                                   bool ReadOnly) {
  struct stat St;
  if (stat(Dir.c_str(), &St) == 0) {
    if (!S_ISDIR(St.st_mode))
      return storeError(StoreError::IoError,
                        "store path '" + Dir + "' is not a directory");
  } else if (ReadOnly) {
    return storeError(StoreError::IoError,
                      "store '" + Dir + "': " + strerror(errno));
  } else if (mkdir(Dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return storeError(StoreError::IoError,
                      "cannot create store '" + Dir + "': " +
                          strerror(errno));
  }
  if (!ReadOnly) {
    // The writer-serialization lock file must exist before the first put.
    Fd Lock;
    Lock.Handle =
        ::open((Dir + "/LOCK").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (Lock.Handle < 0)
      return storeError(StoreError::IoError,
                        "cannot create '" + Dir + "/LOCK': " +
                            strerror(errno));
  }
  return std::shared_ptr<DiskStore>(new DiskStore(std::move(Dir), ReadOnly));
}

DiskStore::~DiskStore() = default;

Result<std::vector<uint8_t>> DiskStore::readWholeFile(
    const std::string &Path) {
  Fd F;
  F.Handle = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (F.Handle < 0) {
    if (errno == ENOENT)
      return storeError(StoreError::NotFound, "no entry file");
    return storeError(StoreError::IoError,
                      "open '" + Path + "': " + strerror(errno));
  }
  std::vector<uint8_t> Out;
  uint8_t Buf[1 << 16];
  for (;;) {
    uint64_t Ordinal = ReadOrdinal.fetch_add(1, std::memory_order_relaxed) + 1;
    if (Plan.FailAtRead && Ordinal == Plan.FailAtRead)
      return storeError(StoreError::IoError, "injected read fault");
    ssize_t N = ::read(F.Handle, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return storeError(StoreError::IoError,
                        "read '" + Path + "': " + strerror(errno));
    }
    if (Plan.ShortReadAt && Ordinal == Plan.ShortReadAt) {
      // A short read: half the data arrives, the rest of the file is
      // never seen. Downstream validation must classify the stub.
      Out.insert(Out.end(), Buf, Buf + N / 2);
      return Out;
    }
    if (N == 0)
      return Out;
    Out.insert(Out.end(), Buf, Buf + N);
  }
}

Result<std::shared_ptr<const CachedSpecialization>>
DiskStore::load(const SpecKey &Key) {
  auto Reject = [&](StoreError E, const std::string &Detail)
      -> Result<std::shared_ptr<const CachedSpecialization>> {
    if (E == StoreError::NotFound)
      Misses.fetch_add(1, std::memory_order_relaxed);
    else {
      Rejects.fetch_add(1, std::memory_order_relaxed);
      if (E == StoreError::VerifyRejected)
        VerifyRejects.fetch_add(1, std::memory_order_relaxed);
    }
    return storeError(E, "store entry " + entryFileName(Key.Hash) + ": " +
                             Detail);
  };

  Result<std::vector<uint8_t>> Bytes =
      readWholeFile(Dir + "/" + entryFileName(Key.Hash));
  if (!Bytes) {
    StoreError E = storeErrorOf(Bytes.error());
    return Reject(E == StoreError::None ? StoreError::IoError : E,
                  Bytes.error().message());
  }

  ParsedEntry Entry;
  std::string Detail;
  if (StoreError E = parseEntry(*Bytes, Entry, Detail); E != StoreError::None)
    return Reject(E, Detail);
  if (Entry.ProgramFp != Key.ProgramFp || Entry.BtSig != Key.BtSig ||
      Entry.StaticSig != Key.StaticSig)
    return Reject(StoreError::KeyMismatch,
                  "entry holds a different cache key (hash collision or "
                  "renamed blob)");

  Result<std::shared_ptr<const compiler::PortableProgram>> Port =
      compiler::PortableProgram::deserialize(Entry.Payload);
  if (!Port)
    return Reject(StoreError::MalformedPayload, Port.error().render());

  Symbol EntrySym = Symbol::intern(Entry.EntryName);
  if (auto Err = verifySnapshot(**Port, EntrySym))
    return Reject(StoreError::VerifyRejected, *Err);

  auto Out = std::make_shared<CachedSpecialization>();
  Out->Residual = *Port;
  Out->Entry = EntrySym;
  Out->Stats = Entry.Stats;
  Hits.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<const CachedSpecialization>(std::move(Out));
}

StoreError DiskStore::put(const SpecKey &Key,
                          const CachedSpecialization &Value) {
  auto Fail = [&](StoreError E) {
    WriteFailures.fetch_add(1, std::memory_order_relaxed);
    return E;
  };
  if (ReadOnly || !Value.Residual)
    return Fail(StoreError::WriteFailed);

  // Assemble the complete file image first; checksums are computed over
  // the final bytes, so injected corruption-at-offset below is guaranteed
  // to be *detectable* corruption, exactly like a real bit flip.
  std::vector<uint8_t> Payload = Value.Residual->serialize();
  std::string EntryName = Value.Entry.isValid() ? Value.Entry.str() : "";
  std::vector<uint8_t> Image;
  Image.reserve(HeaderSize + Key.BtSig.size() + Key.StaticSig.size() +
                EntryName.size() + StatsSize + Payload.size());
  putU32(Image, StoreMagic);
  putU32(Image, StoreVersion);
  putU64(Image, Key.ProgramFp);
  putU32(Image, static_cast<uint32_t>(Key.BtSig.size()));
  putU32(Image, static_cast<uint32_t>(Key.StaticSig.size()));
  putU32(Image, static_cast<uint32_t>(EntryName.size()));
  putU32(Image, static_cast<uint32_t>(Payload.size()));
  Image.insert(Image.end(), Key.BtSig.begin(), Key.BtSig.end());
  Image.insert(Image.end(), Key.StaticSig.begin(), Key.StaticSig.end());
  Image.insert(Image.end(), EntryName.begin(), EntryName.end());
  const size_t Counters[] = {Value.Stats.UnfoldedCalls,
                             Value.Stats.MemoizedCalls,
                             Value.Stats.ResidualFunctions,
                             Value.Stats.StaticPrims,
                             Value.Stats.ResidualPrims};
  for (size_t C : Counters)
    putU64(Image, C);
  Image.insert(Image.end(), Payload.begin(), Payload.end());
  // Splice the two checksums into the header (body first — the header
  // checksum covers the stored body checksum).
  uint64_t BodySum = fnv1a(Image.data() + HeaderSize - 16,
                           Image.size() - (HeaderSize - 16));
  std::vector<uint8_t> Sum;
  putU64(Sum, BodySum);
  Image.insert(Image.begin() + 32, Sum.begin(), Sum.end());
  Sum.clear();
  putU64(Sum, fnv1a(Image.data(), 40));
  Image.insert(Image.begin() + 40, Sum.begin(), Sum.end());

  if (Plan.CorruptAtWrite) {
    uint64_t Ordinal = WriteOrdinal.load(std::memory_order_relaxed) + 1;
    if (Ordinal == Plan.CorruptAtWrite && !Image.empty())
      Image[Plan.CorruptOffset % Image.size()] ^= 0x01;
  }

  // Single writer: every put (from any thread or process) serializes on
  // the flock'd LOCK file. Readers never take it — rename atomicity is
  // their whole consistency story.
  Fd Lock;
  Lock.Handle =
      ::open((Dir + "/LOCK").c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (Lock.Handle < 0 || flock(Lock.Handle, LOCK_EX) != 0)
    return Fail(StoreError::WriteFailed);

  std::string Final = Dir + "/" + entryFileName(Key.Hash);
  std::string Tmp = Final + ".tmp";
  Fd F;
  F.Handle = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                    0644);
  if (F.Handle < 0)
    return Fail(StoreError::WriteFailed);

  uint64_t Ordinal = WriteOrdinal.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Plan.FailAtWrite && Ordinal == Plan.FailAtWrite) {
    // A cleanly reported write error: the writer notices and removes its
    // debris.
    unlink(Tmp.c_str());
    return Fail(StoreError::WriteFailed);
  }
  if (Plan.ShortWriteAt && Ordinal == Plan.ShortWriteAt) {
    // A torn write followed by a "crash": half the image lands and the
    // tmp file is abandoned. Readers never look at tmp names; fsck
    // reports the debris as TornWrite.
    (void)!::write(F.Handle, Image.data(), Image.size() / 2);
    return Fail(StoreError::WriteFailed);
  }
  size_t Off = 0;
  while (Off != Image.size()) {
    ssize_t N = ::write(F.Handle, Image.data() + Off, Image.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      unlink(Tmp.c_str());
      return Fail(StoreError::WriteFailed);
    }
    Off += static_cast<size_t>(N);
  }
  if (Plan.FailFsync || fsync(F.Handle) != 0) {
    unlink(Tmp.c_str());
    return Fail(StoreError::WriteFailed);
  }
  if (rename(Tmp.c_str(), Final.c_str()) != 0) {
    unlink(Tmp.c_str());
    return Fail(StoreError::WriteFailed);
  }
  // Make the rename itself durable (best-effort: the entry is already
  // consistent either way, this only narrows the lost-on-power-cut
  // window).
  Fd D;
  D.Handle = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (D.Handle >= 0)
    (void)fsync(D.Handle);

  Writes.fetch_add(1, std::memory_order_relaxed);
  BytesWritten.fetch_add(Image.size(), std::memory_order_relaxed);
  return StoreError::None;
}

Result<std::vector<StoreEntryInfo>> DiskStore::walk(const std::string &Dir,
                                                    bool Deep) {
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return storeError(StoreError::IoError,
                      "cannot read store '" + Dir + "': " + strerror(errno));
  std::vector<StoreEntryInfo> Out;
  time_t Now = time(nullptr);
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name == "." || Name == ".." || Name == "LOCK")
      continue;
    StoreEntryInfo Info;
    Info.File = Name;
    std::string Path = Dir + "/" + Name;
    struct stat St;
    if (stat(Path.c_str(), &St) == 0) {
      Info.FileBytes = static_cast<size_t>(St.st_size);
      Info.AgeSeconds = static_cast<int64_t>(Now - St.st_mtime);
    }
    if (isTornName(Name)) {
      Info.Status = StoreError::TornWrite;
      Info.Detail = "abandoned tmp file from an interrupted writer "
                    "(ignored by loads)";
      Out.push_back(std::move(Info));
      continue;
    }
    if (!isEntryName(Name)) {
      Info.Status = StoreError::BadMagic;
      Info.Detail = "not a store entry file";
      Out.push_back(std::move(Info));
      continue;
    }

    // Plain one-shot read; walk is offline tooling with no fault plan.
    std::vector<uint8_t> Bytes;
    {
      Fd F;
      F.Handle = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
      if (F.Handle < 0) {
        Info.Status = StoreError::IoError;
        Info.Detail = strerror(errno);
        Out.push_back(std::move(Info));
        continue;
      }
      uint8_t Buf[1 << 16];
      for (;;) {
        ssize_t N = ::read(F.Handle, Buf, sizeof(Buf));
        if (N < 0 && errno == EINTR)
          continue;
        if (N <= 0)
          break;
        Bytes.insert(Bytes.end(), Buf, Buf + N);
      }
    }

    ParsedEntry Parsed;
    std::string Detail;
    if (StoreError PE = parseEntry(Bytes, Parsed, Detail);
        PE != StoreError::None) {
      Info.Status = PE;
      Info.Detail = Detail;
      Out.push_back(std::move(Info));
      continue;
    }
    Info.ProgramFp = Parsed.ProgramFp;
    Info.BtSig = Parsed.BtSig;
    Info.EntryName = Parsed.EntryName;
    Info.PayloadBytes = Parsed.Payload.size();
    // A checksum-valid entry sitting under the wrong file name (a copied
    // or renamed blob) would answer lookups for a key it does not hold.
    if (entryFileName(specKeyHash(Parsed.ProgramFp, Parsed.BtSig,
                                  Parsed.StaticSig)) != Name) {
      Info.Status = StoreError::KeyMismatch;
      Info.Detail = "file name does not match the stored key";
      Out.push_back(std::move(Info));
      continue;
    }
    if (Deep) {
      Result<std::shared_ptr<const compiler::PortableProgram>> Port =
          compiler::PortableProgram::deserialize(Parsed.Payload);
      if (!Port) {
        Info.Status = StoreError::MalformedPayload;
        Info.Detail = Port.error().render();
      } else if (auto Err =
                     verifySnapshot(**Port, Symbol::intern(Parsed.EntryName))) {
        Info.Status = StoreError::VerifyRejected;
        Info.Detail = *Err;
      }
    }
    Out.push_back(std::move(Info));
  }
  closedir(D);
  return Out;
}

DiskStoreStats DiskStore::stats() const {
  DiskStoreStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Rejects = Rejects.load(std::memory_order_relaxed);
  S.VerifyRejects = VerifyRejects.load(std::memory_order_relaxed);
  S.Writes = Writes.load(std::memory_order_relaxed);
  S.WriteFailures = WriteFailures.load(std::memory_order_relaxed);
  S.BytesWritten = BytesWritten.load(std::memory_order_relaxed);
  if (DIR *D = opendir(Dir.c_str())) {
    while (struct dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (!isEntryName(Name))
        continue;
      struct stat St;
      if (stat((Dir + "/" + Name).c_str(), &St) == 0) {
        S.EntriesOnDisk += 1;
        S.BytesOnDisk += static_cast<uint64_t>(St.st_size);
      }
    }
    closedir(D);
  }
  return S;
}
