//===- pgg/NetClient.h - blocking client for the RTCG server ----*- C++ -*-===//
///
/// \file
/// A small blocking client for the NetProtocol server: connect, optional
/// version negotiation, pipelined request submission, and frame receive.
/// This is the reference client the loopback tests compare against the
/// in-process service, the load generator underneath bench/net_serve,
/// and the transport of the fuzzer's --net-connect mode. It is
/// deliberately synchronous — one FrameDecoder over one blocking socket —
/// because every caller wants determinism, not throughput tricks;
/// concurrency comes from running many clients.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_NETCLIENT_H
#define PECOMP_PGG_NETCLIENT_H

#include "pgg/NetProtocol.h"

#include <cstdint>
#include <string>

namespace pecomp {
namespace pgg {
namespace net {

class NetClient {
public:
  NetClient() = default;
  NetClient(NetClient &&O) noexcept { swap(O); }
  NetClient &operator=(NetClient &&O) noexcept {
    swap(O);
    return *this;
  }
  NetClient(const NetClient &) = delete;
  NetClient &operator=(const NetClient &) = delete;
  ~NetClient();

  /// \p RcvBufBytes, when nonzero, clamps SO_RCVBUF before connecting
  /// (it must be set pre-connect to cap the negotiated TCP window) —
  /// the backpressure tests use this to keep the kernel from absorbing
  /// the whole response volume.
  static Result<NetClient> connect(const std::string &Host, uint16_t Port,
                                   int RcvBufBytes = 0);

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Hello/HelloAck round trip; returns the negotiated version, or the
  /// server's classified rejection (BadVersion) as an error.
  Result<uint8_t> hello(uint8_t MinVersion = ProtocolVersion,
                        uint8_t MaxVersion = ProtocolVersion);

  /// Sends one Request frame without waiting (pipelining); returns the
  /// request id to correlate the response with.
  Result<uint64_t> send(uint32_t Tenant, const NetRequest &R);

  /// Writes raw bytes to the socket — the torn-frame and fuzz tests
  /// speak through this.
  Result<bool> sendRaw(const uint8_t *Data, size_t N);

  /// Blocks for the next complete frame (of any type). Stashed frames
  /// (set aside by receive() for other request ids) are replayed first.
  Result<Frame> receiveFrame();

  /// Blocks until the Response/ProtoError for \p RequestId arrives
  /// (frames for other ids are queued and replayed in arrival order for
  /// later receives) and reconstructs the service-level response.
  Result<RtcgResponse> receive(uint64_t RequestId);

  /// send() + receive(): one synchronous specialize-and-run call.
  Result<RtcgResponse> call(uint32_t Tenant, const NetRequest &R);

private:
  /// Reads the next frame from the socket, ignoring the stash.
  Result<Frame> readFrame();

  void swap(NetClient &O) {
    std::swap(Fd, O.Fd);
    std::swap(Decoder, O.Decoder);
    std::swap(NextId, O.NextId);
    std::swap(Stash, O.Stash);
  }

  int Fd = -1;
  FrameDecoder Decoder;
  uint64_t NextId = 1;
  /// Frames received while waiting for a different request id.
  std::vector<Frame> Stash;
};

} // namespace net
} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_NETCLIENT_H
