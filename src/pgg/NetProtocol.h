//===- pgg/NetProtocol.h - RTCG serving wire protocol -----------*- C++ -*-===//
///
/// \file
/// The length-prefixed binary protocol `pecompc serve --listen` speaks —
/// the byte layer between remote clients and the RtcgService worker pool.
/// Everything here is pure bytes-in/bytes-out (no sockets), so the same
/// codec is exercised by the server, the client, the unit tests, and the
/// malformed-frame fuzzer.
///
/// Every frame is a fixed 24-byte header followed by a payload:
///
///   offset  size  field
///   0       4     magic "PEC1" (0x31434550 as a little-endian u32)
///   4       1     protocol version (currently 1)
///   5       1     frame type (FrameType)
///   6       2     flags (response result bits; 0 elsewhere)
///   8       4     tenant id
///   12      8     request id (client-chosen correlator, echoed back)
///   20      4     payload length in bytes
///   24      ...   payload
///
/// All integers are little-endian. Responses may arrive in any order —
/// the request id is the correlator; a connection pipelines freely.
///
/// Frame types and payloads:
///
///   Hello      c->s  u8 min-version, u8 max-version — version negotiation
///   HelloAck   s->c  u8 chosen-version
///   Request    c->s  u16 division-len + bytes ('S'/'D' per slot; empty =
///                    the server's default division), u16 spec-arg count,
///                    then per arg u32 len + datum text ("_" = dynamic),
///                    u16 run-arg count, then per arg u32 len + datum text
///   Response   s->c  u8 status (0 ok, 1 trap, 2 error), u32 code
///                    (vm::TrapKind for traps, the classified
///                    service/store code for errors, else 0), u32 store
///                    code (nonzero = classified store degradation that
///                    did NOT fail the request), u32 len + value-or-error
///                    text, u32 len + store note. Header flags carry
///                    cache-hit/disk-hit/respecialized/guard-miss bits.
///   ProtoError s->c  u32 classified code (ServiceErrorCodeBase space:
///                    Overloaded shed, BadFrame, BadVersion,
///                    UnknownTenant), u32 len + message. Sent for
///                    requests the service never saw.
///
/// Framing errors (bad magic, a length prefix above the negotiated
/// maximum) poison the connection: the server sends a best-effort
/// ProtoError and closes — after garbage there is no trustworthy way to
/// find the next frame boundary. Malformed *payloads* inside a well-
/// framed request only fail that request.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_NETPROTOCOL_H
#define PECOMP_PGG_NETPROTOCOL_H

#include "pgg/RtcgService.h"
#include "support/Error.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pecomp {
namespace pgg {
namespace net {

constexpr uint32_t FrameMagic = 0x31434550; // "PEC1" in little-endian bytes
constexpr uint8_t ProtocolVersion = 1;
constexpr size_t FrameHeaderBytes = 24;
/// Default ceiling on one frame's payload; a length prefix above the
/// configured ceiling is a framing error (the prefix is untrusted input).
constexpr size_t DefaultMaxFrameBytes = 16u << 20;

enum class FrameType : uint8_t {
  Hello = 0,
  HelloAck = 1,
  Request = 2,
  Response = 3,
  ProtoError = 4,
};

/// Response header flag bits.
constexpr uint16_t RespCacheHit = 1u << 0;
constexpr uint16_t RespDiskHit = 1u << 1;
constexpr uint16_t RespRespecialized = 1u << 2;
constexpr uint16_t RespGuardMiss = 1u << 3;

struct FrameHeader {
  uint8_t Version = ProtocolVersion;
  FrameType Type = FrameType::Request;
  uint16_t Flags = 0;
  uint32_t Tenant = 0;
  uint64_t RequestId = 0;
  uint32_t PayloadLen = 0;
};

struct Frame {
  FrameHeader Header;
  std::vector<uint8_t> Payload;
};

/// A decoded Request payload (the program/entry are server-side state).
struct NetRequest {
  std::string Division; ///< empty = the server's default division
  std::vector<std::string> SpecArgs; ///< "_" marks a dynamic slot
  std::vector<std::string> RunArgs;
};

/// A decoded Response or ProtoError payload.
struct NetResponse {
  uint8_t Status = 0;   ///< 0 ok, 1 trap, 2 error
  uint32_t Code = 0;    ///< TrapKind / classified service or store code
  uint32_t StoreCode = 0;
  std::string Value;    ///< result datum text, or the error text
  std::string StoreNote;
  uint16_t Flags = 0;   ///< RespCacheHit | ... (copied from the header)
};

/// -- Encoding (always succeeds; output is a complete frame) -------------

std::vector<uint8_t> encodeHello(uint8_t MinVersion, uint8_t MaxVersion);
std::vector<uint8_t> encodeHelloAck(uint8_t ChosenVersion);
std::vector<uint8_t> encodeRequest(uint32_t Tenant, uint64_t RequestId,
                                   const NetRequest &R);
std::vector<uint8_t> encodeResponse(uint32_t Tenant, uint64_t RequestId,
                                    const RtcgResponse &R);
std::vector<uint8_t> encodeProtoError(uint32_t Tenant, uint64_t RequestId,
                                      uint32_t Code, std::string_view Text);

/// -- Payload decoding (bounds-checked; classified BadFrame on failure) --

Result<NetRequest> decodeRequestPayload(std::span<const uint8_t> Payload);
Result<NetResponse> decodeResponsePayload(std::span<const uint8_t> Payload);
Result<NetResponse> decodeProtoErrorPayload(std::span<const uint8_t> Payload);
/// Hello/HelloAck: returns {min, max} (HelloAck: {chosen, chosen}).
Result<std::pair<uint8_t, uint8_t>>
decodeHelloPayload(FrameType Type, std::span<const uint8_t> Payload);

/// Reconstructs the service-level response a NetResponse carries, so
/// tests can compare a network answer field-by-field against the
/// in-process RtcgService answer. Generation stats and the worker index
/// do not travel the wire and stay default.
RtcgResponse toRtcgResponse(const FrameHeader &H, const NetResponse &R);

/// Incremental frame parser over an untrusted byte stream. feed() bytes
/// as they arrive; next() yields complete frames until the buffer runs
/// dry (NeedMore) or the stream is unrecoverable (Error: bad magic, or a
/// payload length above the ceiling). After Error the decoder stays
/// poisoned — framing cannot be re-synchronized on a corrupt stream.
class FrameDecoder {
public:
  explicit FrameDecoder(size_t MaxFrameBytes = DefaultMaxFrameBytes)
      : MaxFrame(MaxFrameBytes) {}

  void feed(const uint8_t *Data, size_t N);

  enum class Status { NeedMore, Ready, Failed };
  Status next(Frame &Out);

  const Error &error() const { return Err; }
  /// Bytes buffered but not yet consumed by a complete frame.
  size_t pending() const { return Buf.size() - Pos; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  size_t MaxFrame;
  Error Err;
  bool Poisoned = false;
};

} // namespace net
} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_NETPROTOCOL_H
