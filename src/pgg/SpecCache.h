//===- pgg/SpecCache.h - Cross-run specialization code cache ----*- C++ -*-===//
///
/// \file
/// The cross-run, cross-thread memo table over *generating-extension
/// outputs*. The specializer's internal memoization (Sec. 4's "standard
/// [30,60]" table) lives for one specialization; a serving RTCG system
/// re-specializes the same static inputs across requests, so the win has
/// to persist. This cache stores each specialization's object code as an
/// immutable compiler::PortableProgram keyed on
///
///     (program fingerprint, BT signature, static-value fingerprint)
///
/// and hands it back as a sharable unit that relinks into any fresh
/// Machine/Heap (a cached variant serves many executions). Eviction is
/// LRU under a byte budget; the table is sharded by key hash so the
/// RtcgService's workers contend only per shard.
///
/// Counters mirror spec::SpecStats in spirit: where SpecStats describes
/// one generation (unfolds, memoized calls), CacheStats describes the
/// population of generations (hits, misses, evictions, retained bytes).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_PGG_SPECCACHE_H
#define PECOMP_PGG_SPECCACHE_H

#include "compiler/Link.h"
#include "spec/Specializer.h"
#include "support/CoverageMap.h"

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pecomp {
namespace pgg {

class DiskStore;

/// Stable 64-bit fingerprint (FNV-1a) of the program-side of a cache key:
/// source text, entry name, and requested division. Everything downstream
/// of these inputs (front end, BTA, effective division) is deterministic,
/// so they identify the generating extension.
uint64_t fingerprintProgram(std::string_view ProgramText,
                            std::string_view Entry,
                            std::string_view Division);

/// Mixes a tenant id into a program fingerprint, so two tenants
/// submitting byte-identical programs get disjoint cache keys (and
/// therefore disjoint disk-store entries — the mixed fingerprint is the
/// one the store records, keeping cache-fsck's recomputed names
/// consistent). Tenant 0 is the identity: single-tenant callers keep the
/// key space (and any existing persistent store) they always had.
uint64_t tenantFingerprint(uint64_t ProgramFp, uint32_t Tenant);

/// A fully resolved cache key. The static values are keyed by their
/// canonical external representation (vm::valueToString is injective on
/// the datum-like values that can be static), so structurally equal
/// inputs hit regardless of heap identity — including across runs.
struct SpecKey {
  uint64_t ProgramFp = 0;
  std::string BtSig;     ///< division signature, e.g. "SD"
  std::string StaticSig; ///< canonical writes of the static values
  uint64_t Hash = 0;     ///< precomputed over all of the above

  bool operator==(const SpecKey &O) const {
    return ProgramFp == O.ProgramFp && BtSig == O.BtSig &&
           StaticSig == O.StaticSig;
  }
};

/// Builds the key for one request. \p Args follows the
/// GeneratingExtension convention: engaged = static value, nullopt =
/// dynamic parameter (the BT signature is derived as S/D per slot).
SpecKey makeSpecKey(uint64_t ProgramFp,
                    std::span<const std::optional<vm::Value>> Args);

/// The hash makeSpecKey precomputes, as a standalone function: the disk
/// store names entry files by this value and cache-fsck recomputes it
/// from an entry's stored key fields to catch renamed/duplicated blobs.
uint64_t specKeyHash(uint64_t ProgramFp, std::string_view BtSig,
                     std::string_view StaticSig);

/// One cached specialization: the relinkable object code plus the
/// generation-time statistics (so a hit can still report what the
/// generation it short-circuits had cost).
struct CachedSpecialization {
  std::shared_ptr<const compiler::PortableProgram> Residual;
  Symbol Entry;
  spec::SpecStats Stats;
  size_t byteSize() const { return Residual ? Residual->byteSize() : 0; }
};

/// Per-tenant slice of the cache counters: the accounting the
/// multi-tenant server surfaces so an operator can see which tenant owns
/// the hits, the bytes, and the evictions. MaxBytes is the tenant's
/// configured partition budget (0 = no private ceiling).
struct TenantCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0; ///< evictions charged to this tenant's partition
  size_t Bytes = 0;       ///< currently retained for this tenant
  size_t Entries = 0;     ///< currently resident for this tenant
  size_t MaxBytes = 0;    ///< configured partition budget (0 = none)
};

/// Aggregate counters, surfaced next to spec::SpecStats by the service
/// and `pecompc --cache-stats`.
struct CacheStats {
  /// Memory-tier lookup episodes. Every lookup records itself and exactly
  /// one of Hits/Misses inside one shard-locked critical section, and
  /// stats() snapshots each shard under the same lock, so the invariant
  ///
  ///     Lookups == Hits + Misses
  ///
  /// holds in every snapshot, however many threads are mid-lookup.
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  /// The subset of Insertions that were disk-tier promotions (a verified
  /// disk hit copied into memory). Disk-served lookups still count as a
  /// memory Miss — the tiers keep separate books.
  uint64_t Promotions = 0;
  uint64_t Evictions = 0;
  size_t Bytes = 0;    ///< currently retained
  size_t Entries = 0;  ///< currently resident
  size_t MaxBytes = 0; ///< configured budget (0 = unlimited)

  /// Disk-tier counters (mirrors pgg::DiskStoreStats; meaningful only
  /// when HasDisk — the cache has a store attached).
  bool HasDisk = false;
  uint64_t DiskHits = 0;          ///< loaded, verified, and served
  uint64_t DiskMisses = 0;        ///< keys with no committed entry
  uint64_t DiskRejects = 0;       ///< classified load rejections
  uint64_t DiskVerifyRejects = 0; ///< the verify-on-load subset
  uint64_t DiskWrites = 0;        ///< entries committed
  uint64_t DiskWriteFailures = 0; ///< puts that could not commit
  uint64_t DiskBytesOnDisk = 0;   ///< committed bytes currently resident
  uint64_t DiskEntriesOnDisk = 0; ///< committed entries currently resident

  /// Per-tenant accounting (keyed by tenant id). Tenant 0 is the
  /// single-tenant default; report() prints per-tenant lines only when a
  /// nonzero tenant or a configured partition budget exists, so legacy
  /// single-tenant output is unchanged.
  std::map<uint32_t, TenantCacheStats> Tenants;

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0;
  }
  /// Multi-line human-readable rendering.
  std::string report() const;

  /// Folds "which cache behaviors have occurred" into \p M as
  /// CovCacheEvent features (hit / miss / insertion / eviction observed).
  /// Returns how many features were new.
  size_t addCoverage(support::CoverageMap &M) const;
};

/// Where a tiered lookup's answer came from, and how the disk tier
/// failed when it did. A nonzero DiskError never fails the lookup — the
/// caller just proceeds to cold specialization — but it is the signal
/// services surface distinctly from specialization traps.
struct LookupOutcome {
  bool MemoryHit = false;
  bool DiskHit = false;   ///< served (and promoted) from the disk store
  int DiskError = 0;      ///< classified Error::code() (StoreErrorCodeBase
                          ///< + pgg::StoreError); 0 = none. A plain miss
                          ///< (NotFound) is not recorded as an error.
  std::string DiskDetail; ///< description of the store failure
};

/// Sharded, byte-budgeted LRU cache of specializations. All methods are
/// thread safe; entries are immutable and shared out by shared_ptr, so an
/// eviction never invalidates a unit another thread is instantiating.
///
/// With a DiskStore attached the cache is two-tier: lookups fall through
/// memory to the store (verified loads are promoted into memory), and
/// inserts write through so later processes warm-start. Store failures of
/// any kind degrade to a miss.
class SpecCache {
public:
  /// \p MaxBytes of 0 means unlimited (no eviction). The budget is split
  /// evenly across \p Shards independent LRU lists.
  explicit SpecCache(size_t MaxBytes, size_t Shards = 8);

  /// Returns the cached specialization (refreshing its LRU position), or
  /// null on miss. Counts a hit or a miss. Memory tier only. \p Tenant
  /// attributes the lookup in the per-tenant books (0 = the single-tenant
  /// default).
  std::shared_ptr<const CachedSpecialization> lookup(const SpecKey &Key,
                                                     uint32_t Tenant = 0);

  /// Tiered lookup: memory first, then the attached disk store (if any).
  /// A disk hit has already survived checksums, deserialization, and the
  /// byte-code verifier, and is promoted into the memory tier. \p Out
  /// reports which tier answered and any classified store failure.
  std::shared_ptr<const CachedSpecialization>
  lookup(const SpecKey &Key, LookupOutcome &Out, uint32_t Tenant = 0);

  /// Configures tenant \p Tenant's partition: a private byte budget whose
  /// eviction pressure is confined to the tenant's own entries, so one
  /// tenant filling its partition can never evict another tenant's
  /// specializations. Not thread safe against concurrent use — configure
  /// before the cache is shared (service construction), like attachDisk.
  /// Operators should keep the partition budgets summing to at most the
  /// cache-wide budget; the cache-wide LRU remains the backstop either
  /// way.
  void setTenantBudget(uint32_t Tenant, size_t Bytes);

  /// Attaches the persistent tier. Not thread safe against concurrent
  /// lookups — attach before the cache is shared (service construction).
  void attachDisk(std::shared_ptr<DiskStore> Store);
  DiskStore *disk() const { return Disk.get(); }

  /// Inserts (or replaces) \p Value, then evicts least-recently-used
  /// entries from the shard until it is back under budget. An entry
  /// larger than a whole shard budget is inserted and immediately
  /// evicted — the insert still counts, so the stats expose the thrash.
  /// Writes through to the attached disk store (a failed put only costs
  /// future processes the warm start; it never unwinds the insert).
  /// \p Tenant charges the entry's bytes to that tenant's partition.
  void insert(const SpecKey &Key,
              std::shared_ptr<const CachedSpecialization> Value,
              uint32_t Tenant = 0);

  /// Drops every entry (stats counters are preserved).
  void clear();

  CacheStats stats() const;
  size_t maxBytes() const { return MaxBytes; }

private:
  struct KeyHash {
    size_t operator()(const SpecKey &K) const {
      return static_cast<size_t>(K.Hash);
    }
  };
  struct Entry {
    SpecKey Key;
    std::shared_ptr<const CachedSpecialization> Value;
    size_t Bytes;
    uint32_t Tenant;
  };
  /// Per-shard slice of one tenant's books (bytes/entries are resident
  /// counts, the rest are cumulative counters), summed by stats().
  struct TenantShardStats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    size_t Bytes = 0;
    size_t Entries = 0;
  };
  struct Shard {
    mutable std::mutex M;
    std::list<Entry> Lru; ///< front = most recent
    std::unordered_map<SpecKey, std::list<Entry>::iterator, KeyHash> Map;
    size_t Bytes = 0;
    // Counters live under the shard mutex rather than as global atomics:
    // a lookup's "one lookup, one outcome" pair commits atomically with
    // respect to stats(), which snapshots each shard under the same lock.
    // Global relaxed atomics let a reader observe the lookup bump without
    // its outcome (Hits + Misses != Lookups) — the incoherence
    // `--cache-stats` used to show under concurrent serving.
    uint64_t Lookups = 0;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Promotions = 0;
    uint64_t Evictions = 0;
    /// Per-tenant books for this shard (tenant 0 included).
    std::map<uint32_t, TenantShardStats> Tenants;
  };

  Shard &shardFor(const SpecKey &Key) {
    return *Shards[Key.Hash % Shards.size()];
  }
  void evictOverBudgetLocked(Shard &S);
  void evictTenantOverBudgetLocked(Shard &S, uint32_t Tenant);
  void removeEntryLocked(Shard &S, std::list<Entry>::iterator It);
  void insertMemory(const SpecKey &Key,
                    std::shared_ptr<const CachedSpecialization> Value,
                    bool Promotion, uint32_t Tenant);

  size_t MaxBytes;
  size_t ShardBudget; ///< MaxBytes / shard count (0 = unlimited)
  std::vector<std::unique_ptr<Shard>> Shards;
  /// Tenant id -> {whole-cache budget, per-shard slice}. Immutable once
  /// the cache is shared (setTenantBudget is construction-time only).
  std::map<uint32_t, std::pair<size_t, size_t>> TenantBudgets;
  std::shared_ptr<DiskStore> Disk; ///< persistent tier (may be null)
};

} // namespace pgg
} // namespace pecomp

#endif // PECOMP_PGG_SPECCACHE_H
