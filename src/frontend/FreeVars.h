//===- frontend/FreeVars.h - Free-variable analysis -------------*- C++ -*-===//
///
/// \file
/// Free variables of Core Scheme expressions, in deterministic first-
/// occurrence order. Used by assignment elimination, lambda lifting, the
/// compilers (closure capture lists), and the specializer (the paper's
/// Sec. 6.4 duality: the lambda compilator needs the names of its free
/// variables).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_FREEVARS_H
#define PECOMP_FRONTEND_FREEVARS_H

#include "syntax/Expr.h"

#include <unordered_set>
#include <vector>

namespace pecomp {

/// Returns the free variables of \p E in first-occurrence order, excluding
/// any symbols in \p Exclude (typically the top-level definition names,
/// which are globals rather than closure-captured).
std::vector<Symbol>
freeVars(const Expr *E,
         const std::unordered_set<Symbol> &Exclude = {});

/// Convenience set membership form.
std::unordered_set<Symbol>
freeVarSet(const Expr *E, const std::unordered_set<Symbol> &Exclude = {});

} // namespace pecomp

#endif // PECOMP_FRONTEND_FREEVARS_H
