//===- frontend/AssignElim.h - Assignment elimination -----------*- C++ -*-===//
///
/// \file
/// Removes set! (one of the front-end transformations the paper's
/// specializer performs, Sec. 4). Every variable that is the target of an
/// assignment is turned into a box at its binding site; references become
/// box-ref and assignments become box-set!. The output is assignment-free
/// Core Scheme.
///
/// Precondition: the input is alpha-renamed (binders are unique), so "is
/// assigned" is a property of the symbol itself.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_ASSIGNELIM_H
#define PECOMP_FRONTEND_ASSIGNELIM_H

#include "support/Error.h"
#include "syntax/Expr.h"

namespace pecomp {

/// Eliminates assignments in \p E. Fails if a set! targets a variable that
/// is not locally bound (globals are immutable).
Result<const Expr *> eliminateAssignments(const Expr *E, ExprFactory &F);

/// Eliminates assignments in every definition body.
Result<Program> eliminateAssignments(const Program &P, ExprFactory &F);

} // namespace pecomp

#endif // PECOMP_FRONTEND_ASSIGNELIM_H
