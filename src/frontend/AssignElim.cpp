//===- frontend/AssignElim.cpp - Assignment elimination -------------------===//

#include "frontend/AssignElim.h"

#include "support/Casting.h"

#include <unordered_set>

using namespace pecomp;

namespace {

/// Collects the set of assigned variables and the set of bound variables.
void collect(const Expr *E, std::unordered_set<Symbol> &Assigned,
             std::unordered_set<Symbol> &BoundAnywhere) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    for (Symbol P : L->params())
      BoundAnywhere.insert(P);
    collect(L->body(), Assigned, BoundAnywhere);
    return;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    BoundAnywhere.insert(L->name());
    collect(L->init(), Assigned, BoundAnywhere);
    collect(L->body(), Assigned, BoundAnywhere);
    return;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    collect(I->test(), Assigned, BoundAnywhere);
    collect(I->thenBranch(), Assigned, BoundAnywhere);
    collect(I->elseBranch(), Assigned, BoundAnywhere);
    return;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    collect(A->callee(), Assigned, BoundAnywhere);
    for (const Expr *Arg : A->args())
      collect(Arg, Assigned, BoundAnywhere);
    return;
  }
  case Expr::Kind::PrimApp:
    for (const Expr *Arg : cast<PrimAppExpr>(E)->args())
      collect(Arg, Assigned, BoundAnywhere);
    return;
  case Expr::Kind::Set: {
    const auto *S = cast<SetExpr>(E);
    Assigned.insert(S->name());
    collect(S->value(), Assigned, BoundAnywhere);
    return;
  }
  }
}

class Eliminator {
public:
  Eliminator(ExprFactory &F, const std::unordered_set<Symbol> &Boxed)
      : F(F), Boxed(Boxed) {}

  const Expr *rewrite(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Const:
      return E;
    case Expr::Kind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      if (Boxed.count(Name))
        return F.primApp(PrimOp::BoxRef, {E}, E->loc());
      return E;
    }
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      const Expr *Body = rewrite(L->body());
      // Boxed parameters are rebound to boxes on entry.
      for (size_t I = L->params().size(); I-- > 0;) {
        Symbol P = L->params()[I];
        if (Boxed.count(P))
          Body = F.let(P,
                       F.primApp(PrimOp::MakeBox, {F.var(P, E->loc())},
                                 E->loc()),
                       Body, E->loc());
      }
      return F.lambda(L->params(), Body, E->loc());
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      const Expr *Init = rewrite(L->init());
      const Expr *Body = rewrite(L->body());
      if (Boxed.count(L->name()))
        Init = F.primApp(PrimOp::MakeBox, {Init}, E->loc());
      return F.let(L->name(), Init, Body, E->loc());
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      return F.ifExpr(rewrite(I->test()), rewrite(I->thenBranch()),
                      rewrite(I->elseBranch()), E->loc());
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : A->args())
        Args.push_back(rewrite(Arg));
      return F.app(rewrite(A->callee()), std::move(Args), E->loc());
    }
    case Expr::Kind::PrimApp: {
      const auto *P = cast<PrimAppExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : P->args())
        Args.push_back(rewrite(Arg));
      return F.primApp(P->op(), std::move(Args), E->loc());
    }
    case Expr::Kind::Set: {
      const auto *S = cast<SetExpr>(E);
      return F.primApp(PrimOp::BoxSet,
                       {F.var(S->name(), E->loc()), rewrite(S->value())},
                       E->loc());
    }
    }
    return E;
  }

private:
  ExprFactory &F;
  const std::unordered_set<Symbol> &Boxed;
};

Result<const Expr *> run(const Expr *E, ExprFactory &F) {
  std::unordered_set<Symbol> Assigned, BoundAnywhere;
  collect(E, Assigned, BoundAnywhere);
  for (Symbol S : Assigned)
    if (!BoundAnywhere.count(S))
      return makeError("set! of unbound or global variable '" + S.str() + "'");
  if (Assigned.empty())
    return E;
  Eliminator El(F, Assigned);
  return El.rewrite(E);
}

} // namespace

Result<const Expr *> pecomp::eliminateAssignments(const Expr *E,
                                                  ExprFactory &F) {
  return run(E, F);
}

Result<Program> pecomp::eliminateAssignments(const Program &P,
                                             ExprFactory &F) {
  Program Out;
  for (const Definition &D : P.Defs) {
    Result<const Expr *> Fn = run(D.Fn, F);
    if (!Fn)
      return Fn.takeError();
    Out.Defs.push_back({D.Name, cast<LambdaExpr>(*Fn)});
  }
  return Out;
}
