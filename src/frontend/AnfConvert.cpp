//===- frontend/AnfConvert.cpp - CS to A-normal form ----------------------===//

#include "frontend/AnfConvert.h"

#include "support/Casting.h"

#include <functional>

using namespace pecomp;

namespace {

class Normalizer {
public:
  explicit Normalizer(ExprFactory &F) : F(F) {}

  /// A context expecting the value of the expression being normalized.
  /// Tail contexts place the expression itself in tail position; non-tail
  /// contexts receive a *trivial* expression naming the value.
  struct Context {
    bool IsTail;
    std::function<const Expr *(const Expr *Trivial)> Use;
  };

  const Expr *normTail(const Expr *E) {
    return norm(E, Context{/*IsTail=*/true, nullptr});
  }

private:
  /// Normalizes \p E and delivers its value to \p K. In a tail context the
  /// result expression computes E's value in tail position; otherwise
  /// K.Use is applied to a trivial expression denoting the value.
  const Expr *norm(const Expr *E, const Context &K) {
    switch (E->kind()) {
    case Expr::Kind::Const:
    case Expr::Kind::Var:
      return deliver(E, K);
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      return deliver(F.lambda(L->params(), normTail(L->body()), E->loc()), K);
    }
    case Expr::Kind::Let: {
      // (let (x I) B): I's value is named x; B continues with K.
      const auto *L = cast<LetExpr>(E);
      return normNamed(L->init(), L->name(), [&](const Expr *) {
        return norm(L->body(), K);
      });
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      return normArg(I->test(), [&](const Expr *Test) {
        if (K.IsTail)
          return static_cast<const Expr *>(
              F.ifExpr(Test, norm(I->thenBranch(), K),
                       norm(I->elseBranch(), K), I->loc()));
        // Non-tail if: bind the context as a join-point lambda so each
        // branch can tail-call it, keeping growth linear.
        Symbol Join = Symbol::fresh("join");
        Symbol Res = Symbol::fresh("res");
        auto CallJoin = [&](const Expr *Branch) {
          return normArg(Branch, [&](const Expr *V) {
            return static_cast<const Expr *>(
                F.app(F.var(Join, I->loc()), {V}, I->loc()));
          });
        };
        const Expr *JoinFn = F.lambda(
            {Res}, K.Use(F.var(Res, I->loc())), I->loc());
        return static_cast<const Expr *>(F.let(
            Join, JoinFn,
            F.ifExpr(Test, CallJoin(I->thenBranch()),
                     CallJoin(I->elseBranch()), I->loc()),
            I->loc()));
      });
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      return normArg(A->callee(), [&](const Expr *Callee) {
        return normArgs(A->args(), 0, {}, [&](std::vector<const Expr *> Args) {
          return deliverSerious(F.app(Callee, std::move(Args), E->loc()), K);
        });
      });
    }
    case Expr::Kind::PrimApp: {
      const auto *P = cast<PrimAppExpr>(E);
      return normArgs(P->args(), 0, {}, [&](std::vector<const Expr *> Args) {
        return deliverSerious(F.primApp(P->op(), std::move(Args), E->loc()),
                              K);
      });
    }
    case Expr::Kind::Set:
      assert(false && "set! must be eliminated before ANF conversion");
      return E;
    }
    return E;
  }

  /// Delivers a trivial expression to the context.
  const Expr *deliver(const Expr *Trivial, const Context &K) {
    assert(Trivial->isTrivial());
    return K.IsTail ? Trivial : K.Use(Trivial);
  }

  /// Delivers a serious expression (call / primitive application with
  /// trivial parts): in tail position it stands alone; otherwise its value
  /// is let-bound to a fresh name.
  const Expr *deliverSerious(const Expr *Serious, const Context &K) {
    if (K.IsTail)
      return Serious;
    Symbol T = Symbol::fresh("t");
    return F.let(T, Serious, K.Use(F.var(T, Serious->loc())), Serious->loc());
  }

  /// Normalizes \p E so its value is available as a trivial expression.
  const Expr *
  normArg(const Expr *E,
          const std::function<const Expr *(const Expr *)> &Use) {
    return norm(E, Context{/*IsTail=*/false, Use});
  }

  /// Normalizes \p E and binds its value to the *given* name (for source
  /// lets, preserving the user's variable).
  const Expr *
  normNamed(const Expr *E, Symbol Name,
            const std::function<const Expr *(const Expr *)> &Body) {
    // Calls and primitive applications become the let's RHS directly.
    if (const auto *A = dyn_cast<AppExpr>(E)) {
      return normArg(A->callee(), [&](const Expr *Callee) {
        return normArgs(A->args(), 0, {}, [&](std::vector<const Expr *> Args) {
          return static_cast<const Expr *>(
              F.let(Name, F.app(Callee, std::move(Args), E->loc()),
                    Body(nullptr), E->loc()));
        });
      });
    }
    if (const auto *P = dyn_cast<PrimAppExpr>(E)) {
      return normArgs(P->args(), 0, {}, [&](std::vector<const Expr *> Args) {
        return static_cast<const Expr *>(
            F.let(Name, F.primApp(P->op(), std::move(Args), E->loc()),
                  Body(nullptr), E->loc()));
      });
    }
    // Trivial and control-flow inits flow through the generic path, which
    // delivers a trivial expression naming the value.
    return normArg(E, [&](const Expr *V) {
      return static_cast<const Expr *>(F.let(Name, V, Body(V), E->loc()));
    });
  }

  const Expr *normArgs(
      const std::vector<const Expr *> &Args, size_t Index,
      std::vector<const Expr *> Acc,
      const std::function<const Expr *(std::vector<const Expr *>)> &Done) {
    if (Index == Args.size())
      return Done(std::move(Acc));
    return normArg(Args[Index], [&](const Expr *V) {
      std::vector<const Expr *> Next = Acc;
      Next.push_back(V);
      return normArgs(Args, Index + 1, std::move(Next), Done);
    });
  }

  ExprFactory &F;
};

} // namespace

const Expr *pecomp::anfConvert(const Expr *E, ExprFactory &F) {
  Normalizer N(F);
  return N.normTail(E);
}

Program pecomp::anfConvert(const Program &P, ExprFactory &F) {
  Program Out;
  for (const Definition &D : P.Defs) {
    Normalizer N(F);
    const Expr *Body = N.normTail(D.Fn->body());
    Out.Defs.push_back({D.Name, F.lambda(D.Fn->params(), Body, D.Fn->loc())});
  }
  return Out;
}
