//===- frontend/Alpha.cpp - Alpha renaming --------------------------------===//

#include "frontend/Alpha.h"

#include "support/Casting.h"

#include <unordered_map>

using namespace pecomp;

namespace {

class Renamer {
public:
  explicit Renamer(ExprFactory &F) : F(F) {}

  const Expr *rename(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Const:
      return E;
    case Expr::Kind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      Symbol New = lookup(Name);
      return New == Name ? E : F.var(New, E->loc());
    }
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      Frame Saved = pushParams(L->params());
      const Expr *Body = rename(L->body());
      popParams(Saved);
      return F.lambda(Saved.NewNames, Body, E->loc());
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      const Expr *Init = rename(L->init());
      Frame Saved = pushParams({L->name()});
      const Expr *Body = rename(L->body());
      popParams(Saved);
      return F.let(Saved.NewNames[0], Init, Body, E->loc());
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      const Expr *Test = rename(I->test());
      const Expr *Then = rename(I->thenBranch());
      const Expr *Else = rename(I->elseBranch());
      return F.ifExpr(Test, Then, Else, E->loc());
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      const Expr *Callee = rename(A->callee());
      std::vector<const Expr *> Args;
      for (const Expr *Arg : A->args())
        Args.push_back(rename(Arg));
      return F.app(Callee, std::move(Args), E->loc());
    }
    case Expr::Kind::PrimApp: {
      const auto *P = cast<PrimAppExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : P->args())
        Args.push_back(rename(Arg));
      return F.primApp(P->op(), std::move(Args), E->loc());
    }
    case Expr::Kind::Set: {
      const auto *S = cast<SetExpr>(E);
      return F.set(lookup(S->name()), rename(S->value()), E->loc());
    }
    }
    return E;
  }

private:
  struct Frame {
    std::vector<Symbol> OldNames;
    std::vector<Symbol> NewNames;
    std::vector<bool> HadPrevious;
    std::vector<Symbol> Previous;
  };

  Symbol lookup(Symbol Name) const {
    auto It = Env.find(Name);
    return It == Env.end() ? Name : It->second;
  }

  Frame pushParams(const std::vector<Symbol> &Params) {
    Frame Saved;
    for (Symbol P : Params) {
      Symbol New = Symbol::fresh(P.str());
      Saved.OldNames.push_back(P);
      Saved.NewNames.push_back(New);
      auto It = Env.find(P);
      Saved.HadPrevious.push_back(It != Env.end());
      Saved.Previous.push_back(It != Env.end() ? It->second : Symbol());
      Env[P] = New;
    }
    return Saved;
  }

  void popParams(const Frame &Saved) {
    for (size_t I = Saved.OldNames.size(); I-- > 0;) {
      if (Saved.HadPrevious[I])
        Env[Saved.OldNames[I]] = Saved.Previous[I];
      else
        Env.erase(Saved.OldNames[I]);
    }
  }

  ExprFactory &F;
  std::unordered_map<Symbol, Symbol> Env;
};

} // namespace

const Expr *pecomp::alphaRename(const Expr *E, ExprFactory &F) {
  Renamer R(F);
  return R.rename(E);
}

Program pecomp::alphaRename(const Program &P, ExprFactory &F) {
  Program Out;
  for (const Definition &D : P.Defs) {
    Renamer R(F);
    const Expr *Fn = R.rename(D.Fn);
    Out.Defs.push_back({D.Name, cast<LambdaExpr>(Fn)});
  }
  return Out;
}
