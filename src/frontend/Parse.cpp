//===- frontend/Parse.cpp - Surface syntax to Core Scheme -----------------===//

#include "frontend/Parse.h"

#include "sexp/Reader.h"
#include "sexp/WellKnown.h"
#include "support/Casting.h"

#include <unordered_set>

using namespace pecomp;

namespace {

class Parser {
public:
  explicit Parser(ExprFactory &F) : F(F) {
    for (const char *K :
         {"define", "lambda", "let", "let*", "letrec", "if", "cond", "else",
          "and", "or", "begin", "when", "unless", "quote", "set!", "list"})
      Keywords.insert(Symbol::intern(K));
  }

  Result<const Expr *> parse(const Datum *D) {
    switch (D->kind()) {
    case Datum::Kind::Fixnum:
    case Datum::Kind::Boolean:
    case Datum::Kind::String:
    case Datum::Kind::Char:
      return asExpr(F.constant(D, D->loc()));
    case Datum::Kind::Symbol:
      return parseVariable(cast<SymbolDatum>(D)->symbol(), D->loc());
    case Datum::Kind::Nil:
      return fail("() is not an expression", D);
    case Datum::Kind::Pair:
      return parseForm(D);
    }
    return fail("unknown datum", D);
  }

  Result<Program> parseProgram(const std::vector<const Datum *> &Forms) {
    Program P;
    std::unordered_set<Symbol> Names;
    for (const Datum *Form : Forms) {
      Result<Definition> D = parseDefine(Form);
      if (!D)
        return D.takeError();
      if (!Names.insert(D->Name).second)
        return Error("duplicate definition of '" + D->Name.str() + "'",
                     Form->loc());
      P.Defs.push_back(*D);
    }
    return P;
  }

private:
  // -- Helpers ------------------------------------------------------------

  static Result<const Expr *> asExpr(const Expr *E) { return E; }

  Error fail(std::string Message, const Datum *At) {
    return Error(std::move(Message), At->loc());
  }

  bool isKeyword(Symbol S) const { return Keywords.count(S) != 0; }

  bool isBound(Symbol S) const {
    for (auto It = Scopes.rbegin(), E = Scopes.rend(); It != E; ++It)
      if (It->count(S))
        return true;
    return Globals.count(S) != 0;
  }

  class ScopeGuard {
  public:
    ScopeGuard(Parser &P, const std::vector<Symbol> &Names) : P(P) {
      P.Scopes.emplace_back(Names.begin(), Names.end());
    }
    ~ScopeGuard() { P.Scopes.pop_back(); }

  private:
    Parser &P;
  };

  Result<Symbol> bindableName(const Datum *D) {
    const auto *S = dyn_cast<SymbolDatum>(D);
    if (!S)
      return fail("expected an identifier, found: " + D->write(), D);
    if (isKeyword(S->symbol()))
      return fail("cannot bind keyword '" + S->symbol().str() + "'", D);
    return S->symbol();
  }

  // -- Variables and primitives -------------------------------------------

  Result<const Expr *> parseVariable(Symbol Name, SourceLoc Loc) {
    if (isKeyword(Name))
      return Error("keyword '" + Name.str() + "' used as an expression", Loc);
    if (!isBound(Name)) {
      // A first-class reference to a primitive eta-expands so that later
      // stages only meet primitives in operator position.
      if (std::optional<PrimOp> Op = primByName(Name)) {
        std::vector<Symbol> Params;
        std::vector<const Expr *> Args;
        for (unsigned I = 0, N = primArity(*Op); I != N; ++I) {
          Symbol P = Symbol::fresh("eta");
          Params.push_back(P);
          Args.push_back(F.var(P, Loc));
        }
        return asExpr(F.lambda(std::move(Params),
                               F.primApp(*Op, std::move(Args), Loc), Loc));
      }
    }
    return asExpr(F.var(Name, Loc));
  }

  // -- Compound forms ------------------------------------------------------

  Result<const Expr *> parseForm(const Datum *D) {
    std::vector<const Datum *> Items;
    if (!listElements(D, Items))
      return fail("improper list in expression position", D);
    assert(!Items.empty() && "pairs always have at least one element");

    if (const auto *Head = dyn_cast<SymbolDatum>(Items[0])) {
      Symbol H = Head->symbol();
      if (isKeyword(H) || (!isBound(H) && primByName(H))) {
        if (H == Symbol::intern("quote"))
          return parseQuote(D, Items);
        if (H == Symbol::intern("lambda"))
          return parseLambda(D, Items);
        if (H == Symbol::intern("let"))
          return parseLet(D, Items);
        if (H == Symbol::intern("let*"))
          return parseLetStar(D, Items);
        if (H == Symbol::intern("letrec"))
          return parseLetrec(D, Items);
        if (H == Symbol::intern("if"))
          return parseIf(D, Items);
        if (H == Symbol::intern("cond"))
          return parseCond(D, Items);
        if (H == Symbol::intern("and"))
          return parseAnd(D, Items);
        if (H == Symbol::intern("or"))
          return parseOr(D, Items);
        if (H == Symbol::intern("begin"))
          return parseBegin(D, Items);
        if (H == Symbol::intern("when") || H == Symbol::intern("unless"))
          return parseWhenUnless(D, Items, H == Symbol::intern("when"));
        if (H == Symbol::intern("set!"))
          return parseSet(D, Items);
        if (H == Symbol::intern("list"))
          return parseList(D, Items);
        if (H == Symbol::intern("define") || H == Symbol::intern("else"))
          return fail("'" + H.str() + "' not allowed here", D);
        if (std::optional<PrimOp> Op = primByName(H))
          return parsePrimApp(D, Items, *Op);
      }
    }

    // Ordinary application.
    if (Items.size() > 256)
      return fail("more than 255 arguments (byte-code arity limit)", D);
    Result<const Expr *> Callee = parse(Items[0]);
    if (!Callee)
      return Callee;
    std::vector<const Expr *> Args;
    for (size_t I = 1; I != Items.size(); ++I) {
      Result<const Expr *> Arg = parse(Items[I]);
      if (!Arg)
        return Arg;
      Args.push_back(*Arg);
    }
    return asExpr(F.app(*Callee, std::move(Args), D->loc()));
  }

  Result<const Expr *> parseQuote(const Datum *D,
                                  const std::vector<const Datum *> &Items) {
    if (Items.size() != 2)
      return fail("quote takes exactly one argument", D);
    return asExpr(F.constant(Items[1], D->loc()));
  }

  Result<std::vector<Symbol>> parseParams(const Datum *ParamList) {
    std::vector<const Datum *> ParamItems;
    if (!listElements(ParamList, ParamItems))
      return fail("expected a parameter list", ParamList);
    if (ParamItems.size() > 255)
      return fail("more than 255 parameters (byte-code arity limit)",
                  ParamList);
    std::vector<Symbol> Params;
    std::unordered_set<Symbol> Seen;
    for (const Datum *PD : ParamItems) {
      Result<Symbol> Name = bindableName(PD);
      if (!Name)
        return Name.takeError();
      if (!Seen.insert(*Name).second)
        return fail("duplicate parameter '" + Name->str() + "'", PD);
      Params.push_back(*Name);
    }
    return Params;
  }

  Result<const Expr *> parseBody(const Datum *D,
                                 const std::vector<const Datum *> &Items,
                                 size_t From) {
    if (From >= Items.size())
      return fail("empty body", D);
    // Multi-expression bodies are an implicit begin.
    return parseSequence(D, Items, From);
  }

  Result<const Expr *> parseSequence(const Datum *D,
                                     const std::vector<const Datum *> &Items,
                                     size_t From) {
    Result<const Expr *> Last = parse(Items[From]);
    if (!Last || From + 1 == Items.size())
      return Last;
    Result<const Expr *> Rest = parseSequence(D, Items, From + 1);
    if (!Rest)
      return Rest;
    return asExpr(F.let(Symbol::fresh("ignored"), *Last, *Rest, D->loc()));
  }

  Result<const Expr *> parseLambda(const Datum *D,
                                   const std::vector<const Datum *> &Items) {
    if (Items.size() < 3)
      return fail("lambda needs a parameter list and a body", D);
    Result<std::vector<Symbol>> Params = parseParams(Items[1]);
    if (!Params)
      return Params.takeError();
    ScopeGuard Guard(*this, *Params);
    Result<const Expr *> Body = parseBody(D, Items, 2);
    if (!Body)
      return Body;
    return asExpr(F.lambda(std::move(*Params), *Body, D->loc()));
  }

  struct Binding {
    Symbol Name;
    const Datum *Init;
  };

  Result<std::vector<Binding>> parseBindings(const Datum *BindingList) {
    std::vector<const Datum *> Items;
    if (!listElements(BindingList, Items))
      return fail("expected a binding list", BindingList);
    std::vector<Binding> Bindings;
    for (const Datum *BD : Items) {
      std::vector<const Datum *> Parts;
      if (!listElements(BD, Parts) || Parts.size() != 2)
        return fail("binding must have the form (name init)", BD);
      Result<Symbol> Name = bindableName(Parts[0]);
      if (!Name)
        return Name.takeError();
      Bindings.push_back({*Name, Parts[1]});
    }
    return Bindings;
  }

  Result<const Expr *> parseLet(const Datum *D,
                                const std::vector<const Datum *> &Items) {
    if (Items.size() < 3)
      return fail("let needs bindings and a body", D);
    // Core Scheme single-binding form (Fig. 1), as the printer emits it:
    // (let (x init) body).
    if (Items[1]->isPair() &&
        isa<SymbolDatum>(cast<PairDatum>(Items[1])->car())) {
      std::vector<const Datum *> Parts;
      if (!listElements(Items[1], Parts) || Parts.size() != 2)
        return fail("core let binding must have the form (name init)",
                    Items[1]);
      Result<Symbol> Name = bindableName(Parts[0]);
      if (!Name)
        return Name.takeError();
      Result<const Expr *> Init = parse(Parts[1]);
      if (!Init)
        return Init;
      std::vector<Symbol> Names = {*Name};
      ScopeGuard Guard(*this, Names);
      Result<const Expr *> Body = parseBody(D, Items, 2);
      if (!Body)
        return Body;
      return asExpr(F.let(*Name, *Init, *Body, D->loc()));
    }
    Result<std::vector<Binding>> Bindings = parseBindings(Items[1]);
    if (!Bindings)
      return Bindings.takeError();

    // Single binding maps to the core let; multiple bindings desugar to an
    // immediately applied lambda so initializers see only the outer scope.
    if (Bindings->size() == 1) {
      Result<const Expr *> Init = parse((*Bindings)[0].Init);
      if (!Init)
        return Init;
      std::vector<Symbol> Names = {(*Bindings)[0].Name};
      ScopeGuard Guard(*this, Names);
      Result<const Expr *> Body = parseBody(D, Items, 2);
      if (!Body)
        return Body;
      return asExpr(F.let(Names[0], *Init, *Body, D->loc()));
    }

    std::vector<Symbol> Names;
    std::vector<const Expr *> Inits;
    for (const Binding &B : *Bindings) {
      Result<const Expr *> Init = parse(B.Init);
      if (!Init)
        return Init;
      Names.push_back(B.Name);
      Inits.push_back(*Init);
    }
    ScopeGuard Guard(*this, Names);
    Result<const Expr *> Body = parseBody(D, Items, 2);
    if (!Body)
      return Body;
    return asExpr(F.app(F.lambda(std::move(Names), *Body, D->loc()),
                        std::move(Inits), D->loc()));
  }

  Result<const Expr *> parseLetStar(const Datum *D,
                                    const std::vector<const Datum *> &Items) {
    if (Items.size() < 3)
      return fail("let* needs bindings and a body", D);
    Result<std::vector<Binding>> Bindings = parseBindings(Items[1]);
    if (!Bindings)
      return Bindings.takeError();
    return parseLetStarRest(D, Items, *Bindings, 0);
  }

  Result<const Expr *>
  parseLetStarRest(const Datum *D, const std::vector<const Datum *> &Items,
                   const std::vector<Binding> &Bindings, size_t Index) {
    if (Index == Bindings.size())
      return parseBody(D, Items, 2);
    Result<const Expr *> Init = parse(Bindings[Index].Init);
    if (!Init)
      return Init;
    std::vector<Symbol> Names = {Bindings[Index].Name};
    ScopeGuard Guard(*this, Names);
    Result<const Expr *> Rest = parseLetStarRest(D, Items, Bindings, Index + 1);
    if (!Rest)
      return Rest;
    return asExpr(F.let(Names[0], *Init, *Rest, D->loc()));
  }

  /// (letrec ((f e) ...) body) desugars to assignments over placeholder
  /// bindings; AssignElim later turns the assigned variables into boxes.
  Result<const Expr *> parseLetrec(const Datum *D,
                                   const std::vector<const Datum *> &Items) {
    if (Items.size() < 3)
      return fail("letrec needs bindings and a body", D);
    Result<std::vector<Binding>> Bindings = parseBindings(Items[1]);
    if (!Bindings)
      return Bindings.takeError();

    std::vector<Symbol> Names;
    for (const Binding &B : *Bindings)
      Names.push_back(B.Name);
    ScopeGuard Guard(*this, Names);

    std::vector<const Expr *> Inits;
    for (const Binding &B : *Bindings) {
      Result<const Expr *> Init = parse(B.Init);
      if (!Init)
        return Init;
      Inits.push_back(*Init);
    }
    Result<const Expr *> Body = parseBody(D, Items, 2);
    if (!Body)
      return Body;

    // (let (f1 #f) ... (let (fn #f) (set! f1 e1) ... body))
    const Expr *Acc = *Body;
    for (size_t I = Bindings->size(); I-- > 0;)
      Acc = F.let(Symbol::fresh("ignored"), F.set(Names[I], Inits[I], D->loc()),
                  Acc, D->loc());
    const Datum *False = wellknown::falseDatum();
    for (size_t I = Names.size(); I-- > 0;)
      Acc = F.let(Names[I], F.constant(False, D->loc()), Acc, D->loc());
    return asExpr(Acc);
  }

  Result<const Expr *> parseIf(const Datum *D,
                               const std::vector<const Datum *> &Items) {
    if (Items.size() != 4)
      return fail("if takes a test, a consequent, and an alternative", D);
    Result<const Expr *> Test = parse(Items[1]);
    if (!Test)
      return Test;
    Result<const Expr *> Then = parse(Items[2]);
    if (!Then)
      return Then;
    Result<const Expr *> Else = parse(Items[3]);
    if (!Else)
      return Else;
    return asExpr(F.ifExpr(*Test, *Then, *Else, D->loc()));
  }

  Result<const Expr *> parseCond(const Datum *D,
                                 const std::vector<const Datum *> &Items) {
    if (Items.size() < 2)
      return fail("cond needs at least one clause", D);
    return parseCondClauses(D, Items, 1);
  }

  Result<const Expr *> parseCondClauses(const Datum *D,
                                        const std::vector<const Datum *> &Items,
                                        size_t Index) {
    if (Index == Items.size())
      return asExpr(
          F.primApp(PrimOp::Error,
                    {F.constant(makeCondFellThrough(), D->loc())}, D->loc()));
    std::vector<const Datum *> Clause;
    if (!listElements(Items[Index], Clause) || Clause.size() < 2)
      return fail("cond clause must have the form (test body ...)", Items[Index]);
    const auto *TestSym = dyn_cast<SymbolDatum>(Clause[0]);
    if (TestSym && TestSym->symbol() == Symbol::intern("else")) {
      if (Index + 1 != Items.size())
        return fail("else clause must be last", Items[Index]);
      return parseSequenceOf(D, Clause, 1);
    }
    Result<const Expr *> Test = parse(Clause[0]);
    if (!Test)
      return Test;
    Result<const Expr *> Then = parseSequenceOf(D, Clause, 1);
    if (!Then)
      return Then;
    Result<const Expr *> Rest = parseCondClauses(D, Items, Index + 1);
    if (!Rest)
      return Rest;
    return asExpr(F.ifExpr(*Test, *Then, *Rest, D->loc()));
  }

  const Datum *makeCondFellThrough() {
    static const Datum *Message =
        wellknown::factory().string("cond: no clause matched");
    return Message;
  }

  Result<const Expr *> parseSequenceOf(const Datum *D,
                                       const std::vector<const Datum *> &Items,
                                       size_t From) {
    return parseSequence(D, Items, From);
  }

  Result<const Expr *> parseAnd(const Datum *D,
                                const std::vector<const Datum *> &Items) {
    if (Items.size() == 1)
      return asExpr(F.constant(wellknown::trueDatum(), D->loc()));
    return parseAndRest(D, Items, 1);
  }

  Result<const Expr *> parseAndRest(const Datum *D,
                                    const std::vector<const Datum *> &Items,
                                    size_t Index) {
    Result<const Expr *> Head = parse(Items[Index]);
    if (!Head || Index + 1 == Items.size())
      return Head;
    Result<const Expr *> Rest = parseAndRest(D, Items, Index + 1);
    if (!Rest)
      return Rest;
    return asExpr(F.ifExpr(
        *Head, *Rest, F.constant(wellknown::falseDatum(), D->loc()),
        D->loc()));
  }

  Result<const Expr *> parseOr(const Datum *D,
                               const std::vector<const Datum *> &Items) {
    if (Items.size() == 1)
      return asExpr(F.constant(wellknown::falseDatum(), D->loc()));
    return parseOrRest(D, Items, 1);
  }

  Result<const Expr *> parseOrRest(const Datum *D,
                                   const std::vector<const Datum *> &Items,
                                   size_t Index) {
    Result<const Expr *> Head = parse(Items[Index]);
    if (!Head || Index + 1 == Items.size())
      return Head;
    Result<const Expr *> Rest = parseOrRest(D, Items, Index + 1);
    if (!Rest)
      return Rest;
    // (or a b) -> (let (t a) (if t t b)); the temp avoids re-evaluating a.
    Symbol T = Symbol::fresh("or");
    return asExpr(F.let(
        T, *Head,
        F.ifExpr(F.var(T, D->loc()), F.var(T, D->loc()), *Rest, D->loc()),
        D->loc()));
  }

  Result<const Expr *> parseBegin(const Datum *D,
                                  const std::vector<const Datum *> &Items) {
    if (Items.size() < 2)
      return fail("begin needs at least one expression", D);
    return parseSequence(D, Items, 1);
  }

  Result<const Expr *> parseWhenUnless(const Datum *D,
                                       const std::vector<const Datum *> &Items,
                                       bool IsWhen) {
    if (Items.size() < 3)
      return fail("when/unless need a test and a body", D);
    Result<const Expr *> Test = parse(Items[1]);
    if (!Test)
      return Test;
    Result<const Expr *> Body = parseSequence(D, Items, 2);
    if (!Body)
      return Body;
    const Expr *False = F.constant(wellknown::falseDatum(), D->loc());
    if (IsWhen)
      return asExpr(F.ifExpr(*Test, *Body, False, D->loc()));
    return asExpr(F.ifExpr(*Test, False, *Body, D->loc()));
  }

  Result<const Expr *> parseSet(const Datum *D,
                                const std::vector<const Datum *> &Items) {
    if (Items.size() != 3)
      return fail("set! takes a variable and a value", D);
    Result<Symbol> Name = bindableName(Items[1]);
    if (!Name)
      return Name.takeError();
    Result<const Expr *> Value = parse(Items[2]);
    if (!Value)
      return Value;
    return asExpr(F.set(*Name, *Value, D->loc()));
  }

  Result<const Expr *> parseList(const Datum *D,
                                 const std::vector<const Datum *> &Items) {
    return parseListRest(D, Items, 1);
  }

  Result<const Expr *> parseListRest(const Datum *D,
                                     const std::vector<const Datum *> &Items,
                                     size_t Index) {
    if (Index == Items.size())
      return asExpr(F.constant(wellknown::nil(), D->loc()));
    Result<const Expr *> Head = parse(Items[Index]);
    if (!Head)
      return Head;
    Result<const Expr *> Rest = parseListRest(D, Items, Index + 1);
    if (!Rest)
      return Rest;
    return asExpr(F.primApp(PrimOp::Cons, {*Head, *Rest}, D->loc()));
  }

  Result<const Expr *> parsePrimApp(const Datum *D,
                                    const std::vector<const Datum *> &Items,
                                    PrimOp Op) {
    std::vector<const Expr *> Args;
    for (size_t I = 1; I != Items.size(); ++I) {
      Result<const Expr *> Arg = parse(Items[I]);
      if (!Arg)
        return Arg;
      Args.push_back(*Arg);
    }

    unsigned Arity = primArity(Op);
    if (Args.size() == Arity)
      return asExpr(F.primApp(Op, std::move(Args), D->loc()));

    // N-ary sugar for the associative arithmetic/comparison operators.
    if (Arity == 2 && Args.size() > 2 &&
        (Op == PrimOp::Add || Op == PrimOp::Mul || Op == PrimOp::Sub)) {
      const Expr *Acc = Args[0];
      for (size_t I = 1; I != Args.size(); ++I)
        Acc = F.primApp(Op, {Acc, Args[I]}, D->loc());
      return asExpr(Acc);
    }
    // Unary minus.
    if (Op == PrimOp::Sub && Args.size() == 1)
      return asExpr(F.primApp(
          PrimOp::Sub, {F.constant(wellknown::fixnum(0), D->loc()), Args[0]},
          D->loc()));
    return fail(std::string(primName(Op)) + " expects " +
                    std::to_string(Arity) + " argument(s), got " +
                    std::to_string(Args.size()),
                D);
  }

  // -- Definitions ----------------------------------------------------------

  Result<Definition> parseDefine(const Datum *Form) {
    std::vector<const Datum *> Items;
    if (!listElements(Form, Items) || Items.size() < 3 ||
        !isa<SymbolDatum>(Items[0]) ||
        cast<SymbolDatum>(Items[0])->symbol() != Symbol::intern("define"))
      return fail("expected (define (name params ...) body ...)", Form);

    // (define (f x ...) body ...)
    if (Items[1]->isPair()) {
      std::vector<const Datum *> Header;
      if (!listElements(Items[1], Header) || Header.empty())
        return fail("malformed define header", Items[1]);
      Result<Symbol> Name = bindableName(Header[0]);
      if (!Name)
        return Name.takeError();
      if (primByName(*Name))
        return fail("cannot redefine primitive '" + Name->str() + "'",
                    Header[0]);
      std::vector<Symbol> Params;
      std::unordered_set<Symbol> Seen;
      for (size_t I = 1; I != Header.size(); ++I) {
        Result<Symbol> P = bindableName(Header[I]);
        if (!P)
          return P.takeError();
        if (!Seen.insert(*P).second)
          return fail("duplicate parameter '" + P->str() + "'", Header[I]);
        Params.push_back(*P);
      }
      ScopeGuard Guard(*this, Params);
      Result<const Expr *> Body = parseBody(Form, Items, 2);
      if (!Body)
        return Body.takeError();
      return Definition{*Name,
                        F.lambda(std::move(Params), *Body, Form->loc())};
    }

    // (define x (lambda ...)) — value definitions must be lambdas so the
    // whole program is a set of functions.
    Result<Symbol> Name = bindableName(Items[1]);
    if (!Name)
      return Name.takeError();
    if (primByName(*Name))
      return fail("cannot redefine primitive '" + Name->str() + "'", Items[1]);
    if (Items.size() != 3)
      return fail("(define name value) takes exactly one value", Form);
    Result<const Expr *> Value = parse(Items[2]);
    if (!Value)
      return Value.takeError();
    const auto *Fn = dyn_cast<LambdaExpr>(*Value);
    if (!Fn)
      return fail("top-level value definitions must be lambdas", Items[2]);
    return Definition{*Name, Fn};
  }

public:
  /// Pre-registers the given names as globally bound (so definition bodies
  /// can reference every top-level function, including later ones).
  void registerGlobals(const std::vector<const Datum *> &Forms) {
    for (const Datum *Form : Forms) {
      std::vector<const Datum *> Items;
      if (!listElements(Form, Items) || Items.size() < 2)
        continue;
      const auto *Head = dyn_cast<SymbolDatum>(Items[0]);
      if (!Head || Head->symbol() != Symbol::intern("define"))
        continue;
      const Datum *Target = Items[1];
      if (Target->isPair()) {
        std::vector<const Datum *> HeaderItems;
        if (listElements(Target, HeaderItems) && !HeaderItems.empty())
          Target = HeaderItems[0];
      }
      if (const auto *Name = dyn_cast<SymbolDatum>(Target))
        Globals.insert(Name->symbol());
    }
  }

private:
  ExprFactory &F;
  std::unordered_set<Symbol> Keywords;
  std::unordered_set<Symbol> Globals;
  std::vector<std::unordered_set<Symbol>> Scopes;
};

} // namespace

Result<const Expr *> pecomp::parseExpr(const Datum *D, ExprFactory &F) {
  Parser P(F);
  return P.parse(D);
}

Result<Program> pecomp::parseProgram(const std::vector<const Datum *> &Forms,
                                     ExprFactory &F) {
  Parser P(F);
  P.registerGlobals(Forms);
  return P.parseProgram(Forms);
}

Result<Program> pecomp::parseProgramText(std::string_view Text, ExprFactory &F,
                                         DatumFactory &DF) {
  Result<std::vector<const Datum *>> Forms = readAll(Text, DF);
  if (!Forms)
    return Forms.takeError();
  return parseProgram(*Forms, F);
}
