//===- frontend/Alpha.h - Alpha renaming ------------------------*- C++ -*-===//
///
/// \file
/// Renames every locally bound variable to a globally fresh name. After
/// this pass, no two binders in a program bind the same symbol and no local
/// binder shadows a top-level definition, so later passes (assignment
/// elimination, ANF conversion, the specializer's environments) may treat
/// names as identities without capture concerns.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_ALPHA_H
#define PECOMP_FRONTEND_ALPHA_H

#include "syntax/Expr.h"

namespace pecomp {

/// Renames locals in \p E; free variables keep their names.
const Expr *alphaRename(const Expr *E, ExprFactory &F);

/// Renames locals in every definition body. Top-level names are kept.
Program alphaRename(const Program &P, ExprFactory &F);

} // namespace pecomp

#endif // PECOMP_FRONTEND_ALPHA_H
