//===- frontend/LambdaLift.cpp - Lambda lifting ----------------------------===//

#include "frontend/LambdaLift.h"

#include "frontend/FreeVars.h"
#include "support/Casting.h"

#include <unordered_map>
#include <unordered_set>

using namespace pecomp;

namespace {

/// Checks that every occurrence of \p Name in \p E is the callee of an
/// application with \p Arity arguments.
bool onlyDirectCalls(const Expr *E, Symbol Name, size_t Arity) {
  switch (E->kind()) {
  case Expr::Kind::Const:
    return true;
  case Expr::Kind::Var:
    return cast<VarExpr>(E)->name() != Name;
  case Expr::Kind::Lambda:
    // Unique binders: no shadowing to worry about.
    return onlyDirectCalls(cast<LambdaExpr>(E)->body(), Name, Arity);
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    return onlyDirectCalls(L->init(), Name, Arity) &&
           onlyDirectCalls(L->body(), Name, Arity);
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    return onlyDirectCalls(I->test(), Name, Arity) &&
           onlyDirectCalls(I->thenBranch(), Name, Arity) &&
           onlyDirectCalls(I->elseBranch(), Name, Arity);
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    if (const auto *V = dyn_cast<VarExpr>(A->callee());
        V && V->name() == Name && A->args().size() != Arity)
      return false;
    // The callee position itself is fine; check only non-callee parts and
    // recurse into arguments.
    if (!isa<VarExpr>(A->callee()) &&
        !onlyDirectCalls(A->callee(), Name, Arity))
      return false;
    for (const Expr *Arg : A->args())
      if (!onlyDirectCalls(Arg, Name, Arity))
        return false;
    return true;
  }
  case Expr::Kind::PrimApp:
    for (const Expr *Arg : cast<PrimAppExpr>(E)->args())
      if (!onlyDirectCalls(Arg, Name, Arity))
        return false;
    return true;
  case Expr::Kind::Set:
    return cast<SetExpr>(E)->name() != Name &&
           onlyDirectCalls(cast<SetExpr>(E)->value(), Name, Arity);
  }
  return true;
}

class Lifter {
public:
  Lifter(ExprFactory &F, std::unordered_set<Symbol> Globals,
         LambdaLiftStats *Stats)
      : F(F), Globals(std::move(Globals)), Stats(Stats) {}

  /// Rewrites call sites of lifted functions: (f a...) becomes
  /// (f' fv... a...).
  struct LiftInfo {
    Symbol NewName;
    std::vector<Symbol> ExtraArgs;
  };

  const Expr *rewrite(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Const:
      return E;
    case Expr::Kind::Var:
      return E;
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      const Expr *Body = rewrite(L->body());
      if (Stats)
        ++Stats->KeptAsClosures;
      return Body == L->body() ? E : F.lambda(L->params(), Body, E->loc());
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      // Candidate: a lambda bound by let, used only in direct calls.
      if (const auto *Fn = dyn_cast<LambdaExpr>(L->init())) {
        if (onlyDirectCalls(L->body(), L->name(), Fn->params().size())) {
          // Lift bottom-up: inner lambdas inside Fn's body first.
          const Expr *FnBody = rewrite(Fn->body());
          std::vector<Symbol> Free;
          for (Symbol S :
               freeVars(F.lambda(Fn->params(), FnBody, Fn->loc()), Globals))
            if (!Lifted.count(S)) // references to lifted fns are global now
              Free.push_back(S);

          Symbol NewName = Symbol::fresh(L->name().str() + "$lifted");
          Globals.insert(NewName);
          Lifted.insert(NewName);
          std::vector<Symbol> Params = Free;
          Params.insert(Params.end(), Fn->params().begin(),
                        Fn->params().end());
          NewDefs.push_back(
              {NewName, F.lambda(std::move(Params), FnBody, Fn->loc())});
          Rewrites.emplace(L->name(), LiftInfo{NewName, Free});
          if (Stats)
            ++Stats->Lifted;
          return rewrite(L->body());
        }
      }
      const Expr *Init = rewrite(L->init());
      const Expr *Body = rewrite(L->body());
      return F.let(L->name(), Init, Body, E->loc());
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      return F.ifExpr(rewrite(I->test()), rewrite(I->thenBranch()),
                      rewrite(I->elseBranch()), E->loc());
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      std::vector<const Expr *> Args;
      // Lifted callee: prepend the free variables.
      if (const auto *V = dyn_cast<VarExpr>(A->callee())) {
        auto It = Rewrites.find(V->name());
        if (It != Rewrites.end()) {
          for (Symbol Extra : It->second.ExtraArgs)
            Args.push_back(F.var(Extra, E->loc()));
          for (const Expr *Arg : A->args())
            Args.push_back(rewrite(Arg));
          return F.app(F.var(It->second.NewName, E->loc()), std::move(Args),
                       E->loc());
        }
      }
      for (const Expr *Arg : A->args())
        Args.push_back(rewrite(Arg));
      return F.app(rewrite(A->callee()), std::move(Args), E->loc());
    }
    case Expr::Kind::PrimApp: {
      const auto *P = cast<PrimAppExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : P->args())
        Args.push_back(rewrite(Arg));
      return F.primApp(P->op(), std::move(Args), E->loc());
    }
    case Expr::Kind::Set: {
      const auto *S = cast<SetExpr>(E);
      return F.set(S->name(), rewrite(S->value()), E->loc());
    }
    }
    return E;
  }

  std::vector<Definition> takeNewDefs() { return std::move(NewDefs); }

private:
  ExprFactory &F;
  std::unordered_set<Symbol> Globals;
  std::unordered_set<Symbol> Lifted;
  LambdaLiftStats *Stats;
  std::unordered_map<Symbol, LiftInfo> Rewrites;
  std::vector<Definition> NewDefs;
};

} // namespace

Program pecomp::liftLambdas(const Program &P, ExprFactory &F,
                            LambdaLiftStats *Stats) {
  std::unordered_set<Symbol> Globals;
  for (const Definition &D : P.Defs)
    Globals.insert(D.Name);

  Lifter L(F, std::move(Globals), Stats);
  Program Out;
  for (const Definition &D : P.Defs) {
    const Expr *Fn = L.rewrite(D.Fn);
    Out.Defs.push_back({D.Name, cast<LambdaExpr>(Fn)});
  }
  for (Definition &D : L.takeNewDefs())
    Out.Defs.push_back(std::move(D));
  return Out;
}
