//===- frontend/Pipeline.cpp - Front-end driver ---------------------------===//

#include "frontend/Pipeline.h"

#include "frontend/Alpha.h"
#include "frontend/AnfConvert.h"
#include "frontend/AssignElim.h"
#include "frontend/Parse.h"
#include "syntax/AnfCheck.h"

using namespace pecomp;

Result<Program> pecomp::frontendProgram(std::string_view Text, ExprFactory &F,
                                        DatumFactory &DF) {
  Result<Program> Parsed = parseProgramText(Text, F, DF);
  if (!Parsed)
    return Parsed;
  Program Renamed = alphaRename(*Parsed, F);
  return eliminateAssignments(Renamed, F);
}

Result<Program> pecomp::anfProgram(std::string_view Text, ExprFactory &F,
                                   DatumFactory &DF) {
  Result<Program> P = frontendProgram(Text, F, DF);
  if (!P)
    return P;
  Program Anf = anfConvert(*P, F);
  assert(!checkAnf(Anf) && "ANF conversion produced non-ANF output");
  return Anf;
}
