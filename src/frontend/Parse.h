//===- frontend/Parse.h - Surface syntax to Core Scheme ---------*- C++ -*-===//
///
/// \file
/// Parses and desugars the surface Scheme subset into Core Scheme (Fig. 1).
/// This is the desugaring the paper attributes to the specializer front end
/// (Sec. 4). Supported surface forms beyond the core:
///
///   (define (f x ...) body ...), (define x e)
///   let with multiple bindings, let*, letrec (lambda initializers),
///   begin, cond/else, and, or, when, unless, set!, (list e ...),
///   n-ary and unary -, n-ary + * and comparisons, quote, 'd
///
/// First-class references to primitives eta-expand ((lambda (x) (car x))),
/// so later stages only see primitives in operator position.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_PARSE_H
#define PECOMP_FRONTEND_PARSE_H

#include "sexp/Datum.h"
#include "support/Error.h"
#include "syntax/Expr.h"

#include <string_view>

namespace pecomp {

/// Parses one expression (no definitions).
Result<const Expr *> parseExpr(const Datum *D, ExprFactory &F);

/// Parses a whole program: a sequence of (define ...) forms.
Result<Program> parseProgram(const std::vector<const Datum *> &Forms,
                             ExprFactory &F);

/// Convenience: reads and parses program text in one go.
Result<Program> parseProgramText(std::string_view Text, ExprFactory &F,
                                 DatumFactory &DF);

} // namespace pecomp

#endif // PECOMP_FRONTEND_PARSE_H
