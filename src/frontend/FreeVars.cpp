//===- frontend/FreeVars.cpp - Free-variable analysis ---------------------===//

#include "frontend/FreeVars.h"

#include "support/Casting.h"

using namespace pecomp;

namespace {

struct Collector {
  const std::unordered_set<Symbol> &Exclude;
  std::vector<Symbol> Order;
  std::unordered_set<Symbol> Seen;
  std::vector<std::unordered_set<Symbol>> Bound;

  bool isBound(Symbol S) const {
    for (auto It = Bound.rbegin(), E = Bound.rend(); It != E; ++It)
      if (It->count(S))
        return true;
    return false;
  }

  void mention(Symbol S) {
    if (isBound(S) || Exclude.count(S) || Seen.count(S))
      return;
    Seen.insert(S);
    Order.push_back(S);
  }

  void walk(const Expr *E) {
    switch (E->kind()) {
    case Expr::Kind::Const:
      return;
    case Expr::Kind::Var:
      mention(cast<VarExpr>(E)->name());
      return;
    case Expr::Kind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      Bound.emplace_back(L->params().begin(), L->params().end());
      walk(L->body());
      Bound.pop_back();
      return;
    }
    case Expr::Kind::Let: {
      const auto *L = cast<LetExpr>(E);
      walk(L->init());
      Bound.push_back({L->name()});
      walk(L->body());
      Bound.pop_back();
      return;
    }
    case Expr::Kind::If: {
      const auto *I = cast<IfExpr>(E);
      walk(I->test());
      walk(I->thenBranch());
      walk(I->elseBranch());
      return;
    }
    case Expr::Kind::App: {
      const auto *A = cast<AppExpr>(E);
      walk(A->callee());
      for (const Expr *Arg : A->args())
        walk(Arg);
      return;
    }
    case Expr::Kind::PrimApp:
      for (const Expr *Arg : cast<PrimAppExpr>(E)->args())
        walk(Arg);
      return;
    case Expr::Kind::Set: {
      const auto *S = cast<SetExpr>(E);
      mention(S->name());
      walk(S->value());
      return;
    }
    }
  }
};

} // namespace

std::vector<Symbol>
pecomp::freeVars(const Expr *E, const std::unordered_set<Symbol> &Exclude) {
  Collector C{Exclude, {}, {}, {}};
  C.walk(E);
  return std::move(C.Order);
}

std::unordered_set<Symbol>
pecomp::freeVarSet(const Expr *E, const std::unordered_set<Symbol> &Exclude) {
  std::vector<Symbol> Order = freeVars(E, Exclude);
  return std::unordered_set<Symbol>(Order.begin(), Order.end());
}
