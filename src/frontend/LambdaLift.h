//===- frontend/LambdaLift.h - Lambda lifting -------------------*- C++ -*-===//
///
/// \file
/// Lambda lifting [Johnsson 85], one of the transformations the paper's
/// specializer applies (Sec. 4). The conservative variant implemented
/// here lifts let-bound lambdas whose every use is a direct, arity-
/// correct call: the lambda becomes a new top-level definition taking its
/// free variables as extra leading parameters, and call sites pass them
/// explicitly — eliminating the closure allocation entirely.
///
/// Lambdas that escape (are passed, returned, or stored) keep their
/// closure representation. Correctness relies on alpha-renamed input: with
/// unique binders, a free variable visible at the binding site is the same
/// binding at every call site, and mutable state was already boxed by
/// assignment elimination (the box value is what gets passed).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_LAMBDALIFT_H
#define PECOMP_FRONTEND_LAMBDALIFT_H

#include "syntax/Expr.h"

namespace pecomp {

struct LambdaLiftStats {
  size_t Lifted = 0;
  size_t KeptAsClosures = 0;
};

/// Lifts direct-called let-bound lambdas in \p P to new top-level
/// definitions. Input must be alpha-renamed, assignment-free Core Scheme.
Program liftLambdas(const Program &P, ExprFactory &F,
                    LambdaLiftStats *Stats = nullptr);

} // namespace pecomp

#endif // PECOMP_FRONTEND_LAMBDALIFT_H
