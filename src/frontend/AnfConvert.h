//===- frontend/AnfConvert.h - CS to A-normal form --------------*- C++ -*-===//
///
/// \file
/// Normalizes arbitrary Core Scheme into the ANF of Fig. 2, the compiler's
/// input language. Serious subexpressions are let-bound to fresh names (the
/// same let-insertion the continuation-based specializer performs, Fig. 3);
/// conditionals in non-tail position are handled by binding the context as
/// a join-point lambda, which keeps code growth linear.
///
/// Precondition: assignment-free, alpha-renamed Core Scheme.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_ANFCONVERT_H
#define PECOMP_FRONTEND_ANFCONVERT_H

#include "syntax/Expr.h"

namespace pecomp {

/// Converts \p E into ANF.
const Expr *anfConvert(const Expr *E, ExprFactory &F);

/// Converts every definition body into ANF.
Program anfConvert(const Program &P, ExprFactory &F);

} // namespace pecomp

#endif // PECOMP_FRONTEND_ANFCONVERT_H
