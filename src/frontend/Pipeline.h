//===- frontend/Pipeline.h - Front-end driver -------------------*- C++ -*-===//
///
/// \file
/// Chains the front-end passes the paper's specializer applies to its input
/// (Sec. 4): read, parse/desugar, alpha-rename, eliminate assignments. The
/// result is pure Core Scheme; anfProgram additionally normalizes to ANF.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_FRONTEND_PIPELINE_H
#define PECOMP_FRONTEND_PIPELINE_H

#include "support/Error.h"
#include "syntax/Expr.h"

#include <string_view>

namespace pecomp {

class DatumFactory;

/// Parses \p Text and runs desugaring, alpha renaming, and assignment
/// elimination. The result is assignment-free Core Scheme with unique
/// local binders.
Result<Program> frontendProgram(std::string_view Text, ExprFactory &F,
                                DatumFactory &DF);

/// frontendProgram followed by ANF conversion; asserts the result passes
/// the ANF checker.
Result<Program> anfProgram(std::string_view Text, ExprFactory &F,
                           DatumFactory &DF);

} // namespace pecomp

#endif // PECOMP_FRONTEND_PIPELINE_H
