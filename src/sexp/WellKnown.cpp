//===- sexp/WellKnown.cpp - Shared well-known datums ----------------------===//

#include "sexp/WellKnown.h"

#include <array>

using namespace pecomp;

DatumFactory &wellknown::factory() {
  static Arena PersistentArena;
  static DatumFactory Factory(PersistentArena);
  return Factory;
}

const Datum *wellknown::nil() {
  static const Datum *Nil = factory().nil();
  return Nil;
}

const Datum *wellknown::trueDatum() {
  static const Datum *True = factory().boolean(true);
  return True;
}

const Datum *wellknown::falseDatum() {
  static const Datum *False = factory().boolean(false);
  return False;
}

const Datum *wellknown::fixnum(int64_t Value) {
  static constexpr int64_t CacheMin = -16, CacheMax = 256;
  static std::array<const Datum *, CacheMax - CacheMin + 1> Cache = {};
  if (Value >= CacheMin && Value <= CacheMax) {
    const Datum *&Slot = Cache[static_cast<size_t>(Value - CacheMin)];
    if (!Slot)
      Slot = factory().fixnum(Value);
    return Slot;
  }
  return factory().fixnum(Value);
}
