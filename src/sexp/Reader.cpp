//===- sexp/Reader.cpp - S-expression reader ------------------------------===//

#include "sexp/Reader.h"

#include <cctype>

using namespace pecomp;

namespace {

/// Character class of symbol constituents. Scheme identifiers are liberal;
/// we accept everything except whitespace, parens, quote, and string/char
/// introducers.
/// Value of a character isxdigit() has accepted.
unsigned hexValue(char C) {
  if (C >= '0' && C <= '9')
    return static_cast<unsigned>(C - '0');
  if (C >= 'a' && C <= 'f')
    return static_cast<unsigned>(C - 'a' + 10);
  return static_cast<unsigned>(C - 'A' + 10);
}

bool isSymbolChar(char C) {
  if (std::isspace(static_cast<unsigned char>(C)))
    return false;
  switch (C) {
  case '(':
  case ')':
  case '\'':
  case '"':
  case ';':
    return false;
  default:
    return true;
  }
}

class Reader {
public:
  Reader(std::string_view Text, DatumFactory &Factory)
      : Text(Text), Factory(Factory) {}

  Result<const Datum *> readOne() {
    skipAtmosphere();
    if (atEnd())
      return makeError("unexpected end of input", here());
    return readDatum();
  }

  Result<std::vector<const Datum *>> readMany() {
    std::vector<const Datum *> Out;
    for (;;) {
      skipAtmosphere();
      if (atEnd())
        return Out;
      Result<const Datum *> D = readDatum();
      if (!D)
        return D.takeError();
      Out.push_back(*D);
    }
  }

  void skipAtmosphere() {
    while (!atEnd()) {
      char C = peek();
      if (C == ';') {
        while (!atEnd() && peek() != '\n')
          advance();
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
      } else {
        return;
      }
    }
  }

  bool atEnd() const { return Pos >= Text.size(); }

private:
  char peek() const { return Text[Pos]; }
  char peekAt(size_t Offset) const {
    return Pos + Offset < Text.size() ? Text[Pos + Offset] : '\0';
  }

  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    ++Pos;
  }

  SourceLoc here() const { return SourceLoc(Line, Column); }

  Result<const Datum *> readDatum() {
    SourceLoc Loc = here();
    char C = peek();

    if (C == '(')
      return readList(Loc);
    if (C == ')')
      return makeError("unexpected ')'", Loc);
    if (C == '\'') {
      advance();
      skipAtmosphere();
      if (atEnd())
        return makeError("unexpected end of input after quote", here());
      Result<const Datum *> Quoted = readDatum();
      if (!Quoted)
        return Quoted;
      return located(Factory.list({Factory.symbol("quote"), *Quoted}), Loc);
    }
    if (C == '"')
      return readString(Loc);
    if (C == '#')
      return readHash(Loc);
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        ((C == '-' || C == '+') &&
         std::isdigit(static_cast<unsigned char>(peekAt(1)))))
      return readNumber(Loc);
    if (isSymbolChar(C))
      return readSymbol(Loc);
    return makeError(std::string("unexpected character '") + C + "'", Loc);
  }

  Result<const Datum *> readList(SourceLoc Loc) {
    advance(); // consume '('
    std::vector<const Datum *> Elements;
    const Datum *Tail = Factory.nil();
    for (;;) {
      skipAtmosphere();
      if (atEnd())
        return makeError("unterminated list", Loc);
      if (peek() == ')') {
        advance();
        break;
      }
      // Dotted tail: "." followed by a delimiter.
      if (peek() == '.' && !isSymbolChar(peekAt(1))) {
        advance();
        skipAtmosphere();
        if (atEnd())
          return makeError("unterminated dotted list", Loc);
        Result<const Datum *> TailDatum = readDatum();
        if (!TailDatum)
          return TailDatum;
        Tail = *TailDatum;
        skipAtmosphere();
        if (atEnd() || peek() != ')')
          return makeError("expected ')' after dotted tail", here());
        advance();
        break;
      }
      Result<const Datum *> Element = readDatum();
      if (!Element)
        return Element;
      Elements.push_back(*Element);
    }
    const Datum *Acc = Tail;
    for (auto It = Elements.rbegin(), E = Elements.rend(); It != E; ++It)
      Acc = Factory.pair(*It, Acc);
    return located(Acc, Loc);
  }

  Result<const Datum *> readString(SourceLoc Loc) {
    advance(); // consume '"'
    std::string Value;
    for (;;) {
      if (atEnd())
        return makeError("unterminated string", Loc);
      char C = peek();
      advance();
      if (C == '"')
        break;
      if (C == '\\') {
        if (atEnd())
          return makeError("unterminated string escape", Loc);
        char E = peek();
        advance();
        switch (E) {
        case 'n':
          Value.push_back('\n');
          break;
        case 't':
          Value.push_back('\t');
          break;
        case 'r':
          Value.push_back('\r');
          break;
        case '\\':
          Value.push_back('\\');
          break;
        case '"':
          Value.push_back('"');
          break;
        case 'x': {
          // Inline hex escape \xNN; (what the Writer emits for bytes
          // with no printable or named form).
          unsigned Byte = 0;
          unsigned Digits = 0;
          while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek()))) {
            Byte = Byte * 16 + hexValue(peek());
            advance();
            if (++Digits > 2)
              return makeError("hex string escape out of byte range", Loc);
          }
          if (Digits == 0 || atEnd() || peek() != ';')
            return makeError("malformed hex string escape", Loc);
          advance(); // consume ';'
          Value.push_back(static_cast<char>(Byte));
          break;
        }
        default:
          return makeError(std::string("unknown string escape '\\") + E + "'",
                           Loc);
        }
      } else {
        Value.push_back(C);
      }
    }
    return located(Factory.string(std::move(Value)), Loc);
  }

  Result<const Datum *> readHash(SourceLoc Loc) {
    advance(); // consume '#'
    if (atEnd())
      return makeError("unexpected end of input after '#'", Loc);
    char C = peek();
    if (C == 't' || C == 'f') {
      advance();
      return located(Factory.boolean(C == 't'), Loc);
    }
    if (C == '\\') {
      advance();
      if (atEnd())
        return makeError("unexpected end of input in character literal", Loc);
      // Read the run of symbol characters; single char or a named char.
      std::string Name;
      Name.push_back(peek());
      advance();
      while (!atEnd() && isSymbolChar(peek()) && peek() != '.') {
        Name.push_back(peek());
        advance();
      }
      if (Name.size() == 1)
        return located(Factory.charDatum(Name[0]), Loc);
      if (Name == "space")
        return located(Factory.charDatum(' '), Loc);
      if (Name == "newline")
        return located(Factory.charDatum('\n'), Loc);
      if (Name == "tab")
        return located(Factory.charDatum('\t'), Loc);
      if (Name == "return")
        return located(Factory.charDatum('\r'), Loc);
      // #\xNN hex form (size >= 2, so the plain letter #\x is unaffected).
      if (Name[0] == 'x' && Name.size() <= 3) {
        unsigned Byte = 0;
        bool AllHex = true;
        for (size_t I = 1; I < Name.size(); ++I) {
          if (!std::isxdigit(static_cast<unsigned char>(Name[I]))) {
            AllHex = false;
            break;
          }
          Byte = Byte * 16 + hexValue(Name[I]);
        }
        if (AllHex)
          return located(Factory.charDatum(static_cast<char>(Byte)), Loc);
      }
      return makeError("unknown character name '" + Name + "'", Loc);
    }
    return makeError(std::string("unknown '#' syntax '#") + C + "'", Loc);
  }

  Result<const Datum *> readNumber(SourceLoc Loc) {
    bool Negative = false;
    if (peek() == '-' || peek() == '+') {
      Negative = peek() == '-';
      advance();
    }
    // Accumulate the magnitude in uint64_t so the boundary literals
    // (notably INT64_MIN, whose magnitude does not fit int64_t) parse
    // without signed overflow, and anything past the int64 range is a
    // diagnostic instead of a silently wrapped value.
    const uint64_t Limit =
        Negative ? (uint64_t{1} << 63) : (uint64_t{1} << 63) - 1;
    uint64_t Magnitude = 0;
    bool Overflow = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
      uint64_t D = static_cast<uint64_t>(peek() - '0');
      if (Magnitude > (Limit - D) / 10)
        Overflow = true;
      else
        Magnitude = Magnitude * 10 + D;
      advance();
    }
    if (!atEnd() && isSymbolChar(peek()))
      return makeError("malformed number", Loc);
    if (Overflow)
      return makeError("number literal out of fixnum range", Loc);
    // Unsigned negation is the two's-complement wrap, so -2^63 maps onto
    // INT64_MIN without ever negating a signed value that can't take it.
    int64_t Value = Negative ? static_cast<int64_t>(0 - Magnitude)
                             : static_cast<int64_t>(Magnitude);
    return located(Factory.fixnum(Value), Loc);
  }

  Result<const Datum *> readSymbol(SourceLoc Loc) {
    std::string Name;
    while (!atEnd() && isSymbolChar(peek())) {
      Name.push_back(peek());
      advance();
    }
    return located(Factory.symbol(Name), Loc);
  }

  const Datum *located(const Datum *D, SourceLoc Loc) {
    // Atoms may be shared (booleans, nil); only stamp fresh nodes.
    if (!D->loc().isValid())
      const_cast<Datum *>(D)->setLoc(Loc);
    return D;
  }

  std::string_view Text;
  DatumFactory &Factory;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace

Result<const Datum *> pecomp::readDatum(std::string_view Text,
                                        DatumFactory &Factory) {
  Reader R(Text, Factory);
  Result<const Datum *> D = R.readOne();
  if (!D)
    return D;
  R.skipAtmosphere();
  if (!R.atEnd())
    return makeError("trailing input after datum");
  return D;
}

Result<std::vector<const Datum *>> pecomp::readAll(std::string_view Text,
                                                   DatumFactory &Factory) {
  Reader R(Text, Factory);
  return R.readMany();
}
