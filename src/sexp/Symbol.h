//===- sexp/Symbol.h - Interned symbols -------------------------*- C++ -*-===//
///
/// \file
/// Interned identifiers. A Symbol is a 32-bit handle into a process-wide
/// intern table, so symbol comparison is integer comparison — the property
/// every pass (alpha renaming, environments, BTA constraint keys) relies on.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SEXP_SYMBOL_H
#define PECOMP_SEXP_SYMBOL_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace pecomp {

class Symbol {
public:
  Symbol() = default;

  /// Interns \p Name, returning its canonical Symbol.
  static Symbol intern(std::string_view Name);

  /// Makes a fresh symbol "<Base>.N" guaranteed distinct from every symbol
  /// interned so far. Used for gensym in alpha renaming and let insertion.
  static Symbol fresh(std::string_view Base);

  /// Rebuilds a Symbol from a previously obtained id() (e.g. one packed
  /// into an immediate vm::Value). \p Id must come from a live Symbol.
  static Symbol fromId(uint32_t Id) { return Symbol(Id); }

  const std::string &str() const;

  bool isValid() const { return Id != 0; }
  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  explicit Symbol(uint32_t Id) : Id(Id) {}
  uint32_t Id = 0;
};

} // namespace pecomp

namespace std {
template <> struct hash<pecomp::Symbol> {
  size_t operator()(pecomp::Symbol S) const { return S.id(); }
};
} // namespace std

#endif // PECOMP_SEXP_SYMBOL_H
