//===- sexp/Reader.h - S-expression reader ----------------------*- C++ -*-===//
///
/// \file
/// Parses the external representation into Datums. Supports fixnums,
/// booleans (#t/#f), characters (#\x, #\space, #\newline), strings with
/// escapes, symbols, proper and dotted lists, quote ('d reads as (quote d)),
/// and ;-to-end-of-line comments.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SEXP_READER_H
#define PECOMP_SEXP_READER_H

#include "sexp/Datum.h"
#include "support/Error.h"

#include <string_view>
#include <vector>

namespace pecomp {

/// Reads a single datum from \p Text (trailing input is an error).
Result<const Datum *> readDatum(std::string_view Text, DatumFactory &Factory);

/// Reads all datums in \p Text (e.g. a file of top-level definitions).
Result<std::vector<const Datum *>> readAll(std::string_view Text,
                                           DatumFactory &Factory);

} // namespace pecomp

#endif // PECOMP_SEXP_READER_H
