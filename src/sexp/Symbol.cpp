//===- sexp/Symbol.cpp - Interned symbols ---------------------------------===//

#include "sexp/Symbol.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <unordered_map>

using namespace pecomp;

namespace {

/// The process-wide intern table. Id 0 is reserved for the invalid Symbol.
/// Guarded by a mutex: the RTCG service interns from its worker threads
/// (parsing requests, gensym during specialization) concurrently. Names
/// live in a deque, so the reference str() hands out stays valid while
/// other threads keep interning.
struct InternTable {
  std::mutex M;
  std::unordered_map<std::string, uint32_t> Ids;
  std::deque<std::string> Names; // index Id-1
  uint64_t FreshCounter = 0;

  uint32_t internLocked(std::string_view Name) {
    auto It = Ids.find(std::string(Name));
    if (It != Ids.end())
      return It->second;
    Names.emplace_back(Name);
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Ids.emplace(Names.back(), Id);
    return Id;
  }
};

InternTable &table() {
  static InternTable Table;
  return Table;
}

} // namespace

Symbol Symbol::intern(std::string_view Name) {
  InternTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  return Symbol(T.internLocked(Name));
}

Symbol Symbol::fresh(std::string_view Base) {
  InternTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  for (;;) {
    std::string Candidate =
        std::string(Base) + "." + std::to_string(++T.FreshCounter);
    if (!T.Ids.count(Candidate))
      return Symbol(T.internLocked(Candidate));
  }
}

const std::string &Symbol::str() const {
  assert(isValid() && "str() on the invalid symbol");
  InternTable &T = table();
  std::lock_guard<std::mutex> Lock(T.M);
  return T.Names[Id - 1];
}
