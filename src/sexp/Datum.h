//===- sexp/Datum.h - S-expression data -------------------------*- C++ -*-===//
///
/// \file
/// External representation of Scheme data: what the reader produces and what
/// quoted constants denote. Datums are immutable and arena-allocated; a
/// DatumFactory hash-conses atoms so equal atoms are pointer-equal.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SEXP_DATUM_H
#define PECOMP_SEXP_DATUM_H

#include "sexp/Symbol.h"
#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pecomp {

/// Immutable s-expression node.
class Datum {
public:
  enum class Kind : uint8_t {
    Fixnum,
    Boolean,
    Symbol,
    String,
    Char,
    Nil,   ///< the empty list ()
    Pair,
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  bool isNil() const { return K == Kind::Nil; }
  bool isPair() const { return K == Kind::Pair; }
  bool isList() const;

  /// Structural equality (Scheme equal?).
  bool equals(const Datum *Other) const;

  /// Renders the external representation (see sexp/Writer.cpp).
  std::string write() const;

protected:
  explicit Datum(Kind K) : K(K) {}

private:
  Kind K;
  SourceLoc Loc;
};

class FixnumDatum : public Datum {
public:
  explicit FixnumDatum(int64_t Value) : Datum(Kind::Fixnum), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Datum *D) { return D->kind() == Kind::Fixnum; }

private:
  int64_t Value;
};

class BooleanDatum : public Datum {
public:
  explicit BooleanDatum(bool Value) : Datum(Kind::Boolean), Value(Value) {}
  bool value() const { return Value; }
  static bool classof(const Datum *D) { return D->kind() == Kind::Boolean; }

private:
  bool Value;
};

class SymbolDatum : public Datum {
public:
  explicit SymbolDatum(Symbol Sym) : Datum(Kind::Symbol), Sym(Sym) {}
  Symbol symbol() const { return Sym; }
  static bool classof(const Datum *D) { return D->kind() == Kind::Symbol; }

private:
  Symbol Sym;
};

class StringDatum : public Datum {
public:
  explicit StringDatum(std::string Value)
      : Datum(Kind::String), Value(std::move(Value)) {}
  const std::string &value() const { return Value; }
  static bool classof(const Datum *D) { return D->kind() == Kind::String; }

private:
  std::string Value;
};

class CharDatum : public Datum {
public:
  explicit CharDatum(char Value) : Datum(Kind::Char), Value(Value) {}
  char value() const { return Value; }
  static bool classof(const Datum *D) { return D->kind() == Kind::Char; }

private:
  char Value;
};

class NilDatum : public Datum {
public:
  NilDatum() : Datum(Kind::Nil) {}
  static bool classof(const Datum *D) { return D->kind() == Kind::Nil; }
};

class PairDatum : public Datum {
public:
  PairDatum(const Datum *Car, const Datum *Cdr)
      : Datum(Kind::Pair), Car(Car), Cdr(Cdr) {}
  const Datum *car() const { return Car; }
  const Datum *cdr() const { return Cdr; }
  static bool classof(const Datum *D) { return D->kind() == Kind::Pair; }

private:
  const Datum *Car;
  const Datum *Cdr;
};

/// Allocates datums in an arena; the singleton nil and the two booleans are
/// shared.
class DatumFactory {
public:
  explicit DatumFactory(Arena &A) : A(A) {}

  const Datum *fixnum(int64_t Value) { return A.create<FixnumDatum>(Value); }
  const Datum *boolean(bool Value) {
    if (!True) {
      True = A.create<BooleanDatum>(true);
      False = A.create<BooleanDatum>(false);
    }
    return Value ? True : False;
  }
  const Datum *symbol(Symbol Sym) { return A.create<SymbolDatum>(Sym); }
  const Datum *symbol(std::string_view Name) {
    return symbol(Symbol::intern(Name));
  }
  const Datum *string(std::string Value) {
    return A.create<StringDatum>(std::move(Value));
  }
  const Datum *charDatum(char Value) { return A.create<CharDatum>(Value); }
  const Datum *nil() {
    if (!Nil)
      Nil = A.create<NilDatum>();
    return Nil;
  }
  const Datum *pair(const Datum *Car, const Datum *Cdr) {
    return A.create<PairDatum>(Car, Cdr);
  }

  /// Builds a proper list from \p Elements.
  const Datum *list(const std::vector<const Datum *> &Elements) {
    const Datum *Acc = nil();
    for (auto It = Elements.rbegin(), E = Elements.rend(); It != E; ++It)
      Acc = pair(*It, Acc);
    return Acc;
  }

  Arena &arena() { return A; }

private:
  Arena &A;
  const Datum *True = nullptr;
  const Datum *False = nullptr;
  const Datum *Nil = nullptr;
};

/// Collects the elements of a proper list into a vector. Returns false (and
/// leaves \p Out partially filled) if \p D is not a proper list.
bool listElements(const Datum *D, std::vector<const Datum *> &Out);

/// Length of a proper list, or -1 if \p D is improper.
int listLength(const Datum *D);

} // namespace pecomp

#endif // PECOMP_SEXP_DATUM_H
