//===- sexp/Writer.cpp - S-expression writer ------------------------------===//
///
/// \file
/// Renders Datums back to their external representation (Datum::write).
///
//===----------------------------------------------------------------------===//

#include "sexp/Datum.h"

using namespace pecomp;

namespace {

void writeDatum(const Datum *D, std::string &Out) {
  switch (D->kind()) {
  case Datum::Kind::Fixnum:
    Out += std::to_string(cast<FixnumDatum>(D)->value());
    return;
  case Datum::Kind::Boolean:
    Out += cast<BooleanDatum>(D)->value() ? "#t" : "#f";
    return;
  case Datum::Kind::Symbol:
    Out += cast<SymbolDatum>(D)->symbol().str();
    return;
  case Datum::Kind::String: {
    Out.push_back('"');
    for (char C : cast<StringDatum>(D)->value()) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      default:
        Out.push_back(C);
      }
    }
    Out.push_back('"');
    return;
  }
  case Datum::Kind::Char: {
    char C = cast<CharDatum>(D)->value();
    Out += "#\\";
    if (C == ' ')
      Out += "space";
    else if (C == '\n')
      Out += "newline";
    else if (C == '\t')
      Out += "tab";
    else
      Out.push_back(C);
    return;
  }
  case Datum::Kind::Nil:
    Out += "()";
    return;
  case Datum::Kind::Pair: {
    Out.push_back('(');
    const Datum *Cursor = D;
    bool First = true;
    while (Cursor->isPair()) {
      if (!First)
        Out.push_back(' ');
      First = false;
      const auto *P = cast<PairDatum>(Cursor);
      writeDatum(P->car(), Out);
      Cursor = P->cdr();
    }
    if (!Cursor->isNil()) {
      Out += " . ";
      writeDatum(Cursor, Out);
    }
    Out.push_back(')');
    return;
  }
  }
}

} // namespace

std::string Datum::write() const {
  std::string Out;
  writeDatum(this, Out);
  return Out;
}
