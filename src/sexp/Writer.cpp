//===- sexp/Writer.cpp - S-expression writer ------------------------------===//
///
/// \file
/// Renders Datums back to their external representation (Datum::write).
///
//===----------------------------------------------------------------------===//

#include "sexp/Datum.h"

#include <cstdio>

using namespace pecomp;

namespace {

/// ASCII-printable characters are written raw; everything else needs an
/// escape or the output no longer round-trips through the Reader.
bool isPrintableAscii(char C) {
  unsigned char U = static_cast<unsigned char>(C);
  return U >= 0x20 && U < 0x7f;
}

void appendHexByte(char C, std::string &Out) {
  char Buf[3];
  snprintf(Buf, sizeof(Buf), "%02x", static_cast<unsigned char>(C));
  Out += Buf;
}

void writeDatum(const Datum *D, std::string &Out) {
  switch (D->kind()) {
  case Datum::Kind::Fixnum:
    Out += std::to_string(cast<FixnumDatum>(D)->value());
    return;
  case Datum::Kind::Boolean:
    Out += cast<BooleanDatum>(D)->value() ? "#t" : "#f";
    return;
  case Datum::Kind::Symbol:
    Out += cast<SymbolDatum>(D)->symbol().str();
    return;
  case Datum::Kind::String: {
    Out.push_back('"');
    for (char C : cast<StringDatum>(D)->value()) {
      switch (C) {
      case '"':
        Out += "\\\"";
        break;
      case '\\':
        Out += "\\\\";
        break;
      case '\n':
        Out += "\\n";
        break;
      case '\t':
        Out += "\\t";
        break;
      case '\r':
        Out += "\\r";
        break;
      default:
        if (isPrintableAscii(C)) {
          Out.push_back(C);
        } else {
          // R7RS-style inline hex escape; the ';' terminator keeps a
          // following literal digit unambiguous.
          Out += "\\x";
          appendHexByte(C, Out);
          Out.push_back(';');
        }
      }
    }
    Out.push_back('"');
    return;
  }
  case Datum::Kind::Char: {
    char C = cast<CharDatum>(D)->value();
    Out += "#\\";
    if (C == ' ')
      Out += "space";
    else if (C == '\n')
      Out += "newline";
    else if (C == '\t')
      Out += "tab";
    else if (C == '\r')
      Out += "return";
    else if (isPrintableAscii(C))
      Out.push_back(C);
    else {
      // #\xNN (always two hex digits, so it never collides with the
      // one-character name #\x meaning the letter x).
      Out.push_back('x');
      appendHexByte(C, Out);
    }
    return;
  }
  case Datum::Kind::Nil:
    Out += "()";
    return;
  case Datum::Kind::Pair: {
    Out.push_back('(');
    const Datum *Cursor = D;
    bool First = true;
    while (Cursor->isPair()) {
      if (!First)
        Out.push_back(' ');
      First = false;
      const auto *P = cast<PairDatum>(Cursor);
      writeDatum(P->car(), Out);
      Cursor = P->cdr();
    }
    if (!Cursor->isNil()) {
      Out += " . ";
      writeDatum(Cursor, Out);
    }
    Out.push_back(')');
    return;
  }
  }
}

} // namespace

std::string Datum::write() const {
  std::string Out;
  writeDatum(this, Out);
  return Out;
}
