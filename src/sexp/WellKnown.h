//===- sexp/WellKnown.h - Shared well-known datums --------------*- C++ -*-===//
///
/// \file
/// Process-lifetime singleton datums (nil, #t, #f, small fixnums) for code
/// that needs a constant datum without owning a DatumFactory — desugaring
/// expansions, specializer-produced constants, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SEXP_WELLKNOWN_H
#define PECOMP_SEXP_WELLKNOWN_H

#include "sexp/Datum.h"

namespace pecomp {
namespace wellknown {

/// The shared empty list.
const Datum *nil();
/// The shared booleans.
const Datum *trueDatum();
const Datum *falseDatum();
/// A shared fixnum (cached for small values).
const Datum *fixnum(int64_t Value);
/// A datum factory whose arena lives for the whole process; for interned
/// constant structures (error messages, desugaring helpers).
DatumFactory &factory();

} // namespace wellknown
} // namespace pecomp

#endif // PECOMP_SEXP_WELLKNOWN_H
