//===- sexp/Datum.cpp - S-expression data ---------------------------------===//

#include "sexp/Datum.h"

using namespace pecomp;

bool Datum::isList() const {
  const Datum *D = this;
  while (D->isPair())
    D = cast<PairDatum>(D)->cdr();
  return D->isNil();
}

bool Datum::equals(const Datum *Other) const {
  if (this == Other)
    return true;
  if (K != Other->kind())
    return false;
  switch (K) {
  case Kind::Fixnum:
    return cast<FixnumDatum>(this)->value() ==
           cast<FixnumDatum>(Other)->value();
  case Kind::Boolean:
    return cast<BooleanDatum>(this)->value() ==
           cast<BooleanDatum>(Other)->value();
  case Kind::Symbol:
    return cast<SymbolDatum>(this)->symbol() ==
           cast<SymbolDatum>(Other)->symbol();
  case Kind::String:
    return cast<StringDatum>(this)->value() ==
           cast<StringDatum>(Other)->value();
  case Kind::Char:
    return cast<CharDatum>(this)->value() == cast<CharDatum>(Other)->value();
  case Kind::Nil:
    return true;
  case Kind::Pair: {
    const auto *A = cast<PairDatum>(this);
    const auto *B = cast<PairDatum>(Other);
    return A->car()->equals(B->car()) && A->cdr()->equals(B->cdr());
  }
  }
  return false;
}

bool pecomp::listElements(const Datum *D, std::vector<const Datum *> &Out) {
  while (D->isPair()) {
    const auto *P = cast<PairDatum>(D);
    Out.push_back(P->car());
    D = P->cdr();
  }
  return D->isNil();
}

int pecomp::listLength(const Datum *D) {
  int N = 0;
  while (D->isPair()) {
    ++N;
    D = cast<PairDatum>(D)->cdr();
  }
  return D->isNil() ? N : -1;
}
