//===- syntax/Primitives.h - Primitive operations ----------------*- C++ -*-===//
///
/// \file
/// The primitive operations of Core Scheme (the O of Fig. 1). One table,
/// shared by the parser, the reference interpreter, the VM, the compiler,
/// and the specializer, so the five agree on names and arities.
///
/// PECOMP_PRIM(Id, SchemeName, Arity, Pure)
///   Arity is fixed (variadic surface forms like n-ary + are desugared to
///   nests of binary applications by the front end). Pure primitives can be
///   executed at specialization time when all arguments are static; impure
///   ones (error) are always residualized.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SYNTAX_PRIMITIVES_H
#define PECOMP_SYNTAX_PRIMITIVES_H

#include "sexp/Symbol.h"

#include <cstdint>
#include <optional>

#define PECOMP_PRIMITIVES(PECOMP_PRIM)                                        \
  PECOMP_PRIM(Add, "+", 2, true)                                              \
  PECOMP_PRIM(Sub, "-", 2, true)                                              \
  PECOMP_PRIM(Mul, "*", 2, true)                                              \
  PECOMP_PRIM(Quotient, "quotient", 2, true)                                  \
  PECOMP_PRIM(Remainder, "remainder", 2, true)                                \
  PECOMP_PRIM(NumEq, "=", 2, true)                                            \
  PECOMP_PRIM(Lt, "<", 2, true)                                               \
  PECOMP_PRIM(Gt, ">", 2, true)                                               \
  PECOMP_PRIM(Le, "<=", 2, true)                                              \
  PECOMP_PRIM(Ge, ">=", 2, true)                                              \
  PECOMP_PRIM(EqP, "eq?", 2, true)                                            \
  PECOMP_PRIM(EqualP, "equal?", 2, true)                                      \
  PECOMP_PRIM(Cons, "cons", 2, true)                                          \
  PECOMP_PRIM(Car, "car", 1, true)                                            \
  PECOMP_PRIM(Cdr, "cdr", 1, true)                                            \
  PECOMP_PRIM(NullP, "null?", 1, true)                                        \
  PECOMP_PRIM(PairP, "pair?", 1, true)                                        \
  PECOMP_PRIM(ZeroP, "zero?", 1, true)                                        \
  PECOMP_PRIM(Not, "not", 1, true)                                            \
  PECOMP_PRIM(NumberP, "number?", 1, true)                                    \
  PECOMP_PRIM(SymbolP, "symbol?", 1, true)                                    \
  PECOMP_PRIM(BooleanP, "boolean?", 1, true)                                  \
  PECOMP_PRIM(ProcedureP, "procedure?", 1, true)                              \
  PECOMP_PRIM(Error, "error", 1, false)                                       \
  PECOMP_PRIM(MakeBox, "make-box", 1, false)                                  \
  PECOMP_PRIM(BoxRef, "box-ref", 1, false)                                    \
  PECOMP_PRIM(BoxSet, "box-set!", 2, false)

namespace pecomp {

enum class PrimOp : uint8_t {
#define PECOMP_PRIM(Id, Name, Arity, Pure) Id,
  PECOMP_PRIMITIVES(PECOMP_PRIM)
#undef PECOMP_PRIM
};

constexpr unsigned NumPrimOps = 0
#define PECOMP_PRIM(Id, Name, Arity, Pure) +1
    PECOMP_PRIMITIVES(PECOMP_PRIM)
#undef PECOMP_PRIM
    ;

/// The Scheme-level name of \p Op.
const char *primName(PrimOp Op);

/// The fixed arity of \p Op.
unsigned primArity(PrimOp Op);

/// True if \p Op is side-effect free (and thus executable at
/// specialization time).
bool primIsPure(PrimOp Op);

/// Looks up a primitive by its (interned) Scheme name.
std::optional<PrimOp> primByName(Symbol Name);

} // namespace pecomp

#endif // PECOMP_SYNTAX_PRIMITIVES_H
