//===- syntax/AnfCheck.cpp - A-normal form checker ------------------------===//

#include "syntax/AnfCheck.h"

#include "support/Casting.h"

using namespace pecomp;

namespace {

std::optional<std::string> checkTail(const Expr *E);

std::optional<std::string> checkValue(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
    return std::nullopt;
  case Expr::Kind::Lambda:
    return checkTail(cast<LambdaExpr>(E)->body());
  default:
    return "expected a trivial expression (constant, variable, or lambda), "
           "found: " +
           E->print();
  }
}

std::optional<std::string> checkArgs(const std::vector<const Expr *> &Args) {
  for (const Expr *Arg : Args)
    if (auto Err = checkValue(Arg))
      return Err;
  return std::nullopt;
}

/// Checks the right-hand side of a let binding: a trivial value, a call, or
/// a primitive application over trivial arguments (Fig. 2 allows all
/// three).
std::optional<std::string> checkSerious(const Expr *E) {
  if (E->isTrivial())
    return checkValue(E);
  if (const auto *App = dyn_cast<AppExpr>(E)) {
    if (auto Err = checkValue(App->callee()))
      return Err;
    return checkArgs(App->args());
  }
  if (const auto *Prim = dyn_cast<PrimAppExpr>(E))
    return checkArgs(Prim->args());
  return "let binding must bind a value, call, or primitive application, "
         "found: " +
         E->print();
}

std::optional<std::string> checkTail(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
  case Expr::Kind::Lambda:
    return checkValue(E);
  case Expr::Kind::Let: {
    const auto *Let = cast<LetExpr>(E);
    if (auto Err = checkSerious(Let->init()))
      return Err;
    return checkTail(Let->body());
  }
  case Expr::Kind::If: {
    const auto *If = cast<IfExpr>(E);
    if (auto Err = checkValue(If->test()))
      return Err;
    if (auto Err = checkTail(If->thenBranch()))
      return Err;
    return checkTail(If->elseBranch());
  }
  case Expr::Kind::App: {
    const auto *App = cast<AppExpr>(E);
    if (auto Err = checkValue(App->callee()))
      return Err;
    return checkArgs(App->args());
  }
  case Expr::Kind::PrimApp:
    return checkArgs(cast<PrimAppExpr>(E)->args());
  case Expr::Kind::Set:
    return "set! must be eliminated before ANF: " + E->print();
  }
  return "unknown expression kind";
}

} // namespace

std::optional<std::string> pecomp::checkAnf(const Expr *E) {
  return checkTail(E);
}

std::optional<std::string> pecomp::checkAnf(const Program &P) {
  for (const Definition &D : P.Defs)
    if (auto Err = checkTail(D.Fn->body()))
      return "in " + D.Name.str() + ": " + *Err;
  return std::nullopt;
}
