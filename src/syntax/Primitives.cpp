//===- syntax/Primitives.cpp - Primitive operations -----------------------===//

#include "syntax/Primitives.h"

#include <unordered_map>

using namespace pecomp;

namespace {

struct PrimInfo {
  const char *Name;
  unsigned Arity;
  bool Pure;
};

constexpr PrimInfo PrimTable[] = {
#define PECOMP_PRIM(Id, Name, Arity, Pure) {Name, Arity, Pure},
    PECOMP_PRIMITIVES(PECOMP_PRIM)
#undef PECOMP_PRIM
};

} // namespace

const char *pecomp::primName(PrimOp Op) {
  return PrimTable[static_cast<unsigned>(Op)].Name;
}

unsigned pecomp::primArity(PrimOp Op) {
  return PrimTable[static_cast<unsigned>(Op)].Arity;
}

bool pecomp::primIsPure(PrimOp Op) {
  return PrimTable[static_cast<unsigned>(Op)].Pure;
}

std::optional<PrimOp> pecomp::primByName(Symbol Name) {
  static const std::unordered_map<Symbol, PrimOp> ByName = [] {
    std::unordered_map<Symbol, PrimOp> M;
    for (unsigned I = 0; I != NumPrimOps; ++I)
      M.emplace(Symbol::intern(PrimTable[I].Name), static_cast<PrimOp>(I));
    return M;
  }();
  auto It = ByName.find(Name);
  if (It == ByName.end())
    return std::nullopt;
  return It->second;
}
