//===- syntax/AnfCheck.h - A-normal form checker ----------------*- C++ -*-===//
///
/// \file
/// Checks conformance with the ANF grammar of the paper's Fig. 2:
///
///   M ::= V
///       | (let (x V) M)                  trivial binding
///       | (let (x (V V1 ... Vn)) M)      non-tail call
///       | (let (x (O V1 ... Vn)) M)      primitive
///       | (if V M1 M2)
///       | (V V1 ... Vn)                  tail call
///       | (O V1 ... Vn)                  tail primitive
///   V ::= c | x | (lambda (x1 ... xn) M)
///
/// This is the contract between the specializer (which promises to emit ANF)
/// and the ANF compiler (which exploits it: control flow is explicit, so no
/// compile-time continuation is needed).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SYNTAX_ANFCHECK_H
#define PECOMP_SYNTAX_ANFCHECK_H

#include "syntax/Expr.h"

#include <optional>
#include <string>

namespace pecomp {

/// Returns std::nullopt if \p E is in ANF, otherwise a description of the
/// first violation found.
std::optional<std::string> checkAnf(const Expr *E);

/// Checks every definition body of \p P.
std::optional<std::string> checkAnf(const Program &P);

} // namespace pecomp

#endif // PECOMP_SYNTAX_ANFCHECK_H
