//===- syntax/Expr.cpp - Core Scheme abstract syntax ----------------------===//

#include "syntax/Expr.h"

#include "support/Casting.h"

using namespace pecomp;

bool Expr::equals(const Expr *Other) const {
  if (this == Other)
    return true;
  if (K != Other->kind())
    return false;
  switch (K) {
  case Kind::Const:
    return cast<ConstExpr>(this)->value()->equals(
        cast<ConstExpr>(Other)->value());
  case Kind::Var:
    return cast<VarExpr>(this)->name() == cast<VarExpr>(Other)->name();
  case Kind::Lambda: {
    const auto *A = cast<LambdaExpr>(this);
    const auto *B = cast<LambdaExpr>(Other);
    return A->params() == B->params() && A->body()->equals(B->body());
  }
  case Kind::Let: {
    const auto *A = cast<LetExpr>(this);
    const auto *B = cast<LetExpr>(Other);
    return A->name() == B->name() && A->init()->equals(B->init()) &&
           A->body()->equals(B->body());
  }
  case Kind::If: {
    const auto *A = cast<IfExpr>(this);
    const auto *B = cast<IfExpr>(Other);
    return A->test()->equals(B->test()) &&
           A->thenBranch()->equals(B->thenBranch()) &&
           A->elseBranch()->equals(B->elseBranch());
  }
  case Kind::App: {
    const auto *A = cast<AppExpr>(this);
    const auto *B = cast<AppExpr>(Other);
    if (!A->callee()->equals(B->callee()) ||
        A->args().size() != B->args().size())
      return false;
    for (size_t I = 0, E = A->args().size(); I != E; ++I)
      if (!A->args()[I]->equals(B->args()[I]))
        return false;
    return true;
  }
  case Kind::PrimApp: {
    const auto *A = cast<PrimAppExpr>(this);
    const auto *B = cast<PrimAppExpr>(Other);
    if (A->op() != B->op() || A->args().size() != B->args().size())
      return false;
    for (size_t I = 0, E = A->args().size(); I != E; ++I)
      if (!A->args()[I]->equals(B->args()[I]))
        return false;
    return true;
  }
  case Kind::Set: {
    const auto *A = cast<SetExpr>(this);
    const auto *B = cast<SetExpr>(Other);
    return A->name() == B->name() && A->value()->equals(B->value());
  }
  }
  return false;
}
