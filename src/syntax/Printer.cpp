//===- syntax/Printer.cpp - Unparsing Core Scheme -------------------------===//
///
/// \file
/// Renders expressions and programs back to concrete syntax. The output
/// round-trips through the front end (tested), which is how residual
/// programs are "loaded" on the source-code path of the experiments.
///
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "syntax/Expr.h"

using namespace pecomp;

namespace {

void printExpr(const Expr *E, std::string &Out, unsigned Indent);

void newline(std::string &Out, unsigned Indent) {
  Out.push_back('\n');
  Out.append(Indent, ' ');
}

void printExpr(const Expr *E, std::string &Out, unsigned Indent) {
  switch (E->kind()) {
  case Expr::Kind::Const: {
    const Datum *D = cast<ConstExpr>(E)->value();
    // Self-evaluating atoms print as themselves; structured data and
    // symbols need a quote.
    switch (D->kind()) {
    case Datum::Kind::Fixnum:
    case Datum::Kind::Boolean:
    case Datum::Kind::String:
    case Datum::Kind::Char:
      Out += D->write();
      return;
    default:
      Out.push_back('\'');
      Out += D->write();
      return;
    }
  }
  case Expr::Kind::Var:
    Out += cast<VarExpr>(E)->name().str();
    return;
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    Out += "(lambda (";
    for (size_t I = 0, N = L->params().size(); I != N; ++I) {
      if (I)
        Out.push_back(' ');
      Out += L->params()[I].str();
    }
    Out += ")";
    newline(Out, Indent + 2);
    printExpr(L->body(), Out, Indent + 2);
    Out.push_back(')');
    return;
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    Out += "(let (";
    Out += L->name().str();
    Out.push_back(' ');
    printExpr(L->init(), Out, Indent + 8);
    Out.push_back(')');
    newline(Out, Indent + 2);
    printExpr(L->body(), Out, Indent + 2);
    Out.push_back(')');
    return;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    Out += "(if ";
    printExpr(I->test(), Out, Indent + 4);
    newline(Out, Indent + 4);
    printExpr(I->thenBranch(), Out, Indent + 4);
    newline(Out, Indent + 4);
    printExpr(I->elseBranch(), Out, Indent + 4);
    Out.push_back(')');
    return;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    Out.push_back('(');
    printExpr(A->callee(), Out, Indent + 1);
    for (const Expr *Arg : A->args()) {
      Out.push_back(' ');
      printExpr(Arg, Out, Indent + 1);
    }
    Out.push_back(')');
    return;
  }
  case Expr::Kind::PrimApp: {
    const auto *P = cast<PrimAppExpr>(E);
    Out.push_back('(');
    Out += primName(P->op());
    for (const Expr *Arg : P->args()) {
      Out.push_back(' ');
      printExpr(Arg, Out, Indent + 1);
    }
    Out.push_back(')');
    return;
  }
  case Expr::Kind::Set: {
    const auto *S = cast<SetExpr>(E);
    Out += "(set! ";
    Out += S->name().str();
    Out.push_back(' ');
    printExpr(S->value(), Out, Indent + 1);
    Out.push_back(')');
    return;
  }
  }
}

} // namespace

std::string Expr::print() const {
  std::string Out;
  printExpr(this, Out, 0);
  return Out;
}

std::string Program::print() const {
  std::string Out;
  for (const Definition &D : Defs) {
    Out += "(define (";
    Out += D.Name.str();
    for (Symbol P : D.Fn->params()) {
      Out.push_back(' ');
      Out += P.str();
    }
    Out += ")";
    newline(Out, 2);
    printExpr(D.Fn->body(), Out, 2);
    Out += ")\n\n";
  }
  return Out;
}
