//===- syntax/Expr.h - Core Scheme abstract syntax --------------*- C++ -*-===//
///
/// \file
/// Core Scheme (CS) abstract syntax, exactly the grammar of the paper's
/// Fig. 1:
///
///   M ::= V | (if V M1 M2)* | (let (x M1) M2) | (M M1 ... Mn)
///       | (O M1 ... Mn)
///   V ::= c | x | (lambda (x1 ... xn) M)
///
/// (In full CS, if/application/primitive subterms are arbitrary expressions;
/// the ANF restriction of Fig. 2 is enforced separately by AnfCheck.)
///
/// Nodes are immutable and arena-allocated through ExprFactory; passes build
/// fresh trees instead of mutating. Downcasts use the LLVM-style
/// isa/cast/dyn_cast machinery via each node's Kind.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_SYNTAX_EXPR_H
#define PECOMP_SYNTAX_EXPR_H

#include "sexp/Datum.h"
#include "syntax/Primitives.h"

#include <string>
#include <vector>

namespace pecomp {

/// Base class of all Core Scheme expressions.
class Expr {
public:
  enum class Kind : uint8_t {
    Const,   ///< c — a literal datum
    Var,     ///< x
    Lambda,  ///< (lambda (x1 ... xn) M)
    Let,     ///< (let (x M1) M2) — single binding, per Fig. 1
    If,      ///< (if M1 M2 M3)
    App,     ///< (M0 M1 ... Mn)
    PrimApp, ///< (O M1 ... Mn)
    Set,     ///< (set! x M) — surface syntax only; removed by AssignElim
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// True for the V (value / trivial) productions of the grammar:
  /// constants, variables, and lambda abstractions.
  bool isTrivial() const {
    return K == Kind::Const || K == Kind::Var || K == Kind::Lambda;
  }

  /// Structural equality up to source locations.
  bool equals(const Expr *Other) const;

  /// Unparses to concrete syntax (via syntax/Printer.cpp).
  std::string print() const;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

class ConstExpr : public Expr {
public:
  ConstExpr(const Datum *Value, SourceLoc Loc)
      : Expr(Kind::Const, Loc), Value(Value) {}
  const Datum *value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Const; }

private:
  const Datum *Value;
};

class VarExpr : public Expr {
public:
  VarExpr(Symbol Name, SourceLoc Loc) : Expr(Kind::Var, Loc), Name(Name) {}
  Symbol name() const { return Name; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  Symbol Name;
};

class LambdaExpr : public Expr {
public:
  LambdaExpr(std::vector<Symbol> Params, const Expr *Body, SourceLoc Loc)
      : Expr(Kind::Lambda, Loc), Params(std::move(Params)), Body(Body) {}
  const std::vector<Symbol> &params() const { return Params; }
  const Expr *body() const { return Body; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Lambda; }

private:
  std::vector<Symbol> Params;
  const Expr *Body;
};

class LetExpr : public Expr {
public:
  LetExpr(Symbol Name, const Expr *Init, const Expr *Body, SourceLoc Loc)
      : Expr(Kind::Let, Loc), Name(Name), Init(Init), Body(Body) {}
  Symbol name() const { return Name; }
  const Expr *init() const { return Init; }
  const Expr *body() const { return Body; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Let; }

private:
  Symbol Name;
  const Expr *Init;
  const Expr *Body;
};

class IfExpr : public Expr {
public:
  IfExpr(const Expr *Test, const Expr *Then, const Expr *Else, SourceLoc Loc)
      : Expr(Kind::If, Loc), Test(Test), Then(Then), Else(Else) {}
  const Expr *test() const { return Test; }
  const Expr *thenBranch() const { return Then; }
  const Expr *elseBranch() const { return Else; }
  static bool classof(const Expr *E) { return E->kind() == Kind::If; }

private:
  const Expr *Test;
  const Expr *Then;
  const Expr *Else;
};

class AppExpr : public Expr {
public:
  AppExpr(const Expr *Callee, std::vector<const Expr *> Args, SourceLoc Loc)
      : Expr(Kind::App, Loc), Callee(Callee), Args(std::move(Args)) {}
  const Expr *callee() const { return Callee; }
  const std::vector<const Expr *> &args() const { return Args; }
  static bool classof(const Expr *E) { return E->kind() == Kind::App; }

private:
  const Expr *Callee;
  std::vector<const Expr *> Args;
};

class PrimAppExpr : public Expr {
public:
  PrimAppExpr(PrimOp Op, std::vector<const Expr *> Args, SourceLoc Loc)
      : Expr(Kind::PrimApp, Loc), Op(Op), Args(std::move(Args)) {}
  PrimOp op() const { return Op; }
  const std::vector<const Expr *> &args() const { return Args; }
  static bool classof(const Expr *E) { return E->kind() == Kind::PrimApp; }

private:
  PrimOp Op;
  std::vector<const Expr *> Args;
};

/// An assignment (set! Name Value). Present only between parsing and
/// assignment elimination; every later stage (ANF, BTA, compilers, the
/// evaluator) works on assignment-free Core Scheme where mutable variables
/// have been turned into boxes (make-box / box-ref / box-set!).
class SetExpr : public Expr {
public:
  SetExpr(Symbol Name, const Expr *Value, SourceLoc Loc)
      : Expr(Kind::Set, Loc), Name(Name), Value(Value) {}
  Symbol name() const { return Name; }
  const Expr *value() const { return Value; }
  static bool classof(const Expr *E) { return E->kind() == Kind::Set; }

private:
  Symbol Name;
  const Expr *Value;
};

/// A top-level definition (define (Name Params...) Body), represented after
/// desugaring as Name bound to a LambdaExpr.
struct Definition {
  Symbol Name;
  const LambdaExpr *Fn = nullptr;
};

/// A whole program: an ordered set of mutually recursive top-level function
/// definitions. Evaluation starts by applying a named entry function.
struct Program {
  std::vector<Definition> Defs;

  const Definition *find(Symbol Name) const {
    for (const Definition &D : Defs)
      if (D.Name == Name)
        return &D;
    return nullptr;
  }

  std::string print() const;
};

/// Arena-backed allocator for expressions.
class ExprFactory {
public:
  explicit ExprFactory(Arena &A) : A(A) {}

  const ConstExpr *constant(const Datum *Value, SourceLoc Loc = SourceLoc()) {
    return A.create<ConstExpr>(Value, Loc);
  }
  const VarExpr *var(Symbol Name, SourceLoc Loc = SourceLoc()) {
    return A.create<VarExpr>(Name, Loc);
  }
  const LambdaExpr *lambda(std::vector<Symbol> Params, const Expr *Body,
                           SourceLoc Loc = SourceLoc()) {
    return A.create<LambdaExpr>(std::move(Params), Body, Loc);
  }
  const LetExpr *let(Symbol Name, const Expr *Init, const Expr *Body,
                     SourceLoc Loc = SourceLoc()) {
    return A.create<LetExpr>(Name, Init, Body, Loc);
  }
  const IfExpr *ifExpr(const Expr *Test, const Expr *Then, const Expr *Else,
                       SourceLoc Loc = SourceLoc()) {
    return A.create<IfExpr>(Test, Then, Else, Loc);
  }
  const AppExpr *app(const Expr *Callee, std::vector<const Expr *> Args,
                     SourceLoc Loc = SourceLoc()) {
    return A.create<AppExpr>(Callee, std::move(Args), Loc);
  }
  const PrimAppExpr *primApp(PrimOp Op, std::vector<const Expr *> Args,
                             SourceLoc Loc = SourceLoc()) {
    return A.create<PrimAppExpr>(Op, std::move(Args), Loc);
  }
  const SetExpr *set(Symbol Name, const Expr *Value,
                     SourceLoc Loc = SourceLoc()) {
    return A.create<SetExpr>(Name, Value, Loc);
  }

  Arena &arena() { return A; }

private:
  Arena &A;
};

} // namespace pecomp

#endif // PECOMP_SYNTAX_EXPR_H
