//===- compiler/AnfCompiler.cpp - The ANF compiler -------------------------===//

#include "compiler/AnfCompiler.h"

#include "frontend/FreeVars.h"
#include "support/Casting.h"
#include "syntax/AnfCheck.h"
#include "vm/Convert.h"

#include <cstdio>
#include <cstdlib>

using namespace pecomp;
using namespace pecomp::compiler;

bool compiler::letTestIsOnStack(const LetExpr *L) {
  const auto *If = dyn_cast<IfExpr>(L->body());
  if (!If)
    return false;
  const auto *Test = dyn_cast<VarExpr>(If->test());
  if (!Test || Test->name() != L->name())
    return false;
  return !freeVarSet(If->thenBranch()).count(L->name()) &&
         !freeVarSet(If->elseBranch()).count(L->name());
}

CompiledProgram AnfCompiler::compileProgram(const Program &P) {
  assert(!checkAnf(P) && "AnfCompiler requires ANF input");
  CompiledProgram Out;
  for (const Definition &D : P.Defs) {
    // Claim the global slot before compiling the body so self-references
    // and forward references resolve to stable indices.
    C.globals().lookupOrAdd(D.Name);
    Out.Defs.emplace_back(D.Name, compileFunction(D.Name, D.Fn));
  }
  if (!C.overflowedFunction().empty()) {
    // This entry point has no error channel; a poisoned object must not
    // escape silently. (The PGG's generateObject path reports the same
    // condition as a recoverable error instead.)
    fprintf(stderr, "pecomp: jump out of i16 range while assembling '%s'\n",
            C.overflowedFunction().c_str());
    abort();
  }
  return Out;
}

const vm::CodeObject *AnfCompiler::compileFunction(Symbol Name,
                                                   const LambdaExpr *Fn) {
  return C.makeCodeObject(Name.str(), Fn->params(), {},
                          [&](const CEnv &Env, uint32_t Depth) {
                            return tail(Fn->body(), Env, Depth);
                          });
}

const Fragment *AnfCompiler::tail(const Expr *E, const CEnv &Env,
                                  uint32_t Depth) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
  case Expr::Kind::Lambda:
    return C.returnValue(push(E, Env, Depth));
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    const Fragment *Init = serious(L->init(), Env, Depth);
    // (let (t I) (if t M1 M2)), t dead in the branches: the conditional
    // consumes I's value from the stack, saving the slot and the reload.
    if (letTestIsOnStack(L)) {
      const auto *If = cast<IfExpr>(L->body());
      return C.letBinding(Init,
                          C.ifOnStack(tail(If->thenBranch(), Env, Depth),
                                      tail(If->elseBranch(), Env, Depth)));
    }
    CEnv BodyEnv = Env.bind(C.envArena(), L->name(),
                            Location::local(static_cast<uint16_t>(Depth)));
    return C.letBinding(Init, tail(L->body(), BodyEnv, Depth + 1));
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    return C.ifThenElse(push(I->test(), Env, Depth),
                        tail(I->thenBranch(), Env, Depth),
                        tail(I->elseBranch(), Env, Depth));
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    const Fragment *Callee = push(A->callee(), Env, Depth);
    std::vector<const Fragment *> Args;
    for (size_t I = 0; I != A->args().size(); ++I)
      Args.push_back(
          push(A->args()[I], Env, Depth + 1 + static_cast<uint32_t>(I)));
    return C.call(Callee, Args, /*Tail=*/true);
  }
  case Expr::Kind::PrimApp: {
    const auto *P = cast<PrimAppExpr>(E);
    std::vector<const Fragment *> Args;
    for (size_t I = 0; I != P->args().size(); ++I)
      Args.push_back(
          push(P->args()[I], Env, Depth + static_cast<uint32_t>(I)));
    return C.returnValue(C.primApp(P->op(), Args));
  }
  case Expr::Kind::Set:
    break;
  }
  assert(false && "non-ANF expression reached the ANF compiler");
  return nullptr;
}

const Fragment *AnfCompiler::push(const Expr *E, const CEnv &Env,
                                  uint32_t Depth) {
  (void)Depth; // trivial pushes address locals by slot, not by depth
  switch (E->kind()) {
  case Expr::Kind::Const:
    return C.pushLiteral(
        vm::valueFromDatum(C.store().heap(), cast<ConstExpr>(E)->value()));
  case Expr::Kind::Var:
    return C.pushVar(Env, cast<VarExpr>(E)->name());
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    // Captured variables: lexically visible free variables. Anything not
    // in the compile-time environment is a global reference.
    std::vector<Symbol> Captured;
    for (Symbol Free : freeVars(L))
      if (Env.lookup(Free))
        Captured.push_back(Free);
    const vm::CodeObject *Child = C.makeCodeObject(
        "lambda", L->params(), Captured,
        [&](const CEnv &BodyEnv, uint32_t BodyDepth) {
          return tail(L->body(), BodyEnv, BodyDepth);
        });
    return C.pushClosure(Env, Child, Captured);
  }
  default:
    assert(false && "expected a trivial expression");
    return nullptr;
  }
}

const Fragment *AnfCompiler::serious(const Expr *E, const CEnv &Env,
                                     uint32_t Depth) {
  if (const auto *A = dyn_cast<AppExpr>(E)) {
    const Fragment *Callee = push(A->callee(), Env, Depth);
    std::vector<const Fragment *> Args;
    for (size_t I = 0; I != A->args().size(); ++I)
      Args.push_back(
          push(A->args()[I], Env, Depth + 1 + static_cast<uint32_t>(I)));
    return C.call(Callee, Args, /*Tail=*/false);
  }
  if (const auto *P = dyn_cast<PrimAppExpr>(E)) {
    std::vector<const Fragment *> Args;
    for (size_t I = 0; I != P->args().size(); ++I)
      Args.push_back(
          push(P->args()[I], Env, Depth + static_cast<uint32_t>(I)));
    return C.primApp(P->op(), Args);
  }
  return push(E, Env, Depth);
}
