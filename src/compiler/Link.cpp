//===- compiler/Link.cpp - Compiled programs and linking ------------------===//

#include "compiler/Link.h"

#include "compiler/Peephole.h"
#include "sexp/Reader.h"
#include "support/Timer.h"
#include "vm/Convert.h"
#include "vm/Jit.h"
#include "vm/Trap.h"
#include "vm/Verify.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

using namespace pecomp;
using namespace pecomp::compiler;

namespace {

/// Builds the pre-decoded instruction stream for \p Code and every nested
/// child, so verified programs pay decode cost at link time, not on the
/// first call (and the bytes are frozen from here on, see
/// CodeObject::mutableCode).
void predecode(const vm::CodeObject *Code) {
  Code->decoded();
  for (const vm::CodeObject *Child : Code->children())
    predecode(Child);
}

/// Compiles \p Code and every nested child to native blocks (vm/Jit.h).
/// Requires predecode() to have run first; a no-op on hosts without the
/// native tier (CodeObject::jit caches the "no code" answer either way).
void prejit(const vm::CodeObject *Code) {
  Code->jit();
  for (const vm::CodeObject *Child : Code->children())
    prejit(Child);
}

} // namespace

void compiler::linkProgram(vm::Machine &M, vm::GlobalTable &Globals,
                           const CompiledProgram &P) {
  for (const auto &[Name, Code] : P.Defs)
    M.setGlobal(Globals.lookupOrAdd(Name), M.makeProcedure(Code));
}

Result<bool> compiler::linkProgramVerified(vm::Machine &M,
                                           vm::GlobalTable &Globals,
                                           const CompiledProgram &P,
                                           const LinkOptions &Opts) {
  // Code produced while the heap was faulted may be truncated; refuse it
  // the same way the generators that produced it report the fault.
  if (M.heap().faulted())
    return vm::trapError(vm::TrapKind::HeapExhausted,
                         "refusing to link: " + M.heap().faultMessage());
  for (const auto &[Name, Code] : P.Defs)
    if (auto Err = vm::verifyCode(Code, 0, M.limits().MaxStackDepth))
      return Error("refusing to link '" + Name.str() + "': " + *Err);
  // Rewrites only verified code, and strictly before the bytes freeze:
  // already-processed objects (cache hits, relinks) are skipped inside.
  if (Opts.Peephole)
    peepholeProgram(P);
  // Verified code always pre-decodes cleanly; do it eagerly so the first
  // call runs on the fast loop with no decode hiccup.
  {
    Timer DecodeTimer;
    for (const auto &[Name, Code] : P.Defs)
      predecode(Code);
    if (vm::Profile *Prof = M.profile())
      Prof->DecodeNanos +=
          static_cast<uint64_t>(DecodeTimer.seconds() * 1e9);
  }
  // Same idea one tier up: compile the native blocks at link time so the
  // first call enters the template JIT directly. Attributed to the same
  // Profile::JitNanos counter Machine::jitFor uses for lazy compiles.
  if (Opts.NativeJit && vm::jitAvailable()) {
    Timer JitTimer;
    for (const auto &[Name, Code] : P.Defs)
      prejit(Code);
    if (vm::Profile *Prof = M.profile())
      Prof->JitNanos += static_cast<uint64_t>(JitTimer.seconds() * 1e9);
  }
  linkProgram(M, Globals, P);
  return true;
}

Result<vm::Value> compiler::callGlobal(vm::Machine &M,
                                       const vm::GlobalTable &Globals,
                                       Symbol Name,
                                       std::span<const vm::Value> Args) {
  std::optional<uint16_t> Index = Globals.lookup(Name);
  if (!Index)
    return Error("no global named '" + Name.str() + "'");
  return M.call(M.getGlobal(*Index), Args);
}

//===----------------------------------------------------------------------===//
// Portable snapshots
//===----------------------------------------------------------------------===//

namespace {

/// Rough retained-byte estimate of one portable unit. Exactness does not
/// matter — the cache budget only needs to scale with reality — but the
/// estimate must count everything that grows (bytes, tables, datum trees).
size_t datumBytes(const Datum *D) {
  if (!D)
    return sizeof(PortableCode::Literal);
  switch (D->kind()) {
  case Datum::Kind::String:
    return sizeof(StringDatum) + cast<StringDatum>(D)->value().size();
  case Datum::Kind::Pair:
    return sizeof(PairDatum) + datumBytes(cast<PairDatum>(D)->car()) +
           datumBytes(cast<PairDatum>(D)->cdr());
  default:
    return sizeof(FixnumDatum);
  }
}

size_t unitBytes(const PortableCode &U) {
  size_t N = sizeof(PortableCode) + U.Name.size() + U.Code.size() +
             U.Children.size() * sizeof(uint32_t) +
             U.GlobalRelocs.size() * sizeof(uint32_t);
  for (const PortableCode::Literal &L : U.Literals)
    N += sizeof(PortableCode::Literal) + datumBytes(L.D);
  return N;
}

} // namespace

Result<std::shared_ptr<const PortableProgram>>
PortableProgram::capture(const CompiledProgram &P,
                         const vm::GlobalTable &Globals) {
  std::shared_ptr<PortableProgram> Out(new PortableProgram());

  for (size_t I = 0; I != Globals.size(); ++I)
    Out->GlobalNames.push_back(Globals.name(static_cast<uint16_t>(I)));

  // Depth-first over the code-object graph; children may be shared, so
  // each object is captured once and referenced by index.
  std::unordered_map<const vm::CodeObject *, uint32_t> Index;
  std::function<Result<uint32_t>(const vm::CodeObject *)> Snapshot =
      [&](const vm::CodeObject *C) -> Result<uint32_t> {
    auto It = Index.find(C);
    if (It != Index.end())
      return It->second;

    // The decoder doubles as the relocation scanner: it knows every
    // operand width and rejects exactly the irregular byte streams whose
    // GlobalRef sites we could not find reliably.
    const vm::DecodedStream *DS = C->decoded();
    if (!DS)
      return makeError("cannot capture '" + C->name() +
                       "': code does not decode as one instruction stream");

    uint32_t Slot = static_cast<uint32_t>(Out->Units.size());
    Index.emplace(C, Slot);
    Out->Units.emplace_back();

    PortableCode U;
    U.Name = C->name();
    U.Arity = C->arity();
    U.Code = C->code();
    U.Peepholed = C->peepholed();
    for (vm::Value V : C->literals()) {
      PortableCode::Literal L;
      if (!V.isUnspecified()) {
        L.D = vm::datumFromValue(Out->Datums, V);
        if (!L.D)
          return makeError("cannot capture '" + C->name() +
                           "': literal is not portable data (" +
                           vm::valueTypeName(V) + ")");
      }
      U.Literals.push_back(L);
    }
    for (const vm::DecodedInsn &I : DS->Insns) {
      if (I.Opcode != vm::Op::GlobalRef)
        continue;
      if (I.A >= Out->GlobalNames.size())
        return makeError("cannot capture '" + C->name() +
                         "': GlobalRef past the global table");
      U.GlobalRelocs.push_back(I.PC + 1);
    }
    for (const vm::CodeObject *Child : C->children()) {
      Result<uint32_t> ChildSlot = Snapshot(Child);
      if (!ChildSlot)
        return ChildSlot.takeError();
      U.Children.push_back(*ChildSlot);
    }

    Out->Bytes += unitBytes(U);
    Out->Units[Slot] = std::move(U);
    return Slot;
  };

  for (const auto &[Name, Code] : P.Defs) {
    Result<uint32_t> Slot = Snapshot(Code);
    if (!Slot)
      return Slot.takeError();
    Out->Defs.emplace_back(Name, *Slot);
  }
  Out->Bytes += Out->GlobalNames.size() * sizeof(Symbol) +
                Out->Defs.size() * sizeof(Out->Defs[0]);
  return std::shared_ptr<const PortableProgram>(std::move(Out));
}

//===----------------------------------------------------------------------===//
// Snapshot serialization (the persistent-store payload)
//===----------------------------------------------------------------------===//

namespace {

/// Little-endian, length-prefixed append-only writer.
struct PayloadWriter {
  std::vector<uint8_t> Out;

  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int S = 0; S < 32; S += 8)
      Out.push_back(static_cast<uint8_t>(V >> S));
  }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void bytes(std::span<const uint8_t> B) {
    u32(static_cast<uint32_t>(B.size()));
    Out.insert(Out.end(), B.begin(), B.end());
  }
};

/// Bounds-checked reader over an untrusted payload. Every accessor
/// returns false instead of reading past the end; the caller converts
/// that into one classified error.
struct PayloadReader {
  std::span<const uint8_t> In;
  size_t Pos = 0;

  size_t remaining() const { return In.size() - Pos; }
  bool u8(uint8_t &V) {
    if (remaining() < 1)
      return false;
    V = In[Pos++];
    return true;
  }
  bool u32(uint32_t &V) {
    if (remaining() < 4)
      return false;
    V = 0;
    for (int S = 0; S < 32; S += 8)
      V |= static_cast<uint32_t>(In[Pos++]) << S;
    return true;
  }
  bool str(std::string &S) {
    uint32_t N;
    if (!u32(N) || remaining() < N)
      return false;
    S.assign(reinterpret_cast<const char *>(In.data()) + Pos, N);
    Pos += N;
    return true;
  }
  bool bytes(std::vector<uint8_t> &B) {
    uint32_t N;
    if (!u32(N) || remaining() < N)
      return false;
    B.assign(In.begin() + Pos, In.begin() + Pos + N);
    Pos += N;
    return true;
  }
  /// Reads an element count that prefixes records of at least
  /// \p MinElemBytes encoded bytes each — rejecting counts the remaining
  /// payload cannot possibly hold, so a corrupt length field cannot
  /// drive a multi-gigabyte reserve.
  bool count(uint32_t &N, size_t MinElemBytes) {
    if (!u32(N))
      return false;
    return static_cast<size_t>(N) * MinElemBytes <= remaining();
  }
};

/// The deepest MakeClosure nesting a snapshot may declare. Real residual
/// programs nest as deeply as their lambdas, i.e. shallowly; the cap
/// exists so an adversarial child graph cannot overflow the C++ stack in
/// the recursive byte-code verifier downstream.
constexpr size_t MaxChildDepth = 512;

} // namespace

std::vector<uint8_t> PortableProgram::serialize() const {
  PayloadWriter W;
  W.u32(static_cast<uint32_t>(Units.size()));
  W.u32(static_cast<uint32_t>(Defs.size()));
  W.u32(static_cast<uint32_t>(GlobalNames.size()));
  for (Symbol G : GlobalNames)
    W.str(G.str());
  for (const auto &[Name, Slot] : Defs) {
    W.str(Name.str());
    W.u32(Slot);
  }
  for (const PortableCode &U : Units) {
    W.str(U.Name);
    W.u32(U.Arity);
    W.u8(U.Peepholed ? 1 : 0);
    W.bytes(U.Code);
    W.u32(static_cast<uint32_t>(U.Literals.size()));
    for (const PortableCode::Literal &L : U.Literals) {
      W.u8(L.D ? 1 : 0);
      if (L.D)
        W.str(L.D->write());
    }
    W.u32(static_cast<uint32_t>(U.Children.size()));
    for (uint32_t C : U.Children)
      W.u32(C);
    W.u32(static_cast<uint32_t>(U.GlobalRelocs.size()));
    for (uint32_t R : U.GlobalRelocs)
      W.u32(R);
  }
  return W.Out;
}

Result<std::shared_ptr<const PortableProgram>>
PortableProgram::deserialize(std::span<const uint8_t> Bytes) {
  auto Bad = [](const std::string &What) {
    return makeError("snapshot payload: " + What);
  };

  PayloadReader R{Bytes};
  uint32_t NumUnits, NumDefs, NumGlobals;
  // A unit encodes at least name+arity+peep+code+3 counts = 21 bytes; a
  // def at least 8; a global name at least 4.
  if (!R.count(NumUnits, 21) || !R.count(NumDefs, 8) ||
      !R.count(NumGlobals, 4))
    return Bad("truncated or oversized section counts");

  std::shared_ptr<PortableProgram> Out(new PortableProgram());
  Out->GlobalNames.reserve(NumGlobals);
  std::string S;
  for (uint32_t I = 0; I != NumGlobals; ++I) {
    if (!R.str(S))
      return Bad("truncated global-name table");
    Out->GlobalNames.push_back(Symbol::intern(S));
  }
  Out->Defs.reserve(NumDefs);
  for (uint32_t I = 0; I != NumDefs; ++I) {
    uint32_t Slot;
    if (!R.str(S) || !R.u32(Slot))
      return Bad("truncated definition table");
    if (Slot >= NumUnits)
      return Bad("definition '" + S + "' names unit " + std::to_string(Slot) +
                 " of " + std::to_string(NumUnits));
    Out->Defs.emplace_back(Symbol::intern(S), Slot);
  }

  Out->Units.reserve(NumUnits);
  for (uint32_t I = 0; I != NumUnits; ++I) {
    PortableCode U;
    uint8_t Peep;
    if (!R.str(U.Name) || !R.u32(U.Arity) || !R.u8(Peep) ||
        !R.bytes(U.Code))
      return Bad("truncated unit " + std::to_string(I));
    U.Peepholed = Peep != 0;
    uint32_t N;
    if (!R.count(N, 1))
      return Bad("bad literal count in unit " + std::to_string(I));
    U.Literals.reserve(N);
    for (uint32_t L = 0; L != N; ++L) {
      uint8_t Tag;
      if (!R.u8(Tag) || Tag > 1)
        return Bad("bad literal tag in unit " + std::to_string(I));
      PortableCode::Literal Lit;
      if (Tag == 1) {
        if (!R.str(S))
          return Bad("truncated literal in unit " + std::to_string(I));
        Result<const Datum *> D = readDatum(S, Out->Datums);
        if (!D)
          return Bad("unreadable literal in unit " + std::to_string(I) +
                     ": " + D.error().render());
        Lit.D = *D;
      }
      U.Literals.push_back(Lit);
    }
    if (!R.count(N, 4))
      return Bad("bad child count in unit " + std::to_string(I));
    U.Children.reserve(N);
    for (uint32_t C = 0; C != N; ++C) {
      uint32_t Child;
      if (!R.u32(Child))
        return Bad("truncated child table in unit " + std::to_string(I));
      if (Child >= NumUnits)
        return Bad("unit " + std::to_string(I) + " names child " +
                   std::to_string(Child) + " of " + std::to_string(NumUnits));
      U.Children.push_back(Child);
    }
    if (!R.count(N, 4))
      return Bad("bad reloc count in unit " + std::to_string(I));
    U.GlobalRelocs.reserve(N);
    for (uint32_t G = 0; G != N; ++G) {
      uint32_t Off;
      if (!R.u32(Off))
        return Bad("truncated reloc table in unit " + std::to_string(I));
      // instantiate() rewrites two bytes at Off and feeds the u16 it finds
      // there into the global-name table; both must be provably in range
      // before this snapshot is allowed to exist.
      if (Off + 2 > U.Code.size() || Off + 2 < Off)
        return Bad("reloc site past code in unit " + std::to_string(I));
      uint16_t Slot = static_cast<uint16_t>(U.Code[Off] |
                                            (U.Code[Off + 1] << 8));
      if (Slot >= NumGlobals)
        return Bad("reloc in unit " + std::to_string(I) +
                   " names global slot " + std::to_string(Slot) + " of " +
                   std::to_string(NumGlobals));
      U.GlobalRelocs.push_back(Off);
    }
    Out->Bytes += unitBytes(U);
    Out->Units.push_back(std::move(U));
  }
  if (R.remaining() != 0)
    return Bad(std::to_string(R.remaining()) + " trailing bytes");

  // The child graph must be acyclic, and tame under *expansion*: the
  // recursive verifier walks children per use with no sharing-awareness,
  // so a forged cycle, a pathologically deep chain, or a small DAG whose
  // unrolled tree is exponential (30 units, two shared children each)
  // must all die here, not downstream. One iterative post-order pass
  // detects cycles and computes, per unit, the true maximum nesting depth
  // and the size of the fully expanded child tree.
  // Colors: 0 = unvisited, 1 = on the current path, 2 = done.
  std::vector<uint8_t> Color(Out->Units.size(), 0);
  std::vector<uint64_t> Depth(Out->Units.size(), 0);
  std::vector<uint64_t> TreeSize(Out->Units.size(), 0);
  constexpr uint64_t MaxTreeSize = 1u << 20;
  struct Frame {
    uint32_t Unit;
    size_t NextChild;
  };
  for (uint32_t Root = 0; Root != Out->Units.size(); ++Root) {
    if (Color[Root])
      continue;
    std::vector<Frame> Stack{{Root, 0}};
    Color[Root] = 1;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      const PortableCode &U = Out->Units[F.Unit];
      if (F.NextChild == U.Children.size()) {
        uint64_t D = 0, T = 1;
        for (uint32_t C : U.Children) {
          D = std::max(D, Depth[C]);
          T = std::min(T + TreeSize[C], MaxTreeSize + 1);
        }
        if (D + 1 > MaxChildDepth)
          return Bad("child nesting deeper than " +
                     std::to_string(MaxChildDepth));
        if (T > MaxTreeSize)
          return Bad("expanded child tree larger than " +
                     std::to_string(MaxTreeSize) + " units");
        Depth[F.Unit] = D + 1;
        TreeSize[F.Unit] = T;
        Color[F.Unit] = 2;
        Stack.pop_back();
        continue;
      }
      uint32_t Child = U.Children[F.NextChild++];
      if (Color[Child] == 1)
        return Bad("cycle through unit " + std::to_string(Child));
      if (Color[Child] == 0) {
        Color[Child] = 1;
        Stack.push_back({Child, 0});
      }
    }
  }

  Out->Bytes += Out->GlobalNames.size() * sizeof(Symbol) +
                Out->Defs.size() * sizeof(Out->Defs[0]);
  return std::shared_ptr<const PortableProgram>(std::move(Out));
}

CompiledProgram PortableProgram::instantiate(vm::CodeStore &Store,
                                             vm::GlobalTable &Globals) const {
  // Pass 1: create every code object so child links can point anywhere.
  std::vector<vm::CodeObject *> Built;
  Built.reserve(Units.size());
  for (const PortableCode &U : Units)
    Built.push_back(Store.create(U.Name, U.Arity));

  vm::Heap &H = Store.heap();
  for (size_t I = 0; I != Units.size(); ++I) {
    const PortableCode &U = Units[I];
    vm::CodeObject *C = Built[I];
    C->mutableCode() = U.Code;
    if (U.Peepholed)
      C->markPeepholed(); // snapshot already optimized: hits skip the pass
    for (uint32_t Off : U.GlobalRelocs) {
      uint16_t Old = static_cast<uint16_t>(C->mutableCode()[Off] |
                                           (C->mutableCode()[Off + 1] << 8));
      uint16_t New = Globals.lookupOrAdd(GlobalNames[Old]);
      C->mutableCode()[Off] = static_cast<uint8_t>(New & 0xff);
      C->mutableCode()[Off + 1] = static_cast<uint8_t>(New >> 8);
    }
    for (const PortableCode::Literal &L : U.Literals)
      // The value is reachable through the code object (already in the
      // store, whose literals are GC roots) as soon as addLiteral returns,
      // and no allocation happens in between.
      C->addLiteral(L.D ? vm::valueFromDatum(H, L.D)
                        : vm::Value::unspecified());
    for (uint32_t Child : U.Children)
      C->addChild(Built[Child]);
  }

  CompiledProgram Out;
  for (const auto &[Name, Slot] : Defs)
    Out.Defs.emplace_back(Name, Built[Slot]);
  return Out;
}
