//===- compiler/Link.cpp - Compiled programs and linking ------------------===//

#include "compiler/Link.h"

#include "compiler/Peephole.h"
#include "support/Timer.h"
#include "vm/Convert.h"
#include "vm/Trap.h"
#include "vm/Verify.h"

#include <functional>
#include <unordered_map>

using namespace pecomp;
using namespace pecomp::compiler;

namespace {

/// Builds the pre-decoded instruction stream for \p Code and every nested
/// child, so verified programs pay decode cost at link time, not on the
/// first call (and the bytes are frozen from here on, see
/// CodeObject::mutableCode).
void predecode(const vm::CodeObject *Code) {
  Code->decoded();
  for (const vm::CodeObject *Child : Code->children())
    predecode(Child);
}

} // namespace

void compiler::linkProgram(vm::Machine &M, vm::GlobalTable &Globals,
                           const CompiledProgram &P) {
  for (const auto &[Name, Code] : P.Defs)
    M.setGlobal(Globals.lookupOrAdd(Name), M.makeProcedure(Code));
}

Result<bool> compiler::linkProgramVerified(vm::Machine &M,
                                           vm::GlobalTable &Globals,
                                           const CompiledProgram &P,
                                           const LinkOptions &Opts) {
  // Code produced while the heap was faulted may be truncated; refuse it
  // the same way the generators that produced it report the fault.
  if (M.heap().faulted())
    return vm::trapError(vm::TrapKind::HeapExhausted,
                         "refusing to link: " + M.heap().faultMessage());
  for (const auto &[Name, Code] : P.Defs)
    if (auto Err = vm::verifyCode(Code, 0, M.limits().MaxStackDepth))
      return Error("refusing to link '" + Name.str() + "': " + *Err);
  // Rewrites only verified code, and strictly before the bytes freeze:
  // already-processed objects (cache hits, relinks) are skipped inside.
  if (Opts.Peephole)
    peepholeProgram(P);
  // Verified code always pre-decodes cleanly; do it eagerly so the first
  // call runs on the fast loop with no decode hiccup.
  {
    Timer DecodeTimer;
    for (const auto &[Name, Code] : P.Defs)
      predecode(Code);
    if (vm::Profile *Prof = M.profile())
      Prof->DecodeNanos +=
          static_cast<uint64_t>(DecodeTimer.seconds() * 1e9);
  }
  linkProgram(M, Globals, P);
  return true;
}

Result<vm::Value> compiler::callGlobal(vm::Machine &M,
                                       const vm::GlobalTable &Globals,
                                       Symbol Name,
                                       std::span<const vm::Value> Args) {
  std::optional<uint16_t> Index = Globals.lookup(Name);
  if (!Index)
    return Error("no global named '" + Name.str() + "'");
  return M.call(M.getGlobal(*Index), Args);
}

//===----------------------------------------------------------------------===//
// Portable snapshots
//===----------------------------------------------------------------------===//

namespace {

/// Rough retained-byte estimate of one portable unit. Exactness does not
/// matter — the cache budget only needs to scale with reality — but the
/// estimate must count everything that grows (bytes, tables, datum trees).
size_t datumBytes(const Datum *D) {
  if (!D)
    return sizeof(PortableCode::Literal);
  switch (D->kind()) {
  case Datum::Kind::String:
    return sizeof(StringDatum) + cast<StringDatum>(D)->value().size();
  case Datum::Kind::Pair:
    return sizeof(PairDatum) + datumBytes(cast<PairDatum>(D)->car()) +
           datumBytes(cast<PairDatum>(D)->cdr());
  default:
    return sizeof(FixnumDatum);
  }
}

size_t unitBytes(const PortableCode &U) {
  size_t N = sizeof(PortableCode) + U.Name.size() + U.Code.size() +
             U.Children.size() * sizeof(uint32_t) +
             U.GlobalRelocs.size() * sizeof(uint32_t);
  for (const PortableCode::Literal &L : U.Literals)
    N += sizeof(PortableCode::Literal) + datumBytes(L.D);
  return N;
}

} // namespace

Result<std::shared_ptr<const PortableProgram>>
PortableProgram::capture(const CompiledProgram &P,
                         const vm::GlobalTable &Globals) {
  std::shared_ptr<PortableProgram> Out(new PortableProgram());

  for (size_t I = 0; I != Globals.size(); ++I)
    Out->GlobalNames.push_back(Globals.name(static_cast<uint16_t>(I)));

  // Depth-first over the code-object graph; children may be shared, so
  // each object is captured once and referenced by index.
  std::unordered_map<const vm::CodeObject *, uint32_t> Index;
  std::function<Result<uint32_t>(const vm::CodeObject *)> Snapshot =
      [&](const vm::CodeObject *C) -> Result<uint32_t> {
    auto It = Index.find(C);
    if (It != Index.end())
      return It->second;

    // The decoder doubles as the relocation scanner: it knows every
    // operand width and rejects exactly the irregular byte streams whose
    // GlobalRef sites we could not find reliably.
    const vm::DecodedStream *DS = C->decoded();
    if (!DS)
      return makeError("cannot capture '" + C->name() +
                       "': code does not decode as one instruction stream");

    uint32_t Slot = static_cast<uint32_t>(Out->Units.size());
    Index.emplace(C, Slot);
    Out->Units.emplace_back();

    PortableCode U;
    U.Name = C->name();
    U.Arity = C->arity();
    U.Code = C->code();
    U.Peepholed = C->peepholed();
    for (vm::Value V : C->literals()) {
      PortableCode::Literal L;
      if (!V.isUnspecified()) {
        L.D = vm::datumFromValue(Out->Datums, V);
        if (!L.D)
          return makeError("cannot capture '" + C->name() +
                           "': literal is not portable data (" +
                           vm::valueTypeName(V) + ")");
      }
      U.Literals.push_back(L);
    }
    for (const vm::DecodedInsn &I : DS->Insns) {
      if (I.Opcode != vm::Op::GlobalRef)
        continue;
      if (I.A >= Out->GlobalNames.size())
        return makeError("cannot capture '" + C->name() +
                         "': GlobalRef past the global table");
      U.GlobalRelocs.push_back(I.PC + 1);
    }
    for (const vm::CodeObject *Child : C->children()) {
      Result<uint32_t> ChildSlot = Snapshot(Child);
      if (!ChildSlot)
        return ChildSlot.takeError();
      U.Children.push_back(*ChildSlot);
    }

    Out->Bytes += unitBytes(U);
    Out->Units[Slot] = std::move(U);
    return Slot;
  };

  for (const auto &[Name, Code] : P.Defs) {
    Result<uint32_t> Slot = Snapshot(Code);
    if (!Slot)
      return Slot.takeError();
    Out->Defs.emplace_back(Name, *Slot);
  }
  Out->Bytes += Out->GlobalNames.size() * sizeof(Symbol) +
                Out->Defs.size() * sizeof(Out->Defs[0]);
  return std::shared_ptr<const PortableProgram>(std::move(Out));
}

CompiledProgram PortableProgram::instantiate(vm::CodeStore &Store,
                                             vm::GlobalTable &Globals) const {
  // Pass 1: create every code object so child links can point anywhere.
  std::vector<vm::CodeObject *> Built;
  Built.reserve(Units.size());
  for (const PortableCode &U : Units)
    Built.push_back(Store.create(U.Name, U.Arity));

  vm::Heap &H = Store.heap();
  for (size_t I = 0; I != Units.size(); ++I) {
    const PortableCode &U = Units[I];
    vm::CodeObject *C = Built[I];
    C->mutableCode() = U.Code;
    if (U.Peepholed)
      C->markPeepholed(); // snapshot already optimized: hits skip the pass
    for (uint32_t Off : U.GlobalRelocs) {
      uint16_t Old = static_cast<uint16_t>(C->mutableCode()[Off] |
                                           (C->mutableCode()[Off + 1] << 8));
      uint16_t New = Globals.lookupOrAdd(GlobalNames[Old]);
      C->mutableCode()[Off] = static_cast<uint8_t>(New & 0xff);
      C->mutableCode()[Off + 1] = static_cast<uint8_t>(New >> 8);
    }
    for (const PortableCode::Literal &L : U.Literals)
      // The value is reachable through the code object (already in the
      // store, whose literals are GC roots) as soon as addLiteral returns,
      // and no allocation happens in between.
      C->addLiteral(L.D ? vm::valueFromDatum(H, L.D)
                        : vm::Value::unspecified());
    for (uint32_t Child : U.Children)
      C->addChild(Built[Child]);
  }

  CompiledProgram Out;
  for (const auto &[Name, Slot] : Defs)
    Out.Defs.emplace_back(Name, Built[Slot]);
  return Out;
}
