//===- compiler/Link.cpp - Compiled programs and linking ------------------===//

#include "compiler/Link.h"

#include "support/Timer.h"
#include "vm/Trap.h"
#include "vm/Verify.h"

using namespace pecomp;
using namespace pecomp::compiler;

namespace {

/// Builds the pre-decoded instruction stream for \p Code and every nested
/// child, so verified programs pay decode cost at link time, not on the
/// first call (and the bytes are frozen from here on, see
/// CodeObject::mutableCode).
void predecode(const vm::CodeObject *Code) {
  Code->decoded();
  for (const vm::CodeObject *Child : Code->children())
    predecode(Child);
}

} // namespace

void compiler::linkProgram(vm::Machine &M, vm::GlobalTable &Globals,
                           const CompiledProgram &P) {
  for (const auto &[Name, Code] : P.Defs)
    M.setGlobal(Globals.lookupOrAdd(Name), M.makeProcedure(Code));
}

Result<bool> compiler::linkProgramVerified(vm::Machine &M,
                                           vm::GlobalTable &Globals,
                                           const CompiledProgram &P) {
  // Code produced while the heap was faulted may be truncated; refuse it
  // the same way the generators that produced it report the fault.
  if (M.heap().faulted())
    return vm::trapError(vm::TrapKind::HeapExhausted,
                         "refusing to link: " + M.heap().faultMessage());
  for (const auto &[Name, Code] : P.Defs)
    if (auto Err = vm::verifyCode(Code, 0, M.limits().MaxStackDepth))
      return Error("refusing to link '" + Name.str() + "': " + *Err);
  // Verified code always pre-decodes cleanly; do it eagerly so the first
  // call runs on the fast loop with no decode hiccup.
  {
    Timer DecodeTimer;
    for (const auto &[Name, Code] : P.Defs)
      predecode(Code);
    if (vm::Profile *Prof = M.profile())
      Prof->DecodeNanos +=
          static_cast<uint64_t>(DecodeTimer.seconds() * 1e9);
  }
  linkProgram(M, Globals, P);
  return true;
}

Result<vm::Value> compiler::callGlobal(vm::Machine &M,
                                       const vm::GlobalTable &Globals,
                                       Symbol Name,
                                       std::span<const vm::Value> Args) {
  std::optional<uint16_t> Index = Globals.lookup(Name);
  if (!Index)
    return Error("no global named '" + Name.str() + "'");
  return M.call(M.getGlobal(*Index), Args);
}
