//===- compiler/AnfCompiler.h - The ANF compiler ----------------*- C++ -*-===//
///
/// \file
/// The paper's Sec. 6.1 compiler: a recursive-descent compiler for
/// programs in A-normal form. Because ANF makes control flow explicit —
/// only applications in let position are non-tail calls, everything else
/// in tail position is a jump — no compile-time continuation is threaded
/// (contrast StockCompiler); the compiler just passes a compile-time
/// environment and a stack depth.
///
/// The per-construct work is delegated to the Compilators, which double as
/// the specializer's code-generation combinators on the fused path.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_ANFCOMPILER_H
#define PECOMP_COMPILER_ANFCOMPILER_H

#include "compiler/Compilators.h"
#include "compiler/Link.h"
#include "syntax/Expr.h"

namespace pecomp {
namespace compiler {

/// True for (let (x I) (if x M1 M2)) where x is dead in both branches: the
/// conditional may then consume I's value from the stack directly. Shared
/// by every ANF backend (fragment, direct, fused) so their output stays
/// byte-identical.
bool letTestIsOnStack(const LetExpr *L);

class AnfCompiler {
public:
  explicit AnfCompiler(Compilators &C) : C(C) {}

  /// Compiles every definition, in order. The input must be in ANF
  /// (asserted via syntax/AnfCheck in debug builds).
  CompiledProgram compileProgram(const Program &P);

  /// Compiles a single function.
  const vm::CodeObject *compileFunction(Symbol Name, const LambdaExpr *Fn);

private:
  /// M in tail position: ends in Return or TailCall.
  const Fragment *tail(const Expr *E, const CEnv &Env, uint32_t Depth);
  /// V: pushes one value. (The paper's compile-trivial.)
  const Fragment *push(const Expr *E, const CEnv &Env, uint32_t Depth);
  /// Let-bindable RHS: trivial, call, or primitive; pushes its value.
  const Fragment *serious(const Expr *E, const CEnv &Env, uint32_t Depth);

  Compilators &C;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_ANFCOMPILER_H
