//===- compiler/Link.h - Compiled programs and linking ----------*- C++ -*-===//
///
/// \file
/// A compiled program is an ordered list of (name, code object) pairs plus
/// the global table under which it was compiled. Linking instantiates each
/// definition as a zero-capture procedure in a machine's global vector.
///
/// PortableProgram is the sharable form of a linked unit: a heap- and
/// machine-independent snapshot (code bytes, literals as datums, global
/// references by *name*) that can be instantiated into any fresh
/// CodeStore/GlobalTable/Heap. It is what the cross-run specialization
/// cache (pgg/SpecCache.h) stores: CodeObjects themselves hold literal
/// Values owned by one heap and a lazily built decode cache, so they must
/// not be shared across machines on different heaps or threads — the
/// portable snapshot is immutable after capture and safe to read
/// concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_LINK_H
#define PECOMP_COMPILER_LINK_H

#include "sexp/Datum.h"
#include "support/Error.h"
#include "vm/Machine.h"

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace pecomp {
namespace compiler {

struct CompiledProgram {
  std::vector<std::pair<Symbol, const vm::CodeObject *>> Defs;

  const vm::CodeObject *find(Symbol Name) const {
    for (const auto &[N, C] : Defs)
      if (N == Name)
        return C;
    return nullptr;
  }
};

/// Installs every definition of \p P into \p M's globals per \p Globals.
void linkProgram(vm::Machine &M, vm::GlobalTable &Globals,
                 const CompiledProgram &P);

/// Knobs for the verified link pipeline.
struct LinkOptions {
  /// Run the byte-code peephole pass (compiler/Peephole.h) between
  /// verification and pre-decoding. The build option PECOMP_NO_PEEPHOLE
  /// pins the default off for pass-disabled sanitizer/baseline runs.
#ifdef PECOMP_NO_PEEPHOLE
  bool Peephole = false;
#else
  bool Peephole = true;
#endif
  /// Eagerly compile each pre-decoded definition's straight-line blocks
  /// to native code (vm/Jit.h) at link time, so first calls enter the
  /// native tier without paying the one-shot compile on the hot path.
  /// On hosts without the tier (non-x86-64) this is a no-op; the
  /// Machine-side knob (vm::Machine::setNativeJit) still decides whether
  /// compiled code is *used*. PECOMP_NO_JIT pins the default off.
#ifdef PECOMP_NO_JIT
  bool NativeJit = false;
#else
  bool NativeJit = true;
#endif
};

/// As linkProgram, but runs the byte-code verifier (vm/Verify.h) over
/// every definition first; nothing is installed if any fails. Verified
/// code is then peephole-optimized (unless disabled) and eagerly
/// pre-decoded so first calls run on the fast loop.
Result<bool> linkProgramVerified(vm::Machine &M, vm::GlobalTable &Globals,
                                 const CompiledProgram &P,
                                 const LinkOptions &Opts = {});

/// Looks up and calls an installed top-level function.
Result<vm::Value> callGlobal(vm::Machine &M, const vm::GlobalTable &Globals,
                             Symbol Name, std::span<const vm::Value> Args);

/// One code object in portable form: everything needed to rebuild it in a
/// fresh code store, with no pointers into any heap or machine.
struct PortableCode {
  /// A literal slot: a datum in the owning PortableProgram's arena, or
  /// the unspecified immediate (which has no datum spelling).
  struct Literal {
    const Datum *D = nullptr; ///< null means unspecified
  };

  std::string Name;
  uint32_t Arity = 0;
  std::vector<uint8_t> Code;
  std::vector<Literal> Literals;
  std::vector<uint32_t> Children; ///< indices into PortableProgram's units
  /// Whether the peephole pass had processed the captured object; carried
  /// into instantiated copies so cache hits are not re-optimized (and not
  /// spuriously marked optimized when the capture predates the pass).
  bool Peepholed = false;
  /// Byte offsets of GlobalRef u16 operands — the relocation sites whose
  /// indices are rewritten against the target GlobalTable at
  /// instantiation (global *names* are the stable vocabulary; slot
  /// numbers are per-table).
  std::vector<uint32_t> GlobalRelocs;
};

/// An immutable, heap-independent snapshot of a CompiledProgram. Capture
/// once, instantiate any number of times into different machines, heaps,
/// and threads; concurrent instantiation of one snapshot is safe (it is
/// read-only after capture).
class PortableProgram {
public:
  /// Snapshots \p P, which must have been compiled under \p Globals (its
  /// GlobalRef operands index that table). Fails — leaving the program
  /// uncacheable, not broken — when a definition does not decode as one
  /// linear instruction stream or carries a non-datum literal (a closure
  /// or box smuggled into a literal table; the compilers never emit
  /// those).
  static Result<std::shared_ptr<const PortableProgram>>
  capture(const CompiledProgram &P, const vm::GlobalTable &Globals);

  /// Rebuilds the program: fresh CodeObjects in \p Store, literal values
  /// allocated in \p Store's heap, global references relocated through
  /// \p Globals (names not yet present are added). The result links and
  /// runs exactly like the captured original.
  CompiledProgram instantiate(vm::CodeStore &Store,
                              vm::GlobalTable &Globals) const;

  /// Serializes the snapshot into a self-contained byte payload (the form
  /// pgg/DiskStore persists). The encoding is little-endian and
  /// length-prefixed throughout; literals travel as their canonical
  /// external (datum) spelling, which the reader/writer pair round-trips
  /// exactly. deserialize() is the inverse.
  std::vector<uint8_t> serialize() const;

  /// Rebuilds a snapshot from serialize() output. The payload is treated
  /// as *untrusted*: every length, count, index, and relocation offset is
  /// bounds-checked, and the structural invariants instantiate() relies
  /// on (child indices in range and acyclic with bounded nesting, reloc
  /// sites inside the code bytes, relocated global indices inside the
  /// name table) are re-established before anything is built — a corrupt
  /// or forged payload yields a classified error, never undefined
  /// behavior. The *semantic* trust boundary stays with the byte-code
  /// verifier, which every load path re-runs before linked code can reach
  /// a Machine.
  static Result<std::shared_ptr<const PortableProgram>>
  deserialize(std::span<const uint8_t> Bytes);

  /// Name and root-unit accessors for store tooling (cache-ls/fsck).
  size_t defCount() const { return Defs.size(); }
  Symbol defName(size_t I) const { return Defs[I].first; }

  /// Approximate retained bytes (code, literals, tables) — the unit the
  /// specialization cache's byte budget is accounted in.
  size_t byteSize() const { return Bytes; }

  /// Number of code objects across all definitions (children included).
  size_t unitCount() const { return Units.size(); }

private:
  PortableProgram() : Datums(DatumArena) {}

  Arena DatumArena;
  DatumFactory Datums;
  std::vector<PortableCode> Units;
  std::vector<std::pair<Symbol, uint32_t>> Defs; ///< name, root unit index
  std::vector<Symbol> GlobalNames; ///< the capture-time global table
  size_t Bytes = 0;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_LINK_H
