//===- compiler/Link.h - Compiled programs and linking ----------*- C++ -*-===//
///
/// \file
/// A compiled program is an ordered list of (name, code object) pairs plus
/// the global table under which it was compiled. Linking instantiates each
/// definition as a zero-capture procedure in a machine's global vector.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_LINK_H
#define PECOMP_COMPILER_LINK_H

#include "support/Error.h"
#include "vm/Machine.h"

#include <vector>

namespace pecomp {
namespace compiler {

struct CompiledProgram {
  std::vector<std::pair<Symbol, const vm::CodeObject *>> Defs;

  const vm::CodeObject *find(Symbol Name) const {
    for (const auto &[N, C] : Defs)
      if (N == Name)
        return C;
    return nullptr;
  }
};

/// Installs every definition of \p P into \p M's globals per \p Globals.
void linkProgram(vm::Machine &M, vm::GlobalTable &Globals,
                 const CompiledProgram &P);

/// As linkProgram, but runs the byte-code verifier (vm/Verify.h) over
/// every definition first; nothing is installed if any fails.
Result<bool> linkProgramVerified(vm::Machine &M, vm::GlobalTable &Globals,
                                 const CompiledProgram &P);

/// Looks up and calls an installed top-level function.
Result<vm::Value> callGlobal(vm::Machine &M, const vm::GlobalTable &Globals,
                             Symbol Name, std::span<const vm::Value> Args);

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_LINK_H
