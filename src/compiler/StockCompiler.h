//===- compiler/StockCompiler.h - The stock compiler ------------*- C++ -*-===//
///
/// \file
/// The "stock" compiler the paper starts from (Sec. 6.1): a recursive-
/// descent compiler for full Core Scheme — arbitrary nesting of serious
/// expressions — that threads a compile-time continuation to identify
/// tail calls. The ANF compiler is this compiler "chopped down": on ANF
/// input the continuation becomes superfluous (see AnfCompiler and the
/// ablation bench ablation_anf_vs_stock).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_STOCKCOMPILER_H
#define PECOMP_COMPILER_STOCKCOMPILER_H

#include "compiler/Compilators.h"
#include "compiler/Link.h"
#include "syntax/Expr.h"

namespace pecomp {
namespace compiler {

class StockCompiler {
public:
  explicit StockCompiler(Compilators &C) : C(C) {}

  /// Compiles every definition, in order. Accepts any assignment-free
  /// Core Scheme (ANF not required).
  CompiledProgram compileProgram(const Program &P);

  const vm::CodeObject *compileFunction(Symbol Name, const LambdaExpr *Fn);

private:
  /// The compile-time continuation: what happens to the value just pushed.
  enum class Cont {
    Return, ///< tail position — return it (calls become tail calls)
    Fall,   ///< leave it on the stack for the enclosing expression
  };

  /// Compiles \p E so that executing the fragment nets exactly one pushed
  /// value (Cont::Fall) or returns it (Cont::Return).
  const Fragment *compile(const Expr *E, const CEnv &Env, uint32_t Depth,
                          Cont K);

  Compilators &C;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_STOCKCOMPILER_H
