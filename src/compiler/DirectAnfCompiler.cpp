//===- compiler/DirectAnfCompiler.cpp - Direct byte emission ---------------===//

#include "compiler/DirectAnfCompiler.h"

#include "compiler/AnfCompiler.h"

#include "frontend/FreeVars.h"
#include "support/Casting.h"
#include "syntax/AnfCheck.h"
#include "vm/Convert.h"

#include <cstdio>
#include <cstdlib>

using namespace pecomp;
using namespace pecomp::compiler;
using vm::Op;

CompiledProgram DirectAnfCompiler::compileProgram(const Program &P) {
  assert(!checkAnf(P) && "DirectAnfCompiler requires ANF input");
  CompiledProgram Out;
  for (const Definition &D : P.Defs) {
    Globals.lookupOrAdd(D.Name);
    Out.Defs.emplace_back(D.Name, compileFunction(D.Name, D.Fn));
  }
  return Out;
}

const vm::CodeObject *DirectAnfCompiler::compileFunction(Symbol Name,
                                                         const LambdaExpr *Fn) {
  return compileLambda(Name.str(), Fn, {});
}

const vm::CodeObject *
DirectAnfCompiler::compileLambda(const std::string &Name,
                                 const LambdaExpr *Fn,
                                 const std::vector<Symbol> &Captured) {
  CEnv Env;
  uint16_t Slot = 0;
  for (Symbol P : Fn->params())
    Env = Env.bind(EnvArena, P, Location::local(Slot++));
  uint16_t FreeIndex = 0;
  for (Symbol F : Captured)
    Env = Env.bind(EnvArena, F, Location::free(FreeIndex++));

  Unit U{Store.create(Name, static_cast<uint32_t>(Fn->params().size())),
         {},
         {}};
  tail(U, Fn->body(), Env, static_cast<uint32_t>(Fn->params().size()));
  return U.Code;
}

void DirectAnfCompiler::tail(Unit &U, const Expr *E, const CEnv &Env,
                             uint32_t Depth) {
  switch (E->kind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
  case Expr::Kind::Lambda:
    push(U, E, Env);
    emitOp(U, Op::Return);
    return;
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    serious(U, L->init(), Env, Depth);
    // Same peephole as AnfCompiler: a dead test binding is consumed from
    // the stack by the conditional.
    if (letTestIsOnStack(L)) {
      const auto *If = cast<IfExpr>(L->body());
      emitOp(U, Op::JumpIfFalse);
      size_t Site = emitPatchSite(U);
      tail(U, If->thenBranch(), Env, Depth);
      patchToHere(U, Site);
      tail(U, If->elseBranch(), Env, Depth);
      return;
    }
    CEnv BodyEnv = Env.bind(EnvArena, L->name(),
                            Location::local(static_cast<uint16_t>(Depth)));
    tail(U, L->body(), BodyEnv, Depth + 1);
    return;
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    push(U, I->test(), Env);
    emitOp(U, Op::JumpIfFalse);
    size_t Site = emitPatchSite(U);
    tail(U, I->thenBranch(), Env, Depth);
    patchToHere(U, Site);
    tail(U, I->elseBranch(), Env, Depth);
    return;
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    push(U, A->callee(), Env);
    for (const Expr *Arg : A->args())
      push(U, Arg, Env);
    emitOp(U, Op::TailCall);
    emitU8(U, static_cast<uint8_t>(A->args().size()));
    return;
  }
  case Expr::Kind::PrimApp: {
    const auto *P = cast<PrimAppExpr>(E);
    for (const Expr *Arg : P->args())
      push(U, Arg, Env);
    emitOp(U, Op::Prim);
    emitU8(U, static_cast<uint8_t>(P->op()));
    emitOp(U, Op::Return);
    return;
  }
  case Expr::Kind::Set:
    break;
  }
  assert(false && "non-ANF expression reached the direct compiler");
}

void DirectAnfCompiler::push(Unit &U, const Expr *E, const CEnv &Env) {
  switch (E->kind()) {
  case Expr::Kind::Const: {
    vm::Value V =
        vm::valueFromDatum(Store.heap(), cast<ConstExpr>(E)->value());
    emitOp(U, Op::Const);
    emitU16(U, internLiteral(U, V));
    return;
  }
  case Expr::Kind::Var: {
    Symbol Name = cast<VarExpr>(E)->name();
    if (std::optional<Location> Loc = Env.lookup(Name)) {
      emitOp(U, Loc->K == Location::Kind::Local ? Op::LocalRef : Op::FreeRef);
      emitU16(U, Loc->Index);
      return;
    }
    emitOp(U, Op::GlobalRef);
    emitU16(U, Globals.lookupOrAdd(Name));
    return;
  }
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    std::vector<Symbol> Captured;
    for (Symbol Free : freeVars(L))
      if (Env.lookup(Free))
        Captured.push_back(Free);
    const vm::CodeObject *Child = compileLambda("lambda", L, Captured);
    for (Symbol Free : Captured) {
      std::optional<Location> Loc = Env.lookup(Free);
      emitOp(U, Loc->K == Location::Kind::Local ? Op::LocalRef : Op::FreeRef);
      emitU16(U, Loc->Index);
    }
    emitOp(U, Op::MakeClosure);
    emitU16(U, internChild(U, Child));
    emitU16(U, static_cast<uint16_t>(Captured.size()));
    return;
  }
  default:
    assert(false && "expected a trivial expression");
  }
}

void DirectAnfCompiler::serious(Unit &U, const Expr *E, const CEnv &Env,
                                uint32_t Depth) {
  (void)Depth;
  if (const auto *A = dyn_cast<AppExpr>(E)) {
    push(U, A->callee(), Env);
    for (const Expr *Arg : A->args())
      push(U, Arg, Env);
    emitOp(U, Op::Call);
    emitU8(U, static_cast<uint8_t>(A->args().size()));
    return;
  }
  if (const auto *P = dyn_cast<PrimAppExpr>(E)) {
    for (const Expr *Arg : P->args())
      push(U, Arg, Env);
    emitOp(U, Op::Prim);
    emitU8(U, static_cast<uint8_t>(P->op()));
    return;
  }
  push(U, E, Env);
}

void DirectAnfCompiler::emitOp(Unit &U, vm::Op Op) {
  U.Code->mutableCode().push_back(static_cast<uint8_t>(Op));
}

void DirectAnfCompiler::emitU8(Unit &U, uint8_t V) {
  U.Code->mutableCode().push_back(V);
}

void DirectAnfCompiler::emitU16(Unit &U, uint16_t V) {
  U.Code->mutableCode().push_back(static_cast<uint8_t>(V & 0xff));
  U.Code->mutableCode().push_back(static_cast<uint8_t>(V >> 8));
}

size_t DirectAnfCompiler::emitPatchSite(Unit &U) {
  size_t Site = U.Code->code().size();
  emitU16(U, 0);
  return Site;
}

void DirectAnfCompiler::patchToHere(Unit &U, size_t Site) {
  // Offset is relative to the pc after the 2-byte operand.
  long Rel = static_cast<long>(U.Code->code().size()) -
             static_cast<long>(Site + 2);
  if (Rel < INT16_MIN || Rel > INT16_MAX) {
    fprintf(stderr, "pecomp: jump out of i16 range while emitting '%s'\n",
            U.Code->name().c_str());
    abort();
  }
  uint16_t V = static_cast<uint16_t>(static_cast<int16_t>(Rel));
  U.Code->mutableCode()[Site] = static_cast<uint8_t>(V & 0xff);
  U.Code->mutableCode()[Site + 1] = static_cast<uint8_t>(V >> 8);
}

uint16_t DirectAnfCompiler::internLiteral(Unit &U, vm::Value V) {
  auto It = U.LitIndex.find({V});
  if (It != U.LitIndex.end())
    return It->second;
  uint16_t I = U.Code->addLiteral(V);
  U.LitIndex.emplace(vm::StructuralValueKey{V}, I);
  return I;
}

uint16_t DirectAnfCompiler::internChild(Unit &U, const vm::CodeObject *Child) {
  auto It = U.ChildIndex.find(Child);
  if (It != U.ChildIndex.end())
    return It->second;
  uint16_t I = U.Code->addChild(Child);
  U.ChildIndex.emplace(Child, I);
  return I;
}
