//===- compiler/Fragment.h - Higher-order object code -----------*- C++ -*-===//
///
/// \file
/// The abstract object-code representation the compilators build: trees of
/// instructions combined with `sequentially`, with labels created by
/// `makeLabel` and resolved by a separate assembly (relocation) step — the
/// same two-stage structure as the Scheme 48 backend the paper uses, and
/// the structure it holds responsible for direct generation being up to 2x
/// slower than source generation (Fig. 6; see the ablation bench
/// ablation_fragment_vs_direct).
///
/// Fragments are arena-allocated by a FragmentFactory, which also keeps
/// literal values alive across garbage collections (code generation runs
/// interleaved with specialization-time evaluation on the fused path).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_FRAGMENT_H
#define PECOMP_COMPILER_FRAGMENT_H

#include "support/Arena.h"
#include "syntax/Primitives.h"
#include "vm/Code.h"

namespace pecomp {
namespace compiler {

using LabelId = uint32_t;

/// One operand of an instruction fragment.
struct Operand {
  enum class Kind : uint8_t {
    Imm,     ///< u16 immediate (slot numbers, capture counts)
    Count,   ///< u8 immediate (argument counts)
    Lit,     ///< a literal value; assembly interns it in the code object
    Child,   ///< a child code object; assembly adds it to the children
    Label,   ///< i16 pc-relative label reference, resolved at assembly
    PrimRef, ///< u8 primitive number
  };

  Kind K;
  union {
    uint16_t Imm;
    uint8_t Count;
    const vm::CodeObject *Child;
    LabelId Label;
    PrimOp Prim;
  };
  vm::Value Lit; // outside the union: Value has no trivial default interplay

  static Operand imm(uint16_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.Imm = V;
    return O;
  }
  static Operand count(uint8_t V) {
    Operand O;
    O.K = Kind::Count;
    O.Count = V;
    return O;
  }
  static Operand lit(vm::Value V) {
    Operand O;
    O.K = Kind::Lit;
    O.Lit = V;
    return O;
  }
  static Operand child(const vm::CodeObject *C) {
    Operand O;
    O.K = Kind::Child;
    O.Child = C;
    return O;
  }
  static Operand label(LabelId L) {
    Operand O;
    O.K = Kind::Label;
    O.Label = L;
    return O;
  }
  static Operand prim(PrimOp P) {
    Operand O;
    O.K = Kind::PrimRef;
    O.Prim = P;
    return O;
  }

  /// Encoded size in bytes.
  size_t size() const {
    return (K == Kind::Count || K == Kind::PrimRef) ? 1 : 2;
  }

private:
  Operand() : K(Kind::Imm), Imm(0) {}
};

/// A tree of object code: an instruction, a sequence, or a label
/// definition point.
class Fragment {
public:
  enum class Kind : uint8_t { Instr, Seq, LabelDef };

  Kind kind() const { return K; }

  // Instr payload.
  vm::Op op() const { return Opcode; }
  const std::vector<Operand> &operands() const { return Operands; }

  // Seq payload.
  const std::vector<const Fragment *> &parts() const { return Parts; }

  // LabelDef payload.
  LabelId label() const { return Label; }

private:
  friend class FragmentFactory;
  explicit Fragment(Kind K) : K(K) {}

  Kind K;
  vm::Op Opcode = vm::Op::Halt;
  LabelId Label = 0;
  std::vector<Operand> Operands;
  std::vector<const Fragment *> Parts;
};

/// Allocates fragments, issues labels, and roots literal operands. One
/// factory serves one compilation "session" (it may produce many code
/// objects).
class FragmentFactory : public vm::RootProvider {
public:
  explicit FragmentFactory(vm::Heap &H) : H(H) { H.addRootProvider(this); }
  ~FragmentFactory() override { H.removeRootProvider(this); }
  FragmentFactory(const FragmentFactory &) = delete;
  FragmentFactory &operator=(const FragmentFactory &) = delete;

  /// The paper's `make-label`.
  LabelId makeLabel() { return ++LastLabel; }

  /// A plain instruction.
  const Fragment *instr(vm::Op Op, std::vector<Operand> Operands = {});

  /// The paper's `instruction-using-label` (jumps).
  const Fragment *instrUsingLabel(vm::Op Op, LabelId Label);

  /// The paper's `sequentially`.
  const Fragment *seq(std::vector<const Fragment *> Parts);

  /// The paper's `attach-label`: marks the position of \p Label, followed
  /// by \p Rest.
  const Fragment *attachLabel(LabelId Label, const Fragment *Rest);

  /// Total fragments created (generation-cost accounting in the benches).
  size_t fragmentsCreated() const { return NumFragments; }

  void traceRoots(vm::RootVisitor &Visitor) override {
    for (vm::Value V : Literals)
      Visitor.visit(V);
  }

private:
  vm::Heap &H;
  Arena A;
  LabelId LastLabel = 0;
  size_t NumFragments = 0;
  std::vector<vm::Value> Literals;
};

/// Resolves labels and interns literals/children: the "relocation" step.
/// Appends the encoded bytes of \p Root to \p Target. Returns false when
/// a label offset exceeds the i16 jump range (a body too large for the
/// encoding — e.g. residual code explosion at specialization time); the
/// target's bytes are then unusable and the caller must not install it.
bool assemble(const Fragment *Root, vm::CodeObject *Target);

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_FRAGMENT_H
