//===- compiler/Fragment.cpp - Higher-order object code -------------------===//

#include "compiler/Fragment.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace pecomp;
using namespace pecomp::compiler;

const Fragment *FragmentFactory::instr(vm::Op Op,
                                       std::vector<Operand> Operands) {
  Fragment *F = A.create<Fragment>(Fragment(Fragment::Kind::Instr));
  F->Opcode = Op;
  for (const Operand &O : Operands)
    if (O.K == Operand::Kind::Lit)
      Literals.push_back(O.Lit);
  F->Operands = std::move(Operands);
  ++NumFragments;
  return F;
}

const Fragment *FragmentFactory::instrUsingLabel(vm::Op Op, LabelId Label) {
  return instr(Op, {Operand::label(Label)});
}

const Fragment *FragmentFactory::seq(std::vector<const Fragment *> Parts) {
  Fragment *F = A.create<Fragment>(Fragment(Fragment::Kind::Seq));
  F->Parts = std::move(Parts);
  ++NumFragments;
  return F;
}

const Fragment *FragmentFactory::attachLabel(LabelId Label,
                                             const Fragment *Rest) {
  Fragment *Def = A.create<Fragment>(Fragment(Fragment::Kind::LabelDef));
  Def->Label = Label;
  ++NumFragments;
  return seq({Def, Rest});
}

namespace {

size_t instrSize(const Fragment *F) {
  size_t S = 1; // opcode
  for (const Operand &O : F->operands())
    S += O.size();
  return S;
}

/// Pass 1: assign byte offsets to label definitions.
void layOut(const Fragment *F, size_t &Offset,
            std::unordered_map<LabelId, size_t> &LabelOffsets) {
  switch (F->kind()) {
  case Fragment::Kind::Instr:
    Offset += instrSize(F);
    return;
  case Fragment::Kind::Seq:
    for (const Fragment *P : F->parts())
      layOut(P, Offset, LabelOffsets);
    return;
  case Fragment::Kind::LabelDef:
    LabelOffsets[F->label()] = Offset;
    return;
  }
}

void emitU16(std::vector<uint8_t> &Code, uint16_t V) {
  Code.push_back(static_cast<uint8_t>(V & 0xff));
  Code.push_back(static_cast<uint8_t>(V >> 8));
}

struct Emitter {
  vm::CodeObject *Target;
  size_t BaseOffset; // bytes already in Target before this assembly
  const std::unordered_map<LabelId, size_t> &LabelOffsets;
  std::unordered_map<vm::StructuralValueKey, uint16_t, vm::StructuralValueHash>
      LitIndex;
  std::unordered_map<const vm::CodeObject *, uint16_t> ChildIndex;
  bool Overflow = false; ///< a label offset left the i16 jump range

  void emit(const Fragment *F) {
    std::vector<uint8_t> &Code = Target->mutableCode();
    switch (F->kind()) {
    case Fragment::Kind::Instr: {
      Code.push_back(static_cast<uint8_t>(F->op()));
      for (const Operand &O : F->operands()) {
        switch (O.K) {
        case Operand::Kind::Imm:
          emitU16(Code, O.Imm);
          break;
        case Operand::Kind::Count:
          Code.push_back(O.Count);
          break;
        case Operand::Kind::Lit: {
          emitU16(Code, internLiteral(O.Lit));
          break;
        }
        case Operand::Kind::Child: {
          emitU16(Code, internChild(O.Child));
          break;
        }
        case Operand::Kind::Label: {
          auto It = LabelOffsets.find(O.Label);
          assert(It != LabelOffsets.end() && "undefined label");
          // Offset is relative to the pc after the 2-byte operand.
          size_t Here = Code.size() - BaseOffset;
          long Rel = static_cast<long>(It->second) -
                     static_cast<long>(Here + 2);
          if (Rel < INT16_MIN || Rel > INT16_MAX) {
            // Keep emitting (offsets stay layout-consistent) but poison
            // the result; assemble()'s caller discards the object.
            Overflow = true;
            Rel = 0;
          }
          emitU16(Code, static_cast<uint16_t>(static_cast<int16_t>(Rel)));
          break;
        }
        case Operand::Kind::PrimRef:
          Code.push_back(static_cast<uint8_t>(O.Prim));
          break;
        }
      }
      return;
    }
    case Fragment::Kind::Seq:
      for (const Fragment *P : F->parts())
        emit(P);
      return;
    case Fragment::Kind::LabelDef:
      assert(Code.size() - BaseOffset == LabelOffsets.at(F->label()) &&
             "layout/emission disagreement");
      return;
    }
  }

  uint16_t internLiteral(vm::Value V) {
    // Structural dedup: repeated equal constants share one slot, so both
    // residual paths (fresh conversions vs. shared static values) agree.
    auto It = LitIndex.find({V});
    if (It != LitIndex.end())
      return It->second;
    uint16_t I = Target->addLiteral(V);
    LitIndex.emplace(vm::StructuralValueKey{V}, I);
    return I;
  }

  uint16_t internChild(const vm::CodeObject *C) {
    auto It = ChildIndex.find(C);
    if (It != ChildIndex.end())
      return It->second;
    uint16_t I = Target->addChild(C);
    ChildIndex.emplace(C, I);
    return I;
  }
};

} // namespace

bool compiler::assemble(const Fragment *Root, vm::CodeObject *Target) {
  std::unordered_map<LabelId, size_t> LabelOffsets;
  size_t Offset = 0;
  layOut(Root, Offset, LabelOffsets);
  Emitter E{Target, Target->code().size(), LabelOffsets, {}, {}};
  // Pre-seed interning with literals/children already present (assembling
  // into a partially built object keeps indices consistent).
  for (uint16_t I = 0; I != Target->literals().size(); ++I)
    E.LitIndex.emplace(vm::StructuralValueKey{Target->literals()[I]}, I);
  for (uint16_t I = 0; I != Target->children().size(); ++I)
    E.ChildIndex.emplace(Target->children()[I], I);
  E.emit(Root);
  return !E.Overflow;
}
