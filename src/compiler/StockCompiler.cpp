//===- compiler/StockCompiler.cpp - The stock compiler ---------------------===//

#include "compiler/StockCompiler.h"

#include "frontend/FreeVars.h"
#include "support/Casting.h"
#include "vm/Convert.h"

using namespace pecomp;
using namespace pecomp::compiler;

CompiledProgram StockCompiler::compileProgram(const Program &P) {
  CompiledProgram Out;
  for (const Definition &D : P.Defs) {
    C.globals().lookupOrAdd(D.Name);
    Out.Defs.emplace_back(D.Name, compileFunction(D.Name, D.Fn));
  }
  return Out;
}

const vm::CodeObject *StockCompiler::compileFunction(Symbol Name,
                                                     const LambdaExpr *Fn) {
  return C.makeCodeObject(Name.str(), Fn->params(), {},
                          [&](const CEnv &Env, uint32_t Depth) {
                            return compile(Fn->body(), Env, Depth,
                                           Cont::Return);
                          });
}

const Fragment *StockCompiler::compile(const Expr *E, const CEnv &Env,
                                       uint32_t Depth, Cont K) {
  FragmentFactory &F = C.frags();
  auto Finish = [&](const Fragment *Push) {
    return K == Cont::Return ? C.returnValue(Push) : Push;
  };

  switch (E->kind()) {
  case Expr::Kind::Const:
    return Finish(C.pushLiteral(
        vm::valueFromDatum(C.store().heap(), cast<ConstExpr>(E)->value())));
  case Expr::Kind::Var:
    return Finish(C.pushVar(Env, cast<VarExpr>(E)->name()));
  case Expr::Kind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    std::vector<Symbol> Captured;
    for (Symbol Free : freeVars(L))
      if (Env.lookup(Free))
        Captured.push_back(Free);
    const vm::CodeObject *Child = C.makeCodeObject(
        "lambda", L->params(), Captured,
        [&](const CEnv &BodyEnv, uint32_t BodyDepth) {
          return compile(L->body(), BodyEnv, BodyDepth, Cont::Return);
        });
    return Finish(C.pushClosure(Env, Child, Captured));
  }
  case Expr::Kind::Let: {
    const auto *L = cast<LetExpr>(E);
    const Fragment *Init = compile(L->init(), Env, Depth, Cont::Fall);
    CEnv BodyEnv = Env.bind(C.envArena(), L->name(),
                            Location::local(static_cast<uint16_t>(Depth)));
    const Fragment *Body = compile(L->body(), BodyEnv, Depth + 1, K);
    if (K == Cont::Return)
      return F.seq({Init, Body});
    // Non-tail: squeeze the binding out from under the result.
    return F.seq({Init, Body,
                  F.instr(vm::Op::Slide, {Operand::imm(1)})});
  }
  case Expr::Kind::If: {
    const auto *I = cast<IfExpr>(E);
    const Fragment *Test = compile(I->test(), Env, Depth, Cont::Fall);
    const Fragment *Then = compile(I->thenBranch(), Env, Depth, K);
    const Fragment *Else = compile(I->elseBranch(), Env, Depth, K);
    if (K == Cont::Return)
      return C.ifThenElse(Test, Then, Else);
    LabelId Alt = F.makeLabel();
    LabelId End = F.makeLabel();
    return F.seq({Test, F.instrUsingLabel(vm::Op::JumpIfFalse, Alt), Then,
                  F.instrUsingLabel(vm::Op::Jump, End),
                  F.attachLabel(Alt, Else),
                  F.attachLabel(End, F.seq({}))});
  }
  case Expr::Kind::App: {
    const auto *A = cast<AppExpr>(E);
    const Fragment *Callee = compile(A->callee(), Env, Depth, Cont::Fall);
    std::vector<const Fragment *> Args;
    for (size_t I = 0; I != A->args().size(); ++I)
      Args.push_back(compile(A->args()[I], Env,
                             Depth + 1 + static_cast<uint32_t>(I),
                             Cont::Fall));
    return C.call(Callee, Args, /*Tail=*/K == Cont::Return);
  }
  case Expr::Kind::PrimApp: {
    const auto *P = cast<PrimAppExpr>(E);
    std::vector<const Fragment *> Args;
    for (size_t I = 0; I != P->args().size(); ++I)
      Args.push_back(compile(P->args()[I], Env,
                             Depth + static_cast<uint32_t>(I), Cont::Fall));
    return Finish(C.primApp(P->op(), Args));
  }
  case Expr::Kind::Set:
    break;
  }
  assert(false && "set! reached the stock compiler");
  return nullptr;
}
