//===- compiler/Compilators.h - Per-construct code generators ---*- C++ -*-===//
///
/// \file
/// The compilators: one small code generator per Core Scheme construct,
/// exactly the role of the paper's `define-compilator` procedures
/// (Sec. 6.1). They are deliberately independent of syntax dispatch so
/// they can be consumed two ways, which is the paper's central trick
/// (Sec. 6.3):
///
///   1. the stand-alone ANF/stock compilers dispatch on syntax and call a
///      compilator per node (the "annotations erased" reading), and
///   2. the fused residual-code builder partially applies them, turning
///      them into the make-residual-* code-generation combinators the
///      specializer plugs in (the "combinator" reading).
///
/// All compilators produce Fragments (the higher-order object-code
/// representation); see makeCodeObject for the assembly boundary.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_COMPILATORS_H
#define PECOMP_COMPILER_COMPILATORS_H

#include "compiler/CEnv.h"
#include "compiler/Fragment.h"

#include <functional>
#include <span>
#include <string>

namespace pecomp {
namespace compiler {

/// Shared state of one compilation session: the fragment factory, the
/// arena for compile-time environments, the code store receiving
/// assembled objects, and the global table.
class Compilators {
public:
  Compilators(vm::CodeStore &Store, vm::GlobalTable &Globals)
      : Store(Store), Globals(Globals), Frags(Store.heap()) {}

  FragmentFactory &frags() { return Frags; }
  Arena &envArena() { return EnvArena; }
  vm::GlobalTable &globals() { return Globals; }
  vm::CodeStore &store() { return Store; }

  // -- Trivial expressions (push one value) ----------------------------------

  /// c — pushes a literal.
  const Fragment *pushLiteral(vm::Value V);

  /// x — pushes a local, captured, or global variable.
  const Fragment *pushVar(const CEnv &Env, Symbol Name);

  /// (lambda ...) — pushes the captured values named by \p FreeNames, then
  /// closes over \p Child.
  const Fragment *pushClosure(const CEnv &Env, const vm::CodeObject *Child,
                              std::span<const Symbol> FreeNames);

  // -- Serious expressions ----------------------------------------------------

  /// (V V1 ... Vn) — callee and argument pushes, then Call or TailCall.
  const Fragment *call(const Fragment *CalleePush,
                       std::span<const Fragment *const> ArgPushes, bool Tail);

  /// (O V1 ... Vn) — argument pushes, then the primitive.
  const Fragment *primApp(PrimOp Op,
                          std::span<const Fragment *const> ArgPushes);

  // -- Control ----------------------------------------------------------------

  /// (if V M1 M2) with both branches in tail position: test, a
  /// jump-if-false to the alternative, consequent, labelled alternative —
  /// the jump pattern of the paper's `if` compilator.
  const Fragment *ifThenElse(const Fragment *TestPush,
                             const Fragment *ThenTail,
                             const Fragment *ElseTail);

  /// As ifThenElse, but the test value is already on top of the stack —
  /// the (let (t I) (if t ...)) peephole where t is dead in the branches:
  /// the conditional consumes I's result directly.
  const Fragment *ifOnStack(const Fragment *ThenTail,
                            const Fragment *ElseTail);

  /// Value in tail position: push it and return.
  const Fragment *returnValue(const Fragment *Push);

  /// (let (x I) M): I pushes one value at the binding's slot; M follows.
  const Fragment *letBinding(const Fragment *InitPush,
                             const Fragment *BodyTail);

  // -- Code objects -----------------------------------------------------------

  /// Emits a fragment tree for a body given its environment and initial
  /// stack depth.
  using BodyEmitter =
      std::function<const Fragment *(const CEnv &BodyEnv, uint32_t Depth)>;

  /// Builds and assembles a code object for a procedure with \p Params and
  /// captured \p FreeNames: params become locals 0..n-1, captures become
  /// free refs; the emitted body must be a tail fragment.
  const vm::CodeObject *makeCodeObject(std::string Name,
                                       std::span<const Symbol> Params,
                                       std::span<const Symbol> FreeNames,
                                       const BodyEmitter &EmitBody);

  /// Code objects assembled in this session (bench accounting).
  size_t codeObjectsBuilt() const { return NumCodeObjects; }

  /// Name of the first code object whose body outgrew the i16 jump range
  /// (empty when none did). Sticky: once set, every object built in this
  /// session is suspect and the whole compilation must be rejected —
  /// makeCodeObject has no error channel of its own, so drivers check
  /// this after the final object is built.
  const std::string &overflowedFunction() const { return OverflowFn; }

private:
  vm::CodeStore &Store;
  vm::GlobalTable &Globals;
  FragmentFactory Frags;
  Arena EnvArena;
  size_t NumCodeObjects = 0;
  std::string OverflowFn;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_COMPILATORS_H
