//===- compiler/DirectAnfCompiler.h - Direct byte emission ------*- C++ -*-===//
///
/// \file
/// An ANF compiler that emits byte code directly with backpatching,
/// bypassing the higher-order Fragment representation and its relocation
/// step. This implements the improvement the paper points to in Sec. 7 —
/// "a future step would be emitting byte code directly" — after blaming
/// the fragment representation for object-code generation being up to 2x
/// slower than source generation. Used by the ablation bench
/// ablation_fragment_vs_direct and differentially tested against
/// AnfCompiler (both must produce byte-identical code objects).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_DIRECTANFCOMPILER_H
#define PECOMP_COMPILER_DIRECTANFCOMPILER_H

#include "compiler/CEnv.h"
#include "compiler/Link.h"
#include "syntax/Expr.h"

#include <unordered_map>

namespace pecomp {
namespace compiler {

class DirectAnfCompiler {
public:
  DirectAnfCompiler(vm::CodeStore &Store, vm::GlobalTable &Globals)
      : Store(Store), Globals(Globals) {}

  /// Compiles every definition, in order. Input must be in ANF.
  CompiledProgram compileProgram(const Program &P);

  const vm::CodeObject *compileFunction(Symbol Name, const LambdaExpr *Fn);

private:
  /// Per-code-object emission state.
  struct Unit {
    vm::CodeObject *Code;
    std::unordered_map<vm::StructuralValueKey, uint16_t,
                       vm::StructuralValueHash>
        LitIndex;
    std::unordered_map<const vm::CodeObject *, uint16_t> ChildIndex;
  };

  void tail(Unit &U, const Expr *E, const CEnv &Env, uint32_t Depth);
  void push(Unit &U, const Expr *E, const CEnv &Env);
  void serious(Unit &U, const Expr *E, const CEnv &Env, uint32_t Depth);

  const vm::CodeObject *compileLambda(const std::string &Name,
                                      const LambdaExpr *Fn,
                                      const std::vector<Symbol> &Captured);

  void emitOp(Unit &U, vm::Op Op);
  void emitU8(Unit &U, uint8_t V);
  void emitU16(Unit &U, uint16_t V);
  /// Emits a 2-byte placeholder, returning its position for patching.
  size_t emitPatchSite(Unit &U);
  /// Patches the site to jump to the current position.
  void patchToHere(Unit &U, size_t Site);

  uint16_t internLiteral(Unit &U, vm::Value V);
  uint16_t internChild(Unit &U, const vm::CodeObject *Child);

  vm::CodeStore &Store;
  vm::GlobalTable &Globals;
  Arena EnvArena;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_DIRECTANFCOMPILER_H
