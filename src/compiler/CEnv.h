//===- compiler/CEnv.h - Compile-time environments --------------*- C++ -*-===//
///
/// \file
/// The compile-time environment the paper's compilators thread around:
/// maps names to stack slots (parameters and let temporaries) or closure
/// capture indices; anything unmapped is a global, resolved through the
/// GlobalTable. Environments are persistent (extension shares structure),
/// which matters on the fused path where one environment prefix is shared
/// by many residual-code combinators.
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_CENV_H
#define PECOMP_COMPILER_CENV_H

#include "sexp/Symbol.h"
#include "support/Arena.h"

#include <cstdint>
#include <optional>

namespace pecomp {
namespace compiler {

/// Where a lexically visible name lives at run time.
struct Location {
  enum class Kind : uint8_t {
    Local, ///< stack slot relative to the frame base
    Free,  ///< index into the closure's captured values
  };
  Kind K;
  uint16_t Index;

  static Location local(uint16_t Slot) { return {Kind::Local, Slot}; }
  static Location free(uint16_t Index) { return {Kind::Free, Index}; }
};

/// Persistent association of names to locations.
class CEnv {
public:
  CEnv() = default;

  /// Returns an extension of this environment binding \p Name. Nodes are
  /// allocated in \p A, which must outlive every derived environment.
  CEnv bind(Arena &A, Symbol Name, Location Loc) const {
    return CEnv(A.create<Node>(Node{Name, Loc, Head}));
  }

  std::optional<Location> lookup(Symbol Name) const {
    for (const Node *N = Head; N; N = N->Parent)
      if (N->Name == Name)
        return N->Loc;
    return std::nullopt;
  }

private:
  struct Node {
    Symbol Name;
    Location Loc;
    const Node *Parent;
  };

  explicit CEnv(const Node *Head) : Head(Head) {}

  const Node *Head = nullptr;
};

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_CENV_H
