//===- compiler/Peephole.h - Byte-code peephole optimizer ------*- C++ -*-===//
///
/// \file
/// A post-compilation cleanup pass over byte code (DESIGN.md Sec. 9). The
/// stock compiler and the generating extensions both emit structurally
/// naive control flow — jump chains from nested conditionals, branches
/// over unconditional jumps, adjacent stack-cleanup Slides — and this pass
/// rewrites those idioms in place before the code is pre-decoded:
///
///   * jump-to-jump threading (and folding a Jump that lands on a
///     Return/Halt into that terminator),
///   * branch inversion: JumpIfFalse L1 over Jump L2 where L1 is the
///     fall-through becomes JumpIfTrue L2 (the pass is the only emitter
///     of Op::JumpIfTrue),
///   * collapsing adjacent Slides and dropping Slide 0,
///   * removing unreachable instructions.
///
/// The pass runs strictly before a code object's first decode (it refuses
/// objects whose bytes are frozen) and re-emits byte offsets exactly, so
/// the verifier's invariants and the decoder's strictness are preserved:
/// peepholed code verifies and pre-decodes iff it did before. Each object
/// is processed at most once (CodeObject::peepholed), making repeated
/// links idempotent and letting PortableProgram snapshots carry the
/// already-optimized form (cache hits pay no re-optimization).
///
//===----------------------------------------------------------------------===//

#ifndef PECOMP_COMPILER_PEEPHOLE_H
#define PECOMP_COMPILER_PEEPHOLE_H

#include "compiler/Link.h"
#include "support/CoverageMap.h"

namespace pecomp {
namespace compiler {

/// What one peephole run did, summed over every object it visited.
struct PeepholeStats {
  size_t ObjectsVisited = 0;  ///< objects actually processed this run
  size_t ObjectsChanged = 0;  ///< objects whose bytes were rewritten
  size_t ThreadedJumps = 0;   ///< jumps retargeted through Jump chains
  size_t FoldedTerminators = 0; ///< Jumps replaced by their Return/Halt target
  size_t InvertedBranches = 0;  ///< branch-over-Jump pairs inverted
  size_t CollapsedSlides = 0;   ///< adjacent Slide pairs merged
  size_t DroppedSlides = 0;     ///< Slide 0 no-ops removed
  size_t DeadInsns = 0;         ///< unreachable instructions removed
  size_t BytesSaved = 0;        ///< total code-size reduction

  size_t rewrites() const {
    return ThreadedJumps + FoldedTerminators + InvertedBranches +
           CollapsedSlides + DroppedSlides + DeadInsns;
  }
  /// Folds "which rewrite rules fired" into \p M as CovPeepholeRule
  /// features (one per rule with a nonzero counter, plus a graded
  /// magnitude bucket per rule so unusually rewrite-heavy programs count
  /// as new coverage). Returns how many features were new.
  size_t addCoverage(support::CoverageMap &M) const;

  void operator+=(const PeepholeStats &O) {
    ObjectsVisited += O.ObjectsVisited;
    ObjectsChanged += O.ObjectsChanged;
    ThreadedJumps += O.ThreadedJumps;
    FoldedTerminators += O.FoldedTerminators;
    InvertedBranches += O.InvertedBranches;
    CollapsedSlides += O.CollapsedSlides;
    DroppedSlides += O.DroppedSlides;
    DeadInsns += O.DeadInsns;
    BytesSaved += O.BytesSaved;
  }
};

/// Optimizes \p C and, recursively, its children. Objects already
/// processed or already pre-decoded (bytes frozen) are skipped; every
/// processed object is marked via CodeObject::markPeepholed whether or
/// not a rewrite applied. Irregular byte streams (anything vm/Decode.cpp
/// would refuse) and rewrites whose re-emitted jump offsets would not fit
/// i16 are left byte-for-byte unchanged.
PeepholeStats peepholeCode(vm::CodeObject *C);

/// peepholeCode over every definition of \p P.
PeepholeStats peepholeProgram(const CompiledProgram &P);

} // namespace compiler
} // namespace pecomp

#endif // PECOMP_COMPILER_PEEPHOLE_H
