//===- compiler/CodeGenBuilder.cpp - Fused residual-code builder ----------===//

#include "compiler/CodeGenBuilder.h"

#include <unordered_set>

using namespace pecomp;
using namespace pecomp::compiler;

namespace {

/// One free-name traversal over the combinator graph, mirroring the
/// traversal order of frontend::freeVars on the equivalent syntax.
struct FreeNameWalk {
  std::vector<Symbol> Order;
  std::unordered_set<Symbol> Seen;
  std::vector<std::unordered_set<Symbol>> Bound;

  bool isBound(Symbol S) const {
    for (auto It = Bound.rbegin(), E = Bound.rend(); It != E; ++It)
      if (It->count(S))
        return true;
    return false;
  }

  void mention(Symbol S) {
    if (isBound(S) || Seen.count(S))
      return;
    Seen.insert(S);
    Order.push_back(S);
  }

  void walk(const CodeNode *N) {
    switch (N->K) {
    case CodeNode::Kind::Const:
      return;
    case CodeNode::Kind::Var:
      mention(N->Name);
      return;
    case CodeNode::Kind::Lambda:
      // Nested lambdas carry their summary; no need to descend.
      for (Symbol S : N->FreeNames)
        mention(S);
      return;
    case CodeNode::Kind::Let:
      walk(N->A);
      Bound.push_back({N->Name});
      walk(N->B);
      Bound.pop_back();
      return;
    case CodeNode::Kind::If:
      walk(N->A);
      walk(N->B);
      walk(N->C);
      return;
    case CodeNode::Kind::Call:
      walk(N->A);
      for (const CodeNode *Arg : N->Args)
        walk(Arg);
      return;
    case CodeNode::Kind::Prim:
      for (const CodeNode *Arg : N->Args)
        walk(Arg);
      return;
    }
  }
};

/// The fused reading of compiler::letTestIsOnStack: (let (t I) (if t ...))
/// with t dead in both branches.
bool letTestIsOnStackNode(const CodeNode *Let) {
  const CodeNode *Body = Let->B;
  if (Body->K != CodeNode::Kind::If || Body->A->K != CodeNode::Kind::Var ||
      Body->A->Name != Let->Name)
    return false;
  FreeNameWalk W;
  W.walk(Body->B);
  W.walk(Body->C);
  return !W.Seen.count(Let->Name);
}

} // namespace

std::vector<Symbol> compiler::residualFreeNames(const CodeNode *N) {
  FreeNameWalk W;
  W.walk(N);
  return std::move(W.Order);
}

CodeGenBuilder::Code CodeGenBuilder::constant(vm::Value V) {
  ConstRoots.protect(V);
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::Const;
  N->ConstV = V;
  return N;
}

CodeGenBuilder::Code CodeGenBuilder::variable(Symbol Name) {
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::Var;
  N->Name = Name;
  return N;
}

CodeGenBuilder::Code CodeGenBuilder::lambda(std::vector<Symbol> Params,
                                            Code Body) {
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::Lambda;
  // The Sec. 6.4 name bookkeeping: summarize the body's free names minus
  // the parameters, once, at combinator-construction time.
  FreeNameWalk W;
  W.Bound.emplace_back(Params.begin(), Params.end());
  W.walk(Body);
  N->FreeNames = std::move(W.Order);
  N->Params = std::move(Params);
  N->A = Body;
  return N;
}

CodeGenBuilder::Code CodeGenBuilder::let(Symbol Var, Code Init, Code Body) {
  // (let (t I) t) collapses to I: I's tail emission (e.g. TailCall) takes
  // over, preserving proper tail calls in residual programs. The same
  // peephole lives in SyntaxBuilder::let, keeping the fused output
  // byte-identical to compiling the residual source.
  if (Body->K == CodeNode::Kind::Var && Body->Name == Var)
    return Init;
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::Let;
  N->Name = Var;
  N->A = Init;
  N->B = Body;
  return N;
}

CodeGenBuilder::Code CodeGenBuilder::ifExpr(Code Test, Code Then, Code Else) {
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::If;
  N->A = Test;
  N->B = Then;
  N->C = Else;
  return N;
}

CodeGenBuilder::Code CodeGenBuilder::call(Code Callee,
                                          std::vector<Code> Args) {
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::Call;
  N->A = Callee;
  N->Args = std::move(Args);
  return N;
}

CodeGenBuilder::Code CodeGenBuilder::primApp(PrimOp Op,
                                             std::vector<Code> Args) {
  CodeNode *N = NodeArena.create<CodeNode>();
  N->K = CodeNode::Kind::Prim;
  N->Op = Op;
  N->Args = std::move(Args);
  return N;
}

void CodeGenBuilder::define(Symbol Name, std::vector<Symbol> Params,
                            Code Body) {
  C.globals().lookupOrAdd(Name);
  const vm::CodeObject *Code = C.makeCodeObject(
      Name.str(), Params, {}, [&](const CEnv &Env, uint32_t Depth) {
        return emitTail(Body, Env, Depth);
      });
  Out.Defs.emplace_back(Name, Code);
}

const Fragment *CodeGenBuilder::emitPush(Code N, const CEnv &Env,
                                         uint32_t Depth) {
  switch (N->K) {
  case CodeNode::Kind::Const:
    return C.pushLiteral(N->ConstV);
  case CodeNode::Kind::Var:
    return C.pushVar(Env, N->Name);
  case CodeNode::Kind::Lambda: {
    // The free-name split of Sec. 6.4: lexically visible names are
    // captured; the rest are globals inside the child.
    std::vector<Symbol> Captured;
    for (Symbol Name : N->FreeNames)
      if (Env.lookup(Name))
        Captured.push_back(Name);
    const vm::CodeObject *Child = C.makeCodeObject(
        "lambda", N->Params, Captured,
        [&](const CEnv &BodyEnv, uint32_t BodyDepth) {
          return emitTail(N->A, BodyEnv, BodyDepth);
        });
    return C.pushClosure(Env, Child, Captured);
  }
  case CodeNode::Kind::Call: {
    const Fragment *Callee = emitPush(N->A, Env, Depth);
    std::vector<const Fragment *> ArgFs;
    for (size_t I = 0; I != N->Args.size(); ++I)
      ArgFs.push_back(
          emitPush(N->Args[I], Env, Depth + 1 + static_cast<uint32_t>(I)));
    return C.call(Callee, ArgFs, /*Tail=*/false);
  }
  case CodeNode::Kind::Prim: {
    std::vector<const Fragment *> ArgFs;
    for (size_t I = 0; I != N->Args.size(); ++I)
      ArgFs.push_back(
          emitPush(N->Args[I], Env, Depth + static_cast<uint32_t>(I)));
    return C.primApp(N->Op, ArgFs);
  }
  case CodeNode::Kind::Let:
  case CodeNode::Kind::If:
    break;
  }
  assert(false && "control combinators only occur in tail position");
  return nullptr;
}

const Fragment *CodeGenBuilder::emitTail(Code N, const CEnv &Env,
                                         uint32_t Depth) {
  switch (N->K) {
  case CodeNode::Kind::Const:
  case CodeNode::Kind::Var:
  case CodeNode::Kind::Lambda:
  case CodeNode::Kind::Prim:
    return C.returnValue(emitPush(N, Env, Depth));
  case CodeNode::Kind::Let: {
    if (letTestIsOnStackNode(N))
      return C.letBinding(
          emitPush(N->A, Env, Depth),
          C.ifOnStack(emitTail(N->B->B, Env, Depth),
                      emitTail(N->B->C, Env, Depth)));
    CEnv BodyEnv = Env.bind(C.envArena(), N->Name,
                            Location::local(static_cast<uint16_t>(Depth)));
    return C.letBinding(emitPush(N->A, Env, Depth),
                        emitTail(N->B, BodyEnv, Depth + 1));
  }
  case CodeNode::Kind::If:
    return C.ifThenElse(emitPush(N->A, Env, Depth), emitTail(N->B, Env, Depth),
                        emitTail(N->C, Env, Depth));
  case CodeNode::Kind::Call: {
    const Fragment *Callee = emitPush(N->A, Env, Depth);
    std::vector<const Fragment *> ArgFs;
    for (size_t I = 0; I != N->Args.size(); ++I)
      ArgFs.push_back(
          emitPush(N->Args[I], Env, Depth + 1 + static_cast<uint32_t>(I)));
    return C.call(Callee, ArgFs, /*Tail=*/true);
  }
  }
  assert(false && "unknown combinator node");
  return nullptr;
}
